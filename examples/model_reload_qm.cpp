// Queue Manager and Model Reload in action (§4.3): a query mix spanning
// four models (languages / experiments) flows through the head of the
// pipeline. The QM batches per-model queues to amortize reloads; this
// example reports reload counts, reload costs per stage, and the
// throughput effect of model locality.

#include <cstdio>

#include "rank/document_generator.h"
#include "service/load_generator.h"
#include "service/testbed.h"

using namespace catapult;

namespace {

double RunMix(service::PodTestbed& bed, int model_count, int docs,
              std::uint64_t seed, std::uint64_t& reloads) {
    rank::DocumentGenerator::Config corpus;
    corpus.model_count = static_cast<std::uint32_t>(model_count);
    rank::DocumentGenerator generator(seed, corpus);

    const std::uint64_t reloads_before =
        bed.service().counters().model_reloads;
    const Time start = bed.simulator().Now();
    int completed = 0;
    // 8 concurrent requests from node 0, refilled as responses arrive.
    int outstanding = 0;
    int sent = 0;
    std::vector<bool> thread_busy(32, false);
    std::function<void()> pump = [&] {
        while (outstanding < 32 && sent < docs) {
            int thread = -1;
            for (int t = 0; t < 32; ++t) {
                if (!thread_busy[static_cast<std::size_t>(t)]) {
                    thread = t;
                    break;
                }
            }
            if (thread < 0) return;
            rank::CompressedRequest request = generator.Next();
            ++sent;
            ++outstanding;
            thread_busy[static_cast<std::size_t>(thread)] = true;
            bed.service().Inject(0, thread, request,
                                 [&, thread](const service::ScoreResult& r) {
                                     thread_busy[static_cast<std::size_t>(thread)] = false;
                                     --outstanding;
                                     if (r.ok) ++completed;
                                     pump();
                                 });
        }
    };
    pump();
    bed.simulator().Run();
    reloads = bed.service().counters().model_reloads - reloads_before;
    const double seconds = ToSeconds(bed.simulator().Now() - start);
    return seconds > 0 ? completed / seconds : 0;
}

}  // namespace

int main() {
    service::PodTestbed::Config config;
    config.fabric.device.configure_time = Milliseconds(20);
    config.service.queue_manager.queue_timeout = Microseconds(500);
    service::PodTestbed bed(config);
    if (!bed.DeployAndSettle()) {
        std::printf("deployment failed\n");
        return 1;
    }

    // Per-stage reload costs for the default model (§4.3).
    auto& store = bed.service().models();
    const rank::Model& model = bed.service().DefaultModel();
    std::printf("Model Reload costs (model 0):\n");
    for (int s = 0; s < rank::kPipelineStageCount; ++s) {
        const auto stage = static_cast<rank::PipelineStage>(s);
        std::printf("  %-7s %8.1f us (%lld bytes from DRAM)\n",
                    ToString(stage),
                    ToMicroseconds(store.StageReloadTime(model, stage)),
                    static_cast<long long>(model.ReloadBytes(stage)));
    }
    std::printf("  worst case (all M20Ks): %.1f us [paper: up to 250 us]\n\n",
                ToMicroseconds(store.WorstCaseReloadTime()));

    // Throughput vs number of live models in the query mix.
    std::printf("Throughput under a mixed-model query stream (600 docs):\n");
    std::printf("  %8s %14s %10s\n", "models", "docs/s", "reloads");
    for (const int models : {1, 2, 4}) {
        std::uint64_t reloads = 0;
        const double tput = RunMix(bed, models, 600, 77 + models, reloads);
        std::printf("  %8d %14.0f %10llu\n", models, tput,
                    static_cast<unsigned long long>(reloads));
    }
    std::printf(
        "\nThe Queue Manager drains each model's DRAM queue before\n"
        "switching (or on timeout), so reload counts stay far below the\n"
        "document count — \"crucial to achieving high performance\" "
        "(§4.3).\n");
    return 0;
}
