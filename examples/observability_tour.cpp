// Observability plane walkthrough: the federation-wide metrics
// registry, distributed query tracing and executor profiling, end to
// end on a sharded 2-pod federation that loses a pod mid-run and gets
// it back.
//
// The run drives session scatter-gather traffic through the front door
// while pod 0 suffers a power-domain blackout and is later field
// serviced and re-admitted. Every hop of every query — session instant,
// gather span, dispatcher query span with inject/failover instants,
// pod-side document spans, per-stage service intervals, DMA completion
// instants and the victim's Flight Data Recorder postmortem — lands in
// per-shard trace rings stitched into one Chrome trace-event timeline
// on simulated timestamps. The merged metric registry snapshots on a
// simulated-time cadence and exports JSON + Prometheus text.
//
// Artifacts (written to argv[1], default "."):
//   obs_trace.json     Chrome trace-event timeline (chrome://tracing)
//   obs_metrics.json   merged registry, full view incl. profiling
//   obs_metrics.prom   Prometheus text exposition
//
// tools/check_obs_schema.py validates the two JSON artifacts in CI.

#include <cstdio>
#include <fstream>
#include <string>

#include "rank/document_generator.h"
#include "service/federation_testbed.h"

using namespace catapult;

namespace {

bool WriteFile(const std::string& path, const std::string& body) {
    std::ofstream out(path, std::ios::binary);
    out << body;
    return static_cast<bool>(out);
}

std::vector<rank::CompressedRequest> MakeDocs(rank::DocumentGenerator& gen,
                                              int count) {
    std::vector<rank::CompressedRequest> docs;
    docs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        rank::CompressedRequest request = gen.Next();
        request.query.model_id = 0;
        docs.push_back(std::move(request));
    }
    return docs;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string out_dir = argc > 1 ? argv[1] : ".";

    service::FederationTestbed::Config config;
    config.pod_count = 2;
    config.pod.ring_count = 2;
    config.pod.fabric.device.configure_time = Milliseconds(5);
    config.pod.host.soft_reboot_duration = Milliseconds(200);
    config.pod.host.hard_reboot_duration = Milliseconds(500);
    config.pod.host.crash_reboot_delay = Milliseconds(50);
    config.pod.health.heartbeat_period = Milliseconds(10);
    config.pod.health.query_timeout = Milliseconds(50);
    // Sharded + parallel: each pod's stack on its own simulator shard,
    // run by the work-stealing executor pool — the mode the executor
    // profiling pillar is about. The deterministic exports are
    // byte-identical to a lock-step run of the same scenario.
    config.sharding.enabled = true;
    config.sharding.parallel = true;
    // The whole plane on: per-shard registries and trace rings, merged
    // at epoch barriers, snapshotted every 10 ms of simulated time.
    config.observability.enabled = true;
    config.observability.tracing = true;
    config.observability.hub.cadence = Milliseconds(10);
    service::FederationTestbed bed(config);
    if (!bed.DeployAndSettle()) {
        std::printf("deployment failed\n");
        return 1;
    }
    obs::ObservabilityPlane& plane = *bed.observability();
    std::printf("[t=%s] federation up: %d pods, %d observability shards "
                "(1 coordinator + %d pod), tracing %s\n",
                FormatTime(bed.Now()).c_str(), bed.pod_count(),
                plane.shard_count(), plane.shard_count() - 1,
                plane.config().tracing ? "on" : "off");

    // --- Traffic through the front door, blackout, re-admission -------
    service::SessionFrontEnd& door = bed.front_end();
    const std::uint64_t session = door.OpenSession();
    const Time blackout_at = bed.Now() + Milliseconds(30);
    bed.pod(0).failure_injector().SchedulePodBlackout(blackout_at);
    bool reattach_ok = false;
    bed.simulator().ScheduleAt(blackout_at + Milliseconds(40), [&] {
        bed.ReattachPod(0, [&](bool ok) { reattach_ok = ok; });
    });
    std::printf("[t=%s] pod 0 blackout scheduled at t=%s, re-admission "
                "40 ms later; driving session traffic across the incident\n",
                FormatTime(bed.Now()).c_str(),
                FormatTime(blackout_at).c_str());

    rank::DocumentGenerator generator(13);
    int delivered = 0;
    for (int i = 0; i < 120; ++i) {
        bed.simulator().ScheduleAfter(
            Microseconds(700) * i + Milliseconds(1), [&] {
                door.Submit(
                    session, rank::Query{}, MakeDocs(generator, 8), 4,
                    /*budget=*/0,
                    [&](const service::ScatterGatherDispatcher::GatherResult&) {
                        ++delivered;
                    });
            });
    }
    bed.Run();
    door.CloseSession(session);

    const auto& counters = bed.dispatcher().counters();
    std::printf("[t=%s] run over: %d gathers delivered, failovers=%llu, "
                "readmissions=%llu, pod 0 %s\n",
                FormatTime(bed.Now()).c_str(), delivered,
                static_cast<unsigned long long>(counters.failovers),
                static_cast<unsigned long long>(counters.readmissions),
                reattach_ok ? "back in rotation" : "NOT re-admitted");

    // --- Export the three artifacts ------------------------------------
    const std::string trace_json = plane.TraceJson();
    const std::string metrics_json = plane.MetricsJson(true);
    const std::string prom = plane.PrometheusText();
    if (!WriteFile(out_dir + "/obs_trace.json", trace_json) ||
        !WriteFile(out_dir + "/obs_metrics.json", metrics_json) ||
        !WriteFile(out_dir + "/obs_metrics.prom", prom)) {
        std::printf("FAILURE: could not write artifacts to %s\n",
                    out_dir.c_str());
        return 1;
    }
    std::uint64_t spans_recorded = 0;
    for (int s = 0; s < plane.shard_count(); ++s) {
        spans_recorded += plane.shard(s)->tracer.total_recorded();
    }
    std::printf("\n[t=%s] exported to %s:\n", FormatTime(bed.Now()).c_str(),
                out_dir.c_str());
    std::printf("  obs_trace.json    %zu bytes, %llu records across %d "
                "shard rings\n",
                trace_json.size(),
                static_cast<unsigned long long>(spans_recorded),
                plane.shard_count());
    std::printf("  obs_metrics.json  %zu bytes\n", metrics_json.size());
    std::printf("  obs_metrics.prom  %zu bytes\n", prom.size());
    std::printf("  hub snapshots     %llu taken at %s cadence\n",
                static_cast<unsigned long long>(
                    plane.hub().snapshots_taken()),
                FormatTime(config.observability.hub.cadence).c_str());

    // The scenario must have produced the whole story: delivered
    // gathers, a failover, a readmitted pod, a postmortem in the
    // timeline, and cadence snapshots.
    const bool ok = delivered > 0 && counters.failovers > 0 && reattach_ok &&
                    plane.hub().snapshots_taken() > 0 &&
                    trace_json.find("\"gather\"") != std::string::npos &&
                    trace_json.find("\"failover\"") != std::string::npos &&
                    trace_json.find("\"fdr\"") != std::string::npos;
    std::printf("\n%s: blackout + re-admission fully observable — load the "
                "trace in chrome://tracing\n",
                ok ? "SUCCESS" : "FAILURE");
    return ok ? 0 : 1;
}
