// Ranking pipeline under load: all eight servers of the ring inject
// documents, as in the paper's ring-level experiments (§5). Prints
// throughput, the latency distribution, per-stage counters, and a
// Flight Data Recorder excerpt from the head FPGA.

#include <cstdio>

#include "service/load_generator.h"
#include "service/stage_role.h"
#include "service/testbed.h"

using namespace catapult;

int main() {
    service::PodTestbed::Config config;
    config.fabric.device.configure_time = Milliseconds(20);
    service::PodTestbed bed(config);
    if (!bed.DeployAndSettle()) {
        std::printf("deployment failed\n");
        return 1;
    }

    // All eight ring servers inject in closed loop with 8 threads each,
    // enough to saturate the FE-bound pipeline (Fig. 9/12).
    service::ClosedLoopInjector::Config load;
    load.injecting_ring_indices = {0, 1, 2, 3, 4, 5, 6, 7};
    load.threads_per_node = 8;
    load.documents_per_thread = 150;
    service::ClosedLoopInjector injector(&bed.service(), load);
    const service::LoadResult result = injector.Run();

    std::printf("completed %llu documents, %llu timeouts\n",
                static_cast<unsigned long long>(result.completed),
                static_cast<unsigned long long>(result.timeouts));
    std::printf("aggregate throughput : %10.0f docs/s\n",
                result.ThroughputPerSecond());
    std::printf("latency mean / p95 / p99 : %.1f / %.1f / %.1f us\n",
                result.latency_us.mean(), result.latency_us.P95(),
                result.latency_us.P99());

    std::printf("\nper-stage role counters:\n");
    for (int i = 0; i < service::RankingService::kRingLength; ++i) {
        const auto& role = bed.service().role(i);
        std::printf("  ring[%d] %-7s processed=%-7llu forwarded=%-7llu "
                    "reloads=%llu\n",
                    i, ToString(role.stage()),
                    static_cast<unsigned long long>(role.counters().processed),
                    static_cast<unsigned long long>(role.counters().forwarded),
                    static_cast<unsigned long long>(role.counters().reloads));
    }

    // The Flight Data Recorder on the head FPGA (§3.6): the most recent
    // 512 router events, including trace ids that can be replayed.
    const auto& fdr = bed.fabric().shell(bed.service().RingNode(0)).fdr();
    const auto records = fdr.StreamOut();
    std::printf("\nFDR at head FPGA: %llu events total, window holds %zu\n",
                static_cast<unsigned long long>(fdr.total_recorded()),
                records.size());
    std::printf("last 5 records (trace_id, type, bytes, in->out):\n");
    for (std::size_t i = records.size() >= 5 ? records.size() - 5 : 0;
         i < records.size(); ++i) {
        const auto& r = records[i];
        std::printf("  t=%-12s trace=%-8llu %-16s %6lld B  %s->%s\n",
                    FormatTime(r.timestamp).c_str(),
                    static_cast<unsigned long long>(r.trace_id),
                    ToString(r.type), static_cast<long long>(r.size),
                    ToString(r.ingress), ToString(r.egress));
    }
    return 0;
}
