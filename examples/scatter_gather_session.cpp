// Scatter-gather front door walkthrough (§2, §5): a session-oriented
// front end over a 3-pod federation. A client opens a session (which
// carves out a driver-thread connection pool), submits a query whose
// candidate document set is scattered across all three pods, and gets
// back one globally merged top-k list. Act two runs the same query
// under a latency budget too tight for the full set: the front door
// answers *on time with what it has* — a partial result stamped with
// per-pod answered/missing accounting — and the late shards drain as
// accounted stragglers, never corrupting the delivered answer.

#include <cstdio>

#include "rank/document_generator.h"
#include "service/federation_testbed.h"

using namespace catapult;

namespace {

std::vector<rank::CompressedRequest> MakeDocs(rank::DocumentGenerator& gen,
                                              int count) {
    std::vector<rank::CompressedRequest> docs;
    docs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        rank::CompressedRequest request = gen.Next();
        request.query.model_id = 0;
        docs.push_back(std::move(request));
    }
    return docs;
}

void PrintResult(const service::ScatterGatherDispatcher::GatherResult& r) {
    std::printf("  gather %llu: %s, %zu/%zu docs answered, latency %s\n",
                static_cast<unsigned long long>(r.gather_id),
                r.partial ? "PARTIAL" : "complete", r.answered, r.doc_count,
                FormatTime(r.latency).c_str());
    for (const auto& shard : r.pods) {
        std::printf("    pod %d: assigned=%d answered=%d missing=%d\n",
                    shard.pod, shard.assigned, shard.answered, shard.missing);
    }
    std::printf("    top-%zu:", r.top.size());
    for (const auto& doc : r.top) {
        std::printf(" %llu@%.3f(pod%d)",
                    static_cast<unsigned long long>(doc.doc_id), doc.score,
                    doc.pod);
    }
    std::printf("\n");
}

}  // namespace

int main() {
    service::FederationTestbed::Config config;
    config.pod_count = 3;
    config.pod.ring_count = 1;
    config.pod.fabric.device.configure_time = Milliseconds(5);
    // Bit-exact functional scoring, so the merged top-k carries real
    // model scores instead of timing-only zeros.
    config.pod.service.compute_scores = true;
    service::FederationTestbed bed(config);
    if (!bed.DeployAndSettle()) {
        std::printf("deployment failed\n");
        return 1;
    }
    service::SessionFrontEnd& door = bed.front_end();

    // --- A session and its connection pool ----------------------------
    const std::uint64_t session = door.OpenSession();
    const auto pool = door.session_stats(session).connection_pool;
    std::printf("[t=%s] session %llu open; connection pool threads:",
                FormatTime(bed.simulator().Now()).c_str(),
                static_cast<unsigned long long>(session));
    for (int thread : pool) std::printf(" %d", thread);
    std::printf("\n");

    // --- Act one: unconstrained scatter-gather ------------------------
    rank::DocumentGenerator generator(5);
    std::printf("\n[t=%s] scatter 24 docs across %d pods, merge top-8, no "
                "deadline\n",
                FormatTime(bed.simulator().Now()).c_str(), bed.pod_count());
    bool complete_ok = false;
    door.Submit(session, rank::Query{}, MakeDocs(generator, 24), 8,
                /*budget=*/0,
                [&](const service::ScatterGatherDispatcher::GatherResult& r) {
                    PrintResult(r);
                    complete_ok = !r.partial && r.answered == r.doc_count;
                });
    bed.simulator().Run();
    if (!complete_ok) {
        std::printf("FAILURE: unconstrained gather did not complete\n");
        return 1;
    }

    // --- Act two: a deadline too tight for the full set ----------------
    std::printf("\n[t=%s] same scatter under a 110 us budget: deliver on "
                "time with whatever answered\n",
                FormatTime(bed.simulator().Now()).c_str());
    bool partial_ok = false;
    door.Submit(session, rank::Query{}, MakeDocs(generator, 24), 8,
                Microseconds(110),
                [&](const service::ScatterGatherDispatcher::GatherResult& r) {
                    PrintResult(r);
                    partial_ok = r.partial;
                });
    bed.simulator().Run();

    const auto stats = door.session_stats(session);
    std::printf("\n[t=%s] session accounting: %llu delivered (%llu partial), "
                "%llu stragglers drained, %d in flight\n",
                FormatTime(bed.simulator().Now()).c_str(),
                static_cast<unsigned long long>(stats.delivered),
                static_cast<unsigned long long>(stats.partial),
                static_cast<unsigned long long>(stats.stragglers), stats.in_flight);

    // Nothing lost below the front door, and the session is still fully
    // usable after a deadline-bounded (even empty) partial.
    const bool ok = partial_ok && stats.delivered == 2 &&
                    stats.in_flight == 0 &&
                    bed.dispatcher().counters().lost == 0 &&
                    door.CloseSession(session);
    std::printf("\n%s: on-time partial delivered, stragglers accounted, "
                "session clean\n",
                ok ? "SUCCESS" : "FAILURE");
    return ok ? 0 : 1;
}
