// Cross-pod federation walkthrough (§2, §3.5): two 48-node pods behind
// one FederatedDispatcher serve query traffic; one pod loses its power
// domain mid-run (every host dead, every shell RX-halted); the
// dispatcher's circuit breaker and health-plane subscription latch the
// dead pod out of rotation, in-flight queries caught on it re-inject
// onto the survivor, and service continues without losing a single
// accepted query. Act two: the field crew services the dead pod and
// FederationTestbed::ReattachPod hot-attaches it back into the live
// federation — hosts repaired, rings redeployed, breaker reset — and
// the rejoining pod earns its traffic share back through the
// dispatcher's warm-up ramp.

#include <cstdio>

#include "rank/document_generator.h"
#include "service/federation_testbed.h"
#include "service/load_generator.h"

using namespace catapult;

int main() {
    service::FederationTestbed::Config config;
    config.pod_count = 2;
    config.pod.ring_count = 2;
    config.pod.fabric.device.configure_time = Milliseconds(5);
    config.pod.host.soft_reboot_duration = Milliseconds(200);
    config.pod.host.hard_reboot_duration = Milliseconds(500);
    config.pod.host.crash_reboot_delay = Milliseconds(50);
    config.pod.health.heartbeat_period = Milliseconds(10);
    config.pod.health.query_timeout = Milliseconds(50);
    service::FederationTestbed bed(config);
    if (!bed.DeployAndSettle()) {
        std::printf("deployment failed\n");
        return 1;
    }

    // --- Two pods, one dispatcher -------------------------------------
    std::printf("[t=%s] federation up: %d pods x %d rings, policy %s\n",
                FormatTime(bed.simulator().Now()).c_str(), bed.pod_count(),
                bed.pod(0).pool().ring_count(),
                ToString(bed.dispatcher().policy()));
    for (int p = 0; p < bed.pod_count(); ++p) {
        std::printf("  pod %d: nodes [%d..%d], %d rings in rotation\n", p,
                    static_cast<int>(bed.pod(p).fabric().node_base()),
                    static_cast<int>(bed.pod(p).fabric().node_base()) +
                        bed.pod(p).fabric().node_count() - 1,
                    bed.pod(p).pool().available_rings());
    }

    // --- Paced traffic with a mid-run pod blackout --------------------
    const Time blackout_at = bed.simulator().Now() + Milliseconds(30);
    bed.pod(0).failure_injector().SchedulePodBlackout(blackout_at);
    std::printf("[t=%s] pod 0 will lose power at t=%s\n",
                FormatTime(bed.simulator().Now()).c_str(),
                FormatTime(blackout_at).c_str());

    rank::DocumentGenerator generator(7);
    int accepted = 0;
    int completed = 0;
    int lost = 0;
    auto inject_one = [&](int thread) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        const auto status = bed.dispatcher().Inject(
            thread, request, [&](const service::ScoreResult& r) {
                if (r.ok) {
                    ++completed;
                } else {
                    ++lost;
                }
            });
        if (status == host::SendStatus::kOk) ++accepted;
    };
    // A burst just before the blackout (queries die mid-flight on pod 0
    // and must re-inject on pod 1) plus steady pacing across the
    // incident.
    for (int b = 0; b < 16; ++b) {
        bed.simulator().ScheduleAt(blackout_at - Microseconds(100),
                                   [&, b] { inject_one(b); });
    }
    for (int i = 0; i < 1'200; ++i) {
        bed.simulator().ScheduleAfter(Microseconds(50) * i + Milliseconds(1),
                                      [&, i] { inject_one(i % 32); });
    }
    bed.simulator().Run();

    // --- The survivor carried the service -----------------------------
    const auto& counters = bed.dispatcher().counters();
    std::printf("\n[t=%s] incident over:\n",
                FormatTime(bed.simulator().Now()).c_str());
    std::printf("  accepted=%d completed=%d lost=%d\n", accepted, completed,
                lost);
    std::printf("  failovers=%llu breaker_trips=%llu\n",
                static_cast<unsigned long long>(counters.failovers),
                static_cast<unsigned long long>(counters.breaker_trips));
    std::printf("  pod 0: %d nodes dead, %s\n",
                bed.dispatcher().pod_dead_nodes(0),
                bed.dispatcher().pod_eligible(0) ? "STILL IN ROTATION"
                                                 : "latched out of rotation");
    std::printf("  pod 1: %llu queries dispatched, %d rings in rotation\n",
                static_cast<unsigned long long>(
                    bed.pod(1).pool().counters().dispatched),
                bed.pod(1).pool().available_rings());

    const bool incident_ok = lost == 0 && completed == accepted &&
                             accepted > 0 &&
                             !bed.dispatcher().pod_eligible(0) &&
                             bed.dispatcher().pod_eligible(1) &&
                             counters.failovers > 0;
    std::printf("\n%s: every accepted query completed on the surviving pod\n",
                incident_ok ? "SUCCESS" : "FAILURE");
    if (!incident_ok) return 1;

    // --- Act two: field service + live re-admission -------------------
    std::printf("\n[t=%s] field crew services pod 0 (boot repair + power "
                "cycle + ring redeploy)\n",
                FormatTime(bed.simulator().Now()).c_str());
    bool reattached = false;
    bed.ReattachPod(0, [&](bool ok2) { reattached = ok2; });
    bed.simulator().Run();
    std::printf("[t=%s] pod 0 %s; dispatcher stats: readmitted=%llu, "
                "%d dead nodes\n",
                FormatTime(bed.simulator().Now()).c_str(),
                reattached ? "re-admitted into rotation" : "FAILED to rejoin",
                static_cast<unsigned long long>(
                    bed.dispatcher().pod_stats(0).readmitted),
                bed.dispatcher().pod_dead_nodes(0));
    if (!reattached) return 1;

    // Traffic again: the rejoined pod must carry part of it.
    const std::uint64_t pod0_before = bed.pod(0).pool().counters().dispatched;
    accepted = completed = lost = 0;
    for (int i = 0; i < 400; ++i) {
        bed.simulator().ScheduleAfter(Microseconds(100) * i,
                                      [&, i] { inject_one(i % 32); });
    }
    bed.simulator().Run();
    const std::uint64_t pod0_served =
        bed.pod(0).pool().counters().dispatched - pod0_before;
    std::printf("\n[t=%s] post-re-admission traffic: accepted=%d "
                "completed=%d lost=%d; pod 0 served %llu\n",
                FormatTime(bed.simulator().Now()).c_str(), accepted,
                completed, lost,
                static_cast<unsigned long long>(pod0_served));

    const bool readmit_ok = lost == 0 && completed == accepted &&
                            bed.dispatcher().pod_eligible(0) &&
                            pod0_served > 0;
    std::printf("\n%s: serviced pod rejoined the live federation\n",
                readmit_ok ? "SUCCESS" : "FAILURE");
    return readmit_ok ? 0 : 1;
}
