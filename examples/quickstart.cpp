// Quickstart: deploy the ranking service on a simulated pod, score one
// document through the eight-FPGA pipeline, and check the result
// against the software reference.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "rank/document_generator.h"
#include "rank/software_ranker.h"
#include "service/testbed.h"

using namespace catapult;

int main() {
    // 1. A pod testbed: 48 FPGAs in a 6x8 torus, one host server each,
    //    Mapping Manager + Health Monitor, and the ranking service
    //    mapped onto a ring of eight FPGAs (FE, FFE0, FFE1, Compress,
    //    Score0-2, Spare).
    service::PodTestbed::Config config;
    config.service.compute_scores = true;  // run the functional pipeline
    config.service.models.model.expression_count = 600;  // quick model
    config.service.models.model.tree_count = 1'800;
    config.fabric.device.configure_time = Milliseconds(20);
    service::PodTestbed bed(config);

    // 2. Deploy: the Mapping Manager writes each stage's bitstream,
    //    configures all eight FPGAs, installs torus routes, and releases
    //    RX Halt once the whole pipeline is up (§3.4).
    if (!bed.DeployAndSettle()) {
        std::printf("deployment failed\n");
        return 1;
    }
    std::printf("deployed bing.ranking on ring nodes:");
    for (int i = 0; i < service::RankingService::kRingLength; ++i) {
        std::printf(" %d=%s", bed.service().RingNode(i),
                    ToString(bed.service().StageAt(i)));
    }
    std::printf("\n");

    // 3. Synthesize a compressed {document, query} request (Fig. 4
    //    distribution) and inject it from ring position 2's server.
    rank::DocumentGenerator generator(/*seed=*/2026);
    rank::CompressedRequest request = generator.Next();
    request.query.model_id = 0;
    std::printf("document %llu: %lld bytes compressed, %u hit-vector tuples\n",
                static_cast<unsigned long long>(request.doc_id),
                static_cast<long long>(request.wire_bytes),
                request.tuple_count);

    service::ScoreResult result;
    bed.service().Inject(/*ring_index=*/2, /*thread=*/0, request,
                         [&](const service::ScoreResult& r) { result = r; });
    bed.simulator().Run();

    if (!result.ok) {
        std::printf("scoring failed (timeout)\n");
        return 1;
    }
    std::printf("FPGA pipeline score   : %.6f\n", result.score);
    std::printf("end-to-end latency    : %.1f us\n",
                ToMicroseconds(result.latency));

    // 4. §4: "Our implementation produces results that are identical to
    //    software." Verify against the software reference evaluation.
    rank::RankingFunction reference(&bed.service().DefaultModel());
    const float software_score = reference.ReferenceScore(request);
    std::printf("software score        : %.6f (%s)\n", software_score,
                software_score == result.score ? "identical" : "MISMATCH");
    return software_score == result.score ? 0 : 1;
}
