// Failure handling walkthrough (§3.4-§3.5, §4.2): a stage node's host
// crashes mid-service; the Health Monitor investigates (reboot ladder,
// error vector), the Service Manager rotates the ring onto the spare,
// and ranking resumes — the full at-scale recovery loop.

#include <cstdio>

#include "rank/document_generator.h"
#include "service/load_generator.h"
#include "service/testbed.h"

using namespace catapult;

namespace {

int RankBatch(service::PodTestbed& bed, int count, std::uint64_t seed) {
    rank::DocumentGenerator generator(seed);
    int ok = 0;
    for (int i = 0; i < count; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        bed.service().Inject(i % 8, 0, request,
                             [&](const service::ScoreResult& r) {
                                 if (r.ok) ++ok;
                             });
        bed.simulator().Run();
    }
    return ok;
}

}  // namespace

int main() {
    service::PodTestbed::Config config;
    config.fabric.device.configure_time = Milliseconds(20);
    config.host.soft_reboot_duration = Seconds(2);
    config.host.crash_reboot_delay = Milliseconds(200);
    service::PodTestbed bed(config);
    if (!bed.DeployAndSettle()) {
        std::printf("deployment failed\n");
        return 1;
    }
    std::printf("[t=%s] service deployed; ranking 16 documents...\n",
                FormatTime(bed.simulator().Now()).c_str());
    std::printf("  %d/16 scored\n", RankBatch(bed, 16, 1));

    // --- Failure: the Scoring1 node's host dies unexpectedly ----------
    const int failed_ring_index = 5;
    const int failed_node = bed.service().RingNode(failed_ring_index);
    std::printf("\n[t=%s] host of ring position %d (node %d, %s) crashes\n",
                FormatTime(bed.simulator().Now()).c_str(), failed_ring_index,
                failed_node, ToString(bed.service().StageAt(failed_ring_index)));
    bed.host(failed_node).CrashAndReboot("simulated production incident");

    // --- Health Monitor: query, reboot ladder, error vector (§3.5) ----
    std::vector<mgmt::MachineReport> reports;
    bed.health_monitor().Investigate(
        {failed_node},
        [&](std::vector<mgmt::MachineReport> r) { reports = std::move(r); });
    bed.simulator().Run();
    for (const auto& report : reports) {
        std::printf("[t=%s] health monitor: node %d fault=%s "
                    "(soft_reboot=%s hard_reboot=%s)\n",
                    FormatTime(bed.simulator().Now()).c_str(), report.node,
                    ToString(report.fault),
                    report.needed_soft_reboot ? "yes" : "no",
                    report.needed_hard_reboot ? "yes" : "no");
    }

    // --- Service Manager: rotate the ring onto the spare (§4.2) -------
    bool rotated = false;
    bed.service().RotateRingAround(failed_ring_index,
                                   [&](bool ok) { rotated = ok; });
    bed.simulator().Run();
    std::printf("[t=%s] ring rotation %s; stage map now:",
                FormatTime(bed.simulator().Now()).c_str(),
                rotated ? "complete" : "FAILED");
    for (int i = 0; i < service::RankingService::kRingLength; ++i) {
        std::printf(" %d=%s", i, ToString(bed.service().StageAt(i)));
    }
    std::printf("\n");

    // --- Service resumes ----------------------------------------------
    const int recovered = RankBatch(bed, 16, 2);
    std::printf("\n[t=%s] after recovery: %d/16 documents scored\n",
                FormatTime(bed.simulator().Now()).c_str(), recovered);
    return recovered == 16 && rotated ? 0 : 1;
}
