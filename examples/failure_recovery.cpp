// Autonomic failure handling walkthrough (§3.3-§3.5, §4.2): a stage
// node's host crashes mid-service and the health plane does the rest —
// the heartbeat watchdog spots the missed pings, the Health Monitor
// runs the reboot ladder and classifies the error vector, the
// confirmed report fans out to the service pool, and the Service
// Manager rotates the ring onto the spare. No explicit Investigate or
// RecoverRing call appears below: the testbed wires the telemetry bus,
// watchdog and subscribers by default.

#include <cstdio>

#include "rank/document_generator.h"
#include "service/load_generator.h"
#include "service/testbed.h"

using namespace catapult;

namespace {

int RankBatch(service::PodTestbed& bed, int count, std::uint64_t seed) {
    rank::DocumentGenerator generator(seed);
    int ok = 0;
    for (int i = 0; i < count; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        bed.service().Inject(i % 8, 0, request,
                             [&](const service::ScoreResult& r) {
                                 if (r.ok) ++ok;
                             });
        bed.simulator().Run();
    }
    return ok;
}

}  // namespace

int main() {
    service::PodTestbed::Config config;
    config.fabric.device.configure_time = Milliseconds(20);
    config.host.soft_reboot_duration = Seconds(2);
    config.host.crash_reboot_delay = Milliseconds(200);
    // Watchdog cadence: ping sweeps every 25 ms, three consecutive
    // misses form a suspect, status replies time out after 100 ms.
    config.health.heartbeat_period = Milliseconds(25);
    config.health.query_timeout = Milliseconds(100);
    service::PodTestbed bed(config);
    if (!bed.DeployAndSettle()) {
        std::printf("deployment failed\n");
        return 1;
    }
    std::printf("[t=%s] service deployed; ranking 16 documents...\n",
                FormatTime(bed.simulator().Now()).c_str());
    std::printf("  %d/16 scored\n", RankBatch(bed, 16, 1));

    // Observability: timestamp the drain and the rejoin as they happen.
    Time drained_at = 0;
    Time recovered_at = 0;
    bed.pool().set_on_ring_drained(
        [&](int) { drained_at = bed.simulator().Now(); });
    bed.pool().set_on_ring_recovered(
        [&](int) { recovered_at = bed.simulator().Now(); });

    // --- Failure: the Scoring1 node's host dies unexpectedly ----------
    const int failed_ring_index = 5;
    const int failed_node = bed.service().RingNode(failed_ring_index);
    const Time crash_time = bed.simulator().Now();
    std::printf("\n[t=%s] host of ring position %d (node %d, %s) crashes\n",
                FormatTime(crash_time).c_str(), failed_ring_index,
                failed_node, ToString(bed.service().StageAt(failed_ring_index)));
    bed.host(failed_node).CrashAndReboot("simulated production incident");

    // --- The plane heals the pod on its own ---------------------------
    bed.simulator().RunUntil(bed.simulator().Now() + Seconds(10));

    const auto& health = bed.health_monitor().counters();
    std::printf("\n[t=%s] health plane summary:\n",
                FormatTime(bed.simulator().Now()).c_str());
    std::printf("  heartbeats %llu, misses %llu, auto investigations %llu, "
                "soft reboots %llu\n",
                static_cast<unsigned long long>(health.heartbeats_sent),
                static_cast<unsigned long long>(health.heartbeat_misses),
                static_cast<unsigned long long>(health.auto_investigations),
                static_cast<unsigned long long>(health.soft_reboots));
    for (const auto& report : bed.health_monitor().failed_machine_list()) {
        std::printf("  node %d fault=%s (soft_reboot=%s hard_reboot=%s)\n",
                    report.node, ToString(report.fault),
                    report.needed_soft_reboot ? "yes" : "no",
                    report.needed_hard_reboot ? "yes" : "no");
    }
    std::printf("  ring drained %.1f ms after the crash, rejoined %.1f ms "
                "after the drain\n",
                ToSeconds(drained_at - crash_time) * 1e3,
                ToSeconds(recovered_at - drained_at) * 1e3);
    std::printf("  stage map now:");
    for (int i = 0; i < service::RankingService::kRingLength; ++i) {
        std::printf(" %d=%s", i, ToString(bed.service().StageAt(i)));
    }
    std::printf("\n");

    // --- Service resumes ----------------------------------------------
    const int recovered = RankBatch(bed, 16, 2);
    std::printf("\n[t=%s] after autonomic recovery: %d/16 documents scored\n",
                FormatTime(bed.simulator().Now()).c_str(), recovered);
    const bool rotated =
        bed.service().StageAt(failed_ring_index) == rank::PipelineStage::kSpare;
    const bool auto_recovered =
        bed.pool().counters().auto_recoveries >= 1 && drained_at > 0 &&
        recovered_at > drained_at;
    return recovered == 16 && rotated && auto_recovered ? 0 : 1;
}
