// Pod-level orchestration walkthrough (§2, §4.2): the PodScheduler
// places three ranking rings onto the torus, a ServicePool shards
// query traffic across them through the QueryDispatcher, one ring's
// stage node dies mid-service, the dispatcher drains it — traffic
// redirects to the survivors — while the spare rotates in, and the
// recovered ring rejoins rotation.

#include <cstdio>

#include "rank/document_generator.h"
#include "service/load_generator.h"
#include "service/testbed.h"

using namespace catapult;

int main() {
    service::PodTestbed::Config config;
    config.fabric.device.configure_time = Milliseconds(20);
    config.host.crash_reboot_delay = Milliseconds(200);
    config.host.soft_reboot_duration = Seconds(2);
    config.ring_count = 3;
    config.policy = service::DispatchPolicy::kLeastInFlight;
    service::PodTestbed bed(config);
    if (!bed.DeployAndSettle()) {
        std::printf("deployment failed\n");
        return 1;
    }

    // --- Scheduler-granted placements ---------------------------------
    std::printf("[t=%s] pool deployed: %d rings, policy %s\n",
                FormatTime(bed.simulator().Now()).c_str(),
                bed.pool().ring_count(),
                ToString(bed.pool().dispatcher().policy()));
    for (int k = 0; k < bed.pool().ring_count(); ++k) {
        const auto& placement = bed.pool().placement(k);
        std::printf("  ring %d -> torus row %d (cols %d..%d), head node %d\n",
                    k, placement.row, placement.head_col,
                    placement.head_col + placement.length - 1,
                    bed.pool().ring(k).RingNode(0));
    }
    std::printf("  scheduler: %d/%d nodes granted\n",
                bed.scheduler().occupied_nodes(), bed.scheduler().node_count());

    // --- Sharded load across the pool ---------------------------------
    service::PoolClosedLoopInjector::Config load;
    load.concurrency = 24;
    load.documents = 240;
    service::PoolClosedLoopInjector injector(&bed.pool(), load);
    const service::LoadResult result = injector.Run();
    std::printf("\n[t=%s] %llu documents scored across the pool:\n",
                FormatTime(bed.simulator().Now()).c_str(),
                static_cast<unsigned long long>(result.completed));
    for (int k = 0; k < bed.pool().ring_count(); ++k) {
        std::printf("  ring %d completed %llu\n", k,
                    static_cast<unsigned long long>(
                        bed.pool().ring(k).counters().completed));
    }

    // --- Ring failure: drain, redirect, rotate the spare in -----------
    const int failed_ring = 1;
    const int failed_position = 2;  // FFE1
    const int failed_node = bed.pool().ring(failed_ring).RingNode(failed_position);
    std::printf("\n[t=%s] node %d (ring %d, %s) crashes; draining ring %d\n",
                FormatTime(bed.simulator().Now()).c_str(), failed_node,
                failed_ring,
                ToString(bed.pool().ring(failed_ring).StageAt(failed_position)),
                failed_ring);
    bed.host(failed_node).CrashAndReboot("simulated production incident");

    bool recovered = false;
    bed.pool().RecoverRing(failed_ring, failed_position,
                           [&](bool ok) { recovered = ok; });

    // Traffic keeps flowing while the spare rotation runs.
    rank::DocumentGenerator generator(7);
    int during = 0;
    for (int i = 0; i < 24; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        bed.pool().Inject(i % 24, request,
                          [&](const service::ScoreResult& r) {
                              if (r.ok) ++during;
                          });
    }
    bed.simulator().Run();
    std::printf("[t=%s] recovery %s; %d/24 documents completed on the "
                "surviving rings (%llu redirected)\n",
                FormatTime(bed.simulator().Now()).c_str(),
                recovered ? "complete" : "FAILED", during,
                static_cast<unsigned long long>(
                    bed.pool().counters().redirected));

    // --- Recovered ring back in rotation ------------------------------
    const auto totals = bed.pool().AggregateRingCounters();
    std::printf("\n[t=%s] pool totals: injected=%llu completed=%llu "
                "timeouts=%llu\n",
                FormatTime(bed.simulator().Now()).c_str(),
                static_cast<unsigned long long>(totals.injected),
                static_cast<unsigned long long>(totals.completed),
                static_cast<unsigned long long>(totals.timeouts));
    return recovered && during == 24 ? 0 : 1;
}
