#!/usr/bin/env python3
"""Schema check for the observability plane's exported artifacts.

Usage: check_obs_schema.py <obs_trace.json> <obs_metrics.json>

Validates, without any third-party dependency, that:
  * the trace file is a Chrome trace-event document: a top-level
    "traceEvents" array whose entries carry name/ph/ts/pid/tid, with
    complete events ("X") also carrying a duration and instants ("i")
    a scope;
  * the metrics file is a merged-registry export with the three metric
    families ("counters", "gauges", "histograms"), numeric counter and
    gauge values, and histograms shaped {total, underflow, buckets[]}.

Exits 0 when both pass; prints the first violation and exits 1 otherwise.
"""

import json
import sys


def fail(msg):
    print(f"check_obs_schema: FAIL: {msg}")
    sys.exit(1)


def check_trace(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: no top-level traceEvents object")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents empty or not an array")
    phases = set()
    for i, ev in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"{path}: event {i} missing '{key}': {ev}")
        if not isinstance(ev["ts"], (int, float)):
            fail(f"{path}: event {i} non-numeric ts")
        if ev["ph"] == "X" and "dur" not in ev:
            fail(f"{path}: complete event {i} missing dur")
        if ev["ph"] == "i" and "s" not in ev:
            fail(f"{path}: instant event {i} missing scope")
        phases.add(ev["ph"])
    if "X" not in phases:
        fail(f"{path}: no complete ('X') span events")
    print(f"check_obs_schema: {path}: {len(events)} events, "
          f"phases {sorted(phases)}")


def check_metrics(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    # Either a bare registry export or a {"sim_time_ps", "metrics"}
    # snapshot wrapper.
    if "metrics" in doc:
        doc = doc["metrics"]
    for family in ("counters", "gauges", "histograms"):
        if family not in doc or not isinstance(doc[family], dict):
            fail(f"{path}: missing '{family}' object")
    for name, value in {**doc["counters"], **doc["gauges"]}.items():
        if not isinstance(value, (int, float)):
            fail(f"{path}: {name} not numeric: {value!r}")
    for name, hist in doc["histograms"].items():
        for key in ("total", "underflow", "buckets"):
            if key not in hist:
                fail(f"{path}: histogram {name} missing '{key}'")
        if not isinstance(hist["buckets"], list):
            fail(f"{path}: histogram {name} buckets not an array")
        if hist["total"] < hist["underflow"] + sum(hist["buckets"]) - 1e-9:
            fail(f"{path}: histogram {name} total < bucket sum")
    print(f"check_obs_schema: {path}: {len(doc['counters'])} counters, "
          f"{len(doc['gauges'])} gauges, "
          f"{len(doc['histograms'])} histograms")


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        sys.exit(2)
    check_trace(sys.argv[1])
    check_metrics(sys.argv[2])
    print("check_obs_schema: OK")


if __name__ == "__main__":
    main()
