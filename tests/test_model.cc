// Unit tests for model generation and the Model Reload cost model (§4.3).

#include <gtest/gtest.h>

#include "rank/model.h"

namespace catapult::rank {
namespace {

Model::Config SmallModelConfig() {
    Model::Config config;
    config.expression_count = 200;
    config.tree_count = 600;
    return config;
}

TEST(Model, GenerateIsDeterministic) {
    const auto a = Model::Generate(1, 42, SmallModelConfig());
    const auto b = Model::Generate(1, 42, SmallModelConfig());
    EXPECT_EQ(a->total_ffe_ops(), b->total_ffe_ops());
    EXPECT_EQ(a->total_tree_nodes(), b->total_tree_nodes());
    EXPECT_EQ(a->ffe0_programs().size(), b->ffe0_programs().size());
}

TEST(Model, DifferentModelIdsDiffer) {
    const auto a = Model::Generate(1, 42, SmallModelConfig());
    const auto b = Model::Generate(2, 42, SmallModelConfig());
    EXPECT_NE(a->total_ffe_ops(), b->total_ffe_ops());
}

TEST(Model, ExpressionsPartitionedAcrossFfeChips) {
    const auto model = Model::Generate(1, 42, SmallModelConfig());
    EXPECT_FALSE(model->ffe0_programs().empty());
    EXPECT_FALSE(model->ffe1_programs().empty());
    // Rough balance: neither chip holds everything.
    std::int64_t i0 = 0, i1 = 0;
    for (const auto& p : model->ffe0_programs()) i0 += p.InstructionCount();
    for (const auto& p : model->ffe1_programs()) i1 += p.InstructionCount();
    EXPECT_GT(i0, 0);
    EXPECT_GT(i1, 0);
    const double balance = static_cast<double>(i0) / static_cast<double>(i0 + i1);
    EXPECT_GT(balance, 0.25);
    EXPECT_LT(balance, 0.75);
}

TEST(Model, MetafeatureConsumersRunDownstream) {
    // Programs on FFE1 may read metafeatures; programs on FFE0 that
    // read a metafeature would violate pipeline order.
    Model::Config config = SmallModelConfig();
    config.expressions.small_probability = 0.5;  // force big expressions
    const auto model = Model::Generate(3, 99, config);
    EXPECT_GT(model->metafeature_count(), 0);
    for (const auto& program : model->ffe0_programs()) {
        bool writes_meta =
            program.output_slot >= kMetaFeatureBase &&
            program.output_slot < kMetaFeatureBase + kMetaFeatureSlots;
        for (const auto& instr : program.instructions) {
            if (instr.op == ffe::OpCode::kLoadFeature &&
                instr.feature >= kMetaFeatureBase &&
                instr.feature < kMetaFeatureBase + kMetaFeatureSlots) {
                // Only allowed if this chip also produced it earlier —
                // our partition forbids it entirely on FFE0 unless the
                // program itself is a metafeature producer chain.
                EXPECT_TRUE(writes_meta)
                    << "FFE0 consumer program reads a metafeature";
            }
        }
    }
}

TEST(Model, ReloadBytesPerStage) {
    const auto model = Model::Generate(1, 42, SmallModelConfig());
    EXPECT_GT(model->ReloadBytes(PipelineStage::kFfe0), 0);
    EXPECT_GT(model->ReloadBytes(PipelineStage::kFfe1), 0);
    EXPECT_GT(model->ReloadBytes(PipelineStage::kScoring0), 0);
    EXPECT_GT(model->ReloadBytes(PipelineStage::kCompression), 0);
    EXPECT_EQ(model->ReloadBytes(PipelineStage::kSpare), 0);
}

TEST(ModelStore, CachesGeneratedModels) {
    ModelStore store;
    const Model& a = store.GetOrGenerate(5, 42);
    const Model& b = store.GetOrGenerate(5, 42);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(store.resident_models(), 1u);
    store.GetOrGenerate(6, 42);
    EXPECT_EQ(store.resident_models(), 2u);
    EXPECT_NE(store.Find(5), nullptr);
    EXPECT_EQ(store.Find(99), nullptr);
}

TEST(ModelStore, WorstCaseReloadMatchesPaper) {
    // §4.3: "Model Reload can take up to 250 us" — all 2,014 M20Ks
    // reloaded from DRAM at DDR3-1333 (dual channel).
    ModelStore store;
    const Time worst = store.WorstCaseReloadTime();
    EXPECT_LE(worst, Microseconds(250));
    EXPECT_GE(worst, Microseconds(200));
}

TEST(ModelStore, TypicalReloadMuchLessThanWorstCase) {
    // §4.3: "In practice model reload takes much less than 250 us
    // because not all embedded memories ... need to be reloaded."
    ModelStore::Config config;
    config.model.expression_count = 2'400;
    config.model.tree_count = 6'000;
    ModelStore store(config);
    const Model& model = store.GetOrGenerate(0, 42);
    const Time reload = store.PipelineReloadTime(model);
    EXPECT_LT(reload, store.WorstCaseReloadTime());
    EXPECT_GT(reload, Microseconds(5));
}

TEST(ModelStore, StageReloadScalesWithFootprint) {
    ModelStore store;
    const Model& model = store.GetOrGenerate(0, 42);
    // Scoring shards carry the largest memories (Table 1 RAM 88-90%).
    EXPECT_GE(store.StageReloadTime(model, PipelineStage::kScoring0),
              store.StageReloadTime(model, PipelineStage::kCompression));
    EXPECT_EQ(store.StageReloadTime(model, PipelineStage::kSpare), 0);
}

TEST(PipelineStage, Names) {
    EXPECT_STREQ(ToString(PipelineStage::kFeatureExtraction), "FE");
    EXPECT_STREQ(ToString(PipelineStage::kSpare), "Spare");
    EXPECT_EQ(kPipelineStageCount, 8);
}

}  // namespace
}  // namespace catapult::rank
