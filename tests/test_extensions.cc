// Tests for the paper's forward-looking extensions, implemented here:
// partial reconfiguration (§3.2), FDR DRAM spill (§3.6), and the boot
// failure modes that exercise the full §3.5 reboot ladder.

#include <gtest/gtest.h>

#include "service/load_generator.h"
#include "service/stage_role.h"
#include "service/testbed.h"
#include "shell/flight_data_recorder.h"

namespace catapult {
namespace {

service::PodTestbed::Config FastConfig() {
    service::PodTestbed::Config config;
    config.service.models.model.expression_count = 300;
    config.service.models.model.tree_count = 900;
    config.fabric.device.configure_time = Milliseconds(10);
    config.host.soft_reboot_duration = Milliseconds(100);
    config.host.hard_reboot_duration = Milliseconds(300);
    config.host.crash_reboot_delay = Milliseconds(20);
    return config;
}

// --- Partial reconfiguration (§3.2) -----------------------------------

TEST(PartialReconfig, SwapsRoleWhileShellStaysActive) {
    service::PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    auto& shell = bed.fabric().shell(bed.service().RingNode(3));
    bool done = false;
    shell.PartialReconfigure(service::StageBitstream(
                                 rank::PipelineStage::kCompression),
                             [&](bool ok) { done = ok; });
    EXPECT_TRUE(shell.partial_reconfig_active());
    // The device never leaves Active and RX halt never engages.
    EXPECT_TRUE(shell.device().active());
    EXPECT_FALSE(shell.rx_halted());
    bed.simulator().Run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(shell.partial_reconfig_active());
    EXPECT_EQ(shell.partial_role_image().role_name, "rank.Comp");
}

TEST(PartialReconfig, TransitTrafficKeepsFlowing) {
    // §3.2: "even routing inter-FPGA traffic while a reconfiguration is
    // taking place." Documents whose route crosses the swapping node's
    // ROUTER (not its role) must be unaffected.
    service::PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    // Swap the SPARE's role: ring traffic transits its router between
    // Scoring2 and the injectors but never terminates at its role.
    auto& spare_shell = bed.fabric().shell(bed.service().RingNode(7));
    bool swap_done = false;
    spare_shell.PartialReconfigure(
        service::StageBitstream(rank::PipelineStage::kSpare),
        [&](bool ok) { swap_done = ok; });

    rank::DocumentGenerator generator(5);
    int ok_count = 0;
    for (int i = 0; i < 6; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        bed.service().Inject(0, i % 8, request,
                             [&](const service::ScoreResult& r) {
                                 if (r.ok) ++ok_count;
                             });
    }
    bed.simulator().Run();
    EXPECT_TRUE(swap_done);
    EXPECT_EQ(ok_count, 6);
}

TEST(PartialReconfig, LocalRoleTrafficDroppedDuringSwap) {
    service::PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    // Swap the FFE0 role while documents flow: those documents die in
    // the role region and surface as host timeouts (§3.2 model).
    auto& ffe0_shell = bed.fabric().shell(bed.service().RingNode(1));
    ffe0_shell.PartialReconfigure(
        service::StageBitstream(rank::PipelineStage::kFfe0), [](bool) {});

    rank::DocumentGenerator generator(7);
    int timeouts = 0;
    for (int i = 0; i < 3; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        bed.service().Inject(0, i, request,
                             [&](const service::ScoreResult& r) {
                                 if (!r.ok) ++timeouts;
                             });
    }
    bed.simulator().Run();
    EXPECT_EQ(timeouts, 3);
}

TEST(PartialReconfig, RejectedWhileDeviceInactive) {
    service::PodTestbed bed(FastConfig());
    auto& shell = bed.fabric().shell(0);  // not yet configured
    bool result = true;
    shell.PartialReconfigure(fpga::GoldenBitstream(),
                             [&](bool ok) { result = ok; });
    bed.simulator().Run();
    EXPECT_FALSE(result);
}

TEST(PartialReconfig, RejectedWhenAlreadyInProgress) {
    service::PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    auto& shell = bed.fabric().shell(bed.service().RingNode(2));
    bool first = false, second = true;
    shell.PartialReconfigure(fpga::GoldenBitstream(),
                             [&](bool ok) { first = ok; });
    shell.PartialReconfigure(fpga::GoldenBitstream(),
                             [&](bool ok) { second = ok; });
    bed.simulator().Run();
    EXPECT_TRUE(first);
    EXPECT_FALSE(second);
}

TEST(PartialReconfig, MuchFasterThanFullReconfiguration) {
    service::PodTestbed::Config config = FastConfig();
    config.fabric.device.configure_time = Milliseconds(900);  // realistic
    service::PodTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());
    auto& shell = bed.fabric().shell(bed.service().RingNode(4));

    const Time t0 = bed.simulator().Now();
    bool done = false;
    shell.PartialReconfigure(
        service::StageBitstream(rank::PipelineStage::kScoring0),
        [&](bool ok) { done = ok; });
    bed.simulator().Run();
    ASSERT_TRUE(done);
    const Time partial = bed.simulator().Now() - t0;
    EXPECT_LT(partial, Milliseconds(900));  // beats full configuration
}

// --- FDR DRAM spill (§3.6) ---------------------------------------------

TEST(FdrDramSpill, EvictedRecordsSpillToDram) {
    shell::FlightDataRecorder fdr;
    fdr.EnableDramSpill(2'000);
    for (int i = 0; i < 1'500; ++i) {
        shell::FdrRecord record;
        record.trace_id = static_cast<std::uint64_t>(i);
        fdr.Record(record);
    }
    // Window holds the newest 512; the older 988 spilled to DRAM.
    EXPECT_EQ(fdr.dram_history().size(), 1'500u - 512u);
    EXPECT_EQ(fdr.dram_history().front().trace_id, 0u);
    const auto extended = fdr.StreamOutExtended();
    ASSERT_EQ(extended.size(), 1'500u);
    for (std::size_t i = 0; i < extended.size(); ++i) {
        EXPECT_EQ(extended[i].trace_id, static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(fdr.spill_overflow(), 0u);
}

TEST(FdrDramSpill, BoundedWithOverflowCounter) {
    shell::FlightDataRecorder fdr;
    fdr.EnableDramSpill(100);
    for (int i = 0; i < 1'000; ++i) {
        fdr.Record(shell::FdrRecord{});
    }
    EXPECT_EQ(fdr.dram_history().size(), 100u);
    EXPECT_EQ(fdr.spill_overflow(), 1'000u - 512u - 100u);
}

TEST(FdrDramSpill, DisabledByDefault) {
    shell::FlightDataRecorder fdr;
    EXPECT_FALSE(fdr.dram_spill_enabled());
    for (int i = 0; i < 1'000; ++i) fdr.Record(shell::FdrRecord{});
    EXPECT_TRUE(fdr.dram_history().empty());
    EXPECT_EQ(fdr.StreamOutExtended().size(),
              shell::FlightDataRecorder::kWindow);
}

TEST(FdrDramSpill, ResetClearsHistory) {
    shell::FlightDataRecorder fdr;
    fdr.EnableDramSpill(100);
    for (int i = 0; i < 700; ++i) fdr.Record(shell::FdrRecord{});
    fdr.Reset();
    EXPECT_TRUE(fdr.dram_history().empty());
    EXPECT_EQ(fdr.spill_overflow(), 0u);
}

// --- Boot failure ladder (§3.5) ----------------------------------------

TEST(BootFailure, SoftFailureEscalatesToHardReboot) {
    service::PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    const int node = 9;  // not on the ring
    bed.host(node).BreakBoot(/*soft_failures=*/2);
    bed.host(node).CrashAndReboot("disk corruption");
    std::vector<mgmt::MachineReport> reports;
    bed.health_monitor().Investigate(
        {node},
        [&](std::vector<mgmt::MachineReport> r) { reports = std::move(r); });
    bed.simulator().Run();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(reports[0].needed_soft_reboot);
    EXPECT_TRUE(reports[0].needed_hard_reboot);
    EXPECT_EQ(reports[0].fault, mgmt::FaultType::kUnresponsiveRecovered);
    EXPECT_TRUE(bed.host(node).responsive());
}

TEST(BootFailure, PermanentFailureFlaggedForService) {
    // §3.5: "soft reboot, hard reboot, and then flagged for manual
    // service and possible replacement."
    service::PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    const int node = 10;
    bed.host(node).BreakBoot(/*soft_failures=*/100, /*permanent=*/true);
    bed.host(node).CrashAndReboot("dead motherboard");
    std::vector<mgmt::MachineReport> reports;
    bed.health_monitor().Investigate(
        {node},
        [&](std::vector<mgmt::MachineReport> r) { reports = std::move(r); });
    bed.simulator().Run();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].fault, mgmt::FaultType::kUnresponsiveFatal);
    EXPECT_EQ(bed.host(node).state(),
              host::ServerState::kFlaggedForService);
    EXPECT_EQ(bed.health_monitor().counters().flagged_for_service, 1u);
}

}  // namespace
}  // namespace catapult
