// Unit tests for the slot DMA engine + PCIe link (§3.1).

#include <gtest/gtest.h>

#include "shell/dma_engine.h"
#include "shell/packet.h"
#include "shell/pcie_link.h"
#include "sim/simulator.h"

namespace catapult::shell {
namespace {

TEST(PcieLink, TransferTiming) {
    sim::Simulator sim;
    PcieLink link(&sim);
    Time done_at = -1;
    link.Transfer(16 * 1024, [&](bool ok) {
        EXPECT_TRUE(ok);
        done_at = sim.Now();
    });
    sim.Run();
    // §3.1 design goal: "fewer than 10 us for transfers of 16 KB or less".
    EXPECT_GT(done_at, 0);
    EXPECT_LT(done_at, Microseconds(10));
}

TEST(PcieLink, QueuedTransfersSerialize) {
    sim::Simulator sim;
    PcieLink link(&sim);
    std::vector<Time> completions;
    for (int i = 0; i < 3; ++i) {
        link.Transfer(8192, [&](bool) { completions.push_back(sim.Now()); });
    }
    sim.Run();
    ASSERT_EQ(completions.size(), 3u);
    const Time unit = link.TransferTime(8192);
    EXPECT_EQ(completions[0], unit);
    EXPECT_EQ(completions[1], 2 * unit);
    EXPECT_EQ(completions[2], 3 * unit);
}

TEST(PcieLink, SurpriseRemovalFailsTransfers) {
    sim::Simulator sim;
    PcieLink link(&sim);
    link.set_device_present(false);
    bool ok = true;
    link.Transfer(512, [&](bool success) { ok = success; });
    sim.Run();
    EXPECT_FALSE(ok);
    EXPECT_EQ(link.counters().errors, 1u);
}

struct DmaRig {
    sim::Simulator sim;
    DmaEngine dma{&sim};
    std::vector<PacketPtr> ingress;
    std::vector<std::pair<int, PacketPtr>> outputs;
    std::vector<int> cleared;

    DmaRig() {
        dma.set_on_ingress([this](PacketPtr p) { ingress.push_back(std::move(p)); });
        dma.set_on_output_ready([this](int slot, PacketPtr p) {
            outputs.emplace_back(slot, std::move(p));
        });
        dma.set_on_input_cleared([this](int slot) { cleared.push_back(slot); });
    }
};

TEST(DmaEngine, HostToFpgaPath) {
    DmaRig rig;
    auto packet = MakePacket(PacketType::kScoringRequest, 0, 1, 6500);
    EXPECT_TRUE(rig.dma.SetInputFull(5, packet));
    EXPECT_TRUE(rig.dma.InputFull(5));
    rig.sim.Run();
    ASSERT_EQ(rig.ingress.size(), 1u);
    EXPECT_EQ(rig.ingress[0]->slot, 5);          // slot stamped for response
    EXPECT_FALSE(rig.dma.InputFull(5));          // full bit cleared
    ASSERT_EQ(rig.cleared.size(), 1u);
    EXPECT_EQ(rig.cleared[0], 5);
}

TEST(DmaEngine, DoubleFillRejected) {
    DmaRig rig;
    EXPECT_TRUE(rig.dma.SetInputFull(0, MakePacket(PacketType::kScoringRequest,
                                                   0, 1, 100)));
    // §3.1: a thread owns its slot exclusively; refilling a full slot is
    // a protocol violation the engine rejects.
    EXPECT_FALSE(rig.dma.SetInputFull(0, MakePacket(PacketType::kScoringRequest,
                                                    0, 1, 100)));
}

TEST(DmaEngine, OversizedRequestRejected) {
    DmaRig rig;
    EXPECT_FALSE(rig.dma.SetInputFull(
        0, MakePacket(PacketType::kScoringRequest, 0, 1, kDmaSlotBytes + 1)));
}

TEST(DmaEngine, SnapshotFairness) {
    // §3.1: "Fairness is achieved by taking periodic snapshots of the
    // full bits, and DMA'ing all full slots before taking another
    // snapshot." The first fill triggers snapshot #1 = {10}; slots 20
    // and 0 fill while transfer 10 is in flight, so they land together
    // in snapshot #2, drained in slot order {0, 20}.
    DmaRig rig;
    EXPECT_TRUE(rig.dma.SetInputFull(10, MakePacket(PacketType::kScoringRequest,
                                                    0, 1, 1000)));
    EXPECT_TRUE(rig.dma.SetInputFull(20, MakePacket(PacketType::kScoringRequest,
                                                    0, 1, 1000)));
    EXPECT_TRUE(rig.dma.SetInputFull(0, MakePacket(PacketType::kScoringRequest,
                                                   0, 1, 1000)));
    rig.sim.Run();
    ASSERT_EQ(rig.ingress.size(), 3u);
    EXPECT_EQ(rig.ingress[0]->slot, 10);
    EXPECT_EQ(rig.ingress[1]->slot, 0);
    EXPECT_EQ(rig.ingress[2]->slot, 20);
    EXPECT_GE(rig.dma.counters().snapshots, 2u);
}

TEST(DmaEngine, SnapshotOrderIsFairUnderContinuousRefill) {
    // A slot that refills continuously cannot starve later slots: every
    // full slot in a snapshot drains before any refilled slot repeats.
    DmaRig rig;
    int slot0_count = 0;
    rig.dma.set_on_input_cleared([&](int slot) {
        if (slot == 0 && slot0_count < 4) {
            ++slot0_count;
            rig.dma.SetInputFull(0, MakePacket(PacketType::kScoringRequest,
                                               0, 1, 1000));
        }
    });
    rig.dma.SetInputFull(0, MakePacket(PacketType::kScoringRequest, 0, 1, 1000));
    rig.dma.SetInputFull(5, MakePacket(PacketType::kScoringRequest, 0, 1, 1000));
    rig.dma.SetInputFull(9, MakePacket(PacketType::kScoringRequest, 0, 1, 1000));
    rig.sim.Run();
    // Slots 5 and 9 must appear among the first few ingresses — slot 0's
    // refills cannot push them out more than one snapshot.
    ASSERT_GE(rig.ingress.size(), 3u);
    bool five_early = false, nine_early = false;
    for (std::size_t i = 0; i < 4 && i < rig.ingress.size(); ++i) {
        if (rig.ingress[i]->slot == 5) five_early = true;
        if (rig.ingress[i]->slot == 9) nine_early = true;
    }
    EXPECT_TRUE(five_early);
    EXPECT_TRUE(nine_early);
}

TEST(DmaEngine, FpgaToHostWithInterrupt) {
    DmaRig rig;
    auto result = MakePacket(PacketType::kScoringResponse, 1, 0, 64);
    rig.dma.SendToHost(3, result);
    rig.sim.Run();
    ASSERT_EQ(rig.outputs.size(), 1u);
    EXPECT_EQ(rig.outputs[0].first, 3);
    EXPECT_TRUE(rig.dma.OutputFull(3));
    // Interrupt latency is charged before the callback (§3.1).
    EXPECT_GE(rig.sim.Now(), rig.dma.config().interrupt_latency);
}

TEST(DmaEngine, OutputSlotBackpressure) {
    // §3.1: the FPGA "checks to make sure that the output slot is empty"
    // before DMA'ing; a second result queues until the host consumes.
    DmaRig rig;
    rig.dma.SendToHost(7, MakePacket(PacketType::kScoringResponse, 1, 0, 64));
    rig.sim.Run();
    ASSERT_EQ(rig.outputs.size(), 1u);

    rig.dma.SendToHost(7, MakePacket(PacketType::kScoringResponse, 1, 0, 64));
    rig.sim.Run();
    EXPECT_EQ(rig.outputs.size(), 1u);  // stalled: slot still full
    EXPECT_GT(rig.dma.counters().output_stalls, 0u);

    rig.dma.ConsumeOutput(7);
    rig.sim.Run();
    EXPECT_EQ(rig.outputs.size(), 2u);
}

TEST(DmaEngine, SixtyFourSlotsOfSixtyFourKb) {
    // §3.1/§4: "we use 64 slots of 64 KB each".
    EXPECT_EQ(kDmaSlotCount, 64);
    EXPECT_EQ(kDmaSlotBytes, 64 * 1024);
}

TEST(DmaEngine, RoundTripUnderTwentyMicroseconds) {
    // End-to-end slot round trip (16 KB in, 64 B out) is comfortably
    // within the latency budget that motivated user-level DMA.
    DmaRig rig;
    Time response_at = -1;
    rig.dma.set_on_output_ready([&](int, PacketPtr) {
        response_at = rig.sim.Now();
    });
    rig.dma.set_on_ingress([&](PacketPtr p) {
        rig.dma.SendToHost(p->slot, MakePacket(PacketType::kScoringResponse,
                                               1, 0, 64));
    });
    rig.dma.SetInputFull(0, MakePacket(PacketType::kScoringRequest, 0, 1,
                                       16 * 1024));
    rig.sim.Run();
    EXPECT_GT(response_at, 0);
    EXPECT_LT(response_at, Microseconds(20));
}

}  // namespace
}  // namespace catapult::shell
