// Unit tests for statistics collection.

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace catapult {
namespace {

TEST(RunningStat, BasicMoments) {
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
    EXPECT_EQ(s.count(), 8);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero) {
    RunningStat s;
    EXPECT_EQ(s.count(), 0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesCombined) {
    RunningStat a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = i * 0.7;
        a.Add(x);
        all.Add(x);
    }
    for (int i = 0; i < 70; ++i) {
        const double x = 100 - i * 1.3;
        b.Add(x);
        all.Add(x);
    }
    a.Merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(SampleStat, ExactPercentiles) {
    SampleStat s;
    for (int i = 1; i <= 100; ++i) s.Add(i);
    EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.Percentile(95), 95.0);
    EXPECT_DOUBLE_EQ(s.Percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
}

TEST(SampleStat, PercentileUnsortedInput) {
    SampleStat s;
    for (double x : {5.0, 1.0, 4.0, 2.0, 3.0}) s.Add(x);
    EXPECT_DOUBLE_EQ(s.Median(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleStat, InsertAfterQueryInvalidatesCache) {
    SampleStat s;
    s.Add(1.0);
    EXPECT_DOUBLE_EQ(s.Median(), 1.0);
    s.Add(100.0);
    s.Add(101.0);
    EXPECT_DOUBLE_EQ(s.Median(), 100.0);
}

TEST(SampleStat, EmptyReturnsZero) {
    SampleStat s;
    EXPECT_DOUBLE_EQ(s.Percentile(95), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Log2Histogram, BucketsAndCdf) {
    Log2Histogram h;
    // 4 values in [4, 8), 4 in [8, 16).
    for (double x : {4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 15.0}) h.Add(x);
    EXPECT_EQ(h.total(), 8);
    EXPECT_NEAR(h.CumulativeFraction(8.0), 0.5, 1e-9);
    EXPECT_NEAR(h.CumulativeFraction(16.0), 1.0, 1e-9);
    EXPECT_NEAR(h.CumulativeFraction(1.0), 0.0, 0.01);
}

TEST(Log2Histogram, UnderflowCounted) {
    Log2Histogram h;
    h.Add(0.5);
    h.Add(2.0);
    EXPECT_EQ(h.total(), 2);
    EXPECT_NEAR(h.CumulativeFraction(1.5), 0.5, 1e-9);
}

TEST(RateMeter, RatePerSecond) {
    RateMeter m;
    using namespace time_literals;
    m.Record(0);
    for (int i = 1; i <= 1000; ++i) m.Record(i * kMillisecond);
    // 1001 events over 1 second.
    EXPECT_NEAR(m.RatePerSecond(), 1001.0, 1.5);
}

TEST(RateMeter, EmptyOrInstantIsZero) {
    RateMeter m;
    EXPECT_DOUBLE_EQ(m.RatePerSecond(), 0.0);
    m.Record(5);
    EXPECT_DOUBLE_EQ(m.RatePerSecond(), 0.0);  // zero elapsed span
}

}  // namespace
}  // namespace catapult
