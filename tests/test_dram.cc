// Unit tests for the DDR3 DRAM controller model (§2.1, §3.2).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "shell/dram_controller.h"
#include "sim/simulator.h"

namespace catapult::shell {
namespace {

TEST(DramController, CapacityBandwidthTradeoff) {
    sim::Simulator sim;
    // §2.1: dual-rank 8 GB at DDR3-1333, or 4 GB at DDR3-1600.
    DramController::Config dual;
    dual.mode = DramMode::kDualRank1333;
    DramController::Config single;
    single.mode = DramMode::kSingleRank1600;

    DramController a(&sim, Rng(1), dual);
    DramController b(&sim, Rng(2), single);
    EXPECT_GT(a.Capacity(), b.Capacity());
    EXPECT_LT(a.PeakBandwidth().bits_per_second(),
              b.PeakBandwidth().bits_per_second());
}

TEST(DramController, BoardTotalCapacityMatchesPaper) {
    sim::Simulator sim;
    DramController channel(&sim, Rng(1));
    // Two channels x 4 GB = the board's 8 GB (§2.1).
    EXPECT_EQ(2 * channel.Capacity(), GiB(8));
}

TEST(DramController, TransferCompletesWithLatencyAndBandwidth) {
    sim::Simulator sim;
    DramController dram(&sim, Rng(1));
    Time done = -1;
    dram.Transfer(MiB(1), [&](bool ok) {
        EXPECT_TRUE(ok);
        done = sim.Now();
    });
    sim.Run();
    EXPECT_EQ(done, dram.TransferTime(MiB(1)));
    // ~1 MiB at ~8.5 GB/s effective: on the order of 120 us.
    EXPECT_GT(done, Microseconds(80));
    EXPECT_LT(done, Microseconds(250));
}

TEST(DramController, QueuedTransfersAreFifo) {
    sim::Simulator sim;
    DramController dram(&sim, Rng(1));
    std::vector<int> order;
    dram.Transfer(KiB(64), [&](bool) { order.push_back(0); });
    dram.Transfer(KiB(1), [&](bool) { order.push_back(1); });
    EXPECT_EQ(dram.QueueDepth(), 1u);  // one queued behind the active one
    sim.Run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(DramController, SingleBitErrorsCorrectedAndCounted) {
    sim::Simulator sim;
    DramController::Config config;
    config.single_bit_error_rate = 1.0;  // every transfer
    DramController dram(&sim, Rng(1), config);
    bool ok = false;
    dram.Transfer(KiB(4), [&](bool success) { ok = success; });
    sim.Run();
    EXPECT_TRUE(ok);  // corrected by ECC, transfer succeeds
    EXPECT_EQ(dram.status().single_bit_errors, 1u);
}

TEST(DramController, DoubleBitErrorsFailTransfer) {
    sim::Simulator sim;
    DramController::Config config;
    config.double_bit_error_rate = 1.0;
    DramController dram(&sim, Rng(1), config);
    bool ok = true;
    dram.Transfer(KiB(4), [&](bool success) { ok = success; });
    sim.Run();
    EXPECT_FALSE(ok);  // uncorrectable (§3.2: double-bit detection)
    EXPECT_EQ(dram.status().double_bit_errors, 1u);
}

TEST(DramController, CalibrationFailureFailsTransfers) {
    sim::Simulator sim;
    DramController dram(&sim, Rng(1));
    dram.set_calibrated(false);
    bool ok = true;
    dram.Transfer(KiB(4), [&](bool success) { ok = success; });
    sim.Run();
    EXPECT_FALSE(ok);
    EXPECT_FALSE(dram.status().calibrated);
}

TEST(DramController, ModelReloadWorstCaseBound) {
    // §4.3: reloading all 2,014 M20K RAMs (5.03 MB) from DDR3-1333
    // takes "up to 250 us" — dual-channel streaming at near-peak.
    const Bytes all_m20k = 2'014ll * 20'480 / 8;
    const Bandwidth dual_channel = Bandwidth::MegabytesPerSecond(2 * 10'667);
    const Time reload = dual_channel.SerializationTime(all_m20k);
    EXPECT_LT(reload, Microseconds(250));
    EXPECT_GT(reload, Microseconds(200));
}

}  // namespace
}  // namespace catapult::shell
