// Tests for the Figure 8 stage-loopback rig.

#include <gtest/gtest.h>

#include "service/stage_loopback.h"

namespace catapult::service {
namespace {

StageLoopback::Config SmallConfig(rank::PipelineStage stage, bool via_sl3,
                                  int threads) {
    StageLoopback::Config config;
    config.stage = stage;
    config.via_sl3 = via_sl3;
    config.threads = threads;
    config.documents_per_thread = 60;
    config.model.expression_count = 300;
    config.model.tree_count = 900;
    return config;
}

TEST(StageLoopback, CompletesAllDocuments) {
    StageLoopback rig(SmallConfig(rank::PipelineStage::kFeatureExtraction,
                                  false, 2));
    const auto result = rig.Run();
    EXPECT_EQ(result.completed, 120u);
    EXPECT_GT(result.documents_per_second, 0.0);
}

TEST(StageLoopback, MultithreadingRaisesThroughput) {
    // Figure 8: 12-thread injection beats 1-thread on every stage.
    const auto one = StageLoopback(SmallConfig(
        rank::PipelineStage::kFeatureExtraction, false, 1)).Run();
    const auto twelve = StageLoopback(SmallConfig(
        rank::PipelineStage::kFeatureExtraction, false, 12)).Run();
    EXPECT_GT(twelve.documents_per_second, one.documents_per_second * 1.5);
}

TEST(StageLoopback, Sl3LoopbackAddsLatency) {
    const auto pcie = StageLoopback(SmallConfig(
        rank::PipelineStage::kCompression, false, 1)).Run();
    const auto sl3 = StageLoopback(SmallConfig(
        rank::PipelineStage::kCompression, true, 1)).Run();
    EXPECT_GT(sl3.latency_us.mean(), pcie.latency_us.mean());
    // Single-threaded throughput drops when round-trip latency grows.
    EXPECT_LT(sl3.documents_per_second, pcie.documents_per_second);
}

TEST(StageLoopback, FeatureExtractionIsSlowestStage) {
    // Figure 8 / §5: "the pipeline is limited by the throughput of FE."
    double fe_rate = 0.0;
    double min_other = 1e18;
    for (int s = 0; s < rank::kPipelineStageCount; ++s) {
        const auto stage = static_cast<rank::PipelineStage>(s);
        if (stage == rank::PipelineStage::kSpare) continue;
        const auto result =
            StageLoopback(SmallConfig(stage, false, 12)).Run();
        if (stage == rank::PipelineStage::kFeatureExtraction) {
            fe_rate = result.documents_per_second;
        } else {
            min_other = std::min(min_other, result.documents_per_second);
        }
    }
    EXPECT_LT(fe_rate, min_other);
}

}  // namespace
}  // namespace catapult::service
