// Unit tests for the Shell composition: role hosting, reconfiguration
// protocol, health vector, and the Flight Data Recorder (§3.2-§3.6).

#include <gtest/gtest.h>

#include <deque>

#include "fpga/fpga_device.h"
#include "shell/flight_data_recorder.h"
#include "shell/shell.h"
#include "sim/simulator.h"

namespace catapult::shell {
namespace {

/** Role that records delivered packets. */
class RecordingRole : public Role {
  public:
    void OnPacket(PacketPtr packet) override {
        received.push_back(std::move(packet));
    }
    std::string RoleName() const override { return "test.recorder"; }

    std::vector<PacketPtr> received;
};

struct ShellRig {
    sim::Simulator sim;
    fpga::FpgaDevice device0{&sim, "dev0", Rng(1)};
    fpga::FpgaDevice device1{&sim, "dev1", Rng(2)};
    Shell shell0{&sim, 0, "shell0", &device0, Rng(3)};
    Shell shell1{&sim, 1, "shell1", &device1, Rng(4)};
    RecordingRole role0, role1;

    ShellRig() {
        // Wire east(0) <-> west(1) like the fabric does.
        shell0.link(Port::kEast).ConnectTo(&shell1.link(Port::kWest));
        shell0.SetNeighborId(Port::kEast, 1);
        shell1.SetNeighborId(Port::kWest, 0);
        shell0.router().routing_table().SetRoute(1, Port::kEast);
        shell1.router().routing_table().SetRoute(0, Port::kWest);
        shell0.SetRole(&role0);
        shell1.SetRole(&role1);
        device0.flash().InstallImage(fpga::FlashSlot::kApplication,
                                     fpga::GoldenBitstream());
        device1.flash().InstallImage(fpga::FlashSlot::kApplication,
                                     fpga::GoldenBitstream());
        shell0.ReleaseRxHalt();
        shell1.ReleaseRxHalt();
    }
};

TEST(Shell, RoleToRoleAcrossLink) {
    ShellRig rig;
    auto packet = MakePacket(PacketType::kScoringRequest, 0, 1, 2048);
    rig.shell0.SendFromRole(packet);
    rig.sim.Run();
    ASSERT_EQ(rig.role1.received.size(), 1u);
    EXPECT_EQ(rig.role1.received[0]->size, 2048);
}

TEST(Shell, ResponsesGoToPcieNotRole) {
    ShellRig rig;
    int host_deliveries = 0;
    rig.shell0.dma().set_on_output_ready(
        [&](int, PacketPtr) { ++host_deliveries; });
    auto response = MakePacket(PacketType::kScoringResponse, 1, 0, 64);
    response->slot = 4;
    rig.shell1.SendFromRole(response);
    rig.sim.Run();
    EXPECT_EQ(host_deliveries, 1);
    EXPECT_TRUE(rig.role0.received.empty());
}

TEST(Shell, ComesUpWithRxHaltEngaged) {
    ShellRig rig;
    // Reconfigure shell1; afterwards it must drop link traffic until the
    // Mapping Manager releases RX Halt (§3.4).
    bool done = false;
    rig.shell1.Reconfigure(fpga::FlashSlot::kApplication, /*graceful=*/true,
                           [&](bool ok) { done = ok; });
    rig.sim.Run();
    ASSERT_TRUE(done);
    EXPECT_TRUE(rig.shell1.rx_halted());

    rig.shell0.SendFromRole(MakePacket(PacketType::kScoringRequest, 0, 1, 512));
    rig.sim.Run();
    EXPECT_TRUE(rig.role1.received.empty());

    rig.shell1.ReleaseRxHalt();
    rig.shell0.SendFromRole(MakePacket(PacketType::kScoringRequest, 0, 1, 512));
    rig.sim.Run();
    EXPECT_EQ(rig.role1.received.size(), 1u);
}

TEST(Shell, GracefulReconfigDoesNotCorruptNeighbor) {
    ShellRig rig;
    bool done = false;
    rig.shell0.Reconfigure(fpga::FlashSlot::kApplication, /*graceful=*/true,
                           [&](bool ok) { done = ok; });
    rig.sim.Run();
    EXPECT_TRUE(done);
    const HealthVector health = rig.shell1.CollectHealth();
    EXPECT_FALSE(health.application_error);
}

TEST(Shell, UngracefulReconfigCorruptsUnprotectedNeighbor) {
    ShellRig rig;
    // Crash reconfiguration sprays garbage with no TX Halt (§3.4).
    rig.shell0.Reconfigure(fpga::FlashSlot::kApplication, /*graceful=*/false,
                           [](bool) {});
    rig.sim.Run();
    const HealthVector health = rig.shell1.CollectHealth();
    EXPECT_TRUE(health.application_error);
}

TEST(Shell, HealthVectorNeighborIds) {
    ShellRig rig;
    const HealthVector health = rig.shell0.CollectHealth();
    // East neighbour is node 1; other ports are not cabled in this rig.
    EXPECT_EQ(health.neighbor_id[2], 1u);  // index 2 = east
    EXPECT_FALSE(health.AnyError());
}

TEST(Shell, HealthVectorFlagsDefectiveLink) {
    ShellRig rig;
    rig.shell0.link(Port::kEast).set_defective(true);
    const HealthVector health = rig.shell0.CollectHealth();
    EXPECT_TRUE(health.link_error[2]);
    EXPECT_TRUE(health.AnyError());
}

TEST(Shell, HealthVectorFlagsDramCalibration) {
    ShellRig rig;
    rig.shell0.dram(1).set_calibrated(false);
    const HealthVector health = rig.shell0.CollectHealth();
    EXPECT_TRUE(health.dram_calibration_failure);
}

TEST(Shell, HealthVectorFlagsApplicationError) {
    ShellRig rig;
    rig.shell0.FlagApplicationError();
    EXPECT_TRUE(rig.shell0.CollectHealth().application_error);
    rig.shell0.ClearApplicationError();
    EXPECT_FALSE(rig.shell0.CollectHealth().application_error);
}

TEST(Shell, FdrRecordsRouterCrossings) {
    ShellRig rig;
    auto packet = MakePacket(PacketType::kScoringRequest, 0, 1, 1024);
    packet->trace_id = 77;
    rig.shell0.SendFromRole(packet);
    rig.sim.Run();
    const auto records = rig.shell0.fdr().StreamOut();
    ASSERT_FALSE(records.empty());
    bool found = false;
    for (const auto& record : records) {
        if (record.trace_id == 77) found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Shell, FdrPowerOnRecordAfterConfiguration) {
    ShellRig rig;
    rig.shell0.Reconfigure(fpga::FlashSlot::kApplication, true, [](bool) {});
    rig.sim.Run();
    EXPECT_TRUE(rig.shell0.fdr().power_on().AllGood());
}

TEST(FlightDataRecorder, WindowIsFiveTwelve) {
    FlightDataRecorder fdr;
    EXPECT_EQ(FlightDataRecorder::kWindow, 512u);  // §3.6
    for (int i = 0; i < 1000; ++i) {
        FdrRecord record;
        record.trace_id = static_cast<std::uint64_t>(i);
        fdr.Record(record);
    }
    const auto out = fdr.StreamOut();
    ASSERT_EQ(out.size(), 512u);
    // Oldest surviving record is #488 (1000 - 512).
    EXPECT_EQ(out.front().trace_id, 488u);
    EXPECT_EQ(out.back().trace_id, 999u);
    EXPECT_EQ(fdr.total_recorded(), 1000u);
}

TEST(FlightDataRecorder, ResetClears) {
    FlightDataRecorder fdr;
    fdr.Record(FdrRecord{});
    fdr.Reset();
    EXPECT_TRUE(fdr.StreamOut().empty());
    EXPECT_FALSE(fdr.power_on().AllGood());
}

}  // namespace
}  // namespace catapult::shell
