// Unit tests for the software baseline, the shared functional pipeline,
// and — most importantly — FPGA/software score identity (§4).

#include <gtest/gtest.h>

#include "common/stats.h"
#include "rank/document_generator.h"
#include "rank/model.h"
#include "rank/software_ranker.h"
#include "sim/simulator.h"

namespace catapult::rank {
namespace {

Model::Config SmallModelConfig() {
    Model::Config config;
    config.expression_count = 150;
    config.tree_count = 450;
    return config;
}

TEST(RankingFunction, CompiledPathMatchesReferenceBitForBit) {
    // §4: "Our implementation produces results that are identical to
    // software." The compiled FFE path (what the FPGA runs) must equal
    // direct AST evaluation (what the CPU baseline runs) exactly.
    const auto model = Model::Generate(0, 1234, SmallModelConfig());
    RankingFunction function(model.get());
    DocumentGenerator generator(77);
    for (int i = 0; i < 25; ++i) {
        const CompressedRequest request = generator.Next();
        const float compiled = function.Score(request);
        const float reference = function.ReferenceScore(request);
        EXPECT_EQ(compiled, reference) << "doc " << i;
    }
}

TEST(RankingFunction, ScoresAreDeterministic) {
    const auto model = Model::Generate(0, 55, SmallModelConfig());
    RankingFunction f1(model.get());
    RankingFunction f2(model.get());
    DocumentGenerator generator(88);
    const CompressedRequest request = generator.Next();
    EXPECT_EQ(f1.Score(request), f2.Score(request));
}

TEST(RankingFunction, DifferentDocumentsScoreDifferently) {
    const auto model = Model::Generate(0, 55, SmallModelConfig());
    RankingFunction function(model.get());
    DocumentGenerator generator(99);
    const float a = function.Score(generator.Next());
    const float b = function.Score(generator.Next());
    EXPECT_NE(a, b);
}

TEST(RankingFunction, StagewiseMatchesOneShot) {
    // Running the stages the way the distributed roles do must produce
    // the same score as the one-shot path.
    const auto model = Model::Generate(0, 314, SmallModelConfig());
    RankingFunction function(model.get());
    DocumentGenerator generator(11);
    const CompressedRequest request = generator.Next();

    FeatureStore store;
    function.ExtractFeatures(request, store);
    function.RunFfe0(store);
    function.RunFfe1(store);
    FeatureStore compressed;
    function.Compress(store, compressed);
    const float staged =
        model->ensemble().shard(0).PartialScore(compressed) +
        model->ensemble().shard(1).PartialScore(compressed) +
        model->ensemble().shard(2).PartialScore(compressed);

    EXPECT_EQ(staged, function.Score(request));
}

TEST(CpuPool, ParallelismUpToCoreCount) {
    sim::Simulator sim;
    CpuPool::Config config;
    config.cores = 4;
    config.contention_alpha = 0.0;
    config.noise_sigma = 0.0;
    CpuPool pool(&sim, Rng(1), config);
    std::vector<Time> completions;
    for (int i = 0; i < 8; ++i) {
        pool.Submit(Microseconds(100),
                    [&] { completions.push_back(sim.Now()); });
    }
    EXPECT_EQ(pool.busy_cores(), 4);
    EXPECT_EQ(pool.queue_depth(), 4u);
    sim.Run();
    ASSERT_EQ(completions.size(), 8u);
    // First four finish together, second four one service later.
    EXPECT_EQ(completions[3], Microseconds(100));
    EXPECT_EQ(completions[7], Microseconds(200));
}

TEST(CpuPool, ContentionInflatesService) {
    sim::Simulator sim;
    CpuPool::Config config;
    config.cores = 12;
    config.contention_alpha = 1.0;
    config.noise_sigma = 0.0;
    CpuPool pool(&sim, Rng(1), config);

    Time solo_done = 0;
    pool.Submit(Microseconds(100), [&] { solo_done = sim.Now(); });
    sim.Run();
    EXPECT_GT(solo_done, Microseconds(100));  // 1/12 occupancy inflation
    EXPECT_LT(solo_done, Microseconds(102));

    // Saturated: inflation approaches 1 + alpha.
    sim::Simulator sim2;
    CpuPool pool2(&sim2, Rng(1), config);
    std::vector<Time> done;
    for (int i = 0; i < 12; ++i) {
        pool2.Submit(Microseconds(100), [&] { done.push_back(sim2.Now()); });
    }
    sim2.Run();
    EXPECT_GT(done.back(), Microseconds(150));
}

TEST(SoftwareCostModel, FullRankingIsMilliseconds) {
    // Software ranking of an average document takes O(1 ms) on a core —
    // the scale that makes a 95% throughput gain meaningful.
    const auto model = Model::Generate(0, 42, Model::Config{});
    const SoftwareCostModel cost;
    DocumentGenerator generator(5);
    RunningStat service_us;
    for (int i = 0; i < 200; ++i) {
        const Time t = cost.FullServiceTime(generator.Next(), *model);
        service_us.Add(ToMicroseconds(t));
    }
    EXPECT_GT(service_us.mean(), 500.0);
    EXPECT_LT(service_us.mean(), 4'000.0);
}

TEST(SoftwareCostModel, PrepIsFractionOfFull) {
    // §4: the FPGA path still pays SSD lookup + hit-vector computation
    // on the host, a fraction of the full software ranking cost.
    const auto model = Model::Generate(0, 42, Model::Config{});
    const SoftwareCostModel cost;
    DocumentGenerator generator(6);
    for (int i = 0; i < 50; ++i) {
        const CompressedRequest request = generator.Next();
        const Time full = cost.FullServiceTime(request, *model);
        const Time prep = cost.PrepServiceTime(request);
        EXPECT_LT(prep, full);
        EXPECT_GT(prep, full / 20);
    }
}

TEST(SoftwareRankServer, CompletesWithLatency) {
    sim::Simulator sim;
    const auto model = Model::Generate(0, 42, SmallModelConfig());
    SoftwareRankServer server(&sim, Rng(3));
    DocumentGenerator generator(7);
    Time latency = 0;
    server.Submit(generator.Next(), *model, [&](Time t) { latency = t; });
    sim.Run();
    EXPECT_GT(latency, 0);
}

TEST(SoftwareRankServer, LatencyGrowsWithQueueing) {
    const auto model = Model::Generate(0, 42, Model::Config{});
    DocumentGenerator generator(7);
    auto run_batch = [&](int batch) {
        sim::Simulator sim;
        SoftwareRankServer server(&sim, Rng(3));
        RunningStat latency;
        for (int i = 0; i < batch; ++i) {
            server.Submit(generator.Next(), *model,
                          [&](Time t) { latency.Add(ToMicroseconds(t)); });
        }
        sim.Run();
        return latency.mean();
    };
    const double light = run_batch(4);
    const double heavy = run_batch(96);
    EXPECT_GT(heavy, light * 1.5);
}

}  // namespace
}  // namespace catapult::rank
