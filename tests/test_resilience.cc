// Resilience integration tests: failure handling, ring rotation, and
// recovery (§1, §3.4-§3.5, §4.2).

#include <gtest/gtest.h>

#include "rank/document_generator.h"
#include "service/load_generator.h"
#include "service/stage_role.h"
#include "service/testbed.h"

namespace catapult::service {
namespace {

PodTestbed::Config FastConfig() {
    PodTestbed::Config config;
    config.service.models.model.expression_count = 300;
    config.service.models.model.tree_count = 900;
    config.fabric.device.configure_time = Milliseconds(10);
    config.host.soft_reboot_duration = Milliseconds(200);
    config.host.hard_reboot_duration = Milliseconds(500);
    config.host.crash_reboot_delay = Milliseconds(50);
    return config;
}

int InjectBatch(PodTestbed& bed, int count, std::uint64_t seed) {
    rank::DocumentGenerator generator(seed);
    int completed = 0;
    for (int i = 0; i < count; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        bed.service().Inject(i % 8, i / 8 % 16, request,
                             [&](const ScoreResult& r) {
                                 if (r.ok) ++completed;
                             });
    }
    bed.simulator().Run();
    return completed;
}

TEST(Resilience, LostDocumentsTimeOutDuringStageHang) {
    PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    // Hang the FFE0 stage logic (§3.6 lists stage hangs on untested
    // inputs among the at-scale failures).
    bed.service().role(1).Hang();

    rank::DocumentGenerator generator(5);
    int timeouts = 0;
    for (int i = 0; i < 4; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        bed.service().Inject(0, i, request, [&](const ScoreResult& r) {
            if (!r.ok) ++timeouts;
        });
    }
    bed.simulator().Run();
    // §3.2: dropped/lost requests surface as host timeouts.
    EXPECT_EQ(timeouts, 4);
    EXPECT_EQ(bed.service().counters().timeouts, 4u);
}

TEST(Resilience, HealthMonitorSpotsHungRole) {
    PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    bed.service().role(2).Hang();
    std::vector<mgmt::MachineReport> reports;
    bed.health_monitor().Investigate(
        {bed.service().RingNode(2)},
        [&](std::vector<mgmt::MachineReport> r) { reports = std::move(r); });
    bed.simulator().Run();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].fault, mgmt::FaultType::kApplicationError);
}

TEST(Resilience, InPlaceReconfigClearsHang) {
    // §3.5: "simply reconfiguring the FPGA in-place is sufficient to
    // resolve the hang."
    PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    bed.service().role(3).Hang();
    bed.service().role(3).Unhang();  // the reconfig clears role state
    bool ok = false;
    bed.mapping_manager().ReconfigureInPlace(bed.service().RingNode(3),
                                             [&](bool success) { ok = success; });
    bed.simulator().Run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(InjectBatch(bed, 8, 77), 8);
}

TEST(Resilience, RingRotationMovesStageToSpare) {
    // §4.2: the spare lets the Service Manager rotate the ring on a
    // machine failure and keep the pipeline alive.
    PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    ASSERT_EQ(InjectBatch(bed, 8, 11), 8);

    // Ring position 4 (Scoring0) fails.
    const int failed_index = 4;
    bool rotated = false;
    bed.service().RotateRingAround(failed_index,
                                   [&](bool ok) { rotated = ok; });
    bed.simulator().Run();
    ASSERT_TRUE(rotated);
    // The spare position now hosts Scoring0; the failed slot is spare.
    EXPECT_EQ(bed.service().StageAt(7), rank::PipelineStage::kScoring0);
    EXPECT_EQ(bed.service().StageAt(failed_index), rank::PipelineStage::kSpare);

    // Service still ranks documents after rotation.
    EXPECT_EQ(InjectBatch(bed, 8, 13), 8);
}

TEST(Resilience, MachineRebootRecoversAndServiceContinues) {
    PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    ASSERT_EQ(InjectBatch(bed, 8, 17), 8);

    // Surprise maintenance reboot of the FFE1 node (§3.5: the dominant
    // real-world failure mode).
    const int node = bed.service().RingNode(2);
    bed.failure_injector().ScheduleMachineReboot(
        node, bed.simulator().Now() + Milliseconds(1));
    bed.simulator().Run();
    EXPECT_TRUE(bed.host(node).responsive());

    // After the reboot the node's FPGA came back RX-halted; the Mapping
    // Manager reconfigures it in place to rejoin the pipeline.
    bool ok = false;
    bed.mapping_manager().ReconfigureInPlace(node,
                                             [&](bool success) { ok = success; });
    bed.simulator().Run();
    ASSERT_TRUE(ok);
    EXPECT_EQ(InjectBatch(bed, 8, 19), 8);
}

TEST(Resilience, UngracefulReconfigCorruptsButIsDetected) {
    // Pull-only mode: this test checks that corruption *persists* until
    // an explicit investigation attributes it — with the autonomic
    // plane on, the watchdog would spot the crashed host and the ring
    // redeploy would wipe the very corruption being asserted.
    PodTestbed::Config config = FastConfig();
    config.autonomic = false;
    PodTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());
    const int node = bed.service().RingNode(3);
    bed.failure_injector().ScheduleUngracefulReconfig(
        node, bed.simulator().Now() + Milliseconds(1));
    bed.simulator().Run();

    // Neighbours received garbage without TX-Halt protection; the
    // Health Monitor attributes application errors.
    std::vector<int> suspects;
    for (int i = 0; i < 8; ++i) suspects.push_back(bed.service().RingNode(i));
    std::vector<mgmt::MachineReport> reports;
    bed.health_monitor().Investigate(
        suspects,
        [&](std::vector<mgmt::MachineReport> r) { reports = std::move(r); });
    bed.simulator().Run();
    bool corruption_found = false;
    for (const auto& report : reports) {
        if (report.fault == mgmt::FaultType::kApplicationError) {
            corruption_found = true;
        }
    }
    EXPECT_TRUE(corruption_found);
}

TEST(Resilience, SeuStormEventuallyCorruptsRole) {
    PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    const int node = bed.service().RingNode(5);
    bed.failure_injector().ScheduleSeuStorm(
        node, bed.simulator().Now() + Milliseconds(1),
        /*upsets_per_second=*/50'000.0);
    bed.simulator().RunUntil(bed.simulator().Now() + Seconds(1));
    EXPECT_TRUE(bed.fabric().device(node).role_corrupted());
    EXPECT_TRUE(bed.fabric().shell(node).CollectHealth().application_error);
}

TEST(Resilience, EndToEndFailureHandlingLoop) {
    // The full §3.5 loop, hands-off: the heartbeat watchdog notices the
    // unresponsive server, the Health Monitor runs the reboot ladder,
    // the confirmed report fans out to the pool, and the ring rotates
    // onto the spare — no explicit Investigate or RecoverRing call.
    PodTestbed::Config config = FastConfig();
    config.health.heartbeat_period = Milliseconds(10);
    config.health.query_timeout = Milliseconds(50);
    PodTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    // The Scoring1 node's host dies hard (will need the reboot ladder).
    const int failed_ring_index = 5;
    const int node = bed.service().RingNode(failed_ring_index);
    bed.host(node).CrashAndReboot("production incident");

    // Detection + ladder + ring redeploy all happen inside this window;
    // the horizon only keeps the clock moving for the daemon heartbeats.
    bed.simulator().RunUntil(bed.simulator().Now() + Seconds(2));

    EXPECT_GE(bed.health_monitor().counters().auto_investigations, 1u);
    ASSERT_FALSE(bed.health_monitor().failed_machine_list().empty());
    EXPECT_EQ(bed.health_monitor().failed_machine_list().front().node, node);
    EXPECT_GE(bed.pool().counters().auto_recoveries, 1u);
    // The spare absorbed the lost stage and the ring rejoined rotation.
    EXPECT_EQ(bed.service().StageAt(failed_ring_index),
              rank::PipelineStage::kSpare);
    EXPECT_TRUE(bed.pool().ring_available(0));
    EXPECT_EQ(InjectBatch(bed, 16, 23), 16);
}

}  // namespace
}  // namespace catapult::service
