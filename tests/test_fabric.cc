// Unit + property tests for the torus topology and pod fabric (§2.2).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fabric/catapult_fabric.h"
#include "fabric/torus_topology.h"
#include "sim/simulator.h"

namespace catapult::fabric {
namespace {

using shell::Port;

TEST(TorusTopology, CatapultPodIsSixByEight) {
    const TorusTopology torus;
    EXPECT_EQ(torus.rows(), 6);
    EXPECT_EQ(torus.cols(), 8);
    EXPECT_EQ(torus.node_count(), 48);  // §2.2: 48 servers per pod
}

TEST(TorusTopology, CoordRoundTrip) {
    const TorusTopology torus;
    for (int i = 0; i < torus.node_count(); ++i) {
        EXPECT_EQ(torus.IndexOf(torus.CoordOf(i)), i);
    }
}

TEST(TorusTopology, NeighborWraparound) {
    const TorusTopology torus;
    // Node 0 = (row 0, col 0).
    EXPECT_EQ(torus.NeighborOf(0, Port::kEast), 1);
    EXPECT_EQ(torus.NeighborOf(0, Port::kWest), 7);
    EXPECT_EQ(torus.NeighborOf(0, Port::kSouth), 8);
    EXPECT_EQ(torus.NeighborOf(0, Port::kNorth), 40);
}

TEST(TorusTopology, NeighborSymmetryProperty) {
    const TorusTopology torus;
    for (int i = 0; i < torus.node_count(); ++i) {
        for (const Port port : {Port::kNorth, Port::kSouth, Port::kEast,
                                Port::kWest}) {
            const int j = torus.NeighborOf(i, port);
            EXPECT_EQ(torus.NeighborOf(j, shell::Opposite(port)), i)
                << "node " << i << " port " << ToString(port);
        }
    }
}

TEST(TorusTopology, HopCountBounds) {
    const TorusTopology torus;
    for (int a = 0; a < torus.node_count(); ++a) {
        for (int b = 0; b < torus.node_count(); ++b) {
            const int hops = torus.HopCount(a, b);
            if (a == b) {
                EXPECT_EQ(hops, 0);
            } else {
                EXPECT_GE(hops, 1);
                // Max = 4 (east/west) + 3 (north/south) on a 6x8 torus.
                EXPECT_LE(hops, 7);
            }
            EXPECT_EQ(hops, torus.HopCount(b, a));
        }
    }
}

TEST(TorusTopology, NextHopConvergesToDestination) {
    // Property: following NextHop repeatedly reaches the destination in
    // exactly HopCount steps, for every (src, dst) pair.
    const TorusTopology torus;
    for (int src = 0; src < torus.node_count(); ++src) {
        for (int dst = 0; dst < torus.node_count(); ++dst) {
            if (src == dst) continue;
            int at = src;
            int steps = 0;
            while (at != dst && steps <= torus.node_count()) {
                at = torus.NeighborOf(at, torus.NextHop(at, dst));
                ++steps;
            }
            EXPECT_EQ(at, dst);
            EXPECT_EQ(steps, torus.HopCount(src, dst));
        }
    }
}

TEST(TorusTopology, RingAlongRowWraps) {
    const TorusTopology torus;
    const auto ring = torus.RingAlongRow(torus.IndexOf({2, 5}), 8);
    ASSERT_EQ(ring.size(), 8u);
    // All in row 2, consecutive columns mod 8.
    for (int k = 0; k < 8; ++k) {
        const TorusCoord c = torus.CoordOf(ring[static_cast<std::size_t>(k)]);
        EXPECT_EQ(c.row, 2);
        EXPECT_EQ(c.col, (5 + k) % 8);
    }
}

TEST(TorusTopology, RoutingTableCoversAllDestinations) {
    const TorusTopology torus;
    shell::RoutingTable table;
    torus.BuildRoutingTable(0, 100, table);
    EXPECT_EQ(table.size(), 47u);
    Port out = Port::kRole;
    EXPECT_TRUE(table.Lookup(101, out));
    EXPECT_FALSE(table.Lookup(100, out));  // self has no route
}

class FabricTest : public ::testing::Test {
  protected:
    sim::Simulator sim_;
    std::unique_ptr<CatapultFabric> fabric_;

    void Build(CatapultFabric::Config config = {}) {
        fabric_ = std::make_unique<CatapultFabric>(&sim_, Rng(99), config);
        fabric_->InstallTorusRoutes();
        for (int i = 0; i < fabric_->node_count(); ++i) {
            fabric_->shell(i).ReleaseRxHalt();
        }
    }
};

TEST_F(FabricTest, BuildsFortyEightNodes) {
    Build();
    EXPECT_EQ(fabric_->node_count(), 48);
    // 2 cables per node (east + south ownership) = 96 per pod.
    EXPECT_EQ(fabric_->cables().size(), 96u);
    EXPECT_EQ(fabric_->failed_cards(), 0);
    EXPECT_EQ(fabric_->defective_links(), 0);
}

TEST_F(FabricTest, AllLinksConnectedAndLocked) {
    Build();
    for (int i = 0; i < fabric_->node_count(); ++i) {
        for (const Port port : {Port::kNorth, Port::kSouth, Port::kEast,
                                Port::kWest}) {
            EXPECT_TRUE(fabric_->shell(i).link(port).connected());
            EXPECT_TRUE(fabric_->shell(i).link(port).locked());
        }
    }
}

TEST_F(FabricTest, PacketCrossesPodCornerToCorner) {
    Build();
    // Node 0 role -> node 47 role: 4 + 3 hops through the torus.
    class Sink : public shell::Role {
      public:
        void OnPacket(shell::PacketPtr p) override { got.push_back(std::move(p)); }
        std::string RoleName() const override { return "sink"; }
        std::vector<shell::PacketPtr> got;
    };
    Sink sink;
    fabric_->shell(47).SetRole(&sink);
    fabric_->shell(0).SendFromRole(shell::MakePacket(
        shell::PacketType::kScoringRequest, fabric_->GlobalId(0),
        fabric_->GlobalId(47), 6'500));
    sim_.Run();
    ASSERT_EQ(sink.got.size(), 1u);
}

TEST_F(FabricTest, EveryPairRoutes) {
    Build();
    // Property: a probe from every node to every 7th node arrives.
    class CountingRole : public shell::Role {
      public:
        void OnPacket(shell::PacketPtr) override { ++count; }
        std::string RoleName() const override { return "count"; }
        int count = 0;
    };
    std::vector<std::unique_ptr<CountingRole>> roles;
    for (int i = 0; i < 48; ++i) {
        roles.push_back(std::make_unique<CountingRole>());
        fabric_->shell(i).SetRole(roles.back().get());
    }
    int sent = 0;
    for (int src = 0; src < 48; ++src) {
        for (int dst = (src + 1) % 48; dst != src; dst = (dst + 7) % 48) {
            fabric_->shell(src).SendFromRole(shell::MakePacket(
                shell::PacketType::kScoringRequest, fabric_->GlobalId(src),
                fabric_->GlobalId(dst), 128));
            ++sent;
        }
    }
    sim_.Run();
    int received = 0;
    for (const auto& role : roles) received += role->count;
    EXPECT_EQ(received, sent);
}

TEST_F(FabricTest, IntegrationDefectRatesMatchDeployment) {
    // §2.3: 0.4% card failures, 0.03% defective links at integration.
    // With deterministic seeds over a large virtual deployment the
    // binomial draw should land near the expectation.
    CatapultFabric::Config config;
    config.card_failure_rate = 0.004;
    config.cable_defect_rate = 0.0003;
    int failed_cards = 0;
    int bad_links = 0;
    int pods = 34;
    sim::Simulator sim;
    Rng rng(2023);
    for (int p = 0; p < pods; ++p) {
        config.node_base = static_cast<shell::NodeId>(p * 48);
        CatapultFabric pod(&sim, rng.Fork(), config);
        failed_cards += pod.failed_cards();
        bad_links += pod.defective_links();
    }
    // 1,632 cards at 0.4% -> ~6.5 expected; 3,264 links at 0.03% -> ~1.
    EXPECT_GE(failed_cards, 1);
    EXPECT_LE(failed_cards, 18);
    EXPECT_LE(bad_links, 6);
}

TEST_F(FabricTest, RunTimeCableDefectBreaksLink) {
    Build();
    fabric_->InjectCableDefect(0, Port::kEast);
    EXPECT_FALSE(fabric_->shell(0).link(Port::kEast).locked());
    EXPECT_FALSE(fabric_->shell(1).link(Port::kWest).locked());
    const auto health = fabric_->shell(0).CollectHealth();
    EXPECT_TRUE(health.link_error[2]);
}

}  // namespace
}  // namespace catapult::fabric
