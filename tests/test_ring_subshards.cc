// Ring sub-shards, differentially tested: a 1-pod/6-ring federation
// whose rings run as per-ring sub-shard slices must produce the same
// simulation whether the slices execute lock-step on one thread or on
// the work-stealing executor pool — per-query outcomes, latencies,
// dispatcher counters, per-slice pool counters and total events fired —
// across a scenario that includes a whole-pod blackout (every slice
// darkened), shed/breaker behavior and live sliced re-admission.
//
// Also pins the structural contract: slice identity (ids, node bases,
// shard pinning) and that the dispatcher actually spreads load over
// the slices instead of serializing on one ring.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rank/document_generator.h"
#include "service/federation_testbed.h"

namespace catapult::service {
namespace {

struct QueryRecord {
    bool accepted = false;
    bool ok = false;
    Time latency = -1;
    Time completed_at = -1;

    bool operator==(const QueryRecord& o) const {
        return accepted == o.accepted && ok == o.ok &&
               latency == o.latency && completed_at == o.completed_at;
    }
};

struct SubShardTrace {
    std::vector<QueryRecord> queries;
    bool reattach_ok = false;
    Time reattach_done_at = -1;
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::uint64_t lost = 0;
    std::vector<std::uint64_t> slice_dispatched;
    std::uint64_t events_fired = 0;
    Time end_time = -1;
    // Observability exports (deterministic views).
    std::string metrics_json;
    std::string trace_json;
};

FederationTestbed::Config SlicedConfig(bool parallel) {
    FederationTestbed::Config config;
    config.pod_count = 1;
    config.pod.ring_count = 6;
    config.pod.fabric.device.configure_time = Milliseconds(5);
    config.pod.host.soft_reboot_duration = Milliseconds(200);
    config.pod.host.hard_reboot_duration = Milliseconds(500);
    config.pod.host.crash_reboot_delay = Milliseconds(50);
    config.pod.health.heartbeat_period = Milliseconds(10);
    config.pod.health.query_timeout = Milliseconds(50);
    config.sharding.enabled = true;
    config.sharding.ring_subshards = true;
    config.sharding.parallel = parallel;
    // Fewer executors than slices on purpose: the differential claim
    // covers the work-stealing pool, not just shard-per-thread.
    config.sharding.max_threads = 3;
    // Observability on: the sliced pod's merged exports must be
    // byte-identical across execution modes too.
    config.observability.enabled = true;
    config.observability.hub.cadence = Milliseconds(10);
    return config;
}

/**
 * Blackout + sliced re-admission under paced load on a 1-pod/6-ring
 * sub-sharded federation; every observable lands in the trace.
 * `parallel` is the only knob.
 */
SubShardTrace RunSlicedScenario(bool parallel) {
    FederationTestbed bed(SlicedConfig(parallel));
    EXPECT_TRUE(bed.DeployAndSettle());
    EXPECT_EQ(bed.slices_per_pod(), 6);

    SubShardTrace trace;
    const int kQueries = 900;
    trace.queries.resize(kQueries);

    // A whole-pod blackout is every slice's blackout: each slice owns
    // its ring's strip of the fabric and its own injector.
    const Time blackout_at = bed.Now() + Milliseconds(30);
    for (int r = 0; r < bed.slices_per_pod(); ++r) {
        bed.pod_slice(0, r).failure_injector().SchedulePodBlackout(
            blackout_at);
    }
    bed.simulator().ScheduleAt(blackout_at + Milliseconds(30), [&] {
        bed.ReattachPod(0, [&](bool ok) {
            trace.reattach_ok = ok;
            trace.reattach_done_at = bed.simulator().Now();
        });
    });

    rank::DocumentGenerator generator(31);
    for (int i = 0; i < kQueries; ++i) {
        bed.simulator().ScheduleAfter(
            Microseconds(60) * i + Milliseconds(1), [&, i] {
                rank::CompressedRequest request = generator.Next();
                request.query.model_id = 0;
                QueryRecord& record =
                    trace.queries[static_cast<std::size_t>(i)];
                const Time injected_at = bed.simulator().Now();
                const auto status = bed.dispatcher().Inject(
                    i % 32, request,
                    [&record, &bed, injected_at](const ScoreResult& r) {
                        record.ok = r.ok;
                        record.latency = r.ok
                            ? r.latency
                            : bed.simulator().Now() - injected_at;
                        record.completed_at = bed.simulator().Now();
                    });
                record.accepted = status == host::SendStatus::kOk;
            });
    }
    trace.events_fired = bed.Run();

    trace.accepted = bed.dispatcher().counters().accepted;
    trace.completed = bed.dispatcher().counters().completed;
    trace.lost = bed.dispatcher().counters().lost;
    for (int r = 0; r < bed.slices_per_pod(); ++r) {
        trace.slice_dispatched.push_back(
            bed.pod_slice(0, r).pool().counters().dispatched);
    }
    trace.end_time = bed.Now();
    trace.metrics_json = bed.observability()->MetricsJson(false);
    trace.trace_json = bed.observability()->TraceJson();
    return trace;
}

TEST(RingSubShards, ParallelRunIsBitIdenticalToLockstep) {
    const SubShardTrace lockstep = RunSlicedScenario(/*parallel=*/false);
    const SubShardTrace threaded = RunSlicedScenario(/*parallel=*/true);

    // The scenario exercised what it claims: queries completed, every
    // slice took traffic, and the sliced re-admission went through.
    EXPECT_GT(lockstep.completed, 0u);
    EXPECT_TRUE(lockstep.reattach_ok);
    ASSERT_EQ(lockstep.slice_dispatched.size(), 6u);
    for (std::size_t r = 0; r < lockstep.slice_dispatched.size(); ++r) {
        EXPECT_GT(lockstep.slice_dispatched[r], 0u) << "slice " << r;
    }

    // Bit-identity: every per-query observable and every counter.
    EXPECT_EQ(lockstep.queries, threaded.queries);
    EXPECT_EQ(lockstep.reattach_ok, threaded.reattach_ok);
    EXPECT_EQ(lockstep.reattach_done_at, threaded.reattach_done_at);
    EXPECT_EQ(lockstep.accepted, threaded.accepted);
    EXPECT_EQ(lockstep.completed, threaded.completed);
    EXPECT_EQ(lockstep.lost, threaded.lost);
    EXPECT_EQ(lockstep.slice_dispatched, threaded.slice_dispatched);
    EXPECT_EQ(lockstep.events_fired, threaded.events_fired);
    EXPECT_EQ(lockstep.end_time, threaded.end_time);

    // Observability exports, byte-for-byte across execution modes.
    EXPECT_FALSE(lockstep.metrics_json.empty());
    EXPECT_NE(lockstep.trace_json.find("\"query\""), std::string::npos);
    EXPECT_EQ(lockstep.metrics_json, threaded.metrics_json);
    EXPECT_EQ(lockstep.trace_json, threaded.trace_json);
}

// Slice identity: every ring slice is a 1 x cols strip pinned to its
// own shard, with node bases laid out ring-major inside the pod's node
// range — the invariants the dispatcher's node remapping and the
// health-plane aggregation rest on.
TEST(RingSubShards, SliceIdentityAndShardPinning) {
    FederationTestbed bed(SlicedConfig(/*parallel=*/false));
    ASSERT_EQ(bed.pod_count(), 1);
    ASSERT_EQ(bed.slices_per_pod(), 6);
    ASSERT_TRUE(bed.sharded());
    EXPECT_EQ(bed.group()->shard_count(), 7);  // coordinator + 6 slices
    const int cols = 8;
    for (int r = 0; r < 6; ++r) {
        mgmt::PodContext& slice = bed.pod_slice(0, r);
        EXPECT_EQ(slice.pod_id(), 0);
        EXPECT_EQ(slice.shard_index(), 1 + r);
        EXPECT_EQ(slice.fabric().node_count(), cols);
        EXPECT_EQ(slice.config().fabric.node_base, r * cols);
        // Each slice hosts exactly one deployable ring.
        EXPECT_EQ(slice.config().ring_count, 1);
    }
    // pod(0) is slice 0 — the legacy accessor stays valid.
    EXPECT_EQ(&bed.pod(0), &bed.pod_slice(0, 0));
}

}  // namespace
}  // namespace catapult::service
