// Elasticity: multiple services mapped onto one pod's fabric.
//
// §2: "FPGAs are directly wired to each other in a 6x8 two-dimensional
// torus, allowing services to allocate groups of FPGAs to provide the
// necessary area to implement the desired functionality." Two ranking
// rings on different torus rows share the same 48-node fabric without
// interfering.

#include <gtest/gtest.h>

#include "rank/document_generator.h"
#include "service/load_generator.h"
#include "service/testbed.h"

namespace catapult::service {
namespace {

TEST(MultiService, TwoRingsShareOnePod) {
    PodTestbed::Config config;
    config.service.models.model.expression_count = 300;
    config.service.models.model.tree_count = 900;
    config.service.ring_row = 0;
    config.fabric.device.configure_time = Milliseconds(10);
    PodTestbed bed(config);

    // Second ranking service on torus row 3, sharing fabric + hosts.
    RankingService::Config second_config = config.service;
    second_config.ring_row = 3;
    RankingService second(&bed.simulator(), &bed.fabric(), bed.hosts(),
                          &bed.mapping_manager(), second_config);

    bool first_ok = false, second_ok = false;
    bed.service().Deploy([&](bool ok) { first_ok = ok; });
    bed.simulator().Run();
    second.Deploy([&](bool ok) { second_ok = ok; });
    bed.simulator().Run();
    ASSERT_TRUE(first_ok);
    ASSERT_TRUE(second_ok);

    // The two rings occupy disjoint nodes.
    for (int i = 0; i < RankingService::kRingLength; ++i) {
        for (int j = 0; j < RankingService::kRingLength; ++j) {
            EXPECT_NE(bed.service().RingNode(i), second.RingNode(j));
        }
    }

    // Interleaved injection into both services completes on both.
    rank::DocumentGenerator generator(11);
    int first_done = 0, second_done = 0;
    for (int i = 0; i < 12; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        if (i % 2 == 0) {
            bed.service().Inject(i % 8, 0, request,
                                 [&](const ScoreResult& r) {
                                     if (r.ok) ++first_done;
                                 });
        } else {
            second.Inject(i % 8, 0, request, [&](const ScoreResult& r) {
                if (r.ok) ++second_done;
            });
        }
        bed.simulator().Run();
    }
    EXPECT_EQ(first_done, 6);
    EXPECT_EQ(second_done, 6);
}

TEST(MultiService, ConcurrentLoadDoesNotCrossTalk) {
    PodTestbed::Config config;
    config.service.models.model.expression_count = 300;
    config.service.models.model.tree_count = 900;
    config.fabric.device.configure_time = Milliseconds(10);
    PodTestbed bed(config);

    RankingService::Config second_config = config.service;
    second_config.ring_row = 3;
    RankingService second(&bed.simulator(), &bed.fabric(), bed.hosts(),
                          &bed.mapping_manager(), second_config);
    bed.service().Deploy([](bool) {});
    bed.simulator().Run();
    second.Deploy([](bool) {});
    bed.simulator().Run();

    // Saturating load on ring A must not produce timeouts on ring B.
    rank::DocumentGenerator generator(23);
    int b_completed = 0, b_timeouts = 0;
    // Ring A: 64 outstanding docs in closed loop.
    int a_outstanding = 0;
    int a_sent = 0;
    std::function<void()> pump_a = [&] {
        while (a_outstanding < 32 && a_sent < 300) {
            rank::CompressedRequest request = generator.Next();
            request.query.model_id = 0;
            ++a_sent;
            ++a_outstanding;
            bed.service().Inject(a_sent % 8, a_sent / 8 % 4, request,
                                 [&](const ScoreResult&) {
                                     --a_outstanding;
                                     pump_a();
                                 });
        }
    };
    pump_a();
    // Ring B: light probing traffic.
    for (int i = 0; i < 10; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        second.Inject(i % 8, 0, request, [&](const ScoreResult& r) {
            if (r.ok) {
                ++b_completed;
            } else {
                ++b_timeouts;
            }
        });
        bed.simulator().Run();
    }
    bed.simulator().Run();
    EXPECT_EQ(b_completed, 10);
    EXPECT_EQ(b_timeouts, 0);
}

}  // namespace
}  // namespace catapult::service
