// Elasticity: multiple rings mapped onto one pod's fabric.
//
// §2: "FPGAs are directly wired to each other in a 6x8 two-dimensional
// torus, allowing services to allocate groups of FPGAs to provide the
// necessary area to implement the desired functionality." Two ranking
// rings — placed by the PodScheduler, fronted by one dispatcher — share
// the same 48-node fabric without interfering.

#include <gtest/gtest.h>

#include <functional>

#include "rank/document_generator.h"
#include "service/load_generator.h"
#include "service/testbed.h"

namespace catapult::service {
namespace {

PodTestbed::Config TwoRingConfig() {
    PodTestbed::Config config;
    config.service.models.model.expression_count = 300;
    config.service.models.model.tree_count = 900;
    config.fabric.device.configure_time = Milliseconds(10);
    config.ring_count = 2;
    return config;
}

TEST(MultiService, TwoRingsShareOnePod) {
    PodTestbed::Config config = TwoRingConfig();
    config.policy = DispatchPolicy::kRoundRobin;
    PodTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());
    ASSERT_EQ(bed.pool().ring_count(), 2);

    // The scheduler granted disjoint torus regions: no node hosts a
    // stage of both rings.
    RankingService& first = bed.pool().ring(0);
    RankingService& second = bed.pool().ring(1);
    EXPECT_NE(first.ring_row(), second.ring_row());
    for (int i = 0; i < RankingService::kRingLength; ++i) {
        for (int j = 0; j < RankingService::kRingLength; ++j) {
            EXPECT_NE(first.RingNode(i), second.RingNode(j));
        }
    }

    // Round-robin dispatch interleaves documents across both rings and
    // every document completes.
    rank::DocumentGenerator generator(11);
    int done = 0;
    for (int i = 0; i < 12; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        ASSERT_EQ(bed.pool().Inject(/*thread=*/0, request,
                                    [&](const ScoreResult& r) {
                                        if (r.ok) ++done;
                                    }),
                  host::SendStatus::kOk);
        bed.simulator().Run();
    }
    EXPECT_EQ(done, 12);
    EXPECT_EQ(first.counters().completed, 6u);
    EXPECT_EQ(second.counters().completed, 6u);
}

TEST(MultiService, ConcurrentLoadDoesNotCrossTalk) {
    PodTestbed bed(TwoRingConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    RankingService& ring_a = bed.pool().ring(0);
    RankingService& ring_b = bed.pool().ring(1);

    // Saturating load on ring A must not produce timeouts on ring B.
    rank::DocumentGenerator generator(23);
    int b_completed = 0, b_timeouts = 0;
    // Ring A: 32 outstanding docs in closed loop, injected directly.
    int a_outstanding = 0;
    int a_sent = 0;
    std::function<void()> pump_a = [&] {
        while (a_outstanding < 32 && a_sent < 300) {
            rank::CompressedRequest request = generator.Next();
            request.query.model_id = 0;
            ++a_sent;
            ++a_outstanding;
            ring_a.Inject(a_sent % 8, a_sent / 8 % 4, request,
                          [&](const ScoreResult&) {
                              --a_outstanding;
                              pump_a();
                          });
        }
    };
    pump_a();
    // Ring B: light probing traffic.
    for (int i = 0; i < 10; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        ring_b.Inject(i % 8, 0, request, [&](const ScoreResult& r) {
            if (r.ok) {
                ++b_completed;
            } else {
                ++b_timeouts;
            }
        });
        bed.simulator().Run();
    }
    bed.simulator().Run();
    EXPECT_EQ(b_completed, 10);
    EXPECT_EQ(b_timeouts, 0);
}

TEST(MultiService, LeastInFlightSteersAwayFromLoadedRing) {
    PodTestbed bed(TwoRingConfig());  // default policy: least-in-flight
    ASSERT_TRUE(bed.DeployAndSettle());

    // Pin a standing load onto ring 0 directly (bypassing the pool), so
    // its in-flight count stays high while the dispatcher decides.
    rank::DocumentGenerator generator(29);
    bed.pool().SetRingAvailable(1, false);
    for (int i = 0; i < 8; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        ASSERT_EQ(bed.pool().Inject(i, request, nullptr),
                  host::SendStatus::kOk);
    }
    bed.pool().SetRingAvailable(1, true);
    EXPECT_EQ(bed.pool().in_flight(0), 8);

    // With ring 0 loaded, the next dispatches all pick ring 1.
    int completed_on_1 = 0;
    for (int i = 8; i < 12; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        ASSERT_EQ(bed.pool().Inject(i, request,
                                    [&](const ScoreResult& r) {
                                        if (r.ok) ++completed_on_1;
                                    }),
                  host::SendStatus::kOk);
    }
    EXPECT_EQ(bed.pool().in_flight(1), 4);
    bed.simulator().Run();
    EXPECT_EQ(completed_on_1, 4);
    EXPECT_EQ(bed.pool().ring(1).counters().completed, 4u);
    EXPECT_EQ(bed.pool().total_in_flight(), 0);
}

}  // namespace
}  // namespace catapult::service
