// Tests for FDR trace replay (§3.6): archived documents replay to
// identical scores from the Flight Data Recorder's window.

#include <gtest/gtest.h>

#include "rank/document_generator.h"
#include "service/testbed.h"
#include "service/trace_replay.h"

namespace catapult::service {
namespace {

PodTestbed::Config ReplayConfig() {
    PodTestbed::Config config;
    config.service.compute_scores = true;
    config.service.archive_traces = true;
    config.service.models.model.expression_count = 300;
    config.service.models.model.tree_count = 900;
    config.fabric.device.configure_time = Milliseconds(10);
    return config;
}

TEST(TraceArchive, RecordAndFind) {
    TraceArchive archive(4);
    for (std::uint64_t id = 1; id <= 4; ++id) {
        ArchivedTrace trace;
        trace.score = static_cast<float>(id);
        archive.Record(id, std::move(trace));
    }
    ASSERT_NE(archive.Find(1), nullptr);
    EXPECT_EQ(archive.Find(3)->score, 3.0f);
    EXPECT_EQ(archive.Find(99), nullptr);
}

TEST(TraceArchive, FifoEvictionAtCapacity) {
    TraceArchive archive(3);
    for (std::uint64_t id = 1; id <= 5; ++id) {
        archive.Record(id, ArchivedTrace{});
    }
    EXPECT_EQ(archive.size(), 3u);
    EXPECT_EQ(archive.Find(1), nullptr);  // evicted
    EXPECT_EQ(archive.Find(2), nullptr);  // evicted
    EXPECT_NE(archive.Find(5), nullptr);
}

TEST(TraceReplay, FdrWindowReplaysToIdenticalScores) {
    PodTestbed bed(ReplayConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    rank::DocumentGenerator generator(404);
    int completed = 0;
    for (int i = 0; i < 20; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        bed.service().Inject(i % 8, 0, request,
                             [&](const ScoreResult& r) {
                                 if (r.ok) ++completed;
                             });
        bed.simulator().Run();
    }
    ASSERT_EQ(completed, 20);

    // Stream out the head FPGA's FDR (the health-check read, §3.6) and
    // replay every scoring request against the archive.
    const auto window =
        bed.fabric().shell(bed.service().RingNode(0)).fdr().StreamOut();
    auto& function = bed.service().FunctionFor(0);
    const auto report = TraceReplayer::Replay(
        window, bed.service().trace_archive(), function);
    EXPECT_EQ(report.requests_in_window, 20);
    EXPECT_EQ(report.replayed, 20);
    EXPECT_EQ(report.matched, 20);
    EXPECT_EQ(report.mismatched, 0);
    EXPECT_EQ(report.missing, 0);
}

TEST(TraceReplay, MissingTracesAreCounted) {
    PodTestbed::Config config = ReplayConfig();
    config.service.trace_archive_capacity = 5;  // force eviction
    PodTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());
    rank::DocumentGenerator generator(405);
    for (int i = 0; i < 12; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        bed.service().Inject(0, 0, request, [](const ScoreResult&) {});
        bed.simulator().Run();
    }
    const auto window =
        bed.fabric().shell(bed.service().RingNode(0)).fdr().StreamOut();
    auto& function = bed.service().FunctionFor(0);
    const auto report = TraceReplayer::Replay(
        window, bed.service().trace_archive(), function);
    EXPECT_EQ(report.requests_in_window, 12);
    EXPECT_EQ(report.replayed, 5);
    EXPECT_EQ(report.missing, 7);
    EXPECT_EQ(report.mismatched, 0);
}

TEST(TraceReplay, TimingOnlyTracesStillReplayable) {
    // Without compute_scores the archive holds documents but no scores;
    // replay still runs them (scored=false -> counted as matched).
    PodTestbed::Config config = ReplayConfig();
    config.service.compute_scores = false;
    PodTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());
    rank::DocumentGenerator generator(406);
    rank::CompressedRequest request = generator.Next();
    request.query.model_id = 0;
    bed.service().Inject(0, 0, request, [](const ScoreResult&) {});
    bed.simulator().Run();
    const auto window =
        bed.fabric().shell(bed.service().RingNode(0)).fdr().StreamOut();
    auto& function = bed.service().FunctionFor(0);
    const auto report = TraceReplayer::Replay(
        window, bed.service().trace_archive(), function);
    EXPECT_EQ(report.replayed, 1);
    EXPECT_EQ(report.mismatched, 0);
}

}  // namespace
}  // namespace catapult::service
