// Timing-wheel event-queue coverage: the ordering contract under wheel
// geometry edges (slice/slot/overflow boundaries, horizon put-backs,
// rollover), generation-stamped cancellation, and the golden
// determinism cross-check against the reference binary heap.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/inline_function.h"
#include "sim/simulator.h"

namespace catapult::sim {
namespace {

Simulator MakeSim(SimulatorConfig::QueueKind kind) {
    SimulatorConfig config;
    config.queue_kind = kind;
    return Simulator(config);
}

// Deterministic xorshift so the golden scenario is identical run to run.
struct Rng {
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    std::uint64_t Next() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }
};

struct FiredEvent {
    Time when;
    int tag;
    bool operator==(const FiredEvent& other) const {
        return when == other.when && tag == other.tag;
    }
};

/**
 * A mixed workload crossing every wheel level: sub-slice ties, L0
 * window hops, L1 staging, overflow times, cancellations (stale ones
 * included) and callback-driven reschedules.
 */
std::vector<FiredEvent> RunGoldenScenario(SimulatorConfig::QueueKind kind) {
    Simulator sim = MakeSim(kind);
    Rng rng;
    std::vector<FiredEvent> fired;
    std::vector<EventHandle> handles;
    int tag = 0;

    for (int i = 0; i < 400; ++i) {
        Time at = 0;
        switch (rng.Next() % 5) {
          case 0: at = static_cast<Time>(rng.Next() % 256); break;          // sub-slice
          case 1: at = Nanoseconds(static_cast<Time>(rng.Next() % 2000)); break;  // L0
          case 2: at = Microseconds(static_cast<Time>(rng.Next() % 500)); break;  // L1
          case 3: at = Milliseconds(static_cast<Time>(rng.Next() % 60)); break;   // L1 edge
          default: at = Milliseconds(static_cast<Time>(rng.Next() % 900)); break; // overflow
        }
        const auto priority =
            static_cast<EventPriority>((rng.Next() % 3) * 10);
        const int t = ++tag;
        EventHandle h = sim.ScheduleAt(at, [&fired, &sim, t] {
            fired.push_back({sim.Now(), t});
        }, priority);
        handles.push_back(h);
        if (rng.Next() % 6 == 0) {
            sim.Cancel(handles[rng.Next() % handles.size()]);
        }
    }
    // A couple of rescheduling chains that hop across levels.
    for (int chain = 0; chain < 3; ++chain) {
        const int t = ++tag;
        sim.ScheduleAfter(Microseconds(10 + chain), [&, t]() {
            fired.push_back({sim.Now(), t});
            const int t2 = ++tag;
            sim.ScheduleAfter(Milliseconds(100), [&fired, &sim, t2] {
                fired.push_back({sim.Now(), t2});
            });
        });
    }
    sim.Run();
    return fired;
}

TEST(TimingWheel, GoldenDeterminismMatchesBinaryHeap) {
    const auto wheel =
        RunGoldenScenario(SimulatorConfig::QueueKind::kTimingWheel);
    const auto heap =
        RunGoldenScenario(SimulatorConfig::QueueKind::kBinaryHeap);
    ASSERT_EQ(wheel.size(), heap.size());
    for (std::size_t i = 0; i < wheel.size(); ++i) {
        EXPECT_EQ(wheel[i], heap[i]) << "diverged at event " << i;
    }
}

TEST(TimingWheel, SameTickPriorityOrderingAcrossLevels) {
    // Same simulated instant, scheduled while the instant is still in
    // different wheel levels (far future at first), mixed priorities:
    // ties must break (priority, insertion order) exactly.
    Simulator sim = MakeSim(SimulatorConfig::QueueKind::kTimingWheel);
    const Time tick = Milliseconds(200);  // starts life in overflow
    std::vector<int> order;
    sim.ScheduleAt(tick, [&] { order.push_back(0); },
                   EventPriority::kTimeout);
    sim.ScheduleAt(tick, [&] { order.push_back(1); },
                   EventPriority::kDeliver);
    sim.ScheduleAt(tick, [&] { order.push_back(2); },
                   EventPriority::kDefault);
    sim.ScheduleAt(tick, [&] { order.push_back(3); },
                   EventPriority::kDeliver);
    // Drag the wheel close first so the tick crosses overflow -> L1 ->
    // L0 before firing.
    sim.ScheduleAt(Milliseconds(199), [&] {
        sim.ScheduleAt(tick, [&] { order.push_back(4); },
                       EventPriority::kDeliver);
    });
    sim.Run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 4, 2, 0}));
}

TEST(TimingWheel, HorizonCrossingDefersDaemonsAndStaysOrdered) {
    Simulator sim = MakeSim(SimulatorConfig::QueueKind::kTimingWheel);
    std::vector<int> order;
    std::uint64_t daemon_fires = 0;
    // A recurring daemon that would run forever under RunUntil.
    std::function<void()> tick = [&] {
        ++daemon_fires;
        sim.ScheduleDaemonAfter(Microseconds(30), [&] { tick(); });
    };
    sim.ScheduleDaemonAfter(Microseconds(30), [&] { tick(); });
    sim.ScheduleAt(Microseconds(100), [&] { order.push_back(1); });
    sim.ScheduleAt(Milliseconds(80), [&] { order.push_back(2); });

    // Stop mid-way: the ms-80 event is popped, seen past the horizon
    // and put back (the put-back advances the wheel cursor past now_).
    sim.RunUntil(Milliseconds(1));
    EXPECT_EQ(sim.Now(), Milliseconds(1));
    EXPECT_EQ(order, std::vector<int>{1});
    const std::uint64_t fires_at_horizon = daemon_fires;
    EXPECT_GT(fires_at_horizon, 0u);

    // Events scheduled after the horizon stop, earlier than the
    // deferred one, must still fire first (front-spill path).
    sim.ScheduleAfter(Microseconds(5), [&] { order.push_back(3); });
    sim.Run();  // stops once only the daemon remains
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
    EXPECT_TRUE(sim.Empty());             // no foreground work left...
    EXPECT_GT(sim.PendingEvents(), 0u);   // ...but the daemon is pending
}

TEST(TimingWheel, RolloverAtFarFutureTimes) {
    // Each event is beyond the previous L1 window, forcing repeated
    // overflow rebases; interleaved near events after each rebase
    // verify the rebased windows still order correctly.
    Simulator sim = MakeSim(SimulatorConfig::QueueKind::kTimingWheel);
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
        sim.ScheduleAt(Milliseconds(100) * (i + 1), [&order, &sim, i] {
            order.push_back(i);
            // A short chase event lands in the freshly rebased window.
            sim.ScheduleAfter(Nanoseconds(50), [&order, i] {
                order.push_back(100 + i);
            });
        });
    }
    sim.ScheduleAt(Seconds(5), [&order] { order.push_back(999); });
    sim.Run();
    std::vector<int> expected;
    for (int i = 0; i < 8; ++i) {
        expected.push_back(i);
        expected.push_back(100 + i);
    }
    expected.push_back(999);
    EXPECT_EQ(order, expected);
    EXPECT_EQ(sim.Now(), Seconds(5));
}

TEST(TimingWheel, CancelThenRescheduleReusesSlots) {
    Simulator sim = MakeSim(SimulatorConfig::QueueKind::kTimingWheel);
    // Steady-state churn: schedule, cancel, reschedule. The slot table
    // must plateau at the in-flight peak, not grow with churn.
    int fired = 0;
    for (int round = 0; round < 10'000; ++round) {
        EventHandle doomed =
            sim.ScheduleAfter(Microseconds(5), [&] { ++fired; });
        sim.Cancel(doomed);
        sim.Cancel(doomed);  // double-cancel is a no-op
        sim.ScheduleAfter(Microseconds(1), [&] { ++fired; });
        sim.Run();
    }
    EXPECT_EQ(fired, 10'000);
    // One live + one cancelled slot in flight at peak.
    EXPECT_LE(sim.event_slots(), 4u);
}

TEST(TimingWheel, CancellingFiredHandlesDoesNotGrowState) {
    // Regression: cancelling a handle whose event already fired used to
    // park the id in a tombstone set forever; long-lived sims (every
    // timeout path cancels after completion) leaked. With
    // generation-stamped slots the stale cancel is a comparison miss.
    Simulator sim = MakeSim(SimulatorConfig::QueueKind::kTimingWheel);
    std::vector<EventHandle> fired_handles;
    for (int round = 0; round < 50'000; ++round) {
        EventHandle h = sim.ScheduleAfter(Nanoseconds(100), [] {});
        sim.Run();
        fired_handles.push_back(h);
        sim.Cancel(fired_handles[static_cast<std::size_t>(round) / 2]);
        sim.Cancel(h);
    }
    EXPECT_EQ(sim.EventsFired(), 50'000u);
    EXPECT_EQ(sim.PendingEvents(), 0u);
    // The whole loop reuses one slot; the table must not scale with
    // the number of stale cancels.
    EXPECT_LE(sim.event_slots(), 2u);
}

TEST(TimingWheel, DefaultConfigIsTimingWheel) {
    Simulator sim;
    EXPECT_EQ(sim.queue_kind(), SimulatorConfig::QueueKind::kTimingWheel);
}

// --- InlineFunction (the EventFn small-buffer callable) ---------------

TEST(InlineFunctionTest, InvokesInlineAndBoxedTargets) {
    int hits = 0;
    InlineFunction<void()> small([&hits] { ++hits; });
    small();
    EXPECT_EQ(hits, 1);

    // Oversized capture: must take the heap-boxed path and still work.
    std::array<std::uint64_t, 16> big{};
    big[15] = 7;
    InlineFunction<void()> boxed([big, &hits] {
        hits += static_cast<int>(big[15]);
    });
    boxed();
    EXPECT_EQ(hits, 8);
}

TEST(InlineFunctionTest, MoveTransfersTarget) {
    int hits = 0;
    InlineFunction<void()> a([&hits] { ++hits; });
    InlineFunction<void()> b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    InlineFunction<void()> c;
    c = std::move(b);
    c();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFunctionTest, DestroysCapturedState) {
    auto guard = std::make_shared<int>(42);
    std::weak_ptr<int> watch = guard;
    {
        InlineFunction<void()> fn([guard] { (void)*guard; });
        guard.reset();
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace catapult::sim
