// Parameterized property tests: invariants swept across configuration
// spaces with TEST_P / INSTANTIATE_TEST_SUITE_P.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/rng.h"
#include "fabric/torus_topology.h"
#include "rank/document.h"
#include "rank/document_generator.h"
#include "rank/ffe/compiler.h"
#include "rank/ffe/processor.h"
#include "rank/model.h"
#include "rank/queue_manager.h"
#include "rank/scorer.h"
#include "rank/software_ranker.h"
#include "shell/sl3_link.h"
#include "sim/simulator.h"

namespace catapult {
namespace {

// ---------------------------------------------------------------------
// Torus invariants across sizes (the paper's 6x8 plus other shapes).
// ---------------------------------------------------------------------

class TorusProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TorusProperty, NeighborSymmetry) {
    const auto [rows, cols] = GetParam();
    const fabric::TorusTopology torus(rows, cols);
    for (int i = 0; i < torus.node_count(); ++i) {
        for (const auto port : {shell::Port::kNorth, shell::Port::kSouth,
                                shell::Port::kEast, shell::Port::kWest}) {
            const int j = torus.NeighborOf(i, port);
            EXPECT_EQ(torus.NeighborOf(j, shell::Opposite(port)), i);
        }
    }
}

TEST_P(TorusProperty, DimensionOrderRoutesTerminate) {
    const auto [rows, cols] = GetParam();
    const fabric::TorusTopology torus(rows, cols);
    for (int src = 0; src < torus.node_count(); ++src) {
        for (int dst = 0; dst < torus.node_count(); ++dst) {
            if (src == dst) continue;
            int at = src;
            int steps = 0;
            while (at != dst) {
                at = torus.NeighborOf(at, torus.NextHop(at, dst));
                ASSERT_LE(++steps, rows + cols) << "routing loop";
            }
            EXPECT_EQ(steps, torus.HopCount(src, dst));
        }
    }
}

TEST_P(TorusProperty, HopCountTriangleInequality) {
    const auto [rows, cols] = GetParam();
    const fabric::TorusTopology torus(rows, cols);
    Rng rng(rows * 100 + cols);
    for (int trial = 0; trial < 50; ++trial) {
        const int a = static_cast<int>(rng.NextBounded(torus.node_count()));
        const int b = static_cast<int>(rng.NextBounded(torus.node_count()));
        const int c = static_cast<int>(rng.NextBounded(torus.node_count()));
        EXPECT_LE(torus.HopCount(a, c),
                  torus.HopCount(a, b) + torus.HopCount(b, c));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TorusProperty,
    ::testing::Values(std::make_tuple(6, 8),   // the Catapult pod
                      std::make_tuple(1, 2), std::make_tuple(2, 2),
                      std::make_tuple(3, 5), std::make_tuple(4, 4),
                      std::make_tuple(8, 6), std::make_tuple(2, 24)));

// ---------------------------------------------------------------------
// SL3 error-model invariants across bit error rates.
// ---------------------------------------------------------------------

class Sl3BerProperty : public ::testing::TestWithParam<double> {};

TEST_P(Sl3BerProperty, AccountingConserved) {
    const double ber = GetParam();
    sim::Simulator sim;
    shell::Sl3Link a(&sim, "a", Rng(5));
    shell::Sl3Link b(&sim, "b", Rng(6));
    a.ConnectTo(&b);
    b.set_bit_error_rate(ber);
    b.set_on_receive([&] { b.PopReceived(); });
    const int kPackets = 500;
    for (int i = 0; i < kPackets; ++i) {
        if (!a.Send(shell::MakePacket(shell::PacketType::kScoringRequest, 0,
                                      1, 8'192))) {
            sim.Run();
            ASSERT_TRUE(a.Send(shell::MakePacket(
                shell::PacketType::kScoringRequest, 0, 1, 8'192)));
        }
    }
    sim.Run();
    const auto& counters = b.counters();
    // Conservation: every sent packet is delivered or dropped for an
    // accounted reason; nothing vanishes.
    EXPECT_EQ(counters.packets_delivered + counters.double_bit_drops +
                  counters.crc_drops,
              static_cast<std::uint64_t>(kPackets));
    // Higher BER can only reduce delivery; at zero BER it is perfect.
    if (ber == 0.0) {
        EXPECT_EQ(counters.packets_delivered,
                  static_cast<std::uint64_t>(kPackets));
    }
}

INSTANTIATE_TEST_SUITE_P(Rates, Sl3BerProperty,
                         ::testing::Values(0.0, 1e-10, 1e-8, 1e-7, 1e-6,
                                           1e-5));

// ---------------------------------------------------------------------
// Codec round-trip across corpus seeds.
// ---------------------------------------------------------------------

class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecProperty, EncodeDecodeRoundTrip) {
    rank::DocumentGenerator generator(GetParam());
    for (int i = 0; i < 10; ++i) {
        const rank::CompressedRequest original = generator.Next();
        const auto bytes = rank::RequestCodec::Encode(original);
        EXPECT_EQ(static_cast<Bytes>(bytes.size()), original.EncodedSize());
        rank::CompressedRequest decoded;
        std::vector<rank::HitTuple> tuples;
        ASSERT_TRUE(rank::RequestCodec::Decode(bytes, decoded, tuples));
        EXPECT_EQ(decoded.tuple_count, original.tuple_count);
        EXPECT_EQ(tuples.size(), original.tuple_count);
        EXPECT_EQ(decoded.software_features, original.software_features);
    }
}

TEST_P(CodecProperty, TupleSizesAreTwoFourOrSix) {
    rank::DocumentGenerator generator(GetParam() ^ 0xABCD);
    const rank::CompressedRequest request = generator.Next();
    rank::HitVectorReader reader(request);
    rank::HitTuple tuple;
    while (reader.Next(tuple)) {
        const int size = tuple.EncodedSize();
        EXPECT_TRUE(size == 2 || size == 4 || size == 6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty,
                         ::testing::Values(1u, 17u, 99u, 12345u, 777777u));

// ---------------------------------------------------------------------
// FFE compiled-vs-AST identity across model seeds (the §4 claim).
// ---------------------------------------------------------------------

class FfeIdentityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FfeIdentityProperty, CompiledMatchesAst) {
    rank::ffe::ExpressionGenerator generator(GetParam());
    rank::ffe::FfeCompiler compiler;
    rank::FeatureStore store;
    Rng rng(GetParam() ^ 0xFEED);
    for (std::uint32_t i = 0; i < rank::kDynamicFeatureCount; i += 2) {
        store.Set(i, static_cast<float>(rng.Uniform(-4.0, 12.0)));
    }
    for (int i = 0; i < 40; ++i) {
        const auto expr = generator.Generate();
        const auto program =
            compiler.Compile(*expr, rank::kFfeOutputBase);
        EXPECT_EQ(expr->Evaluate(store),
                  rank::ffe::FfeProcessor::Execute(program, store));
    }
}

TEST_P(FfeIdentityProperty, SplitPreservesValue) {
    rank::ffe::ExpressionGenerator generator(GetParam() ^ 0x5417);
    rank::ffe::FfeCompiler compiler;
    rank::FeatureStore store;
    Rng rng(GetParam());
    for (std::uint32_t i = 0; i < rank::kDynamicFeatureCount; i += 3) {
        store.Set(i, static_cast<float>(rng.Uniform(0.0, 6.0)));
    }
    for (int i = 0; i < 6; ++i) {
        const auto original = generator.GenerateWithSize(600);
        const float expected = original->Evaluate(store);
        auto work = original->Clone();
        std::uint32_t next_slot = 0;
        const auto parts = compiler.SplitForMetafeatures(*work, next_slot);
        rank::FeatureStore staged = store;
        for (const auto& part : parts) {
            staged.Set(part.slot, part.expr->Evaluate(staged));
        }
        EXPECT_EQ(work->Evaluate(staged), expected);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FfeIdentityProperty,
                         ::testing::Values(3u, 31u, 314u, 3141u, 31415u));

// ---------------------------------------------------------------------
// Ensemble sharding identity across tree counts.
// ---------------------------------------------------------------------

class EnsembleProperty : public ::testing::TestWithParam<int> {};

TEST_P(EnsembleProperty, ShardSumEqualsEnsembleScore) {
    const int trees = GetParam();
    const rank::ScoringEnsemble ensemble = rank::GenerateEnsemble(7, trees);
    EXPECT_EQ(ensemble.total_trees(), trees);
    rank::FeatureStore store;
    Rng rng(trees);
    for (std::uint32_t i = 0; i < rank::kFeatureUniverse; i += 7) {
        store.Set(i, static_cast<float>(rng.Uniform(0.0, 20.0)));
    }
    float sharded = 0.0f;
    int shard_trees = 0;
    for (int s = 0; s < rank::ScoringEnsemble::kShardCount; ++s) {
        sharded += ensemble.shard(s).PartialScore(store);
        shard_trees += ensemble.shard(s).tree_count();
    }
    EXPECT_EQ(shard_trees, trees);
    EXPECT_EQ(sharded, ensemble.Score(store));
}

INSTANTIATE_TEST_SUITE_P(TreeCounts, EnsembleProperty,
                         ::testing::Values(1, 2, 3, 4, 100, 999, 6000));

// ---------------------------------------------------------------------
// Queue Manager never loses or duplicates work, for any model count.
// ---------------------------------------------------------------------

class QueueManagerProperty : public ::testing::TestWithParam<int> {};

TEST_P(QueueManagerProperty, ConservesEntries) {
    const int models = GetParam();
    rank::QueueManager qm;
    Rng rng(models * 31);
    std::set<std::uint64_t> sent, received;
    Time now = 0;
    const int kDocs = 500;
    for (int i = 0; i < kDocs; ++i) {
        const auto model =
            static_cast<std::uint32_t>(rng.NextBounded(models));
        qm.Enqueue(model, static_cast<std::uint64_t>(i), now);
        sent.insert(static_cast<std::uint64_t>(i));
        now += Microseconds(1);
    }
    int guard = 0;
    while (true) {
        const auto decision = qm.Next(now);
        using Kind = rank::QueueManager::DispatchDecision::Kind;
        if (decision.kind == Kind::kIdle) break;
        if (decision.kind == Kind::kDispatch) {
            EXPECT_TRUE(received.insert(decision.entry).second)
                << "duplicate dispatch";
        }
        now += Microseconds(5);
        ASSERT_LT(++guard, kDocs * 4) << "dispatch loop did not converge";
    }
    EXPECT_EQ(received, sent);
    // Switches bounded by dispatches (cannot reload more than once per
    // batch) and at least the number of distinct models touched.
    EXPECT_GE(qm.counters().model_switches,
              static_cast<std::uint64_t>(std::min(models, kDocs) > 0 ? 1 : 0));
    EXPECT_LE(qm.counters().model_switches, qm.counters().dispatched + 1);
}

INSTANTIATE_TEST_SUITE_P(ModelCounts, QueueManagerProperty,
                         ::testing::Values(1, 2, 3, 7, 16, 64));

// ---------------------------------------------------------------------
// Document generator invariants across target sizes.
// ---------------------------------------------------------------------

class DocSizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(DocSizeProperty, WireSizeTracksTarget) {
    rank::DocumentGenerator generator(99);
    const Bytes target = GetParam();
    const auto request = generator.WithTargetSize(target);
    EXPECT_LE(request.wire_bytes, rank::kMaxCompressedBytes);
    EXPECT_GT(request.tuple_count, 0u);
    if (target >= 1'024) {
        EXPECT_NEAR(static_cast<double>(request.wire_bytes),
                    static_cast<double>(std::min(target,
                                                 rank::kMaxCompressedBytes)),
                    static_cast<double>(target) * 0.1 + 256.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DocSizeProperty,
                         ::testing::Values(64, 256, 1'024, 4'096, 16'384,
                                           65'536, 200'000));

// ---------------------------------------------------------------------
// FFE processor timing monotonicity across core counts.
// ---------------------------------------------------------------------

class FfeScalingProperty : public ::testing::TestWithParam<int> {};

TEST_P(FfeScalingProperty, DocumentCyclesBoundedByWork) {
    const int cores = GetParam();
    rank::ffe::ExpressionGenerator generator(4242);
    rank::ffe::FfeCompiler compiler;
    std::vector<rank::ffe::Program> programs;
    std::int64_t total_instructions = 0;
    for (int i = 0; i < 600; ++i) {
        programs.push_back(
            compiler.Compile(*generator.Generate(), rank::kFfeOutputBase));
        total_instructions += programs.back().InstructionCount();
    }
    rank::ffe::FfeProcessor::Config config;
    config.core_count = cores;
    rank::ffe::FfeProcessor processor(config);
    processor.LoadPrograms(programs);
    // Lower bound: perfect balance; upper bound: serial execution.
    EXPECT_GE(processor.DocumentCycles(),
              total_instructions / cores);
    EXPECT_LE(processor.DocumentCycles() - config.overhead_cycles,
              total_instructions * config.latencies.ln);
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, FfeScalingProperty,
                         ::testing::Values(6, 12, 30, 60, 120));

}  // namespace
}  // namespace catapult
