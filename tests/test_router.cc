// Unit tests for the shell router crossbar and routing table (§3.2).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "shell/router.h"
#include "shell/routing_table.h"
#include "shell/sl3_link.h"
#include "sim/simulator.h"

namespace catapult::shell {
namespace {

TEST(RoutingTable, SetLookupClear) {
    RoutingTable table;
    Port out = Port::kRole;
    EXPECT_FALSE(table.Lookup(7, out));
    table.SetRoute(7, Port::kEast);
    ASSERT_TRUE(table.Lookup(7, out));
    EXPECT_EQ(out, Port::kEast);
    table.SetRoute(7, Port::kWest);  // overwrite
    ASSERT_TRUE(table.Lookup(7, out));
    EXPECT_EQ(out, Port::kWest);
    table.ClearRoute(7);
    EXPECT_FALSE(table.Lookup(7, out));
    table.SetRoute(1, Port::kNorth);
    table.SetRoute(2, Port::kSouth);
    EXPECT_EQ(table.size(), 2u);
    table.Clear();
    EXPECT_EQ(table.size(), 0u);
}

/** Two routers joined by one link pair, with local delivery sinks. */
struct RouterRig {
    sim::Simulator sim;
    Router r0{&sim, 0};
    Router r1{&sim, 1};
    Sl3Link l0{&sim, "l0", Rng(1)};
    Sl3Link l1{&sim, "l1", Rng(2)};
    std::vector<PacketPtr> delivered0;
    std::vector<PacketPtr> delivered1;

    RouterRig() {
        l0.ConnectTo(&l1);
        r0.AttachLink(Port::kEast, &l0);
        r1.AttachLink(Port::kWest, &l1);
        r0.set_local_delivery(
            [this](PacketPtr p) { delivered0.push_back(std::move(p)); });
        r1.set_local_delivery(
            [this](PacketPtr p) { delivered1.push_back(std::move(p)); });
        r0.routing_table().SetRoute(1, Port::kEast);
        r1.routing_table().SetRoute(0, Port::kWest);
    }
};

TEST(Router, LocalDeliveryForOwnNode) {
    RouterRig rig;
    rig.r0.Inject(MakePacket(PacketType::kScoringRequest, 0, 0, 256),
                  Port::kPcie);
    rig.sim.Run();
    ASSERT_EQ(rig.delivered0.size(), 1u);
    EXPECT_TRUE(rig.delivered1.empty());
}

TEST(Router, ForwardsAcrossLink) {
    RouterRig rig;
    rig.r0.Inject(MakePacket(PacketType::kScoringRequest, 0, 1, 256),
                  Port::kPcie);
    rig.sim.Run();
    ASSERT_EQ(rig.delivered1.size(), 1u);
    EXPECT_EQ(rig.r0.counters().forwarded, 1u);
    EXPECT_EQ(rig.r1.counters().delivered_local, 1u);
}

TEST(Router, RoundTrip) {
    RouterRig rig;
    // Request out, response back.
    rig.r0.Inject(MakePacket(PacketType::kScoringRequest, 0, 1, 4096),
                  Port::kPcie);
    rig.sim.Run();
    ASSERT_EQ(rig.delivered1.size(), 1u);
    rig.r1.Inject(MakePacket(PacketType::kScoringResponse, 1, 0, 64),
                  Port::kRole);
    rig.sim.Run();
    ASSERT_EQ(rig.delivered0.size(), 1u);
}

TEST(Router, NoRouteDropsPacket) {
    RouterRig rig;
    rig.r0.Inject(MakePacket(PacketType::kScoringRequest, 0, 99, 256),
                  Port::kPcie);
    rig.sim.Run();
    EXPECT_EQ(rig.r0.counters().no_route_drops, 1u);
    EXPECT_TRUE(rig.delivered0.empty());
    EXPECT_TRUE(rig.delivered1.empty());
}

TEST(Router, TapSeesTraffic) {
    RouterRig rig;
    int taps = 0;
    rig.r0.set_tap([&](const PacketPtr&, Port, Port) { ++taps; });
    rig.r0.Inject(MakePacket(PacketType::kScoringRequest, 0, 1, 256),
                  Port::kPcie);
    rig.sim.Run();
    EXPECT_EQ(taps, 1);
}

TEST(Router, HopLatencyApplied) {
    RouterRig rig;
    Time delivered_at = -1;
    rig.r1.set_local_delivery([&](PacketPtr) { delivered_at = rig.sim.Now(); });
    rig.r0.Inject(MakePacket(PacketType::kScoringRequest, 0, 1, 32), Port::kPcie);
    rig.sim.Run();
    // Inject hop + link serialization + propagation + drain hop.
    const Time expected_min = rig.r0.link(Port::kEast)->SerializationTime(32) +
                              Nanoseconds(400);
    EXPECT_GE(delivered_at, expected_min);
}

TEST(Router, ManyPacketsAllArriveInOrder) {
    RouterRig rig;
    for (int i = 0; i < 50; ++i) {
        auto p = MakePacket(PacketType::kScoringRequest, 0, 1, 128);
        p->trace_id = static_cast<std::uint64_t>(i);
        rig.r0.Inject(std::move(p), Port::kPcie);
    }
    rig.sim.Run();
    ASSERT_EQ(rig.delivered1.size(), 50u);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(rig.delivered1[static_cast<std::size_t>(i)]->trace_id,
                  static_cast<std::uint64_t>(i));
    }
}

TEST(Router, InputOccupancyVisible) {
    RouterRig rig;
    EXPECT_EQ(rig.r1.InputOccupancyFlits(Port::kWest), 0u);
    EXPECT_EQ(rig.r1.InputOccupancyFlits(Port::kNorth), 0u);
}

}  // namespace
}  // namespace catapult::shell
