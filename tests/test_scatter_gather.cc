// Scatter-gather front door: ResultMerger property tests (seeded RNG —
// merge equals sort-of-concatenation truncated to k, deterministic
// tie-breaking, round-robin interleave of equal-score runs), deadline
// edge cases (zero pods answered, every pod answered exactly at the
// budget instant, stragglers after delivery), mid-scatter pod blackout
// with live re-admission, and the dispatcher's 64-pod rotation limit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "rank/document_generator.h"
#include "service/federation_testbed.h"
#include "service/scatter_gather.h"

namespace catapult::service {
namespace {

FederationTestbed::Config FastFederation(int pods, int rings) {
    FederationTestbed::Config config;
    config.pod_count = pods;
    config.pod.ring_count = rings;
    config.pod.fabric.device.configure_time = Milliseconds(5);
    return config;
}

/** Health/reboot tuning that makes whole-pod loss conclude quickly. */
void FastFailureHandling(FederationTestbed::Config& config) {
    config.pod.host.soft_reboot_duration = Milliseconds(200);
    config.pod.host.hard_reboot_duration = Milliseconds(500);
    config.pod.host.crash_reboot_delay = Milliseconds(50);
    config.pod.health.heartbeat_period = Milliseconds(10);
    config.pod.health.query_timeout = Milliseconds(50);
}

/** A deterministic batch of documents, all carrying `query`. */
std::vector<rank::CompressedRequest> MakeDocs(int count,
                                              std::uint64_t seed = 17) {
    rank::DocumentGenerator generator(seed);
    std::vector<rank::CompressedRequest> docs;
    docs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        docs.push_back(std::move(request));
    }
    return docs;
}

// ---------------------------------------------------------- ResultMerger

/**
 * Random per-pod lists with deliberately colliding scores (drawn from a
 * handful of buckets) and globally unique doc ids.
 */
std::vector<std::vector<RankedDoc>> RandomLists(Rng& rng, int max_pods,
                                                int max_docs_per_pod) {
    const int pods = static_cast<int>(rng.UniformInt(1, max_pods));
    std::vector<std::vector<RankedDoc>> lists(
        static_cast<std::size_t>(pods));
    std::uint64_t next_doc_id = 1;
    for (int p = 0; p < pods; ++p) {
        // Empty pods are a first-class input (a pod may answer nothing).
        const int docs = static_cast<int>(rng.UniformInt(0, max_docs_per_pod));
        for (int d = 0; d < docs; ++d) {
            RankedDoc doc;
            doc.doc_id = next_doc_id++;
            // Five score buckets: duplicate scores across (and within)
            // pods are the common case, not the corner case.
            doc.score = 0.25f * static_cast<float>(rng.UniformInt(0, 4));
            doc.pod = p;
            lists[static_cast<std::size_t>(p)].push_back(doc);
        }
    }
    return lists;
}

TEST(ResultMerger, PropertyMergeEqualsSortedConcatenationTruncated) {
    Rng rng(0x5EA7C4ull);
    for (int trial = 0; trial < 200; ++trial) {
        const auto lists = RandomLists(rng, /*max_pods=*/6,
                                       /*max_docs_per_pod=*/20);
        std::vector<RankedDoc> all;
        for (const auto& list : lists) {
            all.insert(all.end(), list.begin(), list.end());
        }
        const auto k = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(all.size()) + 4));

        const auto merged = ResultMerger::Merge(lists, k);

        // Size: exactly min(k, total).
        ASSERT_EQ(merged.size(), std::min(k, all.size()))
            << "trial " << trial;
        // Scores: identical to the sorted concatenation, truncated.
        std::vector<float> oracle;
        oracle.reserve(all.size());
        for (const auto& doc : all) oracle.push_back(doc.score);
        std::sort(oracle.begin(), oracle.end(), std::greater<float>());
        for (std::size_t i = 0; i < merged.size(); ++i) {
            ASSERT_EQ(merged[i].score, oracle[i])
                << "trial " << trial << " position " << i;
        }
        // Every merged doc is an input doc, no doc merged twice (doc
        // ids are globally unique by construction).
        std::vector<std::uint64_t> ids;
        ids.reserve(merged.size());
        for (const auto& doc : merged) {
            ASSERT_TRUE(std::any_of(all.begin(), all.end(),
                                    [&](const RankedDoc& d) {
                                        return d == doc;
                                    }))
                << "trial " << trial;
            ids.push_back(doc.doc_id);
        }
        std::sort(ids.begin(), ids.end());
        ASSERT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
            << "trial " << trial;
    }
}

TEST(ResultMerger, PropertyDeterministicUnderInputPermutation) {
    Rng rng(0xD37E12ull);
    for (int trial = 0; trial < 100; ++trial) {
        auto lists = RandomLists(rng, /*max_pods=*/5, /*max_docs_per_pod=*/12);
        std::size_t total = 0;
        for (const auto& list : lists) total += list.size();
        const auto k = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(total)));

        const auto first = ResultMerger::Merge(lists, k);
        // Same input twice: byte-identical output.
        ASSERT_EQ(ResultMerger::Merge(lists, k), first) << "trial " << trial;
        // Shuffle each pod's list (completion order is arbitrary in
        // production); the merger canonicalizes, so output is identical.
        for (auto& list : lists) {
            for (std::size_t i = list.size(); i > 1; --i) {
                std::swap(list[i - 1],
                          list[static_cast<std::size_t>(rng.UniformInt(
                              0, static_cast<std::int64_t>(i) - 1))]);
            }
        }
        ASSERT_EQ(ResultMerger::Merge(lists, k), first) << "trial " << trial;
    }
}

TEST(ResultMerger, RoundRobinInterleavesEqualScoreRuns) {
    // Pod 0 holds three docs at 1.0, pod 2 two docs at 1.0 plus a 0.5
    // tail. The tied band must alternate 0,2,0,2,0 — ascending pod id
    // first, doc id ascending within each pod — then the run below.
    std::vector<std::vector<RankedDoc>> lists = {
        {{11, 1.0f, 0}, {13, 1.0f, 0}, {12, 1.0f, 0}},
        {{21, 1.0f, 2}, {20, 0.5f, 2}, {22, 1.0f, 2}},
    };
    const auto merged = ResultMerger::Merge(lists, 6);
    const std::vector<RankedDoc> expected = {
        {11, 1.0f, 0}, {21, 1.0f, 2}, {12, 1.0f, 0},
        {22, 1.0f, 2}, {13, 1.0f, 0}, {20, 0.5f, 2},
    };
    EXPECT_EQ(merged, expected);
}

TEST(ResultMerger, EmptyAndDegenerateInputs) {
    EXPECT_TRUE(ResultMerger::Merge({}, 8).empty());
    EXPECT_TRUE(ResultMerger::Merge({{}, {}, {}}, 8).empty());
    EXPECT_TRUE(
        ResultMerger::Merge({{{1, 1.0f, 0}}}, 0).empty());
    const auto merged = ResultMerger::Merge({{}, {{7, 2.0f, 1}}, {}}, 4);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].doc_id, 7u);
}

// ------------------------------------------------- scatter-gather tier

TEST(ScatterGather, MergesCrossPodTopKWithPerPodAccounting) {
    FederationTestbed bed(FastFederation(/*pods=*/3, /*rings=*/1));
    ASSERT_TRUE(bed.DeployAndSettle());
    SessionFrontEnd& door = bed.front_end();

    const std::uint64_t session = door.OpenSession();
    ASSERT_GT(session, 0u);
    ASSERT_EQ(door.session_stats(session).connection_pool.size(), 4u);

    ScatterGatherDispatcher::GatherResult result;
    bool delivered = false;
    rank::Query query;
    query.query_id = 42;
    const std::uint64_t gather = door.Submit(
        session, query, MakeDocs(24), /*top_k=*/10, /*budget=*/0,
        [&](const ScatterGatherDispatcher::GatherResult& r) {
            result = r;
            delivered = true;
        });
    ASSERT_GT(gather, 0u);
    bed.simulator().Run();

    ASSERT_TRUE(delivered);
    EXPECT_FALSE(result.partial);
    EXPECT_EQ(result.doc_count, 24u);
    EXPECT_EQ(result.accepted, 24u);
    EXPECT_EQ(result.answered, 24u);
    EXPECT_EQ(result.rejected, 0u);
    ASSERT_EQ(result.top.size(), 10u);
    // Merged order: scores never increase.
    for (std::size_t i = 1; i < result.top.size(); ++i) {
        EXPECT_LE(result.top[i].score, result.top[i - 1].score) << i;
    }
    // The scatter partition covered all three pods evenly, and the
    // answered/missing ledger closes: every assigned shard is either
    // answered (by someone) or missing.
    ASSERT_EQ(result.pods.size(), 3u);
    std::size_t answered = 0;
    std::size_t missing = 0;
    for (const auto& shard : result.pods) {
        EXPECT_EQ(shard.assigned, 8) << "pod " << shard.pod;
        EXPECT_EQ(shard.missing, 0) << "pod " << shard.pod;
        answered += static_cast<std::size_t>(shard.answered);
        missing += static_cast<std::size_t>(shard.missing);
    }
    EXPECT_EQ(answered + missing, result.doc_count);
    // Every merged doc carries the pod that served it.
    for (const auto& doc : result.top) {
        EXPECT_GE(doc.pod, 0);
        EXPECT_LT(doc.pod, 3);
    }
    const auto& counters = door.scatter().counters();
    EXPECT_EQ(counters.delivered, 1u);
    EXPECT_EQ(counters.partial, 0u);
    EXPECT_EQ(counters.docs_answered, 24u);
    EXPECT_EQ(counters.stragglers, 0u);
    EXPECT_EQ(counters.merges, 1u);
    const auto stats = door.session_stats(session);
    EXPECT_EQ(stats.delivered, 1u);
    EXPECT_EQ(stats.in_flight, 0);
}

TEST(ScatterGather, DeadlineWithZeroPodsAnsweredDeliversEmptyPartial) {
    FederationTestbed bed(FastFederation(/*pods=*/2, /*rings=*/1));
    ASSERT_TRUE(bed.DeployAndSettle());
    SessionFrontEnd& door = bed.front_end();
    const std::uint64_t session = door.OpenSession();

    // A 1 µs budget is below even the software injection overhead: the
    // deadline fires with every accepted shard still in flight.
    ScatterGatherDispatcher::GatherResult result;
    bool delivered = false;
    ASSERT_GT(door.Submit(session, rank::Query{}, MakeDocs(12),
                          /*top_k=*/8, Microseconds(1),
                          [&](const ScatterGatherDispatcher::GatherResult& r) {
                              result = r;
                              delivered = true;
                          }),
              0u);
    bed.simulator().Run();

    ASSERT_TRUE(delivered);
    EXPECT_TRUE(result.partial);
    EXPECT_EQ(result.answered, 0u);
    EXPECT_TRUE(result.top.empty());
    EXPECT_EQ(result.latency, Microseconds(1));
    std::size_t missing = 0;
    for (const auto& shard : result.pods) {
        missing += static_cast<std::size_t>(shard.missing);
        EXPECT_EQ(shard.answered, 0) << "pod " << shard.pod;
    }
    EXPECT_EQ(missing, result.doc_count);

    // Zero lost accepted shards: every shard the federation accepted
    // completed after the deadline and was accounted as a straggler —
    // never merged, never dropped, never delivered twice.
    const auto& counters = door.scatter().counters();
    EXPECT_EQ(counters.stragglers, result.accepted);
    EXPECT_EQ(counters.docs_answered, 0u);
    EXPECT_EQ(bed.dispatcher().counters().lost, 0u);

    // The session survives an empty partial intact: the next gather on
    // the same session runs to a complete result.
    const auto stats = door.session_stats(session);
    EXPECT_EQ(stats.delivered, 1u);
    EXPECT_EQ(stats.partial, 1u);
    EXPECT_EQ(stats.stragglers, result.accepted);
    EXPECT_EQ(stats.in_flight, 0);
    bool delivered2 = false;
    ScatterGatherDispatcher::GatherResult result2;
    ASSERT_GT(door.Submit(session, rank::Query{}, MakeDocs(12, /*seed=*/23),
                          /*top_k=*/8, /*budget=*/0,
                          [&](const ScatterGatherDispatcher::GatherResult& r) {
                              result2 = r;
                              delivered2 = true;
                          }),
              0u);
    bed.simulator().Run();
    ASSERT_TRUE(delivered2);
    EXPECT_FALSE(result2.partial);
    EXPECT_EQ(result2.answered, 12u);
    EXPECT_EQ(door.session_stats(session).delivered, 2u);
    // Stragglers from gather 1 did not double-count into gather 2.
    EXPECT_EQ(door.scatter().counters().stragglers, result.accepted);
}

TEST(ScatterGather, AllPodsAnsweringExactlyAtBudgetIsComplete) {
    // Pass 1: measure the exact completion instant of a gather on a
    // fresh federation. Pass 2: identical federation (same seeds, same
    // deploy schedule), identical workload, budget set to exactly the
    // measured latency. Completions carry delivery priority, the
    // deadline carries timeout priority, so the same-instant gather
    // must deliver complete — answering exactly at the budget is on
    // time, not late.
    Time measured = 0;
    for (int pass = 0; pass < 2; ++pass) {
        FederationTestbed bed(FastFederation(/*pods=*/3, /*rings=*/1));
        ASSERT_TRUE(bed.DeployAndSettle());
        SessionFrontEnd& door = bed.front_end();
        const std::uint64_t session = door.OpenSession();

        ScatterGatherDispatcher::GatherResult result;
        bool delivered = false;
        const Time budget = pass == 0 ? Time{0} : measured;
        ASSERT_GT(door.Submit(session, rank::Query{}, MakeDocs(18),
                              /*top_k=*/6, budget,
                              [&](const ScatterGatherDispatcher::GatherResult& r) {
                                  result = r;
                                  delivered = true;
                              }),
                  0u);
        bed.simulator().Run();
        ASSERT_TRUE(delivered) << "pass " << pass;
        EXPECT_FALSE(result.partial) << "pass " << pass;
        EXPECT_EQ(result.answered, 18u) << "pass " << pass;
        if (pass == 0) {
            measured = result.latency;
            ASSERT_GT(measured, 0);
        } else {
            // The gather really did land on the deadline instant.
            EXPECT_EQ(result.latency, measured);
            EXPECT_EQ(door.scatter().counters().stragglers, 0u);
        }
    }
}

TEST(ScatterGather, PodBlackoutMidScatterSurvivorsCompleteAndPodRejoins) {
    auto config = FastFederation(/*pods=*/3, /*rings=*/1);
    FastFailureHandling(config);
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());
    SessionFrontEnd& door = bed.front_end();
    const std::uint64_t session = door.OpenSession();

    // Lights out on pod 0 moments after the scatter: its accepted
    // shards are in flight on dying hardware. The budget expires
    // before the 8 ms ring request timeout can trigger failover, so
    // the delivered result is partial with the hole attributed to
    // pod 0 — and the failover completions that land later are
    // stragglers, not corruption.
    const Time blackout_at = bed.simulator().Now() + Milliseconds(5);
    bed.pod(0).failure_injector().SchedulePodBlackout(blackout_at);

    ScatterGatherDispatcher::GatherResult result;
    bool delivered = false;
    // 10 µs before the blackout: below even the 12 µs software
    // injection overhead, so every shard is still in flight when pod 0
    // dies.
    bed.simulator().ScheduleAt(blackout_at - Microseconds(10), [&] {
        ASSERT_GT(door.Submit(
                      session, rank::Query{}, MakeDocs(30), /*top_k=*/10,
                      /*budget=*/Milliseconds(5),
                      [&](const ScatterGatherDispatcher::GatherResult& r) {
                          result = r;
                          delivered = true;
                      }),
                  0u);
    });
    bed.simulator().Run();

    ASSERT_TRUE(delivered);
    EXPECT_TRUE(result.partial);
    ASSERT_EQ(result.pods.size(), 3u);
    // All three pods were in the scatter set (blackout hit after the
    // partition), survivors answered their shards, and pod 0's shards
    // surface as missing.
    EXPECT_EQ(result.pods[0].assigned, 10);
    EXPECT_GT(result.pods[0].missing, 0);
    EXPECT_GT(result.pods[1].answered, 0);
    EXPECT_GT(result.pods[2].answered, 0);
    std::size_t answered = 0;
    std::size_t missing = 0;
    for (const auto& shard : result.pods) {
        answered += static_cast<std::size_t>(shard.answered);
        missing += static_cast<std::size_t>(shard.missing);
    }
    EXPECT_EQ(answered + missing, result.doc_count);
    EXPECT_EQ(answered, result.answered);
    // Nothing lost below: accepted shards either merged or straggled.
    EXPECT_EQ(bed.dispatcher().counters().lost, 0u);
    EXPECT_EQ(door.scatter().counters().stragglers +
                  door.scatter().counters().docs_answered +
                  door.scatter().counters().docs_failed,
              door.scatter().counters().docs_scattered);

    // Live re-admission: the serviced pod rejoins the scatter set.
    ASSERT_FALSE(bed.dispatcher().pod_eligible(0));
    bool reattached = false;
    bed.ReattachPod(0, [&](bool ok) { reattached = ok; });
    bed.simulator().Run();
    ASSERT_TRUE(reattached);
    ASSERT_TRUE(bed.dispatcher().pod_eligible(0));

    bool delivered2 = false;
    ScatterGatherDispatcher::GatherResult result2;
    ASSERT_GT(door.Submit(session, rank::Query{}, MakeDocs(30, /*seed=*/31),
                          /*top_k=*/10, /*budget=*/0,
                          [&](const ScatterGatherDispatcher::GatherResult& r) {
                              result2 = r;
                              delivered2 = true;
                          }),
              0u);
    bed.simulator().Run();
    ASSERT_TRUE(delivered2);
    EXPECT_FALSE(result2.partial);
    EXPECT_EQ(result2.answered, 30u);
    // The readmitted pod is back in the partition and serving.
    EXPECT_EQ(result2.pods[0].assigned, 10);
    EXPECT_GT(result2.pods[0].answered, 0);
}

TEST(SessionFrontEnd, InFlightCapRefusesAndClosedSessionRefuses) {
    auto config = FastFederation(/*pods=*/2, /*rings=*/1);
    config.front_end.max_gathers_per_session = 1;
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());
    SessionFrontEnd& door = bed.front_end();
    const std::uint64_t session = door.OpenSession();

    int completions = 0;
    auto on_complete =
        [&](const ScatterGatherDispatcher::GatherResult&) { ++completions; };
    ASSERT_GT(door.Submit(session, rank::Query{}, MakeDocs(4), 4, 0,
                          on_complete),
              0u);
    // Cap of one: the second concurrent gather is refused, accounted,
    // and the first still delivers.
    EXPECT_EQ(door.Submit(session, rank::Query{}, MakeDocs(4), 4, 0,
                          on_complete),
              0u);
    bed.simulator().Run();
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(door.session_stats(session).refused, 1u);
    EXPECT_EQ(door.counters().refused, 1u);

    ASSERT_TRUE(door.CloseSession(session));
    EXPECT_FALSE(door.SessionOpen(session));
    EXPECT_EQ(door.Submit(session, rank::Query{}, MakeDocs(4), 4, 0,
                          on_complete),
              0u);
    EXPECT_EQ(door.counters().refused, 2u);
}

// ------------------------------------------------------ rotation limit

TEST(FederatedDispatcher, AttachPodRefusesTheSixtyFifthPod) {
    // The per-query tried-set is a 64-bit mask, so the rotation holds
    // at most 64 pods; the 65th attach is refused with -1. One real
    // PodContext stands in for all 64 slots — the limit is on the
    // dispatcher's table, not on pod identity.
    FederationTestbed bed(FastFederation(/*pods=*/1, /*rings=*/1));
    mgmt::PodContext& pod = bed.pod(0);
    for (int i = 1; i < 64; ++i) {
        ASSERT_EQ(bed.dispatcher().AttachPod(&pod), i) << "slot " << i;
    }
    EXPECT_EQ(bed.dispatcher().pod_count(), 64);
    EXPECT_EQ(bed.dispatcher().AttachPod(&pod), -1);
    EXPECT_EQ(bed.dispatcher().pod_count(), 64);
}

}  // namespace
}  // namespace catapult::service
