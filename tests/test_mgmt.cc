// Unit tests for the management plane: Mapping Manager deploy ordering,
// Health Monitor reboot ladder and fault classification (§3.3-§3.5).

#include <gtest/gtest.h>

#include <memory>

#include "fabric/catapult_fabric.h"
#include "host/host_server.h"
#include "mgmt/failure_injector.h"
#include "mgmt/health_monitor.h"
#include "mgmt/mapping_manager.h"
#include "sim/simulator.h"

namespace catapult::mgmt {
namespace {

struct MgmtRig {
    sim::Simulator sim;
    std::unique_ptr<fabric::CatapultFabric> fabric;
    std::vector<std::unique_ptr<host::HostServer>> host_storage;
    std::vector<host::HostServer*> hosts;
    std::unique_ptr<MappingManager> mapping;
    std::unique_ptr<HealthMonitor> health;

    explicit MgmtRig(fabric::CatapultFabric::Config config = {}) {
        fabric = std::make_unique<fabric::CatapultFabric>(&sim, Rng(5), config);
        for (int i = 0; i < fabric->node_count(); ++i) {
            host_storage.push_back(std::make_unique<host::HostServer>(
                &sim, "srv" + std::to_string(i), &fabric->shell(i)));
            hosts.push_back(host_storage.back().get());
        }
        mapping = std::make_unique<MappingManager>(&sim, fabric.get(), hosts);
        health = std::make_unique<HealthMonitor>(&sim, fabric.get(), hosts);
    }

    ServiceSpec EightNodeSpec() {
        ServiceSpec spec;
        spec.service_name = "test.service";
        for (int i = 0; i < 8; ++i) {
            RoleAssignment role;
            role.role_name = "stage" + std::to_string(i);
            role.image = fpga::MakeBitstream(
                static_cast<std::uint64_t>(100 + i), role.role_name,
                {50, 50, 10}, Frequency::MHz(150.0));
            role.node = i;
            spec.roles.push_back(role);
        }
        return spec;
    }
};

TEST(MappingManager, DeployConfiguresAllNodes) {
    MgmtRig rig;
    bool ok = false;
    rig.mapping->Deploy(rig.EightNodeSpec(), [&](bool success) { ok = success; });
    rig.sim.Run();
    EXPECT_TRUE(ok);
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(rig.fabric->device(i).active());
        EXPECT_EQ(rig.fabric->device(i).loaded_image().role_name,
                  "stage" + std::to_string(i));
    }
}

TEST(MappingManager, RxHaltReleasedOnlyAfterAllConfigured) {
    // §3.4: "The Mapping Manager tells each server to release RX Halt
    // once all FPGAs in a pipeline have been configured."
    MgmtRig rig;
    bool deployed = false;
    rig.mapping->Deploy(rig.EightNodeSpec(),
                        [&](bool ok) { deployed = ok; });
    // Mid-deployment: devices configuring, RX halts still engaged.
    rig.sim.RunUntil(Milliseconds(100));
    EXPECT_FALSE(deployed);
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(rig.fabric->shell(i).rx_halted());
    }
    rig.sim.Run();
    EXPECT_TRUE(deployed);
    for (int i = 0; i < 8; ++i) {
        EXPECT_FALSE(rig.fabric->shell(i).rx_halted());
    }
}

TEST(MappingManager, RoutesInstalledAfterDeploy) {
    MgmtRig rig;
    rig.mapping->Deploy(rig.EightNodeSpec(), [](bool) {});
    rig.sim.Run();
    shell::Port out;
    EXPECT_TRUE(rig.fabric->shell(0).router().routing_table().Lookup(
        rig.fabric->GlobalId(1), out));
}

TEST(MappingManager, RoleLookupAfterDeploy) {
    MgmtRig rig;
    rig.mapping->Deploy(rig.EightNodeSpec(), [](bool) {});
    rig.sim.Run();
    EXPECT_EQ(rig.mapping->NodeOfRole("stage3"), 3);
    EXPECT_EQ(rig.mapping->RoleAtNode(5), "stage5");
    EXPECT_EQ(rig.mapping->NodeOfRole("nonexistent"), -1);
}

TEST(MappingManager, ReconfigureInPlaceRestoresNode) {
    MgmtRig rig;
    rig.mapping->Deploy(rig.EightNodeSpec(), [](bool) {});
    rig.sim.Run();
    // Simulate a hang resolved by in-place reconfiguration (§3.5).
    rig.fabric->shell(2).FlagApplicationError();
    bool ok = false;
    rig.mapping->ReconfigureInPlace(2, [&](bool success) { ok = success; });
    rig.sim.Run();
    EXPECT_TRUE(ok);
    EXPECT_FALSE(rig.fabric->shell(2).rx_halted());
    EXPECT_FALSE(rig.fabric->shell(2).CollectHealth().application_error);
}

TEST(HealthMonitor, HealthyMachinesReportNoFault) {
    MgmtRig rig;
    rig.mapping->Deploy(rig.EightNodeSpec(), [](bool) {});
    rig.sim.Run();
    std::vector<MachineReport> reports;
    rig.health->Investigate({0, 1, 2},
                            [&](std::vector<MachineReport> r) { reports = r; });
    rig.sim.Run();
    ASSERT_EQ(reports.size(), 3u);
    for (const auto& report : reports) {
        EXPECT_EQ(report.fault, FaultType::kNone) << "node " << report.node;
    }
    EXPECT_TRUE(rig.health->failed_machine_list().empty());
}

TEST(HealthMonitor, UnresponsiveServerGetsRebootLadder) {
    MgmtRig rig;
    rig.mapping->Deploy(rig.EightNodeSpec(), [](bool) {});
    rig.sim.Run();
    // Crash node 4's host; no self-heal (cancel the auto reboot by
    // flagging, then investigate).
    rig.hosts[4]->CrashAndReboot("test crash");
    std::vector<MachineReport> reports;
    rig.health->Investigate({4},
                            [&](std::vector<MachineReport> r) { reports = r; });
    rig.sim.Run();
    ASSERT_EQ(reports.size(), 1u);
    // Either the crash self-healed before the query, or the ladder
    // recovered it; in both cases the node is running again.
    EXPECT_TRUE(rig.hosts[4]->responsive());
}

TEST(HealthMonitor, ClassifiesLinkError) {
    MgmtRig rig;
    rig.mapping->Deploy(rig.EightNodeSpec(), [](bool) {});
    rig.sim.Run();
    rig.fabric->InjectCableDefect(3, shell::Port::kEast);
    std::vector<MachineReport> reports;
    rig.health->Investigate({3},
                            [&](std::vector<MachineReport> r) { reports = r; });
    rig.sim.Run();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].fault, FaultType::kLinkError);
    EXPECT_EQ(rig.health->failed_machine_list().size(), 1u);
}

TEST(HealthMonitor, ClassifiesApplicationError) {
    MgmtRig rig;
    rig.mapping->Deploy(rig.EightNodeSpec(), [](bool) {});
    rig.sim.Run();
    rig.fabric->shell(6).FlagApplicationError();
    std::vector<MachineReport> reports;
    rig.health->Investigate({6},
                            [&](std::vector<MachineReport> r) { reports = r; });
    rig.sim.Run();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].fault, FaultType::kApplicationError);
}

TEST(HealthMonitor, ClassifiesDramCalibrationFailure) {
    MgmtRig rig;
    rig.mapping->Deploy(rig.EightNodeSpec(), [](bool) {});
    rig.sim.Run();
    rig.fabric->shell(1).dram(0).set_calibrated(false);
    std::vector<MachineReport> reports;
    rig.health->Investigate({1},
                            [&](std::vector<MachineReport> r) { reports = r; });
    rig.sim.Run();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].fault, FaultType::kDramError);
}

TEST(HealthMonitor, OnMachineFailedHookFires) {
    MgmtRig rig;
    rig.mapping->Deploy(rig.EightNodeSpec(), [](bool) {});
    rig.sim.Run();
    int hook_calls = 0;
    rig.health->set_on_machine_failed(
        [&](const MachineReport&) { ++hook_calls; });
    rig.fabric->shell(2).FlagApplicationError();
    rig.health->Investigate({2}, [](std::vector<MachineReport>) {});
    rig.sim.Run();
    EXPECT_EQ(hook_calls, 1);
}

TEST(FailureInjector, ScheduledFaultsFire) {
    MgmtRig rig;
    rig.mapping->Deploy(rig.EightNodeSpec(), [](bool) {});
    rig.sim.Run();
    FailureInjector injector(&rig.sim, rig.fabric.get(), rig.hosts, Rng(7));
    const Time t0 = rig.sim.Now();
    injector.ScheduleApplicationHang(5, t0 + Milliseconds(1));
    injector.ScheduleDramCalibrationFailure(6, 0, t0 + Milliseconds(2));
    injector.ScheduleCableDefect(7, shell::Port::kNorth, t0 + Milliseconds(3));
    rig.sim.Run();
    EXPECT_EQ(injector.injected_count(), 3u);
    EXPECT_TRUE(rig.fabric->shell(5).CollectHealth().application_error);
    EXPECT_TRUE(rig.fabric->shell(6).CollectHealth().dram_calibration_failure);
    EXPECT_TRUE(rig.fabric->shell(7).CollectHealth().link_error[0]);
}

TEST(FailureInjector, MachineRebootMakesHostUnresponsiveThenHeals) {
    MgmtRig rig;
    rig.mapping->Deploy(rig.EightNodeSpec(), [](bool) {});
    rig.sim.Run();
    FailureInjector injector(&rig.sim, rig.fabric.get(), rig.hosts, Rng(7));
    injector.ScheduleMachineReboot(3, rig.sim.Now() + Milliseconds(1));
    rig.sim.RunUntil(rig.sim.Now() + Milliseconds(2));
    EXPECT_FALSE(rig.hosts[3]->responsive());
    rig.sim.Run();
    EXPECT_TRUE(rig.hosts[3]->responsive());
}

}  // namespace
}  // namespace catapult::mgmt
