// Unit tests for the discrete-event kernel.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace catapult::sim {
namespace {

TEST(Simulator, FiresInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.ScheduleAt(Microseconds(3), [&] { order.push_back(3); });
    sim.ScheduleAt(Microseconds(1), [&] { order.push_back(1); });
    sim.ScheduleAt(Microseconds(2), [&] { order.push_back(2); });
    sim.Run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.Now(), Microseconds(3));
}

TEST(Simulator, SameTickInsertionOrder) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.ScheduleAt(Microseconds(1), [&, i] { order.push_back(i); });
    }
    sim.Run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, PriorityBreaksTies) {
    Simulator sim;
    std::vector<std::string> order;
    sim.ScheduleAt(Microseconds(1), [&] { order.push_back("timeout"); },
                   EventPriority::kTimeout);
    sim.ScheduleAt(Microseconds(1), [&] { order.push_back("deliver"); },
                   EventPriority::kDeliver);
    sim.ScheduleAt(Microseconds(1), [&] { order.push_back("default"); },
                   EventPriority::kDefault);
    sim.Run();
    EXPECT_EQ(order, (std::vector<std::string>{"deliver", "default", "timeout"}));
}

TEST(Simulator, ScheduleAfterUsesNow) {
    Simulator sim;
    Time fired_at = -1;
    sim.ScheduleAfter(Microseconds(5), [&] {
        sim.ScheduleAfter(Microseconds(5), [&] { fired_at = sim.Now(); });
    });
    sim.Run();
    EXPECT_EQ(fired_at, Microseconds(10));
}

TEST(Simulator, CancelPreventsFiring) {
    Simulator sim;
    bool fired = false;
    const EventHandle handle =
        sim.ScheduleAfter(Microseconds(1), [&] { fired = true; });
    sim.Cancel(handle);
    sim.Run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.EventsFired(), 0u);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
    Simulator sim;
    int fired = 0;
    const EventHandle handle =
        sim.ScheduleAfter(Microseconds(1), [&] { ++fired; });
    sim.Run();
    sim.Cancel(handle);  // already fired; must be a no-op
    sim.Cancel(handle);
    EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
    Simulator sim;
    int fired = 0;
    for (int i = 1; i <= 10; ++i) {
        sim.ScheduleAt(Microseconds(i), [&] { ++fired; });
    }
    sim.RunUntil(Microseconds(5));
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(sim.Now(), Microseconds(5));
    sim.Run();
    EXPECT_EQ(fired, 10);
}

TEST(Simulator, HorizonDeferredEventStaysCancellable) {
    // Regression: RunUntil pops the first event past the horizon and
    // re-enqueues it. An event cancelled after being deferred that way
    // must still never fire.
    Simulator sim;
    bool fired = false;
    const EventHandle handle =
        sim.ScheduleAt(Microseconds(100), [&] { fired = true; });
    sim.RunUntil(Microseconds(50));  // pops + re-enqueues the event
    EXPECT_EQ(sim.Now(), Microseconds(50));
    EXPECT_EQ(sim.PendingEvents(), 1u);
    sim.Cancel(handle);
    sim.Run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.EventsFired(), 0u);
}

TEST(Simulator, CancelledEventSkippedAcrossHorizon) {
    // The mirror order: cancel first, then run past several horizons.
    // The lazily-deleted entry must be skipped, not deferred back in.
    Simulator sim;
    bool fired = false;
    int later = 0;
    const EventHandle handle =
        sim.ScheduleAt(Microseconds(100), [&] { fired = true; });
    sim.ScheduleAt(Microseconds(200), [&] { ++later; });
    sim.Cancel(handle);
    sim.RunUntil(Microseconds(50));
    sim.RunUntil(Microseconds(150));
    sim.Run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(later, 1);
    EXPECT_EQ(sim.EventsFired(), 1u);
}

TEST(Simulator, ManyCancellationsStayCheap) {
    // The timeout-heavy multi-ring pattern: every request schedules a
    // timeout and nearly all get cancelled on completion. O(1) Cancel
    // keeps this linear; the old sorted-vector insert was quadratic.
    Simulator sim;
    constexpr int kEvents = 20'000;
    std::vector<EventHandle> handles;
    handles.reserve(kEvents);
    int fired = 0;
    for (int i = 0; i < kEvents; ++i) {
        handles.push_back(
            sim.ScheduleAt(Microseconds(1 + i), [&] { ++fired; }));
    }
    // Cancel in an order hostile to append-friendly structures.
    for (int i = kEvents - 1; i >= 0; --i) {
        if (i % 16 != 0) sim.Cancel(handles[static_cast<std::size_t>(i)]);
    }
    sim.Run();
    EXPECT_EQ(fired, kEvents / 16);
}

TEST(Simulator, StepSingleEvent) {
    Simulator sim;
    int fired = 0;
    sim.ScheduleAfter(1, [&] { ++fired; });
    sim.ScheduleAfter(2, [&] { ++fired; });
    EXPECT_TRUE(sim.Step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.Step());
    EXPECT_FALSE(sim.Step());
}

TEST(Simulator, EventsCanScheduleEvents) {
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 100) sim.ScheduleAfter(Nanoseconds(1), recurse);
    };
    sim.ScheduleAfter(0, recurse);
    sim.Run();
    EXPECT_EQ(depth, 100);
}

TEST(Simulator, PendingEventCount) {
    Simulator sim;
    const auto h1 = sim.ScheduleAfter(1, [] {});
    sim.ScheduleAfter(2, [] {});
    EXPECT_EQ(sim.PendingEvents(), 2u);
    sim.Cancel(h1);
    sim.Run();
    EXPECT_EQ(sim.PendingEvents(), 0u);
    EXPECT_TRUE(sim.Empty());
}

TEST(ClockDomain, CyclesAndEdges) {
    const ClockDomain clock(Frequency::MHz(200.0));
    EXPECT_EQ(clock.period(), Picoseconds(5'000));
    EXPECT_EQ(clock.Cycles(1'600), Microseconds(8));
    EXPECT_EQ(clock.NextEdge(Picoseconds(1)), Picoseconds(5'000));
    EXPECT_EQ(clock.NextEdge(Picoseconds(5'000)), Picoseconds(5'000));
    EXPECT_EQ(clock.CyclesIn(Microseconds(1)), 200);
}

TEST(ClockDomain, MultipleDomainsCoexist) {
    // Table 1 stage clocks all derive exact spans from one kernel tick.
    const ClockDomain fe(Frequency::MHz(150.0));
    const ClockDomain ffe(Frequency::MHz(125.0));
    EXPECT_EQ(ffe.Cycles(1000), Microseconds(8));
    EXPECT_GT(fe.Cycles(1000), Microseconds(6));
    EXPECT_LT(fe.Cycles(1000), Microseconds(7));
}

}  // namespace
}  // namespace catapult::sim
