// Unit tests for the Feature Extraction stage (§4.4).

#include <gtest/gtest.h>

#include "rank/document_generator.h"
#include "rank/feature_extraction.h"
#include "rank/feature_space.h"

namespace catapult::rank {
namespace {

TEST(FeatureExtraction, FortyThreeStateMachines) {
    // §4.4: "We currently implement 43 unique feature extraction state
    // machines, with up to 4,484 features."
    const auto& descriptors = FeatureExtractor::Descriptors();
    EXPECT_EQ(descriptors.size(), 43u);
    std::uint32_t total = 0;
    for (const auto& d : descriptors) total += d.feature_count;
    EXPECT_EQ(total, kDynamicFeatureCount);
    EXPECT_EQ(kDynamicFeatureCount, 4'484u);
}

TEST(FeatureExtraction, FeatureIdsArePackedAndDisjoint) {
    std::uint32_t next = 0;
    for (const auto& d : FeatureExtractor::Descriptors()) {
        EXPECT_EQ(d.feature_base, next);
        next += d.feature_count;
    }
    EXPECT_EQ(next, kDynamicFeatureCount);
}

TEST(FeatureExtraction, DeterministicAcrossRuns) {
    DocumentGenerator generator(3);
    const CompressedRequest request = generator.Next();
    FeatureExtractor extractor;
    FeatureStore a, b;
    extractor.Extract(request, a);
    extractor.Extract(request, b);
    EXPECT_EQ(a.raw(), b.raw());
}

TEST(FeatureExtraction, ExtractorsAreInterchangeable) {
    // Two extractor instances produce identical features — the basis
    // for software/FPGA score identity (§4).
    DocumentGenerator generator(3);
    const CompressedRequest request = generator.Next();
    FeatureExtractor e1, e2;
    FeatureStore a, b;
    e1.Extract(request, a);
    e2.Extract(request, b);
    EXPECT_EQ(a.raw(), b.raw());
}

TEST(FeatureExtraction, EmitsNonZeroFeatures) {
    DocumentGenerator generator(5);
    const CompressedRequest request = generator.Next();
    FeatureExtractor extractor;
    FeatureStore store;
    extractor.Extract(request, store);
    // A realistic document lights up a meaningful share of the space.
    EXPECT_GT(store.NonZeroCount(), 100u);
    EXPECT_LT(store.NonZeroCount(), kFeatureUniverse);
}

TEST(FeatureExtraction, EmptyDocumentEmitsNothingDynamic) {
    CompressedRequest request;
    request.tuple_count = 0;
    request.query.term_count = 3;
    FeatureExtractor extractor;
    FeatureStore store;
    extractor.Extract(request, store);
    for (std::uint32_t id = 0; id < kDynamicFeatureCount; ++id) {
        EXPECT_EQ(store.Get(id), 0.0f);
    }
}

TEST(FeatureExtraction, SoftwareFeaturesRemapped) {
    CompressedRequest request;
    request.tuple_count = 0;
    request.software_features.push_back({60'123, 2.5f});
    FeatureExtractor extractor;
    FeatureStore store;
    extractor.Extract(request, store);
    EXPECT_EQ(store.Get(SoftwareFeatureSlot(60'123)), 2.5f);
}

TEST(FeatureExtraction, CountOccurrencesCountsHits) {
    // Synthetic request with known tuples requires a direct FSM test.
    const auto& descriptors = FeatureExtractor::Descriptors();
    const FsmDescriptor& count_fsm = descriptors[0];
    ASSERT_EQ(count_fsm.kind, FsmKind::kCountOccurrences);

    FeatureFsm fsm(count_fsm);
    CompressedRequest request;
    request.document_length = 100;
    // Three hits for (stream 0, term 0), one for (stream 1, term 2).
    HitTuple t1{.delta = 5, .term = 0, .stream = 0, .properties = 0};
    HitTuple t2{.delta = 3, .term = 0, .stream = 0, .properties = 0};
    HitTuple t3{.delta = 9, .term = 0, .stream = 0, .properties = 0};
    HitTuple t4{.delta = 2, .term = 2, .stream = 1, .properties = 0};
    std::uint32_t position = 0;
    for (const auto& t : {t1, t2, t3, t4}) {
        position += t.delta;
        fsm.Consume(t, position);
    }
    FeatureStore store;
    fsm.Emit(request, store);
    // Cell (stream 0, term 0) has 3 values per cell; primary first.
    EXPECT_EQ(store.Get(count_fsm.feature_base + 0), 3.0f);
    // Cell (stream 1, term 2): cell index = 1*10 + 2 = 12, vpc = 3.
    EXPECT_EQ(store.Get(count_fsm.feature_base + 12 * 3), 1.0f);
}

TEST(FeatureExtraction, ServiceTimeScalesWithTuples) {
    FeatureExtractor extractor;
    const Time small = extractor.ServiceTime(100u);
    const Time large = extractor.ServiceTime(10'000u);
    EXPECT_GT(large, small);
    // Linear-ish scaling.
    const double ratio = static_cast<double>(large) / static_cast<double>(small);
    EXPECT_GT(ratio, 5.0);
}

TEST(FeatureExtraction, AverageDocumentNearMacropipelineBudget) {
    // §4.2: macropipeline stages target <= 8 us. FE, the bottleneck
    // stage, should be in that neighbourhood for an average (~2,400
    // tuple) document.
    FeatureExtractor extractor;
    const Time t = extractor.ServiceTime(2'400u);
    EXPECT_GT(t, Microseconds(4));
    EXPECT_LT(t, Microseconds(16));
}

TEST(FeatureStore, NonZeroCountAndClear) {
    FeatureStore store;
    EXPECT_EQ(store.NonZeroCount(), 0u);
    store.Set(0, 1.0f);
    store.Set(100, 2.0f);
    EXPECT_EQ(store.NonZeroCount(), 2u);
    store.Clear();
    EXPECT_EQ(store.NonZeroCount(), 0u);
}

}  // namespace
}  // namespace catapult::rank
