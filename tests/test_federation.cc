// Federated control plane: PodContext pod-id threading, the
// FederatedDispatcher's pod-aware policies, admission control,
// whole-pod blackout failover with zero lost accepted queries, and
// PodScheduler grant reuse across deploy/release/redeploy cycles under
// federation.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rank/document_generator.h"
#include "service/federation_testbed.h"
#include "service/load_generator.h"
#include "service/stage_role.h"
#include "service/testbed.h"

namespace catapult::service {
namespace {

FederationTestbed::Config FastFederation(int pods, int rings) {
    FederationTestbed::Config config;
    config.pod_count = pods;
    config.pod.ring_count = rings;
    config.pod.fabric.device.configure_time = Milliseconds(5);
    return config;
}

/** Health/reboot tuning that makes whole-pod loss conclude quickly. */
void FastFailureHandling(FederationTestbed::Config& config) {
    config.pod.host.soft_reboot_duration = Milliseconds(200);
    config.pod.host.hard_reboot_duration = Milliseconds(500);
    config.pod.host.crash_reboot_delay = Milliseconds(50);
    config.pod.health.heartbeat_period = Milliseconds(10);
    config.pod.health.query_timeout = Milliseconds(50);
}

// ------------------------------------------------------------ PodContext

TEST(PodContext, ThreadsPodIdThroughNodeIdsTelemetryAndReports) {
    FederationTestbed bed(FastFederation(/*pods=*/2, /*rings=*/1));
    ASSERT_TRUE(bed.DeployAndSettle());

    // Node ids partition into per-pod ranges; names stay distinct.
    EXPECT_EQ(bed.pod(0).pod_id(), 0);
    EXPECT_EQ(bed.pod(1).pod_id(), 1);
    EXPECT_EQ(bed.pod(0).fabric().node_base(), 0);
    EXPECT_EQ(bed.pod(1).fabric().node_base(), 48);
    EXPECT_EQ(bed.pod(1).fabric().pod_id(), 1);
    EXPECT_EQ(bed.pod(1).fabric().GlobalId(0), 48);

    // Telemetry events carry the publishing pod's id.
    mgmt::TelemetryEvent seen;
    auto subscription = bed.pod(1).telemetry().SubscribeScoped(
        [&](const mgmt::TelemetryEvent& event) { seen = event; });
    bed.pod(1).telemetry().Publish(7, mgmt::TelemetryKind::kDmaStall);
    EXPECT_EQ(seen.pod, 1);
    EXPECT_EQ(seen.node, 7);

    // Machine reports carry the investigating pod's id.
    std::vector<mgmt::MachineReport> reports;
    bed.pod(1).health_monitor().Investigate(
        {3}, [&](std::vector<mgmt::MachineReport> r) { reports = std::move(r); });
    bed.simulator().Run();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].pod, 1);
    EXPECT_EQ(reports[0].node, 3);
}

TEST(PodContext, FederationDeploysEveryPodWithDistinctRoles) {
    FederationTestbed bed(FastFederation(/*pods=*/3, /*rings=*/2));
    ASSERT_TRUE(bed.DeployAndSettle());
    EXPECT_EQ(bed.pod_count(), 3);
    EXPECT_EQ(bed.dispatcher().pod_count(), 3);
    for (int p = 0; p < 3; ++p) {
        EXPECT_EQ(bed.pod(p).scheduler().occupied_nodes(), 16) << "pod " << p;
        EXPECT_EQ(bed.pod(p).pool().available_rings(), 2) << "pod " << p;
        // Each pod's mapping manager resolves its own pod-suffixed roles.
        const std::string role =
            "bing.ranking/pod" + std::to_string(p) + "/ring0/rank." +
            ToString(rank::PipelineStage::kFeatureExtraction);
        EXPECT_EQ(bed.pod(p).mapping_manager().NodeOfRole(role),
                  bed.pod(p).pool().ring(0).RingNode(0))
            << role;
    }
}

// --------------------------------------------------------- dispatcher

TEST(FederatedDispatcher, RoundRobinSpreadsQueriesAcrossPods) {
    auto config = FastFederation(/*pods=*/3, /*rings=*/1);
    config.dispatcher.policy = FederationPolicy::kRoundRobin;
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    rank::DocumentGenerator generator(11);
    int completed = 0;
    for (int i = 0; i < 9; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        ASSERT_EQ(bed.dispatcher().Inject(
                      i, request,
                      [&](const ScoreResult& r) { completed += r.ok ? 1 : 0; }),
                  host::SendStatus::kOk);
    }
    bed.simulator().Run();
    EXPECT_EQ(completed, 9);
    for (int p = 0; p < 3; ++p) {
        EXPECT_EQ(bed.pod(p).pool().counters().dispatched, 3u) << "pod " << p;
    }
    EXPECT_EQ(bed.dispatcher().counters().accepted, 9u);
    EXPECT_EQ(bed.dispatcher().counters().completed, 9u);
    EXPECT_EQ(bed.dispatcher().counters().lost, 0u);
}

TEST(FederatedDispatcher, ModelAffinityHashesModelsToHomePods) {
    auto config = FastFederation(/*pods=*/3, /*rings=*/1);
    config.dispatcher.policy = FederationPolicy::kModelAffinity;
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    rank::DocumentGenerator generator(13);
    int completed = 0;
    for (int round = 0; round < 2; ++round) {
        for (std::uint32_t model = 0; model < 3; ++model) {
            rank::CompressedRequest request = generator.Next();
            request.query.model_id = model;
            ASSERT_EQ(
                bed.dispatcher().Inject(
                    static_cast<int>(round * 3 + model), request,
                    [&](const ScoreResult& r) { completed += r.ok ? 1 : 0; }),
                host::SendStatus::kOk);
        }
    }
    bed.simulator().Run();
    EXPECT_EQ(completed, 6);
    EXPECT_EQ(bed.dispatcher().counters().affinity_hits, 6u);
    // model k lives on pod k (k = model_id % 3): every pod saw exactly
    // its own model's queries, so no cross-pod reload churn.
    for (int p = 0; p < 3; ++p) {
        EXPECT_EQ(bed.pod(p).pool().counters().dispatched, 2u) << "pod " << p;
        EXPECT_LE(bed.pod(p).pool().AggregateRingCounters().model_reloads, 1u)
            << "pod " << p;
    }
}

TEST(FederatedDispatcher, AdmissionCapRejectsInsteadOfQueuing) {
    auto config = FastFederation(/*pods=*/1, /*rings=*/1);
    config.dispatcher.max_in_flight_per_pod = 4;
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    rank::DocumentGenerator generator(17);
    int completed = 0;
    int accepted = 0;
    int rejected = 0;
    for (int i = 0; i < 10; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        const auto status = bed.dispatcher().Inject(
            i, request, [&](const ScoreResult& r) { completed += r.ok ? 1 : 0; });
        if (status == host::SendStatus::kOk) {
            ++accepted;
        } else {
            ++rejected;
        }
    }
    // The cap answers immediately: nothing queues behind it.
    EXPECT_EQ(accepted, 4);
    EXPECT_EQ(rejected, 6);
    EXPECT_EQ(bed.dispatcher().pod_in_flight(0), 4);
    EXPECT_FALSE(bed.dispatcher().pod_eligible(0));
    bed.simulator().Run();
    EXPECT_EQ(completed, 4);
    EXPECT_EQ(bed.dispatcher().counters().rejected, 6u);
    EXPECT_TRUE(bed.dispatcher().pod_eligible(0));
}

TEST(FederatedDispatcher, OpenLoopLoadRejectsBeyondTheAdmissionCap) {
    auto config = FastFederation(/*pods=*/2, /*rings=*/1);
    config.dispatcher.max_in_flight_per_pod = 8;
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    FederatedOpenLoopInjector::Config load;
    // Far beyond two rings' capacity, so the cap must engage.
    load.rate_qps = 100'000.0;
    load.duration = Milliseconds(20);
    FederatedOpenLoopInjector injector(&bed.dispatcher(), &bed.simulator(),
                                       Rng(23), load);
    const LoadResult result = injector.Run();

    EXPECT_GT(result.completed, 0u);
    EXPECT_GT(result.rejected, 0u);  // admission control engaged
    EXPECT_EQ(bed.dispatcher().counters().lost, 0u);
    EXPECT_EQ(bed.dispatcher().counters().accepted,
              result.completed + result.timeouts);
    EXPECT_EQ(bed.dispatcher().counters().rejected, result.rejected);
}

TEST(FederatedDispatcher, WholePodBlackoutFailsOverWithZeroLostQueries) {
    auto config = FastFederation(/*pods=*/2, /*rings=*/2);
    FastFailureHandling(config);
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    const Time blackout_at = bed.simulator().Now() + Milliseconds(40);
    bed.pod(0).failure_injector().SchedulePodBlackout(blackout_at);

    rank::DocumentGenerator generator(29);
    int ok_results = 0;
    int failed_results = 0;
    int accepted = 0;
    // A burst right before the lights go out: queries provably in
    // flight on the dying pod, exercising the in-flight retry path,
    // not just the immediate redirect of new arrivals.
    for (int b = 0; b < 24; ++b) {
        bed.simulator().ScheduleAt(blackout_at - Microseconds(100), [&, b] {
            rank::CompressedRequest request = generator.Next();
            request.query.model_id = 0;
            const auto status = bed.dispatcher().Inject(
                b, request, [&](const ScoreResult& r) {
                    if (r.ok) {
                        ++ok_results;
                    } else {
                        ++failed_results;
                    }
                });
            if (status == host::SendStatus::kOk) ++accepted;
        });
    }
    // Plus a paced load spanning the whole incident.
    for (int i = 0; i < 1'600; ++i) {
        bed.simulator().ScheduleAfter(
            Microseconds(50) * i + Milliseconds(1), [&, i] {
                rank::CompressedRequest request = generator.Next();
                request.query.model_id = 0;
                const auto status = bed.dispatcher().Inject(
                    i % 32, request, [&](const ScoreResult& r) {
                        if (r.ok) {
                            ++ok_results;
                        } else {
                            ++failed_results;
                        }
                    });
                if (status == host::SendStatus::kOk) ++accepted;
            });
    }
    bed.simulator().Run();

    // Zero dropped in-flight retries: every accepted query completed,
    // the ones caught on the dying pod via failover to the survivor.
    EXPECT_EQ(failed_results, 0);
    EXPECT_EQ(ok_results, accepted);
    EXPECT_EQ(bed.dispatcher().counters().lost, 0u);
    EXPECT_GT(bed.dispatcher().counters().failovers, 0u);

    // The lost pod ended latched out of rotation: every node fatal.
    EXPECT_EQ(bed.dispatcher().pod_dead_nodes(0), 48);
    EXPECT_FALSE(bed.dispatcher().pod_eligible(0));
    EXPECT_TRUE(bed.dispatcher().pod_eligible(1));
    EXPECT_GT(bed.dispatcher().pod_fault_reports(0), 0u);
    // The survivor carried traffic after the blackout.
    EXPECT_GT(bed.pod(1).pool().counters().dispatched, 0u);
}

TEST(FederatedDispatcher, CircuitBreakerHoldsSickPodOnProbation) {
    // A pod that accepts queries but fails them all (every ring stage
    // hung, health plane off so nothing drains the ring): the breaker
    // must open after the failure streak and then admit only
    // single-probe trickle traffic — not the full share — while every
    // affected query completes on the healthy pod.
    auto config = FastFederation(/*pods=*/2, /*rings=*/1);
    config.pod.autonomic = false;  // isolate the dispatcher's breaker
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());
    for (int i = 0; i < RankingService::kRingLength; ++i) {
        bed.pod(0).pool().ring(0).role(i).Hang();
    }

    rank::DocumentGenerator generator(31);
    int ok_results = 0;
    int failed_results = 0;
    int accepted = 0;
    for (int i = 0; i < 200; ++i) {
        bed.simulator().ScheduleAfter(
            Microseconds(100) * i + Milliseconds(1), [&, i] {
                rank::CompressedRequest request = generator.Next();
                request.query.model_id = 0;
                const auto status = bed.dispatcher().Inject(
                    i % 32, request, [&](const ScoreResult& r) {
                        if (r.ok) {
                            ++ok_results;
                        } else {
                            ++failed_results;
                        }
                    });
                if (status == host::SendStatus::kOk) ++accepted;
            });
    }
    bed.simulator().Run();

    // Every accepted query eventually completed on the healthy pod.
    EXPECT_EQ(failed_results, 0);
    EXPECT_EQ(ok_results, accepted);
    EXPECT_EQ(bed.dispatcher().counters().lost, 0u);
    EXPECT_GT(bed.dispatcher().counters().failovers, 0u);
    EXPECT_GE(bed.dispatcher().counters().breaker_trips, 1u);
    // The sick pod saw only the pre-trip streak plus half-open probes,
    // not its ~half share of the 200 queries.
    EXPECT_LT(bed.pod(0).pool().counters().dispatched, 40u);
    EXPECT_GT(bed.pod(1).pool().counters().dispatched, 160u);
}

// ------------------------------------------- scheduler grant reuse

TEST(FederationScheduler, GrantReuseAcrossRedeployCyclesStaysPodLocal) {
    auto config = FastFederation(/*pods=*/2, /*rings=*/1);
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());
    mgmt::PodContext& pod0 = bed.pod(0);
    mgmt::PodContext& pod1 = bed.pod(1);
    const int pod0_base = pod0.scheduler().occupied_nodes();
    const int pod1_base = pod1.scheduler().occupied_nodes();
    ASSERT_EQ(pod0_base, 8);

    int first_row = -1;
    {
        ServicePool::Config extra;
        extra.ring_count = 2;
        extra.ring.service_name = "extra.pool";
        ServicePool pool(&bed.simulator(), &pod0.fabric(), pod0.hosts(),
                         &pod0.mapping_manager(), &pod0.scheduler(),
                         extra);
        bool deployed = false;
        pool.Deploy([&](bool ok) { deployed = ok; });
        bed.simulator().Run();
        EXPECT_TRUE(deployed);
        EXPECT_EQ(pod0.scheduler().occupied_nodes(), pod0_base + 16);
        // The extra pool's grants live on pod 0's scheduler only.
        EXPECT_EQ(pod1.scheduler().occupied_nodes(), pod1_base);
        first_row = pool.placement(0).row;
    }
    // Destruction released exactly the extra grants — pod-locally.
    EXPECT_EQ(pod0.scheduler().occupied_nodes(), pod0_base);
    EXPECT_EQ(pod1.scheduler().occupied_nodes(), pod1_base);

    // Redeploy: the freed regions grant again (same first row), and
    // the cycle leaks nothing into the other pod.
    {
        ServicePool::Config extra;
        extra.ring_count = 2;
        extra.ring.service_name = "extra.pool";
        ServicePool pool(&bed.simulator(), &pod0.fabric(), pod0.hosts(),
                         &pod0.mapping_manager(), &pod0.scheduler(),
                         extra);
        bool deployed = false;
        pool.Deploy([&](bool ok) { deployed = ok; });
        bed.simulator().Run();
        EXPECT_TRUE(deployed);
        EXPECT_EQ(pool.placement(0).row, first_row);
        EXPECT_EQ(pod1.scheduler().occupied_nodes(), pod1_base);
    }
    EXPECT_EQ(pod0.scheduler().occupied_nodes(), pod0_base);
    EXPECT_EQ(pod0.scheduler().counters().releases, 4u);
    EXPECT_EQ(pod1.scheduler().counters().releases, 0u);
}

TEST(FederationScheduler, PodCapacityExhaustionFailsDeployCleanlyPerPod) {
    auto config = FastFederation(/*pods=*/2, /*rings=*/1);
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());
    mgmt::PodContext& pod0 = bed.pod(0);
    mgmt::PodContext& pod1 = bed.pod(1);

    // Pod 0 has 5 free rows; asking for 6 rings must fail the Deploy
    // cleanly (no partial service) and release every partial grant.
    {
        ServicePool::Config extra;
        extra.ring_count = 6;
        extra.ring.service_name = "too.big";
        ServicePool pool(&bed.simulator(), &pod0.fabric(), pod0.hosts(),
                         &pod0.mapping_manager(), &pod0.scheduler(),
                         extra);
        bool done = false;
        bool deployed = true;
        pool.Deploy([&](bool ok) {
            done = true;
            deployed = ok;
        });
        bed.simulator().Run();
        EXPECT_TRUE(done);
        EXPECT_FALSE(deployed);
        // Pod 1 was never touched by pod 0's exhaustion.
        EXPECT_EQ(pod1.scheduler().occupied_nodes(), 8);
    }
    EXPECT_EQ(pod0.scheduler().occupied_nodes(), 8);

    // The same 5-ring request that fits pod 1 deploys fine there,
    // proving the failure above was per-pod, not federation-wide.
    {
        ServicePool::Config extra;
        extra.ring_count = 5;
        extra.ring.service_name = "fits.fine";
        ServicePool pool(&bed.simulator(), &pod1.fabric(), pod1.hosts(),
                         &pod1.mapping_manager(), &pod1.scheduler(),
                         extra);
        bool deployed = false;
        pool.Deploy([&](bool ok) { deployed = ok; });
        bed.simulator().Run();
        EXPECT_TRUE(deployed);
        EXPECT_EQ(pod1.scheduler().occupied_nodes(), 48);
        EXPECT_EQ(pod1.scheduler().free_nodes(), 0);
    }
    EXPECT_EQ(pod1.scheduler().occupied_nodes(), 8);
}

// ------------------------------------------- federated closed loop

TEST(FederatedLoad, ClosedLoopScalesFromOneToTwoPods) {
    double tput[2] = {0.0, 0.0};
    for (int pods = 1; pods <= 2; ++pods) {
        FederationTestbed bed(FastFederation(pods, /*rings=*/1));
        ASSERT_TRUE(bed.DeployAndSettle());
        FederatedClosedLoopInjector::Config load;
        load.concurrency = 32;  // saturates a single ring (~12, Fig. 9)
        load.documents = 400;
        FederatedClosedLoopInjector injector(&bed.dispatcher(),
                                             &bed.simulator(), load);
        const LoadResult result = injector.Run();
        EXPECT_EQ(result.completed, 400u);
        EXPECT_EQ(result.timeouts, 0u);
        tput[pods - 1] = result.ThroughputPerSecond();
    }
    // Two pods must comfortably beat one against the same offered load.
    EXPECT_GT(tput[1], tput[0] * 1.5);
}

}  // namespace
}  // namespace catapult::service
