// Unit tests for the FPGA device substrate: area, power, thermal,
// flash, SEU scrubbing, and the configuration state machine.

#include <gtest/gtest.h>

#include "fpga/area_model.h"
#include "fpga/bitstream.h"
#include "fpga/config_flash.h"
#include "fpga/fpga_device.h"
#include "fpga/power_model.h"
#include "fpga/seu_scrubber.h"
#include "fpga/thermal_model.h"
#include "sim/simulator.h"

namespace catapult::fpga {
namespace {

TEST(AreaModel, StratixVD5Budget) {
    const DeviceBudget budget;
    EXPECT_EQ(budget.capacity().alms, 172'600);
    EXPECT_EQ(budget.capacity().m20k_blocks, 2'014);
    EXPECT_EQ(budget.capacity().dsp_blocks, 1'590);
    // §4.3: 2,014 M20K blocks of 20 Kb each.
    EXPECT_EQ(budget.TotalM20kBits(), 2'014ll * 20'480);
}

TEST(AreaModel, UtilizationRoundTrip) {
    const DeviceBudget budget;
    const Utilization util{74.0, 49.0, 12.0};  // Table 1 FE row
    const ResourceCounts counts = budget.FromUtilization(util);
    const Utilization back = budget.ToUtilization(counts);
    EXPECT_NEAR(back.logic_pct, util.logic_pct, 0.1);
    EXPECT_NEAR(back.ram_pct, util.ram_pct, 0.1);
    EXPECT_NEAR(back.dsp_pct, util.dsp_pct, 0.1);
}

TEST(AreaModel, FitsWithin) {
    const DeviceBudget budget;
    EXPECT_TRUE(budget.Fits(budget.FromUtilization({99.0, 99.0, 99.0})));
    ResourceCounts too_big = budget.capacity();
    too_big.alms += 1;
    EXPECT_FALSE(budget.Fits(too_big));
}

TEST(AreaModel, ShellIsTwentyThreePercent) {
    EXPECT_DOUBLE_EQ(ShellUtilization().logic_pct, 23.0);  // §3.2
}

TEST(PowerModel, PowerVirusMatchesPaper) {
    // §5: "we ran a 'power virus' bitstream ... and measured a modest
    // power consumption of 22.7 W."
    const PowerModel model;
    EXPECT_NEAR(model.PowerVirusWatts(), 22.7, 0.05);
}

TEST(PowerModel, NominalOperationUnderTwentyWatts) {
    // §2.1: "keeping the power draw to under 20 W during normal
    // operation". FE is the largest ranking role.
    const PowerModel model;
    const Bitstream fe = MakeBitstream(1, "rank.fe", {74, 49, 12},
                                       Frequency::MHz(150.0));
    EXPECT_LT(model.Power(fe, 0.75), 20.0);
}

TEST(PowerModel, NoDesignExceedsPcieCap) {
    // §2.1: the 25 W PCIe budget powers the card with no jumper cables.
    const PowerModel model;
    EXPECT_FALSE(model.ExceedsPcieCap(PowerVirusBitstream()));
    EXPECT_LT(model.PowerVirusWatts(), 25.0);
}

TEST(PowerModel, IdleDrawsStaticPower) {
    const PowerModel model;
    EXPECT_DOUBLE_EQ(model.Power(GoldenBitstream(), 0.0),
                     model.config().static_watts);
}

TEST(ThermalModel, ConvergesToSteadyState) {
    ThermalModel thermal;
    for (int i = 0; i < 100; ++i) thermal.Advance(20.0, Seconds(10));
    EXPECT_NEAR(thermal.die_celsius(), thermal.SteadyStateCelsius(20.0), 0.1);
    EXPECT_FALSE(thermal.over_temperature());
}

TEST(ThermalModel, IndustrialRatingHeadroom) {
    // §2.1: FPGA in the CPU exhaust (68 C) with a part rated to 100 C;
    // nominal 20 W operation must stay under the rating.
    ThermalModel thermal;
    EXPECT_LT(thermal.SteadyStateCelsius(20.0), 100.0);
    // A hypothetical 30 W draw would exceed the envelope.
    EXPECT_GT(thermal.SteadyStateCelsius(30.0), 100.0);
}

TEST(ConfigFlash, WriteTimingAndReadback) {
    sim::Simulator sim;
    ConfigFlash flash(&sim);
    const Bitstream image = GoldenBitstream();
    bool done = false;
    flash.WriteImage(FlashSlot::kApplication, image,
                     [&](bool ok) { done = ok; });
    EXPECT_TRUE(flash.write_in_progress());
    sim.Run();
    EXPECT_TRUE(done);
    ASSERT_TRUE(flash.ReadImage(FlashSlot::kApplication).has_value());
    EXPECT_EQ(flash.ReadImage(FlashSlot::kApplication)->image_id,
              image.image_id);
    // A 16 MiB image at ~2 MB/s takes seconds.
    EXPECT_GT(sim.Now(), Seconds(5));
}

TEST(ConfigFlash, RejectsOversizedImage) {
    sim::Simulator sim;
    ConfigFlash flash(&sim);
    Bitstream image = GoldenBitstream();
    image.payload_size = 64ll * 1024 * 1024;  // > 32 MB flash
    bool result = true;
    flash.WriteImage(FlashSlot::kApplication, image,
                     [&](bool ok) { result = ok; });
    sim.Run();
    EXPECT_FALSE(result);
}

TEST(FpgaDevice, ConfigurationLifecycle) {
    sim::Simulator sim;
    FpgaDevice device(&sim, "fpga0", Rng(1));
    device.flash().InstallImage(FlashSlot::kApplication, GoldenBitstream());
    EXPECT_EQ(device.state(), DeviceState::kUnconfigured);

    bool ok = false;
    device.ConfigureFromFlash(FlashSlot::kApplication,
                              [&](bool success) { ok = success; });
    EXPECT_EQ(device.state(), DeviceState::kConfiguring);
    sim.Run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(device.state(), DeviceState::kActive);
    EXPECT_EQ(device.configurations_completed(), 1u);
    // §4.3: full configuration takes milliseconds to seconds.
    EXPECT_GE(sim.Now(), Milliseconds(1));
    EXPECT_LE(sim.Now(), Seconds(5));
}

TEST(FpgaDevice, ConfigureFromEmptySlotFails) {
    sim::Simulator sim;
    FpgaDevice device(&sim, "fpga0", Rng(1));
    bool ok = true;
    device.ConfigureFromFlash(FlashSlot::kApplication,
                              [&](bool success) { ok = success; });
    sim.Run();
    EXPECT_FALSE(ok);
}

TEST(FpgaDevice, RejectsImageThatDoesNotFit) {
    sim::Simulator sim;
    FpgaDevice device(&sim, "fpga0", Rng(1));
    Bitstream huge = MakeBitstream(9, "too.big", {120.0, 50.0, 0.0},
                                   Frequency::MHz(100.0));
    device.flash().InstallImage(FlashSlot::kApplication, huge);
    bool ok = true;
    device.ConfigureFromFlash(FlashSlot::kApplication,
                              [&](bool success) { ok = success; });
    sim.Run();
    EXPECT_FALSE(ok);
    EXPECT_NE(device.state(), DeviceState::kActive);
}

TEST(FpgaDevice, StateListenersFire) {
    sim::Simulator sim;
    FpgaDevice device(&sim, "fpga0", Rng(1));
    device.flash().InstallImage(FlashSlot::kApplication, GoldenBitstream());
    std::vector<DeviceState> transitions;
    device.AddStateListener(
        [&](DeviceState, DeviceState next) { transitions.push_back(next); });
    device.ConfigureFromFlash(FlashSlot::kApplication, [](bool) {});
    sim.Run();
    ASSERT_EQ(transitions.size(), 2u);
    EXPECT_EQ(transitions[0], DeviceState::kConfiguring);
    EXPECT_EQ(transitions[1], DeviceState::kActive);
}

TEST(FpgaDevice, ReconfigurationFromActiveState) {
    sim::Simulator sim;
    FpgaDevice device(&sim, "fpga0", Rng(1));
    device.flash().InstallImage(FlashSlot::kApplication, GoldenBitstream());
    device.ConfigureFromFlash(FlashSlot::kApplication, [](bool) {});
    sim.Run();

    std::vector<DeviceState> transitions;
    device.AddStateListener(
        [&](DeviceState, DeviceState next) { transitions.push_back(next); });
    device.ConfigureFromFlash(FlashSlot::kApplication, [](bool) {});
    EXPECT_EQ(device.state(), DeviceState::kReconfiguring);
    sim.Run();
    EXPECT_EQ(device.state(), DeviceState::kActive);
    EXPECT_EQ(device.configurations_completed(), 2u);
}

TEST(FpgaDevice, ConfigFailureRetries) {
    sim::Simulator sim;
    FpgaDevice::Config config;
    config.config_failure_probability = 0.5;
    FpgaDevice device(&sim, "fpga0", Rng(7), config);
    device.flash().InstallImage(FlashSlot::kApplication, GoldenBitstream());
    bool ok = false;
    device.ConfigureFromFlash(FlashSlot::kApplication,
                              [&](bool success) { ok = success; });
    sim.Run();
    EXPECT_TRUE(ok);  // retries until it succeeds
    EXPECT_EQ(device.state(), DeviceState::kActive);
}

TEST(FpgaDevice, ForceFailAndPowerCycleRecovers) {
    sim::Simulator sim;
    FpgaDevice device(&sim, "fpga0", Rng(1));
    device.flash().InstallImage(FlashSlot::kApplication, GoldenBitstream());
    device.ConfigureFromFlash(FlashSlot::kApplication, [](bool) {});
    sim.Run();

    device.ForceFail("test");
    EXPECT_EQ(device.state(), DeviceState::kFailed);

    bool ok = false;
    device.PowerCycle([&](bool success) { ok = success; });
    sim.Run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(device.state(), DeviceState::kActive);
}

TEST(SeuScrubber, InjectsAndCorrectsUpsets) {
    sim::Simulator sim;
    SeuScrubber::Config config;
    config.upsets_per_second = 1'000.0;  // storm rate for the test
    config.critical_bit_fraction = 0.0;
    SeuScrubber scrubber(&sim, Rng(3), config);
    scrubber.Start();
    sim.RunUntil(Seconds(1));
    const auto& counters = scrubber.counters();
    EXPECT_GT(counters.upsets_injected, 500u);
    // Every upset before the final scan period has been corrected (the
    // last <= 2 scrub periods' worth may still be pending).
    const auto in_flight_bound = static_cast<std::uint64_t>(
        2.0 * config.upsets_per_second * ToSeconds(config.scrub_period));
    EXPECT_GE(counters.upsets_corrected + in_flight_bound + 5,
              counters.upsets_injected);
    scrubber.Stop();
}

TEST(SeuScrubber, CriticalUpsetsCorruptRole) {
    sim::Simulator sim;
    SeuScrubber::Config config;
    config.upsets_per_second = 1'000.0;
    config.critical_bit_fraction = 1.0;
    SeuScrubber scrubber(&sim, Rng(3), config);
    int corruptions = 0;
    scrubber.set_on_role_corruption([&] { ++corruptions; });
    scrubber.Start();
    sim.RunUntil(Milliseconds(100));
    scrubber.Stop();
    EXPECT_GT(corruptions, 0);
    EXPECT_EQ(scrubber.counters().role_corruptions,
              static_cast<std::uint64_t>(corruptions));
}

TEST(SeuScrubber, ScrubPassesAccumulate) {
    sim::Simulator sim;
    SeuScrubber scrubber(&sim, Rng(3));
    scrubber.Start();
    sim.ScheduleAt(Seconds(1), [] {});
    sim.Run();
    // 50 ms scan period -> ~20 passes per second.
    EXPECT_NEAR(static_cast<double>(scrubber.counters().scrub_passes), 20.0,
                1.0);
}

TEST(Bitstream, FactoryDefaults) {
    const Bitstream b = MakeBitstream(42, "test.role", {50, 50, 10},
                                      Frequency::MHz(200.0));
    EXPECT_TRUE(b.valid());
    EXPECT_GT(b.payload_size, 0);
    EXPECT_EQ(b.shell_version, 1u);
}

}  // namespace
}  // namespace catapult::fpga
