// Predictive health plane: HealthForecaster trend/band edges (cold-
// start grace, hysteresis, re-admission reset), score-weighted dispatch
// with proactive shedding, the fatal latch beating a stale-good score,
// live pod re-admission with its warm-up ramp, per-ring admission caps,
// and cross-pod FDR trace replay.

#include <gtest/gtest.h>

#include <vector>

#include "mgmt/health_forecaster.h"
#include "rank/document_generator.h"
#include "service/federation_testbed.h"
#include "service/load_generator.h"
#include "service/stage_role.h"
#include "service/testbed.h"
#include "service/trace_replay.h"

namespace catapult::service {
namespace {

// ----------------------------------------------------- forecaster unit

struct ForecasterHarness {
    sim::Simulator simulator;
    mgmt::TelemetryBus bus{&simulator, /*pod_id=*/0};
    mgmt::HealthScoreFeed feed{&simulator};
    std::vector<mgmt::HealthScoreSample> samples;
    mgmt::HealthScoreSubscription subscription;

    explicit ForecasterHarness(mgmt::HealthForecaster::Config config)
        : forecaster(&simulator, &feed, config) {
        subscription = feed.SubscribeScoped(
            [this](const mgmt::HealthScoreSample& s) {
                samples.push_back(s);
            });
        forecaster.AttachTelemetry(&bus);
        forecaster.Start();
    }

    mgmt::HealthForecaster forecaster;
};

mgmt::HealthForecaster::Config FastForecast() {
    mgmt::HealthForecaster::Config config;
    config.sample_period = Milliseconds(1);
    config.window_samples = 4;
    config.warmup_samples = 4;
    return config;
}

TEST(HealthForecaster, ColdStartGraceHoldsBandThroughFirstWindow) {
    ForecasterHarness h(FastForecast());
    // Fault storm from tick zero: plenty of signal, but no verdict may
    // be issued before one full trend window has been observed.
    for (int i = 0; i < 40; ++i) {
        h.simulator.ScheduleAt(Microseconds(200) * i, [&h] {
            h.bus.Publish(3, mgmt::TelemetryKind::kTemperatureShutdown);
        });
    }
    h.simulator.RunUntil(Milliseconds(9));
    ASSERT_GE(h.samples.size(), 8u);
    for (std::size_t i = 0; i < h.samples.size(); ++i) {
        if (i + 1 < 4) {
            EXPECT_EQ(h.samples[i].band, mgmt::HealthBand::kWarmingUp)
                << "sample " << i << " banded inside the grace window";
        }
    }
    // The storm is judged the moment the window fills: straight to a
    // shed-worthy band, score well down.
    EXPECT_EQ(h.samples.back().band, mgmt::HealthBand::kCritical);
    EXPECT_LT(h.forecaster.score(), 0.35);
}

TEST(HealthForecaster, ScoreRecoversAndBandsExitWithHysteresis) {
    ForecasterHarness h(FastForecast());
    // 8 ms of storm, then quiet: the score must sink, then climb back,
    // and every band change must pass through Degraded (no teleport
    // from Critical to Healthy without clearing both exits).
    for (int i = 0; i < 40; ++i) {
        h.simulator.ScheduleAt(Microseconds(200) * i, [&h] {
            h.bus.Publish(3, mgmt::TelemetryKind::kLinkDown);
        });
    }
    h.simulator.RunUntil(Milliseconds(60));
    EXPECT_EQ(h.forecaster.band(), mgmt::HealthBand::kHealthy);
    EXPECT_GT(h.forecaster.score(), 0.85);
    bool saw_critical = false;
    bool saw_degraded_after_critical = false;
    for (std::size_t i = 1; i < h.samples.size(); ++i) {
        const auto prev = h.samples[i - 1].band;
        const auto cur = h.samples[i].band;
        if (cur == mgmt::HealthBand::kCritical) saw_critical = true;
        if (prev == mgmt::HealthBand::kCritical &&
            cur == mgmt::HealthBand::kDegraded) {
            saw_degraded_after_critical = true;
        }
        // Hysteresis invariant: Critical never exits straight to
        // Healthy unless the score cleared the Degraded exit too.
        if (prev == mgmt::HealthBand::kCritical &&
            cur == mgmt::HealthBand::kHealthy) {
            EXPECT_GT(h.samples[i].score, 0.85);
        }
    }
    EXPECT_TRUE(saw_critical);
    EXPECT_TRUE(saw_degraded_after_critical);
}

TEST(HealthForecaster, ScoreHoveringAtThresholdDoesNotFlapTheBand) {
    auto config = FastForecast();
    config.window_samples = 8;
    // De-fang the event weight so this test can place the steady-state
    // score precisely: one event per full window reads as stress 0.25,
    // i.e. instantaneous health 0.8 — inside the Degraded dead zone
    // (above the 0.70 enter, below the 0.85 exit).
    config.fault_event_weight = 0.002;
    ForecasterHarness h(config);
    // A burst dips the score below the Degraded enter threshold...
    h.simulator.ScheduleAt(Milliseconds(10), [&h] {
        for (int i = 0; i < 4; ++i) {
            h.bus.Publish(5, mgmt::TelemetryKind::kLinkCrcError);
        }
    });
    // ...then a metronome (one event per window span) holds the score
    // at ~0.8: it recovers *past* the 0.70 enter threshold but never
    // past the 0.85 exit. A plain threshold would flip the band back
    // to Healthy the moment the score re-crossed 0.70; the hysteresis
    // must hold Degraded for the whole hover, with zero flaps.
    for (int i = 0; i < 49; ++i) {
        h.simulator.ScheduleAt(Milliseconds(11) + Milliseconds(8) * i, [&h] {
            h.bus.Publish(5, mgmt::TelemetryKind::kDmaStall);
        });
    }
    h.simulator.RunUntil(Milliseconds(400));
    EXPECT_EQ(h.forecaster.band(), mgmt::HealthBand::kDegraded);
    // The score provably hovered in the dead zone at the end...
    EXPECT_GT(h.forecaster.score(), 0.70);
    EXPECT_LT(h.forecaster.score(), 0.85);
    // ...and the band moved exactly twice ever: WarmingUp -> Healthy
    // at the end of the grace window, Healthy -> Degraded on the
    // burst. No flapping across the re-crossed threshold.
    EXPECT_EQ(h.forecaster.counters().band_transitions, 2u);
}

TEST(HealthForecaster, ResetForReadmissionRestartsGraceAndScore) {
    ForecasterHarness h(FastForecast());
    for (int i = 0; i < 60; ++i) {
        h.simulator.ScheduleAt(Microseconds(200) * i, [&h] {
            h.bus.Publish(1, mgmt::TelemetryKind::kTemperatureShutdown);
        });
    }
    h.simulator.RunUntil(Milliseconds(14));
    ASSERT_EQ(h.forecaster.band(), mgmt::HealthBand::kCritical);
    ASSERT_LT(h.forecaster.score(), 0.35);

    h.forecaster.ResetForReadmission();
    EXPECT_EQ(h.forecaster.band(), mgmt::HealthBand::kWarmingUp);
    EXPECT_EQ(h.forecaster.score(), 1.0);
    // The reset published immediately (dispatchers see the fresh state
    // without waiting a tick).
    EXPECT_EQ(h.samples.back().band, mgmt::HealthBand::kWarmingUp);

    // Quiet hardware + a fresh grace: the pod re-bands as Healthy one
    // full window later, with no Critical relapse from stale history.
    const std::size_t reset_at = h.samples.size();
    h.simulator.RunUntil(Milliseconds(40));
    ASSERT_GT(h.samples.size(), reset_at + 4);
    for (std::size_t i = reset_at; i < h.samples.size(); ++i) {
        EXPECT_NE(h.samples[i].band, mgmt::HealthBand::kCritical)
            << "stale pre-service history leaked into sample " << i;
    }
    EXPECT_EQ(h.forecaster.band(), mgmt::HealthBand::kHealthy);
}

// ------------------------------------------- federation configuration

FederationTestbed::Config PredictiveFederation(int pods, int rings) {
    FederationTestbed::Config config;
    config.pod_count = pods;
    config.pod.ring_count = rings;
    config.pod.fabric.device.configure_time = Milliseconds(5);
    config.pod.host.soft_reboot_duration = Milliseconds(200);
    config.pod.host.hard_reboot_duration = Milliseconds(500);
    config.pod.host.crash_reboot_delay = Milliseconds(50);
    config.pod.health.heartbeat_period = Milliseconds(10);
    config.pod.health.query_timeout = Milliseconds(50);
    config.dispatcher.policy = FederationPolicy::kScoreWeighted;
    return config;
}

// -------------------------------------------------- predictive shed

TEST(PredictiveDispatch, DegradationRampShedsPodBeforeHardFailure) {
    auto config = PredictiveFederation(/*pods=*/2, /*rings=*/2);
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    // A thermal/link ramp marches across two nodes of each of pod 0's
    // rings (second hit exhausts the ring's spare). Pure trend signal:
    // hosts stay responsive, so only the predictive plane can move the
    // traffic before queries start dying on pod 0.
    std::vector<int> ramp_nodes = {
        bed.pod(0).pool().ring(0).RingNode(1),
        bed.pod(0).pool().ring(1).RingNode(2),
        bed.pod(0).pool().ring(0).RingNode(3),
        bed.pod(0).pool().ring(1).RingNode(4),
    };
    const Time ramp_at = bed.simulator().Now() + Milliseconds(30);
    bed.pod(0).failure_injector().ScheduleDegradationRamp(
        ramp_nodes, ramp_at, Milliseconds(15));

    FederatedPhasedInjector::Config load;
    load.rate_qps = 10'000.0;
    load.duration = Milliseconds(300);
    load.phase_offsets = {Milliseconds(30)};
    FederatedPhasedInjector injector(&bed.dispatcher(), &bed.simulator(),
                                     load);
    const auto result = injector.Run();

    // The pod was proactively shed...
    EXPECT_GE(bed.dispatcher().counters().sheds, 1u);
    const auto pod0 = bed.dispatcher().pod_stats(0);
    EXPECT_GE(pod0.shed_transitions, 1u);
    // ...and the shed is numerically visible: accepted queries routed
    // around pod 0 while it was out of rotation.
    EXPECT_GT(pod0.shed_queries, 0u);
    // Nothing accepted was lost across the whole incident.
    EXPECT_EQ(result.failed, 0u);
    EXPECT_EQ(bed.dispatcher().counters().lost, 0u);
    EXPECT_EQ(result.completed, result.accepted);
    // The healthy pod carried the bulk of the incident phase.
    EXPECT_GT(bed.pod(1).pool().counters().dispatched,
              bed.pod(0).pool().counters().dispatched);
}

TEST(PredictiveDispatch, FatalLatchBeatsStaleGoodScore) {
    // Forecaster off: the feed never publishes, so the dispatcher's
    // view of pod 0 stays default-healthy (score 1.0) forever — a
    // stale-good score. The reactive fatal latch must still win.
    auto config = PredictiveFederation(/*pods=*/2, /*rings=*/1);
    config.pod.predictive = false;
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    bed.pod(0).failure_injector().SchedulePodBlackout(
        bed.simulator().Now() + Milliseconds(10));
    rank::DocumentGenerator generator(71);
    int completed = 0;
    for (int i = 0; i < 400; ++i) {
        bed.simulator().ScheduleAfter(
            Microseconds(200) * i + Milliseconds(1), [&, i] {
                rank::CompressedRequest request = generator.Next();
                request.query.model_id = 0;
                bed.dispatcher().Inject(
                    i % 32, request,
                    [&](const ScoreResult& r) { completed += r.ok ? 1 : 0; });
            });
    }
    bed.simulator().Run();

    const auto pod0 = bed.dispatcher().pod_stats(0);
    EXPECT_EQ(pod0.health_score, 1.0);  // the feed never said otherwise
    EXPECT_EQ(pod0.dead_nodes, 48);
    EXPECT_FALSE(pod0.eligible);  // ...but the latch holds it out
    EXPECT_FALSE(bed.dispatcher().pod_eligible(0));
    EXPECT_TRUE(bed.dispatcher().pod_eligible(1));
    EXPECT_EQ(bed.dispatcher().counters().lost, 0u);
    EXPECT_GT(completed, 0);
}

// ------------------------------------------------------ re-admission

TEST(Readmission, ServicedPodRejoinsWithWarmupRamp) {
    auto config = PredictiveFederation(/*pods=*/2, /*rings=*/1);
    config.dispatcher.readmission_warmup = Milliseconds(50);
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    // Lose pod 0 outright and let the incident settle.
    bed.pod(0).failure_injector().SchedulePodBlackout(
        bed.simulator().Now() + Milliseconds(5));
    bed.simulator().Run();
    ASSERT_EQ(bed.dispatcher().pod_dead_nodes(0), 48);
    ASSERT_FALSE(bed.dispatcher().pod_eligible(0));

    // Live re-admission: service + redeploy + hot-attach.
    bool reattached = false;
    bed.ReattachPod(0, [&](bool ok) { reattached = ok; });
    bed.simulator().Run();
    ASSERT_TRUE(reattached);
    const auto stats = bed.dispatcher().pod_stats(0);
    EXPECT_EQ(stats.readmitted, 1u);
    EXPECT_EQ(stats.dead_nodes, 0);
    EXPECT_EQ(bed.dispatcher().counters().readmissions, 1u);
    EXPECT_TRUE(bed.dispatcher().pod_eligible(0));

    // Inside the warm-up window the rejoining pod earns only a partial
    // share; it must serve some traffic (it is back) but less than the
    // incumbent (it has not earned parity yet).
    const std::uint64_t pod0_before = bed.pod(0).pool().counters().dispatched;
    const std::uint64_t pod1_before = bed.pod(1).pool().counters().dispatched;
    rank::DocumentGenerator generator(73);
    int completed = 0;
    for (int i = 0; i < 80; ++i) {
        bed.simulator().ScheduleAfter(Microseconds(500) * i, [&, i] {
            rank::CompressedRequest request = generator.Next();
            request.query.model_id = 0;
            bed.dispatcher().Inject(
                i % 32, request,
                [&](const ScoreResult& r) { completed += r.ok ? 1 : 0; });
        });
    }
    bed.simulator().Run();
    const std::uint64_t pod0_served =
        bed.pod(0).pool().counters().dispatched - pod0_before;
    const std::uint64_t pod1_served =
        bed.pod(1).pool().counters().dispatched - pod1_before;
    EXPECT_EQ(completed, 80);
    EXPECT_GT(pod0_served, 0u);
    EXPECT_LT(pod0_served, pod1_served);
}

// ------------------------------------------------- per-ring admission

TEST(PoolAdmission, PerRingCapRejectsInsteadOfQueuing) {
    PodTestbed::Config config;
    config.ring_count = 2;
    config.max_in_flight_per_ring = 2;
    config.fabric.device.configure_time = Milliseconds(5);
    PodTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    rank::DocumentGenerator generator(41);
    int accepted = 0;
    int rejected = 0;
    int completed = 0;
    for (int i = 0; i < 10; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        const auto status = bed.pool().Inject(
            i, request,
            [&](const ScoreResult& r) { completed += r.ok ? 1 : 0; });
        if (status == host::SendStatus::kOk) {
            ++accepted;
        } else {
            ++rejected;
        }
    }
    // Two rings x cap 2: the fifth arrival onward answers immediately
    // with a reject — bounded in flight, nothing queued.
    EXPECT_EQ(accepted, 4);
    EXPECT_EQ(rejected, 6);
    EXPECT_EQ(bed.pool().counters().cap_rejected, 6u);
    EXPECT_EQ(bed.pool().counters().rejected, 6u);
    EXPECT_EQ(bed.pool().total_in_flight(), 4);
    bed.simulator().Run();
    EXPECT_EQ(completed, 4);

    // Capacity drained: the cap admits again, and cap_rejected tells
    // admission control apart from failure rejects.
    rank::CompressedRequest request = generator.Next();
    request.query.model_id = 0;
    EXPECT_EQ(bed.pool().Inject(0, request, [](const ScoreResult&) {}),
              host::SendStatus::kOk);
    bed.simulator().Run();
}

// ------------------------------------------------ cross-pod replay

TEST(FederationTraceReplay, RetriedQueryReplaysFromSurvivorArchive) {
    // Pod 0 accepts queries but its ring is hung (health plane off, so
    // nothing heals it): every query landing there times out and
    // retries onto pod 1. The federation-level replay must resolve
    // each completed query to the archive of the pod that actually
    // scored it — survivors included — and flag the hung pod's
    // never-completed attempts as missing.
    FederationTestbed::Config config;
    config.pod_count = 2;
    config.pod.ring_count = 1;
    config.pod.autonomic = false;
    config.pod.service.compute_scores = true;
    config.pod.service.archive_traces = true;
    config.pod.service.models.model.expression_count = 300;
    config.pod.service.models.model.tree_count = 900;
    config.pod.fabric.device.configure_time = Milliseconds(5);
    config.dispatcher.policy = FederationPolicy::kRoundRobin;
    FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());
    for (int i = 0; i < RankingService::kRingLength; ++i) {
        bed.pod(0).pool().ring(0).role(i).Hang();
    }

    rank::DocumentGenerator generator(404);
    int completed = 0;
    int accepted = 0;
    for (int i = 0; i < 12; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        const auto status = bed.dispatcher().Inject(
            i, request,
            [&](const ScoreResult& r) { completed += r.ok ? 1 : 0; });
        if (status == host::SendStatus::kOk) ++accepted;
        bed.simulator().Run();
    }
    ASSERT_EQ(accepted, 12);
    ASSERT_EQ(completed, 12);  // every retry landed on the survivor

    // Stream both pods' head-node FDR windows; check them against both
    // pod-level archives.
    std::vector<std::vector<shell::FdrRecord>> windows;
    std::vector<const TraceArchive*> archives;
    for (int p = 0; p < 2; ++p) {
        RankingService& ring = bed.pod(p).pool().ring(0);
        windows.push_back(
            bed.pod(p).fabric().shell(ring.RingNode(0)).fdr().StreamOut());
        archives.push_back(bed.pod(p).trace_archive());
        ASSERT_NE(archives.back(), nullptr);
    }
    auto& function = bed.pod(1).pool().ring(0).FunctionFor(0);
    const auto report =
        TraceReplayer::ReplayFederation(windows, archives, function);

    // Every completed query replays bit-exactly from the archive of
    // the pod that scored it; pod 0's timed-out attempts (requests in
    // its FDR that never produced a score) surface as missing — the
    // §3.6 signature of a query that died mid-pod.
    EXPECT_EQ(report.matched, 12);
    EXPECT_EQ(report.mismatched, 0);
    EXPECT_GT(report.missing, 0);
    EXPECT_EQ(report.requests_in_window, 12 + report.missing);

    // The pod-level archives are disjoint trace-id spaces: pod 1 holds
    // every completed score (all retries finished there), pod 0 none.
    EXPECT_EQ(bed.pod(1).trace_archive()->size(), 12u);
    EXPECT_EQ(bed.pod(0).trace_archive()->size(), 0u);
}

}  // namespace
}  // namespace catapult::service
