// Integration tests: the full 8-FPGA ranking service on a pod (§4, §5).

#include <gtest/gtest.h>

#include "rank/document_generator.h"
#include "rank/software_ranker.h"
#include "service/load_generator.h"
#include "service/testbed.h"

namespace catapult::service {
namespace {

PodTestbed::Config FastConfig(bool compute_scores = false) {
    PodTestbed::Config config;
    // Small models keep generation fast in unit tests.
    config.service.models.model.expression_count = 300;
    config.service.models.model.tree_count = 900;
    config.service.compute_scores = compute_scores;
    // Shorten configuration so deploy tests run quickly.
    config.fabric.device.configure_time = Milliseconds(10);
    return config;
}

TEST(RankingService, DeploysAcrossEightNodes) {
    PodTestbed bed(FastConfig());
    EXPECT_TRUE(bed.DeployAndSettle());
    for (int i = 0; i < RankingService::kRingLength; ++i) {
        const int node = bed.service().RingNode(i);
        EXPECT_TRUE(bed.fabric().device(node).active());
        EXPECT_FALSE(bed.fabric().shell(node).rx_halted());
    }
    // Table 1 images are loaded in ring order.
    EXPECT_EQ(bed.fabric().device(bed.service().RingNode(0)).loaded_image()
                  .role_name,
              "rank.FE");
    EXPECT_EQ(bed.fabric().device(bed.service().RingNode(7)).loaded_image()
                  .role_name,
              "rank.Spare");
}

TEST(RankingService, ScoresOneDocumentEndToEnd) {
    PodTestbed bed(FastConfig(/*compute_scores=*/true));
    ASSERT_TRUE(bed.DeployAndSettle());
    rank::DocumentGenerator generator(42);
    rank::CompressedRequest request = generator.Next();
    request.query.model_id = 0;

    ScoreResult result;
    ASSERT_EQ(bed.service().Inject(0, 0, request,
                                   [&](const ScoreResult& r) { result = r; }),
              host::SendStatus::kOk);
    bed.simulator().Run();
    EXPECT_TRUE(result.ok);
    EXPECT_GT(result.latency, 0);
    // Unloaded end-to-end latency is tens of microseconds (§5, Fig 11),
    // far under a millisecond.
    EXPECT_LT(result.latency, Milliseconds(1));
}

TEST(RankingService, FpgaScoreIdenticalToSoftware) {
    // §4: "Our implementation produces results that are identical to
    // software." The score computed by the distributed pipeline must
    // equal the software reference.
    PodTestbed bed(FastConfig(/*compute_scores=*/true));
    ASSERT_TRUE(bed.DeployAndSettle());
    rank::DocumentGenerator generator(7);

    const rank::Model& model = bed.service().DefaultModel();
    rank::RankingFunction reference(&model);

    for (int i = 0; i < 5; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        ScoreResult result;
        ASSERT_EQ(bed.service().Inject(i % 8, 0, request,
                                       [&](const ScoreResult& r) { result = r; }),
                  host::SendStatus::kOk);
        bed.simulator().Run();
        ASSERT_TRUE(result.ok);
        EXPECT_EQ(result.score, reference.ReferenceScore(request))
            << "doc " << i;
    }
}

TEST(RankingService, AnyNodeCanInject) {
    PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    rank::DocumentGenerator generator(13);
    int completed = 0;
    for (int ring_index = 0; ring_index < 8; ++ring_index) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        ASSERT_EQ(bed.service().Inject(ring_index, 0, request,
                                       [&](const ScoreResult& r) {
                                           if (r.ok) ++completed;
                                       }),
                  host::SendStatus::kOk);
    }
    bed.simulator().Run();
    EXPECT_EQ(completed, 8);
}

TEST(RankingService, SpareInjectorSeesSlightlyHigherLatency) {
    // Figure 13: the Spare (tail) node's requests travel further than
    // the head's, so its latency is slightly higher but comparable.
    PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    rank::DocumentGenerator generator(17);

    // Warm up: the very first document pays the initial Model Reload.
    {
        rank::CompressedRequest warm = generator.WithTargetSize(6'500);
        warm.query.model_id = 0;
        bed.service().Inject(0, 1, warm, [](const ScoreResult&) {});
        bed.simulator().Run();
    }

    auto measure = [&](int ring_index) {
        rank::CompressedRequest request = generator.WithTargetSize(6'500);
        request.query.model_id = 0;
        Time latency = 0;
        bed.service().Inject(ring_index, 0, request,
                             [&](const ScoreResult& r) { latency = r.latency; });
        bed.simulator().Run();
        return latency;
    };
    const Time head = measure(0);
    const Time spare = measure(7);
    EXPECT_GT(spare, head);
    EXPECT_LT(static_cast<double>(spare), static_cast<double>(head) * 1.6);
}

TEST(RankingService, ClosedLoopThroughputSaturates) {
    // Figure 9: throughput grows with injecting threads then saturates
    // at the FE-bound pipeline rate.
    PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());

    auto run_with_threads = [&](int threads) {
        ClosedLoopInjector::Config config;
        config.injecting_ring_indices = {0};
        config.threads_per_node = threads;
        config.documents_per_thread = 60;
        ClosedLoopInjector injector(&bed.service(), config);
        return injector.Run().ThroughputPerSecond();
    };
    const double t1 = run_with_threads(1);
    const double t8 = run_with_threads(8);
    const double t16 = run_with_threads(16);
    EXPECT_GT(t8, t1 * 2.5);
    // Saturation: 16 threads buys little over 8.
    EXPECT_LT(t16, t8 * 1.5);
}

TEST(RankingService, MultiNodeAggregateScalesNearLinearly) {
    // Figure 12: aggregate throughput grows almost linearly with the
    // number of injecting nodes (1 thread each).
    PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());

    auto run_with_nodes = [&](int nodes) {
        ClosedLoopInjector::Config config;
        config.injecting_ring_indices.clear();
        for (int n = 0; n < nodes; ++n) {
            config.injecting_ring_indices.push_back(n);
        }
        config.threads_per_node = 1;
        config.documents_per_thread = 60;
        ClosedLoopInjector injector(&bed.service(), config);
        return injector.Run().ThroughputPerSecond();
    };
    const double one = run_with_nodes(1);
    const double four = run_with_nodes(4);
    // Near-linear: 4 injectors achieve well over 2.5x one injector
    // (queueing in the shared pipeline costs some efficiency; the full
    // curve is printed by bench_fig12).
    EXPECT_GT(four, one * 2.6);
}

TEST(RankingService, ModelSwitchesTriggerReloads) {
    PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    rank::DocumentGenerator generator(23);
    int completed = 0;
    for (int i = 0; i < 6; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = static_cast<std::uint32_t>(i % 3);
        bed.service().Inject(0, i % 16, request, [&](const ScoreResult& r) {
            if (r.ok) ++completed;
        });
    }
    bed.simulator().Run();
    EXPECT_EQ(completed, 6);
    // At least one reload per distinct model.
    EXPECT_GE(bed.service().counters().model_reloads, 3u);
}

TEST(RankingService, LatencyGrowsWithDocumentSize) {
    // Figure 11: unloaded pipeline latency is proportional to the
    // compressed document size.
    PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    rank::DocumentGenerator generator(29);

    auto measure = [&](Bytes size) {
        rank::CompressedRequest request = generator.WithTargetSize(size);
        request.query.model_id = 0;
        Time latency = 0;
        bed.service().Inject(0, 0, request,
                             [&](const ScoreResult& r) { latency = r.latency; });
        bed.simulator().Run();
        return latency;
    };
    const Time small = measure(1'024);
    const Time medium = measure(16'384);
    const Time large = measure(63'000);
    EXPECT_LT(small, medium);
    EXPECT_LT(medium, large);
    // Monotonic and strongly size-dependent (the paper's Fig. 11 spans
    // ~30x because its floor excludes host-side costs; our user-level
    // measurement carries a fixed ~40 us of stage/host latency).
    EXPECT_GT(static_cast<double>(large) / static_cast<double>(small), 2.0);
}

TEST(RankingService, OpenLoopInjectionCompletes) {
    PodTestbed bed(FastConfig());
    ASSERT_TRUE(bed.DeployAndSettle());
    OpenLoopInjector::Config config;
    config.rate_per_server = 2'000.0;
    config.duration = Milliseconds(20);
    OpenLoopInjector injector(&bed.service(), Rng(31), config);
    const LoadResult result = injector.Run();
    EXPECT_GT(result.completed, 100u);
    EXPECT_EQ(result.timeouts, 0u);
    EXPECT_GT(result.latency_us.mean(), 0.0);
}

}  // namespace
}  // namespace catapult::service
