// Unit + property tests for the request model, wire codec, and the
// Figure 4 document-size distribution.

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "rank/document.h"
#include "rank/document_generator.h"

namespace catapult::rank {
namespace {

TEST(HitTuple, EncodedSizeClasses) {
    // §4.1: tuples are encoded in 2, 4 or 6 bytes.
    HitTuple small{.delta = 5, .term = 0, .stream = 0, .properties = 0};
    EXPECT_EQ(small.EncodedSize(), 2);
    HitTuple medium{.delta = 300, .term = 1, .stream = 1, .properties = 9};
    EXPECT_EQ(medium.EncodedSize(), 4);
    HitTuple props{.delta = 5, .term = 0, .stream = 0, .properties = 1};
    EXPECT_EQ(props.EncodedSize(), 4);
    HitTuple large{.delta = 70'000, .term = 2, .stream = 2, .properties = 0};
    EXPECT_EQ(large.EncodedSize(), 6);
    HitTuple big_props{.delta = 5, .term = 0, .stream = 0, .properties = 4'000};
    EXPECT_EQ(big_props.EncodedSize(), 6);
}

TEST(HitVectorReader, DeterministicReplay) {
    // §3.6: a trace id maps to "a specific compressed document that can
    // be replayed in a test environment" — replays must be identical.
    DocumentGenerator generator(1);
    const CompressedRequest request = generator.Next();
    HitVectorReader a(request), b(request);
    HitTuple ta, tb;
    int count = 0;
    while (a.Next(ta)) {
        ASSERT_TRUE(b.Next(tb));
        EXPECT_EQ(ta, tb);
        ++count;
    }
    EXPECT_FALSE(b.Next(tb));
    EXPECT_EQ(count, static_cast<int>(request.tuple_count));
}

TEST(RequestCodec, RoundTripPreservesEverything) {
    DocumentGenerator generator(7);
    for (int i = 0; i < 20; ++i) {
        const CompressedRequest original = generator.Next();
        const auto bytes = RequestCodec::Encode(original);
        EXPECT_EQ(static_cast<Bytes>(bytes.size()), original.EncodedSize());

        CompressedRequest decoded;
        std::vector<HitTuple> tuples;
        ASSERT_TRUE(RequestCodec::Decode(bytes, decoded, tuples));
        EXPECT_EQ(decoded.doc_id, original.doc_id);
        EXPECT_EQ(decoded.query.query_id, original.query.query_id);
        EXPECT_EQ(decoded.query.model_id, original.query.model_id);
        EXPECT_EQ(decoded.query.term_count, original.query.term_count);
        EXPECT_EQ(decoded.document_length, original.document_length);
        EXPECT_EQ(decoded.tuple_count, original.tuple_count);
        EXPECT_EQ(decoded.truncated, original.truncated);
        EXPECT_EQ(decoded.software_features, original.software_features);

        // Tuples decode exactly as the reader streams them.
        HitVectorReader reader(original);
        HitTuple expected;
        std::size_t index = 0;
        while (reader.Next(expected)) {
            ASSERT_LT(index, tuples.size());
            EXPECT_EQ(tuples[index].delta, expected.delta);
            EXPECT_EQ(tuples[index].term, expected.term);
            EXPECT_EQ(tuples[index].stream, expected.stream);
            EXPECT_EQ(tuples[index].properties, expected.properties);
            ++index;
        }
        EXPECT_EQ(index, tuples.size());
    }
}

TEST(RequestCodec, RejectsCorruptHeader) {
    DocumentGenerator generator(9);
    auto bytes = RequestCodec::Encode(generator.Next());
    bytes[0] ^= 0xFF;  // break the magic
    CompressedRequest decoded;
    std::vector<HitTuple> tuples;
    EXPECT_FALSE(RequestCodec::Decode(bytes, decoded, tuples));
}

TEST(RequestCodec, RejectsTruncatedBuffer) {
    DocumentGenerator generator(9);
    auto bytes = RequestCodec::Encode(generator.Next());
    bytes.resize(bytes.size() / 2);
    CompressedRequest decoded;
    std::vector<HitTuple> tuples;
    EXPECT_FALSE(RequestCodec::Decode(bytes, decoded, tuples));
}

TEST(DocumentGenerator, WireBytesTracksExactEncoding) {
    DocumentGenerator generator(11);
    for (int i = 0; i < 50; ++i) {
        const CompressedRequest request = generator.Next();
        const double exact = static_cast<double>(request.EncodedSize());
        const double approx = static_cast<double>(request.wire_bytes);
        EXPECT_NEAR(approx / exact, 1.0, 0.15)
            << "doc " << request.doc_id << " exact " << exact << " approx "
            << approx;
    }
}

TEST(DocumentGenerator, Figure4Statistics) {
    // Fig. 4 + §4.1: mean 6.5 KB, p99 = 53 KB, nearly all under 64 KB
    // (~300 of 210K truncated).
    DocumentGenerator generator(2024);
    SampleStat sizes;
    const int n = 210'000;
    for (int i = 0; i < n; ++i) {
        sizes.Add(static_cast<double>(generator.Next().wire_bytes));
    }
    EXPECT_NEAR(sizes.mean(), 6'500.0, 1'000.0);
    EXPECT_NEAR(sizes.Percentile(99.0), 53'000.0, 8'000.0);
    EXPECT_LE(sizes.max(), 65'536.0);
    // Truncation is rare: within an order of magnitude of 300/210K.
    const double truncated_fraction =
        static_cast<double>(generator.truncated_count()) / n;
    EXPECT_GT(truncated_fraction, 0.0001);
    EXPECT_LT(truncated_fraction, 0.01);
}

TEST(DocumentGenerator, TargetSizeHonored) {
    DocumentGenerator generator(5);
    const CompressedRequest request = generator.WithTargetSize(16'384);
    EXPECT_NEAR(static_cast<double>(request.wire_bytes), 16'384.0, 600.0);
}

TEST(DocumentGenerator, SixtyFourKilobyteCap) {
    DocumentGenerator generator(5);
    for (int i = 0; i < 2'000; ++i) {
        EXPECT_LE(generator.Next().wire_bytes, kMaxCompressedBytes);
    }
}

TEST(DocumentGenerator, DistinctModelsAssigned) {
    DocumentGenerator::Config config;
    config.model_count = 4;
    DocumentGenerator generator(13, config);
    std::set<std::uint32_t> models;
    for (int i = 0; i < 200; ++i) models.insert(generator.Next().query.model_id);
    EXPECT_EQ(models.size(), 4u);
}

TEST(DocumentGenerator, SequentialDocIds) {
    DocumentGenerator generator(17);
    EXPECT_EQ(generator.Next().doc_id, 0u);
    EXPECT_EQ(generator.Next().doc_id, 1u);
    EXPECT_EQ(generator.generated(), 2u);
}

}  // namespace
}  // namespace catapult::rank
