// Unit tests for the deterministic RNG.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"

namespace catapult {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.Next() == b.Next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        const double x = rng.NextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NextBoundedRespectsBound) {
    Rng rng(11);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 48ull, 1'000'000ull}) {
        for (int i = 0; i < 1000; ++i) {
            EXPECT_LT(rng.NextBounded(bound), bound);
        }
    }
}

TEST(Rng, NextBoundedCoversRange) {
    Rng rng(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusive) {
    Rng rng(17);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.UniformInt(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialMean) {
    Rng rng(19);
    double sum = 0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
    Rng rng(23);
    double sum = 0, sum2 = 0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.Normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, LogNormalMeanMatchesFormula) {
    Rng rng(29);
    const double mu = 1.0, sigma = 0.5;
    double sum = 0;
    const int n = 300'000;
    for (int i = 0; i < n; ++i) sum += rng.LogNormal(mu, sigma);
    EXPECT_NEAR(sum / n, std::exp(mu + sigma * sigma / 2), 0.05);
}

TEST(Rng, PoissonSmallLambdaMean) {
    Rng rng(31);
    double sum = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.0));
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, PoissonLargeLambdaMean) {
    Rng rng(37);
    double sum = 0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(100.0));
    EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(Rng, PoissonZeroLambda) {
    Rng rng(41);
    EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(Rng, ChanceEdgeCases) {
    Rng rng(43);
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
}

TEST(Rng, ChanceFrequency) {
    Rng rng(47);
    int hits = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) hits += rng.Chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMean) {
    Rng rng(53);
    // Mean failures before success = (1-p)/p = 9 for p = 0.1.
    double sum = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Geometric(0.1));
    EXPECT_NEAR(sum / n, 9.0, 0.2);
}

TEST(Rng, WeightedIndexDistribution) {
    Rng rng(59);
    std::vector<double> weights = {1.0, 3.0};
    int ones = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) {
        if (rng.WeightedIndex(weights) == 1) ++ones;
    }
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(Rng, ForkIsIndependent) {
    Rng parent(61);
    Rng child = parent.Fork();
    // Child stream differs from the parent continuing.
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent.Next() == child.Next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace catapult
