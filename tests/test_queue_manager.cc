// Unit tests for the Queue Manager dispatch policy (§4.3).

#include <gtest/gtest.h>

#include "rank/queue_manager.h"

namespace catapult::rank {
namespace {

using Kind = QueueManager::DispatchDecision::Kind;

TEST(QueueManager, IdleWhenEmpty) {
    QueueManager qm;
    EXPECT_EQ(qm.Next(0).kind, Kind::kIdle);
    EXPECT_EQ(qm.TotalQueued(), 0u);
}

TEST(QueueManager, FirstWorkTriggersModelLoad) {
    QueueManager qm;
    qm.Enqueue(3, 100, 0);
    const auto decision = qm.Next(0);
    EXPECT_EQ(decision.kind, Kind::kModelReload);
    EXPECT_EQ(decision.model_id, 3u);
    // After the reload, the entry dispatches.
    const auto next = qm.Next(1);
    EXPECT_EQ(next.kind, Kind::kDispatch);
    EXPECT_EQ(next.entry, 100u);
    EXPECT_EQ(next.model_id, 3u);
}

TEST(QueueManager, DrainsCurrentQueueBeforeSwitching) {
    // §4.3: "QM takes documents from each queue ... When the queue is
    // empty or when a timeout is reached, QM will switch to the next
    // queue." Same-model work must not cause reloads.
    QueueManager qm;
    for (int i = 0; i < 5; ++i) {
        qm.Enqueue(1, static_cast<QueueManager::EntryId>(i), 0);
    }
    qm.Enqueue(2, 99, 0);

    EXPECT_EQ(qm.Next(0).kind, Kind::kModelReload);  // load model 1
    for (int i = 0; i < 5; ++i) {
        const auto d = qm.Next(1);
        EXPECT_EQ(d.kind, Kind::kDispatch);
        EXPECT_EQ(d.entry, static_cast<QueueManager::EntryId>(i));
    }
    // Queue 1 empty: switch to model 2.
    const auto switch_decision = qm.Next(2);
    EXPECT_EQ(switch_decision.kind, Kind::kModelReload);
    EXPECT_EQ(switch_decision.model_id, 2u);
    EXPECT_EQ(qm.Next(3).kind, Kind::kDispatch);
    EXPECT_EQ(qm.counters().model_switches, 2u);
}

TEST(QueueManager, TimeoutForcesRotation) {
    QueueManager::Config config;
    config.queue_timeout = Microseconds(100);
    QueueManager qm(config);
    for (int i = 0; i < 100; ++i) {
        qm.Enqueue(1, static_cast<QueueManager::EntryId>(i), 0);
    }
    qm.Enqueue(2, 999, 0);
    EXPECT_EQ(qm.Next(0).kind, Kind::kModelReload);
    // Drain within the window.
    Time now = 0;
    int dispatched_model1 = 0;
    while (true) {
        const auto d = qm.Next(now);
        if (d.kind == Kind::kModelReload) {
            // Timeout hit while model-1 work remains: rotated to 2.
            EXPECT_EQ(d.model_id, 2u);
            break;
        }
        ASSERT_EQ(d.kind, Kind::kDispatch);
        ++dispatched_model1;
        now += Microseconds(10);
    }
    EXPECT_GT(dispatched_model1, 0);
    EXPECT_LT(dispatched_model1, 100);
    EXPECT_GT(qm.counters().timeout_switches, 0u);
}

TEST(QueueManager, TimeoutIgnoredWhenOnlyQueue) {
    QueueManager::Config config;
    config.queue_timeout = Microseconds(1);
    QueueManager qm(config);
    for (int i = 0; i < 10; ++i) {
        qm.Enqueue(1, static_cast<QueueManager::EntryId>(i), 0);
    }
    EXPECT_EQ(qm.Next(0).kind, Kind::kModelReload);
    // Far past the timeout, but no other queue has work: keep draining.
    Time now = Seconds(1);
    for (int i = 0; i < 10; ++i) {
        const auto d = qm.Next(now);
        EXPECT_EQ(d.kind, Kind::kDispatch) << "i=" << i;
        now += Seconds(1);
    }
    EXPECT_EQ(qm.counters().model_switches, 1u);
}

TEST(QueueManager, RoundRobinAcrossModels) {
    QueueManager qm;
    qm.Enqueue(1, 10, 0);
    qm.Enqueue(2, 20, 0);
    qm.Enqueue(3, 30, 0);
    std::vector<std::uint32_t> reload_order;
    Time now = 0;
    for (int step = 0; step < 12; ++step) {
        const auto d = qm.Next(now++);
        if (d.kind == Kind::kModelReload) {
            reload_order.push_back(d.model_id);
        } else if (d.kind == Kind::kIdle) {
            break;
        }
    }
    EXPECT_EQ(reload_order, (std::vector<std::uint32_t>{1, 2, 3}));
    EXPECT_EQ(qm.TotalQueued(), 0u);
}

TEST(QueueManager, CountersTrackActivity) {
    QueueManager qm;
    qm.Enqueue(1, 1, 0);
    qm.Enqueue(1, 2, 0);
    qm.Next(0);  // reload
    qm.Next(1);  // dispatch
    qm.Next(2);  // dispatch
    EXPECT_EQ(qm.counters().enqueued, 2u);
    EXPECT_EQ(qm.counters().dispatched, 2u);
    EXPECT_EQ(qm.counters().model_switches, 1u);
    EXPECT_EQ(qm.QueuedFor(1), 0u);
}

}  // namespace
}  // namespace catapult::rank
