// Unit tests for the SL3 link: bandwidth, ECC error model, flow
// control, and the TX/RX Halt reconfiguration protocol (§2.2/§3.2/§3.4).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "shell/packet.h"
#include "shell/sl3_link.h"
#include "sim/simulator.h"

namespace catapult::shell {
namespace {

struct LinkPair {
    sim::Simulator sim;
    Sl3Link a{&sim, "a", Rng(1)};
    Sl3Link b{&sim, "b", Rng(2)};

    LinkPair() { a.ConnectTo(&b); }
};

TEST(Sl3Link, DeliversPackets) {
    LinkPair pair;
    int delivered = 0;
    pair.b.set_on_receive([&] { ++delivered; });
    pair.a.Send(MakePacket(PacketType::kScoringRequest, 0, 1, 1024));
    pair.sim.Run();
    EXPECT_EQ(delivered, 1);
    ASSERT_TRUE(pair.b.HasReceived());
    EXPECT_EQ(pair.b.PopReceived()->size, 1024);
}

TEST(Sl3Link, EffectiveBandwidthIncludesEccTax) {
    LinkPair pair;
    // §2.2: 20 Gb/s peak; §3.2: ECC costs 20% -> 16 Gb/s effective.
    EXPECT_DOUBLE_EQ(pair.a.EffectiveBandwidth().gigabits_per_second(), 16.0);
}

TEST(Sl3Link, SubMicrosecondLatencyForSmallMessages) {
    LinkPair pair;
    Time arrival = -1;
    pair.b.set_on_receive([&] { arrival = pair.sim.Now(); });
    pair.a.Send(MakePacket(PacketType::kScoringResponse, 0, 1, 64));
    pair.sim.Run();
    // §2.2: sub-microsecond latency per link for small transfers.
    EXPECT_GT(arrival, 0);
    EXPECT_LT(arrival, Microseconds(1));
}

TEST(Sl3Link, SerializationScalesWithSize) {
    LinkPair pair;
    // 16 Gb/s effective: 64 KB = 32.768 us on the wire.
    EXPECT_EQ(pair.a.SerializationTime(65'536), Nanoseconds(32'768));
}

TEST(Sl3Link, BackToBackPacketsShareBandwidth) {
    LinkPair pair;
    std::vector<Time> arrivals;
    pair.b.set_on_receive([&] { arrivals.push_back(pair.sim.Now()); });
    for (int i = 0; i < 4; ++i) {
        pair.a.Send(MakePacket(PacketType::kScoringRequest, 0, 1, 16'000));
    }
    pair.sim.Run();
    ASSERT_EQ(arrivals.size(), 4u);
    const Time serialization = pair.a.SerializationTime(16'000);
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
        EXPECT_GE(arrivals[i] - arrivals[i - 1], serialization);
    }
}

TEST(Sl3Link, CleanLinkHasNoErrors) {
    LinkPair pair;
    // Drain on arrival so flow control never engages.
    pair.b.set_on_receive([&] { pair.b.PopReceived(); });
    for (int i = 0; i < 100; ++i) {
        pair.a.Send(MakePacket(PacketType::kScoringRequest, 0, 1, 4096));
    }
    pair.sim.Run();
    EXPECT_EQ(pair.b.counters().packets_delivered, 100u);
    EXPECT_EQ(pair.b.counters().single_bit_corrected, 0u);
    EXPECT_EQ(pair.b.counters().double_bit_drops, 0u);
}

TEST(Sl3Link, SingleBitErrorsAreCorrected) {
    LinkPair pair;
    // BER low enough that flits see at most one error each.
    pair.b.set_bit_error_rate(1e-7);
    int delivered = 0;
    pair.b.set_on_receive([&] {
        ++delivered;
        pair.b.PopReceived();  // drain so Xoff never engages
    });
    for (int i = 0; i < 400; ++i) {
        // Large packets can exceed the TX queue bound; drain in between.
        if (!pair.a.Send(MakePacket(PacketType::kScoringRequest, 0, 1,
                                    32'768))) {
            pair.sim.Run();
            ASSERT_TRUE(pair.a.Send(
                MakePacket(PacketType::kScoringRequest, 0, 1, 32'768)));
        }
    }
    pair.sim.Run();
    const auto& counters = pair.b.counters();
    EXPECT_GT(counters.single_bit_corrected, 0u);
    // Nearly everything still arrives (double-bit in one flit is rare).
    EXPECT_GT(delivered, 390);
}

TEST(Sl3Link, HighBerDropsPackets) {
    LinkPair pair;
    pair.b.set_bit_error_rate(1e-4);
    for (int i = 0; i < 200; ++i) {
        pair.a.Send(MakePacket(PacketType::kScoringRequest, 0, 1, 32'768));
    }
    pair.sim.Run();
    const auto& counters = pair.b.counters();
    // §3.2: double-bit errors and CRC failures drop the packet with no
    // retransmission.
    EXPECT_GT(counters.double_bit_drops + counters.crc_drops, 0u);
    EXPECT_LT(counters.packets_delivered, 200u);
}

TEST(Sl3Link, TxHaltSuppressesTraffic) {
    LinkPair pair;
    pair.a.SetTxHalt(true);
    pair.a.Send(MakePacket(PacketType::kScoringRequest, 0, 1, 1024));
    pair.sim.Run();
    EXPECT_FALSE(pair.b.HasReceived());
    EXPECT_GT(pair.a.counters().tx_halt_suppressed, 0u);
}

TEST(Sl3Link, TxHaltProtectsNeighborFromGarbage) {
    LinkPair pair;
    int corruptions = 0;
    pair.b.set_on_corruption([&](const PacketPtr&) { ++corruptions; });
    // §3.4 protocol: declare TX Halt, then spray garbage.
    pair.a.SetTxHalt(true);
    pair.sim.Run();
    pair.a.EmitGarbageBurst();
    pair.sim.Run();
    EXPECT_EQ(corruptions, 0);
    EXPECT_EQ(pair.b.counters().garbage_received, 1u);
}

TEST(Sl3Link, UnprotectedGarbageCorruptsNeighbor) {
    LinkPair pair;
    int corruptions = 0;
    pair.b.set_on_corruption([&](const PacketPtr&) { ++corruptions; });
    // Crash path: garbage with no TX Halt warning (§3.4).
    pair.a.EmitGarbageBurst();
    pair.sim.Run();
    EXPECT_EQ(corruptions, 1);
}

TEST(Sl3Link, TxHaltReleaseRelocksLink) {
    LinkPair pair;
    pair.a.SetTxHalt(true);
    pair.sim.Run();
    EXPECT_TRUE(pair.b.peer_halted());
    pair.a.SetTxHalt(false);
    pair.sim.Run();
    EXPECT_FALSE(pair.b.peer_halted());
    // Traffic flows again after relock.
    pair.a.Send(MakePacket(PacketType::kScoringRequest, 0, 1, 512));
    pair.sim.Run();
    EXPECT_TRUE(pair.b.HasReceived());
}

TEST(Sl3Link, RxHaltDropsEverything) {
    LinkPair pair;
    // §3.4: "each FPGA comes up with 'RX Halt' enabled, automatically
    // throwing away any message coming in on the SL3 links."
    pair.b.SetRxHalt(true);
    for (int i = 0; i < 5; ++i) {
        pair.a.Send(MakePacket(PacketType::kScoringRequest, 0, 1, 512));
    }
    pair.sim.Run();
    EXPECT_FALSE(pair.b.HasReceived());
    EXPECT_EQ(pair.b.counters().rx_halt_drops, 5u);

    pair.b.SetRxHalt(false);
    pair.a.Send(MakePacket(PacketType::kScoringRequest, 0, 1, 512));
    pair.sim.Run();
    EXPECT_TRUE(pair.b.HasReceived());
}

TEST(Sl3Link, ShellVersionMismatchDropped) {
    LinkPair pair;
    // §3.4: FPGAs must be robust to traffic from neighbours with
    // incompatible configurations ("old" data).
    pair.a.set_shell_version(1);
    pair.b.set_shell_version(2);
    pair.a.Send(MakePacket(PacketType::kScoringRequest, 0, 1, 512));
    pair.sim.Run();
    EXPECT_FALSE(pair.b.HasReceived());
    EXPECT_EQ(pair.b.counters().version_mismatch_drops, 1u);
}

TEST(Sl3Link, DefectiveCableDeliversNothing) {
    LinkPair pair;
    pair.b.set_defective(true);
    EXPECT_FALSE(pair.b.locked());
    pair.a.Send(MakePacket(PacketType::kScoringRequest, 0, 1, 512));
    pair.sim.Run();
    EXPECT_FALSE(pair.b.HasReceived());
    EXPECT_EQ(pair.b.counters().defective_drops, 1u);
}

TEST(Sl3Link, XoffThrottlesSender) {
    LinkPair pair;
    Sl3Link::Config config;
    config.rx_xoff_threshold_flits = 64;
    config.rx_xon_threshold_flits = 16;
    sim::Simulator sim;
    Sl3Link a(&sim, "a", Rng(1), config);
    Sl3Link b(&sim, "b", Rng(2), config);
    a.ConnectTo(&b);
    // Do not drain b: its rx queue fills and Xoff fires.
    for (int i = 0; i < 100; ++i) {
        a.Send(MakePacket(PacketType::kScoringRequest, 0, 1, kFlitBytes * 8));
    }
    sim.Run();
    EXPECT_GT(b.counters().xoff_asserted, 0u);
    // Sender paused: not all packets crossed.
    EXPECT_LT(b.counters().packets_delivered, 100u);
    EXPECT_GT(a.TxQueueDepthFlits(), 0u);

    // Draining the receiver releases Xon and the rest flows.
    for (int rounds = 0; rounds < 1000; ++rounds) {
        while (b.HasReceived()) b.PopReceived();
        if (sim.Empty()) break;
        sim.Run();
    }
    while (b.HasReceived()) b.PopReceived();
    EXPECT_EQ(b.counters().packets_delivered, 100u);
}

TEST(Sl3Link, NoPeerCountsDrops) {
    sim::Simulator sim;
    Sl3Link lone(&sim, "lone", Rng(1));
    lone.Send(MakePacket(PacketType::kScoringRequest, 0, 1, 512));
    sim.Run();
    EXPECT_EQ(lone.counters().no_peer_drops, 1u);
}

TEST(Packet, FlitCount) {
    EXPECT_EQ(FlitCount(0), 1);
    EXPECT_EQ(FlitCount(1), 1);
    EXPECT_EQ(FlitCount(32), 1);
    EXPECT_EQ(FlitCount(33), 2);
    EXPECT_EQ(FlitCount(65'536), 2'048);
}

TEST(Packet, PortHelpers) {
    EXPECT_EQ(Opposite(Port::kNorth), Port::kSouth);
    EXPECT_EQ(Opposite(Port::kEast), Port::kWest);
    EXPECT_STREQ(ToString(Port::kNorth), "north");
    EXPECT_STREQ(ToString(PacketType::kTxHalt), "tx_halt");
}

}  // namespace
}  // namespace catapult::shell
