// Unit + property tests for the FFE stack: expressions, compiler,
// metafeature splitting, thread assignment, and processor timing (§4.5).

#include <gtest/gtest.h>

#include <cmath>

#include "rank/ffe/compiler.h"
#include "rank/ffe/expression.h"
#include "rank/ffe/processor.h"

namespace catapult::rank::ffe {
namespace {

FeatureStore MakeStore() {
    FeatureStore store;
    for (std::uint32_t i = 0; i < kDynamicFeatureCount; i += 3) {
        store.Set(i, static_cast<float>(i % 17) * 0.25f);
    }
    return store;
}

TEST(Expression, LeafEvaluation) {
    FeatureStore store;
    store.Set(5, 3.5f);
    EXPECT_EQ(MakeConst(2.0f)->Evaluate(store), 2.0f);
    EXPECT_EQ(MakeFeature(5)->Evaluate(store), 3.5f);
}

TEST(Expression, ArithmeticOps) {
    FeatureStore store;
    auto two = [] { return MakeConst(2.0f); };
    auto three = [] { return MakeConst(3.0f); };
    EXPECT_EQ(MakeBinary(OpCode::kAdd, two(), three())->Evaluate(store), 5.0f);
    EXPECT_EQ(MakeBinary(OpCode::kSub, two(), three())->Evaluate(store), -1.0f);
    EXPECT_EQ(MakeBinary(OpCode::kMul, two(), three())->Evaluate(store), 6.0f);
    EXPECT_EQ(MakeBinary(OpCode::kMax, two(), three())->Evaluate(store), 3.0f);
    EXPECT_EQ(MakeBinary(OpCode::kMin, two(), three())->Evaluate(store), 2.0f);
    EXPECT_EQ(MakeBinary(OpCode::kCmpGt, three(), two())->Evaluate(store), 1.0f);
    EXPECT_EQ(MakeBinary(OpCode::kCmpGt, two(), three())->Evaluate(store), 0.0f);
}

TEST(Expression, ComplexOps) {
    FeatureStore store;
    EXPECT_FLOAT_EQ(
        MakeBinary(OpCode::kDiv, MakeConst(7.0f), MakeConst(2.0f))
            ->Evaluate(store),
        3.5f);
    // Division by zero saturates to 0 (hardware behaviour).
    EXPECT_EQ(MakeBinary(OpCode::kDiv, MakeConst(7.0f), MakeConst(0.0f))
                  ->Evaluate(store),
              0.0f);
    EXPECT_FLOAT_EQ(MakeUnary(OpCode::kLn, MakeConst(std::exp(1.0f)))
                        ->Evaluate(store),
                    1.0f);
    EXPECT_FLOAT_EQ(MakeUnary(OpCode::kExp, MakeConst(0.0f))->Evaluate(store),
                    1.0f);
    EXPECT_EQ(MakeUnary(OpCode::kFloatToInt, MakeConst(2.9f))->Evaluate(store),
              2.0f);
    EXPECT_EQ(MakeUnary(OpCode::kFloatToInt, MakeConst(-2.9f))->Evaluate(store),
              -2.0f);
}

TEST(Expression, SelectEvaluatesAllThenMuxes) {
    FeatureStore store;
    auto select = MakeSelect(MakeConst(1.0f), MakeConst(10.0f),
                             MakeConst(20.0f));
    EXPECT_EQ(select->Evaluate(store), 10.0f);
    auto select2 = MakeSelect(MakeConst(0.0f), MakeConst(10.0f),
                              MakeConst(20.0f));
    EXPECT_EQ(select2->Evaluate(store), 20.0f);
}

TEST(Expression, OpCountAndComplexCount) {
    auto e = MakeBinary(OpCode::kAdd, MakeUnary(OpCode::kLn, MakeFeature(1)),
                        MakeConst(1.0f));
    EXPECT_EQ(e->OpCount(), 4);
    EXPECT_EQ(e->ComplexOpCount(), 1);
    EXPECT_EQ(e->Depth(), 3);
}

TEST(Expression, CloneIsDeepAndEqual) {
    ExpressionGenerator generator(3);
    const ExprPtr original = generator.Generate();
    const ExprPtr copy = original->Clone();
    const FeatureStore store = MakeStore();
    EXPECT_EQ(original->Evaluate(store), copy->Evaluate(store));
    EXPECT_EQ(original->OpCount(), copy->OpCount());
}

TEST(ExpressionGenerator, SizesSpanSmallToLarge) {
    // §4.5: FFEs range "from very simple ... to large and complex
    // (thousands of operations)".
    ExpressionGenerator generator(11);
    int small = 0, large = 0;
    for (int i = 0; i < 3'000; ++i) {
        const int ops = generator.Generate()->OpCount();
        if (ops <= 50) ++small;
        if (ops >= 500) ++large;
    }
    EXPECT_GT(small, 2'000);
    EXPECT_GT(large, 5);
}

TEST(ExpressionGenerator, TargetSizeApproximate) {
    ExpressionGenerator generator(13);
    const ExprPtr e = generator.GenerateWithSize(200);
    EXPECT_GT(e->OpCount(), 100);
    EXPECT_LE(e->OpCount(), 300);  // budget is approximate by design
}

TEST(Compiler, InterpreterMatchesAstExactly) {
    // The load-bearing §4 property: compiled-program execution equals
    // direct AST evaluation bit-for-bit, across many random expressions.
    ExpressionGenerator generator(17);
    FfeCompiler compiler;
    const FeatureStore store = MakeStore();
    for (int i = 0; i < 300; ++i) {
        const ExprPtr expr = generator.Generate();
        const Program program = compiler.Compile(*expr, kFfeOutputBase);
        const float direct = expr->Evaluate(store);
        const float interpreted = FfeProcessor::Execute(program, store);
        EXPECT_EQ(direct, interpreted) << "expression " << i;
    }
}

TEST(Compiler, ProgramMetadata) {
    FfeCompiler compiler;
    auto e = MakeBinary(OpCode::kAdd, MakeUnary(OpCode::kLn, MakeFeature(1)),
                        MakeConst(1.0f));
    const Program p = compiler.Compile(*e, 42);
    EXPECT_EQ(p.output_slot, 42u);
    EXPECT_EQ(p.InstructionCount(), 4);
    EXPECT_EQ(p.complex_ops, 1);
    // Critical path: ldf(2) + ln(24) + add(4) = 30.
    EXPECT_EQ(p.serial_latency, 30);
}

TEST(Compiler, SplitPreservesSemantics) {
    // §4.5: oversized expressions split across FPGAs via metafeatures;
    // upstream parts + rewritten remainder must equal the original.
    ExpressionGenerator generator(19);
    FfeCompiler::Config config;
    config.split_threshold_ops = 64;
    config.split_chunk_ops = 32;
    FfeCompiler compiler(config);
    FeatureStore store = MakeStore();

    for (int i = 0; i < 20; ++i) {
        const ExprPtr original = generator.GenerateWithSize(400);
        const float expected = original->Evaluate(store);

        ExprPtr work = original->Clone();
        std::uint32_t next_slot = 0;
        const auto parts = compiler.SplitForMetafeatures(*work, next_slot);
        EXPECT_FALSE(parts.empty());
        EXPECT_LE(work->OpCount(), config.split_threshold_ops + 1);

        // Evaluate upstream parts into their metafeature slots, then the
        // remainder.
        FeatureStore staged = store;
        for (const auto& part : parts) {
            staged.Set(part.slot, part.expr->Evaluate(staged));
        }
        EXPECT_EQ(work->Evaluate(staged), expected) << "expression " << i;
    }
}

TEST(Compiler, SmallExpressionsNotSplit) {
    FfeCompiler compiler;
    ExpressionGenerator generator(23);
    ExprPtr small = generator.GenerateWithSize(20);
    std::uint32_t next_slot = 0;
    const auto parts = compiler.SplitForMetafeatures(*small, next_slot);
    EXPECT_TRUE(parts.empty());
    EXPECT_EQ(next_slot, 0u);
}

TEST(ThreadAssignment, LongestFirstSlotZero) {
    // §4.5: "The assembler maps the expressions with the longest
    // expected latency to Thread Slot 0 on all cores, then fills in
    // Slot 1 ..."
    std::vector<Program> programs(8);
    for (int i = 0; i < 8; ++i) {
        programs[static_cast<std::size_t>(i)].serial_latency = 100 - i * 10;
    }
    const ThreadAssignment assignment = AssignThreads(programs, 2, 4);
    // Slot 0 on cores 0,1 get programs 0,1 (longest), slot 1 gets 2,3...
    EXPECT_EQ(assignment.thread_queues[0][0], (std::vector<int>{0}));
    EXPECT_EQ(assignment.thread_queues[1][0], (std::vector<int>{1}));
    EXPECT_EQ(assignment.thread_queues[0][1], (std::vector<int>{2}));
    EXPECT_EQ(assignment.thread_queues[1][3], (std::vector<int>{7}));
}

TEST(ThreadAssignment, OverflowAppendsRoundRobin) {
    std::vector<Program> programs(10);
    for (int i = 0; i < 10; ++i) {
        programs[static_cast<std::size_t>(i)].serial_latency = 1000 - i;
    }
    const ThreadAssignment assignment = AssignThreads(programs, 2, 4);
    // 8 slots; programs 8 and 9 append back at slot 0.
    EXPECT_EQ(assignment.thread_queues[0][0], (std::vector<int>{0, 8}));
    EXPECT_EQ(assignment.thread_queues[1][0], (std::vector<int>{1, 9}));
}

TEST(ThreadAssignment, AllProgramsAssignedExactlyOnce) {
    ExpressionGenerator generator(29);
    FfeCompiler compiler;
    std::vector<Program> programs;
    for (int i = 0; i < 500; ++i) {
        programs.push_back(
            compiler.Compile(*generator.Generate(), kFfeOutputBase));
    }
    const ThreadAssignment assignment = AssignThreads(programs, 60, 4);
    std::vector<int> seen(programs.size(), 0);
    for (const auto& core : assignment.thread_queues) {
        for (const auto& slot : core) {
            for (int index : slot) ++seen[static_cast<std::size_t>(index)];
        }
    }
    for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(FfeProcessor, SixtyCoresFourThreadsSixPerCluster) {
    const FfeProcessor processor;
    EXPECT_EQ(processor.config().core_count, 60);       // §4.5
    EXPECT_EQ(processor.config().threads_per_core, 4);  // §4.5
    EXPECT_EQ(processor.config().cores_per_cluster, 6); // §4.5
}

TEST(FfeProcessor, ExecuteAllWritesOutputSlots) {
    ExpressionGenerator generator(31);
    FfeCompiler compiler;
    std::vector<Program> programs;
    for (int i = 0; i < 50; ++i) {
        programs.push_back(compiler.Compile(
            *generator.Generate(), kFfeOutputBase + static_cast<std::uint32_t>(i)));
    }
    FfeProcessor processor;
    processor.LoadPrograms(programs);
    FeatureStore store = MakeStore();
    processor.ExecuteAll(store);
    int non_zero = 0;
    for (int i = 0; i < 50; ++i) {
        if (store.Get(kFfeOutputBase + static_cast<std::uint32_t>(i)) != 0.0f) {
            ++non_zero;
        }
    }
    EXPECT_GT(non_zero, 10);
}

TEST(FfeProcessor, TimingBoundsAreConsistent) {
    ExpressionGenerator generator(37);
    FfeCompiler compiler;
    std::vector<Program> programs;
    std::int64_t total_instructions = 0;
    for (int i = 0; i < 1'000; ++i) {
        programs.push_back(compiler.Compile(*generator.Generate(),
                                            kFfeOutputBase));
        total_instructions += programs.back().InstructionCount();
    }
    FfeProcessor processor;
    processor.LoadPrograms(programs);
    const auto breakdown = processor.Breakdown();
    // Issue bound >= perfectly balanced instructions per core.
    EXPECT_GE(breakdown.max_core_issue_cycles, total_instructions / 60);
    // Document cycles covers every bound plus overhead.
    EXPECT_GE(processor.DocumentCycles(),
              breakdown.max_core_issue_cycles);
    EXPECT_GE(processor.DocumentCycles(),
              breakdown.max_thread_serial_cycles);
    EXPECT_GE(processor.DocumentCycles(),
              breakdown.max_cluster_complex_cycles);
    EXPECT_EQ(processor.TotalInstructions(), total_instructions);
}

TEST(FfeProcessor, MoreCoresProcessFaster) {
    ExpressionGenerator generator(41);
    FfeCompiler compiler;
    std::vector<Program> programs;
    for (int i = 0; i < 2'000; ++i) {
        programs.push_back(compiler.Compile(*generator.Generate(),
                                            kFfeOutputBase));
    }
    FfeProcessor::Config small_config;
    small_config.core_count = 15;
    FfeProcessor small(small_config);
    small.LoadPrograms(programs);
    FfeProcessor big;  // 60 cores
    big.LoadPrograms(programs);
    EXPECT_LT(big.DocumentCycles(), small.DocumentCycles());
}

TEST(FfeProcessor, StageWithinMacropipelineBudget) {
    // A production-sized model partition (§4.2: stages target <= 8 us;
    // FFE runs at 125 MHz -> 1,000 cycles). Long expressions must first
    // be split across the chips via metafeatures (§4.5) — that splitting
    // is exactly what keeps any one thread's dependency chain bounded.
    ExpressionGenerator generator(43);
    FfeCompiler compiler;
    std::vector<Program> programs;
    std::uint32_t next_meta = 0;
    for (int i = 0; i < 1'200; ++i) {
        ExprPtr expr = generator.Generate();
        for (auto& part : compiler.SplitForMetafeatures(*expr, next_meta)) {
            programs.push_back(compiler.Compile(*part.expr, part.slot));
        }
        programs.push_back(compiler.Compile(*expr, kFfeOutputBase));
    }
    FfeProcessor processor;
    processor.LoadPrograms(programs);
    EXPECT_LT(processor.DocumentServiceTime(), Microseconds(12));
    EXPECT_GT(processor.DocumentServiceTime(), Microseconds(1));
}

TEST(OpLatencies, ComplexOpsAreLong) {
    const OpLatencies latencies;
    EXPECT_GT(latencies.For(OpCode::kLn), latencies.For(OpCode::kAdd));
    EXPECT_GT(latencies.For(OpCode::kDiv), latencies.For(OpCode::kAdd));
    EXPECT_TRUE(IsComplexOp(OpCode::kLn));
    EXPECT_TRUE(IsComplexOp(OpCode::kDiv));
    EXPECT_TRUE(IsComplexOp(OpCode::kExp));
    EXPECT_TRUE(IsComplexOp(OpCode::kFloatToInt));
    EXPECT_FALSE(IsComplexOp(OpCode::kAdd));
    EXPECT_FALSE(IsComplexOp(OpCode::kSelect));
}

}  // namespace
}  // namespace catapult::rank::ffe
