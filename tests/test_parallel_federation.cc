// Parallel federation runtime, differentially tested: the sharded
// federation run on worker threads must be bit-identical to the same
// sharded federation run lock-step on one thread — per-query outcomes,
// latencies, dispatcher counters, pool counters and total events fired
// — across a scenario that includes a whole-pod blackout, shard-side
// admission rejects, failover and live pod re-admission.
//
// Also pins the two batched-injection equivalences (batch=1 vs K>1
// produce identical simulated metrics) and the PoolArena cross-thread
// block-migration contract the worker threads rely on.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/object_pool.h"
#include "rank/document_generator.h"
#include "service/federation_testbed.h"
#include "service/load_generator.h"

namespace catapult::service {
namespace {

struct QueryRecord {
    bool accepted = false;
    bool ok = false;
    Time latency = -1;
    Time completed_at = -1;

    bool operator==(const QueryRecord& o) const {
        return accepted == o.accepted && ok == o.ok &&
               latency == o.latency && completed_at == o.completed_at;
    }
};

struct ScenarioTrace {
    std::vector<QueryRecord> queries;
    bool reattach_ok = false;
    Time reattach_done_at = -1;
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::uint64_t lost = 0;
    std::uint64_t failovers = 0;
    std::uint64_t pod0_dispatched = 0;
    std::uint64_t pod1_dispatched = 0;
    std::uint64_t events_fired = 0;
    Time end_time = -1;
    // Observability exports (deterministic views): the merged metric
    // registry, the stitched span timeline, and every hub snapshot.
    std::string metrics_json;
    std::string trace_json;
    std::string snapshots;
};

/**
 * Blackout + re-admission under paced load on a sharded 2-pod
 * federation; every observable lands in the trace. `parallel` is the
 * only knob — everything else, seeds included, is identical.
 */
ScenarioTrace RunShardedScenario(bool parallel) {
    FederationTestbed::Config config;
    config.pod_count = 2;
    config.pod.ring_count = 2;
    config.pod.fabric.device.configure_time = Milliseconds(5);
    config.pod.host.soft_reboot_duration = Milliseconds(200);
    config.pod.host.hard_reboot_duration = Milliseconds(500);
    config.pod.host.crash_reboot_delay = Milliseconds(50);
    config.pod.health.heartbeat_period = Milliseconds(10);
    config.pod.health.query_timeout = Milliseconds(50);
    config.sharding.enabled = true;
    config.sharding.parallel = parallel;
    // Force real worker threads even on a single-core CI runner: the
    // differential claim is about the algorithm, not the core count.
    config.sharding.max_threads = 3;
    // Full observability on: the deterministic exports must be
    // byte-identical across execution modes too.
    config.observability.enabled = true;
    config.observability.hub.cadence = Milliseconds(10);
    FederationTestbed bed(config);
    EXPECT_TRUE(bed.DeployAndSettle());

    ScenarioTrace trace;
    const int kQueries = 1'200;
    trace.queries.resize(kQueries);

    const Time blackout_at = bed.Now() + Milliseconds(30);
    bed.pod(0).failure_injector().SchedulePodBlackout(blackout_at);
    bed.simulator().ScheduleAt(blackout_at + Milliseconds(30), [&] {
        bed.ReattachPod(0, [&](bool ok) {
            trace.reattach_ok = ok;
            trace.reattach_done_at = bed.simulator().Now();
        });
    });

    // Paced load spanning pre-blackout, the incident and re-admission.
    // Arrival events, Inject and completion delivery all live on the
    // coordinator shard, so the per-query records are single-writer.
    rank::DocumentGenerator generator(29);
    for (int i = 0; i < kQueries; ++i) {
        bed.simulator().ScheduleAfter(
            Microseconds(60) * i + Milliseconds(1), [&, i] {
                rank::CompressedRequest request = generator.Next();
                request.query.model_id = 0;
                QueryRecord& record =
                    trace.queries[static_cast<std::size_t>(i)];
                const Time injected_at = bed.simulator().Now();
                const auto status = bed.dispatcher().Inject(
                    i % 32, request,
                    [&record, &bed, injected_at](const ScoreResult& r) {
                        record.ok = r.ok;
                        record.latency = r.ok
                            ? r.latency
                            : bed.simulator().Now() - injected_at;
                        record.completed_at = bed.simulator().Now();
                    });
                record.accepted = status == host::SendStatus::kOk;
            });
    }
    trace.events_fired = bed.Run();

    trace.accepted = bed.dispatcher().counters().accepted;
    trace.completed = bed.dispatcher().counters().completed;
    trace.lost = bed.dispatcher().counters().lost;
    trace.failovers = bed.dispatcher().counters().failovers;
    trace.pod0_dispatched = bed.pod(0).pool().counters().dispatched;
    trace.pod1_dispatched = bed.pod(1).pool().counters().dispatched;
    trace.end_time = bed.Now();
    trace.metrics_json = bed.observability()->MetricsJson(false);
    trace.trace_json = bed.observability()->TraceJson();
    for (const auto& snap : bed.observability()->hub().snapshots()) {
        trace.snapshots += std::to_string(snap.at);
        trace.snapshots += ":";
        trace.snapshots += snap.json;
        trace.snapshots += "\n";
    }
    return trace;
}

TEST(ParallelFederation, ParallelRunIsBitIdenticalToLockstep) {
    const ScenarioTrace lockstep = RunShardedScenario(/*parallel=*/false);
    const ScenarioTrace threaded = RunShardedScenario(/*parallel=*/true);

    // The scenario actually exercised what it claims to: queries
    // completed, the blackout triggered failovers, the pod came back.
    EXPECT_GT(lockstep.completed, 0u);
    EXPECT_GT(lockstep.failovers, 0u);
    EXPECT_TRUE(lockstep.reattach_ok);
    EXPECT_GT(lockstep.pod1_dispatched, 0u);

    // Bit-identity: every per-query observable and every counter.
    EXPECT_EQ(lockstep.queries, threaded.queries);
    EXPECT_EQ(lockstep.reattach_ok, threaded.reattach_ok);
    EXPECT_EQ(lockstep.reattach_done_at, threaded.reattach_done_at);
    EXPECT_EQ(lockstep.accepted, threaded.accepted);
    EXPECT_EQ(lockstep.completed, threaded.completed);
    EXPECT_EQ(lockstep.lost, threaded.lost);
    EXPECT_EQ(lockstep.failovers, threaded.failovers);
    EXPECT_EQ(lockstep.pod0_dispatched, threaded.pod0_dispatched);
    EXPECT_EQ(lockstep.pod1_dispatched, threaded.pod1_dispatched);
    EXPECT_EQ(lockstep.events_fired, threaded.events_fired);
    EXPECT_EQ(lockstep.end_time, threaded.end_time);

    // Observability exports, byte-for-byte: merged deterministic
    // metrics, the stitched span timeline (span ids are per-shard
    // deterministic), and every cadence snapshot the hub took.
    EXPECT_FALSE(lockstep.metrics_json.empty());
    EXPECT_NE(lockstep.trace_json.find("\"query\""), std::string::npos);
    EXPECT_FALSE(lockstep.snapshots.empty());
    EXPECT_EQ(lockstep.metrics_json, threaded.metrics_json);
    EXPECT_EQ(lockstep.trace_json, threaded.trace_json);
    EXPECT_EQ(lockstep.snapshots, threaded.snapshots);
}

// ---------------------------------------------------- batched injection

FederationTestbed::Config TwoPodConfig() {
    FederationTestbed::Config config;
    config.pod_count = 2;
    config.pod.ring_count = 1;
    config.pod.fabric.device.configure_time = Milliseconds(5);
    return config;
}

TEST(BatchedInjection, OpenLoopBatchPreservesSimulatedMetrics) {
    auto run = [](int batch) {
        FederationTestbed bed(TwoPodConfig());
        EXPECT_TRUE(bed.DeployAndSettle());
        FederatedOpenLoopInjector::Config load;
        load.rate_qps = 30'000.0;
        load.duration = Milliseconds(30);
        load.arrival_batch = batch;
        FederatedOpenLoopInjector injector(&bed.dispatcher(),
                                           &bed.simulator(), Rng(23), load);
        return injector.Run();
    };
    const LoadResult one = run(1);
    const LoadResult eight = run(8);
    EXPECT_GT(one.completed, 0u);
    EXPECT_EQ(one.completed, eight.completed);
    EXPECT_EQ(one.timeouts, eight.timeouts);
    EXPECT_EQ(one.rejected, eight.rejected);
    EXPECT_EQ(one.elapsed, eight.elapsed);
    ASSERT_EQ(one.latency_us.count(), eight.latency_us.count());
    // Same RNG draw order, same arrival times, same completions: the
    // latency samples match exactly, not just in aggregate.
    EXPECT_EQ(one.latency_us.samples(), eight.latency_us.samples());
}

TEST(BatchedInjection, PhasedBatchPreservesSimulatedMetrics) {
    auto run = [](int batch) {
        FederationTestbed bed(TwoPodConfig());
        EXPECT_TRUE(bed.DeployAndSettle());
        FederatedPhasedInjector::Config load;
        load.rate_qps = 20'000.0;
        load.duration = Milliseconds(40);
        load.phase_offsets = {Milliseconds(20)};
        load.slo = Milliseconds(2);
        load.arrival_batch = batch;
        FederatedPhasedInjector injector(&bed.dispatcher(),
                                         &bed.simulator(), load);
        return injector.Run();
    };
    const auto one = run(1);
    const auto eight = run(8);
    EXPECT_GT(one.completed, 0u);
    EXPECT_EQ(one.accepted, eight.accepted);
    EXPECT_EQ(one.rejected, eight.rejected);
    EXPECT_EQ(one.completed, eight.completed);
    EXPECT_EQ(one.failed, eight.failed);
    ASSERT_EQ(one.phases.size(), eight.phases.size());
    for (std::size_t p = 0; p < one.phases.size(); ++p) {
        EXPECT_EQ(one.phases[p].arrivals, eight.phases[p].arrivals) << p;
        EXPECT_EQ(one.phases[p].accepted, eight.phases[p].accepted) << p;
        EXPECT_EQ(one.phases[p].completed, eight.phases[p].completed) << p;
        EXPECT_EQ(one.phases[p].completed_in_slo,
                  eight.phases[p].completed_in_slo)
            << p;
        EXPECT_EQ(one.phases[p].latency_us.samples(),
                  eight.phases[p].latency_us.samples())
            << p;
    }
}

// ------------------------------------------------------ pool migration

// The parallel runtime frees pooled blocks on whichever shard thread
// drops the last reference. The arena contract (object_pool.h): the
// block migrates to the releasing thread's free list and is recycled
// there; slab storage is immortal, so the migration is safe.
TEST(ObjectPool, BlocksMigrateToTheReleasingThread) {
    struct Payload {
        std::uint64_t a;
        std::uint64_t b;
    };
    auto first = MakePooled<Payload>(Payload{1, 2});
    void* raw = first.get();
    std::thread worker([&] {
        // Last reference dropped on the worker: the block enters the
        // worker's arena...
        first.reset();
        // ...and the worker's next allocation of the same size class
        // recycles exactly that block.
        auto second = MakePooled<Payload>(Payload{3, 4});
        EXPECT_EQ(static_cast<void*>(second.get()), raw);
        EXPECT_EQ(second->a, 3u);
    });
    worker.join();
    // The main thread's arena refills fresh storage, unaffected.
    auto third = MakePooled<Payload>(Payload{5, 6});
    EXPECT_EQ(third->a, 5u);
}

}  // namespace
}  // namespace catapult::service
