// Unit tests for common/units.h: time, bandwidth and frequency math.

#include <gtest/gtest.h>

#include "common/units.h"

namespace catapult {
namespace {

TEST(Units, TimeConstructors) {
    EXPECT_EQ(Picoseconds(1), 1);
    EXPECT_EQ(Nanoseconds(1), 1'000);
    EXPECT_EQ(Microseconds(1), 1'000'000);
    EXPECT_EQ(Milliseconds(1), 1'000'000'000);
    EXPECT_EQ(Seconds(1), 1'000'000'000'000);
}

TEST(Units, TimeConversions) {
    EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
    EXPECT_DOUBLE_EQ(ToMicroseconds(Microseconds(7)), 7.0);
    EXPECT_DOUBLE_EQ(ToNanoseconds(Nanoseconds(9)), 9.0);
    EXPECT_DOUBLE_EQ(ToMicroseconds(Nanoseconds(1500)), 1.5);
}

TEST(Units, FormatTimePicksUnits) {
    EXPECT_EQ(FormatTime(Picoseconds(5)), "5 ps");
    EXPECT_NE(FormatTime(Nanoseconds(5)).find("ns"), std::string::npos);
    EXPECT_NE(FormatTime(Microseconds(5)).find("us"), std::string::npos);
    EXPECT_NE(FormatTime(Milliseconds(5)).find("ms"), std::string::npos);
    EXPECT_NE(FormatTime(Seconds(5)).find(" s"), std::string::npos);
}

TEST(Units, DataSizes) {
    EXPECT_EQ(KiB(1), 1024);
    EXPECT_EQ(MiB(1), 1024 * 1024);
    EXPECT_EQ(GiB(2), 2ll * 1024 * 1024 * 1024);
}

TEST(Bandwidth, SerializationTime) {
    // 10 Gb/s: 1250 bytes = 1 us.
    const Bandwidth link = Bandwidth::GigabitsPerSecond(10.0);
    EXPECT_EQ(link.SerializationTime(1250), Microseconds(1));
}

TEST(Bandwidth, SerializationRoundsUpToAtLeastOnePicosecond) {
    const Bandwidth fast = Bandwidth::GigabitsPerSecond(1000.0);
    EXPECT_GE(fast.SerializationTime(1), 1);
    EXPECT_EQ(fast.SerializationTime(0), 0);
}

TEST(Bandwidth, ScaledAppliesEccTax) {
    // §3.2: ECC on the SL3 links costs 20% of peak bandwidth.
    const Bandwidth raw = Bandwidth::GigabitsPerSecond(20.0);
    const Bandwidth effective = raw.Scaled(0.8);
    EXPECT_DOUBLE_EQ(effective.gigabits_per_second(), 16.0);
    EXPECT_GT(effective.SerializationTime(10'000),
              raw.SerializationTime(10'000));
}

TEST(Bandwidth, MegabytesPerSecond) {
    const Bandwidth b = Bandwidth::MegabytesPerSecond(100.0);
    EXPECT_DOUBLE_EQ(b.bytes_per_second(), 100e6);
}

TEST(Frequency, PeriodExactForCommonClocks) {
    EXPECT_EQ(Frequency::MHz(200.0).Period(), Picoseconds(5'000));
    EXPECT_EQ(Frequency::MHz(250.0).Period(), Picoseconds(4'000));
    EXPECT_EQ(Frequency::GHz(1.0).Period(), Picoseconds(1'000));
}

TEST(Frequency, TableOneClocks) {
    // All Table 1 clock frequencies must be representable.
    EXPECT_EQ(Frequency::MHz(150.0).Period(), Picoseconds(6'667));
    EXPECT_EQ(Frequency::MHz(125.0).Period(), Picoseconds(8'000));
    EXPECT_EQ(Frequency::MHz(180.0).Period(), Picoseconds(5'556));
    EXPECT_EQ(Frequency::MHz(166.0).Period(), Picoseconds(6'024));
    EXPECT_EQ(Frequency::MHz(175.0).Period(), Picoseconds(5'714));
}

TEST(Frequency, CyclesSpan) {
    // §4.2: 1,600 cycles at 200 MHz is the 8 us macropipeline budget.
    EXPECT_EQ(Frequency::MHz(200.0).Cycles(1'600), Microseconds(8));
}

}  // namespace
}  // namespace catapult
