// Unit tests for the conservative parallel simulation group: epoch
// barriers, canonical mailbox drain order, boundary-exact delivery,
// skip-ahead, daemon termination and teardown with in-flight traffic.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator_group.h"

namespace catapult::sim {
namespace {

SimulatorGroup::Config GroupConfig(int shards, Time epoch,
                                   bool parallel = false,
                                   int max_threads = 0) {
    SimulatorGroup::Config config;
    config.shards = shards;
    config.epoch = epoch;
    config.parallel = parallel;
    config.max_threads = max_threads;
    return config;
}

TEST(SimulatorGroup, CrossShardMessageFiresAtDeliverTime) {
    SimulatorGroup group(GroupConfig(2, Microseconds(10)));
    Time fired_at = -1;
    group.shard(1).ScheduleAt(Microseconds(3), [&] {
        group.Post(1, 0, group.shard(1).Now() + Microseconds(10),
                   [&] { fired_at = group.shard(0).Now(); });
    });
    group.Run();
    EXPECT_EQ(fired_at, Microseconds(13));
}

// A message landing exactly on an epoch barrier is the boundary case of
// the half-open epoch contract: posted during [S, S+W) with
// deliver_at == S+W, it must be visible the instant the next epoch
// opens, not one epoch late and not (incorrectly) inside the epoch that
// produced it.
TEST(SimulatorGroup, MessageExactlyOnEpochBoundary) {
    const Time epoch = Microseconds(10);
    SimulatorGroup group(GroupConfig(2, epoch));
    Time fired_at = -1;
    std::vector<std::string> order;
    group.shard(1).ScheduleAt(0, [&] {
        order.push_back("post");
        group.Post(1, 0, epoch, [&] {
            fired_at = group.shard(0).Now();
            order.push_back("deliver");
        });
    });
    // A local event on the destination shard at the same tick and
    // priority as the barrier delivery: it was scheduled before the
    // mailbox drained, so it keeps its earlier sequence number and
    // fires first.
    group.shard(0).ScheduleAt(epoch, [&] { order.push_back("local"); },
                              EventPriority::kDeliver);
    group.Run();
    EXPECT_EQ(fired_at, epoch);
    EXPECT_EQ(order,
              (std::vector<std::string>{"post", "local", "deliver"}));
}

// Canonical drain order: same deliver time and priority from different
// source shards must arrive ordered by source shard id, then by
// per-source posting sequence — identically in lock-step and parallel
// mode.
std::vector<int> TieOrderRun(bool parallel) {
    SimulatorGroup group(
        GroupConfig(4, Microseconds(5), parallel, /*max_threads=*/4));
    std::vector<int> arrivals;
    const Time deliver = Microseconds(5);
    for (int s = 1; s < 4; ++s) {
        group.shard(s).ScheduleAt(0, [&group, &arrivals, s, deliver] {
            // Two messages per source; both land at the same barrier
            // tick on shard 0. Tag = source * 10 + message index.
            group.Post(s, 0, deliver,
                       [&arrivals, s] { arrivals.push_back(s * 10); });
            group.Post(s, 0, deliver,
                       [&arrivals, s] { arrivals.push_back(s * 10 + 1); });
        });
    }
    group.Run();
    return arrivals;
}

TEST(SimulatorGroup, MailboxTieOrderIsCanonical) {
    const std::vector<int> expected{10, 11, 20, 21, 30, 31};
    EXPECT_EQ(TieOrderRun(/*parallel=*/false), expected);
    EXPECT_EQ(TieOrderRun(/*parallel=*/true), expected);
}

TEST(SimulatorGroup, ParallelMatchesLockstepOnChatter) {
    // A multi-epoch ping-pong across three pods and a coordinator;
    // each shard records its own transcript (shards may not share
    // mutable state mid-run in parallel mode) and the parallel run must
    // reproduce the lock-step transcripts byte for byte.
    auto run = [](bool parallel) {
        SimulatorGroup group(GroupConfig(4, Microseconds(7), parallel,
                                         /*max_threads=*/4));
        std::vector<std::vector<std::uint64_t>> per_shard(4);
        // Coordinator sprays a token to each pod; each pod bounces it
        // back twice with pod-dependent local work in between.
        group.shard(0).ScheduleAt(0, [&] {
            for (int s = 1; s < 4; ++s) {
                group.Post(0, s, Microseconds(7), [&, s] {
                    Simulator& pod = group.shard(s);
                    per_shard[static_cast<std::size_t>(s)].push_back(
                        static_cast<std::uint64_t>(s) * 1000000 +
                        static_cast<std::uint64_t>(pod.Now()));
                    for (int r = 0; r < 2; ++r) {
                        pod.ScheduleAfter(Microseconds(s), [&, s] {
                            group.Post(
                                s, 0,
                                group.shard(s).Now() + Microseconds(7),
                                [&, s] {
                                    per_shard[0].push_back(
                                        static_cast<std::uint64_t>(s) +
                                        static_cast<std::uint64_t>(
                                            group.shard(0).Now()) *
                                            10);
                                });
                        });
                    }
                });
            }
        });
        group.Run();
        std::vector<std::uint64_t> transcript;
        for (const auto& t : per_shard) {
            transcript.insert(transcript.end(), t.begin(), t.end());
        }
        return transcript;
    };
    const auto lockstep = run(false);
    const auto threaded = run(true);
    EXPECT_EQ(lockstep.size(), 9u);  // 3 pod receipts + 6 bounces.
    EXPECT_EQ(lockstep, threaded);
}

TEST(SimulatorGroup, SkipAheadCrossesIdleGaps) {
    // One event now, the next a simulated second later: Run() must
    // jump the gap instead of spinning ~200k empty 5µs epochs — pinned
    // indirectly by the fired count (2 events, not epochs * overhead)
    // and exactly by the fire times.
    SimulatorGroup group(GroupConfig(2, Microseconds(5)));
    std::vector<Time> fired;
    group.shard(1).ScheduleAt(Microseconds(1),
                              [&] { fired.push_back(group.shard(1).Now()); });
    group.shard(1).ScheduleAt(Seconds(1),
                              [&] { fired.push_back(group.shard(1).Now()); });
    const std::uint64_t total = group.Run();
    EXPECT_EQ(total, 2u);
    EXPECT_EQ(fired, (std::vector<Time>{Microseconds(1), Seconds(1)}));
}

TEST(SimulatorGroup, DaemonsDoNotKeepRunAlive) {
    // A self-rescheduling daemon heartbeat on shard 1 must not prevent
    // Run() from terminating once foreground work drains.
    SimulatorGroup group(GroupConfig(2, Microseconds(10)));
    int beats = 0;
    std::function<void()> beat = [&] {
        ++beats;
        group.shard(1).ScheduleDaemonAfter(Microseconds(1), [&] { beat(); });
    };
    group.shard(1).ScheduleDaemonAt(Microseconds(1), [&] { beat(); });
    bool foreground_done = false;
    group.shard(0).ScheduleAt(Microseconds(25), [&] {
        foreground_done = true;
    });
    group.Run();
    EXPECT_TRUE(foreground_done);
    EXPECT_GT(beats, 0);
}

TEST(SimulatorGroup, RunUntilFinalEpochIsInclusive) {
    SimulatorGroup group(GroupConfig(2, Microseconds(10)));
    bool at_horizon = false;
    bool beyond = false;
    group.shard(1).ScheduleAt(Microseconds(30), [&] { at_horizon = true; });
    group.shard(1).ScheduleAt(Microseconds(31), [&] { beyond = true; });
    group.RunUntil(Microseconds(30));
    EXPECT_TRUE(at_horizon);
    EXPECT_FALSE(beyond);
    EXPECT_EQ(group.Now(), Microseconds(30));
    group.Run();
    EXPECT_TRUE(beyond);
}

// Teardown pin: destroying the group while shards still hold pending
// cross-shard deliveries (scheduled beyond the last horizon) must
// destroy the undelivered closures — and whatever they own — without
// invoking them. ASan/LSan turn a leak or double-free here into a
// failure.
TEST(SimulatorGroup, TeardownWithInFlightMailboxTraffic) {
    auto payload = std::make_shared<int>(42);
    bool invoked = false;
    {
        SimulatorGroup group(
            GroupConfig(3, Microseconds(10), /*parallel=*/true,
                        /*max_threads=*/3));
        group.shard(1).ScheduleAt(Microseconds(1), [&, payload] {
            group.Post(1, 2, Microseconds(500), [&invoked, payload] {
                invoked = true;
            });
            group.Post(1, 0, Microseconds(500), [&invoked, payload] {
                invoked = true;
            });
        });
        // Stop long before the deliveries: the posts crossed the first
        // barrier and now sit queued on shards 0 and 2.
        // The posting event has fired (its copy died with it); the two
        // undelivered closures hold one reference each.
        group.RunUntil(Microseconds(20));
        EXPECT_EQ(payload.use_count(), 3);
    }
    EXPECT_FALSE(invoked);
    EXPECT_EQ(payload.use_count(), 1);
}

TEST(SimulatorGroup, PostOutsideRunAppliesDirectly) {
    SimulatorGroup group(GroupConfig(2, Microseconds(10)));
    // Outside Run() there is no epoch to respect: the message applies
    // directly, even at a delivery nearer than the epoch width.
    Time fired_at = -1;
    group.Post(0, 1, Microseconds(2), [&] { fired_at = group.shard(1).Now(); });
    group.Run();
    EXPECT_EQ(fired_at, Microseconds(2));
}

TEST(SimulatorGroup, EventsFiredAggregatesAcrossShards) {
    const std::uint64_t before = GlobalEventsFired();
    SimulatorGroup group(
        GroupConfig(4, Microseconds(5), /*parallel=*/true,
                    /*max_threads=*/4));
    for (int s = 0; s < 4; ++s) {
        for (int i = 0; i < 10; ++i) {
            group.shard(s).ScheduleAt(Microseconds(i + 1), [] {});
        }
    }
    const std::uint64_t fired = group.Run();
    EXPECT_EQ(fired, 40u);
    // Worker-shard deltas are adopted into the driving thread's
    // counter, so multi-shard runs report like single-simulator ones.
    EXPECT_EQ(GlobalEventsFired() - before, 40u);
}

// ---- Per-edge lookahead ----------------------------------------------

// A narrow edge must let its destination receive messages closer than
// the group's default epoch — and the reverse direction must keep its
// own, wider guarantee. Delivery times pin both.
TEST(SimulatorGroupEdges, AsymmetricMatrixDeliversPerEdge) {
    SimulatorGroup group(GroupConfig(2, Microseconds(10)));
    ASSERT_TRUE(group.SetEdgeLookahead(0, 1, Microseconds(2)));
    EXPECT_EQ(group.edge_lookahead(0, 1), Microseconds(2));
    EXPECT_EQ(group.edge_lookahead(1, 0), Microseconds(10));
    Time forward = -1;
    Time backward = -1;
    group.shard(0).ScheduleAt(Microseconds(5), [&] {
        group.Post(0, 1, group.shard(0).Now() + Microseconds(2), [&] {
            forward = group.shard(1).Now();
            group.Post(1, 0, group.shard(1).Now() + Microseconds(10),
                       [&] { backward = group.shard(0).Now(); });
        });
    });
    group.Run();
    EXPECT_EQ(forward, Microseconds(7));
    EXPECT_EQ(backward, Microseconds(17));
}

// The per-round bound is the min-plus closure of the edge matrix, not
// the raw matrix: with the direct 1 -> 2 edge severed, the 1 -> 0 -> 2
// relay still bounds how soon shard 2 can hear from shard 1.
TEST(SimulatorGroupEdges, ClosureFollowsRelayPath) {
    SimulatorGroup group(GroupConfig(3, Microseconds(10)));
    ASSERT_TRUE(
        group.SetEdgeLookahead(1, 2, SimulatorGroup::kUnreachable));
    ASSERT_TRUE(group.SetEdgeLookahead(1, 0, Microseconds(3)));
    ASSERT_TRUE(group.SetEdgeLookahead(0, 2, Microseconds(4)));
    EXPECT_EQ(group.edge_lookahead(1, 2), SimulatorGroup::kUnreachable);
    EXPECT_EQ(group.path_lookahead(1, 2), Microseconds(7));
    EXPECT_EQ(group.path_lookahead(1, 0), Microseconds(3));
}

// Tightest-incoming-edge advance: with a huge default epoch, a single
// narrow edge still delivers at its own pace, and a local event that
// predates the delivery keeps its place in time.
TEST(SimulatorGroupEdges, TightestIncomingEdgeGovernsAdvance) {
    SimulatorGroup group(GroupConfig(3, Microseconds(50)));
    ASSERT_TRUE(group.SetEdgeLookahead(0, 2, Microseconds(2)));
    std::vector<std::pair<int, Time>> fired;  // (tag, when)
    group.shard(2).ScheduleAt(Microseconds(1), [&] {
        fired.emplace_back(0, group.shard(2).Now());
    });
    group.shard(0).ScheduleAt(Microseconds(1), [&] {
        group.Post(0, 2, group.shard(0).Now() + Microseconds(2), [&] {
            fired.emplace_back(1, group.shard(2).Now());
        });
    });
    group.Run();
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], std::make_pair(0, Microseconds(1)));
    EXPECT_EQ(fired[1], std::make_pair(1, Microseconds(3)));
}

// Attach-time contract: before the first run an edge may narrow (the
// attach asserts what the path really guarantees); after the first run
// a narrower promise would retroactively invalidate already-executed
// rounds, so it is rejected. Same or wider is always accepted.
TEST(SimulatorGroupEdges, NarrowingRejectedOnceRunning) {
    SimulatorGroup group(GroupConfig(2, Microseconds(10)));
    EXPECT_TRUE(group.SetEdgeLookahead(0, 1, Microseconds(4)));
    group.shard(1).ScheduleAt(Microseconds(1), [] {});
    group.Run();
    EXPECT_FALSE(group.SetEdgeLookahead(0, 1, Microseconds(3)));
    EXPECT_EQ(group.edge_lookahead(0, 1), Microseconds(4));
    EXPECT_TRUE(group.SetEdgeLookahead(0, 1, Microseconds(4)));
    EXPECT_TRUE(group.SetEdgeLookahead(0, 1, Microseconds(9)));
    EXPECT_EQ(group.edge_lookahead(0, 1), Microseconds(9));
}

// Mutually unreachable shards decouple completely: each runs its local
// timeline to completion without epoch round-trips with the other.
TEST(SimulatorGroupEdges, UnreachableEdgesDecoupleShards) {
    SimulatorGroup group(GroupConfig(2, Microseconds(5)));
    ASSERT_TRUE(
        group.SetEdgeLookahead(0, 1, SimulatorGroup::kUnreachable));
    ASSERT_TRUE(
        group.SetEdgeLookahead(1, 0, SimulatorGroup::kUnreachable));
    std::vector<Time> fired0;
    std::vector<Time> fired1;
    for (int i = 1; i <= 3; ++i) {
        group.shard(0).ScheduleAt(Seconds(i),
                                  [&] { fired0.push_back(group.shard(0).Now()); });
        group.shard(1).ScheduleAt(Milliseconds(i),
                                  [&] { fired1.push_back(group.shard(1).Now()); });
    }
    EXPECT_EQ(group.Run(), 6u);
    EXPECT_EQ(fired0,
              (std::vector<Time>{Seconds(1), Seconds(2), Seconds(3)}));
    EXPECT_EQ(fired1, (std::vector<Time>{Milliseconds(1), Milliseconds(2),
                                         Milliseconds(3)}));
}

// Work-stealing parity: more shards than executors, an asymmetric edge
// matrix, multi-round chatter — the threaded run must reproduce the
// lock-step transcript byte for byte.
TEST(SimulatorGroupEdges, WorkStealingMatchesLockstep) {
    auto run = [](bool parallel) {
        SimulatorGroup group(GroupConfig(8, Microseconds(20), parallel,
                                         /*max_threads=*/3));
        for (int s = 1; s < 8; ++s) {
            // Inject edge narrower than the epoch (legal pre-run),
            // completion edge per-pod asymmetric.
            EXPECT_TRUE(group.SetEdgeLookahead(0, s, Microseconds(2 + s)));
            EXPECT_TRUE(
                group.SetEdgeLookahead(s, 0, Microseconds(17 - s)));
        }
        std::vector<std::vector<std::uint64_t>> per_shard(8);
        group.shard(0).ScheduleAt(0, [&] {
            for (int s = 1; s < 8; ++s) {
                const Time out = group.edge_lookahead(0, s);
                group.Post(0, s, group.shard(0).Now() + out, [&, s] {
                    Simulator& pod = group.shard(s);
                    per_shard[static_cast<std::size_t>(s)].push_back(
                        static_cast<std::uint64_t>(s) * 1000000 +
                        static_cast<std::uint64_t>(pod.Now()));
                    for (int r = 0; r < 3; ++r) {
                        pod.ScheduleAfter(Microseconds(s + r), [&, s] {
                            const Time back = group.edge_lookahead(s, 0);
                            group.Post(
                                s, 0, group.shard(s).Now() + back,
                                [&, s] {
                                    per_shard[0].push_back(
                                        static_cast<std::uint64_t>(s) +
                                        static_cast<std::uint64_t>(
                                            group.shard(0).Now()) *
                                            10);
                                });
                        });
                    }
                });
            }
        });
        group.Run();
        std::vector<std::uint64_t> transcript;
        for (const auto& t : per_shard) {
            transcript.insert(transcript.end(), t.begin(), t.end());
        }
        return transcript;
    };
    const auto lockstep = run(false);
    const auto threaded = run(true);
    EXPECT_EQ(lockstep.size(), 28u);  // 7 receipts + 21 bounces.
    EXPECT_EQ(lockstep, threaded);
}

}  // namespace
}  // namespace catapult::sim
