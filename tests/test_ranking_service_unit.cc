// Direct unit tests for service/ranking_service.h: the service wired
// by hand onto a simulator + fabric + hosts + mapping manager, without
// the PodTestbed (which the integration suite already exercises).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "fabric/catapult_fabric.h"
#include "host/host_server.h"
#include "mgmt/mapping_manager.h"
#include "mgmt/pod_scheduler.h"
#include "rank/document_generator.h"
#include "service/ranking_service.h"
#include "sim/simulator.h"

namespace catapult::service {
namespace {

/** Minimal hand-wired harness: exactly the RankingService constructor
 * dependencies, nothing else (no health monitor, no failure injector,
 * no testbed). */
class DirectHarness {
  public:
    explicit DirectHarness(RankingService::Config service_config) {
        Rng rng(0xD12EC7ull);
        fabric::CatapultFabric::Config fabric_config;
        fabric_config.device.configure_time = Milliseconds(5);
        fabric_ = std::make_unique<fabric::CatapultFabric>(
            &simulator_, rng.Fork(), fabric_config);
        for (int i = 0; i < fabric_->node_count(); ++i) {
            hosts_storage_.push_back(std::make_unique<host::HostServer>(
                &simulator_, "unit" + std::to_string(i), &fabric_->shell(i)));
            hosts_storage_.back()->driver().AssignThreads(8);
            hosts_.push_back(hosts_storage_.back().get());
        }
        mapping_manager_ = std::make_unique<mgmt::MappingManager>(
            &simulator_, fabric_.get(), hosts_);
        // The torus region comes from the scheduler, not a caller-picked
        // row — the same path ServicePool uses.
        scheduler_ = std::make_unique<mgmt::PodScheduler>(fabric_->topology());
        service_ = std::make_unique<RankingService>(
            &simulator_, fabric_.get(), hosts_, mapping_manager_.get(),
            scheduler_->PlaceRing(RankingService::kRingLength),
            service_config);
    }

    bool Deploy() {
        bool deployed = false;
        service_->Deploy([&](bool ok) { deployed = ok; });
        simulator_.Run();
        return deployed;
    }

    sim::Simulator& simulator() { return simulator_; }
    fabric::CatapultFabric& fabric() { return *fabric_; }
    RankingService& service() { return *service_; }

  private:
    sim::Simulator simulator_;
    std::unique_ptr<fabric::CatapultFabric> fabric_;
    std::vector<std::unique_ptr<host::HostServer>> hosts_storage_;
    std::vector<host::HostServer*> hosts_;
    std::unique_ptr<mgmt::MappingManager> mapping_manager_;
    std::unique_ptr<mgmt::PodScheduler> scheduler_;
    std::unique_ptr<RankingService> service_;
};

RankingService::Config SmallConfig(bool compute_scores = false) {
    RankingService::Config config;
    // Small models keep ensemble generation fast in unit tests.
    config.models.model.expression_count = 300;
    config.models.model.tree_count = 900;
    config.compute_scores = compute_scores;
    return config;
}

TEST(RankingServiceUnit, ConstructionMapsTheRing) {
    DirectHarness harness(SmallConfig());
    RankingService& service = harness.service();

    // Eight distinct pod-local nodes, all within the pod.
    std::vector<bool> seen(
        static_cast<std::size_t>(harness.fabric().node_count()), false);
    for (int i = 0; i < RankingService::kRingLength; ++i) {
        const int node = service.RingNode(i);
        ASSERT_GE(node, 0);
        ASSERT_LT(node, harness.fabric().node_count());
        EXPECT_FALSE(seen[static_cast<std::size_t>(node)])
            << "ring position " << i << " reuses node " << node;
        seen[static_cast<std::size_t>(node)] = true;
    }

    // Stage placement is the §4.2 macropipeline: FE at the head, the
    // spare at the tail, and StageAt/RingIndexOf are inverses.
    EXPECT_EQ(service.StageAt(0), rank::PipelineStage::kFeatureExtraction);
    EXPECT_EQ(service.StageAt(RankingService::kRingLength - 1),
              rank::PipelineStage::kSpare);
    for (int i = 0; i < RankingService::kRingLength; ++i) {
        EXPECT_EQ(service.RingIndexOf(service.StageAt(i)), i);
    }
}

TEST(RankingServiceUnit, CountersStartAtZero) {
    DirectHarness harness(SmallConfig());
    const RankingService::Counters& counters = harness.service().counters();
    EXPECT_EQ(counters.injected, 0u);
    EXPECT_EQ(counters.completed, 0u);
    EXPECT_EQ(counters.timeouts, 0u);
    EXPECT_EQ(counters.model_reloads, 0u);
}

TEST(RankingServiceUnit, DeployConfiguresAllRingNodes) {
    DirectHarness harness(SmallConfig());
    ASSERT_TRUE(harness.Deploy());
    for (int i = 0; i < RankingService::kRingLength; ++i) {
        EXPECT_TRUE(
            harness.fabric().device(harness.service().RingNode(i)).active());
    }
}

TEST(RankingServiceUnit, SingleRequestScoresEndToEnd) {
    DirectHarness harness(SmallConfig(/*compute_scores=*/true));
    ASSERT_TRUE(harness.Deploy());

    rank::DocumentGenerator generator(7);
    rank::CompressedRequest request = generator.Next();
    request.query.model_id = 0;

    ScoreResult result;
    int completions = 0;
    ASSERT_EQ(harness.service().Inject(0, 0, request,
                                       [&](const ScoreResult& r) {
                                           result = r;
                                           ++completions;
                                       }),
              host::SendStatus::kOk);
    harness.simulator().Run();

    ASSERT_EQ(completions, 1);
    EXPECT_TRUE(result.ok);
    EXPECT_TRUE(std::isfinite(result.score));
    EXPECT_GT(result.latency, 0);
    EXPECT_NE(result.trace_id, 0u);
}

TEST(RankingServiceUnit, InjectOnSlotBypassesThreadMapping) {
    DirectHarness harness(SmallConfig());
    ASSERT_TRUE(harness.Deploy());

    rank::DocumentGenerator generator(11);
    rank::CompressedRequest request = generator.Next();
    request.query.model_id = 0;

    bool completed = false;
    ASSERT_EQ(harness.service().InjectOnSlot(
                  2, /*slot=*/0, request,
                  [&](const ScoreResult& r) { completed = r.ok; }),
              host::SendStatus::kOk);
    harness.simulator().Run();
    EXPECT_TRUE(completed);
}

TEST(RankingServiceUnit, CountersTrackInjectionAndCompletion) {
    DirectHarness harness(SmallConfig());
    ASSERT_TRUE(harness.Deploy());

    rank::DocumentGenerator generator(3);
    constexpr int kDocs = 16;
    int completions = 0;
    for (int i = 0; i < kDocs; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        // Unique (ring position, thread) per document: a driver slot
        // holds one outstanding request at a time.
        ASSERT_EQ(harness.service().Inject(
                      i % RankingService::kRingLength,
                      i / RankingService::kRingLength, request,
                      [&](const ScoreResult& r) {
                          if (r.ok) ++completions;
                      }),
                  host::SendStatus::kOk);
    }
    harness.simulator().Run();

    const RankingService::Counters& counters = harness.service().counters();
    EXPECT_EQ(counters.injected, static_cast<std::uint64_t>(kDocs));
    EXPECT_EQ(counters.completed, static_cast<std::uint64_t>(kDocs));
    EXPECT_EQ(counters.timeouts, 0u);
    EXPECT_EQ(completions, kDocs);
}

TEST(RankingServiceUnit, StageServiceTimesArePositive) {
    DirectHarness harness(SmallConfig());
    ASSERT_TRUE(harness.Deploy());

    rank::DocumentGenerator generator(5);
    rank::CompressedRequest request = generator.Next();
    RankingService& service = harness.service();
    for (int i = 0; i < RankingService::kRingLength; ++i) {
        const rank::PipelineStage stage = service.StageAt(i);
        if (stage == rank::PipelineStage::kSpare) continue;
        EXPECT_GT(service.StageServiceTime(stage, request, /*model_id=*/0), 0)
            << "stage at ring position " << i;
        EXPECT_GT(service.StageOutputBytes(stage, /*model_id=*/0), 0)
            << "stage at ring position " << i;
    }
}

}  // namespace
}  // namespace catapult::service
