// Unit tests for the document-scoring ensemble (§4.6).

#include <gtest/gtest.h>

#include "rank/scorer.h"

namespace catapult::rank {
namespace {

FeatureStore MakeStore(float scale = 1.0f) {
    FeatureStore store;
    for (std::uint32_t i = 0; i < kFeatureUniverse; i += 5) {
        store.Set(i, scale * static_cast<float>(i % 23));
    }
    return store;
}

TEST(DecisionTree, LeafOnlyTree) {
    DecisionTree tree;
    TreeNode leaf;
    leaf.feature = TreeNode::kLeaf;
    leaf.leaf_value = 0.25f;
    tree.nodes.push_back(leaf);
    FeatureStore store;
    EXPECT_EQ(tree.Evaluate(store), 0.25f);
}

TEST(DecisionTree, BranchesOnThreshold) {
    DecisionTree tree;
    TreeNode root;
    root.feature = 10;
    root.threshold = 5.0f;
    root.left = 1;
    root.right = 2;
    tree.nodes.push_back(root);
    TreeNode left;
    left.feature = TreeNode::kLeaf;
    left.leaf_value = -1.0f;
    tree.nodes.push_back(left);
    TreeNode right;
    right.feature = TreeNode::kLeaf;
    right.leaf_value = 1.0f;
    tree.nodes.push_back(right);

    FeatureStore store;
    store.Set(10, 3.0f);
    EXPECT_EQ(tree.Evaluate(store), -1.0f);
    store.Set(10, 7.0f);
    EXPECT_EQ(tree.Evaluate(store), 1.0f);
    store.Set(10, 5.0f);  // boundary goes left
    EXPECT_EQ(tree.Evaluate(store), -1.0f);
}

TEST(ScoringEnsemble, ShardsPreserveTotalScore) {
    // The 3-chip split must not change the score: shard partials sum in
    // pipeline order, identical to a single evaluator (§4.6).
    const ScoringEnsemble ensemble = GenerateEnsemble(99, 300);
    const FeatureStore store = MakeStore();
    float sharded = 0.0f;
    for (int s = 0; s < ScoringEnsemble::kShardCount; ++s) {
        sharded += ensemble.shard(s).PartialScore(store);
    }
    EXPECT_EQ(sharded, ensemble.Score(store));
}

TEST(ScoringEnsemble, DeterministicForSeed) {
    const ScoringEnsemble a = GenerateEnsemble(7, 100);
    const ScoringEnsemble b = GenerateEnsemble(7, 100);
    const FeatureStore store = MakeStore();
    EXPECT_EQ(a.Score(store), b.Score(store));
    const ScoringEnsemble c = GenerateEnsemble(8, 100);
    EXPECT_NE(a.Score(store), c.Score(store));
}

TEST(ScoringEnsemble, ScoreDependsOnFeatures) {
    const ScoringEnsemble ensemble = GenerateEnsemble(11, 200);
    const FeatureStore a = MakeStore(1.0f);
    const FeatureStore b = MakeStore(2.0f);
    EXPECT_NE(ensemble.Score(a), ensemble.Score(b));
}

TEST(ScoringEnsemble, TreeCountSharding) {
    const ScoringEnsemble ensemble = GenerateEnsemble(13, 100);
    EXPECT_EQ(ensemble.total_trees(), 100);
    // Contiguous sharding: 34 + 34 + 32.
    EXPECT_EQ(ensemble.shard(0).tree_count(), 34);
    EXPECT_EQ(ensemble.shard(1).tree_count(), 34);
    EXPECT_EQ(ensemble.shard(2).tree_count(), 32);
}

TEST(ScorerShard, ServiceTimeScalesWithTrees) {
    const ScoringEnsemble small = GenerateEnsemble(17, 300);
    const ScoringEnsemble large = GenerateEnsemble(17, 6'000);
    EXPECT_LT(small.shard(0).ServiceTime(), large.shard(0).ServiceTime());
    // A production shard (2,000 trees) fits the 8 us macropipeline budget.
    EXPECT_LT(large.shard(0).ServiceTime(), Microseconds(8));
}

TEST(ScorerShard, ModelBytesProportionalToNodes) {
    const ScoringEnsemble ensemble = GenerateEnsemble(19, 500);
    const auto& shard = ensemble.shard(0);
    EXPECT_EQ(shard.ModelBytes(), shard.total_nodes() * 8);
    EXPECT_GT(shard.total_nodes(), shard.tree_count());
}

TEST(ScorerShard, EmptyShardScoresZero) {
    ScorerShard shard;
    FeatureStore store;
    EXPECT_EQ(shard.PartialScore(store), 0.0f);
    EXPECT_EQ(shard.ModelBytes(), 0);
}

}  // namespace
}  // namespace catapult::rank
