// Pod-level orchestration: PodScheduler placement, QueryDispatcher
// policies, and the multi-ring ServicePool (deploy, sharding, drain/
// redirect on failure, spare rotation recovery).

#include <gtest/gtest.h>

#include <set>

#include "mgmt/pod_scheduler.h"
#include "rank/document_generator.h"
#include "service/load_generator.h"
#include "service/query_dispatcher.h"
#include "service/testbed.h"

namespace catapult::service {
namespace {

// ---------------------------------------------------------------- scheduler

TEST(PodScheduler, PlacesDisjointRingsUntilPodIsFull) {
    mgmt::PodScheduler scheduler(6, 8);
    std::set<int> rows;
    for (int k = 0; k < 6; ++k) {
        const auto placement = scheduler.PlaceRing(8);
        ASSERT_TRUE(placement.valid()) << "ring " << k;
        EXPECT_EQ(placement.length, 8);
        EXPECT_TRUE(rows.insert(placement.row).second)
            << "row " << placement.row << " granted twice";
    }
    EXPECT_EQ(scheduler.free_nodes(), 0);
    // Seventh ring: the pod is full.
    EXPECT_FALSE(scheduler.PlaceRing(8).valid());
    EXPECT_EQ(scheduler.counters().placements, 6u);
    EXPECT_EQ(scheduler.counters().rejections, 1u);
}

TEST(PodScheduler, RejectsOverlapAndOutOfPodRequests) {
    mgmt::PodScheduler scheduler(6, 8);
    ASSERT_TRUE(scheduler.PlaceRingAt(2, 0, 8).valid());
    // Any overlap with row 2 is rejected, including wrapped ones.
    EXPECT_FALSE(scheduler.PlaceRingAt(2, 0, 8).valid());
    EXPECT_FALSE(scheduler.PlaceRingAt(2, 5, 4).valid());
    // Out-of-pod requests never grant.
    EXPECT_FALSE(scheduler.PlaceRingAt(6, 0, 8).valid());
    EXPECT_FALSE(scheduler.PlaceRingAt(-1, 0, 8).valid());
    EXPECT_FALSE(scheduler.PlaceRingAt(0, 0, 9).valid());
    // Other rows still free.
    EXPECT_TRUE(scheduler.RowFree(3));
    EXPECT_TRUE(scheduler.PlaceRingAt(3, 0, 8).valid());
}

TEST(PodScheduler, ReleaseReclaimsTheRegion) {
    mgmt::PodScheduler scheduler(6, 8);
    const auto a = scheduler.PlaceRing(8);
    const auto b = scheduler.PlaceRing(8);
    ASSERT_TRUE(a.valid() && b.valid());
    EXPECT_FALSE(scheduler.RowFree(a.row));
    ASSERT_TRUE(scheduler.Release(a));
    EXPECT_TRUE(scheduler.RowFree(a.row));
    // Double release is refused; the freed row is granted again.
    EXPECT_FALSE(scheduler.Release(a));
    const auto c = scheduler.PlaceRing(8);
    ASSERT_TRUE(c.valid());
    EXPECT_EQ(c.row, a.row);
}

TEST(PodScheduler, ReleaseRefusesRegionsThatAreNotExactGrants) {
    // A misaligned region spanning two live grants must not free nodes
    // out from under them.
    mgmt::PodScheduler scheduler(6, 8);
    ASSERT_TRUE(scheduler.PlaceRingAt(0, 0, 4).valid());
    ASSERT_TRUE(scheduler.PlaceRingAt(0, 4, 4).valid());
    EXPECT_FALSE(scheduler.Release(mgmt::RingPlacement{0, 2, 4}));
    EXPECT_EQ(scheduler.occupied_nodes(), 8);
    // The whole row is occupied but was never granted as one region.
    EXPECT_FALSE(scheduler.Release(mgmt::RingPlacement{0, 0, 8}));
    // The exact grants release fine.
    EXPECT_TRUE(scheduler.Release(mgmt::RingPlacement{0, 0, 4}));
    EXPECT_TRUE(scheduler.Release(mgmt::RingPlacement{0, 4, 4}));
    EXPECT_EQ(scheduler.occupied_nodes(), 0);
}

TEST(PodScheduler, PacksPartialRingsOntoOneRow) {
    // Sub-row regions pack side by side (elasticity below ring size).
    mgmt::PodScheduler scheduler(6, 8);
    const auto a = scheduler.PlaceRing(4);
    const auto b = scheduler.PlaceRing(4);
    ASSERT_TRUE(a.valid() && b.valid());
    EXPECT_EQ(a.row, 0);
    EXPECT_EQ(b.row, 0);
    EXPECT_EQ(b.head_col, 4);
    EXPECT_EQ(scheduler.PlaceRing(8).row, 1);
}

// --------------------------------------------------------------- dispatcher

TEST(QueryDispatcher, RoundRobinCyclesAndSkipsDrained) {
    QueryDispatcher dispatcher(DispatchPolicy::kRoundRobin, 6);
    std::vector<RingView> rings{{true, 0, 0}, {true, 0, 1}, {true, 0, 2}};
    EXPECT_EQ(dispatcher.Pick(rings), 0);
    EXPECT_EQ(dispatcher.Pick(rings), 1);
    EXPECT_EQ(dispatcher.Pick(rings), 2);
    EXPECT_EQ(dispatcher.Pick(rings), 0);
    rings[1].available = false;
    EXPECT_EQ(dispatcher.Pick(rings), 2);
    EXPECT_EQ(dispatcher.Pick(rings), 0);
    EXPECT_EQ(dispatcher.Pick(rings), 2);
}

TEST(QueryDispatcher, NoRingAvailableReturnsMinusOne) {
    QueryDispatcher dispatcher(DispatchPolicy::kLeastInFlight, 6);
    std::vector<RingView> rings{{false, 0, 0}, {false, 0, 1}};
    EXPECT_EQ(dispatcher.Pick(rings), -1);
    EXPECT_EQ(dispatcher.counters().no_ring_available, 1u);
}

TEST(QueryDispatcher, LeastInFlightPicksIdlestRing) {
    QueryDispatcher dispatcher(DispatchPolicy::kLeastInFlight, 6);
    std::vector<RingView> rings{{true, 7, 0}, {true, 2, 1}, {true, 5, 2}};
    EXPECT_EQ(dispatcher.Pick(rings), 1);
    rings[1].available = false;
    EXPECT_EQ(dispatcher.Pick(rings), 2);
}

TEST(QueryDispatcher, InjectorLocalityPrefersNearbyRowWithTorusWrap) {
    QueryDispatcher dispatcher(DispatchPolicy::kInjectorLocality, 6);
    std::vector<RingView> rings{{true, 0, 1}, {true, 0, 5}};
    // Row 0 wraps to row 5 at distance 1; row 1 is also distance 1 —
    // tie broken by load.
    rings[0].in_flight = 3;
    EXPECT_EQ(dispatcher.Pick(rings, /*preferred_row=*/0), 1);
    // Injector on row 2: ring at row 1 is strictly closer.
    EXPECT_EQ(dispatcher.Pick(rings, /*preferred_row=*/2), 0);
    // No preference: falls back to least-in-flight.
    EXPECT_EQ(dispatcher.Pick(rings, /*preferred_row=*/-1), 1);
}

// --------------------------------------------------------------------- pool

PodTestbed::Config PoolConfig(int rings) {
    PodTestbed::Config config;
    config.service.models.model.expression_count = 300;
    config.service.models.model.tree_count = 900;
    config.fabric.device.configure_time = Milliseconds(10);
    config.host.soft_reboot_duration = Milliseconds(200);
    config.host.hard_reboot_duration = Milliseconds(500);
    config.host.crash_reboot_delay = Milliseconds(50);
    config.ring_count = rings;
    return config;
}

TEST(ServicePool, DeployConfiguresEveryRingOnItsOwnRegion) {
    PodTestbed bed(PoolConfig(3));
    ASSERT_TRUE(bed.DeployAndSettle());
    ASSERT_EQ(bed.pool().ring_count(), 3);
    std::set<int> nodes;
    for (int k = 0; k < 3; ++k) {
        EXPECT_TRUE(bed.pool().ring_available(k));
        for (int i = 0; i < RankingService::kRingLength; ++i) {
            const int node = bed.pool().ring(k).RingNode(i);
            EXPECT_TRUE(nodes.insert(node).second)
                << "node " << node << " serves two rings";
            EXPECT_TRUE(bed.fabric().device(node).active());
        }
    }
    EXPECT_EQ(bed.scheduler().occupied_nodes(), 24);
}

TEST(ServicePool, MappingManagerResolvesRolesOfEveryDeployedRing) {
    // One spec is deployed per ring (serialized); the role map must
    // stay cumulative so earlier rings' roles remain resolvable.
    PodTestbed bed(PoolConfig(3));
    ASSERT_TRUE(bed.DeployAndSettle());
    for (int k = 0; k < 3; ++k) {
        const std::string head_role =
            "bing.ranking/ring" + std::to_string(k) + "/rank." +
            ToString(rank::PipelineStage::kFeatureExtraction);
        EXPECT_EQ(bed.mapping_manager().NodeOfRole(head_role),
                  bed.pool().ring(k).RingNode(0))
            << head_role;
        EXPECT_FALSE(
            bed.mapping_manager().RoleAtNode(bed.pool().ring(k).RingNode(3))
                .empty())
            << "ring " << k;
    }
}

TEST(ServicePool, ClosedLoopLoadSpreadsAcrossRings) {
    PodTestbed bed(PoolConfig(3));
    ASSERT_TRUE(bed.DeployAndSettle());

    PoolClosedLoopInjector::Config load;
    load.concurrency = 24;
    load.documents = 240;
    PoolClosedLoopInjector injector(&bed.pool(), load);
    const LoadResult result = injector.Run();
    EXPECT_EQ(result.completed, 240u);
    EXPECT_EQ(result.timeouts, 0u);
    // Least-in-flight sharding keeps every ring busy: no ring handled
    // less than a quarter of its fair share.
    for (int k = 0; k < 3; ++k) {
        EXPECT_GE(bed.pool().ring(k).counters().completed, 240u / 3 / 4)
            << "ring " << k << " starved";
    }
    const auto total = bed.pool().AggregateRingCounters();
    EXPECT_EQ(total.completed, 240u);
}

TEST(ServicePool, InjectFromPrefersTheLocalRing) {
    PodTestbed::Config config = PoolConfig(2);
    config.policy = DispatchPolicy::kInjectorLocality;
    PodTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    // Inject from a node on ring 1's own row: locality must pick ring 1
    // and enter at that node's column.
    RankingService& ring1 = bed.pool().ring(1);
    const int injector_node = ring1.RingNode(3);
    rank::DocumentGenerator generator(17);
    for (int i = 0; i < 6; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        ASSERT_EQ(bed.pool().InjectFrom(injector_node, i, request, nullptr),
                  host::SendStatus::kOk);
        bed.simulator().Run();
    }
    EXPECT_EQ(ring1.counters().completed, 6u);
    EXPECT_EQ(bed.pool().ring(0).counters().completed, 0u);
}

// Satellite: multi-ring failover. One ring's stage node dies via the
// FailureInjector; the dispatcher keeps completing documents on the
// surviving rings while the failed ring rotates its spare in, and the
// recovered ring rejoins rotation afterwards.
TEST(ServicePool, FailoverKeepsServingWhileFailedRingRotates) {
    PodTestbed bed(PoolConfig(3));
    ASSERT_TRUE(bed.DeployAndSettle());

    // Kill ring 1's FFE1 node with a surprise maintenance reboot.
    const int failed_ring = 1;
    const int failed_position = 2;
    const int failed_node = bed.pool().ring(failed_ring).RingNode(failed_position);
    bed.failure_injector().ScheduleMachineReboot(
        failed_node, bed.simulator().Now() + Milliseconds(1));

    // The aggregator notices and drains the ring while the Service
    // Manager rotates the spare in (§4.2).
    bool recovered = false;
    bed.simulator().ScheduleAfter(Milliseconds(1), [&] {
        bed.pool().RecoverRing(failed_ring, failed_position,
                               [&](bool ok) { recovered = ok; });
    });

    // Steady query traffic throughout the incident window.
    rank::DocumentGenerator generator(41);
    int completed = 0, failed = 0;
    for (int i = 0; i < 60; ++i) {
        bed.simulator().ScheduleAfter(
            Microseconds(500) * i + Milliseconds(2), [&, i] {
                rank::CompressedRequest request = generator.Next();
                request.query.model_id = 0;
                const auto status = bed.pool().Inject(
                    i % 32, request, [&](const ScoreResult& r) {
                        if (r.ok) {
                            ++completed;
                        } else {
                            ++failed;
                        }
                    });
                if (status != host::SendStatus::kOk) ++failed;
            });
    }
    bed.simulator().Run();

    ASSERT_TRUE(recovered);
    EXPECT_TRUE(bed.pool().ring_available(failed_ring));
    // Every document injected after the drain completed on a survivor.
    EXPECT_EQ(completed, 60);
    EXPECT_EQ(failed, 0);
    EXPECT_GT(bed.pool().counters().redirected, 0u);
    // The spare absorbed the lost stage on the failed ring.
    EXPECT_EQ(bed.pool().ring(failed_ring).StageAt(failed_position),
              rank::PipelineStage::kSpare);

    // The rebooted machine's FPGA came back RX-halted (§3.5); the
    // Mapping Manager reconfigures it in place so the node rejoins the
    // fabric as the ring's spare.
    bool reconfigured = false;
    bed.mapping_manager().ReconfigureInPlace(
        failed_node, [&](bool ok) { reconfigured = ok; });
    bed.simulator().Run();
    ASSERT_TRUE(reconfigured);

    // The recovered ring takes traffic again: drain the others and
    // push one document through ring 1 alone.
    bed.pool().SetRingAvailable(0, false);
    bed.pool().SetRingAvailable(2, false);
    rank::CompressedRequest request = generator.Next();
    request.query.model_id = 0;
    bool ok_after = false;
    ASSERT_EQ(bed.pool().Inject(0, request,
                                [&](const ScoreResult& r) { ok_after = r.ok; }),
              host::SendStatus::kOk);
    bed.simulator().Run();
    EXPECT_TRUE(ok_after);
}

TEST(ServicePool, RequestingMoreRingsThanThePodHoldsFailsDeploy) {
    // 7 rings on a 6-row pod: placement falls short and the deployment
    // reports failure instead of silently serving fewer rings.
    PodTestbed bed(PoolConfig(7));
    EXPECT_FALSE(bed.DeployAndSettle());
    EXPECT_EQ(bed.pool().ring_count(), 6);
    EXPECT_EQ(bed.scheduler().counters().rejections, 1u);
}

TEST(ServicePool, AllRingsDrainedRejectsInjection) {
    PodTestbed bed(PoolConfig(2));
    ASSERT_TRUE(bed.DeployAndSettle());
    bed.pool().SetRingAvailable(0, false);
    bed.pool().SetRingAvailable(1, false);
    rank::DocumentGenerator generator(3);
    rank::CompressedRequest request = generator.Next();
    EXPECT_EQ(bed.pool().Inject(0, request, nullptr),
              host::SendStatus::kTimeout);
    EXPECT_EQ(bed.pool().counters().rejected, 1u);
}

}  // namespace
}  // namespace catapult::service
