// Test entry point: silence the simulator's stderr logging so test
// output stays readable (failure-injection tests provoke WARN spam by
// design). Set CATAPULT_TEST_LOG=info (or trace/debug/warn/error) to
// see component logs while debugging a single test.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "common/log.h"

int main(int argc, char** argv) {
    ::testing::InitGoogleTest(&argc, argv);
    catapult::LogLevel level = catapult::LogLevel::kOff;
    if (const char* env = std::getenv("CATAPULT_TEST_LOG")) {
        if (std::strcmp(env, "trace") == 0) level = catapult::LogLevel::kTrace;
        else if (std::strcmp(env, "debug") == 0) level = catapult::LogLevel::kDebug;
        else if (std::strcmp(env, "info") == 0) level = catapult::LogLevel::kInfo;
        else if (std::strcmp(env, "warn") == 0) level = catapult::LogLevel::kWarn;
        else if (std::strcmp(env, "error") == 0) level = catapult::LogLevel::kError;
    }
    catapult::Logger::set_level(level);
    return RUN_ALL_TESTS();
}
