// Test entry point: silence the simulator's stderr logging so test
// output stays readable (failure-injection tests provoke WARN spam by
// design).

#include <gtest/gtest.h>

#include "common/log.h"

int main(int argc, char** argv) {
    ::testing::InitGoogleTest(&argc, argv);
    catapult::Logger::set_level(catapult::LogLevel::kOff);
    return RUN_ALL_TESTS();
}
