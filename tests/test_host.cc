// Unit tests for the host server and slot DMA driver (§3.1, §3.4).

#include <gtest/gtest.h>

#include "fpga/fpga_device.h"
#include "host/host_server.h"
#include "host/slot_dma_channel.h"
#include "shell/shell.h"
#include "sim/simulator.h"

namespace catapult::host {
namespace {

/** Echo role: reflects every request as a response on the same slot. */
class EchoRole : public shell::Role {
  public:
    explicit EchoRole(shell::Shell* shell) : shell_(shell) {}
    void OnPacket(shell::PacketPtr packet) override {
        auto response = shell::MakePacket(
            shell::PacketType::kScoringResponse, shell_->node(),
            packet->source, 64, packet->trace_id);
        response->slot = packet->slot;
        shell_->SendFromRole(std::move(response));
    }
    std::string RoleName() const override { return "echo"; }

  private:
    shell::Shell* shell_;
};

struct HostRig {
    sim::Simulator sim;
    fpga::FpgaDevice device{&sim, "dev", Rng(1)};
    shell::Shell shell{&sim, 0, "shell", &device, Rng(2)};
    HostServer host{&sim, "server0", &shell};
    EchoRole echo{&shell};

    HostRig() {
        shell.SetRole(&echo);
        shell.ReleaseRxHalt();
        device.flash().InstallImage(fpga::FlashSlot::kApplication,
                                    fpga::GoldenBitstream());
    }
};

TEST(SlotDmaChannel, SendAndReceive) {
    HostRig rig;
    SendStatus status = SendStatus::kTimeout;
    shell::PacketPtr response;
    auto packet = shell::MakePacket(shell::PacketType::kScoringRequest, 0, 0,
                                    6'500, /*trace_id=*/5);
    rig.host.driver().Send(0, packet, [&](SendStatus s, shell::PacketPtr p) {
        status = s;
        response = std::move(p);
    });
    rig.sim.Run();
    EXPECT_EQ(status, SendStatus::kOk);
    ASSERT_NE(response, nullptr);
    EXPECT_EQ(response->trace_id, 5u);
    EXPECT_EQ(rig.host.driver().counters().responses, 1u);
}

TEST(SlotDmaChannel, SlotBusyRejected) {
    HostRig rig;
    auto first = shell::MakePacket(shell::PacketType::kScoringRequest, 0, 0, 64);
    auto second = shell::MakePacket(shell::PacketType::kScoringRequest, 0, 0, 64);
    EXPECT_EQ(rig.host.driver().Send(0, first, [](SendStatus, shell::PacketPtr) {}),
              SendStatus::kOk);
    EXPECT_EQ(rig.host.driver().Send(0, second, [](SendStatus, shell::PacketPtr) {}),
              SendStatus::kSlotBusy);
    rig.sim.Run();
}

TEST(SlotDmaChannel, OversizedRejected) {
    HostRig rig;
    auto packet = shell::MakePacket(shell::PacketType::kScoringRequest, 0, 0,
                                    shell::kDmaSlotBytes + 1);
    EXPECT_EQ(rig.host.driver().Send(0, packet,
                                     [](SendStatus, shell::PacketPtr) {}),
              SendStatus::kBadRequest);
}

TEST(SlotDmaChannel, TimeoutWhenNoResponse) {
    HostRig rig;
    rig.shell.SetRole(nullptr);  // nobody answers
    SendStatus status = SendStatus::kOk;
    auto packet = shell::MakePacket(shell::PacketType::kScoringRequest, 0, 0, 64);
    rig.host.driver().Send(3, packet, [&](SendStatus s, shell::PacketPtr) {
        status = s;
    });
    rig.sim.Run();
    // §3.2: "the host will time out and divert the request to a
    // higher-level failure handling protocol."
    EXPECT_EQ(status, SendStatus::kTimeout);
    EXPECT_EQ(rig.host.driver().counters().timeouts, 1u);
    // The slot is reusable afterwards.
    EXPECT_FALSE(rig.host.driver().SlotBusy(3));
}

TEST(SlotDmaChannel, ThreadSlotPartitioning) {
    HostRig rig;
    EXPECT_EQ(rig.host.driver().AssignThreads(16), 4);
    EXPECT_EQ(rig.host.driver().SlotFor(0), 0);
    EXPECT_EQ(rig.host.driver().SlotFor(1), 4);
    EXPECT_EQ(rig.host.driver().SlotFor(15, 3), 63);
}

TEST(SlotDmaChannel, ManyOutstandingRequests) {
    HostRig rig;
    int responses = 0;
    for (int slot = 0; slot < shell::kDmaSlotCount; ++slot) {
        auto packet = shell::MakePacket(shell::PacketType::kScoringRequest,
                                        0, 0, 1'000,
                                        static_cast<std::uint64_t>(slot));
        EXPECT_EQ(rig.host.driver().Send(
                      slot, packet,
                      [&](SendStatus s, shell::PacketPtr) {
                          if (s == SendStatus::kOk) ++responses;
                      }),
                  SendStatus::kOk);
    }
    rig.sim.Run();
    EXPECT_EQ(responses, shell::kDmaSlotCount);
}

TEST(HostServer, ReconfigureMasksNmi) {
    HostRig rig;
    bool done = false;
    rig.host.ReconfigureFromFlash(fpga::FlashSlot::kApplication,
                                  [&](bool ok) { done = ok; });
    rig.sim.Run();
    EXPECT_TRUE(done);
    // Proper masking: no crash, server stays up (§3.4).
    EXPECT_EQ(rig.host.state(), ServerState::kRunning);
    EXPECT_EQ(rig.host.counters().nmi_crashes, 0u);
}

TEST(HostServer, UnmaskedSurpriseRemovalCrashesHost) {
    HostRig rig;
    // Bypass the driver: reconfigure the shell directly, as a buggy
    // or malicious agent would, without masking the NMI.
    rig.shell.Reconfigure(fpga::FlashSlot::kApplication, true, [](bool) {});
    EXPECT_EQ(rig.host.state(), ServerState::kCrashed);
    EXPECT_EQ(rig.host.counters().nmi_crashes, 1u);
    rig.sim.Run();
    // The crash self-heals through a reboot.
    EXPECT_EQ(rig.host.state(), ServerState::kRunning);
}

TEST(HostServer, SoftRebootRestoresService) {
    HostRig rig;
    bool rebooted = false;
    rig.host.SoftReboot([&] { rebooted = true; });
    EXPECT_FALSE(rig.host.responsive());
    rig.sim.Run();
    EXPECT_TRUE(rebooted);
    EXPECT_TRUE(rig.host.responsive());
    // The FPGA came back configured (power cycle loads the app image).
    EXPECT_EQ(rig.device.state(), fpga::DeviceState::kActive);
}

TEST(HostServer, HardRebootTakesLonger) {
    HostRig rig;
    Time soft_done = 0, hard_done = 0;
    rig.host.SoftReboot([&] { soft_done = rig.sim.Now(); });
    rig.sim.Run();
    const Time t0 = rig.sim.Now();
    rig.host.HardReboot([&] { hard_done = rig.sim.Now(); });
    rig.sim.Run();
    EXPECT_GT(hard_done - t0, soft_done);
}

TEST(HostServer, FlagForServiceIsTerminal) {
    HostRig rig;
    rig.host.FlagForService();
    EXPECT_FALSE(rig.host.responsive());
    EXPECT_EQ(rig.host.state(), ServerState::kFlaggedForService);
}

}  // namespace
}  // namespace catapult::host
