// The autonomic health plane (§3.3, §3.5): telemetry bus, heartbeat
// watchdog, reboot-ladder edge cases, hysteresis, and the end-to-end
// detect -> drain -> rotate -> rejoin loop with no explicit
// Investigate or RecoverRing call anywhere in a test body.

#include <gtest/gtest.h>

#include <vector>

#include "mgmt/telemetry_bus.h"
#include "rank/document_generator.h"
#include "service/load_generator.h"
#include "service/testbed.h"

namespace catapult::service {
namespace {

// ------------------------------------------------------------------ bus

TEST(TelemetryBus, PublishDeliversToSubscribersWithTimestamp) {
    sim::Simulator sim;
    mgmt::TelemetryBus bus(&sim);
    std::vector<mgmt::TelemetryEvent> seen_a;
    std::vector<mgmt::TelemetryEvent> seen_b;
    const auto id_a = bus.Subscribe(
        [&](const mgmt::TelemetryEvent& e) { seen_a.push_back(e); });
    bus.Subscribe([&](const mgmt::TelemetryEvent& e) { seen_b.push_back(e); });
    EXPECT_EQ(bus.subscriber_count(), 2);

    sim.ScheduleAt(Milliseconds(5), [&] {
        bus.Publish(7, mgmt::TelemetryKind::kLinkCrcError);
    });
    sim.Run();
    ASSERT_EQ(seen_a.size(), 1u);
    EXPECT_EQ(seen_a[0].node, 7);
    EXPECT_EQ(seen_a[0].kind, mgmt::TelemetryKind::kLinkCrcError);
    EXPECT_EQ(seen_a[0].timestamp, Milliseconds(5));

    bus.Unsubscribe(id_a);
    EXPECT_EQ(bus.subscriber_count(), 1);
    bus.Publish(3, mgmt::TelemetryKind::kDmaStall);
    EXPECT_EQ(seen_a.size(), 1u);  // unsubscribed
    EXPECT_EQ(seen_b.size(), 2u);
    EXPECT_EQ(bus.counters().published, 2u);
    EXPECT_EQ(bus.counters().delivered, 3u);
}

TEST(TelemetryBus, ScopedSubscriptionUnsubscribesOnDestruction) {
    sim::Simulator sim;
    mgmt::TelemetryBus bus(&sim);
    int seen = 0;
    {
        auto subscription = bus.SubscribeScoped(
            [&](const mgmt::TelemetryEvent&) { ++seen; });
        EXPECT_TRUE(subscription.active());
        EXPECT_EQ(bus.subscriber_count(), 1);
        bus.Publish(0, mgmt::TelemetryKind::kDmaStall);
        EXPECT_EQ(seen, 1);
        // Moving the handle keeps the one subscription alive.
        mgmt::TelemetrySubscription moved = std::move(subscription);
        EXPECT_TRUE(moved.active());
        EXPECT_FALSE(subscription.active());
        bus.Publish(0, mgmt::TelemetryKind::kDmaStall);
        EXPECT_EQ(seen, 2);
    }
    // Handle destroyed: the callback (whose captures may be dead) can
    // never be invoked again.
    EXPECT_EQ(bus.subscriber_count(), 0);
    bus.Publish(0, mgmt::TelemetryKind::kDmaStall);
    EXPECT_EQ(seen, 2);
}

TEST(TelemetryBus, DestroyedHealthMonitorIsNeverInvoked) {
    // Regression: tearing a monitor down while its bus lives (a pod
    // leaving a federation) must drop the subscription; publishing a
    // critical event afterwards would otherwise call into freed memory
    // (ASan job covers the dangling-callback half).
    PodTestbed bed;  // default pod: fabric + bus, health plane wired
    ASSERT_TRUE(bed.DeployAndSettle());
    mgmt::TelemetryBus bus(&bed.simulator());
    {
        mgmt::HealthMonitor monitor(&bed.simulator(), &bed.fabric(),
                                    bed.hosts());
        monitor.AttachTelemetry(&bus);
        EXPECT_EQ(bus.subscriber_count(), 1);
    }
    EXPECT_EQ(bus.subscriber_count(), 0);
    bus.Publish(5, mgmt::TelemetryKind::kTemperatureShutdown);
    EXPECT_EQ(bus.counters().delivered, 0u);
}

TEST(TelemetryBus, EventsCarryThePublishingPodsId) {
    sim::Simulator sim;
    mgmt::TelemetryBus bus(&sim, /*pod_id=*/3);
    mgmt::TelemetryEvent seen;
    auto subscription = bus.SubscribeScoped(
        [&](const mgmt::TelemetryEvent& event) { seen = event; });
    bus.Publish(9, mgmt::TelemetryKind::kLinkDown);
    EXPECT_EQ(seen.pod, 3);
    EXPECT_EQ(seen.node, 9);
    EXPECT_EQ(bus.pod_id(), 3);
}

TEST(TelemetryBus, CriticalKindsAreTheHardFaults) {
    EXPECT_TRUE(
        mgmt::IsCriticalTelemetry(mgmt::TelemetryKind::kTemperatureShutdown));
    EXPECT_TRUE(
        mgmt::IsCriticalTelemetry(mgmt::TelemetryKind::kDramCalibrationLoss));
    EXPECT_FALSE(mgmt::IsCriticalTelemetry(mgmt::TelemetryKind::kLinkCrcError));
    EXPECT_FALSE(
        mgmt::IsCriticalTelemetry(mgmt::TelemetryKind::kApplicationError));
}

// ----------------------------------------------------------- test rig

/**
 * Fast reboot/deploy times plus a watchdog cadence tight enough that
 * detection happens within tens of simulated milliseconds.
 */
PodTestbed::Config PlaneConfig(int rings = 1) {
    PodTestbed::Config config;
    config.service.models.model.expression_count = 300;
    config.service.models.model.tree_count = 900;
    config.fabric.device.configure_time = Milliseconds(10);
    config.host.soft_reboot_duration = Milliseconds(200);
    config.host.hard_reboot_duration = Milliseconds(500);
    config.host.crash_reboot_delay = Milliseconds(50);
    config.ring_count = rings;
    config.health.heartbeat_period = Milliseconds(10);
    config.health.query_timeout = Milliseconds(50);
    config.health.investigation_cooldown = Milliseconds(100);
    return config;
}

int InjectBatch(PodTestbed& bed, int count, std::uint64_t seed) {
    rank::DocumentGenerator generator(seed);
    int completed = 0;
    for (int i = 0; i < count; ++i) {
        rank::CompressedRequest request = generator.Next();
        request.query.model_id = 0;
        bed.pool().Inject(i % 16, request, [&](const ScoreResult& r) {
            if (r.ok) ++completed;
        });
    }
    bed.simulator().Run();
    return completed;
}

// ------------------------------------------------- heartbeat watchdog

TEST(HealthPlane, WatchdogInvestigatesCrashedHostWithoutBeingAsked) {
    PodTestbed::Config config = PlaneConfig();
    // No self-heal before the ladder: the crash reboot never fires
    // within the test window.
    config.host.crash_reboot_delay = Seconds(10);
    PodTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    const int node = 9;  // idle node off the ring's torus row
    bed.host(node).CrashAndReboot("unattended crash");
    bed.simulator().RunUntil(bed.simulator().Now() + Seconds(2));

    const auto& counters = bed.health_monitor().counters();
    EXPECT_GT(counters.heartbeats_sent, 0u);
    EXPECT_GE(counters.heartbeat_misses, 3u);
    EXPECT_GE(counters.auto_investigations, 1u);
    // §3.5 ladder: the soft reboot brought it back.
    ASSERT_EQ(bed.health_monitor().failed_machine_list().size(), 1u);
    const auto& report = bed.health_monitor().failed_machine_list()[0];
    EXPECT_EQ(report.node, node);
    EXPECT_EQ(report.fault, mgmt::FaultType::kUnresponsiveRecovered);
    EXPECT_TRUE(report.needed_soft_reboot);
    EXPECT_FALSE(report.needed_hard_reboot);
    EXPECT_TRUE(bed.host(node).responsive());
}

TEST(HealthPlane, LadderEscalatesToHardRebootWhenSoftFails) {
    PodTestbed::Config config = PlaneConfig();
    config.host.crash_reboot_delay = Seconds(10);
    PodTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    const int node = 9;
    bed.host(node).BreakBoot(/*soft_failures=*/1);
    bed.host(node).CrashAndReboot("disk corruption");
    bed.simulator().RunUntil(bed.simulator().Now() + Seconds(2));

    ASSERT_EQ(bed.health_monitor().failed_machine_list().size(), 1u);
    const auto& report = bed.health_monitor().failed_machine_list()[0];
    EXPECT_EQ(report.fault, mgmt::FaultType::kUnresponsiveRecovered);
    EXPECT_TRUE(report.needed_soft_reboot);
    EXPECT_TRUE(report.needed_hard_reboot);
    EXPECT_TRUE(bed.host(node).responsive());
    EXPECT_FALSE(bed.health_monitor().node_dead(node));
}

TEST(HealthPlane, LadderExhaustedFlagsForServiceAndStopsPinging) {
    PodTestbed::Config config = PlaneConfig();
    config.host.crash_reboot_delay = Seconds(10);
    PodTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    const int node = 9;
    bed.host(node).BreakBoot(/*soft_failures=*/100, /*permanent=*/true);
    bed.host(node).CrashAndReboot("dead motherboard");
    bed.simulator().RunUntil(bed.simulator().Now() + Seconds(2));

    ASSERT_EQ(bed.health_monitor().failed_machine_list().size(), 1u);
    EXPECT_EQ(bed.health_monitor().failed_machine_list()[0].fault,
              mgmt::FaultType::kUnresponsiveFatal);
    EXPECT_EQ(bed.host(node).state(), host::ServerState::kFlaggedForService);
    EXPECT_EQ(bed.health_monitor().counters().flagged_for_service, 1u);
    EXPECT_TRUE(bed.health_monitor().node_dead(node));

    // Dead machines wait for manual service: no more heartbeats, no
    // repeat investigations.
    const auto investigations =
        bed.health_monitor().counters().auto_investigations;
    bed.simulator().RunUntil(bed.simulator().Now() + Seconds(2));
    EXPECT_EQ(bed.health_monitor().counters().auto_investigations,
              investigations);
    EXPECT_EQ(bed.health_monitor().counters().flagged_for_service, 1u);
}

TEST(HealthPlane, FatalRingNodeIsRotatedOutAndNeverRejoinsRotation) {
    PodTestbed bed(PlaneConfig());
    ASSERT_TRUE(bed.DeployAndSettle());

    const int failed_position = 2;
    const int node = bed.service().RingNode(failed_position);
    bed.host(node).BreakBoot(/*soft_failures=*/100, /*permanent=*/true);
    bed.host(node).CrashAndReboot("dead motherboard");
    bed.simulator().RunUntil(bed.simulator().Now() + Seconds(3));

    // The plane flagged the machine and rotated its stage to the spare.
    EXPECT_EQ(bed.host(node).state(), host::ServerState::kFlaggedForService);
    EXPECT_GE(bed.pool().counters().auto_recoveries, 1u);
    EXPECT_EQ(bed.service().StageAt(failed_position),
              rank::PipelineStage::kSpare);
    EXPECT_TRUE(bed.pool().ring_available(0));

    // The dead server is skipped by the injection rotation: traffic
    // completes without it ever rejoining.
    EXPECT_EQ(InjectBatch(bed, 16, 7), 16);
    EXPECT_EQ(bed.host(node).state(), host::ServerState::kFlaggedForService);
}

// --------------------------------------------- telemetry-burst events

TEST(HealthPlane, TransientLinkFlapInvestigatesButDoesNotThrashTheRing) {
    PodTestbed bed(PlaneConfig());
    ASSERT_TRUE(bed.DeployAndSettle());

    // Count link-down events seen on the bus.
    int link_events = 0;
    bed.telemetry().Subscribe([&](const mgmt::TelemetryEvent& e) {
        if (e.kind == mgmt::TelemetryKind::kLinkDown) ++link_events;
    });

    // 5 ms flap on a mid-ring east link while documents stream through
    // it: every drop publishes, the burst marks the node suspect.
    const int node = bed.service().RingNode(3);
    bed.failure_injector().ScheduleLinkFlap(
        node, shell::Port::kEast, bed.simulator().Now() + Milliseconds(2),
        Milliseconds(5));

    rank::DocumentGenerator generator(13);
    int completed = 0;
    for (int i = 0; i < 60; ++i) {
        bed.simulator().ScheduleAfter(Microseconds(300) * i, [&, i] {
            rank::CompressedRequest request = generator.Next();
            request.query.model_id = 0;
            bed.service().Inject(i % 8, i % 16, request,
                                 [&](const ScoreResult& r) {
                                     if (r.ok) ++completed;
                                 });
        });
    }
    bed.simulator().RunUntil(bed.simulator().Now() + Seconds(1));

    // The burst was noticed and investigated — with zero heartbeat
    // misses (the host never went down)...
    EXPECT_GE(link_events, 3);
    EXPECT_GE(bed.health_monitor().counters().telemetry_events, 3u);
    EXPECT_GE(bed.health_monitor().counters().auto_investigations, 1u);
    EXPECT_EQ(bed.health_monitor().counters().heartbeat_misses, 0u);
    // ...but by the time the status query returned, the link had
    // relocked: hysteresis keeps the ring in rotation (no drain, no
    // rotation, no thrash).
    EXPECT_TRUE(bed.health_monitor().failed_machine_list().empty());
    EXPECT_EQ(bed.pool().counters().auto_recoveries, 0u);
    EXPECT_TRUE(bed.pool().ring_available(0));
    EXPECT_EQ(bed.service().StageAt(3), rank::PipelineStage::kCompression);
    // Both cable ends drop during the flap, so documents in flight or
    // queued behind the dark window time out; the post-relock tail
    // completes.
    EXPECT_GE(completed, 25);
}

TEST(HealthPlane, ThermalShutdownIsCriticalAndRecoversTheRing) {
    PodTestbed bed(PlaneConfig());
    ASSERT_TRUE(bed.DeployAndSettle());

    const int failed_position = 4;
    const int node = bed.service().RingNode(failed_position);
    bed.failure_injector().ScheduleThermalShutdown(
        node, bed.simulator().Now() + Milliseconds(1));
    bed.simulator().RunUntil(bed.simulator().Now() + Seconds(1));

    // One event — critical — was enough: no burst, no missed heartbeat.
    EXPECT_EQ(bed.health_monitor().counters().heartbeat_misses, 0u);
    ASSERT_FALSE(bed.health_monitor().failed_machine_list().empty());
    EXPECT_EQ(bed.health_monitor().failed_machine_list()[0].fault,
              mgmt::FaultType::kTemperatureShutdown);
    // The overheating node was rotated out; the ring serves on.
    EXPECT_GE(bed.pool().counters().auto_recoveries, 1u);
    EXPECT_EQ(bed.service().StageAt(failed_position),
              rank::PipelineStage::kSpare);
    EXPECT_TRUE(bed.pool().ring_available(0));
    EXPECT_EQ(InjectBatch(bed, 16, 11), 16);
}

TEST(HealthPlane, DramCalibrationLossIsCriticalAndRecoversTheRing) {
    PodTestbed bed(PlaneConfig());
    ASSERT_TRUE(bed.DeployAndSettle());

    const int failed_position = 6;
    const int node = bed.service().RingNode(failed_position);
    bed.failure_injector().ScheduleDramCalibrationFailure(
        node, /*channel=*/0, bed.simulator().Now() + Milliseconds(1));
    bed.simulator().RunUntil(bed.simulator().Now() + Seconds(1));

    ASSERT_FALSE(bed.health_monitor().failed_machine_list().empty());
    EXPECT_EQ(bed.health_monitor().failed_machine_list()[0].fault,
              mgmt::FaultType::kDramError);
    EXPECT_GE(bed.pool().counters().auto_recoveries, 1u);
    EXPECT_EQ(bed.service().StageAt(failed_position),
              rank::PipelineStage::kSpare);
    EXPECT_TRUE(bed.pool().ring_available(0));
}

TEST(HealthPlane, CriticalFaultDuringCooldownIsDeferredNotDropped) {
    PodTestbed bed(PlaneConfig());
    ASSERT_TRUE(bed.DeployAndSettle());

    const int failed_position = 4;
    const int node = bed.service().RingNode(failed_position);
    const Time start = bed.simulator().Now();

    // Put the node into investigation hysteresis first: a short CRC
    // salvo marks it suspect, the status query finds it healthy (the
    // events came straight off the bus, no real fault), and the kNone
    // conclusion opens the investigation cooldown.
    for (int i = 1; i <= 3; ++i) {
        bed.simulator().ScheduleAt(start + Milliseconds(i), [&, node] {
            bed.telemetry().Publish(node,
                                    mgmt::TelemetryKind::kLinkCrcError);
        });
    }
    // The real fault lands inside that cooldown (the status query waits
    // ethernet_latency + query_timeout, so the kNone conclusion lands
    // near 53 ms and the cooldown runs to ~153 ms). The thermal model
    // latches the excursion (one event per crossing, never repeated)
    // and the host keeps answering heartbeats, so only the deferred
    // re-suspicion can ever see it.
    bed.failure_injector().ScheduleThermalShutdown(node,
                                                   start + Milliseconds(80));
    bed.simulator().RunUntil(start + Seconds(2));

    EXPECT_GE(bed.health_monitor().counters().auto_investigations, 2u);
    ASSERT_FALSE(bed.health_monitor().failed_machine_list().empty());
    EXPECT_EQ(bed.health_monitor().failed_machine_list()[0].fault,
              mgmt::FaultType::kTemperatureShutdown);
    EXPECT_GE(bed.pool().counters().auto_recoveries, 1u);
    EXPECT_EQ(bed.service().StageAt(failed_position),
              rank::PipelineStage::kSpare);
    EXPECT_TRUE(bed.pool().ring_available(0));
}

TEST(HealthPlane, CriticalFaultDuringInvestigationIsCapturedExactlyOnce) {
    PodTestbed bed(PlaneConfig());
    ASSERT_TRUE(bed.DeployAndSettle());

    const int failed_position = 4;
    const int node = bed.service().RingNode(failed_position);
    const Time start = bed.simulator().Now();

    // Open an investigation with a CRC salvo, then land the real fault
    // while the status query is still outstanding (it waits
    // ethernet_latency + query_timeout ≈ 50 ms before reading health).
    for (int i = 1; i <= 3; ++i) {
        bed.simulator().ScheduleAt(start + Milliseconds(i), [&, node] {
            bed.telemetry().Publish(node,
                                    mgmt::TelemetryKind::kLinkCrcError);
        });
    }
    bed.failure_injector().ScheduleThermalShutdown(node,
                                                   start + Milliseconds(20));
    bed.simulator().RunUntil(start + Seconds(2));

    // The in-flight query observed the latched fault, so the parked
    // critical suspicion is satisfied: one investigation, one report,
    // one recovery — no duplicate re-investigation of the excursion.
    EXPECT_EQ(bed.health_monitor().counters().auto_investigations, 1u);
    ASSERT_EQ(bed.health_monitor().failed_machine_list().size(), 1u);
    EXPECT_EQ(bed.health_monitor().failed_machine_list()[0].fault,
              mgmt::FaultType::kTemperatureShutdown);
    EXPECT_EQ(bed.pool().counters().auto_recoveries, 1u);
    EXPECT_EQ(bed.service().StageAt(failed_position),
              rank::PipelineStage::kSpare);
    EXPECT_TRUE(bed.pool().ring_available(0));
}

TEST(HealthPlane, SecondFailureInRecoveryCooldownIsDeferredNotDropped) {
    PodTestbed::Config config = PlaneConfig();
    // No self-heal: each crashed host stays down until the ladder's
    // soft reboot brings it back.
    config.host.crash_reboot_delay = Seconds(10);
    PodTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    const int position_a = 2;
    const int position_b = 5;
    const int node_a = bed.service().RingNode(position_a);
    const int node_b = bed.service().RingNode(position_b);
    const Time start = bed.simulator().Now();

    bed.simulator().ScheduleAt(start + Milliseconds(1), [&] {
        bed.host(node_a).CrashAndReboot("incident A");
    });
    // Node B fails while the plane is still settling node A's ring:
    // its confirmed report lands mid-recovery or inside the rejoin
    // cooldown. Dropped, B's stage would time out forever — after the
    // soft reboot B answers heartbeats and no fresh telemetry fires —
    // so the report must be deferred and replayed.
    bed.simulator().ScheduleAt(start + Milliseconds(100), [&] {
        bed.host(node_b).CrashAndReboot("incident B");
    });
    bed.simulator().RunUntil(start + Seconds(5));

    EXPECT_GE(bed.pool().counters().suppressed_reports, 1u);
    EXPECT_EQ(bed.pool().counters().auto_recoveries, 2u);
    // The second rotation moved the spare role over B's position.
    EXPECT_EQ(bed.service().StageAt(position_b),
              rank::PipelineStage::kSpare);
    EXPECT_TRUE(bed.pool().ring_available(0));
    // The ring genuinely serves: a stranded (RX-halted) node at B's
    // old stage would surface here as lost documents.
    EXPECT_EQ(InjectBatch(bed, 16, 7), 16);
}

// ----------------------------------------------- stranded-node remap

TEST(HealthPlane, StrandedRebootedSpareIsReconfiguredInPlace) {
    // A manual (legacy-shim) RecoverRing rotates the crashed node out
    // before the watchdog concludes; when the node comes back it is a
    // spare with RX Halt still engaged. The plane's re-mapping fallback
    // — not the pool — restores it.
    PodTestbed bed(PlaneConfig());
    ASSERT_TRUE(bed.DeployAndSettle());

    const int failed_position = 5;
    const int node = bed.service().RingNode(failed_position);
    bed.host(node).CrashAndReboot("incident");
    bool recovered = false;
    bed.pool().RecoverRing(0, failed_position,
                           [&](bool ok) { recovered = ok; });
    bed.simulator().RunUntil(bed.simulator().Now() + Seconds(2));

    ASSERT_TRUE(recovered);
    EXPECT_EQ(bed.service().StageAt(failed_position),
              rank::PipelineStage::kSpare);
    EXPECT_TRUE(bed.host(node).responsive());
    // The watchdog-triggered investigation found the node healthy but
    // RX-halted after its unplanned reboot, and the Mapping Manager
    // reconfigured it in place — no manual ReconfigureInPlace call.
    EXPECT_FALSE(bed.fabric().shell(node).rx_halted());
    EXPECT_GE(bed.mapping_manager().counters().reconfigurations, 1u);
}

// ------------------------------------------------- acceptance (E2E)

TEST(HealthPlane, EndToEndAutonomicRingRecoveryUnderLoad) {
    // ISSUE 3 acceptance: a pool serving traffic, a FailureInjector
    // fault on a ring node, detection by heartbeat/telemetry, drain,
    // spare rotation, rejoin — with no explicit Investigate or
    // RecoverRing call in this test body.
    PodTestbed bed(PlaneConfig(/*rings=*/3));
    ASSERT_TRUE(bed.DeployAndSettle());

    const int failed_ring = 1;
    const int failed_position = 3;
    const int failed_node =
        bed.pool().ring(failed_ring).RingNode(failed_position);
    const Time fault_time = bed.simulator().Now() + Milliseconds(30);
    bed.failure_injector().ScheduleMachineReboot(failed_node, fault_time);

    Time drained_at = 0;
    Time recovered_at = 0;
    bed.pool().set_on_ring_drained([&](int ring) {
        if (ring == failed_ring && drained_at == 0) {
            drained_at = bed.simulator().Now();
        }
    });
    bed.pool().set_on_ring_recovered([&](int ring) {
        if (ring == failed_ring) recovered_at = bed.simulator().Now();
    });

    // Steady offered load across the incident: 300 documents, one
    // every 1.5 ms, spanning crash, detection, drain, and rejoin.
    constexpr int kDocuments = 300;
    rank::DocumentGenerator generator(41);
    int completed = 0;
    int failed = 0;
    for (int i = 0; i < kDocuments; ++i) {
        bed.simulator().ScheduleAfter(
            Microseconds(1500) * i + Milliseconds(1), [&, i] {
                rank::CompressedRequest request = generator.Next();
                request.query.model_id = 0;
                const auto status = bed.pool().Inject(
                    i % 32, request, [&](const ScoreResult& r) {
                        if (r.ok) {
                            ++completed;
                        } else {
                            ++failed;
                        }
                    });
                if (status != host::SendStatus::kOk) ++failed;
            });
    }
    bed.simulator().Run();

    // Detected and healed autonomically.
    EXPECT_GE(bed.health_monitor().counters().auto_investigations, 1u);
    EXPECT_EQ(bed.pool().counters().auto_recoveries, 1u);
    ASSERT_GT(drained_at, 0);
    ASSERT_GT(recovered_at, drained_at);
    // Detection latency: fault to drain within a handful of heartbeat
    // periods plus the status-query timeout.
    EXPECT_LT(drained_at - fault_time, Milliseconds(500));
    // All rings healthy at the end; the spare absorbed the lost stage.
    for (int k = 0; k < 3; ++k) {
        EXPECT_TRUE(bed.pool().ring_available(k)) << "ring " << k;
    }
    EXPECT_EQ(bed.pool().ring(failed_ring).StageAt(failed_position),
              rank::PipelineStage::kSpare);
    // Traffic kept flowing to survivors during the drain, and the pool
    // served at least the single-failure-adjusted target: only
    // documents in flight on the broken ring around the fault may be
    // lost.
    EXPECT_GT(bed.pool().counters().redirected, 0u);
    EXPECT_GE(completed, kDocuments - 32);
    EXPECT_LE(failed, 32);
}

}  // namespace
}  // namespace catapult::service
