// Observability plane: metric registry algebra, trace recorder and
// stitcher contracts, hub cadence on simulated time, and the end-to-end
// federation wiring — span parent/child integrity across a
// retry-onto-survivor failover, and the pod-blackout FDR postmortem
// landing in the stitched timeline.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/metric_registry.h"
#include "obs/metrics_hub.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "rank/document_generator.h"
#include "service/federation_testbed.h"

namespace catapult::obs {
namespace {

// ------------------------------------------------------ metric registry

TEST(MetricRegistry, FindOrCreateReturnsStablePointers) {
    MetricRegistry reg;
    Counter* c = reg.counter("a.count");
    Gauge* g = reg.gauge("a.level", GaugeMerge::kMax);
    Histogram* h = reg.histogram("a.latency_us");
    c->Inc(3);
    g->SetMax(7);
    h->Observe(4.0);
    // Second lookup is the same object; options on a later lookup are
    // ignored (first registration wins).
    EXPECT_EQ(reg.counter("a.count"), c);
    EXPECT_EQ(reg.gauge("a.level", GaugeMerge::kSum), g);
    EXPECT_EQ(reg.histogram("a.latency_us"), h);
    EXPECT_EQ(c->value(), 3u);
    EXPECT_EQ(g->value(), 7);
    EXPECT_EQ(reg.size(), 3u);
}

// The three shard populations the merge tests combine: overlapping and
// disjoint names, both gauge merge modes, histograms spanning buckets.
void FillA(MetricRegistry& r) {
    r.counter("shared.count")->Inc(5);
    r.counter("only_a.count")->Inc(2);
    r.gauge("shared.sum")->Set(10);
    r.gauge("shared.hwm", GaugeMerge::kMax)->Set(4);
    r.histogram("shared.hist")->Observe(1.5);
    r.histogram("shared.hist")->Observe(100.0);
}
void FillB(MetricRegistry& r) {
    r.counter("shared.count")->Inc(7);
    r.gauge("shared.sum")->Set(-3);
    r.gauge("shared.hwm", GaugeMerge::kMax)->Set(9);
    r.histogram("shared.hist")->Observe(0.25);
    r.histogram("only_b.hist")->Observe(2.0);
}
void FillC(MetricRegistry& r) {
    r.counter("shared.count")->Inc(1);
    r.counter("only_c.count", /*volatile_metric=*/true)->Inc(11);
    r.gauge("shared.sum")->Set(6);
    r.gauge("shared.hwm", GaugeMerge::kMax)->Set(2);
    r.histogram("shared.hist")->Observe(3.9);
}

TEST(MetricRegistry, MergeIsCommutative) {
    MetricRegistry ab;
    FillA(ab);
    {
        MetricRegistry b;
        FillB(b);
        ab.MergeFrom(b);
    }
    MetricRegistry ba;
    FillB(ba);
    {
        MetricRegistry a;
        FillA(a);
        ba.MergeFrom(a);
    }
    EXPECT_EQ(ab.ToJson(true), ba.ToJson(true));
}

TEST(MetricRegistry, MergeIsAssociative) {
    // (a ⊕ b) ⊕ c
    MetricRegistry left;
    FillA(left);
    {
        MetricRegistry b;
        FillB(b);
        left.MergeFrom(b);
        MetricRegistry c;
        FillC(c);
        left.MergeFrom(c);
    }
    // a ⊕ (b ⊕ c)
    MetricRegistry right;
    FillA(right);
    {
        MetricRegistry bc;
        FillB(bc);
        MetricRegistry c;
        FillC(c);
        bc.MergeFrom(c);
        right.MergeFrom(bc);
    }
    EXPECT_EQ(left.ToJson(true), right.ToJson(true));
    // Spot-check the merged values themselves.
    EXPECT_EQ(left.counter("shared.count")->value(), 13u);
    EXPECT_EQ(left.gauge("shared.sum")->value(), 13);
    EXPECT_EQ(left.gauge("shared.hwm")->value(), 9);
    EXPECT_EQ(left.histogram("shared.hist")->data().total(), 4);
}

TEST(MetricRegistry, VolatileMetricsExcludedFromDeterministicView) {
    MetricRegistry reg;
    reg.counter("stable.count")->Inc(1);
    reg.counter("wall.busy_ns", /*volatile_metric=*/true)->Inc(123456);
    const std::string deterministic = reg.ToJson(false);
    const std::string full = reg.ToJson(true);
    EXPECT_EQ(deterministic.find("wall.busy_ns"), std::string::npos);
    EXPECT_NE(deterministic.find("stable.count"), std::string::npos);
    EXPECT_NE(full.find("wall.busy_ns"), std::string::npos);
    // Prometheus exposition carries everything (volatile marked).
    const std::string prom = reg.ToPrometheus();
    EXPECT_NE(prom.find("stable_count"), std::string::npos);
    EXPECT_NE(prom.find("volatile"), std::string::npos);
}

// Bucket edges per common/stats.h: bucket i counts [2^i, 2^(i+1)),
// values below 1.0 land in the underflow bin.
TEST(MetricRegistry, HistogramBucketEdges) {
    MetricRegistry reg;
    Histogram* h = reg.histogram("edges");
    h->Observe(0.5);    // underflow
    h->Observe(0.999);  // underflow
    h->Observe(1.0);    // bucket 0: [1, 2)
    h->Observe(1.999);  // bucket 0
    h->Observe(2.0);    // bucket 1: [2, 4)
    h->Observe(3.999);  // bucket 1
    h->Observe(4.0);    // bucket 2: [4, 8)
    const Log2Histogram& data = h->data();
    EXPECT_EQ(data.total(), 7);
    EXPECT_EQ(data.underflow(), 2);
    ASSERT_GE(data.buckets().size(), 3u);
    EXPECT_EQ(data.buckets()[0], 2);
    EXPECT_EQ(data.buckets()[1], 2);
    EXPECT_EQ(data.buckets()[2], 1);
    // ObserveLatency converts simulated time to microseconds before
    // bucketing: 8 us lands in bucket 3 ([8, 16)).
    h->ObserveLatency(Microseconds(8));
    ASSERT_GE(data.buckets().size(), 4u);
    EXPECT_EQ(data.buckets()[3], 1);
}

// ----------------------------------------------------------- hub cadence

TEST(MetricsHub, SnapshotsOnceGetPerCadenceBoundary) {
    MetricsHub::Config config;
    config.cadence = Milliseconds(10);
    MetricsHub hub(config);
    int renders = 0;
    auto render = [&renders] { return std::to_string(++renders); };

    // Below the first boundary: nothing fires.
    hub.AdvanceTo(Milliseconds(5), render);
    EXPECT_EQ(hub.snapshots_taken(), 0u);
    EXPECT_EQ(renders, 0);
    EXPECT_EQ(hub.next_boundary(), Milliseconds(10));

    // Crossing two boundaries in one barrier renders ONCE — the value
    // "as of the first barrier at or past the boundary" — recorded for
    // both the 10 ms and 20 ms boundaries.
    hub.AdvanceTo(Milliseconds(25), render);
    ASSERT_EQ(hub.snapshots_taken(), 2u);
    EXPECT_EQ(renders, 1);
    EXPECT_EQ(hub.snapshots()[0].at, Milliseconds(10));
    EXPECT_EQ(hub.snapshots()[1].at, Milliseconds(20));
    EXPECT_EQ(hub.snapshots()[0].json, hub.snapshots()[1].json);

    // A barrier exactly on a boundary fires it; re-advancing to the
    // same frontier is idempotent.
    hub.AdvanceTo(Milliseconds(30), render);
    hub.AdvanceTo(Milliseconds(30), render);
    EXPECT_EQ(hub.snapshots_taken(), 3u);
    EXPECT_EQ(renders, 2);
    EXPECT_EQ(hub.snapshots()[2].at, Milliseconds(30));
    EXPECT_EQ(hub.next_boundary(), Milliseconds(40));
}

TEST(MetricsHub, RetainedSnapshotsAreBounded) {
    MetricsHub::Config config;
    config.cadence = Milliseconds(1);
    config.max_snapshots = 4;
    MetricsHub hub(config);
    int renders = 0;
    auto render = [&renders] { return std::to_string(++renders); };
    hub.AdvanceTo(Milliseconds(10), render);
    EXPECT_EQ(hub.snapshots_taken(), 10u);
    ASSERT_EQ(hub.snapshots().size(), 4u);
    // Oldest evicted: the ring keeps the last four boundaries.
    EXPECT_EQ(hub.snapshots().front().at, Milliseconds(7));
    EXPECT_EQ(hub.snapshots().back().at, Milliseconds(10));
}

// -------------------------------------------------------- trace recorder

TEST(TraceRecorder, DeterministicShardStridedIds) {
    TraceRecorder a(3, 16, true);
    TraceRecorder b(3, 16, true);
    // Same shard, same call sequence, same ids — this is what makes the
    // parallel run's trace byte-identical to lock-step.
    EXPECT_EQ(a.NextTraceId(), b.NextTraceId());
    EXPECT_EQ(a.NextSpanId(), b.NextSpanId());
    EXPECT_EQ(a.NextSpanId(), (std::uint64_t{3} << 48) | 2u);
    // A different shard allocates from a disjoint id space.
    TraceRecorder other(4, 16, true);
    EXPECT_EQ(other.NextSpanId(), (std::uint64_t{4} << 48) | 1u);
}

TEST(TraceRecorder, RingWrapsOldestFirst) {
    TraceRecorder rec(0, 4, true);
    for (int i = 1; i <= 6; ++i) {
        rec.Instant("tick", 1, 0, 0, Microseconds(i), i);
    }
    EXPECT_EQ(rec.total_recorded(), 6u);
    EXPECT_EQ(rec.dropped(), 2u);
    const auto records = rec.Records();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records.front().a1, 3);  // 1 and 2 evicted
    EXPECT_EQ(records.back().a1, 6);
}

TEST(TraceRecorder, DisabledRecorderIsANoOp) {
    TraceRecorder rec(0, 4, false);
    rec.Span("s", 1, 2, 0, 0, 0, Microseconds(5));
    rec.Instant("i", 1, 2, 0, Microseconds(1));
    EXPECT_FALSE(rec.enabled());
    EXPECT_EQ(rec.total_recorded(), 0u);
    EXPECT_TRUE(rec.Records().empty());
}

TEST(StitchChromeTrace, CanonicalOrderAndFdrJoin) {
    TraceRecorder coord(0, 16, true);
    TraceRecorder pod(1, 16, true);
    const std::uint64_t trace = coord.NextTraceId();
    const std::uint64_t query_span = coord.NextSpanId();
    coord.Span("query", trace, query_span, 0, 0, Microseconds(1),
               Microseconds(50));
    const std::uint64_t doc_span = pod.NextSpanId();
    pod.Span("doc", trace, doc_span, query_span, /*doc=*/42,
             Microseconds(10), Microseconds(40));
    // FDR-style record: no trace id of its own, joined via the doc id.
    pod.Instant("fdr", 0, 0, /*doc=*/42, Microseconds(20));

    const std::string ab = StitchChromeTrace({&coord, &pod});
    const std::string ba = StitchChromeTrace({&pod, &coord});
    // Canonical sort makes the stitch independent of shard list order.
    EXPECT_EQ(ab, ba);
    EXPECT_NE(ab.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(ab.find("\"ph\":\"X\""), std::string::npos);  // spans
    EXPECT_NE(ab.find("\"ph\":\"i\""), std::string::npos);  // instants
    EXPECT_NE(ab.find("\"fdr\""), std::string::npos);
}

// --------------------------------------- federation wiring, end to end

/**
 * The failover integrity scenario: sharded 2-pod federation, pod 0
 * blacked out mid-load, queries retried onto the survivor, pod 0
 * re-admitted. Every span and instant the layers emit must agree on
 * parent/child ids across the coordinator and pod shards.
 */
TEST(ObservabilityPlane, SpanParentageSurvivesFailover) {
    service::FederationTestbed::Config config;
    config.pod_count = 2;
    config.pod.ring_count = 2;
    config.pod.fabric.device.configure_time = Milliseconds(5);
    config.pod.host.soft_reboot_duration = Milliseconds(200);
    config.pod.health.heartbeat_period = Milliseconds(10);
    config.pod.health.query_timeout = Milliseconds(50);
    config.sharding.enabled = true;
    config.observability.enabled = true;
    service::FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    const Time blackout_at = bed.Now() + Milliseconds(20);
    bed.pod(0).failure_injector().SchedulePodBlackout(blackout_at);
    rank::DocumentGenerator generator(17);
    for (int i = 0; i < 400; ++i) {
        bed.simulator().ScheduleAfter(
            Microseconds(80) * i + Milliseconds(1), [&bed, &generator, i] {
                rank::CompressedRequest request = generator.Next();
                request.query.model_id = 0;
                bed.dispatcher().Inject(i % 16, request,
                                        [](const service::ScoreResult&) {});
            });
    }
    bed.Run();
    ASSERT_GT(bed.dispatcher().counters().failovers, 0u);

    ObservabilityPlane* plane = bed.observability();
    ASSERT_NE(plane, nullptr);

    // Coordinator shard: "query" spans and their "inject"/"failover"
    // instants. parent of every instant must be a query span id of the
    // same trace.
    std::map<std::uint64_t, std::uint64_t> query_trace_by_span;
    for (const auto& r : plane->shard(0)->tracer.Records()) {
        if (std::string(r.name) == "query") {
            EXPECT_EQ(r.span >> 48, 0u);  // coordinator id space
            query_trace_by_span[r.span] = r.trace;
        }
    }
    EXPECT_FALSE(query_trace_by_span.empty());
    std::uint64_t failovers_checked = 0;
    for (const auto& r : plane->shard(0)->tracer.Records()) {
        const std::string name = r.name;
        if (name != "failover" && name != "inject") continue;
        ASSERT_NE(r.parent, 0u);
        auto it = query_trace_by_span.find(r.parent);
        // Lost queries never emit their closing span; every instant
        // whose query did complete must agree with it on the trace id.
        if (it != query_trace_by_span.end()) {
            EXPECT_EQ(it->second, r.trace);
            if (name == "failover") ++failovers_checked;
        }
    }
    EXPECT_GT(failovers_checked, 0u);

    // Pod shards: every "doc" span's parent is a coordinator query
    // span, and every "stage" span's parent is a doc span of the same
    // trace — the cross-shard parent/child chain the stitcher renders.
    std::uint64_t docs_checked = 0, stages_checked = 0;
    for (int s = 1; s < plane->shard_count(); ++s) {
        std::map<std::uint64_t, std::uint64_t> doc_trace_by_span;
        for (const auto& r : plane->shard(s)->tracer.Records()) {
            if (std::string(r.name) != "doc") continue;
            EXPECT_EQ(r.span >> 48, static_cast<std::uint64_t>(s));
            EXPECT_EQ(r.parent >> 48, 0u);  // dispatcher's span id
            auto it = query_trace_by_span.find(r.parent);
            if (it != query_trace_by_span.end()) {
                EXPECT_EQ(it->second, r.trace);
                ++docs_checked;
            }
            doc_trace_by_span[r.span] = r.trace;
        }
        for (const auto& r : plane->shard(s)->tracer.Records()) {
            if (std::string(r.name) != "stage") continue;
            auto it = doc_trace_by_span.find(r.parent);
            ASSERT_NE(it, doc_trace_by_span.end());
            EXPECT_EQ(it->second, r.trace);
            ++stages_checked;
        }
    }
    EXPECT_GT(docs_checked, 0u);
    EXPECT_GT(stages_checked, 0u);

    // Both pods took traffic, so both pod shards must carry doc spans —
    // failover landed the retried documents on the survivor.
    EXPECT_GT(plane->shard(1)->tracer.total_recorded(), 0u);
    EXPECT_GT(plane->shard(2)->tracer.total_recorded(), 0u);
}

/**
 * Pod-blackout postmortem: when the Health Monitor classifies the
 * victim's machines, it streams each one's last FDR records into the
 * trace timeline — the stitched JSON is the flight-data postmortem.
 */
TEST(ObservabilityPlane, BlackoutPostmortemCarriesVictimFdrRecords) {
    service::FederationTestbed::Config config;
    config.pod_count = 2;
    config.pod.ring_count = 1;
    config.pod.fabric.device.configure_time = Milliseconds(5);
    config.pod.host.soft_reboot_duration = Milliseconds(200);
    config.pod.host.hard_reboot_duration = Milliseconds(500);
    config.pod.host.crash_reboot_delay = Milliseconds(50);
    config.pod.health.heartbeat_period = Milliseconds(10);
    config.pod.health.query_timeout = Milliseconds(50);
    config.observability.enabled = true;
    service::FederationTestbed bed(config);
    ASSERT_TRUE(bed.DeployAndSettle());

    // Traffic first, so the victim's FDRs hold real per-packet records.
    rank::DocumentGenerator generator(11);
    for (int i = 0; i < 200; ++i) {
        bed.simulator().ScheduleAfter(
            Microseconds(50) * i + Milliseconds(1), [&bed, &generator, i] {
                rank::CompressedRequest request = generator.Next();
                request.query.model_id = 0;
                bed.dispatcher().Inject(i % 8, request,
                                        [](const service::ScoreResult&) {});
            });
    }
    const Time blackout_at = bed.Now() + Milliseconds(15);
    bed.pod(0).failure_injector().SchedulePodBlackout(blackout_at);
    bed.RunUntil(blackout_at + Seconds(2));

    const auto& counters = bed.pod(0).health_monitor().counters();
    EXPECT_GT(counters.fdr_postmortem_records, 0u);

    // The victim's records are in the stitched timeline alongside the
    // fault classification instants.
    const std::string trace_json = bed.observability()->TraceJson();
    EXPECT_NE(trace_json.find("\"fault\""), std::string::npos);
    EXPECT_NE(trace_json.find("\"fdr\""), std::string::npos);

    // At least one streamed record's document trace id matches a real
    // record still in the victim's FDR spill — the postmortem is the
    // victim's own flight data, not a synthesized marker.
    std::set<std::uint64_t> fdr_docs;
    const auto fdr_records =
        bed.pod(0).fabric().shell(0).fdr().StreamOutExtended();
    for (const auto& r : fdr_records) fdr_docs.insert(r.trace_id);
    bool matched = false;
    for (int s = 0; s < bed.observability()->shard_count(); ++s) {
        for (const auto& r :
             bed.observability()->shard(s)->tracer.Records()) {
            if (std::string(r.name) == "fdr" && fdr_docs.count(r.doc)) {
                matched = true;
            }
        }
    }
    EXPECT_TRUE(matched);

    // The merged snapshot surfaces the postmortem counter and the
    // FlightDataRecorder's own JSON dump is a valid-looking document.
    MetricRegistry merged;
    bed.observability()->BuildMerged(&merged);
    EXPECT_GT(merged.counter("pod0.fdr_postmortem_records")->value(), 0u);
    const std::string dump = bed.pod(0).fabric().shell(0).fdr().DumpJson();
    EXPECT_NE(dump.find("\"records\""), std::string::npos);
}

}  // namespace
}  // namespace catapult::obs
