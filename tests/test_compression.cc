// Unit tests for the compression stage (§4.2): operand-set selection,
// round-trip fidelity on the selected slots, payload/ratio bounds and
// degenerate inputs.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rank/compression.h"
#include "rank/scorer.h"

namespace catapult::rank {
namespace {

FeatureStore DenseStore() {
    FeatureStore store;
    for (std::uint32_t i = 0; i < kFeatureUniverse; ++i) {
        store.Set(i, static_cast<float>((i % 97) + 1));
    }
    return store;
}

/** A one-node tree splitting on `feature` (children are leaves). */
DecisionTree SplitTree(std::uint32_t feature) {
    DecisionTree tree;
    TreeNode root;
    root.feature = feature;
    root.threshold = 0.5f;
    root.left = 1;
    root.right = 2;
    tree.nodes.push_back(root);
    TreeNode leaf;
    leaf.feature = TreeNode::kLeaf;
    tree.nodes.push_back(leaf);
    tree.nodes.push_back(leaf);
    return tree;
}

TEST(CompressionStage, DefaultStageHasEmptyOperandSet) {
    const CompressionStage stage;
    EXPECT_EQ(stage.operand_count(), 0u);
    EXPECT_EQ(stage.CompressedPayloadBytes(), 0);
}

TEST(CompressionStage, EmptyOperandSetCopiesNothing) {
    const CompressionStage stage;
    const FeatureStore in = DenseStore();
    FeatureStore out;
    stage.Apply(in, out);
    EXPECT_EQ(out.NonZeroCount(), 0u);
}

TEST(CompressionStage, LeafOnlyModelReferencesNoFeatures) {
    // Degenerate ensemble: trees with only leaf nodes reference no
    // feature slots, so the operand set must stay empty.
    DecisionTree leaf_tree;
    TreeNode leaf;
    leaf.feature = TreeNode::kLeaf;
    leaf.leaf_value = 1.0f;
    leaf_tree.nodes.push_back(leaf);
    ScoringEnsemble ensemble(std::vector<DecisionTree>(6, leaf_tree));

    CompressionStage stage;
    stage.ProgramForModel(ensemble);
    EXPECT_EQ(stage.operand_count(), 0u);
    EXPECT_EQ(stage.CompressedPayloadBytes(), 0);
}

TEST(CompressionStage, SelectsExactlyTheReferencedSlots) {
    const std::vector<std::uint32_t> features = {3, 700, 4'483, 9'000};
    std::vector<DecisionTree> trees;
    for (const std::uint32_t f : features) trees.push_back(SplitTree(f));
    // Duplicate reference must not enlarge the operand set.
    trees.push_back(SplitTree(features[0]));
    ScoringEnsemble ensemble(std::move(trees));

    CompressionStage stage;
    stage.ProgramForModel(ensemble);
    EXPECT_EQ(stage.operand_count(), features.size());
    EXPECT_EQ(stage.CompressedPayloadBytes(),
              static_cast<Bytes>(features.size()) * 2);
}

TEST(CompressionStage, RoundTripIsIdentityOnOperandSet) {
    const std::vector<std::uint32_t> features = {1, 42, 4'484, 12'000};
    std::vector<DecisionTree> trees;
    for (const std::uint32_t f : features) trees.push_back(SplitTree(f));
    ScoringEnsemble ensemble(std::move(trees));

    CompressionStage stage;
    stage.ProgramForModel(ensemble);

    const FeatureStore in = DenseStore();
    FeatureStore out;
    stage.Apply(in, out);

    // Referenced slots survive bit-exactly; everything else is dropped.
    for (const std::uint32_t f : features) {
        EXPECT_EQ(out.Get(f), in.Get(f)) << "slot " << f;
    }
    EXPECT_EQ(out.NonZeroCount(), features.size());
}

TEST(CompressionStage, ScoreUnchangedAfterCompression) {
    // The stage's contract: scoring the compressed store gives the same
    // score as scoring the full store, because every slot the trees
    // read is in the operand set.
    const ScoringEnsemble ensemble = GenerateEnsemble(0xC0FFEE, 200);
    CompressionStage stage;
    stage.ProgramForModel(ensemble);

    const FeatureStore in = DenseStore();
    FeatureStore out;
    stage.Apply(in, out);
    EXPECT_EQ(ensemble.Score(out), ensemble.Score(in));
}

TEST(CompressionStage, RatioBoundedByOperandBudgetAndUniverse) {
    const int operand_budget = 1'000;
    const ScoringEnsemble ensemble =
        GenerateEnsemble(7, 400, /*max_depth=*/6, operand_budget);
    CompressionStage stage;
    stage.ProgramForModel(ensemble);

    // Non-trivial model references at least one slot, at most the
    // model's operand window, and never more than the universe.
    EXPECT_GT(stage.operand_count(), 0u);
    EXPECT_LE(stage.operand_count(),
              static_cast<std::size_t>(operand_budget));
    EXPECT_LT(stage.operand_count(),
              static_cast<std::size_t>(kFeatureUniverse));

    // Payload: 16-bit fixed point per operand, strictly smaller than
    // shipping the full float store across the link.
    EXPECT_EQ(stage.CompressedPayloadBytes(),
              static_cast<Bytes>(stage.operand_count()) * 2);
    EXPECT_LT(stage.CompressedPayloadBytes(),
              static_cast<Bytes>(kFeatureUniverse) * 4);
}

TEST(CompressionStage, ReprogrammingReplacesOperandSet) {
    std::vector<DecisionTree> wide;
    for (std::uint32_t f = 0; f < 64; ++f) wide.push_back(SplitTree(f));
    ScoringEnsemble wide_model(std::move(wide));

    std::vector<DecisionTree> narrow;
    narrow.push_back(SplitTree(10'000));
    ScoringEnsemble narrow_model(std::move(narrow));

    CompressionStage stage;
    stage.ProgramForModel(wide_model);
    EXPECT_EQ(stage.operand_count(), 64u);
    // Model reload (§4.3) reprograms the stage; stale slots must go.
    stage.ProgramForModel(narrow_model);
    EXPECT_EQ(stage.operand_count(), 1u);

    const FeatureStore in = DenseStore();
    FeatureStore out;
    stage.Apply(in, out);
    EXPECT_EQ(out.NonZeroCount(), 1u);
    EXPECT_EQ(out.Get(10'000), in.Get(10'000));
}

TEST(CompressionStage, ServiceTimeIsPositiveAndScalesWithClock) {
    CompressionStage fast;
    CompressionStage slow;
    slow.timing().clock = Frequency::MHz(90.0);  // half the Table 1 clock
    EXPECT_GT(fast.ServiceTime(), 0);
    EXPECT_GT(slow.ServiceTime(), fast.ServiceTime());
}

}  // namespace
}  // namespace catapult::rank
