#include "host/host_server.h"

#include <cassert>

#include "common/log.h"

namespace catapult::host {

const char* ToString(ServerState state) {
    switch (state) {
      case ServerState::kRunning: return "running";
      case ServerState::kCrashed: return "crashed";
      case ServerState::kSoftRebooting: return "soft_rebooting";
      case ServerState::kHardRebooting: return "hard_rebooting";
      case ServerState::kFlaggedForService: return "flagged_for_service";
    }
    return "?";
}

HostServer::HostServer(sim::Simulator* simulator, std::string name,
                       shell::Shell* shell, Config config)
    : simulator_(simulator),
      name_(std::move(name)),
      shell_(shell),
      config_(config),
      driver_(simulator, &shell->dma(), config.driver) {
    assert(shell_ != nullptr);

    // Surprise removal: the FPGA vanishing from PCIe without the NMI
    // masked destabilizes the host (§3.4).
    shell_->device().AddStateListener(
        [this](fpga::DeviceState, fpga::DeviceState next) {
            const bool reconfiguring =
                next == fpga::DeviceState::kConfiguring ||
                next == fpga::DeviceState::kReconfiguring;
            if (reconfiguring && !nmi_masked_ &&
                state_ == ServerState::kRunning) {
                ++counters_.nmi_crashes;
                CrashAndReboot("unmasked PCIe surprise removal NMI");
            }
        });
}

void HostServer::ReconfigureFpga(const fpga::Bitstream& image,
                                 std::function<void(bool)> on_done) {
    ++counters_.reconfigurations;
    shell_->device().flash().WriteImage(
        fpga::FlashSlot::kApplication, image,
        [this, on_done = std::move(on_done)](bool ok) mutable {
            if (!ok) {
                on_done(false);
                return;
            }
            ReconfigureFromFlash(fpga::FlashSlot::kApplication,
                                 std::move(on_done));
        });
}

void HostServer::ReconfigureFromFlash(fpga::FlashSlot slot,
                                      std::function<void(bool)> on_done) {
    // §3.4: mask the device NMI before the FPGA drops off the bus.
    nmi_masked_ = true;
    shell_->Reconfigure(slot, /*graceful=*/true,
                        [this, on_done = std::move(on_done)](bool ok) {
                            nmi_masked_ = false;
                            on_done(ok);
                        });
}

void HostServer::SoftReboot(std::function<void()> on_done) {
    ++counters_.soft_reboots;
    state_ = ServerState::kSoftRebooting;
    LOG_INFO("host") << name_ << ": soft reboot";
    simulator_->ScheduleAfter(
        config_.soft_reboot_duration,
        [this, on_done = std::move(on_done)]() mutable {
            FinishReboot(ServerState::kSoftRebooting, std::move(on_done));
        });
}

void HostServer::HardReboot(std::function<void()> on_done) {
    ++counters_.hard_reboots;
    state_ = ServerState::kHardRebooting;
    LOG_INFO("host") << name_ << ": hard reboot (power cycle)";
    simulator_->ScheduleAfter(
        config_.hard_reboot_duration,
        [this, on_done = std::move(on_done)]() mutable {
            FinishReboot(ServerState::kHardRebooting, std::move(on_done));
        });
}

void HostServer::FinishReboot(ServerState via, std::function<void()> on_done) {
    // Superseded: another reboot path changed the machine's state while
    // this one was pending (field service arriving during the health
    // plane's escalation ladder, or the ladder escalating over a
    // service in progress). The later state machine owns the hardware;
    // report completion without power-cycling it a second time — the
    // waiting caller re-examines the machine and sees whatever the
    // owning reboot produced.
    if (state_ != via) {
        on_done();
        return;
    }
    // Injected boot failures: the machine does not come back (§3.5's
    // ladder escalates from here).
    if (boot_permanently_broken_ ||
        (via == ServerState::kSoftRebooting && broken_soft_boots_ > 0)) {
        if (via == ServerState::kSoftRebooting && broken_soft_boots_ > 0) {
            --broken_soft_boots_;
        }
        LOG_WARN("host") << name_ << ": reboot failed to restore service";
        state_ = ServerState::kCrashed;
        on_done();
        return;
    }
    // The reboot resets the PCIe bus; the FPGA power-cycles with it.
    // Reboots count as "expected" removal: firmware quiesces the bus.
    nmi_masked_ = true;
    shell_->device().PowerCycle([this, on_done = std::move(on_done)](bool) {
        nmi_masked_ = false;
        state_ = ServerState::kRunning;
        on_done();
    });
}

void HostServer::BreakBoot(int soft_failures, bool permanent) {
    broken_soft_boots_ = soft_failures;
    boot_permanently_broken_ = permanent;
}

void HostServer::Service(std::function<void()> on_done) {
    // The repair clears every injected boot defect before the power
    // cycle, so FinishReboot brings the machine back for real.
    ++counters_.services;
    broken_soft_boots_ = 0;
    boot_permanently_broken_ = false;
    state_ = ServerState::kHardRebooting;
    LOG_INFO("host") << name_ << ": field service (repair + power cycle)";
    simulator_->ScheduleAfter(
        config_.hard_reboot_duration,
        [this, on_done = std::move(on_done)]() mutable {
            FinishReboot(ServerState::kHardRebooting, std::move(on_done));
        });
}

void HostServer::CrashAndReboot(const std::string& reason) {
    if (state_ != ServerState::kRunning) return;
    LOG_WARN("host") << name_ << ": CRASH (" << reason << ")";
    state_ = ServerState::kCrashed;
    simulator_->ScheduleAfter(config_.crash_reboot_delay, [this] {
        if (state_ != ServerState::kCrashed) return;
        SoftReboot([] {});
    });
}

}  // namespace catapult::host
