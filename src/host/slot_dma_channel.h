// User-level slot DMA driver (§3.1).
//
// "We allocate one input and one output buffer in non-paged, user-level
// memory ... Thread safety is achieved by dividing the buffer into 64
// slots ... and by statically assigning each thread exclusive access to
// one or more slots." Requests are sent by filling a slot and setting
// its full bit; responses return through the matching output slot with
// an interrupt. Dropped packets (double-bit/CRC errors, missing routes)
// never return: "the host will time out and divert the request to a
// higher-level failure handling protocol" (§3.2) — the driver surfaces
// that as a timeout completion.

#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "common/units.h"
#include "shell/dma_engine.h"
#include "shell/packet.h"
#include "sim/simulator.h"

namespace catapult::host {

/** Completion status for one request. */
enum class SendStatus {
    kOk,          ///< Response arrived.
    kTimeout,     ///< No response within the deadline (packet lost/hung).
    kSlotBusy,    ///< Protocol violation: slot already has a request.
    kBadRequest,  ///< Request exceeded the 64 KB slot size.
};

const char* ToString(SendStatus status);

class SlotDmaChannel {
  public:
    struct Config {
        /** Host-side deadline before invoking failure handling. */
        Time request_timeout = Milliseconds(8);
    };

    /** Response callback: status + response packet (null on timeout). */
    using ResponseFn = std::function<void(SendStatus, shell::PacketPtr)>;

    SlotDmaChannel(sim::Simulator* simulator, shell::DmaEngine* dma,
                   Config config);
    SlotDmaChannel(sim::Simulator* simulator, shell::DmaEngine* dma)
        : SlotDmaChannel(simulator, dma, Config()) {}

    SlotDmaChannel(const SlotDmaChannel&) = delete;
    SlotDmaChannel& operator=(const SlotDmaChannel&) = delete;

    /**
     * Statically partition the 64 slots among `thread_count` threads
     * (§3.1). Returns slots-per-thread. Threads address their slots as
     * SlotFor(thread, k) for k in [0, slots_per_thread).
     */
    int AssignThreads(int thread_count);
    int slots_per_thread() const { return slots_per_thread_; }
    int thread_count() const { return thread_count_; }
    int SlotFor(int thread, int k = 0) const;

    /**
     * Send a request on `slot`. The request occupies the slot until the
     * response (or timeout) completes. Fails fast with kSlotBusy /
     * kBadRequest without consuming the slot.
     */
    SendStatus Send(int slot, shell::PacketPtr request, ResponseFn on_response);

    /** True when `slot` has a request outstanding. */
    bool SlotBusy(int slot) const { return pending_[slot].active; }

    struct Counters {
        std::uint64_t sent = 0;
        std::uint64_t responses = 0;
        std::uint64_t timeouts = 0;
        std::uint64_t late_responses = 0;
    };
    const Counters& counters() const { return counters_; }

    const Config& config() const { return config_; }

  private:
    struct Pending {
        bool active = false;
        std::uint64_t request_id = 0;
        ResponseFn on_response;
        sim::EventHandle timeout;
    };

    void OnOutputReady(int slot, shell::PacketPtr packet);
    void OnTimeout(int slot, std::uint64_t request_id);

    sim::Simulator* simulator_;
    shell::DmaEngine* dma_;
    Config config_;
    std::array<Pending, shell::kDmaSlotCount> pending_{};
    Counters counters_;
    std::uint64_t next_request_id_ = 1;
    int thread_count_ = 0;
    int slots_per_thread_ = 0;
};

}  // namespace catapult::host
