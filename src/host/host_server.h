// Host server model: the machine hosting one FPGA daughtercard.
//
// Owns the user-level driver and the reconfiguration library (§3.1,
// §3.4). The critical correctness rule modelled here: "the driver that
// sits behind the FPGA reconfiguration call must first disable
// non-maskable interrupts for the specific PCIe device during
// reconfiguration" — reconfiguring without masking makes the FPGA
// "appear as a failed PCIe device to the host, raising a non-maskable
// interrupt that may destabilize the system", which we model as a host
// crash followed by a reboot. The Health Monitor drives the
// soft-reboot / hard-reboot / flag-for-service ladder (§3.5).

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/units.h"
#include "fpga/bitstream.h"
#include "host/slot_dma_channel.h"
#include "shell/shell.h"
#include "sim/simulator.h"

namespace catapult::host {

enum class ServerState {
    kRunning,
    kCrashed,       ///< NMI / kernel panic; waiting for reboot.
    kSoftRebooting,
    kHardRebooting,
    kFlaggedForService,  ///< Manual service / replacement required.
};

const char* ToString(ServerState state);

class HostServer {
  public:
    struct Config {
        Time soft_reboot_duration = Seconds(45);
        Time hard_reboot_duration = Seconds(150);
        /** Crash-reboot delay after an unmasked surprise removal NMI. */
        Time crash_reboot_delay = Seconds(5);
        SlotDmaChannel::Config driver;
    };

    HostServer(sim::Simulator* simulator, std::string name,
               shell::Shell* shell, Config config);
    HostServer(sim::Simulator* simulator, std::string name,
               shell::Shell* shell)
        : HostServer(simulator, std::move(name), shell, Config()) {}

    HostServer(const HostServer&) = delete;
    HostServer& operator=(const HostServer&) = delete;

    const std::string& name() const { return name_; }
    shell::NodeId node() const { return shell_->node(); }
    ServerState state() const { return state_; }
    bool responsive() const { return state_ == ServerState::kRunning; }

    SlotDmaChannel& driver() { return driver_; }
    shell::Shell& shell() { return *shell_; }

    /**
     * Reconfiguration library entry point (§3.1): write the bitstream
     * into staging flash, mask the device NMI, run the §3.4 protocol,
     * and unmask when the FPGA is back. `on_done(success)`.
     */
    void ReconfigureFpga(const fpga::Bitstream& image,
                         std::function<void(bool)> on_done);

    /**
     * Fast path used when the image is already in flash (service
     * startup and in-place recovery): skips the flash write.
     */
    void ReconfigureFromFlash(fpga::FlashSlot slot,
                              std::function<void(bool)> on_done);

    /** Health Monitor reboot ladder (§3.5). */
    void SoftReboot(std::function<void()> on_done);
    void HardReboot(std::function<void()> on_done);
    void FlagForService() { state_ = ServerState::kFlaggedForService; }

    /** Maintenance / failure injection: unexpected reboot. */
    void CrashAndReboot(const std::string& reason);

    /**
     * Field service (§3.5's manual-service exit): the machine is
     * repaired or replaced — the boot path works again — and
     * power-cycled. `on_done` fires once the server is back in
     * kRunning (hard-reboot duration later); the FPGA power-cycles
     * with it and comes up with RX Halt engaged, awaiting re-mapping.
     */
    void Service(std::function<void()> on_done);

    /**
     * Failure injection: break the boot path. The next `soft_failures`
     * soft reboots fail to bring the machine back (it stays crashed);
     * with `permanent`, hard reboots fail too — the §3.5 ladder then
     * ends in flag-for-manual-service.
     */
    void BreakBoot(int soft_failures, bool permanent = false);

    struct Counters {
        std::uint64_t reconfigurations = 0;
        std::uint64_t nmi_crashes = 0;
        std::uint64_t soft_reboots = 0;
        std::uint64_t hard_reboots = 0;
        std::uint64_t services = 0;  ///< Field-service visits.
    };
    const Counters& counters() const { return counters_; }

  private:
    void FinishReboot(ServerState via, std::function<void()> on_done);

    sim::Simulator* simulator_;
    std::string name_;
    shell::Shell* shell_;
    Config config_;
    SlotDmaChannel driver_;
    ServerState state_ = ServerState::kRunning;
    bool nmi_masked_ = false;
    int broken_soft_boots_ = 0;
    bool boot_permanently_broken_ = false;
    Counters counters_;
};

}  // namespace catapult::host
