#include "host/slot_dma_channel.h"

#include <cassert>

#include "common/log.h"

namespace catapult::host {

const char* ToString(SendStatus status) {
    switch (status) {
      case SendStatus::kOk: return "ok";
      case SendStatus::kTimeout: return "timeout";
      case SendStatus::kSlotBusy: return "slot_busy";
      case SendStatus::kBadRequest: return "bad_request";
    }
    return "?";
}

SlotDmaChannel::SlotDmaChannel(sim::Simulator* simulator,
                               shell::DmaEngine* dma, Config config)
    : simulator_(simulator), dma_(dma), config_(config) {
    assert(simulator_ != nullptr);
    assert(dma_ != nullptr);
    dma_->set_on_output_ready([this](int slot, shell::PacketPtr packet) {
        OnOutputReady(slot, std::move(packet));
    });
}

int SlotDmaChannel::AssignThreads(int thread_count) {
    assert(thread_count > 0 && thread_count <= shell::kDmaSlotCount);
    thread_count_ = thread_count;
    slots_per_thread_ = shell::kDmaSlotCount / thread_count;
    return slots_per_thread_;
}

int SlotDmaChannel::SlotFor(int thread, int k) const {
    assert(thread >= 0 && thread < thread_count_);
    assert(k >= 0 && k < slots_per_thread_);
    // Release-mode safety: never hand out an out-of-range slot even if
    // a caller probes beyond the current partitioning.
    if (thread_count_ <= 0) return 0;
    const int slot = (thread % thread_count_) * slots_per_thread_ +
                     (slots_per_thread_ > 0 ? k % slots_per_thread_ : 0);
    return slot % shell::kDmaSlotCount;
}

SendStatus SlotDmaChannel::Send(int slot, shell::PacketPtr request,
                                ResponseFn on_response) {
    assert(slot >= 0 && slot < shell::kDmaSlotCount);
    if (pending_[slot].active) return SendStatus::kSlotBusy;
    if (request->size > shell::kDmaSlotBytes) return SendStatus::kBadRequest;

    Pending& p = pending_[slot];
    p.active = true;
    p.request_id = next_request_id_++;
    p.on_response = std::move(on_response);
    const std::uint64_t id = p.request_id;
    p.timeout = simulator_->ScheduleAfter(
        config_.request_timeout, [this, slot, id] { OnTimeout(slot, id); },
        sim::EventPriority::kTimeout);

    ++counters_.sent;
    request->slot = slot;
    request->injected_at = simulator_->Now();
    const bool accepted = dma_->SetInputFull(slot, std::move(request));
    assert(accepted && "full bit already set on an idle slot");
    (void)accepted;
    return SendStatus::kOk;
}

void SlotDmaChannel::OnOutputReady(int slot, shell::PacketPtr packet) {
    Pending& p = pending_[slot];
    dma_->ConsumeOutput(slot);  // the consumer thread drains immediately
    if (!p.active) {
        // Response to a request we already timed out.
        ++counters_.late_responses;
        return;
    }
    ++counters_.responses;
    simulator_->Cancel(p.timeout);
    p.active = false;
    auto cb = std::move(p.on_response);
    p.on_response = nullptr;
    if (cb) cb(SendStatus::kOk, std::move(packet));
}

void SlotDmaChannel::OnTimeout(int slot, std::uint64_t request_id) {
    Pending& p = pending_[slot];
    if (!p.active || p.request_id != request_id) return;
    ++counters_.timeouts;
    LOG_DEBUG("driver") << "request on slot " << slot
                        << " timed out; diverting to failure handling";
    p.active = false;
    auto cb = std::move(p.on_response);
    p.on_response = nullptr;
    if (cb) cb(SendStatus::kTimeout, nullptr);
}

}  // namespace catapult::host
