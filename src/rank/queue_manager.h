// Queue Manager (§4.3).
//
// "When a ranking request comes in, it specifies which model should be
// used ... The query and document are forwarded to the head of the
// processing pipeline and placed in a queue in DRAM which contains all
// queries using that model. The Queue Manager (QM) takes documents from
// each queue and sends them down the processing pipeline. When the
// queue is empty or when a timeout is reached, QM will switch to the
// next queue. When a new queue ... is selected, QM sends a Model Reload
// command down the pipeline." Minimizing reloads among queries is
// "crucial to achieving high performance".
//
// This class is pure policy: the hosting role feeds arrivals in and
// pulls dispatch decisions out; DRAM traffic and reload stalls are
// charged by the caller.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/units.h"

namespace catapult::rank {

class QueueManager {
  public:
    struct Config {
        /**
         * Maximum time the QM stays on one queue while other queues
         * have waiting work (staleness bound for rare models).
         */
        Time queue_timeout = Microseconds(500);
    };

    /** An entry is an opaque request handle owned by the caller. */
    using EntryId = std::uint64_t;

    struct DispatchDecision {
        enum class Kind {
            kIdle,        ///< No queued work.
            kDispatch,    ///< Send `entry` (current model) down the pipe.
            kModelReload, ///< Switch to `model_id`; stall for the reload.
        };
        Kind kind = Kind::kIdle;
        EntryId entry = 0;
        std::uint32_t model_id = 0;
    };

    QueueManager() : QueueManager(Config()) {}
    explicit QueueManager(Config config) : config_(config) {}

    /** A request for `model_id` arrived at the head of the pipeline. */
    void Enqueue(std::uint32_t model_id, EntryId entry, Time now);

    /**
     * Ask what to do next. kDispatch pops the entry; kModelReload
     * switches the current model (caller stalls for the reload time and
     * asks again); kIdle means nothing is queued.
     */
    DispatchDecision Next(Time now);

    /**
     * Drop every queued entry and the current-model latch (counters
     * survive). The DRAM queues live on the head FPGA, so a ring
     * redeploy that reconfigures it wipes them in hardware; the policy
     * state must follow, or the rebuilt head role would be handed
     * entries whose packets died with its predecessor.
     */
    void Reset();

    std::uint32_t current_model() const { return current_model_; }
    bool has_current_model() const { return has_model_; }
    std::size_t QueuedFor(std::uint32_t model_id) const;
    std::size_t TotalQueued() const { return total_queued_; }

    struct Counters {
        std::uint64_t enqueued = 0;
        std::uint64_t dispatched = 0;
        std::uint64_t model_switches = 0;
        std::uint64_t timeout_switches = 0;
    };
    const Counters& counters() const { return counters_; }

  private:
    /**
     * One per-model DRAM queue. The set of models a head role ever
     * sees is tiny (a handful), so the queues live in a flat vector
     * kept sorted by model id — Next()'s find and the round-robin
     * scan walk contiguous memory instead of chasing red-black-tree
     * nodes on every dispatch. Sorted order matches the std::map this
     * replaces, so rotation decisions are unchanged.
     */
    struct ModelQueue {
        std::uint32_t model_id = 0;
        std::deque<EntryId> entries;
    };

    /** Pick the next non-empty queue after `current_model_` (RR). */
    bool PickNextModel(std::uint32_t& model_id) const;
    /** Index of the queue for `model_id`, or queues_.size(). */
    std::size_t FindQueue(std::uint32_t model_id) const;
    /** Index of the first queue with id > `model_id` (may be size()). */
    std::size_t UpperBound(std::uint32_t model_id) const;

    Config config_;
    std::vector<ModelQueue> queues_;  ///< Sorted by model_id.
    std::uint32_t current_model_ = 0;
    bool has_model_ = false;
    Time current_since_ = 0;
    std::size_t total_queued_ = 0;
    Counters counters_;
};

}  // namespace catapult::rank
