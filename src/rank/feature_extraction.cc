#include "rank/feature_extraction.h"

#include <cassert>
#include <cmath>

namespace catapult::rank {

namespace {

/**
 * Build the 43 FSM descriptors. Feature ids are packed contiguously:
 * 30 rich per-(stream,term) FSMs emit 3 values per cell (primary,
 * length-normalized, log-compressed), 10 emit 2, and the 3 aggregate
 * FSMs own the tail of the id space; kTermShare's allocation includes
 * reserved ids for future term slots, so the dynamic space totals
 * exactly 4,484 features.
 */
std::vector<FsmDescriptor> BuildDescriptors() {
    struct Spec {
        FsmKind kind;
        const char* name;
        std::uint32_t param;
        std::uint32_t values_per_cell;
        std::uint32_t cells;  // 0 => per (stream, term)
    };
    const std::uint32_t st = kMetastreamCount * kMaxQueryTerms;  // 40
    std::vector<Spec> specs = {
        // 30 rich per-(stream,term) FSMs, 3 values per cell.
        {FsmKind::kCountOccurrences, "NumberOfOccurrences", 0, 3, st},
        {FsmKind::kCountOccurrences, "NumberOfOccurrences.props", 1, 3, st},
        {FsmKind::kCountOccurrences, "NumberOfOccurrences.tight", 2, 3, st},
        {FsmKind::kFirstOccurrence, "FirstOccurrence", 0, 3, st},
        {FsmKind::kLastOccurrence, "LastOccurrence", 0, 3, st},
        {FsmKind::kCoverageSpan, "CoverageSpan", 0, 3, st},
        {FsmKind::kMeanGap, "MeanGap", 0, 3, st},
        {FsmKind::kMaxGap, "MaxGap", 0, 3, st},
        {FsmKind::kPropertySum, "PropertySum", 0, 3, st},
        {FsmKind::kPropertySum, "PropertySum.high", 1, 3, st},
        {FsmKind::kPropertyMax, "PropertyMax", 0, 3, st},
        {FsmKind::kBigramAdjacency, "BigramNext", 0, 3, st},
        {FsmKind::kBigramAdjacency, "BigramRepeat", 1, 3, st},
        {FsmKind::kBigramAdjacency, "BigramCrossStream", 2, 3, st},
        {FsmKind::kProximityWindow, "Proximity.8", 8, 3, st},
        {FsmKind::kProximityWindow, "Proximity.16", 16, 3, st},
        {FsmKind::kProximityWindow, "Proximity.32", 32, 3, st},
        {FsmKind::kProximityWindow, "Proximity.64", 64, 3, st},
        {FsmKind::kProximityWindow, "Proximity.128", 128, 3, st},
        {FsmKind::kProximityWindow, "Proximity.256", 256, 3, st},
        {FsmKind::kProximityWindow, "Proximity.512", 512, 3, st},
        {FsmKind::kProximityWindow, "Proximity.1024", 1024, 3, st},
        {FsmKind::kEarlySection, "Early.128", 128, 3, st},
        {FsmKind::kEarlySection, "Early.512", 512, 3, st},
        {FsmKind::kEarlySection, "Early.2048", 2048, 3, st},
        {FsmKind::kEarlySection, "Early.8192", 8192, 3, st},
        {FsmKind::kEarlySection, "Early.32768", 32768, 3, st},
        {FsmKind::kFirstOccurrence, "FirstOccurrence.props", 1, 3, st},
        {FsmKind::kLastOccurrence, "LastOccurrence.props", 1, 3, st},
        {FsmKind::kMaxGap, "MaxGap.props", 1, 3, st},
        // 10 per-(stream,term) FSMs, 2 values per cell.
        {FsmKind::kCountOccurrences, "NumberOfOccurrences.wide", 3, 2, st},
        {FsmKind::kFirstOccurrence, "FirstOccurrence.tight", 2, 2, st},
        {FsmKind::kLastOccurrence, "LastOccurrence.tight", 2, 2, st},
        {FsmKind::kCoverageSpan, "CoverageSpan.props", 1, 2, st},
        {FsmKind::kMeanGap, "MeanGap.props", 1, 2, st},
        {FsmKind::kPropertySum, "PropertySum.low", 2, 2, st},
        {FsmKind::kPropertyMax, "PropertyMax.props", 1, 2, st},
        {FsmKind::kBigramAdjacency, "BigramNext.props", 3, 2, st},
        {FsmKind::kProximityWindow, "Proximity.4096", 4096, 2, st},
        {FsmKind::kEarlySection, "Early.131072", 131072, 2, st},
        // Aggregate FSMs.
        {FsmKind::kDensity, "StreamDensity", 0, 2, kMetastreamCount},
        {FsmKind::kStreamSpan, "StreamSpan", 0, 2, kMetastreamCount},
        // kTermShare owns 68 ids: 10 terms x 3 emitted + 38 reserved,
        // bringing the dynamic feature space to exactly 4,484.
        {FsmKind::kTermShare, "TermShare", 0, 3, kMaxQueryTerms},
    };

    std::vector<FsmDescriptor> descriptors;
    descriptors.reserve(specs.size());
    std::uint32_t next_id = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const Spec& spec = specs[i];
        FsmDescriptor d;
        d.kind = spec.kind;
        d.name = spec.name;
        d.param = spec.param;
        d.feature_base = next_id;
        d.feature_count = spec.cells * spec.values_per_cell;
        if (i + 1 == specs.size()) {
            d.feature_count = kDynamicFeatureCount - next_id;  // reserved tail
        }
        next_id += d.feature_count;
        descriptors.push_back(std::move(d));
    }
    assert(descriptors.size() == 43);
    assert(next_id == kDynamicFeatureCount);
    return descriptors;
}

/** Values per cell for a descriptor (from its allocation). */
std::uint32_t ValuesPerCell(const FsmDescriptor& d) {
    switch (d.kind) {
      case FsmKind::kDensity:
      case FsmKind::kStreamSpan:
        return d.feature_count / kMetastreamCount;
      case FsmKind::kTermShare:
        return 3;  // remaining ids are reserved
      default:
        return d.feature_count / (kMetastreamCount * kMaxQueryTerms);
    }
}

}  // namespace

FeatureFsm::FeatureFsm(const FsmDescriptor& descriptor)
    : descriptor_(descriptor) {
    Reset();
}

void FeatureFsm::Reset() {
    cells_.fill(Cell{});
    stream_totals_.fill(0);
    total_hits_ = 0;
    previous_term_ = 0xFF;
    previous_stream_ = 0xFF;
    previous_position_ = 0;
}

FeatureFsm::Cell& FeatureFsm::CellFor(int stream, int term) {
    return cells_[static_cast<std::size_t>(stream) * kMaxQueryTerms +
                  static_cast<std::size_t>(term)];
}

void FeatureFsm::Consume(const HitTuple& tuple, std::uint32_t position) {
    const int stream = tuple.stream % kMetastreamCount;
    const int term = tuple.term % kMaxQueryTerms;
    Cell& cell = CellFor(stream, term);
    ++total_hits_;
    ++stream_totals_[static_cast<std::size_t>(stream)];

    // Kind-specific filters decide whether this tuple "counts".
    bool counts = true;
    std::uint32_t value = 1;
    switch (descriptor_.kind) {
      case FsmKind::kCountOccurrences:
        if (descriptor_.param == 1) counts = tuple.properties != 0;
        else if (descriptor_.param == 2) counts = tuple.delta < 4;
        else if (descriptor_.param == 3) counts = tuple.delta >= 4;
        break;
      case FsmKind::kFirstOccurrence:
      case FsmKind::kLastOccurrence:
      case FsmKind::kCoverageSpan:
        if (descriptor_.param == 1) counts = tuple.properties != 0;
        else if (descriptor_.param == 2) counts = tuple.delta < 4;
        value = position;
        break;
      case FsmKind::kMeanGap:
        if (descriptor_.param == 1) counts = tuple.properties != 0;
        value = tuple.delta;
        break;
      case FsmKind::kMaxGap:
        if (descriptor_.param == 1) counts = tuple.properties != 0;
        value = tuple.delta;
        break;
      case FsmKind::kPropertySum:
        if (descriptor_.param == 1) counts = tuple.properties >= 256;
        else if (descriptor_.param == 2) {
            counts = tuple.properties > 0 && tuple.properties < 256;
        } else {
            counts = tuple.properties != 0;
        }
        value = tuple.properties;
        break;
      case FsmKind::kPropertyMax:
        if (descriptor_.param == 1) counts = tuple.properties >= 16;
        value = tuple.properties;
        break;
      case FsmKind::kBigramAdjacency:
        switch (descriptor_.param) {
          case 0:
            counts = previous_stream_ == stream &&
                     previous_term_ + 1 == tuple.term;
            break;
          case 1:
            counts = previous_stream_ == stream && previous_term_ == tuple.term;
            break;
          case 2:
            counts = previous_stream_ != stream &&
                     previous_stream_ != 0xFF && previous_term_ == tuple.term;
            break;
          default:
            counts = previous_stream_ == stream &&
                     previous_term_ + 1 == tuple.term && tuple.properties != 0;
            break;
        }
        break;
      case FsmKind::kProximityWindow:
        counts = previous_stream_ == stream && tuple.delta <= descriptor_.param;
        break;
      case FsmKind::kEarlySection:
        counts = position <= descriptor_.param;
        break;
      case FsmKind::kDensity:
      case FsmKind::kStreamSpan:
        value = tuple.delta;
        break;
      case FsmKind::kTermShare:
        break;
    }

    if (counts) {
        ++cell.count;
        if (cell.count == 1) cell.first = position;
        cell.last = position;
        cell.sum += value;
        if (value > cell.max) cell.max = value;
        if (tuple.delta > cell.max_gap) cell.max_gap = tuple.delta;
    }

    previous_term_ = tuple.term;
    previous_stream_ = static_cast<std::uint8_t>(stream);
    previous_position_ = position;
}

void FeatureFsm::Emit(const CompressedRequest& request,
                      FeatureStore& store) const {
    const std::uint32_t vpc = ValuesPerCell(descriptor_);
    const float doc_norm =
        1.0f / (1.0f + static_cast<float>(request.document_length));

    auto emit_cell = [&](std::uint32_t cell_index, float primary) {
        if (primary == 0.0f) return;  // §4.4: only non-zero values emitted
        const std::uint32_t base =
            descriptor_.feature_base + cell_index * vpc;
        store.Set(base, primary);
        if (vpc >= 2) store.Set(base + 1, primary * doc_norm);
        if (vpc >= 3) store.Set(base + 2, std::log1p(primary));
    };

    switch (descriptor_.kind) {
      case FsmKind::kDensity:
        for (int s = 0; s < kMetastreamCount; ++s) {
            const auto hits = stream_totals_[static_cast<std::size_t>(s)];
            emit_cell(static_cast<std::uint32_t>(s),
                      static_cast<float>(hits) /
                          (1.0f + static_cast<float>(request.document_length)));
        }
        return;
      case FsmKind::kStreamSpan: {
        for (int s = 0; s < kMetastreamCount; ++s) {
            // Span accumulated in the per-stream cells' sums.
            std::uint64_t span = 0;
            for (int t = 0; t < kMaxQueryTerms; ++t) {
                span += cells_[static_cast<std::size_t>(s) * kMaxQueryTerms +
                               static_cast<std::size_t>(t)].sum;
            }
            emit_cell(static_cast<std::uint32_t>(s), static_cast<float>(span));
        }
        return;
      }
      case FsmKind::kTermShare: {
        if (total_hits_ == 0) return;
        for (int t = 0; t < kMaxQueryTerms; ++t) {
            std::uint32_t term_hits = 0;
            for (int s = 0; s < kMetastreamCount; ++s) {
                term_hits +=
                    cells_[static_cast<std::size_t>(s) * kMaxQueryTerms +
                           static_cast<std::size_t>(t)].count;
            }
            emit_cell(static_cast<std::uint32_t>(t),
                      static_cast<float>(term_hits) /
                          static_cast<float>(total_hits_));
        }
        return;
      }
      default:
        break;
    }

    for (std::uint32_t cell_index = 0;
         cell_index < static_cast<std::uint32_t>(kMetastreamCount) * kMaxQueryTerms;
         ++cell_index) {
        const Cell& cell = cells_[cell_index];
        if (cell.count == 0) continue;
        float primary = 0.0f;
        switch (descriptor_.kind) {
          case FsmKind::kCountOccurrences:
          case FsmKind::kBigramAdjacency:
          case FsmKind::kProximityWindow:
          case FsmKind::kEarlySection:
            primary = static_cast<float>(cell.count);
            break;
          case FsmKind::kFirstOccurrence:
            primary = static_cast<float>(cell.first);
            break;
          case FsmKind::kLastOccurrence:
            primary = static_cast<float>(cell.last);
            break;
          case FsmKind::kCoverageSpan:
            primary = static_cast<float>(cell.last - cell.first);
            break;
          case FsmKind::kMeanGap:
            primary = static_cast<float>(cell.sum) /
                      static_cast<float>(cell.count);
            break;
          case FsmKind::kMaxGap:
            primary = static_cast<float>(cell.max_gap);
            break;
          case FsmKind::kPropertySum:
            primary = static_cast<float>(cell.sum);
            break;
          case FsmKind::kPropertyMax:
            primary = static_cast<float>(cell.max);
            break;
          default:
            break;
        }
        emit_cell(cell_index, primary);
    }
}

FeatureExtractor::FeatureExtractor() {
    for (const auto& descriptor : Descriptors()) {
        fsms_.push_back(std::make_unique<FeatureFsm>(descriptor));
    }
}

const std::vector<FsmDescriptor>& FeatureExtractor::Descriptors() {
    static const std::vector<FsmDescriptor> descriptors = BuildDescriptors();
    return descriptors;
}

void FeatureExtractor::Extract(const CompressedRequest& request,
                               FeatureStore& store) {
    for (auto& fsm : fsms_) fsm->Reset();

    // The Stream Processing FSM issues each tuple to all 43 FSMs (MISD).
    HitVectorReader reader(request);
    HitTuple tuple;
    std::uint32_t position = 0;
    while (reader.Next(tuple)) {
        position += tuple.delta;
        for (auto& fsm : fsms_) fsm->Consume(tuple, position);
    }

    // Feature Gathering Network: coalesce all non-zero outputs.
    for (const auto& fsm : fsms_) fsm->Emit(request, store);

    // Software-computed features ride along with the request (§4.1).
    for (const auto& feature : request.software_features) {
        store.Set(SoftwareFeatureSlot(feature.feature_id), feature.value);
    }
}

Time FeatureExtractor::ServiceTime(std::uint32_t tuple_count) const {
    const auto cycles =
        timing_.base_cycles +
        static_cast<std::int64_t>(
            std::ceil(timing_.cycles_per_tuple * tuple_count));
    return timing_.clock.Cycles(cycles);
}

Time FeatureExtractor::ServiceTime(const CompressedRequest& request) const {
    return ServiceTime(request.tuple_count);
}

}  // namespace catapult::rank
