#include "rank/scorer.h"

#include <cassert>
#include <cmath>

namespace catapult::rank {

float DecisionTree::Evaluate(const FeatureStore& store) const {
    if (nodes.empty()) return 0.0f;
    std::int32_t index = 0;
    while (true) {
        const TreeNode& node = nodes[static_cast<std::size_t>(index)];
        if (node.feature == TreeNode::kLeaf) return node.leaf_value;
        const float value = store.Get(node.feature);
        index = value <= node.threshold ? node.left : node.right;
        assert(index >= 0 && index < static_cast<std::int32_t>(nodes.size()));
    }
}

float ScorerShard::PartialScore(const FeatureStore& store) const {
    // Pipeline-order accumulation: trees evaluate in array order so the
    // float sum is deterministic and identical to software.
    float sum = 0.0f;
    for (const auto& tree : trees_) sum += tree.Evaluate(store);
    return sum;
}

Time ScorerShard::ServiceTime() const {
    const std::int64_t tree_cycles =
        static_cast<std::int64_t>(
            (trees_.size() + static_cast<std::size_t>(timing_.tree_units) - 1) /
            static_cast<std::size_t>(timing_.tree_units)) *
        timing_.cycles_per_tree;
    return timing_.clock.Cycles(timing_.base_cycles + tree_cycles);
}

Bytes ScorerShard::ModelBytes() const {
    // 8 bytes per node (feature id, threshold/leaf, child offsets packed).
    return total_nodes() * 8;
}

std::int64_t ScorerShard::total_nodes() const {
    std::int64_t nodes = 0;
    for (const auto& tree : trees_) nodes += tree.NodeCount();
    return nodes;
}

ScoringEnsemble::ScoringEnsemble(std::vector<DecisionTree> trees) {
    // Contiguous shards preserve ensemble order across the 3 chips, so
    // Score() sums in the same order as a single-machine evaluation.
    const std::size_t per_shard = (trees.size() + kShardCount - 1) / kShardCount;
    std::size_t index = 0;
    for (int s = 0; s < kShardCount; ++s) {
        std::vector<DecisionTree> shard_trees;
        for (std::size_t k = 0; k < per_shard && index < trees.size();
             ++k, ++index) {
            shard_trees.push_back(std::move(trees[index]));
        }
        shards_[s] = ScorerShard(std::move(shard_trees));
    }
}

float ScoringEnsemble::Score(const FeatureStore& store) const {
    float score = 0.0f;
    for (const auto& shard : shards_) score += shard.PartialScore(store);
    return score;
}

int ScoringEnsemble::total_trees() const {
    int total = 0;
    for (const auto& shard : shards_) total += shard.tree_count();
    return total;
}

namespace {

std::int32_t BuildSubtree(std::vector<TreeNode>& nodes, Rng& rng, int depth,
                          int max_depth,
                          const std::vector<std::uint32_t>& operands) {
    const auto index = static_cast<std::int32_t>(nodes.size());
    nodes.emplace_back();
    if (depth >= max_depth || rng.Chance(0.25)) {
        nodes[static_cast<std::size_t>(index)].feature = TreeNode::kLeaf;
        nodes[static_cast<std::size_t>(index)].leaf_value =
            static_cast<float>(rng.Uniform(-0.5, 0.5));
        return index;
    }
    nodes[static_cast<std::size_t>(index)].feature =
        operands[rng.NextBounded(operands.size())];
    nodes[static_cast<std::size_t>(index)].threshold =
        static_cast<float>(rng.Uniform(0.0, 16.0));
    const std::int32_t left =
        BuildSubtree(nodes, rng, depth + 1, max_depth, operands);
    const std::int32_t right =
        BuildSubtree(nodes, rng, depth + 1, max_depth, operands);
    nodes[static_cast<std::size_t>(index)].left = left;
    nodes[static_cast<std::size_t>(index)].right = right;
    return index;
}

}  // namespace

ScoringEnsemble GenerateEnsemble(std::uint64_t seed, int tree_count,
                                 int max_depth, int operand_budget) {
    Rng rng(seed ^ 0x5C03E5C03E5C03E5ull);
    // Per-model feature selection: draw the operand window first, with
    // the paper's emphasis on dynamic features and FFE outputs.
    std::vector<std::uint32_t> operands;
    operands.reserve(static_cast<std::size_t>(operand_budget));
    for (int i = 0; i < operand_budget; ++i) {
        const double kind = rng.NextDouble();
        if (kind < 0.55) {
            operands.push_back(static_cast<std::uint32_t>(
                rng.NextBounded(kDynamicFeatureCount)));
        } else if (kind < 0.90) {
            operands.push_back(
                kFfeOutputBase +
                static_cast<std::uint32_t>(rng.NextBounded(kFfeOutputSlots)));
        } else {
            operands.push_back(kSoftwareFeatureBase +
                               static_cast<std::uint32_t>(
                                   rng.NextBounded(kSoftwareFeatureSlots)));
        }
    }
    std::vector<DecisionTree> trees;
    trees.reserve(static_cast<std::size_t>(tree_count));
    for (int t = 0; t < tree_count; ++t) {
        DecisionTree tree;
        BuildSubtree(tree.nodes, rng, 0, max_depth, operands);
        trees.push_back(std::move(tree));
    }
    return ScoringEnsemble(std::move(trees));
}

}  // namespace catapult::rank
