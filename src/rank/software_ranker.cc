#include "rank/software_ranker.h"

#include <cassert>
#include <cmath>

namespace catapult::rank {

RankingFunction::RankingFunction(const Model* model) : model_(model) {
    assert(model_ != nullptr);
    ffe0_.LoadPrograms(model_->ffe0_programs());
    ffe1_.LoadPrograms(model_->ffe1_programs());
}

void RankingFunction::ExtractFeatures(const CompressedRequest& request,
                                      FeatureStore& store) {
    store.Clear();
    extractor_.Extract(request, store);
}

float RankingFunction::Score(const CompressedRequest& request) {
    ExtractFeatures(request, scratch_);
    RunFfe0(scratch_);
    RunFfe1(scratch_);
    compressed_.Clear();
    Compress(scratch_, compressed_);
    return FinalScore(compressed_);
}

float RankingFunction::ReferenceScore(const CompressedRequest& request) {
    ExtractFeatures(request, scratch_);
    // Direct AST evaluation of the unsplit expressions, writing the
    // same FFE output slots the compiled path writes.
    const auto& expressions = model_->expressions();
    for (std::size_t i = 0; i < expressions.size(); ++i) {
        const std::uint32_t slot =
            kFfeOutputBase + static_cast<std::uint32_t>(i) % kFfeOutputSlots;
        scratch_.Set(slot, expressions[i]->Evaluate(scratch_));
    }
    compressed_.Clear();
    Compress(scratch_, compressed_);
    return FinalScore(compressed_);
}

CpuPool::CpuPool(sim::Simulator* simulator, Rng rng, Config config)
    : simulator_(simulator), rng_(rng), config_(config) {
    assert(simulator_ != nullptr);
    assert(config_.cores > 0);
}

void CpuPool::Submit(Time service, std::function<void()> on_done) {
    queue_.push_back(Job{service, std::move(on_done)});
    TryDispatch();
}

void CpuPool::TryDispatch() {
    while (busy_ < config_.cores && !queue_.empty()) {
        Job job = std::move(queue_.front());
        queue_.pop_front();
        ++busy_;
        // Contention in the memory hierarchy: service inflates with the
        // occupancy at dispatch time, plus heavy-ish lognormal noise.
        const double u = static_cast<double>(busy_) / config_.cores;
        const double contention = 1.0 + config_.contention_alpha * u * u;
        const double noise =
            std::exp(config_.noise_sigma * rng_.Normal() -
                     config_.noise_sigma * config_.noise_sigma / 2.0);
        const Time effective = static_cast<Time>(
            static_cast<double>(job.service) * contention * noise);
        simulator_->ScheduleAfter(effective,
                                  [this, cb = std::move(job.on_done)] {
                                      --busy_;
                                      cb();
                                      TryDispatch();
                                  });
    }
}

Time SoftwareCostModel::FullServiceTime(const CompressedRequest& request,
                                        const Model& model) const {
    // A tree evaluation visits ~depth nodes; estimate the average depth
    // from the node count (nodes ~= 2^(depth+1) for near-full trees).
    const double trees = std::max(1, model.ensemble().total_trees());
    const double nodes_per_tree =
        static_cast<double>(model.total_tree_nodes()) / trees;
    const double avg_depth = std::max(1.0, std::log2(nodes_per_tree + 1.0) - 1.0);
    const double tree_cycles = cycles_per_tree_level * trees * avg_depth;
    const double cycles =
        base_cycles + cycles_per_tuple * request.tuple_count +
        cycles_per_ffe_op * static_cast<double>(model.total_ffe_ops()) +
        tree_cycles;
    return static_cast<Time>(cycles / cpu_clock.hertz() * 1e12);
}

Time SoftwareCostModel::PrepServiceTime(const CompressedRequest& request) const {
    const double cycles =
        prep_base_cycles + prep_cycles_per_tuple * request.tuple_count;
    return static_cast<Time>(cycles / cpu_clock.hertz() * 1e12);
}

SoftwareRankServer::SoftwareRankServer(sim::Simulator* simulator, Rng rng,
                                       Config config)
    : simulator_(simulator), config_(config), cpu_(simulator, rng, config.cpu) {}

void SoftwareRankServer::Submit(const CompressedRequest& request,
                                const Model& model,
                                std::function<void(Time)> on_done) {
    const Time submitted = simulator_->Now();
    const Time service = config_.cost.FullServiceTime(request, model);
    cpu_.Submit(service, [this, submitted, on_done = std::move(on_done)] {
        on_done(simulator_->Now() - submitted);
    });
}

}  // namespace catapult::rank
