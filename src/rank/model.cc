#include "rank/model.h"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <tuple>

namespace catapult::rank {

namespace {

/**
 * FNV-1a over every generation-relevant config field. Two configs with
 * the same fingerprint synthesize bit-identical models for a given
 * (model_id, seed), which is what makes cross-store sharing safe.
 */
std::uint64_t ConfigFingerprint(const Model::Config& config) {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    const auto mix_double = [&](double v) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    };
    mix(static_cast<std::uint64_t>(config.expression_count));
    mix(static_cast<std::uint64_t>(config.tree_count));
    mix(static_cast<std::uint64_t>(config.tree_depth));
    const auto& e = config.expressions;
    mix_double(e.small_probability);
    mix(static_cast<std::uint64_t>(e.small_min_ops));
    mix(static_cast<std::uint64_t>(e.small_max_ops));
    mix_double(e.tail_mean_ops);
    mix_double(e.tail_sigma);
    mix(static_cast<std::uint64_t>(e.max_ops));
    mix_double(e.complex_probability);
    mix_double(e.select_probability);
    const auto& c = config.compiler;
    mix(static_cast<std::uint64_t>(c.latencies.simple));
    mix(static_cast<std::uint64_t>(c.latencies.load));
    mix(static_cast<std::uint64_t>(c.latencies.fpdiv));
    mix(static_cast<std::uint64_t>(c.latencies.ln));
    mix(static_cast<std::uint64_t>(c.latencies.exp));
    mix(static_cast<std::uint64_t>(c.latencies.float_to_int));
    mix(static_cast<std::uint64_t>(c.split_threshold_ops));
    mix(static_cast<std::uint64_t>(c.split_chunk_ops));
    return h;
}

using CacheKey = std::tuple<std::uint64_t, std::uint32_t, std::uint64_t>;

std::shared_ptr<const Model> CachedGenerate(std::uint32_t model_id,
                                            std::uint64_t seed,
                                            const Model::Config& config) {
    static std::mutex mutex;
    static std::map<CacheKey, std::shared_ptr<const Model>>* cache =
        new std::map<CacheKey, std::shared_ptr<const Model>>;
    const CacheKey key{ConfigFingerprint(config), model_id, seed};
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache->find(key);
    if (it == cache->end()) {
        it = cache->emplace(key, Model::Generate(model_id, seed, config))
                 .first;
    }
    return it->second;
}

}  // namespace

const char* ToString(PipelineStage stage) {
    switch (stage) {
      case PipelineStage::kFeatureExtraction: return "FE";
      case PipelineStage::kFfe0: return "FFE0";
      case PipelineStage::kFfe1: return "FFE1";
      case PipelineStage::kCompression: return "Comp";
      case PipelineStage::kScoring0: return "Score0";
      case PipelineStage::kScoring1: return "Score1";
      case PipelineStage::kScoring2: return "Score2";
      case PipelineStage::kSpare: return "Spare";
    }
    return "?";
}

std::unique_ptr<Model> Model::Generate(std::uint32_t model_id,
                                       std::uint64_t seed, Config config) {
    auto model = std::unique_ptr<Model>(new Model());
    model->model_id_ = model_id;
    const std::uint64_t model_seed =
        seed ^ (static_cast<std::uint64_t>(model_id) * 0xD1B54A32D192ED03ull);

    // 1. Generate the expression set (the software-reference ASTs).
    ffe::ExpressionGenerator generator(model_seed, config.expressions);
    model->expressions_.reserve(
        static_cast<std::size_t>(config.expression_count));
    for (int i = 0; i < config.expression_count; ++i) {
        model->expressions_.push_back(generator.Generate());
        model->total_ffe_ops_ += model->expressions_.back()->OpCount();
    }

    // 2. Compile: split oversized expressions across the two FFE chips
    //    via metafeatures (§4.5), then partition the remaining work.
    ffe::FfeCompiler compiler(config.compiler);
    std::uint32_t next_meta_slot = 0;
    std::vector<ffe::Program> upstream;   // FFE0: metafeature producers
    std::vector<ffe::Program> remainder;  // split between the chips

    for (std::size_t i = 0; i < model->expressions_.size(); ++i) {
        const std::uint32_t output_slot =
            kFfeOutputBase +
            static_cast<std::uint32_t>(i) % kFfeOutputSlots;
        // Work on a clone so expressions_ stays the unsplit reference.
        ffe::ExprPtr work = model->expressions_[i]->Clone();
        auto parts = compiler.SplitForMetafeatures(*work, next_meta_slot);
        for (auto& part : parts) {
            upstream.push_back(compiler.Compile(*part.expr, part.slot));
        }
        remainder.push_back(compiler.Compile(*work, output_slot));
    }
    model->metafeature_count_ = static_cast<int>(next_meta_slot);
    // Metafeature slots must not wrap within one model: a collision
    // would let a later producer overwrite an earlier one's value.
    assert(next_meta_slot <= kMetaFeatureSlots &&
           "metafeature slot space exhausted; raise kMetaFeatureSlots");

    // Partition the remainder across the chips, balancing instruction
    // counts. Metafeature producers must run upstream (FFE0); consumers
    // of metafeatures must run downstream (FFE1).
    std::vector<ffe::Program> ffe0 = std::move(upstream);
    std::vector<ffe::Program> ffe1;
    std::int64_t load0 = 0;
    for (const auto& p : ffe0) load0 += p.InstructionCount();
    std::int64_t load1 = 0;
    for (auto& program : remainder) {
        const bool reads_meta = std::any_of(
            program.instructions.begin(), program.instructions.end(),
            [](const ffe::Instruction& instr) {
                return instr.op == ffe::OpCode::kLoadFeature &&
                       instr.feature >= kMetaFeatureBase &&
                       instr.feature < kMetaFeatureBase + kMetaFeatureSlots;
            });
        if (reads_meta || load1 <= load0) {
            load1 += program.InstructionCount();
            ffe1.push_back(std::move(program));
        } else {
            load0 += program.InstructionCount();
            ffe0.push_back(std::move(program));
        }
    }
    model->ffe0_ = std::move(ffe0);
    model->ffe1_ = std::move(ffe1);

    // 3. Scoring ensemble + compression stage programming.
    model->ensemble_ =
        GenerateEnsemble(model_seed, config.tree_count, config.tree_depth);
    model->compression_.ProgramForModel(model->ensemble_);
    return model;
}

std::int64_t Model::total_tree_nodes() const {
    std::int64_t nodes = 0;
    for (int s = 0; s < ScoringEnsemble::kShardCount; ++s) {
        nodes += ensemble_.shard(s).total_nodes();
    }
    return nodes;
}

Bytes Model::ReloadBytes(PipelineStage stage) const {
    switch (stage) {
      case PipelineStage::kFeatureExtraction:
        // FE reloads feature configuration tables (thresholds, masks).
        return 64 * 1024;
      case PipelineStage::kFfe0: {
        std::int64_t instrs = 0;
        for (const auto& p : ffe0_) instrs += p.InstructionCount();
        return instrs * 8;
      }
      case PipelineStage::kFfe1: {
        std::int64_t instrs = 0;
        for (const auto& p : ffe1_) instrs += p.InstructionCount();
        return instrs * 8;
      }
      case PipelineStage::kCompression:
        return static_cast<Bytes>(compression_.operand_count()) * 4;
      case PipelineStage::kScoring0:
        return ensemble_.shard(0).ModelBytes();
      case PipelineStage::kScoring1:
        return ensemble_.shard(1).ModelBytes();
      case PipelineStage::kScoring2:
        return ensemble_.shard(2).ModelBytes();
      case PipelineStage::kSpare:
        return 0;
    }
    return 0;
}

const Model& ModelStore::GetOrGenerate(std::uint32_t model_id,
                                       std::uint64_t seed) {
    auto it = models_.find(model_id);
    if (it == models_.end()) {
        it = models_.emplace(model_id,
                             CachedGenerate(model_id, seed, config_.model))
                 .first;
    }
    return *it->second;
}

const Model* ModelStore::Find(std::uint32_t model_id) const {
    const auto it = models_.find(model_id);
    return it == models_.end() ? nullptr : it->second.get();
}

Time ModelStore::StageReloadTime(const Model& model,
                                 PipelineStage stage) const {
    const Bytes bytes = model.ReloadBytes(stage);
    if (bytes == 0) return 0;
    return config_.reload_overhead +
           config_.reload_bandwidth.SerializationTime(bytes);
}

Time ModelStore::PipelineReloadTime(const Model& model) const {
    Time worst = 0;
    for (int s = 0; s < kPipelineStageCount; ++s) {
        worst = std::max(
            worst, StageReloadTime(model, static_cast<PipelineStage>(s)));
    }
    // Command propagation down the ring (one hop per stage).
    return worst + Microseconds(2);
}

Time ModelStore::WorstCaseReloadTime() const {
    // §4.3: all 2,014 M20K RAMs (20 Kb each) reloaded from DRAM.
    const Bytes all_m20k = 2'014ll * 20'480 / 8;
    return config_.reload_overhead +
           config_.reload_bandwidth.SerializationTime(all_m20k);
}

}  // namespace catapult::rank
