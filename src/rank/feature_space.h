// Feature id space shared by all pipeline stages.
//
// §4.4: the 43 feature-extraction state machines produce "up to 4,484
// features"; software-computed features arrive with the request (§4.1);
// FFE metafeatures are intermediate results passed between the two FFE
// chips (§4.5). All three classes live in one dense id space so the
// Feature Storage Tile (FST) can be modelled as a flat array.

#pragma once

#include <cstdint>
#include <vector>

namespace catapult::rank {

/** Dynamic (FE-computed) features: ids [0, kDynamicFeatureCount). */
inline constexpr std::uint32_t kDynamicFeatureCount = 4'484;

/** Software-computed features are remapped into this window. */
inline constexpr std::uint32_t kSoftwareFeatureBase = kDynamicFeatureCount;
inline constexpr std::uint32_t kSoftwareFeatureSlots = 1'024;

/** Metafeatures produced by upstream FFE chips (§4.5). */
inline constexpr std::uint32_t kMetaFeatureBase =
    kSoftwareFeatureBase + kSoftwareFeatureSlots;
inline constexpr std::uint32_t kMetaFeatureSlots = 4'096;

/** FFE final outputs (inputs to document scoring). */
inline constexpr std::uint32_t kFfeOutputBase =
    kMetaFeatureBase + kMetaFeatureSlots;
inline constexpr std::uint32_t kFfeOutputSlots = 4'096;

/** Total FST capacity in feature slots. */
inline constexpr std::uint32_t kFeatureUniverse =
    kFfeOutputBase + kFfeOutputSlots;

/** Wire id -> FST slot for software features (wire ids start at 60000). */
inline constexpr std::uint32_t kSoftwareFeatureWireBase = 60'000;

inline std::uint32_t SoftwareFeatureSlot(std::uint16_t wire_id) {
    return kSoftwareFeatureBase +
           (static_cast<std::uint32_t>(wire_id) - kSoftwareFeatureWireBase) %
               kSoftwareFeatureSlots;
}

/**
 * The Feature Storage Tile: dense feature value array, double-buffered
 * in hardware (§4.5) so one document loads while another processes.
 */
class FeatureStore {
  public:
    FeatureStore() : values_(kFeatureUniverse, 0.0f) {}

    float Get(std::uint32_t id) const { return values_[id]; }
    void Set(std::uint32_t id, float value) { values_[id] = value; }

    void Clear() { values_.assign(values_.size(), 0.0f); }

    /** Count of non-zero entries (what FE actually emits, §4.4). */
    std::size_t NonZeroCount() const {
        std::size_t count = 0;
        for (const float v : values_) {
            if (v != 0.0f) ++count;
        }
        return count;
    }

    const std::vector<float>& raw() const { return values_; }

  private:
    std::vector<float> values_;
};

}  // namespace catapult::rank
