// Ranking request model: queries, hit vectors, compressed requests.
//
// §4.1: each encoded {document, query} request contains (i) a header
// with basic request parameters, (ii) the set of software-computed
// features, and (iii) the hit vector of query match locations for each
// of the document's metastreams. "Software computed features and hit
// vector tuples are encoded in three different sizes using two, four,
// or six bytes depending on the query term." Requests are truncated to
// 64 KB to fit the slot DMA interface.
//
// Documents are synthesized deterministically from a seed: the tuple
// stream is generated lazily by HitVectorReader so multi-hundred-
// thousand-document corpora do not hold materialized tuple arrays.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace catapult::rank {

/** Maximum compressed request size (slot size, §4.1). */
inline constexpr Bytes kMaxCompressedBytes = 64 * 1024;

/** Number of metastreams a document is split into (§4: "several"). */
inline constexpr int kMetastreamCount = 4;

/** Maximum query terms tracked by the feature state machines. */
inline constexpr int kMaxQueryTerms = 10;

/** A search query heading to the ranking service. */
struct Query {
    std::uint64_t query_id = 0;
    std::uint32_t model_id = 0;  ///< Model selection (language/experiment).
    int term_count = 1;          ///< 1 .. kMaxQueryTerms.

    // Distributed-tracing context, carried piggyback because requests
    // are copied along the whole query path (scatter shard -> dispatcher
    // -> cross-shard mailbox -> pod ring). Plain ids, no obs-layer
    // dependency; 0 = untraced. Not part of the §4.1 wire format —
    // EncodedSize()/RequestCodec ignore them.
    std::uint64_t obs_trace = 0;   ///< Timeline (trace) id.
    std::uint64_t obs_parent = 0;  ///< Parent span id for the next hop.
};

/**
 * One hit-vector tuple (§4): "Each tuple describes the relative offset
 * from the previous tuple (or start of stream), the matching query
 * term, and a number of other properties."
 */
struct HitTuple {
    std::uint32_t delta = 0;      ///< Offset from previous tuple.
    std::uint8_t term = 0;        ///< Matching query term index.
    std::uint8_t stream = 0;      ///< Metastream this hit belongs to.
    std::uint16_t properties = 0; ///< Misc properties (weight class etc.).

    /** Wire size: 2, 4 or 6 bytes depending on magnitude (§4.1). */
    int EncodedSize() const;

    bool operator==(const HitTuple&) const = default;
};

/** A software-computed feature forwarded with the request (§4.1). */
struct SoftwareFeature {
    std::uint16_t feature_id = 0;
    float value = 0.0f;

    bool operator==(const SoftwareFeature&) const = default;
};

/**
 * The compressed {document, query} request as injected into the fabric.
 *
 * Tuple content is reproducible from (doc_id, content_seed): callers
 * stream tuples through HitVectorReader instead of materializing them.
 */
struct CompressedRequest {
    std::uint64_t doc_id = 0;
    Query query;
    std::uint64_t content_seed = 0;
    std::uint32_t tuple_count = 0;      ///< Across all metastreams.
    std::uint32_t document_length = 0;  ///< In tokens, for the header.
    std::vector<SoftwareFeature> software_features;
    bool truncated = false;  ///< Hit the 64 KB cap (§4.1).

    /**
     * On-wire size used by the transport models. Set by the generator
     * from its per-tuple byte budget; EncodedSize() is the exact value
     * and tests assert the two agree closely.
     */
    Bytes wire_bytes = 0;

    /** Exact encoded size in bytes (header + features + hit vector). */
    Bytes EncodedSize() const;

    /** Header size on the wire. */
    static Bytes HeaderSize();
};

/**
 * Streams the hit-vector tuples of a request deterministically.
 * Iterating twice over the same request yields identical tuples, which
 * is what makes FPGA-path and software-path scores bit-identical.
 */
class HitVectorReader {
  public:
    explicit HitVectorReader(const CompressedRequest& request);

    /** False when the stream is exhausted. */
    bool Next(HitTuple& tuple);

    std::uint32_t produced() const { return produced_; }

  private:
    const CompressedRequest& request_;
    Rng rng_;
    std::uint32_t produced_ = 0;
    std::uint32_t position_ = 0;
};

/**
 * Byte-level encoder/decoder for requests, validating the wire format
 * (2/4/6-byte tuples; header; feature pairs). The simulator proper
 * tracks only sizes, but tests round-trip real bytes through this.
 */
class RequestCodec {
  public:
    /** Serialize `request`, materializing tuples from the seed. */
    static std::vector<std::uint8_t> Encode(const CompressedRequest& request);

    /**
     * Decode bytes back into a request plus materialized tuples.
     * Returns false on malformed input.
     */
    static bool Decode(const std::vector<std::uint8_t>& bytes,
                       CompressedRequest& request,
                       std::vector<HitTuple>& tuples);
};

}  // namespace catapult::rank
