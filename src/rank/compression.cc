#include "rank/compression.h"

#include <algorithm>

namespace catapult::rank {

void CompressionStage::ProgramForModel(const ScoringEnsemble& ensemble) {
    operand_slots_.clear();
    std::vector<bool> referenced(kFeatureUniverse, false);
    for (int s = 0; s < ScoringEnsemble::kShardCount; ++s) {
        for (const auto& tree : ensemble.shard(s).trees()) {
            for (const auto& node : tree.nodes) {
                if (node.feature != TreeNode::kLeaf) {
                    referenced[node.feature] = true;
                }
            }
        }
    }
    for (std::uint32_t id = 0; id < kFeatureUniverse; ++id) {
        if (referenced[id]) operand_slots_.push_back(id);
    }
}

void CompressionStage::Apply(const FeatureStore& in, FeatureStore& out) const {
    for (const std::uint32_t slot : operand_slots_) {
        out.Set(slot, in.Get(slot));
    }
}

Time CompressionStage::ServiceTime() const {
    const std::int64_t scan_cycles =
        static_cast<std::int64_t>((kFeatureUniverse + 63) / 64) *
        timing_.cycles_per_64_slots;
    return timing_.clock.Cycles(timing_.base_cycles + scan_cycles);
}

}  // namespace catapult::rank
