// Software ranking baseline + the shared functional pipeline.
//
// The paper's comparisons (Figures 14-15) are FPGA-accelerated ranking
// versus "Bing's production-level ranker running without FPGAs". Both
// sides run the same logical computation; the software side runs it all
// on the host CPU, with latency variability that grows under load "due
// to contention in the CPU's memory hierarchy" (§5), while the
// FPGA-side host only runs the pre-processing portion (§4: SSD lookup,
// hit-vector computation, a few software features).
//
// RankingFunction is the shared functional path — the same feature
// FSMs, the same compiled-FFE semantics, the same ensemble — used by
// the software baseline, by tests, and (stage-wise) by the FPGA roles,
// which is what makes FPGA and software scores identical (§4).

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "common/units.h"
#include "rank/document.h"
#include "rank/feature_extraction.h"
#include "rank/ffe/processor.h"
#include "rank/model.h"
#include "sim/simulator.h"

namespace catapult::rank {

/** Full functional scoring chain for one model. */
class RankingFunction {
  public:
    explicit RankingFunction(const Model* model);

    /** Score one request end-to-end (FE -> FFE0 -> FFE1 -> Comp -> Score). */
    float Score(const CompressedRequest& request);

    /** Stage-wise access for the distributed FPGA roles. */
    void ExtractFeatures(const CompressedRequest& request, FeatureStore& store);
    void RunFfe0(FeatureStore& store) const { ffe0_.ExecuteAll(store); }
    void RunFfe1(FeatureStore& store) const { ffe1_.ExecuteAll(store); }
    void Compress(const FeatureStore& in, FeatureStore& out) const {
        model_->compression().Apply(in, out);
    }
    float FinalScore(const FeatureStore& store) const {
        return model_->ensemble().Score(store);
    }

    /**
     * Software-reference score: direct AST evaluation of the unsplit
     * expressions (what the CPU baseline computes). Identical to the
     * compiled path by construction; asserted in tests.
     */
    float ReferenceScore(const CompressedRequest& request);

    const Model& model() const { return *model_; }
    const ffe::FfeProcessor& ffe0() const { return ffe0_; }
    const ffe::FfeProcessor& ffe1() const { return ffe1_; }
    FeatureExtractor& extractor() { return extractor_; }

  private:
    const Model* model_;
    FeatureExtractor extractor_;
    ffe::FfeProcessor ffe0_;
    ffe::FfeProcessor ffe1_;
    FeatureStore scratch_;
    FeatureStore compressed_;
};

/**
 * A pool of CPU cores with FIFO dispatch and a contention model:
 * effective service time inflates as more cores are busy (memory
 * hierarchy contention, §5), with multiplicative lognormal noise.
 */
class CpuPool {
  public:
    struct Config {
        int cores = 12;  ///< §2.3: 12-core Sandy Bridge (two sockets).
        /** Service inflation at full occupancy: t *= 1 + alpha*(u^2). */
        double contention_alpha = 0.25;
        /** Lognormal noise sigma on each service time. */
        double noise_sigma = 0.30;
    };

    CpuPool(sim::Simulator* simulator, Rng rng, Config config);
    CpuPool(sim::Simulator* simulator, Rng rng)
        : CpuPool(simulator, rng, Config()) {}

    /** Submit a job with nominal `service` time; on_done fires at completion. */
    void Submit(Time service, std::function<void()> on_done);

    int busy_cores() const { return busy_; }
    std::size_t queue_depth() const { return queue_.size(); }
    double utilization() const {
        return static_cast<double>(busy_) / config_.cores;
    }

    const Config& config() const { return config_; }

  private:
    struct Job {
        Time service;
        std::function<void()> on_done;
    };

    void TryDispatch();

    sim::Simulator* simulator_;
    Rng rng_;
    Config config_;
    std::deque<Job> queue_;
    int busy_ = 0;
};

/**
 * Cost model for ranking work on the CPU (cycles at `cpu_clock`).
 * The FPGA-side host pays only the preprocessing component.
 */
struct SoftwareCostModel {
    Frequency cpu_clock = Frequency::GHz(2.5);
    double base_cycles = 150'000;
    double cycles_per_tuple = 900;      ///< metastream + FE work
    double cycles_per_ffe_op = 12;
    double cycles_per_tree_level = 9;
    /** Preprocessing-only (FPGA path): share of tuple work + base. */
    double prep_base_cycles = 120'000;
    double prep_cycles_per_tuple = 700;

    /** Full software ranking time for one request. */
    Time FullServiceTime(const CompressedRequest& request,
                         const Model& model) const;

    /** Host-side preprocessing time on the FPGA path. */
    Time PrepServiceTime(const CompressedRequest& request) const;
};

/**
 * One software-only ranking server: a CpuPool running the full ranking
 * computation per document.
 */
class SoftwareRankServer {
  public:
    struct Config {
        CpuPool::Config cpu;
        SoftwareCostModel cost;
    };

    SoftwareRankServer(sim::Simulator* simulator, Rng rng, Config config);
    SoftwareRankServer(sim::Simulator* simulator, Rng rng)
        : SoftwareRankServer(simulator, rng, Config()) {}

    /** Rank one request; on_done(latency) fires at completion. */
    void Submit(const CompressedRequest& request, const Model& model,
                std::function<void(Time)> on_done);

    CpuPool& cpu() { return cpu_; }
    const Config& config() const { return config_; }

  private:
    sim::Simulator* simulator_;
    Config config_;
    CpuPool cpu_;
};

}  // namespace catapult::rank
