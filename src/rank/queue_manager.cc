#include "rank/queue_manager.h"

#include <algorithm>

namespace catapult::rank {

std::size_t QueueManager::UpperBound(std::uint32_t model_id) const {
    const auto it = std::upper_bound(
        queues_.begin(), queues_.end(), model_id,
        [](std::uint32_t id, const ModelQueue& q) { return id < q.model_id; });
    return static_cast<std::size_t>(it - queues_.begin());
}

std::size_t QueueManager::FindQueue(std::uint32_t model_id) const {
    const auto it = std::lower_bound(
        queues_.begin(), queues_.end(), model_id,
        [](const ModelQueue& q, std::uint32_t id) { return q.model_id < id; });
    if (it != queues_.end() && it->model_id == model_id) {
        return static_cast<std::size_t>(it - queues_.begin());
    }
    return queues_.size();
}

void QueueManager::Enqueue(std::uint32_t model_id, EntryId entry, Time now) {
    std::size_t at = FindQueue(model_id);
    if (at == queues_.size()) {
        // First request ever for this model: splice its queue in at the
        // sorted position. Happens once per model per ring lifetime.
        const std::size_t insert_at = UpperBound(model_id);
        ModelQueue q;
        q.model_id = model_id;
        queues_.insert(queues_.begin() +
                           static_cast<std::ptrdiff_t>(insert_at),
                       std::move(q));
        at = insert_at;
    }
    queues_[at].entries.push_back(entry);
    ++total_queued_;
    ++counters_.enqueued;
    if (!has_model_) {
        // First work after idle: adopt that model without a reload only
        // if it matches; otherwise Next() will issue the reload.
        current_since_ = now;
    }
}

bool QueueManager::PickNextModel(std::uint32_t& model_id) const {
    // Round-robin over model ids strictly after the current one, wrapping.
    if (queues_.empty()) return false;
    std::size_t at = has_model_ ? UpperBound(current_model_) : 0;
    for (std::size_t scanned = 0; scanned < queues_.size() + 1; ++scanned) {
        if (at == queues_.size()) at = 0;
        if (!queues_[at].entries.empty()) {
            model_id = queues_[at].model_id;
            return true;
        }
        ++at;
    }
    return false;
}

QueueManager::DispatchDecision QueueManager::Next(Time now) {
    DispatchDecision decision;
    if (total_queued_ == 0) return decision;  // kIdle

    // Timeout fairness: if we have sat on the current model past the
    // timeout and some other queue has work, rotate (§4.3).
    const bool timed_out =
        has_model_ && (now - current_since_) >= config_.queue_timeout &&
        TotalQueued() > QueuedFor(current_model_);

    const std::size_t current =
        has_model_ ? FindQueue(current_model_) : queues_.size();
    const bool current_has_work =
        current != queues_.size() && !queues_[current].entries.empty();

    if (current_has_work && !timed_out) {
        decision.kind = DispatchDecision::Kind::kDispatch;
        decision.entry = queues_[current].entries.front();
        decision.model_id = current_model_;
        queues_[current].entries.pop_front();
        --total_queued_;
        ++counters_.dispatched;
        return decision;
    }

    // Switch to the next non-empty queue -> Model Reload command.
    std::uint32_t next_model = 0;
    if (!PickNextModel(next_model)) return decision;  // kIdle
    if (has_model_ && next_model == current_model_ && current_has_work) {
        // Only this queue has work; timeout is moot, keep draining.
        decision.kind = DispatchDecision::Kind::kDispatch;
        decision.entry = queues_[current].entries.front();
        decision.model_id = current_model_;
        queues_[current].entries.pop_front();
        --total_queued_;
        ++counters_.dispatched;
        current_since_ = now;
        return decision;
    }
    if (timed_out) ++counters_.timeout_switches;
    ++counters_.model_switches;
    current_model_ = next_model;
    has_model_ = true;
    current_since_ = now;
    decision.kind = DispatchDecision::Kind::kModelReload;
    decision.model_id = next_model;
    return decision;
}

void QueueManager::Reset() {
    queues_.clear();
    total_queued_ = 0;
    has_model_ = false;
    current_model_ = 0;
    current_since_ = 0;
}

std::size_t QueueManager::QueuedFor(std::uint32_t model_id) const {
    const std::size_t at = FindQueue(model_id);
    return at == queues_.size() ? 0 : queues_[at].entries.size();
}

}  // namespace catapult::rank
