#include "rank/queue_manager.h"

namespace catapult::rank {

void QueueManager::Enqueue(std::uint32_t model_id, EntryId entry, Time now) {
    queues_[model_id].push_back(entry);
    ++total_queued_;
    ++counters_.enqueued;
    if (!has_model_) {
        // First work after idle: adopt that model without a reload only
        // if it matches; otherwise Next() will issue the reload.
        current_since_ = now;
    }
}

bool QueueManager::PickNextModel(std::uint32_t& model_id) const {
    // Round-robin over model ids strictly after the current one, wrapping.
    if (queues_.empty()) return false;
    auto it = has_model_ ? queues_.upper_bound(current_model_) : queues_.begin();
    for (std::size_t scanned = 0; scanned < queues_.size() + 1; ++scanned) {
        if (it == queues_.end()) it = queues_.begin();
        if (!it->second.empty()) {
            model_id = it->first;
            return true;
        }
        ++it;
    }
    return false;
}

QueueManager::DispatchDecision QueueManager::Next(Time now) {
    DispatchDecision decision;
    if (total_queued_ == 0) return decision;  // kIdle

    // Timeout fairness: if we have sat on the current model past the
    // timeout and some other queue has work, rotate (§4.3).
    const bool timed_out =
        has_model_ && (now - current_since_) >= config_.queue_timeout &&
        TotalQueued() > QueuedFor(current_model_);

    auto current = queues_.find(current_model_);
    const bool current_has_work = has_model_ && current != queues_.end() &&
                                  !current->second.empty();

    if (current_has_work && !timed_out) {
        decision.kind = DispatchDecision::Kind::kDispatch;
        decision.entry = current->second.front();
        decision.model_id = current_model_;
        current->second.pop_front();
        --total_queued_;
        ++counters_.dispatched;
        return decision;
    }

    // Switch to the next non-empty queue -> Model Reload command.
    std::uint32_t next_model = 0;
    if (!PickNextModel(next_model)) return decision;  // kIdle
    if (has_model_ && next_model == current_model_ && current_has_work) {
        // Only this queue has work; timeout is moot, keep draining.
        decision.kind = DispatchDecision::Kind::kDispatch;
        decision.entry = current->second.front();
        decision.model_id = current_model_;
        current->second.pop_front();
        --total_queued_;
        ++counters_.dispatched;
        current_since_ = now;
        return decision;
    }
    if (timed_out) ++counters_.timeout_switches;
    ++counters_.model_switches;
    current_model_ = next_model;
    has_model_ = true;
    current_since_ = now;
    decision.kind = DispatchDecision::Kind::kModelReload;
    decision.model_id = next_model;
    return decision;
}

void QueueManager::Reset() {
    queues_.clear();
    total_queued_ = 0;
    has_model_ = false;
    current_model_ = 0;
    current_since_ = 0;
}

std::size_t QueueManager::QueuedFor(std::uint32_t model_id) const {
    const auto it = queues_.find(model_id);
    return it == queues_.end() ? 0 : it->second.size();
}

}  // namespace catapult::rank
