// Free Form Expressions (§4.5): mathematical combinations of extracted
// features.
//
// "There are typically thousands of FFEs, ranging from very simple
// (such as adding two features) to large and complex (thousands of
// operations including conditional execution and complex floating
// point operators such as ln, pow, and divide)."
//
// Expressions are ASTs over feature references and constants. The same
// AST is evaluated directly by the software baseline and compiled to
// the FFE processor ISA for the FPGA path; the compiler preserves
// evaluation order so both paths produce bit-identical floats.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "rank/feature_space.h"

namespace catapult::rank::ffe {

enum class OpCode : std::uint8_t {
    // Simple fully-pipelined ops.
    kAdd,
    kSub,
    kMul,
    kMax,
    kMin,
    kCmpGt,    ///< 1.0f if a > b else 0.0f.
    kSelect,   ///< cond != 0 ? a : b  (conditional execution).
    // Complex-block ops (shared per 6-core cluster, §4.5).
    kDiv,
    kLn,
    kExp,
    kFloatToInt,  ///< truncation to integer value, still carried as float.
    // Leaf loads.
    kLoadFeature,
    kLoadConst,
};

const char* ToString(OpCode op);

/** True for ops executed by the cluster-shared complex block. */
bool IsComplexOp(OpCode op);

/** Expression AST node. */
struct Expr {
    OpCode op = OpCode::kLoadConst;
    float constant = 0.0f;          ///< kLoadConst.
    std::uint32_t feature = 0;      ///< kLoadFeature.
    std::vector<std::unique_ptr<Expr>> children;

    /** Total operation count (nodes). */
    int OpCount() const;
    /** Count of complex-block operations. */
    int ComplexOpCount() const;
    /** Depth of the tree. */
    int Depth() const;

    /** Direct recursive evaluation against a feature store. */
    float Evaluate(const FeatureStore& store) const;

    std::unique_ptr<Expr> Clone() const;
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr MakeConst(float value);
ExprPtr MakeFeature(std::uint32_t feature);
ExprPtr MakeUnary(OpCode op, ExprPtr a);
ExprPtr MakeBinary(OpCode op, ExprPtr a, ExprPtr b);
ExprPtr MakeSelect(ExprPtr cond, ExprPtr if_true, ExprPtr if_false);

/**
 * Random expression generator for synthetic models. Sizes follow the
 * paper's description: most expressions are small, a heavy tail runs
 * to thousands of operations. `pow`, integer divide and mod are
 * compiler-expanded (§4.5), so the generator emits only primitive ops.
 */
class ExpressionGenerator {
  public:
    struct Config {
        /** P(small expression); small ~ 3-40 ops, else heavy tail. */
        double small_probability = 0.90;
        int small_min_ops = 3;
        int small_max_ops = 40;
        /** Heavy tail: lognormal, capped. */
        double tail_mean_ops = 250.0;
        double tail_sigma = 0.9;
        int max_ops = 4'000;
        /** Probability an internal node is a complex op. */
        double complex_probability = 0.12;
        /** Probability of conditional (select) nodes. */
        double select_probability = 0.06;
    };

    ExpressionGenerator(std::uint64_t seed, Config config);
    explicit ExpressionGenerator(std::uint64_t seed)
        : ExpressionGenerator(seed, Config()) {}

    /** Generate one expression with a sampled size. */
    ExprPtr Generate();

    /** Generate one expression with approximately `target_ops` nodes. */
    ExprPtr GenerateWithSize(int target_ops);

  private:
    ExprPtr Build(int budget);

    Config config_;
    Rng rng_;
};

}  // namespace catapult::rank::ffe
