#include "rank/ffe/processor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace catapult::rank::ffe {

FfeProcessor::FfeProcessor(Config config) : config_(config) {
    assert(config_.core_count > 0);
    assert(config_.threads_per_core > 0);
    assert(config_.cores_per_cluster > 0);
}

void FfeProcessor::LoadPrograms(std::vector<Program> programs) {
    programs_ = std::move(programs);
    assignment_ = AssignThreads(programs_, config_.core_count,
                                config_.threads_per_core);
    RecomputeTiming();
}

float FfeProcessor::Execute(const Program& program,
                            const FeatureStore& store) {
    // Virtual register file sized by the program (hardware windows
    // spill through the FST; numerically identical either way).
    std::vector<float> regs(program.register_count, 0.0f);
    float result = 0.0f;
    for (const Instruction& instr : program.instructions) {
        float value = 0.0f;
        const float a = instr.op == OpCode::kLoadConst ||
                                instr.op == OpCode::kLoadFeature
                            ? 0.0f
                            : regs[instr.src_a];
        switch (instr.op) {
          case OpCode::kLoadConst: value = instr.constant; break;
          case OpCode::kLoadFeature: value = store.Get(instr.feature); break;
          case OpCode::kAdd: value = a + regs[instr.src_b]; break;
          case OpCode::kSub: value = a - regs[instr.src_b]; break;
          case OpCode::kMul: value = a * regs[instr.src_b]; break;
          case OpCode::kMax:
            value = a > regs[instr.src_b] ? a : regs[instr.src_b];
            break;
          case OpCode::kMin:
            value = a < regs[instr.src_b] ? a : regs[instr.src_b];
            break;
          case OpCode::kCmpGt:
            value = a > regs[instr.src_b] ? 1.0f : 0.0f;
            break;
          case OpCode::kSelect:
            value = a != 0.0f ? regs[instr.src_b] : regs[instr.src_c];
            break;
          case OpCode::kDiv: {
            const float b = regs[instr.src_b];
            value = b == 0.0f ? 0.0f : a / b;
            break;
          }
          case OpCode::kLn:
            value = std::log(a > 1e-30f ? a : 1e-30f);
            break;
          case OpCode::kExp: {
            const float clamped = a > 60.0f ? 60.0f : (a < -60.0f ? -60.0f : a);
            value = std::exp(clamped);
            break;
          }
          case OpCode::kFloatToInt:
            value = std::trunc(a);
            break;
        }
        regs[instr.dst] = value;
        result = value;
    }
    return result;
}

void FfeProcessor::ExecuteAll(FeatureStore& store) const {
    for (const Program& program : programs_) {
        store.Set(program.output_slot, Execute(program, store));
    }
}

void FfeProcessor::RecomputeTiming() {
    breakdown_ = TimingBreakdown{};
    const int cores = config_.core_count;
    const int clusters =
        (cores + config_.cores_per_cluster - 1) / config_.cores_per_cluster;
    std::vector<std::int64_t> cluster_complex(
        static_cast<std::size_t>(clusters), 0);

    for (int core = 0; core < cores; ++core) {
        std::int64_t issue = 0;
        const auto& slots = assignment_.thread_queues[static_cast<std::size_t>(core)];
        for (const auto& queue : slots) {
            std::int64_t serial = 0;
            for (int index : queue) {
                const Program& p = programs_[static_cast<std::size_t>(index)];
                issue += p.InstructionCount();
                serial += p.serial_latency;
                cluster_complex[static_cast<std::size_t>(
                    core / config_.cores_per_cluster)] +=
                    static_cast<std::int64_t>(p.complex_ops) *
                    config_.complex_initiation_interval;
            }
            breakdown_.max_thread_serial_cycles =
                std::max(breakdown_.max_thread_serial_cycles, serial);
        }
        breakdown_.max_core_issue_cycles =
            std::max(breakdown_.max_core_issue_cycles, issue);
    }
    for (std::int64_t c : cluster_complex) {
        breakdown_.max_cluster_complex_cycles =
            std::max(breakdown_.max_cluster_complex_cycles, c);
    }
    document_cycles_ =
        std::max({breakdown_.max_core_issue_cycles,
                  breakdown_.max_thread_serial_cycles,
                  breakdown_.max_cluster_complex_cycles}) +
        config_.overhead_cycles;
}

std::int64_t FfeProcessor::DocumentCycles() const { return document_cycles_; }

Time FfeProcessor::DocumentServiceTime() const {
    return config_.clock.Cycles(document_cycles_);
}

std::int64_t FfeProcessor::TotalInstructions() const {
    std::int64_t total = 0;
    for (const auto& p : programs_) total += p.InstructionCount();
    return total;
}

Bytes FfeProcessor::InstructionMemoryBytes() const {
    // 8 bytes per instruction word in the M20K instruction memories.
    return TotalInstructions() * 8;
}

}  // namespace catapult::rank::ffe
