// The FFE multicore soft processor (§4.5).
//
// "We developed a custom multicore processor with massive multithreading
// and long-latency operations in mind ... highly area-efficient,
// allowing us to instantiate 60 cores on a single D5 FPGA."
// Key microarchitectural properties modelled:
//   * each core runs 4 simultaneous threads arbitrating for functional
//     units cycle-by-cycle; all units are fully pipelined;
//   * threads are statically prioritized (the assembler's longest-first
//     slot assignment, implemented in AssignThreads);
//   * cores are clustered in groups of 6 sharing one complex block
//     (ln, fpdiv, exp, float-to-int) with fair round-robin arbitration;
//   * the complex block also houses the double-buffered Feature Storage
//     Tile (FST).
//
// The functional interpreter executes compiled programs exactly (same
// float operations, same order, as direct AST evaluation). The timing
// model computes the per-document stage makespan from three binding
// constraints: per-core issue bandwidth (1 instr/cycle shared by its 4
// thread slots), per-thread serial dependency latency, and per-cluster
// complex-block throughput.

#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "rank/feature_space.h"
#include "rank/ffe/compiler.h"

namespace catapult::rank::ffe {

class FfeProcessor {
  public:
    struct Config {
        int core_count = 60;          ///< §4.5.
        int threads_per_core = 4;     ///< §4.5.
        int cores_per_cluster = 6;    ///< §4.5.
        Frequency clock = Frequency::MHz(125.0);  ///< Table 1 (FFE0/1).
        OpLatencies latencies;
        /** Complex block initiation interval (ops/cycle = 1/II). */
        int complex_initiation_interval = 1;
        /** Fixed overhead: FST swap, pipeline fill/drain. */
        std::int64_t overhead_cycles = 120;
    };

    FfeProcessor() : FfeProcessor(Config()) {}
    explicit FfeProcessor(Config config);

    /**
     * Load a compiled model partition (programs + static assignment).
     * Mirrors a Model Reload (§4.3): instruction memories rewritten.
     */
    void LoadPrograms(std::vector<Program> programs);

    const std::vector<Program>& programs() const { return programs_; }

    /**
     * Functional execution: run every loaded program against `store`,
     * writing each result to its output FST slot.
     */
    void ExecuteAll(FeatureStore& store) const;

    /** Execute one program (used by tests). */
    static float Execute(const Program& program, const FeatureStore& store);

    /**
     * Timing: stage cycles to process one document with the loaded
     * programs (max of issue, dependency and complex-block bounds over
     * all cores/clusters, plus fixed overhead).
     */
    std::int64_t DocumentCycles() const;

    /** DocumentCycles converted through the core clock. */
    Time DocumentServiceTime() const;

    /** Breakdown of the three binding constraints (for ablation). */
    struct TimingBreakdown {
        std::int64_t max_core_issue_cycles = 0;
        std::int64_t max_thread_serial_cycles = 0;
        std::int64_t max_cluster_complex_cycles = 0;
    };
    TimingBreakdown Breakdown() const { return breakdown_; }

    /** Total instructions across loaded programs. */
    std::int64_t TotalInstructions() const;

    /** Instruction memory footprint (drives Model Reload cost, §4.3). */
    Bytes InstructionMemoryBytes() const;

    const Config& config() const { return config_; }

  private:
    void RecomputeTiming();

    Config config_;
    std::vector<Program> programs_;
    ThreadAssignment assignment_;
    TimingBreakdown breakdown_;
    std::int64_t document_cycles_ = 0;
};

}  // namespace catapult::rank::ffe
