#include "rank/ffe/compiler.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace catapult::rank::ffe {

int OpLatencies::For(OpCode op) const {
    switch (op) {
      case OpCode::kDiv: return fpdiv;
      case OpCode::kLn: return ln;
      case OpCode::kExp: return exp;
      case OpCode::kFloatToInt: return float_to_int;
      case OpCode::kLoadFeature:
      case OpCode::kLoadConst:
        return load;
      default:
        return simple;
    }
}

std::uint32_t FfeCompiler::Lower(const Expr& expr, Program& program) const {
    // Post-order lowering: children first, then this node. Register
    // numbering is SSA-like (one virtual register per node).
    std::uint32_t srcs[3] = {0, 0, 0};
    assert(expr.children.size() <= 3);
    for (std::size_t i = 0; i < expr.children.size(); ++i) {
        srcs[i] = Lower(*expr.children[i], program);
    }
    Instruction instr;
    instr.op = expr.op;
    instr.dst = program.register_count++;
    instr.src_a = srcs[0];
    instr.src_b = srcs[1];
    instr.src_c = srcs[2];
    instr.constant = expr.constant;
    instr.feature = expr.feature;
    program.instructions.push_back(instr);
    if (IsComplexOp(expr.op)) ++program.complex_ops;
    return instr.dst;
}

std::int64_t FfeCompiler::CriticalPath(const Expr& expr) const {
    std::int64_t child_path = 0;
    for (const auto& child : expr.children) {
        child_path = std::max(child_path, CriticalPath(*child));
    }
    return child_path + config_.latencies.For(expr.op);
}

Program FfeCompiler::Compile(const Expr& expr,
                             std::uint32_t output_slot) const {
    Program program;
    program.output_slot = output_slot;
    Lower(expr, program);
    program.serial_latency = CriticalPath(expr);
    return program;
}

std::vector<FfeCompiler::MetafeaturePart> FfeCompiler::SplitForMetafeatures(
    Expr& expr, std::uint32_t& next_meta_slot) const {
    std::vector<MetafeaturePart> upstream;
    if (expr.OpCount() <= config_.split_threshold_ops) return upstream;

    // Walk the tree; when a subtree of <= chunk ops (but substantial
    // size) hangs under an oversized node, detach it, assign it a
    // metafeature slot, and replace it with a feature load. Repeat
    // until the remainder fits the threshold.
    const int chunk = config_.split_chunk_ops;
    while (expr.OpCount() > config_.split_threshold_ops) {
        // Find the largest subtree with OpCount <= chunk.
        Expr* best = nullptr;
        ExprPtr* best_edge = nullptr;
        int best_size = 0;

        // Iterative DFS over child edges.
        std::vector<ExprPtr*> stack;
        for (auto& child : expr.children) stack.push_back(&child);
        while (!stack.empty()) {
            ExprPtr* edge = stack.back();
            stack.pop_back();
            Expr* node = edge->get();
            const int size = node->OpCount();
            if (size <= chunk) {
                // Candidate; don't descend further (children are smaller).
                if (size > best_size && node->op != OpCode::kLoadFeature &&
                    node->op != OpCode::kLoadConst) {
                    best_size = size;
                    best = node;
                    best_edge = edge;
                }
                continue;
            }
            for (auto& child : node->children) stack.push_back(&child);
        }
        if (best == nullptr || best_edge == nullptr) break;  // degenerate

        const std::uint32_t slot =
            kMetaFeatureBase + (next_meta_slot++ % kMetaFeatureSlots);
        ExprPtr detached = std::move(*best_edge);
        *best_edge = MakeFeature(slot);
        upstream.push_back(MetafeaturePart{slot, std::move(detached)});
    }
    return upstream;
}

ThreadAssignment AssignThreads(const std::vector<Program>& programs,
                               int core_count, int threads_per_core) {
    ThreadAssignment assignment;
    assignment.thread_queues.resize(static_cast<std::size_t>(core_count));
    for (auto& core : assignment.thread_queues) {
        core.resize(static_cast<std::size_t>(threads_per_core));
    }
    if (programs.empty() || core_count == 0) return assignment;

    // Longest expected latency first (§4.5).
    std::vector<int> order(programs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return programs[static_cast<std::size_t>(a)].serial_latency >
               programs[static_cast<std::size_t>(b)].serial_latency;
    });

    // Fill Slot 0 on all cores, then Slot 1 on all cores, etc., then
    // append the remainder round-robin starting again at Slot 0.
    const std::size_t slots =
        static_cast<std::size_t>(core_count) *
        static_cast<std::size_t>(threads_per_core);
    for (std::size_t k = 0; k < order.size(); ++k) {
        const std::size_t flat = k % slots;
        const std::size_t slot = flat / static_cast<std::size_t>(core_count);
        const std::size_t core = flat % static_cast<std::size_t>(core_count);
        assignment.thread_queues[core][slot].push_back(order[k]);
    }
    return assignment;
}

}  // namespace catapult::rank::ffe
