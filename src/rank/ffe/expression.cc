#include "rank/ffe/expression.h"

#include <cassert>
#include <cmath>

namespace catapult::rank::ffe {

const char* ToString(OpCode op) {
    switch (op) {
      case OpCode::kAdd: return "add";
      case OpCode::kSub: return "sub";
      case OpCode::kMul: return "mul";
      case OpCode::kMax: return "max";
      case OpCode::kMin: return "min";
      case OpCode::kCmpGt: return "cmpgt";
      case OpCode::kSelect: return "select";
      case OpCode::kDiv: return "div";
      case OpCode::kLn: return "ln";
      case OpCode::kExp: return "exp";
      case OpCode::kFloatToInt: return "f2i";
      case OpCode::kLoadFeature: return "ldf";
      case OpCode::kLoadConst: return "ldc";
    }
    return "?";
}

bool IsComplexOp(OpCode op) {
    // §4.5: "The complex block consists of units for ln, fpdiv, exp,
    // and float-to-int."
    return op == OpCode::kDiv || op == OpCode::kLn || op == OpCode::kExp ||
           op == OpCode::kFloatToInt;
}

int Expr::OpCount() const {
    int count = 1;
    for (const auto& child : children) count += child->OpCount();
    return count;
}

int Expr::ComplexOpCount() const {
    int count = IsComplexOp(op) ? 1 : 0;
    for (const auto& child : children) count += child->ComplexOpCount();
    return count;
}

int Expr::Depth() const {
    int depth = 0;
    for (const auto& child : children) depth = std::max(depth, child->Depth());
    return depth + 1;
}

float Expr::Evaluate(const FeatureStore& store) const {
    switch (op) {
      case OpCode::kLoadConst:
        return constant;
      case OpCode::kLoadFeature:
        return store.Get(feature);
      case OpCode::kAdd:
        return children[0]->Evaluate(store) + children[1]->Evaluate(store);
      case OpCode::kSub:
        return children[0]->Evaluate(store) - children[1]->Evaluate(store);
      case OpCode::kMul:
        return children[0]->Evaluate(store) * children[1]->Evaluate(store);
      case OpCode::kMax: {
        const float a = children[0]->Evaluate(store);
        const float b = children[1]->Evaluate(store);
        return a > b ? a : b;
      }
      case OpCode::kMin: {
        const float a = children[0]->Evaluate(store);
        const float b = children[1]->Evaluate(store);
        return a < b ? a : b;
      }
      case OpCode::kCmpGt:
        return children[0]->Evaluate(store) > children[1]->Evaluate(store)
                   ? 1.0f
                   : 0.0f;
      case OpCode::kSelect:
        // Hardware evaluates all three inputs (no branches) and muxes.
        {
            const float cond = children[0]->Evaluate(store);
            const float if_true = children[1]->Evaluate(store);
            const float if_false = children[2]->Evaluate(store);
            return cond != 0.0f ? if_true : if_false;
        }
      case OpCode::kDiv: {
        const float a = children[0]->Evaluate(store);
        const float b = children[1]->Evaluate(store);
        // Hardware divider saturates rather than producing inf/NaN.
        if (b == 0.0f) return 0.0f;
        return a / b;
      }
      case OpCode::kLn: {
        const float a = children[0]->Evaluate(store);
        // ln is defined for positives; hardware clamps at a small eps.
        return std::log(a > 1e-30f ? a : 1e-30f);
      }
      case OpCode::kExp: {
        const float a = children[0]->Evaluate(store);
        // Clamp to keep the pipeline's fixed range.
        const float clamped = a > 60.0f ? 60.0f : (a < -60.0f ? -60.0f : a);
        return std::exp(clamped);
      }
      case OpCode::kFloatToInt:
        return std::trunc(children[0]->Evaluate(store));
    }
    return 0.0f;
}

ExprPtr Expr::Clone() const {
    auto copy = std::make_unique<Expr>();
    copy->op = op;
    copy->constant = constant;
    copy->feature = feature;
    copy->children.reserve(children.size());
    for (const auto& child : children) copy->children.push_back(child->Clone());
    return copy;
}

ExprPtr MakeConst(float value) {
    auto e = std::make_unique<Expr>();
    e->op = OpCode::kLoadConst;
    e->constant = value;
    return e;
}

ExprPtr MakeFeature(std::uint32_t feature) {
    auto e = std::make_unique<Expr>();
    e->op = OpCode::kLoadFeature;
    e->feature = feature;
    return e;
}

ExprPtr MakeUnary(OpCode op, ExprPtr a) {
    auto e = std::make_unique<Expr>();
    e->op = op;
    e->children.push_back(std::move(a));
    return e;
}

ExprPtr MakeBinary(OpCode op, ExprPtr a, ExprPtr b) {
    auto e = std::make_unique<Expr>();
    e->op = op;
    e->children.push_back(std::move(a));
    e->children.push_back(std::move(b));
    return e;
}

ExprPtr MakeSelect(ExprPtr cond, ExprPtr if_true, ExprPtr if_false) {
    auto e = std::make_unique<Expr>();
    e->op = OpCode::kSelect;
    e->children.push_back(std::move(cond));
    e->children.push_back(std::move(if_true));
    e->children.push_back(std::move(if_false));
    return e;
}

ExpressionGenerator::ExpressionGenerator(std::uint64_t seed, Config config)
    : config_(config), rng_(seed) {}

ExprPtr ExpressionGenerator::Generate() {
    int target;
    if (rng_.Chance(config_.small_probability)) {
        target = static_cast<int>(
            rng_.UniformInt(config_.small_min_ops, config_.small_max_ops));
    } else {
        const double sigma = config_.tail_sigma;
        const double mu = std::log(config_.tail_mean_ops) - sigma * sigma / 2;
        target = static_cast<int>(rng_.LogNormal(mu, sigma));
        if (target < config_.small_max_ops) target = config_.small_max_ops;
        if (target > config_.max_ops) target = config_.max_ops;
    }
    return GenerateWithSize(target);
}

ExprPtr ExpressionGenerator::GenerateWithSize(int target_ops) {
    return Build(target_ops);
}

ExprPtr ExpressionGenerator::Build(int budget) {
    if (budget <= 1) {
        if (rng_.Chance(0.75)) {
            return MakeFeature(static_cast<std::uint32_t>(
                rng_.NextBounded(kDynamicFeatureCount + kSoftwareFeatureSlots)));
        }
        return MakeConst(static_cast<float>(rng_.Uniform(-4.0, 4.0)));
    }
    if (budget >= 4 && rng_.Chance(config_.select_probability)) {
        const int b0 = 1 + static_cast<int>(
                               rng_.NextBounded(static_cast<std::uint64_t>(
                                   (budget - 1) / 3 + 1)));
        const int b1 = 1 + static_cast<int>(
                               rng_.NextBounded(static_cast<std::uint64_t>(
                                   (budget - 1 - b0) / 2 + 1)));
        const int b2 = budget - 1 - b0 - b1;
        return MakeSelect(Build(b0), Build(b1), Build(b2 > 0 ? b2 : 1));
    }
    if (rng_.Chance(config_.complex_probability)) {
        const OpCode op = static_cast<OpCode>(
            static_cast<int>(OpCode::kDiv) + rng_.NextBounded(4));
        if (op == OpCode::kDiv) {
            const int left = (budget - 1) / 2;
            return MakeBinary(op, Build(left > 0 ? left : 1),
                              Build(budget - 1 - left > 0 ? budget - 1 - left : 1));
        }
        return MakeUnary(op, Build(budget - 1));
    }
    static constexpr OpCode kSimple[] = {OpCode::kAdd, OpCode::kSub,
                                         OpCode::kMul, OpCode::kMax,
                                         OpCode::kMin, OpCode::kCmpGt};
    const OpCode op = kSimple[rng_.NextBounded(6)];
    // Skewed split keeps trees chain-like, matching hand-written FFEs.
    const double frac = 0.2 + 0.6 * rng_.NextDouble();
    int left = static_cast<int>((budget - 1) * frac);
    if (left < 1) left = 1;
    int right = budget - 1 - left;
    if (right < 1) right = 1;
    return MakeBinary(op, Build(left), Build(right));
}

}  // namespace catapult::rank::ffe
