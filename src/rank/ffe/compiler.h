// FFE compiler: expression ASTs -> FFE processor programs (§4.5).
//
// The compiler performs three jobs the paper describes:
//  1. lowering ASTs to the register-based FFE ISA in strict post-order
//     (preserving evaluation order, so interpreter results match direct
//     AST evaluation bit-for-bit);
//  2. splitting the longest expressions across FPGAs: "An upstream FFE
//     unit can perform part of the computation and produce an
//     intermediate result called a metafeature";
//  3. static thread assignment: "The assembler maps the expressions
//     with the longest expected latency to Thread Slot 0 on all cores,
//     then fills in Slot 1 on all cores, and so forth", appending the
//     remaining expressions after every slot holds one.

#pragma once

#include <cstdint>
#include <vector>

#include "rank/ffe/expression.h"

namespace catapult::rank::ffe {

/** One FFE ISA instruction (3-address register form). */
struct Instruction {
    OpCode op = OpCode::kLoadConst;
    std::uint32_t dst = 0;
    std::uint32_t src_a = 0;
    std::uint32_t src_b = 0;
    std::uint32_t src_c = 0;      ///< kSelect only.
    float constant = 0.0f;        ///< kLoadConst.
    std::uint32_t feature = 0;    ///< kLoadFeature.
};

/** A compiled expression: instructions + destination FST slot. */
struct Program {
    std::vector<Instruction> instructions;
    /** FST slot the final value is written to. */
    std::uint32_t output_slot = 0;
    /** Registers used (virtual register file; hardware has a window). */
    std::uint32_t register_count = 0;
    /** Complex-block operations (for cluster arbitration accounting). */
    int complex_ops = 0;
    /**
     * Dependency critical path in cycles: the minimum time one thread
     * needs for this expression with fully-pipelined units (independent
     * subtrees overlap; dependent ops serialize).
     */
    std::int64_t serial_latency = 0;

    int InstructionCount() const {
        return static_cast<int>(instructions.size());
    }
};

/** Per-op issue-to-result latencies in FFE core cycles. */
struct OpLatencies {
    int simple = 4;        ///< add/sub/mul/max/min/cmp/select.
    int load = 2;          ///< feature/const load from FST.
    int fpdiv = 20;
    int ln = 24;
    int exp = 22;
    int float_to_int = 6;

    int For(OpCode op) const;
};

class FfeCompiler {
  public:
    struct Config {
        OpLatencies latencies;
        /**
         * Expressions with more ops than this are split across FPGAs
         * via metafeatures (§4.5) — bounding any one thread's
         * dependency chain within the macropipeline budget.
         */
        int split_threshold_ops = 128;
        /** Target op count per split-off metafeature subtree. */
        int split_chunk_ops = 64;
    };

    FfeCompiler() : FfeCompiler(Config()) {}
    explicit FfeCompiler(Config config) : config_(config) {}

    /** Compile one expression to a program writing `output_slot`. */
    Program Compile(const Expr& expr, std::uint32_t output_slot) const;

    /** A subtree detached to run upstream, writing `slot`. */
    struct MetafeaturePart {
        std::uint32_t slot = 0;
        ExprPtr expr;
    };

    /**
     * Split an oversized expression: returns the subtree expressions to
     * run upstream (each writing a metafeature slot) and rewrites
     * `expr` in place to reference those metafeatures. `next_meta_slot`
     * advances as slots are consumed.
     */
    std::vector<MetafeaturePart> SplitForMetafeatures(
        Expr& expr, std::uint32_t& next_meta_slot) const;

    const Config& config() const { return config_; }

  private:
    std::uint32_t Lower(const Expr& expr, Program& program) const;
    std::int64_t CriticalPath(const Expr& expr) const;

    Config config_;
};

/**
 * Static thread assignment (§4.5): distribute programs over
 * `core_count * threads_per_core` thread slots, longest first, exactly
 * as the paper's assembler does. Returns, per (core, slot), the list of
 * program indices assigned there.
 */
struct ThreadAssignment {
    /** thread_queues[core][slot] = indices into the program list. */
    std::vector<std::vector<std::vector<int>>> thread_queues;
};

ThreadAssignment AssignThreads(const std::vector<Program>& programs,
                               int core_count, int threads_per_core);

}  // namespace catapult::rank::ffe
