#include "rank/document.h"

#include <cassert>
#include <cstring>

namespace catapult::rank {

namespace {

// Header layout (40 bytes): magic, version, query/document identity, and
// the §4.1 "necessary additional fields": location and length of the
// hit vector, the software-computed features, document length, and
// number of query terms.
constexpr std::uint16_t kMagic = 0xC47A;  // "CATApult"
constexpr std::uint8_t kVersion = 1;
constexpr Bytes kHeaderBytes = 40;
constexpr Bytes kSoftwareFeatureBytes = 6;  // id:2 + float:4

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v & 0xFF));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}
void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

std::uint16_t GetU16(const std::uint8_t* p) {
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t GetU32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}
std::uint64_t GetU64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

}  // namespace

int HitTuple::EncodedSize() const {
    // 2-byte form: small delta, no properties.
    if (properties == 0 && delta <= 0xFF) return 2;
    // 4-byte form: 16-bit delta, 8-bit properties.
    if (delta <= 0xFFFF && properties <= 0xFF) return 4;
    // 6-byte form: 24-bit delta, 16-bit properties.
    return 6;
}

Bytes CompressedRequest::HeaderSize() { return kHeaderBytes; }

Bytes CompressedRequest::EncodedSize() const {
    Bytes hit_vector = 0;
    HitVectorReader reader(*this);
    HitTuple tuple;
    while (reader.Next(tuple)) hit_vector += tuple.EncodedSize();
    return kHeaderBytes +
           static_cast<Bytes>(software_features.size()) * kSoftwareFeatureBytes +
           hit_vector;
}

HitVectorReader::HitVectorReader(const CompressedRequest& request)
    : request_(request),
      rng_(request.content_seed ^ (request.doc_id * 0x9E3779B97F4A7C15ull)) {}

bool HitVectorReader::Next(HitTuple& tuple) {
    if (produced_ >= request_.tuple_count) return false;
    // Deltas are mostly small gaps between query-term hits; occasional
    // long jumps cross section boundaries.
    const double shape = rng_.NextDouble();
    if (shape < 0.85) {
        tuple.delta = 1 + static_cast<std::uint32_t>(rng_.Geometric(0.10));
    } else if (shape < 0.985) {
        tuple.delta = 256 + static_cast<std::uint32_t>(rng_.Geometric(0.002));
    } else {
        tuple.delta =
            65536 + static_cast<std::uint32_t>(rng_.Geometric(0.00005));
    }
    const int terms =
        request_.query.term_count > 0 ? request_.query.term_count : 1;
    tuple.term = static_cast<std::uint8_t>(
        rng_.NextBounded(static_cast<std::uint64_t>(terms)));
    tuple.stream = static_cast<std::uint8_t>(rng_.WeightedIndex(
        {0.55, 0.25, 0.15, 0.05}));  // body, title, anchor, url
    // Properties (match weight class etc.): frequency depends on the
    // query term, which drives the 2/4/6-byte size mix (§4.1).
    const double p_props = tuple.term >= 4 ? 0.35 : 0.12;
    if (rng_.Chance(p_props)) {
        tuple.properties = static_cast<std::uint16_t>(
            1 + rng_.NextBounded(rng_.Chance(0.1) ? 0xFFFEull : 0xFEull));
    } else {
        tuple.properties = 0;
    }
    position_ += tuple.delta;
    ++produced_;
    return true;
}

std::vector<std::uint8_t> RequestCodec::Encode(
    const CompressedRequest& request) {
    std::vector<std::uint8_t> out;
    out.reserve(static_cast<std::size_t>(request.EncodedSize()));

    PutU16(out, kMagic);
    out.push_back(kVersion);
    out.push_back(static_cast<std::uint8_t>(request.query.term_count));
    PutU32(out, request.query.model_id);
    PutU64(out, request.query.query_id);
    PutU64(out, request.doc_id);
    PutU32(out, request.document_length);
    PutU32(out, request.tuple_count);
    PutU16(out, static_cast<std::uint16_t>(request.software_features.size()));
    out.push_back(request.truncated ? 1 : 0);
    out.push_back(0);  // pad
    PutU32(out, 0);    // hit vector byte length, patched below
    assert(static_cast<Bytes>(out.size()) == kHeaderBytes);

    for (const auto& feature : request.software_features) {
        PutU16(out, feature.feature_id);
        std::uint32_t bits;
        static_assert(sizeof bits == sizeof feature.value);
        std::memcpy(&bits, &feature.value, sizeof bits);
        PutU32(out, bits);
    }

    const std::size_t hit_vector_start = out.size();
    HitVectorReader reader(request);
    HitTuple tuple;
    while (reader.Next(tuple)) {
        const int size = tuple.EncodedSize();
        const std::uint8_t size_code =
            size == 2 ? 0 : (size == 4 ? 1 : 2);
        const std::uint8_t tag = static_cast<std::uint8_t>(
            (size_code << 6) | ((tuple.term & 0x0F) << 2) |
            (tuple.stream & 0x03));
        out.push_back(tag);
        switch (size) {
          case 2:
            out.push_back(static_cast<std::uint8_t>(tuple.delta));
            break;
          case 4:
            out.push_back(static_cast<std::uint8_t>(tuple.delta & 0xFF));
            out.push_back(static_cast<std::uint8_t>(tuple.delta >> 8));
            out.push_back(static_cast<std::uint8_t>(tuple.properties));
            break;
          default:
            out.push_back(static_cast<std::uint8_t>(tuple.delta & 0xFF));
            out.push_back(static_cast<std::uint8_t>((tuple.delta >> 8) & 0xFF));
            out.push_back(static_cast<std::uint8_t>((tuple.delta >> 16) & 0xFF));
            out.push_back(static_cast<std::uint8_t>(tuple.properties & 0xFF));
            out.push_back(static_cast<std::uint8_t>(tuple.properties >> 8));
            break;
        }
    }
    const auto hit_vector_bytes =
        static_cast<std::uint32_t>(out.size() - hit_vector_start);
    out[36] = static_cast<std::uint8_t>(hit_vector_bytes & 0xFF);
    out[37] = static_cast<std::uint8_t>((hit_vector_bytes >> 8) & 0xFF);
    out[38] = static_cast<std::uint8_t>((hit_vector_bytes >> 16) & 0xFF);
    out[39] = static_cast<std::uint8_t>((hit_vector_bytes >> 24) & 0xFF);
    return out;
}

bool RequestCodec::Decode(const std::vector<std::uint8_t>& bytes,
                          CompressedRequest& request,
                          std::vector<HitTuple>& tuples) {
    if (static_cast<Bytes>(bytes.size()) < kHeaderBytes) return false;
    const std::uint8_t* p = bytes.data();
    if (GetU16(p) != kMagic || p[2] != kVersion) return false;
    request = CompressedRequest{};
    request.query.term_count = p[3];
    request.query.model_id = GetU32(p + 4);
    request.query.query_id = GetU64(p + 8);
    request.doc_id = GetU64(p + 16);
    request.document_length = GetU32(p + 24);
    request.tuple_count = GetU32(p + 28);
    const std::uint16_t feature_count = GetU16(p + 32);
    request.truncated = p[34] != 0;
    const std::uint32_t hit_vector_bytes = GetU32(p + 36);

    std::size_t offset = static_cast<std::size_t>(kHeaderBytes);
    request.software_features.reserve(feature_count);
    for (std::uint16_t i = 0; i < feature_count; ++i) {
        if (offset + 6 > bytes.size()) return false;
        SoftwareFeature feature;
        feature.feature_id = GetU16(p + offset);
        const std::uint32_t bits = GetU32(p + offset + 2);
        std::memcpy(&feature.value, &bits, sizeof feature.value);
        request.software_features.push_back(feature);
        offset += 6;
    }

    const std::size_t hit_vector_end = offset + hit_vector_bytes;
    if (hit_vector_end != bytes.size()) return false;
    tuples.clear();
    tuples.reserve(request.tuple_count);
    while (offset < hit_vector_end) {
        const std::uint8_t tag = p[offset];
        const int size_code = tag >> 6;
        HitTuple tuple;
        tuple.term = (tag >> 2) & 0x0F;
        tuple.stream = tag & 0x03;
        if (size_code == 0) {
            if (offset + 2 > bytes.size()) return false;
            tuple.delta = p[offset + 1];
            tuple.properties = 0;
            offset += 2;
        } else if (size_code == 1) {
            if (offset + 4 > bytes.size()) return false;
            tuple.delta = static_cast<std::uint32_t>(p[offset + 1]) |
                          (static_cast<std::uint32_t>(p[offset + 2]) << 8);
            tuple.properties = p[offset + 3];
            offset += 4;
        } else if (size_code == 2) {
            if (offset + 6 > bytes.size()) return false;
            tuple.delta = static_cast<std::uint32_t>(p[offset + 1]) |
                          (static_cast<std::uint32_t>(p[offset + 2]) << 8) |
                          (static_cast<std::uint32_t>(p[offset + 3]) << 16);
            tuple.properties =
                static_cast<std::uint16_t>(p[offset + 4] | (p[offset + 5] << 8));
            offset += 6;
        } else {
            return false;
        }
        tuples.push_back(tuple);
    }
    return tuples.size() == request.tuple_count;
}

}  // namespace catapult::rank
