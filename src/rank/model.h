// Ranking models and the model store (§4.3).
//
// "In practice there are many different sets of features, free forms,
// and scorers. We call these different sets models. Different models
// are selected based on each query, and can vary for language, query
// type, or for trying out experimental models."
//
// A Model bundles the FFE expression set (compiled into the two FFE
// chips' program partitions, with oversized expressions split via
// metafeatures), the scoring ensemble (sharded across the three scoring
// chips) and the programmed compression stage. The ModelStore holds all
// models resident in board DRAM and prices Model Reload: "In the worst
// case, it requires all of the embedded M20K RAMs to be reloaded with
// new contents from DRAM ... up to 250 us" at DDR3-1333.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/units.h"
#include "rank/compression.h"
#include "rank/document.h"
#include "rank/feature_extraction.h"
#include "rank/feature_space.h"
#include "rank/ffe/compiler.h"
#include "rank/ffe/expression.h"
#include "rank/ffe/processor.h"
#include "rank/scorer.h"

namespace catapult::rank {

/** Identifies which ring stage a reload cost is asked for. */
enum class PipelineStage : int {
    kFeatureExtraction = 0,
    kFfe0 = 1,
    kFfe1 = 2,
    kCompression = 3,
    kScoring0 = 4,
    kScoring1 = 5,
    kScoring2 = 6,
    kSpare = 7,
};

inline constexpr int kPipelineStageCount = 8;

const char* ToString(PipelineStage stage);

/** One complete ranking model. */
class Model {
  public:
    struct Config {
        int expression_count = 1'600;  ///< "typically thousands of FFEs".
        int tree_count = 6'000;
        int tree_depth = 6;
        ffe::ExpressionGenerator::Config expressions;
        ffe::FfeCompiler::Config compiler;
    };

    /** Deterministically synthesize the model for (model_id, seed). */
    static std::unique_ptr<Model> Generate(std::uint32_t model_id,
                                           std::uint64_t seed, Config config);
    static std::unique_ptr<Model> Generate(std::uint32_t model_id,
                                           std::uint64_t seed) {
        return Generate(model_id, seed, Config());
    }

    std::uint32_t model_id() const { return model_id_; }

    /** Original (unsplit) expressions — the software reference. */
    const std::vector<ffe::ExprPtr>& expressions() const {
        return expressions_;
    }

    /** Compiled partitions for the two FFE chips. */
    const std::vector<ffe::Program>& ffe0_programs() const { return ffe0_; }
    const std::vector<ffe::Program>& ffe1_programs() const { return ffe1_; }

    const ScoringEnsemble& ensemble() const { return ensemble_; }
    const CompressionStage& compression() const { return compression_; }

    /** Model memory that stage must reload on a model switch (§4.3). */
    Bytes ReloadBytes(PipelineStage stage) const;

    /** Total FFE operation count (software cost model input). */
    std::int64_t total_ffe_ops() const { return total_ffe_ops_; }
    std::int64_t total_tree_nodes() const;
    int metafeature_count() const { return metafeature_count_; }

  private:
    Model() = default;

    std::uint32_t model_id_ = 0;
    std::vector<ffe::ExprPtr> expressions_;
    std::vector<ffe::Program> ffe0_;
    std::vector<ffe::Program> ffe1_;
    ScoringEnsemble ensemble_;
    CompressionStage compression_;
    std::int64_t total_ffe_ops_ = 0;
    int metafeature_count_ = 0;
};

/**
 * All models resident in board DRAM, plus the reload cost model.
 */
class ModelStore {
  public:
    struct Config {
        /** Dual-channel DDR3-1333 streaming rate during reload. */
        Bandwidth reload_bandwidth = Bandwidth::MegabytesPerSecond(21'334);
        /** Command/quiesce overhead per stage reload. */
        Time reload_overhead = Microseconds(5);
        Model::Config model;
    };

    ModelStore() : ModelStore(Config()) {}
    explicit ModelStore(Config config) : config_(config) {}

    /**
     * Create (or return) the model for `model_id`. Generation is
     * deterministic in (model_id, seed, config) and the result is
     * immutable, so stores share generated models through a
     * process-wide cache: the multi-pod testbeds deploy dozens of
     * rings whose stores would otherwise each regenerate and recompile
     * identical models — the dominant deploy-time cost.
     */
    const Model& GetOrGenerate(std::uint32_t model_id, std::uint64_t seed);

    const Model* Find(std::uint32_t model_id) const;

    /** Reload duration for one stage switching to `model`. */
    Time StageReloadTime(const Model& model, PipelineStage stage) const;

    /**
     * Pipeline reload duration: stages reload concurrently once the
     * Model Reload command reaches them, so the pipeline stall is the
     * maximum stage reload plus command propagation.
     */
    Time PipelineReloadTime(const Model& model) const;

    /** §4.3 worst case: every M20K block reloaded from DRAM. */
    Time WorstCaseReloadTime() const;

    std::size_t resident_models() const { return models_.size(); }
    const Config& config() const { return config_; }

  private:
    Config config_;
    std::map<std::uint32_t, std::shared_ptr<const Model>> models_;
};

}  // namespace catapult::rank
