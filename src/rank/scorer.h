// Document scoring (§4.6): the machine-learned model evaluator.
//
// "The last stage of the pipeline is a machine learned model evaluator
// which takes the features and free form expressions as inputs and
// produces a single floating-point score." Bing-era rankers were
// boosted-tree ensembles; the evaluator here is an additive ensemble of
// depth-limited binary decision trees over the feature store, split
// across the three scoring FPGAs (Table 1: Scr0-2) which each evaluate
// a shard of the trees and accumulate partial sums down the pipeline.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "rank/feature_space.h"

namespace catapult::rank {

/** One node of a decision tree (leaf when feature == kLeaf). */
struct TreeNode {
    static constexpr std::uint32_t kLeaf = 0xFFFFFFFFu;
    std::uint32_t feature = kLeaf;
    float threshold = 0.0f;  ///< go left when value <= threshold
    float leaf_value = 0.0f;
    std::int32_t left = -1;
    std::int32_t right = -1;
};

/** A single regression tree stored as a node array. */
struct DecisionTree {
    std::vector<TreeNode> nodes;

    float Evaluate(const FeatureStore& store) const;
    int NodeCount() const { return static_cast<int>(nodes.size()); }
};

/** One scoring stage's shard of the ensemble. */
class ScorerShard {
  public:
    struct Timing {
        Frequency clock = Frequency::MHz(166.0);  ///< Table 1 (Scr0-2).
        /** Parallel tree-evaluation pipelines per chip. */
        int tree_units = 8;
        /** Cycles per tree per unit (pipelined traversal). */
        int cycles_per_tree = 2;
        /** Fixed cycles: partial-sum accumulate, forwarding. */
        std::int64_t base_cycles = 120;
    };

    ScorerShard() = default;
    explicit ScorerShard(std::vector<DecisionTree> trees)
        : trees_(std::move(trees)) {}

    /** Partial score: sum of this shard's tree outputs. */
    float PartialScore(const FeatureStore& store) const;

    /** Stage service time for one document. */
    Time ServiceTime() const;

    /** Model memory footprint (drives Model Reload cost, §4.3). */
    Bytes ModelBytes() const;

    int tree_count() const { return static_cast<int>(trees_.size()); }
    std::int64_t total_nodes() const;
    const std::vector<DecisionTree>& trees() const { return trees_; }
    Timing& timing() { return timing_; }
    const Timing& timing() const { return timing_; }

  private:
    std::vector<DecisionTree> trees_;
    Timing timing_;
};

/**
 * The full ensemble: shards for the three scoring FPGAs. The final
 * score is the sum of all shard partials (bit-identical regardless of
 * shard boundaries because partial sums accumulate in pipeline order).
 */
class ScoringEnsemble {
  public:
    static constexpr int kShardCount = 3;

    ScoringEnsemble() = default;
    explicit ScoringEnsemble(std::vector<DecisionTree> trees);

    /** Full score: evaluate all shards in pipeline order. */
    float Score(const FeatureStore& store) const;

    const ScorerShard& shard(int i) const { return shards_[i]; }
    ScorerShard& shard(int i) { return shards_[i]; }
    int total_trees() const;

  private:
    ScorerShard shards_[kShardCount];
};

/**
 * Synthesize a random ensemble for a model seed. Trees draw their split
 * features from a per-model operand window of `operand_budget` distinct
 * feature slots (models use feature subsets; this is what keeps the
 * compression stage's output — the operand set — small enough to stream
 * between the scoring chips within the macropipeline budget).
 */
ScoringEnsemble GenerateEnsemble(std::uint64_t seed, int tree_count,
                                 int max_depth = 6,
                                 int operand_budget = 4'000);

}  // namespace catapult::rank
