// Compression stage (§4.2).
//
// One FPGA in the ring runs "a compression stage that increases the
// efficiency of the scoring engines": it gathers the sparse dynamic
// features and FFE outputs into the dense operand layout the scoring
// engines consume. Functionally it selects exactly the feature slots
// the loaded model's trees reference (everything else need not cross
// the link); numerically it is the identity on those slots.

#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "rank/feature_space.h"
#include "rank/scorer.h"

namespace catapult::rank {

class CompressionStage {
  public:
    struct Timing {
        Frequency clock = Frequency::MHz(180.0);  ///< Table 1 (Comp).
        /** Cycles per 64 feature slots scanned (wide gather datapath). */
        int cycles_per_64_slots = 1;
        std::int64_t base_cycles = 100;
    };

    CompressionStage() = default;

    /**
     * Program the stage for a model: record which feature slots the
     * ensemble references (the compressed operand set).
     */
    void ProgramForModel(const ScoringEnsemble& ensemble);

    /**
     * Apply: copy the referenced slots from `in` to `out` (identity on
     * the operand set; other slots are dropped, matching the bandwidth
     * reduction purpose of the stage).
     */
    void Apply(const FeatureStore& in, FeatureStore& out) const;

    /** Stage service time per document. */
    Time ServiceTime() const;

    std::size_t operand_count() const { return operand_slots_.size(); }

    /**
     * Output payload bytes per document: the operand set packed to
     * 16-bit fixed point (the stage's whole purpose is making the
     * scoring engines' input stream cheap, §4.2).
     */
    Bytes CompressedPayloadBytes() const {
        return static_cast<Bytes>(operand_slots_.size()) * 2;
    }

    Timing& timing() { return timing_; }

  private:
    std::vector<std::uint32_t> operand_slots_;
    Timing timing_;
};

}  // namespace catapult::rank
