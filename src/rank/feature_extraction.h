// Feature Extraction (FE) stage (§4.4).
//
// "We currently implement 43 unique feature extraction state machines,
// with up to 4,484 features calculated ... Each state machine reads the
// stream of tuples one at a time and performs a local calculation ...
// At the end of a stream, the state machine outputs all non-zero
// feature values." The 43 FSMs run in parallel on the same input stream
// (MISD), fed by a Stream Processing FSM and drained by a Feature
// Gathering Network; inputs are double-buffered.
//
// Functionally, each FSM here is a real streaming state machine over
// the hit-vector tuples; the same code runs in the simulated FPGA role
// and in the software baseline, which is what makes the two paths'
// scores identical (§4). Timing-wise, the stage cost is the stream
// issue rate (the FSMs themselves keep up at 1-2 cycles per token
// because they run in parallel).

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "rank/document.h"
#include "rank/feature_space.h"

namespace catapult::rank {

/** Identifies one of the 43 FSM computation kinds. */
enum class FsmKind : std::uint8_t {
    kCountOccurrences,   ///< Hits per (stream, term).
    kFirstOccurrence,    ///< Position of first hit per (stream, term).
    kLastOccurrence,     ///< Position of last hit per (stream, term).
    kCoverageSpan,       ///< last - first per (stream, term).
    kMeanGap,            ///< Mean delta between hits per (stream, term).
    kMaxGap,             ///< Largest delta per (stream, term).
    kPropertySum,        ///< Sum of tuple properties per (stream, term).
    kPropertyMax,        ///< Max property per (stream, term).
    kBigramAdjacency,    ///< term t directly followed by t+1 (stream, term).
    kProximityWindow,    ///< Hits within a window of the previous hit.
    kEarlySection,       ///< Hits before a position threshold.
    kDensity,            ///< Hits / document length per stream.
    kStreamSpan,         ///< Total advance per stream.
    kTermShare,          ///< Term's share of all hits (per term).
};

/** Static descriptor for one FSM instance. */
struct FsmDescriptor {
    FsmKind kind;
    std::string name;
    /** Variant parameter (window size, position threshold, etc.). */
    std::uint32_t param = 0;
    /** First feature id owned by this FSM. */
    std::uint32_t feature_base = 0;
    /** Number of feature ids owned. */
    std::uint32_t feature_count = 0;
};

/**
 * One streaming feature state machine. Consume() is called once per
 * tuple in stream order; Emit() writes the non-zero results.
 */
class FeatureFsm {
  public:
    explicit FeatureFsm(const FsmDescriptor& descriptor);

    void Reset();
    void Consume(const HitTuple& tuple, std::uint32_t position);
    void Emit(const CompressedRequest& request, FeatureStore& store) const;

    const FsmDescriptor& descriptor() const { return descriptor_; }

  private:
    struct Cell {
        std::uint32_t count = 0;
        std::uint32_t first = 0;
        std::uint32_t last = 0;
        std::uint32_t max_gap = 0;
        std::uint64_t sum = 0;
        std::uint32_t max = 0;
    };

    Cell& CellFor(int stream, int term);

    FsmDescriptor descriptor_;
    std::array<Cell, kMetastreamCount * kMaxQueryTerms> cells_;
    std::array<std::uint32_t, kMetastreamCount> stream_totals_{};
    std::uint32_t total_hits_ = 0;
    std::uint8_t previous_term_ = 0xFF;
    std::uint8_t previous_stream_ = 0xFF;
    std::uint32_t previous_position_ = 0;
};

/**
 * The complete FE stage: stream processor + 43 FSMs + gathering network.
 */
class FeatureExtractor {
  public:
    struct Timing {
        Frequency clock = Frequency::MHz(150.0);  ///< Table 1.
        /** Fixed cycles: header parse, FST swap, gather drain. */
        std::int64_t base_cycles = 250;
        /**
         * Effective issue cycles per hit-vector tuple. The Stream
         * Processing FSM dispatches tokens to all 43 FSMs in parallel
         * (MISD), so the effective per-tuple rate is sub-cycle.
         */
        double cycles_per_tuple = 0.5;
    };

    FeatureExtractor();

    /** The 43 FSM descriptors (§4.4). */
    static const std::vector<FsmDescriptor>& Descriptors();

    /**
     * Run the full extraction for a request: streams every tuple
     * through all 43 FSMs and writes non-zero features + remapped
     * software features into `store`.
     */
    void Extract(const CompressedRequest& request, FeatureStore& store);

    /** Stage service time for a request (§4.2 macropipeline budget). */
    Time ServiceTime(const CompressedRequest& request) const;
    Time ServiceTime(std::uint32_t tuple_count) const;

    const Timing& timing() const { return timing_; }
    Timing& timing() { return timing_; }

  private:
    Timing timing_;
    std::vector<std::unique_ptr<FeatureFsm>> fsms_;
};

}  // namespace catapult::rank
