// Synthetic corpus generator calibrated to the paper's Figure 4.
//
// "Figure 4 shows a CDF of all document sizes in a 210 Kdoc sample
// collected from real-world traces. As shown, nearly all of the
// compressed documents are under 64 KB (only 300 require truncation).
// On average, documents are 6.5 KB, with the 99th percentile at 53 KB."
//
// A single lognormal cannot match {mean 6.5 KB, p99 53 KB, ~0.14%
// truncation} simultaneously; the generator uses a two-component
// lognormal mixture (a small-document body plus a heavy big-document
// component) whose defaults reproduce all three statistics to within a
// few percent.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "rank/document.h"

namespace catapult::rank {

class DocumentGenerator {
  public:
    struct Config {
        /** Weight of the big-document mixture component. */
        double big_component_weight = 0.03;
        /** Small component: lognormal mean (bytes) and sigma. */
        double small_mean_bytes = 5'300.0;
        double small_sigma = 0.80;
        /** Big component: lognormal mean (bytes) and sigma. */
        double big_mean_bytes = 45'000.0;
        double big_sigma = 0.28;
        /** Average encoded bytes contributed per hit-vector tuple
            (calibrated to the 2/4/6-byte mix the codec produces). */
        double bytes_per_tuple = 2.7;
        /** Fraction of the compressed request occupied by the hit vector. */
        double hit_vector_fraction = 0.75;
        /** Software-computed features per request (§4.1). */
        int min_software_features = 4;
        int max_software_features = 24;
        /** Distinct models in the serving mix (§4.3). */
        std::uint32_t model_count = 4;
    };

    DocumentGenerator(std::uint64_t seed, Config config);
    explicit DocumentGenerator(std::uint64_t seed)
        : DocumentGenerator(seed, Config()) {}

    /** Generate the next request (documents get sequential ids). */
    CompressedRequest Next();

    /** Generate a request with an exact target encoded size. */
    CompressedRequest WithTargetSize(Bytes target);

    /** Generate a corpus of `count` requests. */
    std::vector<CompressedRequest> Corpus(int count);

    std::uint64_t generated() const { return next_doc_id_; }
    std::uint64_t truncated_count() const { return truncated_; }

    const Config& config() const { return config_; }

  private:
    /** Draw a target compressed size (before the 64 KB cap). */
    double DrawTargetBytes();
    CompressedRequest Build(Bytes target);

    Config config_;
    Rng rng_;
    std::uint64_t next_doc_id_ = 0;
    std::uint64_t truncated_ = 0;
};

}  // namespace catapult::rank
