#include "rank/document_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace catapult::rank {

DocumentGenerator::DocumentGenerator(std::uint64_t seed, Config config)
    : config_(config), rng_(seed) {
    // Default calibrated to the actual tuple-encoding mix; see the
    // document_generator tests which validate wire_bytes vs EncodedSize.
    if (config_.bytes_per_tuple <= 0.0) config_.bytes_per_tuple = 2.7;
}

double DocumentGenerator::DrawTargetBytes() {
    const bool big = rng_.Chance(config_.big_component_weight);
    const double mean = big ? config_.big_mean_bytes : config_.small_mean_bytes;
    const double sigma = big ? config_.big_sigma : config_.small_sigma;
    // Parameterize the lognormal by its arithmetic mean:
    //   E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
    const double mu = std::log(mean) - sigma * sigma / 2.0;
    return rng_.LogNormal(mu, sigma);
}

CompressedRequest DocumentGenerator::Next() {
    // Oversized draws flow into Build() uncapped so the §4.1 truncation
    // to 64 KB is applied (and counted) there.
    const double target = DrawTargetBytes();
    return Build(static_cast<Bytes>(target));
}

CompressedRequest DocumentGenerator::WithTargetSize(Bytes target) {
    return Build(std::min(target, kMaxCompressedBytes));
}

CompressedRequest DocumentGenerator::Build(Bytes target) {
    CompressedRequest request;
    request.doc_id = next_doc_id_++;
    request.content_seed = rng_.Next();
    request.query.query_id = rng_.Next();
    request.query.model_id = static_cast<std::uint32_t>(
        rng_.NextBounded(config_.model_count));
    request.query.term_count =
        1 + static_cast<int>(rng_.NextBounded(kMaxQueryTerms));

    const int feature_count = static_cast<int>(
        rng_.UniformInt(config_.min_software_features,
                        config_.max_software_features));
    request.software_features.reserve(static_cast<std::size_t>(feature_count));
    for (int i = 0; i < feature_count; ++i) {
        SoftwareFeature feature;
        // Software-computed feature ids live in their own range above
        // the FPGA-computed dynamic features.
        feature.feature_id = static_cast<std::uint16_t>(
            60'000 + rng_.NextBounded(1'000));
        feature.value = static_cast<float>(rng_.Uniform(0.0, 8.0));
        request.software_features.push_back(feature);
    }

    // Apportion the target bytes: header + software features are fixed;
    // the remainder is hit vector, sized by the mean tuple encoding.
    // (For typical documents the hit vector is the vast majority of the
    // payload, matching §4.1.)
    const Bytes fixed = CompressedRequest::HeaderSize() +
                        static_cast<Bytes>(request.software_features.size()) * 6;
    const Bytes hit_bytes =
        std::max<Bytes>(target - fixed, static_cast<Bytes>(config_.bytes_per_tuple));
    request.tuple_count = static_cast<std::uint32_t>(std::max<Bytes>(
        1, static_cast<Bytes>(static_cast<double>(hit_bytes) /
                              config_.bytes_per_tuple)));

    // Cap the encoded size at 64 KB by shaving tuples if needed.
    const double max_tuples =
        (static_cast<double>(kMaxCompressedBytes - fixed)) /
        config_.bytes_per_tuple;
    if (static_cast<double>(request.tuple_count) > max_tuples) {
        request.tuple_count = static_cast<std::uint32_t>(max_tuples);
        request.truncated = true;
        ++truncated_;
    }

    // Document length in tokens: hits are a few percent of tokens.
    request.document_length =
        request.tuple_count * 20 +
        static_cast<std::uint32_t>(rng_.NextBounded(1'000));
    request.wire_bytes =
        fixed + static_cast<Bytes>(static_cast<double>(request.tuple_count) *
                                   config_.bytes_per_tuple);
    if (request.wire_bytes > kMaxCompressedBytes) {
        request.wire_bytes = kMaxCompressedBytes;
    }
    return request;
}

std::vector<CompressedRequest> DocumentGenerator::Corpus(int count) {
    std::vector<CompressedRequest> corpus;
    corpus.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) corpus.push_back(Next());
    return corpus;
}

}  // namespace catapult::rank
