#include "obs/metric_registry.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace catapult::obs {
namespace {

/** 2^i as an integer string — bucket edges are exact powers of two, so
 *  format them without a float round trip. */
std::string Pow2(std::size_t i) {
    std::ostringstream out;
    out << (std::uint64_t{1} << i);
    return out.str();
}

}  // namespace

MetricRegistry::Entry* MetricRegistry::FindOrCreate(const std::string& name,
                                                    Kind kind,
                                                    bool volatile_metric,
                                                    GaugeMerge merge) {
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        assert(it->second->kind == kind &&
               "metric re-registered under a different kind");
        return it->second.get();
    }
    auto entry = std::make_unique<Entry>();
    entry->kind = kind;
    entry->volatile_metric = volatile_metric;
    entry->merge = merge;
    Entry* raw = entry.get();
    entries_.emplace(name, std::move(entry));
    return raw;
}

Counter* MetricRegistry::counter(const std::string& name,
                                 bool volatile_metric) {
    return &FindOrCreate(name, Kind::kCounter, volatile_metric,
                         GaugeMerge::kSum)
                ->counter;
}

Gauge* MetricRegistry::gauge(const std::string& name, GaugeMerge merge,
                             bool volatile_metric) {
    return &FindOrCreate(name, Kind::kGauge, volatile_metric, merge)->gauge;
}

Histogram* MetricRegistry::histogram(const std::string& name,
                                     bool volatile_metric) {
    return &FindOrCreate(name, Kind::kHistogram, volatile_metric,
                         GaugeMerge::kSum)
                ->histogram;
}

void MetricRegistry::MergeFrom(const MetricRegistry& other) {
    for (const auto& [name, theirs] : other.entries_) {
        Entry* mine =
            FindOrCreate(name, theirs->kind, theirs->volatile_metric,
                         theirs->merge);
        switch (theirs->kind) {
            case Kind::kCounter:
                mine->counter.Inc(theirs->counter.value());
                break;
            case Kind::kGauge:
                if (mine->merge == GaugeMerge::kMax) {
                    mine->gauge.SetMax(theirs->gauge.value());
                } else {
                    mine->gauge.Add(theirs->gauge.value());
                }
                break;
            case Kind::kHistogram:
                mine->histogram.data().Merge(theirs->histogram.data());
                break;
        }
    }
}

std::string MetricRegistry::ToJson(bool include_volatile) const {
    std::ostringstream counters, gauges, histograms;
    bool c_first = true, g_first = true, h_first = true;
    for (const auto& [name, entry] : entries_) {
        if (entry->volatile_metric && !include_volatile) continue;
        switch (entry->kind) {
            case Kind::kCounter:
                if (!c_first) counters << ",";
                c_first = false;
                counters << "\"" << name << "\":" << entry->counter.value();
                break;
            case Kind::kGauge:
                if (!g_first) gauges << ",";
                g_first = false;
                gauges << "\"" << name << "\":" << entry->gauge.value();
                break;
            case Kind::kHistogram: {
                if (!h_first) histograms << ",";
                h_first = false;
                const Log2Histogram& h = entry->histogram.data();
                histograms << "\"" << name << "\":{\"total\":" << h.total()
                           << ",\"underflow\":" << h.underflow()
                           << ",\"buckets\":[";
                for (std::size_t i = 0; i < h.buckets().size(); ++i) {
                    if (i > 0) histograms << ",";
                    histograms << h.buckets()[i];
                }
                histograms << "]}";
                break;
            }
        }
    }
    std::ostringstream out;
    out << "{\"counters\":{" << counters.str() << "},\"gauges\":{"
        << gauges.str() << "},\"histograms\":{" << histograms.str() << "}}";
    return out.str();
}

std::string MetricRegistry::ToPrometheus() const {
    // Metric names in the registry use dots as separators; Prometheus
    // wants [a-zA-Z_:][a-zA-Z0-9_:]*.
    auto sanitize = [](const std::string& name) {
        std::string s = name;
        for (char& c : s) {
            const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '_' || c == ':';
            if (!ok) c = '_';
        }
        return s;
    };
    std::ostringstream out;
    for (const auto& [name, entry] : entries_) {
        const std::string p = sanitize(name);
        if (entry->volatile_metric) out << "# volatile\n";
        switch (entry->kind) {
            case Kind::kCounter:
                out << "# TYPE " << p << " counter\n"
                    << p << " " << entry->counter.value() << "\n";
                break;
            case Kind::kGauge:
                out << "# TYPE " << p << " gauge\n"
                    << p << " " << entry->gauge.value() << "\n";
                break;
            case Kind::kHistogram: {
                const Log2Histogram& h = entry->histogram.data();
                out << "# TYPE " << p << " histogram\n";
                std::int64_t cumulative = h.underflow();
                out << p << "_bucket{le=\"1\"} " << cumulative << "\n";
                for (std::size_t i = 0; i < h.buckets().size(); ++i) {
                    cumulative += h.buckets()[i];
                    out << p << "_bucket{le=\"" << Pow2(i + 1) << "\"} "
                        << cumulative << "\n";
                }
                out << p << "_bucket{le=\"+Inf\"} " << h.total() << "\n"
                    << p << "_count " << h.total() << "\n";
                break;
            }
        }
    }
    return out.str();
}

}  // namespace catapult::obs
