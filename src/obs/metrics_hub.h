// MetricsHub: cadence-driven snapshots of the merged registry, on
// simulated time.
//
// The hub never samples on its own clock — it is advanced by whoever
// owns the time base: the SimulatorGroup barrier hook (sharded runs,
// where the driving thread calls in after every mailbox drain with the
// conservative frontier) or a self-rescheduling daemon event on a plain
// Simulator (single-shard runs). Each time the frontier crosses one or
// more cadence boundaries the hub renders one snapshot per boundary;
// the rendered values are "the registry as of the first barrier at or
// past the boundary", which is a deterministic function of the round
// schedule and therefore identical between lock-step and parallel
// execution.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/units.h"

namespace catapult::obs {

class MetricsHub {
  public:
    struct Config {
        /** Simulated time between snapshots; <= 0 disables the hub. */
        Time cadence = Milliseconds(10);
        /** Ring bound on retained snapshots (oldest evicted). */
        std::size_t max_snapshots = 256;
    };

    struct Snapshot {
        Time at = 0;  ///< The cadence boundary this snapshot represents.
        std::string json;
    };

    explicit MetricsHub(const Config& config) : config_(config) {}

    /** The next cadence boundary a snapshot will fire at. */
    Time next_boundary() const { return last_boundary_ + config_.cadence; }

    /**
     * Advance to `frontier`; `render` is invoked at most once per call
     * (lazily, only when a boundary was crossed) and its result is
     * recorded for every boundary in (last, frontier].
     */
    void AdvanceTo(Time frontier, const std::function<std::string()>& render);

    const std::deque<Snapshot>& snapshots() const { return snapshots_; }
    std::uint64_t snapshots_taken() const { return taken_; }

  private:
    Config config_;
    Time last_boundary_ = 0;
    std::uint64_t taken_ = 0;
    std::deque<Snapshot> snapshots_;
};

}  // namespace catapult::obs
