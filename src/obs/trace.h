// Distributed query tracing on simulated time.
//
// A span is one timed hop of a query's life — the session gather, the
// dispatcher's accepted query, the pod-side document, each StageRole
// service interval — identified by (trace, span, parent) ids. The ids
// travel in two plain uint64 fields on rank::Query, which every layer
// already copies along the path (scatter stamps its per-doc requests,
// the dispatcher's QueryContext holds the request, cross-shard mailbox
// closures copy it), so no signature changes anywhere.
//
// Recording is allocation-free and single-writer: each simulator shard
// owns a TraceRecorder — a preallocated ring of fixed-size TraceRecord
// entries, appended only by the executor running that shard. Span and
// trace ids are (shard << 48) | counter, so id allocation is
// deterministic per shard and collision-free across shards; the ring
// contents are bit-identical between lock-step and parallel runs.
//
// StitchChromeTrace merges every shard's ring into one Chrome
// trace-event JSON document ("traceEvents", ph "X" complete events /
// ph "i" instants, ts in microseconds of simulated time) — loadable in
// Perfetto / chrome://tracing. FDR records drained into the timeline
// carry only the packet's document trace id; the stitcher joins them to
// the query tree by looking up the document span that owns that id.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace catapult::obs {

/** Fixed-size trace entry. `name` must point at a string literal (or
 *  other storage outliving the recorder) — the ring never copies it. */
struct TraceRecord {
    const char* name = nullptr;
    std::uint64_t trace = 0;   ///< Timeline id (0 = unassigned, stitcher joins via `doc`).
    std::uint64_t span = 0;    ///< This span's id; 0 for instants.
    std::uint64_t parent = 0;  ///< Enclosing span id; 0 = root.
    /** Document trace id (rank-layer packet id) when the record belongs
     *  to one document's journey; joins FDR records to query spans. */
    std::uint64_t doc = 0;
    Time start = 0;
    Time end = 0;  ///< == start for instant events.
    std::int64_t a1 = 0;
    std::int64_t a2 = 0;
};

class TraceRecorder {
  public:
    TraceRecorder(int shard, std::size_t capacity, bool enabled);

    bool enabled() const { return enabled_; }
    int shard() const { return shard_; }

    /** Deterministic ids: (shard << 48) | per-shard counter. */
    std::uint64_t NextSpanId() { return base_ | ++next_span_; }
    std::uint64_t NextTraceId() { return base_ | ++next_trace_; }

    /** Append a completed span. No-op while disabled. */
    void Span(const char* name, std::uint64_t trace, std::uint64_t span,
              std::uint64_t parent, std::uint64_t doc, Time start, Time end,
              std::int64_t a1 = 0, std::int64_t a2 = 0);

    /** Append an instant (point) event. No-op while disabled. */
    void Instant(const char* name, std::uint64_t trace, std::uint64_t parent,
                 std::uint64_t doc, Time at, std::int64_t a1 = 0,
                 std::int64_t a2 = 0);

    /** Ring contents, oldest first. */
    std::vector<TraceRecord> Records() const;

    std::uint64_t total_recorded() const { return total_; }
    /** Records evicted because the ring wrapped. */
    std::uint64_t dropped() const {
        return total_ > ring_.size() ? total_ - ring_.size() : 0;
    }

  private:
    int shard_;
    bool enabled_;
    std::uint64_t base_;
    std::uint64_t next_span_ = 0;
    std::uint64_t next_trace_ = 0;
    std::uint64_t total_ = 0;
    std::vector<TraceRecord> ring_;
};

/**
 * Merge shard rings into Chrome trace-event JSON on simulated
 * timestamps. Records are sorted canonically (start, end, trace, span,
 * shard, name) before emission and FDR/instant records with trace == 0
 * are re-parented onto the document span owning their `doc` id, so the
 * output is byte-identical for bit-identical inputs.
 */
std::string StitchChromeTrace(const std::vector<const TraceRecorder*>& shards);

}  // namespace catapult::obs
