#include "obs/observability.h"

#include <cassert>
#include <sstream>
#include <utility>

namespace catapult::obs {

ObservabilityPlane::ObservabilityPlane(int shard_count, const Config& config)
    : config_(config), hub_(config.hub) {
    assert(shard_count >= 1);
    shards_.reserve(static_cast<std::size_t>(shard_count));
    for (int i = 0; i < shard_count; ++i) {
        shards_.push_back(std::make_unique<ShardObs>(
            i, config_.trace_capacity, config_.enabled && config_.tracing));
    }
}

void ObservabilityPlane::AddCollector(std::function<void(MetricRegistry&)> fn) {
    collectors_.push_back(std::move(fn));
}

void ObservabilityPlane::BuildMerged(MetricRegistry* out) const {
    for (const auto& shard : shards_) {
        out->MergeFrom(shard->registry);
    }
    for (const auto& collector : collectors_) {
        collector(*out);
    }
}

void ObservabilityPlane::AdvanceTo(Time frontier) {
    hub_.AdvanceTo(frontier, [this, frontier] {
        // Hub snapshots keep the deterministic view: the differential
        // suites compare them between lock-step and parallel runs.
        MetricRegistry merged;
        BuildMerged(&merged);
        std::ostringstream out;
        out << "{\"sim_time_ps\":" << frontier
            << ",\"metrics\":" << merged.ToJson(/*include_volatile=*/false)
            << "}";
        return out.str();
    });
}

void ObservabilityPlane::AttachSimulator(sim::Simulator* sim) {
    if (!config_.enabled || config_.hub.cadence <= 0) return;
    ScheduleTick(sim);
}

void ObservabilityPlane::ScheduleTick(sim::Simulator* sim) {
    // Daemon, so an idle hub never keeps Run() alive. kTimeout priority
    // orders the snapshot after same-instant deliveries, matching the
    // barrier hook's after-the-round semantics.
    sim->ScheduleDaemonAt(
        hub_.next_boundary(),
        [this, sim] {
            AdvanceTo(sim->Now());
            ScheduleTick(sim);
        },
        sim::EventPriority::kTimeout);
}

std::string ObservabilityPlane::SnapshotJson(Time now,
                                             bool include_volatile) const {
    std::ostringstream out;
    out << "{\"sim_time_ps\":" << now
        << ",\"metrics\":" << MetricsJson(include_volatile) << "}";
    return out.str();
}

std::string ObservabilityPlane::MetricsJson(bool include_volatile) const {
    MetricRegistry merged;
    BuildMerged(&merged);
    return merged.ToJson(include_volatile);
}

std::string ObservabilityPlane::PrometheusText() const {
    MetricRegistry merged;
    BuildMerged(&merged);
    return merged.ToPrometheus();
}

std::string ObservabilityPlane::TraceJson() const {
    std::vector<const TraceRecorder*> recorders;
    recorders.reserve(shards_.size());
    for (const auto& shard : shards_) {
        recorders.push_back(&shard->tracer);
    }
    return StitchChromeTrace(recorders);
}

}  // namespace catapult::obs
