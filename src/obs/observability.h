// ObservabilityPlane: the federation-wide umbrella over the three
// pillars — per-shard metric registries, per-shard trace recorders, and
// the cadence-driven MetricsHub.
//
// Ownership and wiring (FederationTestbed::Config.observability flips
// it all on):
//
//   shard 0 (coordinator)   ShardObs ── dispatcher / scatter / sessions
//   shard 1..N (pods)       ShardObs ── RankingService / StageRole /
//                                       HealthMonitor (FDR postmortems)
//
// Each ShardObs is written only by the executor running its shard.
// AdvanceTo — called from the SimulatorGroup barrier hook (sharded) or
// a self-scheduled daemon event (single simulator) — runs on the
// driving thread with all workers idle: it merges shard registries in
// shard-id order, runs the registered pull-collectors (which mirror
// pre-existing layer counters such as FederatedDispatcher::Counters
// into the registry), and lets the hub snapshot. Exports:
//
//   MetricsJson(false)  deterministic view (volatile metrics dropped) —
//                       byte-identical lock-step vs parallel, compared
//                       by the differential suites
//   MetricsJson(true)   full view incl. wall-clock executor profiling
//   PrometheusText()    text exposition of the full view
//   TraceJson()         stitched Chrome trace-event timeline

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/metric_registry.h"
#include "obs/metrics_hub.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace catapult::obs {

/** One shard's single-writer observability surface. */
struct ShardObs {
    ShardObs(int shard, std::size_t trace_capacity, bool tracing)
        : tracer(shard, trace_capacity, tracing) {}

    bool tracing() const { return tracer.enabled(); }

    MetricRegistry registry;
    TraceRecorder tracer;
};

class ObservabilityPlane {
  public:
    struct Config {
        bool enabled = false;
        /** Record spans/instants (metrics stay on regardless). */
        bool tracing = true;
        /** Per-shard trace ring capacity (records). */
        std::size_t trace_capacity = 1u << 16;
        MetricsHub::Config hub;
    };

    ObservabilityPlane(int shard_count, const Config& config);

    const Config& config() const { return config_; }
    int shard_count() const { return static_cast<int>(shards_.size()); }
    ShardObs* shard(int i) { return shards_[static_cast<std::size_t>(i)].get(); }

    /**
     * Register a pull-collector, run on the driving thread at every
     * merge. Collectors mirror existing layer counters into the
     * registry with absolute writes (Counter::Set / Gauge::Set), so
     * re-running one is idempotent.
     */
    void AddCollector(std::function<void(MetricRegistry&)> fn);

    /** Merge shard registries (shard-id order) + run collectors. */
    void BuildMerged(MetricRegistry* out) const;

    /**
     * Advance the hub to `frontier` (a barrier frontier or Now()).
     * Must run on the driving thread with no round in flight.
     */
    void AdvanceTo(Time frontier);

    /**
     * Single-simulator mode: self-drive the hub with a repeating daemon
     * event at the snapshot cadence. The plane must outlive `sim`'s
     * runs.
     */
    void AttachSimulator(sim::Simulator* sim);

    MetricsHub& hub() { return hub_; }
    const MetricsHub& hub() const { return hub_; }

    /** {"sim_time_ps":N,"metrics":{...}} for one-line embedding. */
    std::string SnapshotJson(Time now, bool include_volatile) const;
    std::string MetricsJson(bool include_volatile) const;
    std::string PrometheusText() const;
    std::string TraceJson() const;

  private:
    void ScheduleTick(sim::Simulator* sim);

    Config config_;
    std::vector<std::unique_ptr<ShardObs>> shards_;
    std::vector<std::function<void(MetricRegistry&)>> collectors_;
    MetricsHub hub_;
};

}  // namespace catapult::obs
