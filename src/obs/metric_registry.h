// Federation-wide metrics core: named counters, gauges, and
// log2-bucketed histograms behind a registry with deterministic
// (name-sorted) export order.
//
// Concurrency model — none, on purpose. A MetricRegistry is
// single-writer: each simulator shard owns one and only the executor
// running that shard touches it (the same single-writer discipline as
// SimulatorGroup's outboxes). The coordinator merges shard registries
// on the driving thread at epoch barriers, where workers are provably
// idle, so collection is race-free without a single atomic on the hot
// path — and because rounds are identical in lock-step and parallel
// mode, the merged values are bit-identical across execution modes.
//
// Wall-clock-derived metrics (executor busy nanoseconds, merge wall
// time) are registered `volatile`: they appear in the full human-facing
// export but are excluded from the deterministic export the
// differential suites compare byte-for-byte.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/stats.h"
#include "common/units.h"

namespace catapult::obs {

/** How a gauge combines across shard registries. */
enum class GaugeMerge : std::uint8_t {
    kSum,  ///< Additive (queue depths, in-flight totals).
    kMax,  ///< High-water marks (mailbox depth, ring occupancy).
};

/** Monotone event count. Merge is addition. */
class Counter {
  public:
    void Inc(std::uint64_t n = 1) { value_ += n; }
    /** Absolute overwrite — for pull-collectors mirroring an existing
     *  layer counter into the registry at a barrier. */
    void Set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Point-in-time level. Merge mode chosen at registration. */
class Gauge {
  public:
    void Set(std::int64_t v) { value_ = v; }
    void Add(std::int64_t d) { value_ += d; }
    void SetMax(std::int64_t v) {
        if (v > value_) value_ = v;
    }
    std::int64_t value() const { return value_; }

  private:
    std::int64_t value_ = 0;
};

/**
 * Log2-bucketed histogram (bucket i counts values in [2^i, 2^(i+1)),
 * sub-1 values land in the underflow bin — common/stats.h semantics).
 * Latencies are observed in simulated microseconds.
 */
class Histogram {
  public:
    void Observe(double x) { h_.Add(x); }
    void ObserveLatency(Time t) { h_.Add(ToMicroseconds(t)); }
    const Log2Histogram& data() const { return h_; }
    Log2Histogram& data() { return h_; }

  private:
    Log2Histogram h_;
};

/**
 * Named metrics, one writer. Lookup returns stable pointers (hot paths
 * resolve a metric once and cache the pointer); iteration/export order
 * is the map's lexicographic name order, so two registries holding the
 * same values serialize identically.
 */
class MetricRegistry {
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry&) = delete;
    MetricRegistry& operator=(const MetricRegistry&) = delete;

    /** Find-or-create. The volatile/merge options are fixed by the
     *  first registration; later lookups ignore them. */
    Counter* counter(const std::string& name, bool volatile_metric = false);
    Gauge* gauge(const std::string& name, GaugeMerge merge = GaugeMerge::kSum,
                 bool volatile_metric = false);
    Histogram* histogram(const std::string& name,
                         bool volatile_metric = false);

    /** Fold another registry in: counters/histograms add, gauges
     *  combine per their registered merge mode. Commutative and
     *  associative, so shard merge order cannot leak into the result
     *  (tests/test_observability.cc pins this). */
    void MergeFrom(const MetricRegistry& other);

    std::size_t size() const { return entries_.size(); }

    /**
     * One-line JSON object: {"counters":{...},"gauges":{...},
     * "histograms":{name:{"total":n,"underflow":u,"buckets":[...]}}}.
     * `include_volatile` false gives the deterministic view the
     * lockstep-vs-parallel differential suites compare byte-for-byte.
     */
    std::string ToJson(bool include_volatile) const;

    /** Prometheus text exposition (histograms as cumulative le-buckets
     *  on the power-of-two edges). Volatile metrics are included and
     *  marked with a `# volatile` comment. */
    std::string ToPrometheus() const;

  private:
    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
    struct Entry {
        Kind kind;
        bool volatile_metric = false;
        GaugeMerge merge = GaugeMerge::kSum;
        Counter counter;
        Gauge gauge;
        Histogram histogram;
    };

    Entry* FindOrCreate(const std::string& name, Kind kind,
                        bool volatile_metric, GaugeMerge merge);

    /** unique_ptr for pointer stability across rehash-free map growth
     *  (std::map nodes are stable, the indirection keeps Entry cheap to
     *  move if the container ever changes). */
    std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace catapult::obs
