#include "obs/metrics_hub.h"

namespace catapult::obs {

void MetricsHub::AdvanceTo(Time frontier,
                           const std::function<std::string()>& render) {
    if (config_.cadence <= 0) return;
    if (frontier < last_boundary_ + config_.cadence) return;
    const std::string json = render ? render() : std::string();
    while (frontier >= last_boundary_ + config_.cadence) {
        last_boundary_ += config_.cadence;
        ++taken_;
        snapshots_.push_back({last_boundary_, json});
        if (snapshots_.size() > config_.max_snapshots) {
            snapshots_.pop_front();
        }
    }
}

}  // namespace catapult::obs
