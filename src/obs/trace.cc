#include "obs/trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>

namespace catapult::obs {

TraceRecorder::TraceRecorder(int shard, std::size_t capacity, bool enabled)
    : shard_(shard),
      enabled_(enabled),
      base_(static_cast<std::uint64_t>(shard) << 48) {
    assert(shard >= 0);
    assert(capacity > 0);
    // Preallocate the whole ring: appends on the simulation hot path
    // are a store + counter bump, never an allocation.
    ring_.resize(capacity);
}

void TraceRecorder::Span(const char* name, std::uint64_t trace,
                         std::uint64_t span, std::uint64_t parent,
                         std::uint64_t doc, Time start, Time end,
                         std::int64_t a1, std::int64_t a2) {
    if (!enabled_) return;
    TraceRecord& slot = ring_[static_cast<std::size_t>(total_ % ring_.size())];
    ++total_;
    slot.name = name;
    slot.trace = trace;
    slot.span = span;
    slot.parent = parent;
    slot.doc = doc;
    slot.start = start;
    slot.end = end;
    slot.a1 = a1;
    slot.a2 = a2;
}

void TraceRecorder::Instant(const char* name, std::uint64_t trace,
                            std::uint64_t parent, std::uint64_t doc, Time at,
                            std::int64_t a1, std::int64_t a2) {
    Span(name, trace, /*span=*/0, parent, doc, at, at, a1, a2);
}

std::vector<TraceRecord> TraceRecorder::Records() const {
    std::vector<TraceRecord> out;
    const std::size_t n =
        total_ < ring_.size() ? static_cast<std::size_t>(total_)
                              : ring_.size();
    out.reserve(n);
    const std::size_t first =
        total_ < ring_.size() ? 0
                              : static_cast<std::size_t>(total_ % ring_.size());
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(ring_[(first + i) % ring_.size()]);
    }
    return out;
}

namespace {

struct Tagged {
    TraceRecord r;
    int shard;
};

/** Simulated picoseconds -> trace-event microseconds, fixed 6-decimal
 *  formatting so identical inputs serialize identically. */
std::string TsMicros(Time ps) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%lld.%06lld",
                  static_cast<long long>(ps / 1000000),
                  static_cast<long long>(ps % 1000000));
    return buf;
}

}  // namespace

std::string StitchChromeTrace(
    const std::vector<const TraceRecorder*>& shards) {
    std::vector<Tagged> all;
    for (const TraceRecorder* rec : shards) {
        if (rec == nullptr) continue;
        for (TraceRecord& r : rec->Records()) {
            all.push_back({std::move(r), rec->shard()});
        }
    }
    // A document span is the span record carrying a doc id; FDR records
    // and other doc-keyed instants arrive with trace == 0 and are
    // re-parented under it. Ties (a doc id observed by several spans,
    // e.g. a retry reusing an id space) resolve to the earliest
    // (start, span) — a deterministic choice.
    struct DocOwner {
        Time start;
        std::uint64_t span;
        std::uint64_t trace;
    };
    std::map<std::uint64_t, DocOwner> doc_owner;
    for (const Tagged& t : all) {
        if (t.r.span == 0 || t.r.doc == 0 || t.r.trace == 0) continue;
        auto it = doc_owner.find(t.r.doc);
        if (it == doc_owner.end() || t.r.start < it->second.start ||
            (t.r.start == it->second.start && t.r.span < it->second.span)) {
            doc_owner[t.r.doc] = {t.r.start, t.r.span, t.r.trace};
        }
    }
    for (Tagged& t : all) {
        if (t.r.trace != 0 || t.r.doc == 0) continue;
        auto it = doc_owner.find(t.r.doc);
        if (it == doc_owner.end()) continue;
        t.r.trace = it->second.trace;
        if (t.r.parent == 0) t.r.parent = it->second.span;
    }
    std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
        if (a.r.start != b.r.start) return a.r.start < b.r.start;
        if (a.r.end != b.r.end) return a.r.end < b.r.end;
        if (a.r.trace != b.r.trace) return a.r.trace < b.r.trace;
        if (a.r.span != b.r.span) return a.r.span < b.r.span;
        if (a.shard != b.shard) return a.shard < b.shard;
        return std::strcmp(a.r.name ? a.r.name : "",
                           b.r.name ? b.r.name : "") < 0;
    });
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    bool first = true;
    for (const Tagged& t : all) {
        if (!first) out << ",";
        first = false;
        out << "{\"name\":\"" << (t.r.name ? t.r.name : "?")
            << "\",\"cat\":\"catapult\",\"ph\":\""
            << (t.r.span != 0 ? "X" : "i") << "\",\"ts\":"
            << TsMicros(t.r.start);
        if (t.r.span != 0) {
            out << ",\"dur\":" << TsMicros(t.r.end - t.r.start);
        } else {
            out << ",\"s\":\"t\"";
        }
        out << ",\"pid\":" << t.r.trace << ",\"tid\":" << t.shard
            << ",\"args\":{\"span\":" << t.r.span << ",\"parent\":"
            << t.r.parent << ",\"doc\":" << t.r.doc << ",\"a1\":" << t.r.a1
            << ",\"a2\":" << t.r.a2 << "}}";
    }
    out << "]}";
    return out.str();
}

}  // namespace catapult::obs
