// Bitstream descriptor: the unit of FPGA (re)configuration.
//
// In the real system a bitstream is the Quartus-compiled image for a
// role + shell. Here it is a metadata record — role name, resource
// footprint, role clock — plus a payload size that drives flash-write
// and configuration timing.

#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"
#include "fpga/area_model.h"

namespace catapult::fpga {

/** Identifies a compiled FPGA image. */
struct Bitstream {
    /** Unique image id (content hash stand-in). */
    std::uint64_t image_id = 0;

    /** Human-readable role name, e.g. "rank.fe" or "rank.scoring0". */
    std::string role_name;

    /**
     * Total design utilization — shell + role together, which is how
     * Table 1 reports area (e.g. FFE logic 86% includes the 23% shell).
     */
    Utilization area;

    /** Role clock frequency (Table 1: 125-180 MHz for ranking stages). */
    Frequency role_clock = Frequency::MHz(200.0);

    /**
     * Shell compatibility version. FPGAs refuse traffic from neighbours
     * with a different shell major version (§3.4: robustness to
     * "old data from FPGAs that have not yet been reconfigured").
     */
    std::uint32_t shell_version = 1;

    /** Compressed image payload written to configuration flash. */
    Bytes payload_size = 0;

    bool valid() const { return image_id != 0; }
};

/** Factory helpers used by tests and the ranking service. */
Bitstream MakeBitstream(std::uint64_t image_id, std::string role_name,
                        Utilization role_area, Frequency role_clock,
                        Bytes payload_size = 0);

/** The "power virus" image from §5: maximal area and activity factor. */
Bitstream PowerVirusBitstream();

/** A golden/default image holding only the shell (spare behaviour). */
Bitstream GoldenBitstream();

}  // namespace catapult::fpga
