#include "fpga/bitstream.h"

namespace catapult::fpga {

namespace {

// A Stratix V D5 uncompressed configuration image is ~210 Mb; Catapult
// stores compressed images in 32 MB of QSPI flash. 16 MiB is a
// representative compressed payload.
constexpr Bytes kDefaultPayload = 16ll * 1024 * 1024;

}  // namespace

Bitstream MakeBitstream(std::uint64_t image_id, std::string role_name,
                        Utilization area, Frequency role_clock,
                        Bytes payload_size) {
    Bitstream b;
    b.image_id = image_id;
    b.role_name = std::move(role_name);
    b.area = area;
    b.role_clock = role_clock;
    b.payload_size = payload_size > 0 ? payload_size : kDefaultPayload;
    return b;
}

Bitstream PowerVirusBitstream() {
    // §5: "maxing out the area and activity factor".
    return MakeBitstream(0xF00DF00Dull, "diag.power_virus",
                         Utilization{100.0, 100.0, 100.0},
                         Frequency::MHz(250.0));
}

Bitstream GoldenBitstream() {
    // Shell only (§3.2: the shell is 23% of the FPGA).
    return MakeBitstream(0x60D1E000ull, "shell.golden", ShellUtilization(),
                         Frequency::MHz(175.0));
}

}  // namespace catapult::fpga
