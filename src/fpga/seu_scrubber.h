// Single-event-upset (SEU) scrubber.
//
// §3.2: "Single-event upset (SEU) logic ... periodically scrubs the FPGA
// configuration state to reduce system or application errors caused by
// soft errors." The model injects upsets as a Poisson process over the
// configuration bits and scrubs them on a fixed scan period. An upset
// that lands on a "critical" configuration bit before the scrubber
// reaches it corrupts the role (raising an application-error flag); all
// detected/corrected events are counted for the Health Monitor vector.

#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/units.h"
#include "mgmt/telemetry_bus.h"
#include "sim/simulator.h"

namespace catapult::fpga {

class SeuScrubber {
  public:
    struct Config {
        /** Full-device scrub scan period (typ. tens of ms). */
        Time scrub_period = Milliseconds(50);
        /**
         * Upset rate per device per second. Ground-level rates for a
         * 28 nm part are ~1e-6/s; tests crank this up to exercise paths.
         */
        double upsets_per_second = 1e-6;
        /** Fraction of configuration bits whose flip corrupts the role. */
        double critical_bit_fraction = 0.1;
    };

    struct Counters {
        std::uint64_t upsets_injected = 0;
        std::uint64_t upsets_corrected = 0;
        std::uint64_t role_corruptions = 0;
        std::uint64_t scrub_passes = 0;
    };

    SeuScrubber(sim::Simulator* simulator, Rng rng, Config config);
    SeuScrubber(sim::Simulator* simulator, Rng rng)
        : SeuScrubber(simulator, rng, Config()) {}

    /** Start periodic scrubbing and upset injection. */
    void Start();
    /** Stop (device held in reset / being reconfigured). */
    void Stop();

    /** Invoked when an uncorrected critical upset corrupts the role. */
    void set_on_role_corruption(std::function<void()> cb) {
        on_role_corruption_ = std::move(cb);
    }

    /** Publish role-corrupting upsets as health-plane events. */
    void AttachTelemetry(mgmt::TelemetryBus* bus, int node) {
        telemetry_ = bus;
        telemetry_node_ = node;
    }

    /** Clear pending (uncorrected) upsets, e.g. after reconfiguration. */
    void ClearPendingUpsets() { pending_upsets_ = 0; }

    /** Change the upset rate (failure injection: SEU storms). */
    void set_upset_rate(double upsets_per_second) {
        config_.upsets_per_second = upsets_per_second;
    }

    const Counters& counters() const {
        AccountScrubPasses();
        return counters_;
    }
    bool running() const { return running_; }

  private:
    void ScheduleNextUpset();
    void AccountScrubPasses() const;

    sim::Simulator* simulator_;
    Rng rng_;
    Config config_;
    mutable Counters counters_;
    std::function<void()> on_role_corruption_;
    mgmt::TelemetryBus* telemetry_ = nullptr;
    int telemetry_node_ = -1;
    std::uint64_t pending_upsets_ = 0;
    bool running_ = false;
    Time started_at_ = 0;
    std::uint64_t scrub_passes_base_ = 0;
    std::uint64_t epoch_ = 0;  ///< Invalidates stale scheduled callbacks.
};

}  // namespace catapult::fpga
