#include "fpga/area_model.h"

#include <cmath>
#include <cstdio>

namespace catapult::fpga {

Utilization DeviceBudget::ToUtilization(const ResourceCounts& used) const {
    Utilization u;
    if (capacity_.alms > 0) {
        u.logic_pct = 100.0 * static_cast<double>(used.alms) /
                      static_cast<double>(capacity_.alms);
    }
    if (capacity_.m20k_blocks > 0) {
        u.ram_pct = 100.0 * static_cast<double>(used.m20k_blocks) /
                    static_cast<double>(capacity_.m20k_blocks);
    }
    if (capacity_.dsp_blocks > 0) {
        u.dsp_pct = 100.0 * static_cast<double>(used.dsp_blocks) /
                    static_cast<double>(capacity_.dsp_blocks);
    }
    return u;
}

ResourceCounts DeviceBudget::FromUtilization(const Utilization& util) const {
    ResourceCounts c;
    c.alms = static_cast<std::int64_t>(
        std::llround(util.logic_pct / 100.0 *
                     static_cast<double>(capacity_.alms)));
    c.m20k_blocks = static_cast<std::int64_t>(
        std::llround(util.ram_pct / 100.0 *
                     static_cast<double>(capacity_.m20k_blocks)));
    c.dsp_blocks = static_cast<std::int64_t>(
        std::llround(util.dsp_pct / 100.0 *
                     static_cast<double>(capacity_.dsp_blocks)));
    return c;
}

Utilization ShellUtilization() {
    // §3.2: "The shell consumes 23% of each FPGA". RAM/DSP components of
    // the shell (router FIFOs, DMA staging, DDR controllers) are modest.
    return Utilization{23.0, 10.0, 0.0};
}

std::string ToString(const Utilization& u) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "logic %.0f%% ram %.0f%% dsp %.0f%%",
                  u.logic_pct, u.ram_pct, u.dsp_pct);
    return buf;
}

}  // namespace catapult::fpga
