#include "fpga/seu_scrubber.h"

#include <cassert>

#include "common/log.h"

namespace catapult::fpga {

SeuScrubber::SeuScrubber(sim::Simulator* simulator, Rng rng, Config config)
    : simulator_(simulator), rng_(rng), config_(config) {
    assert(simulator_ != nullptr);
}

void SeuScrubber::Start() {
    if (running_) return;
    running_ = true;
    started_at_ = simulator_->Now();
    ++epoch_;
    ScheduleNextUpset();
}

void SeuScrubber::Stop() {
    if (!running_) return;
    AccountScrubPasses();
    scrub_passes_base_ = counters_.scrub_passes;
    running_ = false;
    ++epoch_;  // orphan any scheduled callbacks
}

void SeuScrubber::AccountScrubPasses() const {
    // Scrub passes happen continuously; they are accounted lazily (no
    // periodic simulator events) so an idle fabric schedules nothing.
    if (!running_ || config_.scrub_period <= 0) return;
    counters_.scrub_passes =
        scrub_passes_base_ +
        static_cast<std::uint64_t>(
            (simulator_->Now() - started_at_) / config_.scrub_period);
}

void SeuScrubber::ScheduleNextUpset() {
    if (config_.upsets_per_second <= 0.0) return;
    const double mean_s = 1.0 / config_.upsets_per_second;
    const auto delay = static_cast<Time>(rng_.Exponential(mean_s) * 1e12);
    const std::uint64_t epoch = epoch_;
    // Daemon events: the open-ended upset process must not keep the
    // simulation alive once foreground work drains.
    simulator_->ScheduleDaemonAfter(delay, [this, epoch] {
        if (!running_ || epoch != epoch_) return;
        ++counters_.upsets_injected;
        // Critical-bit upsets corrupt the role immediately: the role's
        // logic misbehaves from the moment the bit flips, before any
        // scrub pass can repair it.
        if (rng_.Chance(config_.critical_bit_fraction)) {
            ++counters_.role_corruptions;
            LOG_WARN("seu") << "critical configuration upset corrupted role";
            if (telemetry_ != nullptr) {
                telemetry_->Publish(telemetry_node_,
                                    mgmt::TelemetryKind::kSeuRoleCorruption);
            }
            if (on_role_corruption_) on_role_corruption_();
        } else {
            // Corrected by the scrubber within one scan period.
            ++pending_upsets_;
            const std::uint64_t at_epoch = epoch_;
            simulator_->ScheduleDaemonAfter(config_.scrub_period, [this, at_epoch] {
                if (at_epoch != epoch_) return;
                if (pending_upsets_ > 0) {
                    --pending_upsets_;
                    ++counters_.upsets_corrected;
                }
            });
        }
        ScheduleNextUpset();
    });
}

}  // namespace catapult::fpga
