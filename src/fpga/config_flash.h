// QSPI configuration flash + Remote Status Update (RSU) model.
//
// The board carries 4 x 256 Mb Quad-SPI flash (32 MB total) holding FPGA
// configurations (§2.1). The shell's reconfiguration logic, "based on a
// modified Remote Status Update (RSU) unit", reads/writes this flash
// (§3.2). Writing a full image over PCIe + QSPI dominates the cost of
// deploying a new role; configuring the FPGA from flash then takes
// "milliseconds to seconds" (§4.3).

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>

#include "common/units.h"
#include "fpga/bitstream.h"
#include "sim/simulator.h"

namespace catapult::fpga {

/** One of the image slots in flash (golden + application images). */
enum class FlashSlot : int {
    kGolden = 0,
    kApplication = 1,
    kStaging = 2,
};

inline constexpr int kFlashSlotCount = 3;

/**
 * Configuration flash with realistic write timing. Reads during device
 * configuration are modelled inside FpgaDevice's configuration delay.
 */
class ConfigFlash {
  public:
    struct Config {
        Bytes capacity = 32ll * 1024 * 1024;  ///< 4 x 256 Mb QSPI.
        /** Sustained QSPI program rate (erase+program, ~2 MB/s typical). */
        Bandwidth write_rate = Bandwidth::MegabytesPerSecond(2.0);
    };

    ConfigFlash(sim::Simulator* simulator, Config config);
    ConfigFlash(sim::Simulator* simulator)
        : ConfigFlash(simulator, Config()) {}

    /**
     * Begin writing `image` into `slot`. Completion fires `on_done` with
     * true on success, false if the image exceeds flash capacity or a
     * write is already in progress.
     */
    void WriteImage(FlashSlot slot, const Bitstream& image,
                    std::function<void(bool)> on_done);

    /** Image currently stored in `slot`, if any. */
    std::optional<Bitstream> ReadImage(FlashSlot slot) const;

    /** Synchronously install an image (rack-integration-time flashing). */
    void InstallImage(FlashSlot slot, const Bitstream& image);

    bool write_in_progress() const { return write_in_progress_; }

    /** Time a full write of `size` bytes takes at the QSPI program rate. */
    Time WriteDuration(Bytes size) const;

  private:
    sim::Simulator* simulator_;
    Config config_;
    std::array<std::optional<Bitstream>, kFlashSlotCount> slots_;
    bool write_in_progress_ = false;
};

}  // namespace catapult::fpga
