#include "fpga/power_model.h"

#include <algorithm>

namespace catapult::fpga {

double PowerModel::BoardPower(const Utilization& total_area,
                              double activity_factor) const {
    const double act = std::clamp(activity_factor, 0.0, 1.0);
    const double dynamic =
        act * (total_area.logic_pct / 100.0 * config_.logic_dynamic_watts +
               total_area.ram_pct / 100.0 * config_.ram_dynamic_watts +
               total_area.dsp_pct / 100.0 * config_.dsp_dynamic_watts);
    return config_.static_watts + dynamic;
}

double PowerModel::Power(const Bitstream& role, double activity_factor) const {
    Utilization total;
    total.logic_pct = std::min(100.0, role.area.logic_pct);
    total.ram_pct = std::min(100.0, role.area.ram_pct);
    total.dsp_pct = std::min(100.0, role.area.dsp_pct);
    return BoardPower(total, activity_factor);
}

double PowerModel::PowerVirusWatts() const {
    return Power(PowerVirusBitstream(), 1.0);
}

}  // namespace catapult::fpga
