// Thermal model for the FPGA daughtercard.
//
// The board sits in the server exhaust: inlet air reaches 68 C after
// the two host CPUs (§2.1), and the industrial-grade part is rated to
// 100 C. The model is a first-order thermal RC: die temperature tracks
// inlet + theta_ja * power with an exponential time constant. Crossing
// the rated junction temperature raises the temperature-shutdown error
// flag reported to the Health Monitor (§3.5).

#pragma once

#include "common/units.h"

namespace catapult::fpga {

class ThermalModel {
  public:
    struct Config {
        double inlet_celsius = 68.0;        ///< CPU exhaust worst case.
        double theta_ja = 1.25;             ///< C per watt, heatsinked.
        double shutdown_celsius = 100.0;    ///< Industrial part rating.
        Time time_constant = Seconds(20);   ///< Thermal RC constant.
    };

    ThermalModel() : ThermalModel(Config{}) {}
    explicit ThermalModel(Config config)
        : config_(config), die_celsius_(config.inlet_celsius) {}

    /** Advance the model: power has been `watts` for `elapsed` time. */
    void Advance(double watts, Time elapsed);

    /**
     * Jump the die straight to its steady-state temperature at `watts`
     * (failure injection: a cooling failure discovered after the
     * thermal RC has long since settled).
     */
    void SnapToSteadyState(double watts) {
        die_celsius_ = SteadyStateCelsius(watts);
    }

    /** Steady-state die temperature at `watts` dissipation. */
    double SteadyStateCelsius(double watts) const {
        return config_.inlet_celsius + config_.theta_ja * watts;
    }

    double die_celsius() const { return die_celsius_; }
    bool over_temperature() const {
        return die_celsius_ >= config_.shutdown_celsius;
    }

    void set_inlet_celsius(double celsius) { config_.inlet_celsius = celsius; }
    const Config& config() const { return config_; }

  private:
    Config config_;
    double die_celsius_;
};

}  // namespace catapult::fpga
