// FPGA device configuration state machine.
//
// Models the lifecycle the rest of the system cares about (§3.4):
//   Unconfigured -> Configuring -> Active -> (Reconfiguring|Failed) ...
// During (re)configuration the device:
//   * disappears from PCIe (a host that has not masked the device's
//     non-maskable interrupt sees a surprise-removal NMI),
//   * may emit garbage on its SL3 links unless TX Halt was sent first,
//   * comes back up with RX Halt engaged, dropping inbound link traffic
//     until the Mapping Manager releases it.
// Observers (the Shell, the host driver) subscribe to state changes.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "mgmt/telemetry_bus.h"
#include "fpga/area_model.h"
#include "fpga/bitstream.h"
#include "fpga/config_flash.h"
#include "fpga/power_model.h"
#include "fpga/seu_scrubber.h"
#include "fpga/thermal_model.h"
#include "sim/simulator.h"

namespace catapult::fpga {

enum class DeviceState {
    kUnconfigured,
    kConfiguring,
    kActive,
    kReconfiguring,
    kFailed,
};

const char* ToString(DeviceState state);

/**
 * One Stratix V D5 device with its configuration flash, scrubber,
 * thermal and power models.
 */
class FpgaDevice {
  public:
    struct Config {
        DeviceBudget budget;
        /** Full configuration from flash (§4.3: "milliseconds to seconds"). */
        Time configure_time = Milliseconds(900);
        /** Probability a configuration attempt fails and must retry. */
        double config_failure_probability = 0.0;
        SeuScrubber::Config seu;
        PowerModel::Config power;
        ThermalModel::Config thermal;
    };

    using StateListener = std::function<void(DeviceState, DeviceState)>;

    FpgaDevice(sim::Simulator* simulator, std::string name, Rng rng,
               Config config);
    FpgaDevice(sim::Simulator* simulator, std::string name, Rng rng)
        : FpgaDevice(simulator, std::move(name), rng, Config()) {}

    FpgaDevice(const FpgaDevice&) = delete;
    FpgaDevice& operator=(const FpgaDevice&) = delete;

    const std::string& name() const { return name_; }
    DeviceState state() const { return state_; }
    bool active() const { return state_ == DeviceState::kActive; }

    /** Image currently loaded into the fabric (valid when Active). */
    const Bitstream& loaded_image() const { return loaded_image_; }

    /**
     * Begin configuration from the given flash slot. The device passes
     * through kConfiguring/kReconfiguring for configure_time, then
     * becomes Active (or retries on a modelled configuration failure).
     * Fails immediately (callback false) if the slot is empty or the
     * image does not fit the device together with the shell.
     */
    void ConfigureFromFlash(FlashSlot slot, std::function<void(bool)> on_done);

    /** Hard-fail the device (driven by failure injection). */
    void ForceFail(const std::string& reason);

    /** Power-cycle: clears Failed, device returns via configuration. */
    void PowerCycle(std::function<void(bool)> on_done);

    /** Subscribe to state transitions. */
    void AddStateListener(StateListener listener);

    /** Current board power given the role's present activity factor. */
    double CurrentPowerWatts() const;

    /** Activity factor set by the role model (0..1). */
    void set_activity_factor(double activity);
    double activity_factor() const { return activity_factor_; }

    /**
     * Advance thermals to the current simulated time. Crossing the
     * rated junction temperature publishes a temperature-shutdown
     * event on the attached telemetry bus (once per excursion).
     */
    void UpdateThermals();

    /**
     * Wire this device into the health plane: SEU role corruptions and
     * temperature-shutdown transitions publish as events attributed to
     * pod-local `node`.
     */
    void AttachTelemetry(mgmt::TelemetryBus* bus, int node);

    ConfigFlash& flash() { return flash_; }
    const ConfigFlash& flash() const { return flash_; }
    SeuScrubber& scrubber() { return scrubber_; }
    const SeuScrubber& scrubber() const { return scrubber_; }
    const ThermalModel& thermal() const { return thermal_; }
    /** Mutable thermal access (failure injection: cooling failures). */
    ThermalModel& thermal_mutable() { return thermal_; }
    const PowerModel& power_model() const { return power_model_; }
    const DeviceBudget& budget() const { return config_.budget; }

    /** True when the role was corrupted by an SEU since last (re)config. */
    bool role_corrupted() const { return role_corrupted_; }

    /** Number of completed (re)configurations. */
    std::uint64_t configurations_completed() const {
        return configurations_completed_;
    }

  private:
    void TransitionTo(DeviceState next);
    void FinishConfiguration(FlashSlot slot, std::function<void(bool)> on_done);

    sim::Simulator* simulator_;
    std::string name_;
    Config config_;
    Rng rng_;
    ConfigFlash flash_;
    SeuScrubber scrubber_;
    ThermalModel thermal_;
    PowerModel power_model_;

    DeviceState state_ = DeviceState::kUnconfigured;
    Bitstream loaded_image_;
    std::vector<StateListener> listeners_;
    double activity_factor_ = 0.0;
    Time last_thermal_update_ = 0;
    bool role_corrupted_ = false;
    mgmt::TelemetryBus* telemetry_ = nullptr;
    int telemetry_node_ = -1;
    bool over_temperature_reported_ = false;
    std::uint64_t configurations_completed_ = 0;
    std::uint64_t config_epoch_ = 0;
};

}  // namespace catapult::fpga
