// FPGA area accounting against the Stratix V D5 resource budget.
//
// The paper reports per-stage utilization (Table 1) as percentages of
// logic (ALMs), RAM (M20K blocks) and DSPs, and states that the shell
// consumes 23% of the device. This model checks that a shell + role
// combination fits the device and reproduces the Table 1 rows.

#pragma once

#include <cstdint>
#include <string>

namespace catapult::fpga {

/** Absolute resource counts for one device or one design partition. */
struct ResourceCounts {
    std::int64_t alms = 0;        ///< Adaptive logic modules.
    std::int64_t m20k_blocks = 0; ///< 20 Kb embedded RAM blocks.
    std::int64_t dsp_blocks = 0;  ///< Variable-precision DSP blocks.

    ResourceCounts operator+(const ResourceCounts& o) const {
        return {alms + o.alms, m20k_blocks + o.m20k_blocks,
                dsp_blocks + o.dsp_blocks};
    }
    bool FitsWithin(const ResourceCounts& budget) const {
        return alms <= budget.alms && m20k_blocks <= budget.m20k_blocks &&
               dsp_blocks <= budget.dsp_blocks;
    }
};

/** Utilization of a device expressed as percentages, like Table 1. */
struct Utilization {
    double logic_pct = 0.0;
    double ram_pct = 0.0;
    double dsp_pct = 0.0;
};

/**
 * Device budget. Defaults to the Altera Stratix V D5 (5SGSMD5) used on
 * the Catapult board: 172,600 ALMs, 2,014 M20K blocks, 1,590 DSPs.
 */
class DeviceBudget {
  public:
    DeviceBudget() : DeviceBudget(StratixVD5()) {}
    explicit DeviceBudget(ResourceCounts capacity) : capacity_(capacity) {}

    static ResourceCounts StratixVD5() {
        return {172'600, 2'014, 1'590};
    }

    const ResourceCounts& capacity() const { return capacity_; }

    /** Convert absolute counts into Table 1 style percentages. */
    Utilization ToUtilization(const ResourceCounts& used) const;

    /** Convert Table 1 style percentages into absolute counts. */
    ResourceCounts FromUtilization(const Utilization& util) const;

    /** True when `used` fits the device. */
    bool Fits(const ResourceCounts& used) const {
        return used.FitsWithin(capacity_);
    }

    /** Total M20K bits (used for Model Reload worst-case sizing). */
    std::int64_t TotalM20kBits() const { return capacity_.m20k_blocks * 20'480; }

  private:
    ResourceCounts capacity_;
};

/** Area of the Catapult shell: 23% of the device (§3.2). */
Utilization ShellUtilization();

std::string ToString(const Utilization& u);

}  // namespace catapult::fpga
