// Board power model.
//
// Calibration points from the paper: the PCIe slot alone powers the
// card, capped at 25 W (§2.1); normal operation stays under 20 W; a
// "power virus" bitstream maxing out area and activity factor measured
// 22.7 W (§5). The model is an affine function of occupied area and
// activity factor on top of static board power (DRAM, flash, serial
// transceivers, leakage).

#pragma once

#include "fpga/area_model.h"
#include "fpga/bitstream.h"

namespace catapult::fpga {

class PowerModel {
  public:
    struct Config {
        /** Board static power: DRAM refresh, transceivers, leakage. */
        double static_watts = 9.0;
        /** Dynamic power of a design using 100% logic at activity 1.0. */
        double logic_dynamic_watts = 9.5;
        /** Dynamic power of 100% RAM utilization at activity 1.0. */
        double ram_dynamic_watts = 2.6;
        /** Dynamic power of 100% DSP utilization at activity 1.0. */
        double dsp_dynamic_watts = 1.6;
        /** PCIe bus power budget: hard cap (§2.1). */
        double pcie_cap_watts = 25.0;
    };

    PowerModel() : PowerModel(Config{}) {}
    explicit PowerModel(Config config) : config_(config) {}

    /**
     * Board power for a design with the given utilization running at
     * `activity_factor` (0 = idle clocks gated, 1 = every LUT toggling).
     */
    double BoardPower(const Utilization& total_area,
                      double activity_factor) const;

    /** Power for shell + role at the given activity. */
    double Power(const Bitstream& role, double activity_factor) const;

    /** The §5 experiment: power-virus image at activity 1.0. */
    double PowerVirusWatts() const;

    /** True if a design can exceed the PCIe power cap. */
    bool ExceedsPcieCap(const Bitstream& role) const {
        return Power(role, 1.0) > config_.pcie_cap_watts;
    }

    const Config& config() const { return config_; }

  private:
    Config config_;
};

}  // namespace catapult::fpga
