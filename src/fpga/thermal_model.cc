#include "fpga/thermal_model.h"

#include <cmath>

namespace catapult::fpga {

void ThermalModel::Advance(double watts, Time elapsed) {
    if (elapsed <= 0) return;
    const double target = SteadyStateCelsius(watts);
    const double tau = ToSeconds(config_.time_constant);
    const double dt = ToSeconds(elapsed);
    const double alpha = 1.0 - std::exp(-dt / tau);
    die_celsius_ += (target - die_celsius_) * alpha;
}

}  // namespace catapult::fpga
