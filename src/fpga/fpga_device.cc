#include "fpga/fpga_device.h"

#include <cassert>
#include <utility>

#include "common/log.h"

namespace catapult::fpga {

const char* ToString(DeviceState state) {
    switch (state) {
      case DeviceState::kUnconfigured: return "unconfigured";
      case DeviceState::kConfiguring: return "configuring";
      case DeviceState::kActive: return "active";
      case DeviceState::kReconfiguring: return "reconfiguring";
      case DeviceState::kFailed: return "failed";
    }
    return "?";
}

FpgaDevice::FpgaDevice(sim::Simulator* simulator, std::string name, Rng rng,
                       Config config)
    : simulator_(simulator),
      name_(std::move(name)),
      config_(config),
      rng_(rng),
      flash_(simulator),
      scrubber_(simulator, rng_.Fork(), config.seu),
      thermal_(config.thermal),
      power_model_(config.power) {
    assert(simulator_ != nullptr);
    scrubber_.set_on_role_corruption([this] { role_corrupted_ = true; });
}

void FpgaDevice::AddStateListener(StateListener listener) {
    listeners_.push_back(std::move(listener));
}

void FpgaDevice::TransitionTo(DeviceState next) {
    if (state_ == next) return;
    const DeviceState previous = state_;
    state_ = next;
    LOG_DEBUG("fpga") << name_ << ": " << ToString(previous) << " -> "
                      << ToString(next);
    for (const auto& listener : listeners_) listener(previous, next);
}

void FpgaDevice::ConfigureFromFlash(FlashSlot slot,
                                    std::function<void(bool)> on_done) {
    const auto image = flash_.ReadImage(slot);
    if (!image.has_value()) {
        LOG_WARN("fpga") << name_ << ": configure from empty flash slot";
        simulator_->ScheduleAfter(0, [cb = std::move(on_done)] { cb(false); });
        return;
    }
    // Admission check: the design (shell + role, as synthesized) must
    // fit the device.
    const Utilization total = image->area;
    if (total.logic_pct > 100.0 || total.ram_pct > 100.0 ||
        total.dsp_pct > 100.0) {
        LOG_WARN("fpga") << name_ << ": image " << image->role_name
                         << " does not fit the device (" << ToString(total)
                         << ")";
        simulator_->ScheduleAfter(0, [cb = std::move(on_done)] { cb(false); });
        return;
    }

    UpdateThermals();
    scrubber_.Stop();
    role_corrupted_ = false;
    const bool was_active = state_ == DeviceState::kActive;
    TransitionTo(was_active ? DeviceState::kReconfiguring
                            : DeviceState::kConfiguring);
    const std::uint64_t epoch = ++config_epoch_;
    simulator_->ScheduleAfter(
        config_.configure_time,
        [this, slot, epoch, cb = std::move(on_done)]() mutable {
            if (epoch != config_epoch_) return;  // superseded
            FinishConfiguration(slot, std::move(cb));
        });
}

void FpgaDevice::FinishConfiguration(FlashSlot slot,
                                     std::function<void(bool)> on_done) {
    if (state_ == DeviceState::kFailed) {
        on_done(false);
        return;
    }
    if (rng_.Chance(config_.config_failure_probability)) {
        LOG_WARN("fpga") << name_ << ": configuration CRC failure, retrying";
        const std::uint64_t epoch = ++config_epoch_;
        simulator_->ScheduleAfter(
            config_.configure_time,
            [this, slot, epoch, cb = std::move(on_done)]() mutable {
                if (epoch != config_epoch_) return;
                FinishConfiguration(slot, std::move(cb));
            });
        return;
    }
    const auto image = flash_.ReadImage(slot);
    if (!image.has_value()) {
        on_done(false);
        return;
    }
    loaded_image_ = *image;
    ++configurations_completed_;
    scrubber_.ClearPendingUpsets();
    scrubber_.Start();
    TransitionTo(DeviceState::kActive);
    on_done(true);
}

void FpgaDevice::ForceFail(const std::string& reason) {
    LOG_WARN("fpga") << name_ << ": forced failure (" << reason << ")";
    UpdateThermals();
    scrubber_.Stop();
    ++config_epoch_;  // abort any in-flight configuration
    TransitionTo(DeviceState::kFailed);
}

void FpgaDevice::PowerCycle(std::function<void(bool)> on_done) {
    UpdateThermals();
    scrubber_.Stop();
    role_corrupted_ = false;
    ++config_epoch_;
    TransitionTo(DeviceState::kUnconfigured);
    // Power-on loads the application slot if present, else golden.
    const FlashSlot slot =
        flash_.ReadImage(FlashSlot::kApplication).has_value()
            ? FlashSlot::kApplication
            : FlashSlot::kGolden;
    ConfigureFromFlash(slot, std::move(on_done));
}

double FpgaDevice::CurrentPowerWatts() const {
    if (state_ != DeviceState::kActive) {
        // Configuration draws roughly static power.
        return power_model_.config().static_watts;
    }
    return power_model_.Power(loaded_image_, activity_factor_);
}

void FpgaDevice::set_activity_factor(double activity) {
    UpdateThermals();
    activity_factor_ = activity;
}

void FpgaDevice::AttachTelemetry(mgmt::TelemetryBus* bus, int node) {
    telemetry_ = bus;
    telemetry_node_ = node;
    scrubber_.AttachTelemetry(bus, node);
}

void FpgaDevice::UpdateThermals() {
    const Time now = simulator_->Now();
    if (now > last_thermal_update_) {
        thermal_.Advance(CurrentPowerWatts(), now - last_thermal_update_);
        last_thermal_update_ = now;
    }
    // Publish the shutdown transition, not the steady over-temperature
    // state: one excursion is one event however often health is read.
    if (thermal_.over_temperature()) {
        // Latch only once published: an excursion that begins before
        // AttachTelemetry must still surface on the first update after
        // the bus is wired.
        if (!over_temperature_reported_ && telemetry_ != nullptr) {
            telemetry_->Publish(telemetry_node_,
                                mgmt::TelemetryKind::kTemperatureShutdown);
            over_temperature_reported_ = true;
        }
    } else {
        over_temperature_reported_ = false;
    }
}

}  // namespace catapult::fpga
