#include "fpga/config_flash.h"

#include <cassert>
#include <utility>

#include "common/log.h"

namespace catapult::fpga {

ConfigFlash::ConfigFlash(sim::Simulator* simulator, Config config)
    : simulator_(simulator), config_(config) {
    assert(simulator_ != nullptr);
}

Time ConfigFlash::WriteDuration(Bytes size) const {
    return config_.write_rate.SerializationTime(size);
}

void ConfigFlash::WriteImage(FlashSlot slot, const Bitstream& image,
                             std::function<void(bool)> on_done) {
    if (write_in_progress_ || image.payload_size > config_.capacity) {
        simulator_->ScheduleAfter(0, [cb = std::move(on_done)] { cb(false); });
        return;
    }
    write_in_progress_ = true;
    const Time duration = WriteDuration(image.payload_size);
    LOG_DEBUG("flash") << "writing image " << image.role_name << " ("
                       << image.payload_size << " B, "
                       << FormatTime(duration) << ")";
    simulator_->ScheduleAfter(
        duration, [this, slot, image, cb = std::move(on_done)] {
            slots_[static_cast<int>(slot)] = image;
            write_in_progress_ = false;
            cb(true);
        });
}

std::optional<Bitstream> ConfigFlash::ReadImage(FlashSlot slot) const {
    return slots_[static_cast<int>(slot)];
}

void ConfigFlash::InstallImage(FlashSlot slot, const Bitstream& image) {
    slots_[static_cast<int>(slot)] = image;
}

}  // namespace catapult::fpga
