#include "shell/router.h"

#include <cassert>

#include "common/log.h"

namespace catapult::shell {

Router::Router(sim::Simulator* simulator, NodeId local_node, Config config)
    : simulator_(simulator), local_node_(local_node), config_(config) {
    assert(simulator_ != nullptr);
}

void Router::AttachLink(Port port, Sl3Link* link) {
    assert(port == Port::kNorth || port == Port::kSouth ||
           port == Port::kEast || port == Port::kWest);
    links_[static_cast<int>(port)] = link;
    link->set_on_receive([this, port] { OnLinkReceive(port); });
}

Sl3Link* Router::link(Port port) const {
    return links_[static_cast<int>(port)];
}

std::size_t Router::InputOccupancyFlits(Port port) const {
    const Sl3Link* l = links_[static_cast<int>(port)];
    return l != nullptr ? l->RxQueueDepthFlits() : 0;
}

void Router::OnLinkReceive(Port port) {
    if (drain_scheduled_[static_cast<int>(port)]) return;
    drain_scheduled_[static_cast<int>(port)] = true;
    simulator_->ScheduleAfter(config_.hop_latency,
                              [this, port] { DrainInput(port); });
}

void Router::DrainInput(Port port) {
    drain_scheduled_[static_cast<int>(port)] = false;
    Sl3Link* in = links_[static_cast<int>(port)];
    if (in == nullptr) return;
    while (in->HasReceived()) {
        // Peek at the head by popping; if the output stalls we re-queue
        // via a retry rather than head-of-line-block other messages that
        // share the crossbar (outputs are independent).
        PacketPtr packet = in->PopReceived();
        Route(std::move(packet), port);
    }
}

void Router::Inject(PacketPtr packet, Port from) {
    ++counters_.injected;
    simulator_->ScheduleAfter(
        config_.hop_latency,
        [this, packet = std::move(packet), from]() mutable {
            Route(std::move(packet), from);
        });
}

void Router::Route(PacketPtr packet, Port in) {
    if (packet->destination == local_node_) {
        ++counters_.delivered_local;
        if (tap_) tap_(packet, in, Port::kRole);
        if (local_delivery_) local_delivery_(std::move(packet));
        return;
    }
    Port out;
    if (!table_.Lookup(packet->destination, out)) {
        ++counters_.no_route_drops;
        LOG_DEBUG("router") << "node " << local_node_ << ": no route to "
                            << packet->destination << ", dropping "
                            << ToString(packet->type);
        return;
    }
    Sl3Link* link = links_[static_cast<int>(out)];
    if (link == nullptr) {
        ++counters_.no_route_drops;
        return;
    }
    if (tap_) tap_(packet, in, out);
    if (!link->Send(packet)) {
        // Output transmit queue full: virtual cut-through applies
        // backpressure. Retry shortly; Xon/Xoff upstream of us throttles
        // the actual producer.
        ++counters_.backpressure_stalls;
        simulator_->ScheduleAfter(
            config_.backpressure_retry,
            [this, packet = std::move(packet), in]() mutable {
                Route(std::move(packet), in);
            });
        return;
    }
    ++counters_.forwarded;
}

}  // namespace catapult::shell
