// The Catapult shell: reusable programmable logic common to all roles.
//
// §3.2: the shell bundles two DRAM controllers, four SL3 link cores,
// the router, reconfiguration (RSU) logic, the PCIe core with DMA
// extensions, and SEU scrubbing; the role accesses these through
// well-defined interfaces without managing system correctness itself.
//
// This class composes the component models and implements the §3.4
// correct-operation protocol:
//  * graceful reconfiguration raises TX Halt on every link first;
//  * an ungraceful (crash) reconfiguration emits garbage bursts that
//    neighbours must survive;
//  * a freshly configured shell comes up with RX Halt engaged and drops
//    link traffic until the Mapping Manager releases it;
//  * the PCIe device disappears during reconfiguration (the host driver
//    must have masked the NMI).

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "mgmt/telemetry_bus.h"
#include "fpga/fpga_device.h"
#include "shell/dma_engine.h"
#include "shell/dram_controller.h"
#include "shell/flight_data_recorder.h"
#include "shell/packet.h"
#include "shell/router.h"
#include "shell/sl3_link.h"
#include "sim/simulator.h"

namespace catapult::shell {

/** Application logic hosted in the role partition. */
class Role {
  public:
    virtual ~Role() = default;

    /** A packet addressed to this node arrived for the role. */
    virtual void OnPacket(PacketPtr packet) = 0;

    /** Role identity, e.g. "rank.fe". */
    virtual std::string RoleName() const = 0;

    /** Role-level health (stage logic hangs are reported here, §3.5). */
    virtual bool Healthy() const { return true; }
};

/**
 * Error vector returned to the Health Monitor (§3.5): "error flags for
 * inter-FPGA connections, DRAM status (bit errors and calibration
 * failures), errors in the FPGA application, PLL lock issues, PCIe
 * errors, and the occurrence of a temperature shutdown", plus the
 * machine IDs of the four torus neighbours.
 */
struct HealthVector {
    std::array<bool, 4> link_error{};       ///< N, S, E, W.
    std::array<NodeId, 4> neighbor_id{kInvalidNode, kInvalidNode,
                                      kInvalidNode, kInvalidNode};
    bool dram_bit_errors = false;
    bool dram_calibration_failure = false;
    bool application_error = false;
    bool pll_lock_failure = false;
    bool pcie_errors = false;
    bool temperature_shutdown = false;
    /**
     * §3.4 state, not an error: the shell is discarding link traffic
     * until the Mapping Manager releases it. Reported so the Health
     * Monitor can spot a node that rebooted behind the plane's back
     * and is stranded waiting for re-mapping.
     */
    bool rx_halted = false;

    bool AnyError() const;
};

class Shell {
  public:
    struct Config {
        Sl3Link::Config link;
        Router::Config router;
        DmaEngine::Config dma;
        DramController::Config dram;
        std::uint32_t shell_version = 1;
        /** Record every router crossing in the FDR (§3.6). */
        bool fdr_enabled = true;
        /** Role-region rewrite time for partial reconfiguration. */
        Time partial_reconfig_time = Milliseconds(150);
    };

    Shell(sim::Simulator* simulator, NodeId node, std::string name,
          fpga::FpgaDevice* device, Rng rng, Config config);
    Shell(sim::Simulator* simulator, NodeId node, std::string name,
          fpga::FpgaDevice* device, Rng rng)
        : Shell(simulator, node, std::move(name), device, rng, Config()) {}

    Shell(const Shell&) = delete;
    Shell& operator=(const Shell&) = delete;

    NodeId node() const { return node_; }
    const std::string& name() const { return name_; }

    // --- Role hosting --------------------------------------------------

    /** Install the application role (null to clear). */
    void SetRole(Role* role) { role_ = role; }
    Role* role() const { return role_; }

    /** Role-side send: packet enters the router at the role port. */
    void SendFromRole(PacketPtr packet);

    /** FPGA produced a host-bound result (DMA to output slot). */
    void SendToHost(PacketPtr packet);

    // --- Reconfiguration protocol (§3.4) --------------------------------

    /**
     * Reconfigure from a flash slot. `graceful` follows the TX-Halt
     * protocol; ungraceful models a crash/buggy flow that sprays
     * garbage at neighbours. On completion the shell is RX-halted.
     */
    void Reconfigure(fpga::FlashSlot slot, bool graceful,
                     std::function<void(bool)> on_done);

    /** Mapping Manager releases RX Halt once the pipeline is configured. */
    void ReleaseRxHalt();

    /**
     * Re-engage RX Halt immediately (power-domain loss, §3.4 state
     * after an unnoticed reboot): arriving link traffic is discarded
     * until a Mapping Manager releases the halt again.
     */
    void EngageRxHalt();

    /** True while inbound link traffic is being discarded. */
    bool rx_halted() const { return rx_halted_; }

    /**
     * Partial reconfiguration (§3.2's forward-looking design: "partial
     * reconfiguration would allow for dynamic switching between roles
     * while the shell remains active — even routing inter-FPGA traffic
     * while a reconfiguration is taking place"). Only the role region
     * is rewritten: the device never leaves kActive, PCIe stays up, no
     * TX/RX Halt is needed, and the router keeps forwarding transit
     * packets. Packets addressed to the local role during the swap are
     * dropped (the role is mid-rewrite) and surface as host timeouts.
     * Fails when the device is not active or a swap is in progress.
     */
    void PartialReconfigure(const fpga::Bitstream& role_image,
                            std::function<void(bool)> on_done);

    /** True while the role region is being rewritten. */
    bool partial_reconfig_active() const { return partial_reconfig_active_; }

    /** The role image installed by the last partial reconfiguration. */
    const fpga::Bitstream& partial_role_image() const {
        return partial_role_image_;
    }

    // --- Health (§3.5) ---------------------------------------------------

    /** Assemble the Health Monitor error vector from component state. */
    HealthVector CollectHealth();

    /** Neighbour machine ID as wired (set by the fabric at cabling). */
    void SetNeighborId(Port port, NodeId id);

    /**
     * Wire this shell and its components (links, DRAM controllers, DMA
     * engine) into the health plane: faults publish as events
     * attributed to pod-local `node` instead of waiting for the next
     * CollectHealth() poll.
     */
    void AttachTelemetry(mgmt::TelemetryBus* bus, int node);

    // --- Component access -------------------------------------------------

    Router& router() { return router_; }
    Sl3Link& link(Port port);
    const Sl3Link& link(Port port) const;
    DmaEngine& dma() { return dma_; }
    DramController& dram(int channel) { return *dram_[channel]; }
    FlightDataRecorder& fdr() { return fdr_; }
    fpga::FpgaDevice& device() { return *device_; }
    const Config& config() const { return config_; }

    /** Mark an application-level error (stage hang, untested input). */
    void FlagApplicationError();
    void ClearApplicationError() { application_error_ = false; }

  private:
    static int LinkIndex(Port port);
    void DeliverLocal(PacketPtr packet);
    void OnIngress(PacketPtr packet);
    void RecordFdr(const PacketPtr& packet, Port in, Port out);

    sim::Simulator* simulator_;
    NodeId node_;
    std::string name_;
    fpga::FpgaDevice* device_;
    Config config_;
    Router router_;
    std::array<std::unique_ptr<Sl3Link>, 4> links_;  // N, S, E, W
    std::array<std::unique_ptr<DramController>, 2> dram_;
    DmaEngine dma_;
    FlightDataRecorder fdr_;
    Role* role_ = nullptr;
    bool rx_halted_ = true;  // §3.4: comes up with RX Halt enabled
    bool application_error_ = false;
    mgmt::TelemetryBus* telemetry_ = nullptr;
    int telemetry_node_ = -1;
    bool partial_reconfig_active_ = false;
    std::uint64_t partial_drops_ = 0;
    fpga::Bitstream partial_role_image_;
    std::array<NodeId, 4> neighbor_ids_{kInvalidNode, kInvalidNode,
                                        kInvalidNode, kInvalidNode};
};

}  // namespace catapult::shell
