#include "shell/flight_data_recorder.h"

#include <sstream>

namespace catapult::shell {

void FlightDataRecorder::Record(const FdrRecord& record) {
    if (spill_capacity_ > 0 && total_ >= kWindow) {
        // The slot being overwritten holds the oldest window entry;
        // spill it to the DRAM history before eviction.
        if (spill_.size() < spill_capacity_) {
            spill_.push_back(ring_[total_ % kWindow]);
        } else {
            ++spill_overflow_;
        }
    }
    ring_[total_ % kWindow] = record;
    ++total_;
}

void FlightDataRecorder::EnableDramSpill(std::size_t capacity_records) {
    spill_capacity_ = capacity_records;
    spill_.reserve(capacity_records);
}

std::vector<FdrRecord> FlightDataRecorder::StreamOutExtended() const {
    std::vector<FdrRecord> out = spill_;
    const auto window = StreamOut();
    out.insert(out.end(), window.begin(), window.end());
    return out;
}

std::vector<FdrRecord> FlightDataRecorder::StreamOut() const {
    std::vector<FdrRecord> out;
    const std::size_t n = window_occupancy();
    out.reserve(n);
    const std::uint64_t start = total_ >= kWindow ? total_ - kWindow : 0;
    for (std::uint64_t i = start; i < total_; ++i) {
        out.push_back(ring_[i % kWindow]);
    }
    return out;
}

std::string FlightDataRecorder::DumpJson() const {
    std::ostringstream out;
    out << "{\"power_on\":{\"sl3_lanes_locked\":"
        << (power_on_.sl3_lanes_locked ? "true" : "false")
        << ",\"plls_locked\":" << (power_on_.plls_locked ? "true" : "false")
        << ",\"resets_sequenced\":"
        << (power_on_.resets_sequenced ? "true" : "false")
        << ",\"dram_calibrated\":"
        << (power_on_.dram_calibrated ? "true" : "false")
        << ",\"recorded_at\":" << power_on_.recorded_at << "}"
        << ",\"total_recorded\":" << total_
        << ",\"spill_overflow\":" << spill_overflow_ << ",\"records\":[";
    bool first = true;
    for (const FdrRecord& r : StreamOutExtended()) {
        if (!first) out << ",";
        first = false;
        out << "{\"ts\":" << r.timestamp << ",\"trace_id\":" << r.trace_id
            << ",\"type\":\"" << ToString(r.type) << "\",\"size\":" << r.size
            << ",\"ingress\":\"" << ToString(r.ingress) << "\",\"egress\":\""
            << ToString(r.egress) << "\",\"queue_flits\":" << r.queue_flits
            << "}";
    }
    out << "]}";
    return out.str();
}

void FlightDataRecorder::Reset() {
    total_ = 0;
    power_on_ = PowerOnRecord{};
    spill_.clear();
    spill_overflow_ = 0;
}

}  // namespace catapult::shell
