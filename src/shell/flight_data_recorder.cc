#include "shell/flight_data_recorder.h"

namespace catapult::shell {

void FlightDataRecorder::Record(const FdrRecord& record) {
    if (spill_capacity_ > 0 && total_ >= kWindow) {
        // The slot being overwritten holds the oldest window entry;
        // spill it to the DRAM history before eviction.
        if (spill_.size() < spill_capacity_) {
            spill_.push_back(ring_[total_ % kWindow]);
        } else {
            ++spill_overflow_;
        }
    }
    ring_[total_ % kWindow] = record;
    ++total_;
}

void FlightDataRecorder::EnableDramSpill(std::size_t capacity_records) {
    spill_capacity_ = capacity_records;
    spill_.reserve(capacity_records);
}

std::vector<FdrRecord> FlightDataRecorder::StreamOutExtended() const {
    std::vector<FdrRecord> out = spill_;
    const auto window = StreamOut();
    out.insert(out.end(), window.begin(), window.end());
    return out;
}

std::vector<FdrRecord> FlightDataRecorder::StreamOut() const {
    std::vector<FdrRecord> out;
    const std::size_t n = window_occupancy();
    out.reserve(n);
    const std::uint64_t start = total_ >= kWindow ? total_ - kWindow : 0;
    for (std::uint64_t i = start; i < total_; ++i) {
        out.push_back(ring_[i % kWindow]);
    }
    return out;
}

void FlightDataRecorder::Reset() {
    total_ = 0;
    power_on_ = PowerOnRecord{};
    spill_.clear();
    spill_overflow_ = 0;
}

}  // namespace catapult::shell
