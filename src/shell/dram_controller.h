// DDR3 DRAM controller model.
//
// The board carries two dual-rank DDR3-1600 ECC SO-DIMMs (8 GB total)
// that "can operate at DDR3-1333 speeds with the full 8 GB capacity, or
// trade capacity for additional bandwidth by running as 4 GB single-rank
// DIMMs at DDR3-1600 speeds" (§2.1). On the Stratix V the dual-rank
// DIMMs run at 667 MHz and single-rank at 800 MHz (§3.2). The two
// controllers operate independently or as a unified interface.
//
// The model serves transfer requests FIFO per channel with a bandwidth
// and fixed-latency cost, and carries the ECC error and calibration
// state the Health Monitor reads (§3.5).

#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/rng.h"
#include "common/units.h"
#include "mgmt/telemetry_bus.h"
#include "sim/simulator.h"

namespace catapult::shell {

/** DIMM operating point (capacity/bandwidth trade, §2.1). */
enum class DramMode {
    kDualRank1333,    ///< 8 GB at DDR3-1333 (667 MHz controller clock).
    kSingleRank1600,  ///< 4 GB at DDR3-1600 (800 MHz controller clock).
};

class DramController {
  public:
    struct Config {
        DramMode mode = DramMode::kDualRank1333;
        /** Closed-page random-access latency. */
        Time access_latency = Nanoseconds(90);
        /** Fraction of peak usable for streaming transfers. */
        double efficiency = 0.80;
        /** Probability per transfer of a correctable ECC event. */
        double single_bit_error_rate = 0.0;
        /** Probability per transfer of an uncorrectable ECC event. */
        double double_bit_error_rate = 0.0;
    };

    struct Status {
        bool calibrated = true;
        std::uint64_t single_bit_errors = 0;
        std::uint64_t double_bit_errors = 0;
        std::uint64_t transfers = 0;
    };

    DramController(sim::Simulator* simulator, Rng rng, Config config);
    DramController(sim::Simulator* simulator, Rng rng)
        : DramController(simulator, rng, Config()) {}

    /** Capacity at the current operating point. */
    Bytes Capacity() const;

    /** Peak bandwidth of one channel at the current operating point. */
    Bandwidth PeakBandwidth() const;

    /** Effective streaming bandwidth (peak x efficiency). */
    Bandwidth EffectiveBandwidth() const {
        return PeakBandwidth().Scaled(config_.efficiency);
    }

    /**
     * Queue a transfer of `size` bytes; `on_done(success)` fires when
     * it completes. Uncorrectable ECC errors or a failed calibration
     * complete with success=false.
     */
    void Transfer(Bytes size, std::function<void(bool)> on_done);

    /** Time a transfer of `size` bytes takes unqueued. */
    Time TransferTime(Bytes size) const;

    /** Fail / restore DIMM calibration (failure injection). */
    void set_calibrated(bool calibrated);

    /** Publish ECC faults / calibration loss as health-plane events. */
    void AttachTelemetry(mgmt::TelemetryBus* bus, int node) {
        telemetry_ = bus;
        telemetry_node_ = node;
    }

    const Status& status() const { return status_; }
    const Config& config() const { return config_; }
    std::size_t QueueDepth() const { return queue_.size(); }

  private:
    void PublishTelemetry(mgmt::TelemetryKind kind);

    struct Request {
        Bytes size;
        std::function<void(bool)> on_done;
    };

    void Pump();

    sim::Simulator* simulator_;
    Rng rng_;
    Config config_;
    Status status_;
    std::deque<Request> queue_;
    bool busy_ = false;
    mgmt::TelemetryBus* telemetry_ = nullptr;
    int telemetry_node_ = -1;
};

}  // namespace catapult::shell
