#include "shell/shell.h"

#include <cassert>

#include "common/log.h"

namespace catapult::shell {

bool HealthVector::AnyError() const {
    for (bool e : link_error) {
        if (e) return true;
    }
    return dram_bit_errors || dram_calibration_failure || application_error ||
           pll_lock_failure || pcie_errors || temperature_shutdown;
}

namespace {

constexpr Port kLinkPorts[4] = {Port::kNorth, Port::kSouth, Port::kEast,
                                Port::kWest};

}  // namespace

int Shell::LinkIndex(Port port) {
    switch (port) {
      case Port::kNorth: return 0;
      case Port::kSouth: return 1;
      case Port::kEast: return 2;
      case Port::kWest: return 3;
      default: assert(false && "not a link port"); return 0;
    }
}

Shell::Shell(sim::Simulator* simulator, NodeId node, std::string name,
             fpga::FpgaDevice* device, Rng rng, Config config)
    : simulator_(simulator),
      node_(node),
      name_(std::move(name)),
      device_(device),
      config_(config),
      router_(simulator, node, config.router),
      dma_(simulator, config.dma) {
    assert(simulator_ != nullptr);
    assert(device_ != nullptr);

    for (int i = 0; i < 4; ++i) {
        links_[i] = std::make_unique<Sl3Link>(
            simulator_, name_ + "." + ToString(kLinkPorts[i]), rng.Fork(),
            config_.link);
        links_[i]->set_shell_version(config_.shell_version);
        links_[i]->SetRxHalt(true);
        links_[i]->set_on_corruption(
            [this](const PacketPtr&) { FlagApplicationError(); });
        router_.AttachLink(kLinkPorts[i], links_[i].get());
    }
    for (int c = 0; c < 2; ++c) {
        dram_[c] = std::make_unique<DramController>(simulator_, rng.Fork(),
                                                    config_.dram);
    }

    router_.set_local_delivery(
        [this](PacketPtr packet) { DeliverLocal(std::move(packet)); });
    if (config_.fdr_enabled) {
        router_.set_tap([this](const PacketPtr& packet, Port in, Port out) {
            RecordFdr(packet, in, out);
        });
    }
    dma_.set_on_ingress([this](PacketPtr packet) { OnIngress(std::move(packet)); });

    // The shell reacts to device configuration transitions.
    device_->AddStateListener(
        [this](fpga::DeviceState, fpga::DeviceState next) {
            if (next == fpga::DeviceState::kActive) {
                // §3.4: "each FPGA comes up with RX Halt enabled".
                rx_halted_ = true;
                application_error_ = false;
                for (auto& link : links_) {
                    link->SetRxHalt(true);
                    link->SetTxHalt(false);
                }
                dma_.set_device_present(true);
                PowerOnRecord rec;
                rec.sl3_lanes_locked = true;
                rec.plls_locked = true;
                rec.resets_sequenced = true;
                rec.dram_calibrated = dram_[0]->status().calibrated &&
                                      dram_[1]->status().calibrated;
                rec.recorded_at = simulator_->Now();
                fdr_.RecordPowerOn(rec);
            }
        });
}

Sl3Link& Shell::link(Port port) { return *links_[LinkIndex(port)]; }
const Sl3Link& Shell::link(Port port) const { return *links_[LinkIndex(port)]; }

void Shell::SendFromRole(PacketPtr packet) {
    packet->shell_version = config_.shell_version;
    RecordFdr(packet, Port::kRole, Port::kRole);
    router_.Inject(std::move(packet), Port::kRole);
}

void Shell::SendToHost(PacketPtr packet) {
    const int slot = packet->slot >= 0 ? packet->slot : 0;
    dma_.SendToHost(slot, std::move(packet));
}

void Shell::OnIngress(PacketPtr packet) {
    RecordFdr(packet, Port::kPcie, Port::kPcie);
    router_.Inject(std::move(packet), Port::kPcie);
}

void Shell::DeliverLocal(PacketPtr packet) {
    switch (packet->type) {
      case PacketType::kScoringResponse:
        SendToHost(std::move(packet));
        return;
      case PacketType::kScoringRequest:
      case PacketType::kModelReload:
        if (partial_reconfig_active_) {
            // The role region is mid-rewrite; local deliveries are lost
            // (transit traffic keeps flowing through the router).
            ++partial_drops_;
            return;
        }
        if (role_ != nullptr) {
            role_->OnPacket(std::move(packet));
        } else {
            LOG_DEBUG("shell") << name_ << ": packet for absent role dropped";
        }
        return;
      case PacketType::kLinkProbe:
        // Health Monitor probes are answered at shell level; nothing to
        // do here — identity is read via CollectHealth().
        return;
      default:
        return;
    }
}

void Shell::Reconfigure(fpga::FlashSlot slot, bool graceful,
                        std::function<void(bool)> on_done) {
    if (graceful) {
        // §3.4: send "TX Halt" so neighbours ignore our garbage.
        for (auto& link : links_) link->SetTxHalt(true);
    } else {
        // Crash path: garbage sprays out with no warning.
        for (auto& link : links_) link->EmitGarbageBurst();
    }
    // The PCIe device disappears; the host must have masked the NMI.
    dma_.set_device_present(false);
    device_->ConfigureFromFlash(slot, std::move(on_done));
}

void Shell::PartialReconfigure(const fpga::Bitstream& role_image,
                               std::function<void(bool)> on_done) {
    if (partial_reconfig_active_ || !device_->active()) {
        simulator_->ScheduleAfter(0, [cb = std::move(on_done)] { cb(false); });
        return;
    }
    // Admission: the new role must fit the device alongside the shell.
    if (role_image.area.logic_pct > 100.0 || role_image.area.ram_pct > 100.0 ||
        role_image.area.dsp_pct > 100.0) {
        simulator_->ScheduleAfter(0, [cb = std::move(on_done)] { cb(false); });
        return;
    }
    partial_reconfig_active_ = true;
    LOG_INFO("shell") << name_ << ": partial reconfiguration to "
                      << role_image.role_name << " (shell stays active)";
    simulator_->ScheduleAfter(
        config_.partial_reconfig_time,
        [this, role_image, cb = std::move(on_done)] {
            partial_reconfig_active_ = false;
            partial_role_image_ = role_image;
            application_error_ = false;
            cb(true);
        });
}

void Shell::ReleaseRxHalt() {
    rx_halted_ = false;
    for (auto& link : links_) link->SetRxHalt(false);
}

void Shell::EngageRxHalt() {
    rx_halted_ = true;
    for (auto& link : links_) link->SetRxHalt(true);
}

void Shell::SetNeighborId(Port port, NodeId id) {
    neighbor_ids_[LinkIndex(port)] = id;
}

void Shell::AttachTelemetry(mgmt::TelemetryBus* bus, int node) {
    telemetry_ = bus;
    telemetry_node_ = node;
    for (auto& link : links_) link->AttachTelemetry(bus, node);
    for (auto& dram : dram_) dram->AttachTelemetry(bus, node);
    dma_.AttachTelemetry(bus, node);
}

void Shell::FlagApplicationError() {
    // Transition publish: corrupted state stays corrupted until a
    // reconfiguration clears it, so repeat flags are not new faults.
    if (!application_error_ && telemetry_ != nullptr) {
        telemetry_->Publish(telemetry_node_,
                            mgmt::TelemetryKind::kApplicationError);
    }
    application_error_ = true;
}

HealthVector Shell::CollectHealth() {
    HealthVector health;
    for (int i = 0; i < 4; ++i) {
        const auto& counters = links_[i]->counters();
        const bool hard_errors = counters.crc_drops > 0 ||
                                 counters.double_bit_drops > 0 ||
                                 counters.undetected_errors > 0;
        // An uncabled port (loopback rigs, pod edges under test) is not
        // an error; a cabled-but-unlocked (defective) link is. Unplugged
        // cables in a full pod surface as kInvalidNode neighbour ids,
        // which the Health Monitor checks against the expected wiring.
        health.link_error[i] =
            (links_[i]->connected() && !links_[i]->locked()) || hard_errors;
        health.neighbor_id[i] =
            links_[i]->locked() ? neighbor_ids_[i] : kInvalidNode;
    }
    bool bit_errors = false;
    bool calib_fail = false;
    for (const auto& dram : dram_) {
        bit_errors |= dram->status().single_bit_errors > 0 ||
                      dram->status().double_bit_errors > 0;
        calib_fail |= !dram->status().calibrated;
    }
    health.dram_bit_errors = bit_errors;
    health.dram_calibration_failure = calib_fail;
    health.application_error = application_error_ ||
                               device_->role_corrupted() ||
                               (role_ != nullptr && !role_->Healthy());
    health.pll_lock_failure = false;
    health.pcie_errors = dma_.host_to_fpga_link().counters().errors > 0 ||
                         dma_.fpga_to_host_link().counters().errors > 0;
    device_->UpdateThermals();
    health.temperature_shutdown = device_->thermal().over_temperature();
    health.rx_halted = rx_halted_;
    return health;
}

void Shell::RecordFdr(const PacketPtr& packet, Port in, Port out) {
    if (!config_.fdr_enabled) return;
    FdrRecord record;
    record.timestamp = simulator_->Now();
    record.trace_id = packet->trace_id;
    record.type = packet->type;
    record.size = packet->size;
    record.ingress = in;
    record.egress = out;
    std::uint32_t queued = 0;
    for (const auto& link : links_) {
        queued += static_cast<std::uint32_t>(link->RxQueueDepthFlits());
    }
    record.queue_flits = queued;
    fdr_.Record(record);
}

}  // namespace catapult::shell
