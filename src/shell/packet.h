// Packets and flits on the inter-FPGA network.
//
// The shell's transport is "virtual cut-through with no retransmission
// or source buffering" (§3.2). Packets are segmented into flits on the
// SL3 links; ECC is per-flit (SECDED) with a CRC over the whole packet
// caught at the end of transmission. The Flight Data Recorder logs head
// and tail flits of every packet crossing the router (§3.6).

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/units.h"

namespace catapult::shell {

/** Global server / FPGA identifier within a deployment. */
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/** Router ports on each shell (§3.2: 4 network + PCIe + role). */
enum class Port : std::uint8_t {
    kRole = 0,
    kPcie = 1,
    kNorth = 2,
    kSouth = 3,
    kEast = 4,
    kWest = 5,
};

inline constexpr int kPortCount = 6;

const char* ToString(Port port);

/** Opposite direction of a torus port (kNorth <-> kSouth etc.). */
Port Opposite(Port port);

/** Message classes carried over the fabric. */
enum class PacketType : std::uint8_t {
    kScoringRequest,   ///< Compressed {document, query} toward the pipeline.
    kScoringResponse,  ///< Score + counters back to the injecting server.
    kModelReload,      ///< Queue Manager model switch command (§4.3).
    kTxHalt,           ///< "Ignore me, I am reconfiguring" (§3.4).
    kLinkProbe,        ///< Health Monitor neighbour identity check (§3.5).
    kGarbage,          ///< Random traffic from a reconfiguring neighbour.
};

const char* ToString(PacketType type);

/**
 * A packet in flight on the fabric. Reference-counted because it is
 * observed concurrently by links, routers and the FDR.
 */
struct Packet {
    PacketType type = PacketType::kScoringRequest;
    NodeId source = kInvalidNode;
    NodeId destination = kInvalidNode;

    /** Trace id: maps to a replayable compressed document (§3.6). */
    std::uint64_t trace_id = 0;

    /** Payload size on the wire (drives serialization time). */
    Bytes size = 0;

    /** Shell compatibility version of the sender (§3.4). */
    std::uint32_t shell_version = 1;

    /** Opaque application payload (e.g. index into a document store). */
    std::uint64_t payload = 0;

    /** Set when flit ECC corrected at least one single-bit error. */
    bool ecc_corrected = false;

    /** Injection timestamp, for latency accounting. */
    Time injected_at = 0;

    /** Slot the requesting thread used (for response routing, §3.1). */
    std::int32_t slot = -1;
};

using PacketPtr = std::shared_ptr<Packet>;

/** Convenience constructor. */
PacketPtr MakePacket(PacketType type, NodeId source, NodeId destination,
                     Bytes size, std::uint64_t trace_id = 0);

/** Number of SL3 flits a packet of `size` bytes occupies. */
int FlitCount(Bytes size);

/** Flit payload width on the SL3 links. */
inline constexpr Bytes kFlitBytes = 32;

}  // namespace catapult::shell
