// SerialLite III (SL3) inter-FPGA link endpoint.
//
// Each shell has four SL3 cores wired to torus neighbours over SAS
// cables: 2 lanes x 10 Gb/s = 20 Gb/s peak bidirectional per link at
// sub-microsecond latency (§2.2). The protocol properties modelled here
// come from §3.2 and §3.4:
//   * FIFO semantics with Xon/Xoff flow control;
//   * per-flit SECDED ECC costing 20% of peak bandwidth; single-bit
//     errors corrected, double-bit errors detected (packet dropped);
//   * flits with >= 3 bit errors can pass ECC but are "likely to be
//     detected at the end of packet transmission with a CRC check";
//     double-bit/CRC failures drop the packet with no retransmission —
//     the host times out and invokes higher-level failure handling;
//   * TX Halt: a reconfiguring FPGA warns neighbours to ignore traffic
//     until the link is re-established;
//   * RX Halt: an FPGA coming out of reconfiguration drops all link
//     traffic until the Mapping Manager releases it.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "mgmt/telemetry_bus.h"
#include "shell/packet.h"
#include "sim/simulator.h"

namespace catapult::shell {

class Sl3Link {
  public:
    struct Config {
        /** Peak per-direction bandwidth: 2 lanes x 10 Gb/s. */
        Bandwidth raw_bandwidth = Bandwidth::GigabitsPerSecond(20.0);
        /** ECC tax on peak bandwidth (§3.2: 20%). */
        double ecc_overhead = 0.20;
        /** Cable + SerDes propagation latency (sub-microsecond, §2.2). */
        Time propagation_delay = Nanoseconds(400);
        /** Receive buffer capacity in flits before Xoff is asserted. */
        int rx_xoff_threshold_flits = 4096;
        /** Receive occupancy at which Xon is re-asserted. */
        int rx_xon_threshold_flits = 1024;
        /** Raw bit error rate on the lanes (0 for healthy cables). */
        double bit_error_rate = 0.0;
        /** Manufacturing defect: link never locks, all traffic lost. */
        bool defective = false;
    };

    struct Counters {
        std::uint64_t packets_sent = 0;
        std::uint64_t packets_delivered = 0;
        std::uint64_t flits_sent = 0;
        std::uint64_t single_bit_corrected = 0;
        std::uint64_t double_bit_drops = 0;
        std::uint64_t crc_drops = 0;
        std::uint64_t undetected_errors = 0;
        std::uint64_t rx_halt_drops = 0;
        std::uint64_t tx_halt_suppressed = 0;
        std::uint64_t version_mismatch_drops = 0;
        std::uint64_t garbage_received = 0;
        std::uint64_t no_peer_drops = 0;
        std::uint64_t defective_drops = 0;
        std::uint64_t xoff_asserted = 0;
    };

    Sl3Link(sim::Simulator* simulator, std::string name, Rng rng,
            Config config);
    Sl3Link(sim::Simulator* simulator, std::string name, Rng rng)
        : Sl3Link(simulator, std::move(name), rng, Config()) {}

    Sl3Link(const Sl3Link&) = delete;
    Sl3Link& operator=(const Sl3Link&) = delete;

    /** Wire this endpoint to its cable peer (bidirectional). */
    void ConnectTo(Sl3Link* peer);
    Sl3Link* peer() const { return peer_; }
    bool connected() const { return peer_ != nullptr; }

    /**
     * Queue a packet for transmission. Returns false when the TX queue
     * is beyond its bound (callers treat this as backpressure).
     */
    bool Send(PacketPtr packet);

    /** Flits queued for transmit (before serialization). */
    std::size_t TxQueueDepthFlits() const { return tx_queue_flits_; }

    /** Flits held in the receive buffer awaiting router drain. */
    std::size_t RxQueueDepthFlits() const { return rx_queue_flits_; }

    /** Pop the next received packet; null when empty. */
    PacketPtr PopReceived();

    /** True when the receive buffer holds at least one packet. */
    bool HasReceived() const { return !rx_queue_.empty(); }

    /**
     * TX Halt (§3.4). Entering halt emits the "TX Halt" control message
     * so the neighbour ignores subsequent garbage; leaving halt
     * re-establishes the link after a relock delay.
     */
    void SetTxHalt(bool halted);
    bool tx_halted() const { return tx_halted_; }

    /** RX Halt (§3.4): drop every arriving packet until released. */
    void SetRxHalt(bool halted);
    bool rx_halted() const { return rx_halted_; }

    /** Peer has declared TX Halt; its traffic is ignored until relock. */
    bool peer_halted() const { return peer_declared_halt_; }

    /** Reconfiguration glitch: emit one garbage burst (no TX halt sent). */
    void EmitGarbageBurst();

    /** Notification hooks. */
    void set_on_receive(std::function<void()> cb) { on_receive_ = std::move(cb); }
    void set_on_corruption(std::function<void(const PacketPtr&)> cb) {
        on_corruption_ = std::move(cb);
    }

    /** Local shell compatibility version stamped on outgoing packets. */
    void set_shell_version(std::uint32_t v) { shell_version_ = v; }
    std::uint32_t shell_version() const { return shell_version_; }

    /** Effective data bandwidth after the ECC tax. */
    Bandwidth EffectiveBandwidth() const {
        return config_.raw_bandwidth.Scaled(1.0 - config_.ecc_overhead);
    }

    /** Serialization time of `size` bytes at the effective bandwidth. */
    Time SerializationTime(Bytes size) const {
        return EffectiveBandwidth().SerializationTime(size);
    }

    /** Whether the SL3 core achieved lane lock (false for defects). */
    bool locked() const { return connected() && !config_.defective; }

    const Counters& counters() const { return counters_; }
    const Config& config() const { return config_; }
    const std::string& name() const { return name_; }

    /** Error-injection control for tests and the FailureInjector. */
    void set_bit_error_rate(double ber) { config_.bit_error_rate = ber; }
    void set_defective(bool defective);
    bool defective() const { return config_.defective; }

    /**
     * Wire this endpoint into the health plane: CRC/double-bit drops
     * and lock losses publish as fault events attributed to `node`
     * (the pod-local index of the owning shell).
     */
    void AttachTelemetry(mgmt::TelemetryBus* bus, int node) {
        telemetry_ = bus;
        telemetry_node_ = node;
    }

  private:
    void PublishTelemetry(mgmt::TelemetryKind kind);

    void PumpTransmit();
    void Arrive(PacketPtr packet);
    void NotifyRxOccupancy();
    void OnPeerXoff(bool asserted);
    void OnPeerDeclaredHalt(bool halted);

    /** Apply the flit ECC + CRC error model; true when packet survives. */
    bool SurvivesErrorModel(const PacketPtr& packet);

    sim::Simulator* simulator_;
    std::string name_;
    Rng rng_;
    Config config_;
    Sl3Link* peer_ = nullptr;
    std::uint32_t shell_version_ = 1;

    std::deque<PacketPtr> tx_queue_;
    std::size_t tx_queue_flits_ = 0;
    bool tx_busy_ = false;
    bool tx_halted_ = false;
    bool peer_xoff_ = false;

    std::deque<PacketPtr> rx_queue_;
    std::size_t rx_queue_flits_ = 0;
    bool rx_halted_ = false;
    bool rx_xoff_sent_ = false;
    bool peer_declared_halt_ = false;

    std::function<void()> on_receive_;
    std::function<void(const PacketPtr&)> on_corruption_;
    mgmt::TelemetryBus* telemetry_ = nullptr;
    int telemetry_node_ = -1;
    Counters counters_;
};

}  // namespace catapult::shell
