// PCIe x8 link between host CPU and FPGA.
//
// §2.1/§3.1: the FPGA interfaces to the host over PCIe with a custom
// DMA engine; the design goal is "fewer than 10 us for transfers of
// 16 KB or less", achieved by avoiding system calls (user-level buffers)
// — that part lives in host::SlotDmaChannel. This model provides the
// raw transport: per-transfer base latency plus serialization at the
// effective link bandwidth, one transfer at a time per direction.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/units.h"
#include "sim/simulator.h"

namespace catapult::shell {

class PcieLink {
  public:
    struct Config {
        /** Effective DMA bandwidth (x8 lanes, after protocol overhead). */
        Bandwidth bandwidth = Bandwidth::MegabytesPerSecond(3'200);
        /** Base latency per DMA descriptor (doorbell, TLP, completion). */
        Time base_latency = Nanoseconds(900);
        /** Probability of a link-level error (retrain + failure flag). */
        double error_rate = 0.0;
    };

    struct Counters {
        std::uint64_t transfers = 0;
        std::uint64_t bytes = 0;
        std::uint64_t errors = 0;
    };

    PcieLink(sim::Simulator* simulator, Config config);
    explicit PcieLink(sim::Simulator* simulator)
        : PcieLink(simulator, Config()) {}

    /**
     * Queue a transfer in one direction; both directions share the model
     * object but have independent channels in hardware, so callers keep
     * one PcieLink per direction.
     */
    void Transfer(Bytes size, std::function<void(bool)> on_done);

    /** Unqueued time for a transfer of `size` bytes. */
    Time TransferTime(Bytes size) const {
        return config_.base_latency + config_.bandwidth.SerializationTime(size);
    }

    /** Surprise-removal state: device reconfiguring (§3.4). */
    void set_device_present(bool present) { device_present_ = present; }
    bool device_present() const { return device_present_; }

    const Counters& counters() const { return counters_; }
    const Config& config() const { return config_; }
    std::size_t QueueDepth() const { return queue_.size(); }

    void set_error_rate(double rate) { config_.error_rate = rate; }

  private:
    struct Request {
        Bytes size;
        std::function<void(bool)> on_done;
    };

    void Pump();

    sim::Simulator* simulator_;
    Config config_;
    Counters counters_;
    std::deque<Request> queue_;
    bool busy_ = false;
    bool device_present_ = true;
    std::uint64_t rng_state_ = 0x853c49e6748fea9bull;
};

}  // namespace catapult::shell
