// Static software-configured routing table (§3.2).
//
// "The routing decisions are made by a static software-configured
// routing table that supports different routing policies." The Mapping
// Manager computes a table per shell (dimension-order for the torus,
// or explicit next-hops for ring pipelines) and installs it here.
//
// Node ids are small dense integers assigned by the fabric, and Lookup
// runs once per packet per hop — the single hottest map access in the
// router. The table is therefore a flat node-indexed array (one load,
// no hashing) rather than a hash map.

#pragma once

#include <vector>

#include "shell/packet.h"

namespace catapult::shell {

class RoutingTable {
  public:
    /** Install/overwrite the route for `destination`. */
    void SetRoute(NodeId destination, Port out_port);

    /** Remove a route. */
    void ClearRoute(NodeId destination);

    /** Drop all routes (reconfiguration). */
    void Clear();

    /**
     * Look up the output port for `destination`. Packets addressed to
     * this node itself should be routed to kRole or kPcie by the
     * caller before consulting the table. Returns false when no route
     * exists (packet is dropped; §3.2 transport never retransmits).
     */
    bool Lookup(NodeId destination, Port& out_port) const {
        if (destination >= routes_.size()) return false;
        const Entry entry = routes_[destination];
        if (!entry.valid) return false;
        out_port = entry.port;
        return true;
    }

    std::size_t size() const { return route_count_; }

  private:
    struct Entry {
        Port port;
        bool valid = false;
    };

    std::vector<Entry> routes_;  ///< Indexed by NodeId.
    std::size_t route_count_ = 0;
};

}  // namespace catapult::shell
