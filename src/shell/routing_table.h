// Static software-configured routing table (§3.2).
//
// "The routing decisions are made by a static software-configured
// routing table that supports different routing policies." The Mapping
// Manager computes a table per shell (dimension-order for the torus,
// or explicit next-hops for ring pipelines) and installs it here.

#pragma once

#include <unordered_map>

#include "shell/packet.h"

namespace catapult::shell {

class RoutingTable {
  public:
    /** Install/overwrite the route for `destination`. */
    void SetRoute(NodeId destination, Port out_port);

    /** Remove a route. */
    void ClearRoute(NodeId destination);

    /** Drop all routes (reconfiguration). */
    void Clear();

    /**
     * Look up the output port for `destination`. Packets addressed to
     * this node itself should be routed to kRole or kPcie by the
     * caller before consulting the table. Returns false when no route
     * exists (packet is dropped; §3.2 transport never retransmits).
     */
    bool Lookup(NodeId destination, Port& out_port) const;

    std::size_t size() const { return routes_.size(); }

  private:
    std::unordered_map<NodeId, Port> routes_;
};

}  // namespace catapult::shell
