#include "shell/dram_controller.h"

#include <cassert>

namespace catapult::shell {

DramController::DramController(sim::Simulator* simulator, Rng rng,
                               Config config)
    : simulator_(simulator), rng_(rng), config_(config) {
    assert(simulator_ != nullptr);
}

Bytes DramController::Capacity() const {
    // Per-channel: one SO-DIMM (4 GB dual-rank usable as 8 GB across the
    // pair; the board total is 8 GB / 4 GB depending on mode).
    return config_.mode == DramMode::kDualRank1333 ? GiB(4) : GiB(2);
}

Bandwidth DramController::PeakBandwidth() const {
    // 64-bit data path: DDR3-1333 = 10.667 GB/s, DDR3-1600 = 12.8 GB/s.
    return config_.mode == DramMode::kDualRank1333
               ? Bandwidth::MegabytesPerSecond(10'667)
               : Bandwidth::MegabytesPerSecond(12'800);
}

Time DramController::TransferTime(Bytes size) const {
    return config_.access_latency + EffectiveBandwidth().SerializationTime(size);
}

void DramController::PublishTelemetry(mgmt::TelemetryKind kind) {
    if (telemetry_ != nullptr) telemetry_->Publish(telemetry_node_, kind);
}

void DramController::set_calibrated(bool calibrated) {
    const bool lost = status_.calibrated && !calibrated;
    status_.calibrated = calibrated;
    // Calibration loss is a hard fault (§3.5: the error vector carries
    // "calibration failures"); publish the transition, not every failed
    // transfer that follows it.
    if (lost) PublishTelemetry(mgmt::TelemetryKind::kDramCalibrationLoss);
}

void DramController::Transfer(Bytes size, std::function<void(bool)> on_done) {
    queue_.push_back(Request{size, std::move(on_done)});
    Pump();
}

void DramController::Pump() {
    if (busy_ || queue_.empty()) return;
    busy_ = true;
    Request request = std::move(queue_.front());
    queue_.pop_front();
    const Time duration = TransferTime(request.size);
    simulator_->ScheduleAfter(duration, [this, request = std::move(request)] {
        ++status_.transfers;
        bool ok = status_.calibrated;
        if (ok && rng_.Chance(config_.double_bit_error_rate)) {
            ++status_.double_bit_errors;
            PublishTelemetry(mgmt::TelemetryKind::kDramEccFault);
            ok = false;
        } else if (ok && rng_.Chance(config_.single_bit_error_rate)) {
            ++status_.single_bit_errors;  // corrected, transfer succeeds
        }
        request.on_done(ok);
        busy_ = false;
        Pump();
    });
}

}  // namespace catapult::shell
