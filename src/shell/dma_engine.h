// FPGA-side DMA engine implementing the slot protocol of §3.1.
//
// The host allocates one input and one output buffer in non-paged
// user-level memory, divided into 64 slots with per-slot full bits.
// Host -> FPGA: a thread fills its slot, sets the full bit; the FPGA
// "monitors the full bits and fairly selects a candidate slot for
// DMA'ing into one of two staging buffers on the FPGA, clearing the
// full bit once the data has been transferred. Fairness is achieved by
// taking periodic snapshots of the full bits, and DMA'ing all full
// slots before taking another snapshot."
// FPGA -> host: the engine "checks to make sure that the output slot is
// empty and then DMAs the results into the output buffer ... sets the
// full bit ... and generates an interrupt to wake and notify the
// consumer thread."

#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/units.h"
#include "mgmt/telemetry_bus.h"
#include "shell/packet.h"
#include "shell/pcie_link.h"
#include "sim/simulator.h"

namespace catapult::shell {

inline constexpr int kDmaSlotCount = 64;
inline constexpr Bytes kDmaSlotBytes = 64 * 1024;

class DmaEngine {
  public:
    struct Config {
        PcieLink::Config pcie;
        /**
         * Interrupt delivery + consumer thread wake latency on readback
         * (§3.1: "generates an interrupt to wake and notify the consumer
         * thread" — scheduling a blocked user thread costs microseconds).
         */
        Time interrupt_latency = Microseconds(3);
        /** Staging buffers on the FPGA (double-buffered, §3.1). */
        int staging_buffers = 2;
    };

    struct Counters {
        std::uint64_t host_to_fpga = 0;
        std::uint64_t fpga_to_host = 0;
        std::uint64_t snapshots = 0;
        std::uint64_t output_stalls = 0;
        std::uint64_t failed_transfers = 0;
    };

    DmaEngine(sim::Simulator* simulator, Config config);
    explicit DmaEngine(sim::Simulator* simulator)
        : DmaEngine(simulator, Config()) {}

    DmaEngine(const DmaEngine&) = delete;
    DmaEngine& operator=(const DmaEngine&) = delete;

    // --- Host-facing surface (used by host::SlotDmaChannel) -----------

    /**
     * Host thread set the full bit on input slot `slot` whose contents
     * describe `packet`. Returns false if the slot was already full
     * (a protocol violation by the caller).
     */
    bool SetInputFull(int slot, PacketPtr packet);

    /** True when the input slot's full bit is set (DMA not yet done). */
    bool InputFull(int slot) const { return input_full_[slot].has_value(); }

    /** Host consumed output slot `slot`: clears the output full bit. */
    void ConsumeOutput(int slot);

    bool OutputFull(int slot) const { return output_full_[slot]; }

    /** Host callback: input slot's full bit cleared (slot reusable). */
    void set_on_input_cleared(std::function<void(int)> cb) {
        on_input_cleared_ = std::move(cb);
    }

    /** Host callback: interrupt after an output DMA (slot, packet). */
    void set_on_output_ready(std::function<void(int, PacketPtr)> cb) {
        on_output_ready_ = std::move(cb);
    }

    // --- Fabric-facing surface (used by Shell) ------------------------

    /** Packets DMA'd from host slots are handed here (to the router). */
    void set_on_ingress(std::function<void(PacketPtr)> cb) {
        on_ingress_ = std::move(cb);
    }

    /**
     * FPGA produced a result for the thread owning `slot`. If the output
     * slot is full the result queues until the host consumes it.
     */
    void SendToHost(int slot, PacketPtr packet);

    /** Device disappeared from PCIe (reconfiguration, §3.4). */
    void set_device_present(bool present);

    /**
     * Publish output-slot stalls (host not draining results) as
     * health-plane events. Transfer failures while the device is off
     * the bus are expected reconfiguration noise and stay unpublished.
     */
    void AttachTelemetry(mgmt::TelemetryBus* bus, int node) {
        telemetry_ = bus;
        telemetry_node_ = node;
    }

    const Counters& counters() const { return counters_; }
    PcieLink& host_to_fpga_link() { return h2f_; }
    PcieLink& fpga_to_host_link() { return f2h_; }
    const Config& config() const { return config_; }

  private:
    void PumpInput();
    void StartSnapshotTransfer();
    void PumpOutput(int slot);

    sim::Simulator* simulator_;
    Config config_;
    PcieLink h2f_;
    PcieLink f2h_;
    Counters counters_;

    /** Full-bit view of the input buffer: slot -> queued packet. */
    std::array<std::optional<PacketPtr>, kDmaSlotCount> input_full_{};
    /** Snapshot of full slots being drained, in slot order. */
    std::deque<int> snapshot_;
    bool input_dma_active_ = false;

    std::array<bool, kDmaSlotCount> output_full_{};
    std::array<std::deque<PacketPtr>, kDmaSlotCount> output_wait_{};
    std::array<bool, kDmaSlotCount> output_dma_active_{};

    std::function<void(int)> on_input_cleared_;
    std::function<void(int, PacketPtr)> on_output_ready_;
    std::function<void(PacketPtr)> on_ingress_;
    mgmt::TelemetryBus* telemetry_ = nullptr;
    int telemetry_node_ = -1;
};

}  // namespace catapult::shell
