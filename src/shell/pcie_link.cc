#include "shell/pcie_link.h"

#include <cassert>

namespace catapult::shell {

PcieLink::PcieLink(sim::Simulator* simulator, Config config)
    : simulator_(simulator), config_(config) {
    assert(simulator_ != nullptr);
}

void PcieLink::Transfer(Bytes size, std::function<void(bool)> on_done) {
    queue_.push_back(Request{size, std::move(on_done)});
    Pump();
}

void PcieLink::Pump() {
    if (busy_ || queue_.empty()) return;
    busy_ = true;
    Request request = std::move(queue_.front());
    queue_.pop_front();
    const Time duration = TransferTime(request.size);
    simulator_->ScheduleAfter(duration, [this, request = std::move(request)] {
        bool ok = device_present_;
        if (ok && config_.error_rate > 0.0) {
            // xorshift64* keeps this header-light; PCIe errors are only
            // enabled in failure-injection tests.
            rng_state_ ^= rng_state_ >> 12;
            rng_state_ ^= rng_state_ << 25;
            rng_state_ ^= rng_state_ >> 27;
            const double u =
                static_cast<double>((rng_state_ * 0x2545F4914F6CDD1Dull) >> 11) *
                0x1.0p-53;
            if (u < config_.error_rate) ok = false;
        }
        ++counters_.transfers;
        counters_.bytes += static_cast<std::uint64_t>(request.size);
        if (!ok) ++counters_.errors;
        request.on_done(ok);
        busy_ = false;
        Pump();
    });
}

}  // namespace catapult::shell
