// Flight Data Recorder (FDR), §3.6.
//
// A lightweight "always-on" recorder capturing salient run-time state
// into on-chip memory, streamed out over PCIe during health checks.
// Two parts are modelled:
//   * a power-on record verifying the boot sequence (SL3 lane lock,
//     PLL lock, reset sequencing);
//   * a 512-entry circular buffer of the head/tail flits of every packet
//     entering or exiting the FPGA through the router: trace id
//     (replayable document), transaction size, direction of travel, and
//     miscellaneous state such as non-zero queue lengths.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "shell/packet.h"

namespace catapult::shell {

/** One circular-buffer record. */
struct FdrRecord {
    Time timestamp = 0;
    std::uint64_t trace_id = 0;
    PacketType type = PacketType::kScoringRequest;
    Bytes size = 0;
    Port ingress = Port::kRole;
    Port egress = Port::kRole;
    /** Non-zero router queue occupancy at capture time (misc state). */
    std::uint32_t queue_flits = 0;
};

/** Power-on sequence verification flags (§3.6). */
struct PowerOnRecord {
    bool sl3_lanes_locked = false;
    bool plls_locked = false;
    bool resets_sequenced = false;
    bool dram_calibrated = false;
    Time recorded_at = 0;

    bool AllGood() const {
        return sl3_lanes_locked && plls_locked && resets_sequenced &&
               dram_calibrated;
    }
};

class FlightDataRecorder {
  public:
    /** §3.6: "the FDR can only capture a limited window (512 recent events)". */
    static constexpr std::size_t kWindow = 512;

    /** Append a record, evicting the oldest when the window is full. */
    void Record(const FdrRecord& record);

    /** Capture the power-on state (called once per configuration). */
    void RecordPowerOn(const PowerOnRecord& record) { power_on_ = record; }
    const PowerOnRecord& power_on() const { return power_on_; }

    /** Stream out the window, oldest first (the PCIe health-check read). */
    std::vector<FdrRecord> StreamOut() const;

    /**
     * The postmortem export: power-on record plus the full history
     * (DRAM spill + on-chip window, oldest first) as one JSON object —
     * what a health check attaches to a fault report.
     */
    std::string DumpJson() const;

    std::uint64_t total_recorded() const { return total_; }
    std::size_t window_occupancy() const {
        return total_ >= kWindow ? kWindow : static_cast<std::size_t>(total_);
    }

    /** Clear after reconfiguration. */
    void Reset();

    // --- DRAM spill extension -------------------------------------------
    // §3.6 closes with: "we plan to extend the FDR to perform
    // compression of log information and to opportunistically buffer
    // into DRAM for extended histories." When enabled, records evicted
    // from the on-chip window spill into a bounded DRAM-backed history.

    /** Enable spilling up to `capacity_records` evicted records. */
    void EnableDramSpill(std::size_t capacity_records);
    bool dram_spill_enabled() const { return spill_capacity_ > 0; }

    /** Evicted records currently held in DRAM (oldest first). */
    const std::vector<FdrRecord>& dram_history() const { return spill_; }

    /** Full history: DRAM spill followed by the on-chip window. */
    std::vector<FdrRecord> StreamOutExtended() const;

    /** Records lost because the DRAM spill itself filled. */
    std::uint64_t spill_overflow() const { return spill_overflow_; }

  private:
    std::array<FdrRecord, kWindow> ring_{};
    std::uint64_t total_ = 0;
    PowerOnRecord power_on_;
    std::size_t spill_capacity_ = 0;
    std::vector<FdrRecord> spill_;
    std::uint64_t spill_overflow_ = 0;
};

}  // namespace catapult::shell
