#include "shell/dma_engine.h"

#include <cassert>

#include "common/log.h"

namespace catapult::shell {

DmaEngine::DmaEngine(sim::Simulator* simulator, Config config)
    : simulator_(simulator),
      config_(config),
      h2f_(simulator, config.pcie),
      f2h_(simulator, config.pcie) {
    assert(simulator_ != nullptr);
}

bool DmaEngine::SetInputFull(int slot, PacketPtr packet) {
    assert(slot >= 0 && slot < kDmaSlotCount);
    assert(packet != nullptr);
    if (input_full_[slot].has_value()) return false;
    if (packet->size > kDmaSlotBytes) return false;
    input_full_[slot] = std::move(packet);
    PumpInput();
    return true;
}

void DmaEngine::PumpInput() {
    if (input_dma_active_) return;
    if (snapshot_.empty()) {
        // Take a snapshot of the full bits (§3.1 fairness): all currently
        // full slots are drained before the next snapshot.
        for (int s = 0; s < kDmaSlotCount; ++s) {
            if (input_full_[s].has_value()) snapshot_.push_back(s);
        }
        if (snapshot_.empty()) return;
        ++counters_.snapshots;
    }
    StartSnapshotTransfer();
}

void DmaEngine::StartSnapshotTransfer() {
    assert(!snapshot_.empty());
    input_dma_active_ = true;
    const int slot = snapshot_.front();
    snapshot_.pop_front();
    // The slot may have been claimed by an earlier snapshot pass only if
    // protocol was violated; guard anyway.
    if (!input_full_[slot].has_value()) {
        input_dma_active_ = false;
        PumpInput();
        return;
    }
    PacketPtr packet = *input_full_[slot];
    h2f_.Transfer(packet->size, [this, slot, packet](bool ok) {
        input_dma_active_ = false;
        // Full bit cleared once the data reaches FPGA staging.
        input_full_[slot].reset();
        if (on_input_cleared_) on_input_cleared_(slot);
        if (ok) {
            ++counters_.host_to_fpga;
            packet->slot = slot;
            if (on_ingress_) on_ingress_(packet);
        } else {
            ++counters_.failed_transfers;
            LOG_DEBUG("dma") << "host->fpga transfer failed (slot " << slot
                             << ")";
        }
        PumpInput();
    });
}

void DmaEngine::SendToHost(int slot, PacketPtr packet) {
    assert(slot >= 0 && slot < kDmaSlotCount);
    output_wait_[slot].push_back(std::move(packet));
    PumpOutput(slot);
}

void DmaEngine::PumpOutput(int slot) {
    if (output_dma_active_[slot] || output_wait_[slot].empty()) return;
    if (output_full_[slot]) {
        // §3.1: the FPGA checks that the output slot is empty first.
        ++counters_.output_stalls;
        if (telemetry_ != nullptr) {
            telemetry_->Publish(telemetry_node_,
                                mgmt::TelemetryKind::kDmaStall);
        }
        return;  // retried when the host consumes the slot
    }
    output_dma_active_[slot] = true;
    PacketPtr packet = output_wait_[slot].front();
    output_wait_[slot].pop_front();
    f2h_.Transfer(packet->size, [this, slot, packet](bool ok) {
        output_dma_active_[slot] = false;
        if (!ok) {
            ++counters_.failed_transfers;
            PumpOutput(slot);
            return;
        }
        ++counters_.fpga_to_host;
        output_full_[slot] = true;
        // Interrupt to wake the consumer thread (§3.1).
        simulator_->ScheduleAfter(
            config_.interrupt_latency, [this, slot, packet] {
                if (on_output_ready_) on_output_ready_(slot, packet);
            });
        PumpOutput(slot);
    });
}

void DmaEngine::ConsumeOutput(int slot) {
    assert(slot >= 0 && slot < kDmaSlotCount);
    output_full_[slot] = false;
    PumpOutput(slot);
}

void DmaEngine::set_device_present(bool present) {
    h2f_.set_device_present(present);
    f2h_.set_device_present(present);
}

}  // namespace catapult::shell
