#include "shell/routing_table.h"

namespace catapult::shell {

void RoutingTable::SetRoute(NodeId destination, Port out_port) {
    routes_[destination] = out_port;
}

void RoutingTable::ClearRoute(NodeId destination) {
    routes_.erase(destination);
}

void RoutingTable::Clear() { routes_.clear(); }

bool RoutingTable::Lookup(NodeId destination, Port& out_port) const {
    const auto it = routes_.find(destination);
    if (it == routes_.end()) return false;
    out_port = it->second;
    return true;
}

}  // namespace catapult::shell
