#include "shell/routing_table.h"

namespace catapult::shell {

void RoutingTable::SetRoute(NodeId destination, Port out_port) {
    if (destination >= routes_.size()) {
        routes_.resize(static_cast<std::size_t>(destination) + 1);
    }
    Entry& entry = routes_[destination];
    if (!entry.valid) ++route_count_;
    entry.port = out_port;
    entry.valid = true;
}

void RoutingTable::ClearRoute(NodeId destination) {
    if (destination >= routes_.size()) return;
    Entry& entry = routes_[destination];
    if (entry.valid) --route_count_;
    entry.valid = false;
}

void RoutingTable::Clear() {
    routes_.clear();
    route_count_ = 0;
}

}  // namespace catapult::shell
