// Shell router: crossbar between the four SL3 ports, PCIe, and the role.
//
// §3.2: "The router is a standard crossbar that connects the four
// inter-FPGA network ports, the PCIe controller, and the application
// role. The routing decisions are made by a static software-configured
// routing table ... The transport protocol is virtual cut-through with
// no retransmission or source buffering."
//
// Packets addressed to the local node are handed to a shell-installed
// local delivery function (which steers requests to the role and
// responses to PCIe). Everything else consults the routing table and is
// forwarded out an SL3 port with a small cut-through hop latency.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "common/units.h"
#include "shell/packet.h"
#include "shell/routing_table.h"
#include "shell/sl3_link.h"
#include "sim/simulator.h"

namespace catapult::shell {

class Router {
  public:
    struct Config {
        /** Cut-through head latency per hop through the crossbar. */
        Time hop_latency = Nanoseconds(50);
        /** Retry delay when an output port is backpressured. */
        Time backpressure_retry = Microseconds(1);
    };

    struct Counters {
        std::uint64_t forwarded = 0;
        std::uint64_t delivered_local = 0;
        std::uint64_t injected = 0;
        std::uint64_t no_route_drops = 0;
        std::uint64_t backpressure_stalls = 0;
    };

    Router(sim::Simulator* simulator, NodeId local_node, Config config);
    Router(sim::Simulator* simulator, NodeId local_node)
        : Router(simulator, local_node, Config()) {}

    Router(const Router&) = delete;
    Router& operator=(const Router&) = delete;

    /** Attach the SL3 endpoint serving `port` (kNorth..kWest). */
    void AttachLink(Port port, Sl3Link* link);
    Sl3Link* link(Port port) const;

    /** Local sink for packets addressed to this node. */
    void set_local_delivery(std::function<void(PacketPtr)> fn) {
        local_delivery_ = std::move(fn);
    }

    /** Observation hook invoked for every packet entering/exiting. */
    using TapFn = std::function<void(const PacketPtr&, Port in, Port out)>;
    void set_tap(TapFn tap) { tap_ = std::move(tap); }

    /**
     * Inject a packet from the role or PCIe side. Routing happens after
     * the crossbar hop latency. Returns false when the packet had no
     * route (it is counted and dropped, matching the no-retransmission
     * transport).
     */
    void Inject(PacketPtr packet, Port from);

    RoutingTable& routing_table() { return table_; }
    const RoutingTable& routing_table() const { return table_; }

    NodeId local_node() const { return local_node_; }
    const Counters& counters() const { return counters_; }

    /** Current depth of the named input's receive queue, in flits. */
    std::size_t InputOccupancyFlits(Port port) const;

  private:
    void OnLinkReceive(Port port);
    void DrainInput(Port port);
    void Route(PacketPtr packet, Port in);

    sim::Simulator* simulator_;
    NodeId local_node_;
    Config config_;
    RoutingTable table_;
    std::array<Sl3Link*, kPortCount> links_{};
    std::array<bool, kPortCount> drain_scheduled_{};
    std::function<void(PacketPtr)> local_delivery_;
    TapFn tap_;
    Counters counters_;
};

}  // namespace catapult::shell
