#include "shell/sl3_link.h"

#include <cassert>
#include <map>
#include <utility>

#include "common/log.h"

namespace catapult::shell {

namespace {

/** Bound on flits queued for transmit before Send() reports pressure. */
constexpr std::size_t kTxQueueBoundFlits = 16384;

/** Link relock time after a TX Halt is released. */
constexpr Time kRelockDelay = Microseconds(2);

}  // namespace

Sl3Link::Sl3Link(sim::Simulator* simulator, std::string name, Rng rng,
                 Config config)
    : simulator_(simulator),
      name_(std::move(name)),
      rng_(rng),
      config_(config) {
    assert(simulator_ != nullptr);
}

void Sl3Link::ConnectTo(Sl3Link* peer) {
    assert(peer != nullptr);
    peer_ = peer;
    peer->peer_ = this;
}

bool Sl3Link::Send(PacketPtr packet) {
    assert(packet != nullptr);
    if (tx_queue_flits_ >= kTxQueueBoundFlits) return false;
    packet->shell_version = shell_version_;
    tx_queue_flits_ += static_cast<std::size_t>(FlitCount(packet->size));
    tx_queue_.push_back(std::move(packet));
    PumpTransmit();
    return true;
}

void Sl3Link::PumpTransmit() {
    if (tx_busy_ || tx_queue_.empty()) return;
    if (tx_halted_) {
        // §3.4: traffic generated while halted is suppressed, not queued
        // indefinitely — the role is quiesced during reconfiguration.
        counters_.tx_halt_suppressed += tx_queue_.size();
        tx_queue_.clear();
        tx_queue_flits_ = 0;
        return;
    }
    if (peer_xoff_) return;  // Xoff: pause after the current packet.

    PacketPtr packet = tx_queue_.front();
    tx_queue_.pop_front();
    tx_queue_flits_ -= static_cast<std::size_t>(FlitCount(packet->size));

    tx_busy_ = true;
    ++counters_.packets_sent;
    counters_.flits_sent += static_cast<std::uint64_t>(FlitCount(packet->size));

    const Time serialization = SerializationTime(packet->size);
    simulator_->ScheduleAfter(serialization, [this, packet] {
        tx_busy_ = false;
        if (peer_ != nullptr) {
            simulator_->ScheduleAfter(
                config_.propagation_delay,
                [peer = peer_, packet] { peer->Arrive(packet); },
                sim::EventPriority::kDeliver);
        } else {
            ++counters_.no_peer_drops;
        }
        PumpTransmit();
    });
}

void Sl3Link::PublishTelemetry(mgmt::TelemetryKind kind) {
    if (telemetry_ != nullptr) telemetry_->Publish(telemetry_node_, kind);
}

void Sl3Link::set_defective(bool defective) {
    const bool went_down = defective && !config_.defective;
    config_.defective = defective;
    // Lock loss is the event; packets dropped while down are accounted
    // individually in Arrive so a flap under traffic looks like the
    // burst it is.
    if (went_down) PublishTelemetry(mgmt::TelemetryKind::kLinkDown);
}

bool Sl3Link::SurvivesErrorModel(const PacketPtr& packet) {
    if (config_.bit_error_rate <= 0.0) return true;
    const double bits = static_cast<double>(packet->size) * 8.0;
    const double lambda = bits * config_.bit_error_rate;
    const std::uint64_t errors = rng_.Poisson(lambda);
    if (errors == 0) return true;

    // Distribute error bits over flits and judge each flit by its count:
    // 1 error -> SECDED corrects; 2 -> detected, packet dropped;
    // >= 3 -> passes flit ECC, caught by the end-of-packet CRC with
    // probability 1 - 2^-32.
    const int flits = FlitCount(packet->size);
    std::map<int, int> per_flit;
    for (std::uint64_t e = 0; e < errors; ++e) {
        const int flit =
            static_cast<int>(rng_.NextBounded(static_cast<std::uint64_t>(flits)));
        ++per_flit[flit];
    }
    bool double_bit = false;
    bool escaped_ecc = false;
    std::uint64_t corrected = 0;
    for (const auto& [flit, count] : per_flit) {
        if (count == 1) {
            ++corrected;
        } else if (count == 2) {
            double_bit = true;
        } else {
            escaped_ecc = true;
        }
    }
    counters_.single_bit_corrected += corrected;
    if (corrected > 0) packet->ecc_corrected = true;
    if (double_bit) {
        ++counters_.double_bit_drops;
        PublishTelemetry(mgmt::TelemetryKind::kLinkCrcError);
        return false;
    }
    if (escaped_ecc) {
        // End-of-packet CRC check (CRC-32).
        if (rng_.NextDouble() < 1.0 - 0x1.0p-32) {
            ++counters_.crc_drops;
            PublishTelemetry(mgmt::TelemetryKind::kLinkCrcError);
            return false;
        }
        ++counters_.undetected_errors;
        // Undetected corruption proceeds; flag as application corruption.
        if (on_corruption_) on_corruption_(packet);
    }
    return true;
}

void Sl3Link::Arrive(PacketPtr packet) {
    if (config_.defective) {
        ++counters_.defective_drops;
        PublishTelemetry(mgmt::TelemetryKind::kLinkDown);
        return;
    }
    if (packet->type == PacketType::kTxHalt) {
        OnPeerDeclaredHalt(true);
        return;
    }
    if (rx_halted_) {
        ++counters_.rx_halt_drops;
        return;
    }
    if (peer_declared_halt_) {
        // Peer warned us it is reconfiguring: ignore everything,
        // including garbage, until the link is re-established.
        if (packet->type == PacketType::kGarbage) ++counters_.garbage_received;
        ++counters_.rx_halt_drops;
        return;
    }
    if (packet->type == PacketType::kGarbage) {
        // Garbage arriving with no halt protection corrupts state (§3.4).
        ++counters_.garbage_received;
        LOG_WARN("sl3") << name_ << ": unprotected garbage burst received";
        if (on_corruption_) on_corruption_(packet);
        return;
    }
    if (packet->shell_version != shell_version_) {
        // "Old data from FPGAs that have not yet been reconfigured".
        ++counters_.version_mismatch_drops;
        return;
    }
    if (!SurvivesErrorModel(packet)) return;

    ++counters_.packets_delivered;
    rx_queue_flits_ += static_cast<std::size_t>(FlitCount(packet->size));
    rx_queue_.push_back(std::move(packet));
    NotifyRxOccupancy();
    if (on_receive_) on_receive_();
}

PacketPtr Sl3Link::PopReceived() {
    if (rx_queue_.empty()) return nullptr;
    PacketPtr packet = rx_queue_.front();
    rx_queue_.pop_front();
    rx_queue_flits_ -= static_cast<std::size_t>(FlitCount(packet->size));
    NotifyRxOccupancy();
    return packet;
}

void Sl3Link::NotifyRxOccupancy() {
    if (!rx_xoff_sent_ &&
        rx_queue_flits_ >= static_cast<std::size_t>(config_.rx_xoff_threshold_flits)) {
        rx_xoff_sent_ = true;
        ++counters_.xoff_asserted;
        if (peer_ != nullptr) {
            simulator_->ScheduleAfter(config_.propagation_delay,
                                      [peer = peer_] { peer->OnPeerXoff(true); });
        }
    } else if (rx_xoff_sent_ &&
               rx_queue_flits_ <= static_cast<std::size_t>(config_.rx_xon_threshold_flits)) {
        rx_xoff_sent_ = false;
        if (peer_ != nullptr) {
            simulator_->ScheduleAfter(config_.propagation_delay,
                                      [peer = peer_] { peer->OnPeerXoff(false); });
        }
    }
}

void Sl3Link::OnPeerXoff(bool asserted) {
    peer_xoff_ = asserted;
    if (!asserted) PumpTransmit();
}

void Sl3Link::OnPeerDeclaredHalt(bool halted) {
    peer_declared_halt_ = halted;
}

void Sl3Link::SetTxHalt(bool halted) {
    if (tx_halted_ == halted) return;
    tx_halted_ = halted;
    if (halted) {
        // Emit the TX Halt control message ahead of any garbage.
        if (peer_ != nullptr) {
            simulator_->ScheduleAfter(
                config_.propagation_delay,
                [peer = peer_] { peer->OnPeerDeclaredHalt(true); },
                sim::EventPriority::kDeliver);
        }
        counters_.tx_halt_suppressed += tx_queue_.size();
        tx_queue_.clear();
        tx_queue_flits_ = 0;
    } else {
        // Link re-establishes after relock; peer resumes accepting.
        if (peer_ != nullptr) {
            simulator_->ScheduleAfter(
                config_.propagation_delay + kRelockDelay,
                [peer = peer_] { peer->OnPeerDeclaredHalt(false); });
        }
        simulator_->ScheduleAfter(kRelockDelay, [this] { PumpTransmit(); });
    }
}

void Sl3Link::SetRxHalt(bool halted) {
    rx_halted_ = halted;
}

void Sl3Link::EmitGarbageBurst() {
    if (peer_ == nullptr) return;
    // A reconfiguring FPGA "may send garbage data" (§3.4): model one
    // burst of a few junk flits hitting the neighbour.
    auto garbage = MakePacket(PacketType::kGarbage, kInvalidNode,
                              kInvalidNode, kFlitBytes * 4);
    simulator_->ScheduleAfter(
        config_.propagation_delay,
        [peer = peer_, garbage] { peer->Arrive(garbage); },
        sim::EventPriority::kDeliver);
}

}  // namespace catapult::shell
