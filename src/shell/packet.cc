#include "shell/packet.h"

#include "common/object_pool.h"

namespace catapult::shell {

const char* ToString(Port port) {
    switch (port) {
      case Port::kRole: return "role";
      case Port::kPcie: return "pcie";
      case Port::kNorth: return "north";
      case Port::kSouth: return "south";
      case Port::kEast: return "east";
      case Port::kWest: return "west";
    }
    return "?";
}

Port Opposite(Port port) {
    switch (port) {
      case Port::kNorth: return Port::kSouth;
      case Port::kSouth: return Port::kNorth;
      case Port::kEast: return Port::kWest;
      case Port::kWest: return Port::kEast;
      default: return port;
    }
}

const char* ToString(PacketType type) {
    switch (type) {
      case PacketType::kScoringRequest: return "scoring_request";
      case PacketType::kScoringResponse: return "scoring_response";
      case PacketType::kModelReload: return "model_reload";
      case PacketType::kTxHalt: return "tx_halt";
      case PacketType::kLinkProbe: return "link_probe";
      case PacketType::kGarbage: return "garbage";
    }
    return "?";
}

PacketPtr MakePacket(PacketType type, NodeId source, NodeId destination,
                     Bytes size, std::uint64_t trace_id) {
    // Pooled: a load sweep makes one Packet per document per hop-free
    // injection; recycling the combined allocation keeps the inject
    // path malloc-free in steady state.
    auto packet = MakePooled<Packet>();
    packet->type = type;
    packet->source = source;
    packet->destination = destination;
    packet->size = size;
    packet->trace_id = trace_id;
    return packet;
}

int FlitCount(Bytes size) {
    if (size <= 0) return 1;
    return static_cast<int>((size + kFlitBytes - 1) / kFlitBytes);
}

}  // namespace catapult::shell
