#include "mgmt/health_forecaster.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace catapult::mgmt {

const char* ToString(HealthBand band) {
    switch (band) {
      case HealthBand::kWarmingUp: return "warming_up";
      case HealthBand::kHealthy: return "healthy";
      case HealthBand::kDegraded: return "degraded";
      case HealthBand::kCritical: return "critical";
    }
    return "?";
}

// ------------------------------------------------------------ feed

void HealthScoreSubscription::Reset() {
    if (feed_ != nullptr) {
        feed_->Unsubscribe(id_);
        feed_ = nullptr;
        id_ = 0;
    }
}

HealthScoreFeed::HealthScoreFeed(sim::Simulator* simulator)
    : simulator_(simulator) {
    assert(simulator_ != nullptr);
}

void HealthScoreFeed::Publish(HealthScoreSample sample) {
    sample.timestamp = simulator_->Now();
    last_ = sample;
    ++published_;
    // Index-based walk with null-slot removal, same discipline as
    // TelemetryBus::Publish: a subscriber callback may subscribe
    // (growing the vector) without invalidating this iteration, and
    // unsubscribing only nulls the slot so indices stay stable.
    for (std::size_t i = 0; i < subscribers_.size(); ++i) {
        if (!subscribers_[i].fn) continue;
        subscribers_[i].fn(sample);
    }
}

HealthScoreFeed::SubscriberId HealthScoreFeed::Subscribe(
    std::function<void(const HealthScoreSample&)> fn) {
    assert(fn != nullptr);
    const SubscriberId id = next_id_++;
    subscribers_.push_back({id, std::move(fn)});
    return id;
}

void HealthScoreFeed::Unsubscribe(SubscriberId id) {
    for (auto& subscriber : subscribers_) {
        if (subscriber.id == id) subscriber.fn = nullptr;
    }
}

// ------------------------------------------------------ forecaster

HealthForecaster::HealthForecaster(sim::Simulator* simulator,
                                   HealthScoreFeed* feed, Config config)
    : simulator_(simulator), feed_(feed), config_(config) {
    assert(simulator_ != nullptr && feed_ != nullptr);
    assert(config_.sample_period > 0);
    assert(config_.window_samples >= 1);
    assert(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
    // Hysteresis sanity: exits must sit above their enters.
    assert(config_.degraded_exit >= config_.degraded_enter);
    assert(config_.critical_exit >= config_.critical_enter);
}

HealthForecaster::~HealthForecaster() { Stop(); }

void HealthForecaster::AttachTelemetry(TelemetryBus* bus) {
    telemetry_subscription_ =
        bus->SubscribeScoped([this](const TelemetryEvent&) {
            ++events_seen_;
            ++counters_.telemetry_events;
        });
}

void HealthForecaster::AttachHealthMonitor(const HealthMonitor* monitor) {
    monitor_ = monitor;
}

void HealthForecaster::SnapshotBaselines() {
    last_events_ = events_seen_;
    last_misses_ = monitor_ != nullptr ? monitor_->counters().heartbeat_misses
                                       : 0;
    last_recoveries_ = churn_probe_ ? churn_probe_() : 0;
}

void HealthForecaster::Start() {
    if (running_) return;
    running_ = true;
    SnapshotBaselines();
    const std::uint64_t epoch = ++epoch_;
    // Daemon events: an idle pod's forecaster must not keep the
    // simulation alive (same contract as the watchdog sweeps).
    simulator_->ScheduleDaemonAfter(config_.sample_period, [this, epoch] {
        if (epoch == epoch_) Tick();
    });
}

void HealthForecaster::Stop() {
    running_ = false;
    ++epoch_;  // orphan any in-flight tick
}

void HealthForecaster::ResetForReadmission() {
    window_.clear();
    samples_seen_ = 0;
    score_ = 1.0;
    band_ = HealthBand::kWarmingUp;
    // Re-base the deltas: misses/events/recoveries accumulated while
    // the pod was dark are history, not fresh signal.
    SnapshotBaselines();
    LOG_INFO("forecast") << "pod " << config_.pod_id
                         << ": trend reset for re-admission (warm-up grace "
                         << config_.warmup_samples << " samples)";
    HealthScoreSample sample;
    sample.pod = config_.pod_id;
    sample.score = score_;
    sample.instantaneous = 1.0;
    sample.band = band_;
    feed_->Publish(sample);
}

HealthBand HealthForecaster::StepBand(HealthBand band, double score) const {
    switch (band) {
      case HealthBand::kWarmingUp:
      case HealthBand::kHealthy:
        if (score < config_.critical_enter) return HealthBand::kCritical;
        if (score < config_.degraded_enter) return HealthBand::kDegraded;
        return HealthBand::kHealthy;
      case HealthBand::kDegraded:
        if (score < config_.critical_enter) return HealthBand::kCritical;
        if (score > config_.degraded_exit) return HealthBand::kHealthy;
        return HealthBand::kDegraded;
      case HealthBand::kCritical:
        if (score > config_.critical_exit) {
            return score > config_.degraded_exit ? HealthBand::kHealthy
                                                 : HealthBand::kDegraded;
        }
        return HealthBand::kCritical;
    }
    return band;
}

void HealthForecaster::Tick() {
    if (!running_) return;

    // Window in the per-tick deltas of each fault signal.
    WindowSlot slot;
    slot.events = events_seen_ - last_events_;
    last_events_ = events_seen_;
    if (monitor_ != nullptr) {
        const std::uint64_t misses = monitor_->counters().heartbeat_misses;
        slot.misses = misses - last_misses_;
        last_misses_ = misses;
    }
    if (churn_probe_) {
        const std::uint64_t recoveries = churn_probe_();
        slot.recoveries = recoveries - last_recoveries_;
        last_recoveries_ = recoveries;
    }
    window_.push_back(slot);
    while (static_cast<int>(window_.size()) > config_.window_samples) {
        window_.pop_front();
    }
    ++samples_seen_;
    ++counters_.samples;

    // Rates over the trend window.
    std::uint64_t events = 0;
    std::uint64_t misses = 0;
    std::uint64_t recoveries = 0;
    for (const WindowSlot& s : window_) {
        events += s.events;
        misses += s.misses;
        recoveries += s.recoveries;
    }
    const double span_s =
        ToSeconds(config_.sample_period) * static_cast<double>(window_.size());
    const double stress =
        config_.fault_event_weight * (static_cast<double>(events) / span_s) +
        config_.heartbeat_miss_weight *
            (static_cast<double>(misses) / span_s) +
        config_.recovery_weight *
            (static_cast<double>(recoveries) / span_s);
    double instantaneous = 1.0 / (1.0 + stress);

    // Nodes flagged for manual service are capacity that cannot come
    // back without intervention: they cap health outright, so a quiet
    // half-dead pod does not read as pristine once its event burst
    // ages out of the window.
    if (monitor_ != nullptr && monitor_->node_count() > 0) {
        const double alive =
            1.0 - static_cast<double>(monitor_->dead_node_count()) /
                      static_cast<double>(monitor_->node_count());
        instantaneous = std::min(instantaneous, alive);
    }

    score_ = config_.ewma_alpha * instantaneous +
             (1.0 - config_.ewma_alpha) * score_;

    // Cold-start grace: never band (so never shed) on a short window.
    if (samples_seen_ >= config_.warmup_samples) {
        const HealthBand next = StepBand(band_, score_);
        if (next != band_) {
            ++counters_.band_transitions;
            LOG_INFO("forecast")
                << "pod " << config_.pod_id << ": " << ToString(band_)
                << " -> " << ToString(next) << " (score " << score_ << ")";
            band_ = next;
        }
    }

    HealthScoreSample sample;
    sample.pod = config_.pod_id;
    sample.score = score_;
    sample.instantaneous = instantaneous;
    sample.band = band_;
    feed_->Publish(sample);

    const std::uint64_t epoch = epoch_;
    simulator_->ScheduleDaemonAfter(config_.sample_period, [this, epoch] {
        if (epoch == epoch_) Tick();
    });
}

}  // namespace catapult::mgmt
