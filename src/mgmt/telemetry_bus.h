// Telemetry bus: the event spine of the autonomic health plane.
//
// §3.3/§3.5 describe a management plane that notices failures and heals
// the pod without operator action. The pull half of that loop is the
// Health Monitor's status query; this bus is the push half: shell and
// FPGA components (SL3 links, DRAM controllers, the DMA engine, the SEU
// scrubber, the thermal model) publish fault events the moment they
// observe them, instead of only accumulating counters for the next
// CollectHealth() poll. Subscribers — chiefly the Health Monitor's
// watchdog — turn event bursts into suspect sets for investigation.
//
// The bus lives in the mgmt namespace but builds as its own low-level
// library (catapult_telemetry): the publishing layers sit *below* the
// management plane in the link graph (mgmt -> fabric -> shell), so the
// bus they publish into can depend only on the simulation kernel.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "sim/simulator.h"

namespace catapult::mgmt {

/** Fault classes published by the shell/FPGA layers (§3.5's vector). */
enum class TelemetryKind {
    kLinkCrcError,        ///< SL3 double-bit / CRC packet drop.
    kLinkDown,            ///< SL3 lane lock lost (defect or flap).
    kDramEccFault,        ///< Uncorrectable DRAM ECC event.
    kDramCalibrationLoss, ///< DIMM dropped calibration.
    kSeuRoleCorruption,   ///< Critical configuration upset hit the role.
    kTemperatureShutdown, ///< Die crossed the rated junction temperature.
    kDmaStall,            ///< Host not draining output slots.
    kApplicationError,    ///< Role-level corruption / unprotected garbage.
};

const char* ToString(TelemetryKind kind);

/**
 * Kinds that are individually investigation-worthy. Everything else is
 * noise-tolerant: one CRC drop or one stalled slot is routine, and the
 * watchdog only reacts to bursts of them (hysteresis against transient
 * faults).
 */
bool IsCriticalTelemetry(TelemetryKind kind);

/** One fault observation, stamped with simulated time at publish. */
struct TelemetryEvent {
    int pod = 0;    ///< Pod the publishing shell belongs to (bus identity).
    int node = -1;  ///< Pod-local node index of the publishing shell.
    TelemetryKind kind = TelemetryKind::kApplicationError;
    Time timestamp = 0;
};

class TelemetryBus;

/**
 * RAII subscription handle: unsubscribes from the bus on destruction,
 * so a torn-down subscriber (a destroyed HealthMonitor, a dispatcher
 * that dropped a pod) can never be invoked through a dangling
 * callback. Move-only; release() detaches without unsubscribing.
 */
class TelemetrySubscription {
  public:
    TelemetrySubscription() = default;
    TelemetrySubscription(TelemetryBus* bus, int id) : bus_(bus), id_(id) {}
    ~TelemetrySubscription() { Reset(); }

    TelemetrySubscription(TelemetrySubscription&& other) noexcept
        : bus_(other.bus_), id_(other.id_) {
        other.bus_ = nullptr;
        other.id_ = 0;
    }
    TelemetrySubscription& operator=(TelemetrySubscription&& other) noexcept {
        if (this != &other) {
            Reset();
            bus_ = other.bus_;
            id_ = other.id_;
            other.bus_ = nullptr;
            other.id_ = 0;
        }
        return *this;
    }

    TelemetrySubscription(const TelemetrySubscription&) = delete;
    TelemetrySubscription& operator=(const TelemetrySubscription&) = delete;

    /** Unsubscribe now (idempotent). */
    void Reset();

    bool active() const { return bus_ != nullptr; }

  private:
    TelemetryBus* bus_ = nullptr;
    int id_ = 0;
};

class TelemetryBus {
  public:
    using SubscriberId = int;

    /**
     * `pod_id` stamps every published event, so federated subscribers
     * aggregating several pods' buses can attribute faults without a
     * side table.
     */
    explicit TelemetryBus(sim::Simulator* simulator, int pod_id = 0);

    TelemetryBus(const TelemetryBus&) = delete;
    TelemetryBus& operator=(const TelemetryBus&) = delete;

    /**
     * Deliver `event` (timestamped with the current simulated time) to
     * every subscriber, synchronously. Publishing from a subscriber
     * callback is allowed; the nested event is delivered to subscribers
     * registered at the time of the nested publish.
     */
    void Publish(int node, TelemetryKind kind);

    /** Subscribe; the returned id can be passed to Unsubscribe. */
    SubscriberId Subscribe(std::function<void(const TelemetryEvent&)> fn);

    /**
     * Subscribe with an owning handle: the subscription ends when the
     * handle is destroyed or Reset. Preferred for subscribers whose
     * lifetime is shorter than the bus (per-pod monitors, federated
     * dispatchers).
     */
    TelemetrySubscription SubscribeScoped(
        std::function<void(const TelemetryEvent&)> fn) {
        return TelemetrySubscription(this, Subscribe(std::move(fn)));
    }

    /** Remove a subscriber; no-op for unknown ids. */
    void Unsubscribe(SubscriberId id);

    struct Counters {
        std::uint64_t published = 0;
        std::uint64_t delivered = 0;  ///< published x subscribers.
    };
    const Counters& counters() const { return counters_; }
    int subscriber_count() const;
    int pod_id() const { return pod_id_; }

  private:
    struct Subscriber {
        SubscriberId id;
        std::function<void(const TelemetryEvent&)> fn;
    };

    sim::Simulator* simulator_;
    int pod_id_;
    std::vector<Subscriber> subscribers_;
    SubscriberId next_id_ = 1;
    Counters counters_;
};

}  // namespace catapult::mgmt
