// Pod scheduler: placement of service rings onto the torus.
//
// §2: "FPGAs are directly wired to each other in a 6x8 two-dimensional
// torus, allowing services to allocate groups of FPGAs to provide the
// necessary area to implement the desired functionality." This is the
// allocation half of that sentence: the scheduler owns the pod's
// free/occupied map and grants ring-shaped regions (the §4 ranking
// pipeline is a ring of eight FPGAs along one torus row) to services,
// rejecting overlapping requests and reclaiming regions on teardown.
// Callers no longer pick torus rows by hand — they ask for capacity.

#pragma once

#include <cstdint>
#include <vector>

#include "fabric/torus_topology.h"

namespace catapult::mgmt {

/**
 * A granted ring region: `length` nodes along torus row `row` starting
 * at column `head_col` (wrapping east past the row edge, matching
 * TorusTopology::RingAlongRow). Default-constructed placements are
 * invalid — a scheduler rejection.
 */
struct RingPlacement {
    int row = -1;
    int head_col = 0;
    int length = 0;

    bool valid() const { return row >= 0 && length > 0; }
    bool operator==(const RingPlacement&) const = default;
};

class PodScheduler {
  public:
    /** Scheduler over an empty `rows` x `cols` pod. */
    PodScheduler(int rows, int cols);
    explicit PodScheduler(const fabric::TorusTopology& topology)
        : PodScheduler(topology.rows(), topology.cols()) {}

    PodScheduler(const PodScheduler&) = delete;
    PodScheduler& operator=(const PodScheduler&) = delete;

    /**
     * Grant a ring of `length` nodes on the first row with a free run,
     * scanning rows north to south and head columns west to east.
     * Returns an invalid placement when no region fits.
     */
    RingPlacement PlaceRing(int length);

    /**
     * Grant a specific region (operator-pinned placement). Rejects —
     * returning an invalid placement — when any requested node is
     * already granted, or the request falls outside the pod.
     */
    RingPlacement PlaceRingAt(int row, int head_col, int length);

    /**
     * Reclaim a granted region so later requests can reuse its nodes.
     * Returns false (and changes nothing) unless `placement` is exactly
     * a grant this scheduler handed out and has not yet released.
     */
    bool Release(const RingPlacement& placement);

    /** True when every node of the region is free. */
    bool RegionFree(int row, int head_col, int length) const;

    /** True when no grant touches `row`. */
    bool RowFree(int row) const;

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int node_count() const { return rows_ * cols_; }
    int occupied_nodes() const { return occupied_nodes_; }
    int free_nodes() const { return node_count() - occupied_nodes_; }

    struct Counters {
        std::uint64_t placements = 0;
        std::uint64_t rejections = 0;
        std::uint64_t releases = 0;
    };
    const Counters& counters() const { return counters_; }

  private:
    bool InPod(int row, int head_col, int length) const;
    void Mark(const RingPlacement& placement, bool occupied);

    int rows_;
    int cols_;
    std::vector<bool> occupied_;  ///< row-major node occupancy
    std::vector<RingPlacement> grants_;  ///< outstanding grants, exact
    int occupied_nodes_ = 0;
    Counters counters_;
};

}  // namespace catapult::mgmt
