// Mapping Manager (§3.3-§3.5).
//
// "The first, called the Mapping Manager, is responsible for configuring
// FPGAs with the correct application images when starting up a given
// datacenter service." It also owns the §3.4 RX-Halt release ordering —
// "The Mapping Manager tells each server to release RX Halt once all
// FPGAs in a pipeline have been configured" — and, on failures reported
// by the Health Monitor, decides "where to relocate various application
// roles on the fabric" and reconfigures every FPGA involved in the
// service, clearing corrupted state and mapping out hardware failures.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "fabric/catapult_fabric.h"
#include "fpga/bitstream.h"
#include "host/host_server.h"
#include "sim/simulator.h"

namespace catapult::mgmt {

/** One role placement within a service deployment. */
struct RoleAssignment {
    std::string role_name;
    fpga::Bitstream image;
    int node = 0;  ///< Pod-local node index.
};

/** A service to map onto the fabric. */
struct ServiceSpec {
    std::string service_name;
    std::vector<RoleAssignment> roles;
};

class MappingManager {
  public:
    struct Config {
        /** One-way Ethernet message latency for management commands. */
        Time ethernet_latency = Microseconds(150);
        /** Skip the QSPI flash write when the image is already staged. */
        bool images_preinstalled = true;
    };

    MappingManager(sim::Simulator* simulator, fabric::CatapultFabric* fabric,
                   std::vector<host::HostServer*> hosts, Config config);
    MappingManager(sim::Simulator* simulator, fabric::CatapultFabric* fabric,
                   std::vector<host::HostServer*> hosts)
        : MappingManager(simulator, fabric, std::move(hosts), Config()) {}

    MappingManager(const MappingManager&) = delete;
    MappingManager& operator=(const MappingManager&) = delete;

    /**
     * Deploy a service: configure every assigned FPGA (in parallel),
     * install torus routing tables, then release RX Halt everywhere —
     * only after all pipeline FPGAs are configured (§3.4).
     */
    void Deploy(const ServiceSpec& spec, std::function<void(bool)> on_done);

    /**
     * Reconfigure one node in place (§3.5: "simply reconfiguring the
     * FPGA in-place is sufficient to resolve the hang"), re-releasing
     * its RX halt afterwards.
     */
    void ReconfigureInPlace(int node, std::function<void(bool)> on_done);

    /**
     * Node currently hosting `role_name`, or -1. The role map is
     * cumulative across Deploy calls (one spec per ring of a pool), so
     * every deployed ring's roles resolve, not just the last spec's.
     */
    int NodeOfRole(const std::string& role_name) const;

    /**
     * Role currently mapped to `node`, or empty. Served from a
     * node-indexed reverse map (the health plane asks per fault
     * report, which is far hotter than the deploys that change it).
     */
    std::string RoleAtNode(int node) const;

    /** The most recently deployed spec (empty before Deploy). */
    const ServiceSpec& current_spec() const { return spec_; }

    struct Counters {
        std::uint64_t deployments = 0;
        std::uint64_t reconfigurations = 0;
        std::uint64_t rx_halt_releases = 0;
    };
    const Counters& counters() const { return counters_; }

  private:
    void ConfigureAll(std::function<void(bool)> on_done);
    void ReleaseAllRxHalts();
    /** Recompute node_to_role_ from role_to_node_ (deploy-time only). */
    void RebuildNodeIndex();

    sim::Simulator* simulator_;
    fabric::CatapultFabric* fabric_;
    std::vector<host::HostServer*> hosts_;
    Config config_;
    ServiceSpec spec_;
    std::map<std::string, int> role_to_node_;
    std::vector<std::string> node_to_role_;  ///< Indexed by node.
    Counters counters_;
};

}  // namespace catapult::mgmt
