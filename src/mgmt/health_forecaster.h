// Predictive health plane: per-pod degradation forecasting.
//
// The §3.5 failure ladder is reactive — a machine must miss heartbeats
// or latch a fatal fault before the control plane acts, so every
// degradation episode burns in-flight retries before traffic moves.
// Datacenter fleets die slow deaths far more often than they die
// instantly: a failing fan ramps die temperature over seconds, a
// marginal cable flaps with rising frequency, a sick pod's rings churn
// through spare rotations. This forecaster turns those leading
// indicators — TelemetryBus fault-event rates, heartbeat miss rates,
// ring-recovery churn and the dead-node fraction — into one continuous
// 0..1 health score per pod, EWMA-smoothed over a sliding trend
// window, so the federation's dispatcher can shed load from a pod
// *before* it hard-fails and ramp a serviced pod back in gradually.
//
// The score is published on a HealthScoreFeed (the push spine of the
// predictive plane, mirroring the TelemetryBus for the reactive one).
// Banding is hysteretic: a pod *enters* Degraded/Critical at a lower
// score than it *exits*, so a score hovering at a threshold cannot
// flap the dispatcher's shed decision. A cold-start grace holds the
// band at WarmingUp until one full trend window has been observed —
// a freshly attached (or freshly re-admitted) pod is never shed on a
// half-filled window.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/units.h"
#include "mgmt/health_monitor.h"
#include "mgmt/telemetry_bus.h"
#include "sim/simulator.h"

namespace catapult::mgmt {

/** Hysteretic classification of a pod's smoothed health score. */
enum class HealthBand {
    kWarmingUp,  ///< Cold-start grace: not enough samples to judge.
    kHealthy,
    kDegraded,   ///< Declining: drain the pod's admission share.
    kCritical,   ///< Below the shed floor: proactively shed traffic.
};

const char* ToString(HealthBand band);

/** One published health observation for a pod. */
struct HealthScoreSample {
    int pod = 0;
    /** EWMA-smoothed health, 1.0 = pristine, 0.0 = gone. */
    double score = 1.0;
    /** This window's raw (unsmoothed) health estimate. */
    double instantaneous = 1.0;
    HealthBand band = HealthBand::kWarmingUp;
    Time timestamp = 0;
};

class HealthScoreFeed;

/**
 * RAII subscription handle for the score feed; unsubscribes on
 * destruction so a torn-down subscriber (a dispatcher dropping a pod)
 * can never be invoked through a dangling callback. Move-only.
 */
class HealthScoreSubscription {
  public:
    HealthScoreSubscription() = default;
    HealthScoreSubscription(HealthScoreFeed* feed, int id)
        : feed_(feed), id_(id) {}
    ~HealthScoreSubscription() { Reset(); }

    HealthScoreSubscription(HealthScoreSubscription&& other) noexcept
        : feed_(other.feed_), id_(other.id_) {
        other.feed_ = nullptr;
        other.id_ = 0;
    }
    HealthScoreSubscription& operator=(
        HealthScoreSubscription&& other) noexcept {
        if (this != &other) {
            Reset();
            feed_ = other.feed_;
            id_ = other.id_;
            other.feed_ = nullptr;
            other.id_ = 0;
        }
        return *this;
    }

    HealthScoreSubscription(const HealthScoreSubscription&) = delete;
    HealthScoreSubscription& operator=(const HealthScoreSubscription&) =
        delete;

    /** Unsubscribe now (idempotent). */
    void Reset();

    bool active() const { return feed_ != nullptr; }

  private:
    HealthScoreFeed* feed_ = nullptr;
    int id_ = 0;
};

/**
 * Pub/sub feed of per-pod health scores: the seam between the
 * management plane (forecasters publish) and the service plane
 * (dispatchers subscribe). One feed per pod, samples stamped with the
 * pod id, exactly like the TelemetryBus.
 */
class HealthScoreFeed {
  public:
    using SubscriberId = int;

    explicit HealthScoreFeed(sim::Simulator* simulator);

    HealthScoreFeed(const HealthScoreFeed&) = delete;
    HealthScoreFeed& operator=(const HealthScoreFeed&) = delete;

    /** Deliver `sample` to every subscriber, synchronously. */
    void Publish(HealthScoreSample sample);

    SubscriberId Subscribe(std::function<void(const HealthScoreSample&)> fn);
    void Unsubscribe(SubscriberId id);
    HealthScoreSubscription SubscribeScoped(
        std::function<void(const HealthScoreSample&)> fn) {
        return HealthScoreSubscription(this, Subscribe(std::move(fn)));
    }

    /** The most recently published sample (default-healthy before any). */
    const HealthScoreSample& last() const { return last_; }
    std::uint64_t published() const { return published_; }
    int subscriber_count() const {
        int count = 0;
        for (const auto& subscriber : subscribers_) {
            if (subscriber.fn) ++count;
        }
        return count;
    }

  private:
    struct Subscriber {
        SubscriberId id;
        std::function<void(const HealthScoreSample&)> fn;
    };

    sim::Simulator* simulator_;
    std::vector<Subscriber> subscribers_;
    SubscriberId next_id_ = 1;
    HealthScoreSample last_;
    std::uint64_t published_ = 0;
};

/**
 * Per-pod trend model: samples fault-signal rates on a daemon cadence,
 * folds them into a smoothed health score, and publishes every sample
 * on the pod's HealthScoreFeed.
 *
 * Signal taps: a TelemetryBus subscription (fault events), the
 * HealthMonitor's watchdog counters and dead list (heartbeat misses,
 * nodes flagged for manual service), and an opaque recovery-churn
 * probe — a std::function because the ServicePool that counts ring
 * recoveries lives *above* the management plane in the link graph.
 */
class HealthForecaster {
  public:
    struct Config {
        /** Stamped on every published sample. */
        int pod_id = 0;
        /** Daemon sampling cadence. */
        Time sample_period = Milliseconds(10);
        /** Sliding trend window, in samples. */
        int window_samples = 8;
        /**
         * Cold-start grace: band stays WarmingUp (never shed) until
         * this many samples have been observed — one full window by
         * default.
         */
        int warmup_samples = 8;
        /** EWMA smoothing factor applied to the instantaneous health. */
        double ewma_alpha = 0.35;

        // --- Stress weights (rate in events/s -> dimensionless) ------
        // Instantaneous health is 1 / (1 + stress): 50 fault events/s
        // sustained (weight 0.02) alone reads as health 0.5. The
        // defaults are sized so one isolated machine reboot (a few
        // heartbeat misses plus one ring recovery inside a window)
        // reads as Degraded, while sustained churn — a thermal ramp
        // marching across nodes, a pod-wide blackout's miss storm —
        // sinks the score through the Critical/shed floor.

        double fault_event_weight = 0.02;
        double heartbeat_miss_weight = 0.02;
        /** One recovery inside an 80 ms window reads as stress ~0.75. */
        double recovery_weight = 0.06;

        // --- Hysteresis bands on the smoothed score ------------------
        // Enter thresholds sit below exit thresholds, so a score
        // hovering at a boundary cannot flap the band.

        double degraded_enter = 0.70;
        double degraded_exit = 0.85;
        double critical_enter = 0.35;
        double critical_exit = 0.55;
    };

    HealthForecaster(sim::Simulator* simulator, HealthScoreFeed* feed,
                     Config config);

    HealthForecaster(const HealthForecaster&) = delete;
    HealthForecaster& operator=(const HealthForecaster&) = delete;

    /** Stops sampling and drops the telemetry subscription. */
    ~HealthForecaster();

    /** Count this pod's fault events toward the stress signal. */
    void AttachTelemetry(TelemetryBus* bus);
    /** Poll watchdog counters and the dead list from `monitor`. */
    void AttachHealthMonitor(const HealthMonitor* monitor);
    /** Ring-recovery churn source (e.g. ServicePool recoveries). */
    void set_recovery_churn_probe(std::function<std::uint64_t()> probe) {
        churn_probe_ = std::move(probe);
    }

    /** Start the daemon sampling loop (idempotent). */
    void Start();
    void Stop();
    bool running() const { return running_; }

    /**
     * Re-admission support: a serviced pod's fault history must not
     * poison its fresh score. Clears the trend window, restarts the
     * cold-start grace (band WarmingUp, score 1.0) and re-bases the
     * counter snapshots so blackout-era backlog is not counted as new
     * signal. Publishes the reset sample immediately.
     */
    void ResetForReadmission();

    double score() const { return score_; }
    HealthBand band() const { return band_; }

    struct Counters {
        std::uint64_t samples = 0;
        std::uint64_t band_transitions = 0;
        std::uint64_t telemetry_events = 0;
    };
    const Counters& counters() const { return counters_; }

  private:
    struct WindowSlot {
        std::uint64_t events = 0;
        std::uint64_t misses = 0;
        std::uint64_t recoveries = 0;
    };

    void Tick();
    HealthBand StepBand(HealthBand band, double score) const;
    void SnapshotBaselines();

    sim::Simulator* simulator_;
    HealthScoreFeed* feed_;
    Config config_;
    const HealthMonitor* monitor_ = nullptr;
    std::function<std::uint64_t()> churn_probe_;
    TelemetrySubscription telemetry_subscription_;

    std::deque<WindowSlot> window_;
    std::uint64_t events_seen_ = 0;       ///< via telemetry subscription
    std::uint64_t last_events_ = 0;
    std::uint64_t last_misses_ = 0;
    std::uint64_t last_recoveries_ = 0;
    int samples_seen_ = 0;
    double score_ = 1.0;
    HealthBand band_ = HealthBand::kWarmingUp;
    bool running_ = false;
    std::uint64_t epoch_ = 0;  ///< Orphans stale tick callbacks.
    Counters counters_;
};

}  // namespace catapult::mgmt
