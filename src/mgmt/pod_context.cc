#include "mgmt/pod_context.h"

#include <cassert>
#include <string>

namespace catapult::mgmt {

PodContext::PodContext(sim::Simulator* simulator, Config config)
    : config_(std::move(config)), simulator_(simulator) {
    assert(simulator_ != nullptr);
    assert(config_.pod_id >= 0);

    // Thread the pod id through every layer unless the caller pinned
    // the fabric identity explicitly: global node ids partition into
    // per-pod ranges, the name prefix tags logs/host names, and the
    // telemetry bus and Health Monitor stamp their events/reports.
    if (config_.fabric.pod_id == 0) config_.fabric.pod_id = config_.pod_id;
    if (config_.fabric.node_base == 0 && config_.pod_id > 0) {
        config_.fabric.node_base =
            config_.pod_id * config_.fabric.topology.node_count();
    }
    if (config_.fabric.name_prefix == "pod0" && config_.pod_id > 0) {
        // Built up with += rather than `"pod" + std::to_string(...)`:
        // GCC 12's -Wrestrict false-positives on operator+(const char*,
        // string&&) when it inlines deeply (PR 105329).
        config_.fabric.name_prefix = "pod";
        config_.fabric.name_prefix += std::to_string(config_.pod_id);
    }
    config_.health.pod_id = config_.pod_id;
    config_.forecast.pod_id = config_.pod_id;
    // Stride the trace-id space per pod (ServicePool strides per ring
    // below it): federation-unique ids make cross-pod FDR replay
    // unambiguous. An explicit base set by the caller wins.
    if (config_.service.trace_id_base == 0) {
        config_.service.trace_id_base =
            static_cast<std::uint64_t>(config_.pod_id) << 48;
    }

    Rng rng(config_.seed);
    telemetry_ =
        std::make_unique<TelemetryBus>(simulator_, config_.pod_id);
    fabric_ = std::make_unique<fabric::CatapultFabric>(simulator_, rng.Fork(),
                                                       config_.fabric);
    std::string host_prefix = config_.host_name_prefix;
    if (host_prefix.empty()) {
        host_prefix = "srv";
        if (config_.pod_id > 0) {
            host_prefix = "p";
            host_prefix += std::to_string(config_.pod_id);
            host_prefix += ".srv";
        }
    }
    for (int i = 0; i < fabric_->node_count(); ++i) {
        hosts_storage_.push_back(std::make_unique<host::HostServer>(
            simulator_, host_prefix + std::to_string(i), &fabric_->shell(i),
            config_.host));
        hosts_.push_back(hosts_storage_.back().get());
        hosts_storage_.back()->driver().AssignThreads(config_.driver_threads);
    }
    mapping_manager_ = std::make_unique<MappingManager>(
        simulator_, fabric_.get(), hosts_);
    health_monitor_ = std::make_unique<HealthMonitor>(
        simulator_, fabric_.get(), hosts_, config_.health);
    failure_injector_ = std::make_unique<FailureInjector>(
        simulator_, fabric_.get(), hosts_, rng.Fork());
    scheduler_ = std::make_unique<PodScheduler>(fabric_->topology());
    service::ServicePool::Config pool_config;
    pool_config.ring_count = config_.ring_count;
    pool_config.policy = config_.policy;
    pool_config.max_in_flight_per_ring = config_.max_in_flight_per_ring;
    pool_config.ring = config_.service;
    if (config_.service.archive_traces) {
        // One archive per pod: every ring records into it (ids are
        // pod+ring strided), so a cross-pod replay needs one archive
        // lookup per pod, not one per ring.
        trace_archive_ = std::make_unique<service::TraceArchive>(
            config_.service.trace_archive_capacity);
        pool_config.ring.shared_archive = trace_archive_.get();
    }
    pool_ = std::make_unique<service::ServicePool>(
        simulator_, fabric_.get(), hosts_, mapping_manager_.get(),
        scheduler_.get(), std::move(pool_config));
    health_feed_ = std::make_unique<HealthScoreFeed>(simulator_);
    forecaster_ = std::make_unique<HealthForecaster>(
        simulator_, health_feed_.get(), config_.forecast);
    if (config_.obs != nullptr) {
        pool_->SetObservability(config_.obs);
        health_monitor_->SetObservability(config_.obs);
    }

    if (!config_.autonomic) return;
    // The autonomic loop (§3.3, §3.5): components publish faults, the
    // watchdog turns missed heartbeats and event bursts into
    // investigations, and confirmed reports heal the pod — the pool
    // recovers rings whose active stages are hit; anything else with a
    // mapped role (idle spares, stranded reboots) is reconfigured in
    // place by the Mapping Manager.
    fabric_->AttachTelemetry(telemetry_.get());
    health_monitor_->AttachTelemetry(telemetry_.get());
    health_monitor_->AddFailureSubscriber(
        [this](const MachineReport& report) {
            if (pool_->HandleMachineReport(report)) return;
            switch (report.fault) {
              case FaultType::kUnresponsiveRecovered:
              case FaultType::kStrandedRxHalt:
              case FaultType::kApplicationError:
                // In-place reconfiguration clears corrupted role state
                // and re-releases RX Halt (§3.5) — only for nodes that
                // actually hold a mapped role; an idle node has no
                // application image to restore.
                if (!mapping_manager_->RoleAtNode(report.node).empty()) {
                    mapping_manager_->ReconfigureInPlace(report.node,
                                                         [](bool) {});
                }
                break;
              default:
                // Fatal (manual service), cable-class and thermal
                // faults are not fixable by reconfiguration.
                break;
            }
        });
    health_monitor_->StartWatchdog();

    if (!config_.predictive) return;
    // The predictive plane rides on the reactive one's signals: fault
    // events from the bus, watchdog miss/dead counters, and the pool's
    // recovery churn, folded into the pod's published health score.
    forecaster_->AttachTelemetry(telemetry_.get());
    forecaster_->AttachHealthMonitor(health_monitor_.get());
    forecaster_->set_recovery_churn_probe(
        [pool = pool_.get()] { return pool->counters().recoveries; });
    forecaster_->Start();
}

void PodContext::Deploy(std::function<void(bool)> on_done) {
    pool_->Deploy(std::move(on_done));
}

}  // namespace catapult::mgmt
