// Health Monitor (§3.3, §3.5).
//
// "The Health Monitor is invoked when there is a suspected failure in
// one or more systems. [It] queries each machine to find its status. If
// a server is unresponsive, it is put through a sequence of soft reboot,
// hard reboot, and then flagged for manual service ... If the server is
// operating correctly, it responds ... with information about the
// health of its local FPGA and associated links" — the error vector —
// "and the machine IDs of the north, south, east, and west neighbors of
// an FPGA, to test whether the neighboring FPGAs in the torus are
// accessible and that they are the machines that the system expects."
//
// Suspicion itself is automated here (the autonomic plane): a heartbeat
// watchdog pings every host over simulated Ethernet and a telemetry
// subscription watches the fault-event bus; consecutive missed
// heartbeats or event bursts form suspect sets that are fed through the
// same Investigate() ladder a caller could invoke by hand. Confirmed
// MachineReports fan out to every registered failure subscriber (the
// Mapping Manager's re-mapping path and the ServicePool's automatic
// ring recovery).

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "fabric/catapult_fabric.h"
#include "host/host_server.h"
#include "mgmt/telemetry_bus.h"
#include "obs/observability.h"
#include "shell/shell.h"
#include "sim/simulator.h"

namespace catapult::mgmt {

/** Classified failure recorded in the failed-machine list (§3.5). */
enum class FaultType {
    kNone,
    kUnresponsiveRecovered,  ///< Came back after a reboot.
    kUnresponsiveFatal,      ///< Flagged for manual service.
    kLinkError,
    kMiswiredCable,
    kDramError,
    kApplicationError,
    kPcieError,
    kTemperatureShutdown,
    /**
     * Host responsive and the FPGA healthy, but its shell still has RX
     * Halt engaged: the machine rebooted behind the plane's back (§3.4:
     * a freshly configured FPGA drops link traffic until the Mapping
     * Manager releases it) and is stranded until re-mapped.
     */
    kStrandedRxHalt,
};

const char* ToString(FaultType type);

/** One machine's investigation outcome. */
struct MachineReport {
    int pod = 0;    ///< Pod the monitor watches (federation attribution).
    int node = -1;  ///< Pod-local node index.
    FaultType fault = FaultType::kNone;
    bool needed_soft_reboot = false;
    bool needed_hard_reboot = false;
    shell::HealthVector health;
};

class HealthMonitor {
  public:
    struct Config {
        /** Pod this monitor watches; stamped on every MachineReport. */
        int pod_id = 0;
        /** One-way Ethernet latency for status queries. */
        Time ethernet_latency = Microseconds(150);
        /** Wait for a status reply before declaring unresponsive. */
        Time query_timeout = Seconds(2);

        // --- Watchdog (heartbeats + telemetry bursts) ----------------

        /** Interval between heartbeat ping sweeps over the pod. */
        Time heartbeat_period = Milliseconds(50);
        /** Consecutive missed heartbeats before a node is suspect. */
        int heartbeat_miss_threshold = 3;
        /**
         * Non-critical telemetry events from one node within
         * `telemetry_burst_window` before it is suspect. Critical kinds
         * (IsCriticalTelemetry) suspect on the first event.
         */
        int telemetry_burst_threshold = 3;
        Time telemetry_burst_window = Milliseconds(20);
        /**
         * Quiet period per node after an investigation concludes;
         * hysteresis so one lingering symptom does not re-investigate
         * in a loop.
         */
        Time investigation_cooldown = Milliseconds(250);
    };

    HealthMonitor(sim::Simulator* simulator, fabric::CatapultFabric* fabric,
                  std::vector<host::HostServer*> hosts, Config config);
    HealthMonitor(sim::Simulator* simulator, fabric::CatapultFabric* fabric,
                  std::vector<host::HostServer*> hosts)
        : HealthMonitor(simulator, fabric, std::move(hosts), Config()) {}

    HealthMonitor(const HealthMonitor&) = delete;
    HealthMonitor& operator=(const HealthMonitor&) = delete;

    /**
     * Stops the watchdog and drops the telemetry subscription (the
     * scoped handle): a monitor torn down before its bus — a pod
     * leaving a federation — leaves no dangling callback behind.
     */
    ~HealthMonitor();

    /**
     * Investigate a set of suspect machines; the reports arrive via
     * `on_done` after queries and any needed reboot ladder. Machines
     * with faults are appended to the failed-machine list, and every
     * failure subscriber fires for each. This is the explicit entry
     * point the watchdog funnels into; callers may still invoke it by
     * hand (maintenance sweeps, tests).
     */
    void Investigate(std::vector<int> nodes,
                     std::function<void(std::vector<MachineReport>)> on_done);

    // --- Autonomic plane -------------------------------------------------

    /**
     * Subscribe to the fault-event bus: bursts of events (or a single
     * critical event) from a node mark it suspect, exactly as missed
     * heartbeats do.
     */
    void AttachTelemetry(TelemetryBus* bus);

    /**
     * Start the heartbeat watchdog: every `heartbeat_period` each host
     * is pinged over simulated Ethernet (daemon events — an idle pod
     * does not keep the simulation alive). Suspects from misses or
     * telemetry bursts are investigated automatically.
     */
    void StartWatchdog();
    void StopWatchdog();
    bool watchdog_running() const { return watchdog_running_; }

    /**
     * Register a confirmed-failure subscriber; fires (after the legacy
     * `on_machine_failed` hook) for every faulted MachineReport, from
     * both automatic and explicit investigations. The returned id can
     * be passed to RemoveFailureSubscriber.
     */
    int AddFailureSubscriber(std::function<void(const MachineReport&)> fn);

    /**
     * Drop a failure subscriber (no-op for unknown ids), so a
     * subscriber torn down before the monitor — a federated dispatcher
     * detaching a pod — leaves no dangling callback.
     */
    void RemoveFailureSubscriber(int id);

    /** Legacy single hook (kept as a shim; drives re-mapping). */
    void set_on_machine_failed(std::function<void(const MachineReport&)> cb) {
        on_machine_failed_ = std::move(cb);
    }

    const std::vector<MachineReport>& failed_machine_list() const {
        return failed_machines_;
    }

    /** Nodes flagged for manual service; excluded from heartbeats. */
    bool node_dead(int node) const {
        return nodes_[static_cast<std::size_t>(node)].dead;
    }

    /** Nodes currently flagged for manual service. */
    int dead_node_count() const { return dead_node_count_; }
    /** Nodes this monitor watches. */
    int node_count() const { return static_cast<int>(nodes_.size()); }

    /**
     * Field service concluded on `node` (§3.5's manual-service exit):
     * clears the dead flag and every watchdog grudge — miss streak,
     * burst window, cooldown, parked suspicions — so heartbeats resume
     * and a fresh fault on the serviced machine is investigated from a
     * clean slate. The pod re-admission path calls this once the host
     * is back up.
     */
    void MarkNodeServiced(int node);

    struct Counters {
        std::uint64_t investigations = 0;
        std::uint64_t queries = 0;
        std::uint64_t soft_reboots = 0;
        std::uint64_t hard_reboots = 0;
        std::uint64_t flagged_for_service = 0;
        // Watchdog instrumentation.
        std::uint64_t heartbeats_sent = 0;
        std::uint64_t heartbeat_misses = 0;
        std::uint64_t telemetry_events = 0;
        std::uint64_t auto_investigations = 0;
        /** FDR records streamed into the trace timeline on faults. */
        std::uint64_t fdr_postmortem_records = 0;
    };
    const Counters& counters() const { return counters_; }

    /** Victim FDR tail length streamed into the timeline per fault. */
    static constexpr std::size_t kFdrPostmortemTail = 32;

    /**
     * Attach the pod's observability shard. Every classified fault
     * emits a "fault" instant, and the victim's FDR tail (§3.6's
     * health-check stream-out) is replayed into the trace timeline as
     * "fdr" instants keyed by the packets' document trace ids, so the
     * stitcher joins them to the query spans they belong to.
     */
    void SetObservability(obs::ShardObs* obs) { obs_ = obs; }

  private:
    struct Context;

    /** Per-node watchdog state. */
    struct NodeState {
        int consecutive_misses = 0;
        std::deque<Time> event_times;  ///< Non-critical telemetry burst.
        bool investigating = false;
        bool has_concluded = false;
        Time last_concluded = 0;
        bool dead = false;  ///< kUnresponsiveFatal: awaiting manual service.
        /**
         * A critical event landed while the node was mid-investigation
         * or in its cooldown. Publishers latch hard faults (one event
         * per excursion) and the host keeps answering heartbeats, so
         * the suspicion is parked and retried rather than dropped.
         */
        bool pending_critical = false;
        bool critical_retry_scheduled = false;
    };

    void QueryMachine(std::shared_ptr<Context> ctx, std::size_t idx);
    void HandleResponsive(std::shared_ptr<Context> ctx, std::size_t idx,
                          MachineReport report);
    void FinishMachine(std::shared_ptr<Context> ctx, std::size_t idx,
                       MachineReport report);

    /** Classify an error vector into the dominant fault type. */
    FaultType Classify(int node, const shell::HealthVector& health) const;

    void HeartbeatSweep();
    void OnHeartbeatResult(int node, bool responsive);
    void OnTelemetry(const TelemetryEvent& event);
    /** True when the watchdog may open a new investigation of `node`. */
    bool CanSuspect(int node) const;
    void MarkSuspect(int node);
    void ScheduleCriticalRetry(int node);
    void FlushSuspects();

    sim::Simulator* simulator_;
    fabric::CatapultFabric* fabric_;
    std::vector<host::HostServer*> hosts_;
    Config config_;
    std::vector<MachineReport> failed_machines_;
    std::function<void(const MachineReport&)> on_machine_failed_;
    std::vector<std::function<void(const MachineReport&)>> subscribers_;
    std::vector<NodeState> nodes_;
    int dead_node_count_ = 0;
    std::vector<int> pending_suspects_;
    bool flush_scheduled_ = false;
    bool watchdog_running_ = false;
    std::uint64_t watchdog_epoch_ = 0;  ///< Orphans stale sweep callbacks.
    TelemetryBus* telemetry_ = nullptr;
    TelemetrySubscription telemetry_subscription_;
    obs::ShardObs* obs_ = nullptr;
    Counters counters_;
};

}  // namespace catapult::mgmt
