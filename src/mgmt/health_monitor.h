// Health Monitor (§3.3, §3.5).
//
// "The Health Monitor is invoked when there is a suspected failure in
// one or more systems. [It] queries each machine to find its status. If
// a server is unresponsive, it is put through a sequence of soft reboot,
// hard reboot, and then flagged for manual service ... If the server is
// operating correctly, it responds ... with information about the
// health of its local FPGA and associated links" — the error vector —
// "and the machine IDs of the north, south, east, and west neighbors of
// an FPGA, to test whether the neighboring FPGAs in the torus are
// accessible and that they are the machines that the system expects."

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "fabric/catapult_fabric.h"
#include "host/host_server.h"
#include "shell/shell.h"
#include "sim/simulator.h"

namespace catapult::mgmt {

/** Classified failure recorded in the failed-machine list (§3.5). */
enum class FaultType {
    kNone,
    kUnresponsiveRecovered,  ///< Came back after a reboot.
    kUnresponsiveFatal,      ///< Flagged for manual service.
    kLinkError,
    kMiswiredCable,
    kDramError,
    kApplicationError,
    kPcieError,
    kTemperatureShutdown,
};

const char* ToString(FaultType type);

/** One machine's investigation outcome. */
struct MachineReport {
    int node = -1;
    FaultType fault = FaultType::kNone;
    bool needed_soft_reboot = false;
    bool needed_hard_reboot = false;
    shell::HealthVector health;
};

class HealthMonitor {
  public:
    struct Config {
        /** One-way Ethernet latency for status queries. */
        Time ethernet_latency = Microseconds(150);
        /** Wait for a status reply before declaring unresponsive. */
        Time query_timeout = Seconds(2);
    };

    HealthMonitor(sim::Simulator* simulator, fabric::CatapultFabric* fabric,
                  std::vector<host::HostServer*> hosts, Config config);
    HealthMonitor(sim::Simulator* simulator, fabric::CatapultFabric* fabric,
                  std::vector<host::HostServer*> hosts)
        : HealthMonitor(simulator, fabric, std::move(hosts), Config()) {}

    HealthMonitor(const HealthMonitor&) = delete;
    HealthMonitor& operator=(const HealthMonitor&) = delete;

    /**
     * Investigate a set of suspect machines; the reports arrive via
     * `on_done` after queries and any needed reboot ladder. Machines
     * with faults are appended to the failed-machine list, and the
     * `on_machine_failed` hook (typically wired to the Mapping Manager)
     * fires for each.
     */
    void Investigate(std::vector<int> nodes,
                     std::function<void(std::vector<MachineReport>)> on_done);

    /** Hook invoked for every faulted machine (drives re-mapping). */
    void set_on_machine_failed(std::function<void(const MachineReport&)> cb) {
        on_machine_failed_ = std::move(cb);
    }

    const std::vector<MachineReport>& failed_machine_list() const {
        return failed_machines_;
    }

    struct Counters {
        std::uint64_t investigations = 0;
        std::uint64_t queries = 0;
        std::uint64_t soft_reboots = 0;
        std::uint64_t hard_reboots = 0;
        std::uint64_t flagged_for_service = 0;
    };
    const Counters& counters() const { return counters_; }

  private:
    struct Context;

    void QueryMachine(std::shared_ptr<Context> ctx, std::size_t idx);
    void HandleResponsive(std::shared_ptr<Context> ctx, std::size_t idx,
                          MachineReport report);
    void FinishMachine(std::shared_ptr<Context> ctx, std::size_t idx,
                       MachineReport report);

    /** Classify an error vector into the dominant fault type. */
    FaultType Classify(int node, const shell::HealthVector& health) const;

    sim::Simulator* simulator_;
    fabric::CatapultFabric* fabric_;
    std::vector<host::HostServer*> hosts_;
    Config config_;
    std::vector<MachineReport> failed_machines_;
    std::function<void(const MachineReport&)> on_machine_failed_;
    Counters counters_;
};

}  // namespace catapult::mgmt
