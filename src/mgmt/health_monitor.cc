#include "mgmt/health_monitor.h"

#include <cassert>
#include <memory>

#include "common/log.h"

namespace catapult::mgmt {

const char* ToString(FaultType type) {
    switch (type) {
      case FaultType::kNone: return "none";
      case FaultType::kUnresponsiveRecovered: return "unresponsive_recovered";
      case FaultType::kUnresponsiveFatal: return "unresponsive_fatal";
      case FaultType::kLinkError: return "link_error";
      case FaultType::kMiswiredCable: return "miswired_cable";
      case FaultType::kDramError: return "dram_error";
      case FaultType::kApplicationError: return "application_error";
      case FaultType::kPcieError: return "pcie_error";
      case FaultType::kTemperatureShutdown: return "temperature_shutdown";
    }
    return "?";
}

struct HealthMonitor::Context {
    std::vector<int> nodes;
    std::vector<MachineReport> reports;
    std::size_t outstanding = 0;
    std::function<void(std::vector<MachineReport>)> on_done;
};

HealthMonitor::HealthMonitor(sim::Simulator* simulator,
                             fabric::CatapultFabric* fabric,
                             std::vector<host::HostServer*> hosts,
                             Config config)
    : simulator_(simulator),
      fabric_(fabric),
      hosts_(std::move(hosts)),
      config_(config) {
    assert(simulator_ != nullptr);
    assert(fabric_ != nullptr);
}

void HealthMonitor::Investigate(
    std::vector<int> nodes,
    std::function<void(std::vector<MachineReport>)> on_done) {
    ++counters_.investigations;
    auto ctx = std::make_shared<Context>();
    ctx->nodes = std::move(nodes);
    ctx->reports.resize(ctx->nodes.size());
    ctx->outstanding = ctx->nodes.size();
    ctx->on_done = std::move(on_done);
    if (ctx->nodes.empty()) {
        ctx->on_done({});
        return;
    }
    for (std::size_t i = 0; i < ctx->nodes.size(); ++i) {
        QueryMachine(ctx, i);
    }
}

void HealthMonitor::QueryMachine(std::shared_ptr<Context> ctx,
                                 std::size_t idx) {
    ++counters_.queries;
    const int node = ctx->nodes[idx];
    host::HostServer* host = hosts_[static_cast<std::size_t>(node)];
    // Status query over Ethernet with a reply timeout.
    simulator_->ScheduleAfter(
        config_.ethernet_latency + config_.query_timeout,
        [this, ctx, idx, node, host] {
            MachineReport report;
            report.node = node;
            if (host->responsive()) {
                HandleResponsive(ctx, idx, std::move(report));
                return;
            }
            // §3.5 reboot ladder: soft reboot -> hard reboot -> flag.
            ++counters_.soft_reboots;
            report.needed_soft_reboot = true;
            host->SoftReboot([this, ctx, idx, node, host,
                              report]() mutable {
                if (host->responsive()) {
                    report.fault = FaultType::kUnresponsiveRecovered;
                    HandleResponsive(ctx, idx, std::move(report));
                    return;
                }
                ++counters_.hard_reboots;
                report.needed_hard_reboot = true;
                host->HardReboot([this, ctx, idx, node, host,
                                  report]() mutable {
                    if (host->responsive()) {
                        report.fault = FaultType::kUnresponsiveRecovered;
                        HandleResponsive(ctx, idx, std::move(report));
                        return;
                    }
                    ++counters_.flagged_for_service;
                    host->FlagForService();
                    report.fault = FaultType::kUnresponsiveFatal;
                    FinishMachine(ctx, idx, std::move(report));
                });
            });
        });
}

void HealthMonitor::HandleResponsive(std::shared_ptr<Context> ctx,
                                     std::size_t idx, MachineReport report) {
    const int node = report.node;
    report.health = fabric_->shell(node).CollectHealth();
    const FaultType classified = Classify(node, report.health);
    if (classified != FaultType::kNone) report.fault = classified;
    FinishMachine(ctx, idx, std::move(report));
}

FaultType HealthMonitor::Classify(int node,
                                  const shell::HealthVector& health) const {
    // Highest-severity first.
    if (health.temperature_shutdown) return FaultType::kTemperatureShutdown;
    // Neighbour identity check: compare reported IDs against the wiring
    // the topology expects (§3.5: "in case the cables are miswired or
    // unplugged").
    static constexpr shell::Port kPorts[4] = {
        shell::Port::kNorth, shell::Port::kSouth, shell::Port::kEast,
        shell::Port::kWest};
    for (int i = 0; i < 4; ++i) {
        const int expected_local =
            fabric_->topology().NeighborOf(node, kPorts[i]);
        const shell::NodeId expected = fabric_->GlobalId(expected_local);
        if (health.neighbor_id[i] != shell::kInvalidNode &&
            health.neighbor_id[i] != expected) {
            return FaultType::kMiswiredCable;
        }
    }
    for (bool link_error : health.link_error) {
        if (link_error) return FaultType::kLinkError;
    }
    if (health.dram_calibration_failure) return FaultType::kDramError;
    if (health.application_error) return FaultType::kApplicationError;
    if (health.pcie_errors) return FaultType::kPcieError;
    // Corrected DRAM bit errors alone are informational, not a fault.
    return FaultType::kNone;
}

void HealthMonitor::FinishMachine(std::shared_ptr<Context> ctx,
                                  std::size_t idx, MachineReport report) {
    if (report.fault != FaultType::kNone) {
        failed_machines_.push_back(report);
        LOG_INFO("health_monitor")
            << "node " << report.node << " fault: " << ToString(report.fault);
        if (on_machine_failed_) on_machine_failed_(report);
    }
    ctx->reports[idx] = std::move(report);
    if (--ctx->outstanding == 0) {
        ctx->on_done(std::move(ctx->reports));
    }
}

}  // namespace catapult::mgmt
