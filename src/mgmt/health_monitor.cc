#include "mgmt/health_monitor.h"

#include <cassert>
#include <memory>

#include "common/log.h"

namespace catapult::mgmt {

const char* ToString(FaultType type) {
    switch (type) {
      case FaultType::kNone: return "none";
      case FaultType::kUnresponsiveRecovered: return "unresponsive_recovered";
      case FaultType::kUnresponsiveFatal: return "unresponsive_fatal";
      case FaultType::kLinkError: return "link_error";
      case FaultType::kMiswiredCable: return "miswired_cable";
      case FaultType::kDramError: return "dram_error";
      case FaultType::kApplicationError: return "application_error";
      case FaultType::kPcieError: return "pcie_error";
      case FaultType::kTemperatureShutdown: return "temperature_shutdown";
      case FaultType::kStrandedRxHalt: return "stranded_rx_halt";
    }
    return "?";
}

struct HealthMonitor::Context {
    std::vector<int> nodes;
    std::vector<MachineReport> reports;
    std::size_t outstanding = 0;
    std::function<void(std::vector<MachineReport>)> on_done;
};

HealthMonitor::HealthMonitor(sim::Simulator* simulator,
                             fabric::CatapultFabric* fabric,
                             std::vector<host::HostServer*> hosts,
                             Config config)
    : simulator_(simulator),
      fabric_(fabric),
      hosts_(std::move(hosts)),
      config_(config),
      nodes_(hosts_.size()) {
    assert(simulator_ != nullptr);
    assert(fabric_ != nullptr);
}

HealthMonitor::~HealthMonitor() {
    StopWatchdog();
    // telemetry_subscription_ unsubscribes itself, so the bus can
    // never call back into this object. Simulator events are a
    // different matter: queued sweep/investigation callbacks capture
    // `this` and cannot be cancelled from here, so the monitor must
    // only be destroyed once its simulator has drained (PodContext and
    // the testbeds destroy the two together, after Run() returns).
}

void HealthMonitor::Investigate(
    std::vector<int> nodes,
    std::function<void(std::vector<MachineReport>)> on_done) {
    ++counters_.investigations;
    auto ctx = std::make_shared<Context>();
    ctx->nodes = std::move(nodes);
    ctx->reports.resize(ctx->nodes.size());
    ctx->outstanding = ctx->nodes.size();
    ctx->on_done = std::move(on_done);
    if (ctx->nodes.empty()) {
        ctx->on_done({});
        return;
    }
    for (const int node : ctx->nodes) {
        // The watchdog holds off on nodes already being investigated —
        // explicit calls and automatic ones share the dedup state.
        nodes_[static_cast<std::size_t>(node)].investigating = true;
    }
    for (std::size_t i = 0; i < ctx->nodes.size(); ++i) {
        QueryMachine(ctx, i);
    }
}

void HealthMonitor::QueryMachine(std::shared_ptr<Context> ctx,
                                 std::size_t idx) {
    ++counters_.queries;
    const int node = ctx->nodes[idx];
    host::HostServer* host = hosts_[static_cast<std::size_t>(node)];
    // Status query over Ethernet with a reply timeout.
    simulator_->ScheduleAfter(
        config_.ethernet_latency + config_.query_timeout,
        [this, ctx, idx, node, host] {
            MachineReport report;
            report.pod = config_.pod_id;
            report.node = node;
            if (host->responsive()) {
                HandleResponsive(ctx, idx, std::move(report));
                return;
            }
            // §3.5 reboot ladder: soft reboot -> hard reboot -> flag.
            ++counters_.soft_reboots;
            report.needed_soft_reboot = true;
            host->SoftReboot([this, ctx, idx, node, host,
                              report]() mutable {
                if (host->responsive()) {
                    report.fault = FaultType::kUnresponsiveRecovered;
                    HandleResponsive(ctx, idx, std::move(report));
                    return;
                }
                ++counters_.hard_reboots;
                report.needed_hard_reboot = true;
                host->HardReboot([this, ctx, idx, node, host,
                                  report]() mutable {
                    if (host->responsive()) {
                        report.fault = FaultType::kUnresponsiveRecovered;
                        HandleResponsive(ctx, idx, std::move(report));
                        return;
                    }
                    ++counters_.flagged_for_service;
                    host->FlagForService();
                    report.fault = FaultType::kUnresponsiveFatal;
                    FinishMachine(ctx, idx, std::move(report));
                });
            });
        });
}

void HealthMonitor::HandleResponsive(std::shared_ptr<Context> ctx,
                                     std::size_t idx, MachineReport report) {
    const int node = report.node;
    report.health = fabric_->shell(node).CollectHealth();
    const FaultType classified = Classify(node, report.health);
    // A stranded RX halt is implied by (and subsumed under) a recovered
    // reboot; real errors override the recovery classification.
    if (classified != FaultType::kNone &&
        !(classified == FaultType::kStrandedRxHalt &&
          report.fault != FaultType::kNone)) {
        report.fault = classified;
    }
    FinishMachine(ctx, idx, std::move(report));
}

FaultType HealthMonitor::Classify(int node,
                                  const shell::HealthVector& health) const {
    // Highest-severity first.
    if (health.temperature_shutdown) return FaultType::kTemperatureShutdown;
    // Neighbour identity check: compare reported IDs against the wiring
    // the topology expects (§3.5: "in case the cables are miswired or
    // unplugged").
    static constexpr shell::Port kPorts[4] = {
        shell::Port::kNorth, shell::Port::kSouth, shell::Port::kEast,
        shell::Port::kWest};
    for (int i = 0; i < 4; ++i) {
        const int expected_local =
            fabric_->topology().NeighborOf(node, kPorts[i]);
        const shell::NodeId expected = fabric_->GlobalId(expected_local);
        if (health.neighbor_id[i] != shell::kInvalidNode &&
            health.neighbor_id[i] != expected) {
            return FaultType::kMiswiredCable;
        }
    }
    for (bool link_error : health.link_error) {
        if (link_error) return FaultType::kLinkError;
    }
    if (health.dram_calibration_failure) return FaultType::kDramError;
    if (health.application_error) return FaultType::kApplicationError;
    if (health.pcie_errors) return FaultType::kPcieError;
    // Lowest priority: everything healthy but the shell still discards
    // link traffic — the node rebooted unnoticed and awaits re-mapping.
    if (health.rx_halted) return FaultType::kStrandedRxHalt;
    // Corrected DRAM bit errors alone are informational, not a fault.
    return FaultType::kNone;
}

void HealthMonitor::FinishMachine(std::shared_ptr<Context> ctx,
                                  std::size_t idx, MachineReport report) {
    NodeState& state = nodes_[static_cast<std::size_t>(report.node)];
    state.investigating = false;
    state.has_concluded = true;
    state.last_concluded = simulator_->Now();
    state.consecutive_misses = 0;
    state.event_times.clear();
    if (report.fault == FaultType::kUnresponsiveFatal && !state.dead) {
        state.dead = true;
        ++dead_node_count_;
    }
    // A confirmed fault already fans out the full response below, so a
    // critical event parked during this investigation is satisfied and
    // must not re-investigate the same excursion. A kNone conclusion
    // keeps the parked suspicion: the event may have landed after the
    // status query and its fault would otherwise go unseen.
    if (report.fault != FaultType::kNone) {
        state.pending_critical = false;
        failed_machines_.push_back(report);
        LOG_INFO("health_monitor")
            << "node " << report.node << " fault: " << ToString(report.fault);
        if (obs_ != nullptr && obs_->tracing()) {
            obs_->tracer.Instant("fault", 0, 0, 0, simulator_->Now(),
                                 report.node,
                                 static_cast<std::int64_t>(report.fault));
            // The health check's FDR stream-out (§3.6), folded into the
            // trace timeline: the victim's last packets appear as "fdr"
            // instants keyed by document trace id, which the stitcher
            // joins to the owning query spans — the postmortem shows
            // what the machine was doing when it died.
            const auto records =
                fabric_->shell(report.node).fdr().StreamOutExtended();
            const std::size_t first =
                records.size() > kFdrPostmortemTail
                    ? records.size() - kFdrPostmortemTail
                    : 0;
            for (std::size_t i = first; i < records.size(); ++i) {
                const auto& r = records[i];
                obs_->tracer.Instant("fdr", 0, 0, r.trace_id, r.timestamp,
                                     static_cast<std::int64_t>(r.type),
                                     static_cast<std::int64_t>(r.size));
                ++counters_.fdr_postmortem_records;
            }
        }
        if (on_machine_failed_) on_machine_failed_(report);
        // Index-based walk with null skip: a subscriber callback may
        // add or remove subscribers without invalidating the sweep.
        for (std::size_t i = 0; i < subscribers_.size(); ++i) {
            if (subscribers_[i]) subscribers_[i](report);
        }
    }
    ctx->reports[idx] = std::move(report);
    if (--ctx->outstanding == 0) {
        ctx->on_done(std::move(ctx->reports));
    }
}

// --- Watchdog --------------------------------------------------------------

void HealthMonitor::MarkNodeServiced(int node) {
    NodeState& state = nodes_[static_cast<std::size_t>(node)];
    if (state.dead) --dead_node_count_;
    state = NodeState{};
    LOG_INFO("health_monitor")
        << "node " << node << " serviced; watchdog coverage resumes";
}

int HealthMonitor::AddFailureSubscriber(
    std::function<void(const MachineReport&)> fn) {
    assert(fn != nullptr);
    subscribers_.push_back(std::move(fn));
    return static_cast<int>(subscribers_.size()) - 1;
}

void HealthMonitor::RemoveFailureSubscriber(int id) {
    if (id < 0 || id >= static_cast<int>(subscribers_.size())) return;
    // Null the slot (ids are indices) so other subscriptions survive.
    subscribers_[static_cast<std::size_t>(id)] = nullptr;
}

void HealthMonitor::AttachTelemetry(TelemetryBus* bus) {
    assert(bus != nullptr);
    telemetry_ = bus;
    // The scoped handle drops any previous subscription on assignment
    // and the final one at destruction — a torn-down monitor can never
    // be invoked through the bus again.
    telemetry_subscription_ = bus->SubscribeScoped(
        [this](const TelemetryEvent& event) { OnTelemetry(event); });
}

void HealthMonitor::StartWatchdog() {
    if (watchdog_running_) return;
    watchdog_running_ = true;
    const std::uint64_t epoch = ++watchdog_epoch_;
    simulator_->ScheduleDaemonAfter(config_.heartbeat_period, [this, epoch] {
        if (epoch == watchdog_epoch_) HeartbeatSweep();
    });
}

void HealthMonitor::StopWatchdog() {
    if (!watchdog_running_) return;
    watchdog_running_ = false;
    ++watchdog_epoch_;  // orphan any in-flight sweep callbacks
}

void HealthMonitor::HeartbeatSweep() {
    const std::uint64_t epoch = watchdog_epoch_;
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
        const NodeState& state = nodes_[i];
        // Dead machines wait for manual service; nodes mid-investigation
        // already have the plane's full attention.
        if (state.dead || state.investigating) continue;
        ++counters_.heartbeats_sent;
        const int node = static_cast<int>(i);
        // The ping is answered (or not) one Ethernet hop away. Daemon
        // events: heartbeats to an idle pod never keep Run() alive.
        simulator_->ScheduleDaemonAfter(
            config_.ethernet_latency, [this, node, epoch] {
                if (epoch != watchdog_epoch_) return;
                OnHeartbeatResult(
                    node, hosts_[static_cast<std::size_t>(node)]->responsive());
            });
    }
    simulator_->ScheduleDaemonAfter(config_.heartbeat_period, [this, epoch] {
        if (epoch == watchdog_epoch_) HeartbeatSweep();
    });
}

void HealthMonitor::OnHeartbeatResult(int node, bool responsive) {
    NodeState& state = nodes_[static_cast<std::size_t>(node)];
    if (responsive) {
        state.consecutive_misses = 0;
        return;
    }
    ++counters_.heartbeat_misses;
    ++state.consecutive_misses;
    if (state.consecutive_misses >= config_.heartbeat_miss_threshold &&
        CanSuspect(node)) {
        MarkSuspect(node);
    }
}

void HealthMonitor::OnTelemetry(const TelemetryEvent& event) {
    if (event.node < 0 ||
        event.node >= static_cast<int>(nodes_.size())) {
        return;
    }
    ++counters_.telemetry_events;
    NodeState& state = nodes_[static_cast<std::size_t>(event.node)];
    if (state.dead) return;
    if (IsCriticalTelemetry(event.kind)) {
        if (CanSuspect(event.node)) {
            MarkSuspect(event.node);
        } else {
            // Mid-investigation or cooldown. The publisher won't repeat
            // the event (hard faults are transition-latched) and the
            // host keeps answering heartbeats, so dropping it here
            // would hide the fault forever: park the suspicion and
            // retry once the hysteresis window clears.
            state.pending_critical = true;
            ScheduleCriticalRetry(event.node);
        }
        return;
    }
    if (state.investigating) return;
    // Burst detection with a sliding window: one CRC drop is routine,
    // a salvo is a failing component.
    state.event_times.push_back(event.timestamp);
    while (!state.event_times.empty() &&
           state.event_times.front() +
                   config_.telemetry_burst_window < event.timestamp) {
        state.event_times.pop_front();
    }
    if (static_cast<int>(state.event_times.size()) >=
            config_.telemetry_burst_threshold &&
        CanSuspect(event.node)) {
        MarkSuspect(event.node);
    }
}

bool HealthMonitor::CanSuspect(int node) const {
    const NodeState& state = nodes_[static_cast<std::size_t>(node)];
    if (state.dead || state.investigating) return false;
    if (state.has_concluded &&
        simulator_->Now() - state.last_concluded <
            config_.investigation_cooldown) {
        return false;  // hysteresis: just looked at this machine
    }
    return true;
}

void HealthMonitor::ScheduleCriticalRetry(int node) {
    NodeState& state = nodes_[static_cast<std::size_t>(node)];
    if (state.critical_retry_scheduled) return;
    state.critical_retry_scheduled = true;
    simulator_->ScheduleDaemonAfter(
        config_.investigation_cooldown, [this, node] {
            NodeState& st = nodes_[static_cast<std::size_t>(node)];
            st.critical_retry_scheduled = false;
            if (!st.pending_critical || st.dead) return;
            if (CanSuspect(node)) {
                MarkSuspect(node);
            } else {
                ScheduleCriticalRetry(node);
            }
        });
}

void HealthMonitor::MarkSuspect(int node) {
    NodeState& state = nodes_[static_cast<std::size_t>(node)];
    state.investigating = true;  // claims the node until the report lands
    state.consecutive_misses = 0;
    state.event_times.clear();
    // The investigation's health query observes any latched fault.
    state.pending_critical = false;
    pending_suspects_.push_back(node);
    LOG_INFO("health_monitor") << "node " << node << " suspect (watchdog)";
    if (flush_scheduled_) return;
    flush_scheduled_ = true;
    // Same-tick batching: a ping sweep that finds several dead machines
    // (a rack failure) files one investigation, not one per machine.
    simulator_->ScheduleAfter(0, [this] { FlushSuspects(); });
}

void HealthMonitor::FlushSuspects() {
    flush_scheduled_ = false;
    if (pending_suspects_.empty()) return;
    ++counters_.auto_investigations;
    std::vector<int> suspects;
    suspects.swap(pending_suspects_);
    Investigate(std::move(suspects), [](std::vector<MachineReport>) {});
}

}  // namespace catapult::mgmt
