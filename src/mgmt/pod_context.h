// PodContext: one pod's complete stack as a first-class object.
//
// The paper's deployment is 1,632 servers composed of 48-node 6x8-torus
// pods (§2); everything above the torus — mapping, health, scheduling,
// the ranking-service pool — is pod-scoped. This class is that scope
// made explicit: one fabric, its host servers, a Mapping Manager, a
// Health Monitor, a Failure Injector, a PodScheduler, a TelemetryBus
// and a ServicePool, all sharing one pod id that is threaded through
// node ids (the fabric's global node base), telemetry events and
// machine reports. A federation (service::FederationTestbed) owns 1..N
// of these on one simulator and fronts them with a
// service::FederatedDispatcher; the single-pod PodTestbed is now a thin
// wrapper over a 1-pod federation.
//
// The class lives in the mgmt namespace — it is management-plane API,
// the federation's unit of placement and failure — but compiles into
// catapult_service: it owns a ServicePool, which sits *above* the
// management plane in the link graph (service -> mgmt -> fabric), the
// same reason the TelemetryBus builds *below* it as catapult_telemetry.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fabric/catapult_fabric.h"
#include "host/host_server.h"
#include "mgmt/failure_injector.h"
#include "mgmt/health_forecaster.h"
#include "mgmt/health_monitor.h"
#include "mgmt/mapping_manager.h"
#include "mgmt/pod_scheduler.h"
#include "mgmt/telemetry_bus.h"
#include "obs/observability.h"
#include "service/ranking_service.h"
#include "service/service_pool.h"
#include "service/trace_replay.h"
#include "sim/simulator.h"

namespace catapult::mgmt {

class PodContext {
  public:
    struct Config {
        fabric::CatapultFabric::Config fabric;
        host::HostServer::Config host;
        /** Per-ring configuration (shared by every ring of the pool). */
        service::RankingService::Config service;
        /** Rings the scheduler places onto the pod. */
        int ring_count = 1;
        service::DispatchPolicy policy = service::DispatchPolicy::kLeastInFlight;
        /** Per-ring admission cap forwarded to the pool (0 = off). */
        int max_in_flight_per_ring = 0;
        std::uint64_t seed = 0xBED5EEDull;
        /** Threads per host pre-registered with the slot driver. */
        int driver_threads = 32;
        /** Health Monitor tuning (watchdog cadence, query timeout). */
        HealthMonitor::Config health;
        /**
         * Run the closed loop: telemetry bus attached, heartbeat
         * watchdog started, MachineReports fanned out to the pool and
         * the Mapping Manager. Off restores the pull-only plane where
         * Investigate / RecoverRing run only when called.
         */
        bool autonomic = true;
        /**
         * Run the predictive plane on top of the reactive one: the
         * HealthForecaster samples this pod's fault-signal trends and
         * publishes a health score on the pod's HealthScoreFeed, which
         * a FederatedDispatcher uses for score-weighted routing and
         * shed-before-failure. Requires `autonomic` (the forecaster
         * taps the watchdog and the telemetry bus); off leaves the
         * feed silent, so subscribers see a default-healthy pod.
         */
        bool predictive = true;
        /** Forecaster tuning (sampling cadence, weights, bands). */
        HealthForecaster::Config forecast;
        /**
         * Pod index within a federation. Unless the fabric config pins
         * them explicitly, the node base (global ids), fabric name
         * prefix, telemetry stamp and MachineReport stamp all derive
         * from it, so a federation's pods are distinguishable at every
         * layer.
         */
        int pod_id = 0;
        /**
         * Host-name prefix ("srv" / "p<k>.srv" when empty). A
         * federation building several contexts with one pod_id — ring
         * sub-shard slices — pins this so host names stay unique.
         */
        std::string host_name_prefix;
        /**
         * SimulatorGroup shard this pod's stack is pinned to, -1 when
         * the pod shares the classic single simulator. Informational:
         * the `simulator` passed to the constructor is already the
         * shard's; this records the pinning for logs and asserts.
         */
        int shard_index = -1;
        /**
         * This pod's observability shard (single-writer: the executor
         * running the pod's simulator shard). Wired through the ring
         * pool (per-document "doc"/"stage" spans) and the Health
         * Monitor ("fault" instants + FDR postmortem streaming). Null
         * = observability off; the pointee must outlive the pod.
         */
        obs::ShardObs* obs = nullptr;
    };

    /** Builds the whole pod on `simulator`; does not deploy the pool. */
    PodContext(sim::Simulator* simulator, Config config);

    PodContext(const PodContext&) = delete;
    PodContext& operator=(const PodContext&) = delete;

    /** Deploy every ring of the pool (`on_done(true)` when all up). */
    void Deploy(std::function<void(bool)> on_done);

    int pod_id() const { return config_.pod_id; }
    /** Group shard the pod is pinned to (-1 = shared simulator). */
    int shard_index() const { return config_.shard_index; }
    const Config& config() const { return config_; }

    sim::Simulator& simulator() { return *simulator_; }
    fabric::CatapultFabric& fabric() { return *fabric_; }
    host::HostServer& host(int node) { return *hosts_storage_[
        static_cast<std::size_t>(node)]; }
    std::vector<host::HostServer*>& hosts() { return hosts_; }
    MappingManager& mapping_manager() { return *mapping_manager_; }
    HealthMonitor& health_monitor() { return *health_monitor_; }
    FailureInjector& failure_injector() { return *failure_injector_; }
    PodScheduler& scheduler() { return *scheduler_; }
    TelemetryBus& telemetry() { return *telemetry_; }
    service::ServicePool& pool() { return *pool_; }

    /**
     * The pod's health-score feed. Always constructed (so a dispatcher
     * can subscribe unconditionally); silent unless the forecaster
     * runs, in which case subscribers see a default-healthy pod.
     */
    HealthScoreFeed& health_feed() { return *health_feed_; }
    HealthForecaster& forecaster() { return *forecaster_; }

    /**
     * Pod-level FDR trace archive: every ring of the pool records here
     * when `service.archive_traces` is on (trace ids are pod+ring
     * strided, so entries never collide). Null when archiving is off.
     */
    const service::TraceArchive* trace_archive() const {
        return trace_archive_.get();
    }

  private:
    Config config_;
    sim::Simulator* simulator_;
    std::unique_ptr<TelemetryBus> telemetry_;
    std::unique_ptr<fabric::CatapultFabric> fabric_;
    std::vector<std::unique_ptr<host::HostServer>> hosts_storage_;
    std::vector<host::HostServer*> hosts_;
    std::unique_ptr<MappingManager> mapping_manager_;
    std::unique_ptr<HealthMonitor> health_monitor_;
    std::unique_ptr<FailureInjector> failure_injector_;
    std::unique_ptr<PodScheduler> scheduler_;
    std::unique_ptr<service::TraceArchive> trace_archive_;
    std::unique_ptr<service::ServicePool> pool_;
    std::unique_ptr<HealthScoreFeed> health_feed_;
    std::unique_ptr<HealthForecaster> forecaster_;
};

}  // namespace catapult::mgmt
