#include "mgmt/pod_scheduler.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace catapult::mgmt {

PodScheduler::PodScheduler(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      occupied_(static_cast<std::size_t>(rows * cols), false) {
    assert(rows_ > 0 && cols_ > 0);
}

bool PodScheduler::InPod(int row, int head_col, int length) const {
    // A ring wraps east, so any head column works, but it cannot visit
    // more nodes than the row holds.
    return row >= 0 && row < rows_ && head_col >= 0 && head_col < cols_ &&
           length > 0 && length <= cols_;
}

bool PodScheduler::RegionFree(int row, int head_col, int length) const {
    if (!InPod(row, head_col, length)) return false;
    for (int k = 0; k < length; ++k) {
        const int col = (head_col + k) % cols_;
        if (occupied_[static_cast<std::size_t>(row * cols_ + col)]) {
            return false;
        }
    }
    return true;
}

bool PodScheduler::RowFree(int row) const {
    return RegionFree(row, 0, cols_);
}

void PodScheduler::Mark(const RingPlacement& placement, bool occupied) {
    for (int k = 0; k < placement.length; ++k) {
        const int col = (placement.head_col + k) % cols_;
        const std::size_t idx =
            static_cast<std::size_t>(placement.row * cols_ + col);
        assert(occupied_[idx] != occupied && "occupancy map corrupted");
        occupied_[idx] = occupied;
        occupied_nodes_ += occupied ? 1 : -1;
    }
}

RingPlacement PodScheduler::PlaceRing(int length) {
    for (int row = 0; row < rows_; ++row) {
        for (int head_col = 0; head_col < cols_; ++head_col) {
            if (RegionFree(row, head_col, length)) {
                return PlaceRingAt(row, head_col, length);
            }
        }
    }
    ++counters_.rejections;
    LOG_WARN("pod_scheduler")
        << "no free region for a ring of " << length << " nodes ("
        << free_nodes() << "/" << node_count() << " nodes free)";
    return RingPlacement{};
}

RingPlacement PodScheduler::PlaceRingAt(int row, int head_col, int length) {
    if (!RegionFree(row, head_col, length)) {
        ++counters_.rejections;
        LOG_WARN("pod_scheduler")
            << "rejected ring request at row " << row << " col " << head_col
            << " length " << length << " (overlap or out of pod)";
        return RingPlacement{};
    }
    RingPlacement placement{row, head_col, length};
    Mark(placement, true);
    grants_.push_back(placement);
    ++counters_.placements;
    LOG_INFO("pod_scheduler") << "granted ring: row " << row << " cols ["
                              << head_col << ".." << head_col + length - 1
                              << ") of " << cols_;
    return placement;
}

bool PodScheduler::Release(const RingPlacement& placement) {
    // Only an exact outstanding grant may be reclaimed: a misaligned
    // region could span several live grants and free nodes out from
    // under them.
    const auto it = std::find(grants_.begin(), grants_.end(), placement);
    if (it == grants_.end()) return false;
    grants_.erase(it);
    Mark(placement, false);
    ++counters_.releases;
    return true;
}

}  // namespace catapult::mgmt
