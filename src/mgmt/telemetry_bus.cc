#include "mgmt/telemetry_bus.h"

#include <cassert>

namespace catapult::mgmt {

const char* ToString(TelemetryKind kind) {
    switch (kind) {
      case TelemetryKind::kLinkCrcError: return "link_crc_error";
      case TelemetryKind::kLinkDown: return "link_down";
      case TelemetryKind::kDramEccFault: return "dram_ecc_fault";
      case TelemetryKind::kDramCalibrationLoss: return "dram_calibration_loss";
      case TelemetryKind::kSeuRoleCorruption: return "seu_role_corruption";
      case TelemetryKind::kTemperatureShutdown: return "temperature_shutdown";
      case TelemetryKind::kDmaStall: return "dma_stall";
      case TelemetryKind::kApplicationError: return "application_error";
    }
    return "?";
}

bool IsCriticalTelemetry(TelemetryKind kind) {
    switch (kind) {
      case TelemetryKind::kTemperatureShutdown:
      case TelemetryKind::kDramCalibrationLoss:
        return true;
      default:
        return false;
    }
}

void TelemetrySubscription::Reset() {
    if (bus_ != nullptr) bus_->Unsubscribe(id_);
    bus_ = nullptr;
    id_ = 0;
}

TelemetryBus::TelemetryBus(sim::Simulator* simulator, int pod_id)
    : simulator_(simulator), pod_id_(pod_id) {
    assert(simulator_ != nullptr);
}

void TelemetryBus::Publish(int node, TelemetryKind kind) {
    ++counters_.published;
    TelemetryEvent event;
    event.pod = pod_id_;
    event.node = node;
    event.kind = kind;
    event.timestamp = simulator_->Now();
    // Index-based walk: a subscriber callback may subscribe (growing the
    // vector) or publish again without invalidating this iteration.
    // Unsubscribing only nulls the slot, so indices stay stable.
    for (std::size_t i = 0; i < subscribers_.size(); ++i) {
        if (!subscribers_[i].fn) continue;
        ++counters_.delivered;
        subscribers_[i].fn(event);
    }
}

TelemetryBus::SubscriberId TelemetryBus::Subscribe(
    std::function<void(const TelemetryEvent&)> fn) {
    assert(fn != nullptr);
    const SubscriberId id = next_id_++;
    subscribers_.push_back(Subscriber{id, std::move(fn)});
    return id;
}

void TelemetryBus::Unsubscribe(SubscriberId id) {
    for (auto& subscriber : subscribers_) {
        if (subscriber.id == id) subscriber.fn = nullptr;
    }
}

int TelemetryBus::subscriber_count() const {
    int count = 0;
    for (const auto& subscriber : subscribers_) {
        if (subscriber.fn) ++count;
    }
    return count;
}

}  // namespace catapult::mgmt
