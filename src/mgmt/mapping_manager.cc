#include "mgmt/mapping_manager.h"

#include <cassert>
#include <iterator>
#include <memory>

#include "common/log.h"

namespace catapult::mgmt {

MappingManager::MappingManager(sim::Simulator* simulator,
                               fabric::CatapultFabric* fabric,
                               std::vector<host::HostServer*> hosts,
                               Config config)
    : simulator_(simulator),
      fabric_(fabric),
      hosts_(std::move(hosts)),
      config_(config) {
    assert(simulator_ != nullptr);
    assert(fabric_ != nullptr);
}

void MappingManager::Deploy(const ServiceSpec& spec,
                            std::function<void(bool)> on_done) {
    ++counters_.deployments;
    spec_ = spec;
    // The role map is cumulative across deployments: a multi-ring pool
    // deploys one spec per ring (serialized), and every ring's roles
    // must stay resolvable afterwards. A node being redeployed sheds
    // its old role; a role name being redeployed moves to its new node.
    for (const auto& role : spec_.roles) {
        for (auto it = role_to_node_.begin(); it != role_to_node_.end();) {
            it = it->second == role.node ? role_to_node_.erase(it)
                                         : std::next(it);
        }
    }
    for (const auto& role : spec_.roles) {
        role_to_node_[role.role_name] = role.node;
    }
    RebuildNodeIndex();
    LOG_INFO("mapping_manager") << "deploying " << spec_.service_name
                                << " across " << spec_.roles.size()
                                << " nodes";
    // Stage images into flash, then configure everything.
    if (config_.images_preinstalled) {
        for (const auto& role : spec_.roles) {
            fabric_->device(role.node).flash().InstallImage(
                fpga::FlashSlot::kApplication, role.image);
        }
        ConfigureAll(std::move(on_done));
        return;
    }
    // Sequential flash writes per node happen inside ReconfigureFpga.
    auto remaining = std::make_shared<int>(static_cast<int>(spec_.roles.size()));
    auto all_ok = std::make_shared<bool>(true);
    for (const auto& role : spec_.roles) {
        host::HostServer* host = hosts_[static_cast<std::size_t>(role.node)];
        simulator_->ScheduleAfter(
            config_.ethernet_latency,
            [this, host, image = role.image, remaining, all_ok,
             on_done]() mutable {
                host->ReconfigureFpga(
                    image, [this, remaining, all_ok, on_done](bool ok) {
                        *all_ok = *all_ok && ok;
                        if (--*remaining == 0) {
                            fabric_->InstallTorusRoutes();
                            ReleaseAllRxHalts();
                            on_done(*all_ok);
                        }
                    });
            });
    }
    if (spec_.roles.empty()) on_done(true);
}

void MappingManager::ConfigureAll(std::function<void(bool)> on_done) {
    auto remaining = std::make_shared<int>(static_cast<int>(spec_.roles.size()));
    auto all_ok = std::make_shared<bool>(true);
    if (spec_.roles.empty()) {
        on_done(true);
        return;
    }
    for (const auto& role : spec_.roles) {
        host::HostServer* host = hosts_[static_cast<std::size_t>(role.node)];
        simulator_->ScheduleAfter(
            config_.ethernet_latency,
            [this, host, remaining, all_ok, on_done]() mutable {
                host->ReconfigureFromFlash(
                    fpga::FlashSlot::kApplication,
                    [this, remaining, all_ok, on_done](bool ok) {
                        *all_ok = *all_ok && ok;
                        if (--*remaining == 0) {
                            // §3.4 ordering: routes + RX halt release only
                            // after every FPGA in the pipeline is up.
                            fabric_->InstallTorusRoutes();
                            ReleaseAllRxHalts();
                            on_done(*all_ok);
                        }
                    });
            });
    }
}

void MappingManager::ReconfigureInPlace(int node,
                                        std::function<void(bool)> on_done) {
    ++counters_.reconfigurations;
    host::HostServer* host = hosts_[static_cast<std::size_t>(node)];
    simulator_->ScheduleAfter(
        config_.ethernet_latency,
        [this, host, node, on_done = std::move(on_done)]() mutable {
            host->ReconfigureFromFlash(
                fpga::FlashSlot::kApplication,
                [this, node, on_done = std::move(on_done)](bool ok) {
                    if (ok) {
                        // Reinstall this node's routes and release its halt.
                        auto& table =
                            fabric_->shell(node).router().routing_table();
                        table.Clear();
                        fabric_->topology().BuildRoutingTable(
                            node, fabric_->node_base(), table);
                        fabric_->shell(node).ReleaseRxHalt();
                        ++counters_.rx_halt_releases;
                    }
                    on_done(ok);
                });
        });
}

void MappingManager::ReleaseAllRxHalts() {
    for (const auto& role : spec_.roles) {
        fabric_->shell(role.node).ReleaseRxHalt();
        ++counters_.rx_halt_releases;
    }
}

int MappingManager::NodeOfRole(const std::string& role_name) const {
    const auto it = role_to_node_.find(role_name);
    return it == role_to_node_.end() ? -1 : it->second;
}

std::string MappingManager::RoleAtNode(int node) const {
    if (node < 0 || node >= static_cast<int>(node_to_role_.size())) return {};
    return node_to_role_[static_cast<std::size_t>(node)];
}

void MappingManager::RebuildNodeIndex() {
    node_to_role_.clear();
    for (const auto& [role, n] : role_to_node_) {
        if (n < 0) continue;
        if (n >= static_cast<int>(node_to_role_.size())) {
            node_to_role_.resize(static_cast<std::size_t>(n) + 1);
        }
        node_to_role_[static_cast<std::size_t>(n)] = role;
    }
}

}  // namespace catapult::mgmt
