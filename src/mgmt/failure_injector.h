// Failure injection for resilience experiments.
//
// §3.5 reports the failures actually observed at scale: "transient
// phenomena, primarily machine reboots due to maintenance or other
// unresponsive services". This utility schedules those plus the fault
// classes the platform is designed to survive: surprise machine
// reboots, application hangs, cable defects, SEU storms, DRAM
// calibration failures and ungraceful (garbage-spraying)
// reconfigurations.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "fabric/catapult_fabric.h"
#include "host/host_server.h"
#include "sim/simulator.h"

namespace catapult::mgmt {

class FailureInjector {
  public:
    FailureInjector(sim::Simulator* simulator, fabric::CatapultFabric* fabric,
                    std::vector<host::HostServer*> hosts, Rng rng);

    FailureInjector(const FailureInjector&) = delete;
    FailureInjector& operator=(const FailureInjector&) = delete;

    /** Surprise maintenance reboot of `node` at `when`. */
    void ScheduleMachineReboot(int node, Time when);

    /**
     * Whole-pod blackout at `when`: every host crashes with its boot
     * path permanently broken (power/cooling domain loss). The §3.5
     * ladder ends in flag-for-manual-service for every node, so the
     * pod never returns — the federation's dispatcher must carry the
     * traffic on surviving pods.
     */
    void SchedulePodBlackout(Time when);

    /** Application hang: the role stops responding at `when`. */
    void ScheduleApplicationHang(int node, Time when);

    /** Cable goes bad at `when` (connector damage during service). */
    void ScheduleCableDefect(int node, shell::Port port, Time when);

    /** Raise the SEU rate on `node` by `factor` starting at `when`. */
    void ScheduleSeuStorm(int node, Time when, double upsets_per_second);

    /** DRAM DIMM loses calibration at `when`. */
    void ScheduleDramCalibrationFailure(int node, int channel, Time when);

    /** Ungraceful reconfiguration (no TX-Halt protocol) at `when`. */
    void ScheduleUngracefulReconfig(int node, Time when);

    /**
     * Cooling failure at `when`: the inlet air rises to
     * `inlet_celsius` (server exhaust with a dead fan) and the die
     * jumps to its steady-state temperature, crossing the 100 C rating
     * — the FPGA reports a temperature shutdown (§3.5).
     */
    void ScheduleThermalShutdown(int node, Time when,
                                 double inlet_celsius = 105.0);

    /**
     * SL3 link flap on `node`'s `port`: the lane loses lock at `when`
     * and relocks after `duration` (marginal cable / connector). While
     * down, arriving packets drop and publish link-down telemetry.
     */
    void ScheduleLinkFlap(int node, shell::Port port, Time when,
                          Time duration);

    /**
     * Background noise: schedule `count` random machine reboots
     * uniformly over [0, horizon] across all nodes.
     */
    void ScheduleRandomReboots(int count, Time horizon);

    /**
     * Staged degradation (the slow death the predictive health plane
     * exists to catch): starting at `when`, a thermal shutdown marches
     * across `nodes` every `interval` — a failing fan taking out one
     * server after another — with an SL3 link flap of `flap_duration`
     * alongside each (marginal cabling in the same hot aisle). The pod
     * sheds capacity over `nodes.size() * interval` instead of
     * instantly, so fault-event rates and recovery churn trend upward
     * long before the pod hard-fails.
     */
    void ScheduleDegradationRamp(const std::vector<int>& nodes, Time when,
                                 Time interval,
                                 Time flap_duration = Milliseconds(5));

    std::uint64_t injected_count() const { return injected_; }

  private:
    sim::Simulator* simulator_;
    fabric::CatapultFabric* fabric_;
    std::vector<host::HostServer*> hosts_;
    Rng rng_;
    std::uint64_t injected_ = 0;
};

}  // namespace catapult::mgmt
