#include "mgmt/failure_injector.h"

#include <cassert>

#include "common/log.h"

namespace catapult::mgmt {

FailureInjector::FailureInjector(sim::Simulator* simulator,
                                 fabric::CatapultFabric* fabric,
                                 std::vector<host::HostServer*> hosts,
                                 Rng rng)
    : simulator_(simulator),
      fabric_(fabric),
      hosts_(std::move(hosts)),
      rng_(rng) {
    assert(simulator_ != nullptr);
    assert(fabric_ != nullptr);
}

void FailureInjector::ScheduleMachineReboot(int node, Time when) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node] {
        hosts_[static_cast<std::size_t>(node)]->CrashAndReboot(
            "injected maintenance reboot");
    });
}

void FailureInjector::ScheduleApplicationHang(int node, Time when) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node] {
        LOG_WARN("inject") << "application hang on node " << node;
        fabric_->shell(node).FlagApplicationError();
    });
}

void FailureInjector::ScheduleCableDefect(int node, shell::Port port,
                                          Time when) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node, port] {
        LOG_WARN("inject") << "cable defect on node " << node << " port "
                           << shell::ToString(port);
        fabric_->InjectCableDefect(node, port);
    });
}

void FailureInjector::ScheduleSeuStorm(int node, Time when,
                                       double upsets_per_second) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node, upsets_per_second] {
        LOG_WARN("inject") << "SEU storm on node " << node << " ("
                           << upsets_per_second << "/s)";
        // Restart the scrubber with the elevated rate.
        auto& scrubber = fabric_->device(node).scrubber();
        scrubber.Stop();
        scrubber.set_upset_rate(upsets_per_second);
        scrubber.Start();
    });
}

void FailureInjector::ScheduleDramCalibrationFailure(int node, int channel,
                                                     Time when) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node, channel] {
        LOG_WARN("inject") << "DRAM calibration failure on node " << node
                           << " channel " << channel;
        fabric_->shell(node).dram(channel).set_calibrated(false);
    });
}

void FailureInjector::ScheduleUngracefulReconfig(int node, Time when) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node] {
        LOG_WARN("inject") << "ungraceful reconfiguration on node " << node;
        fabric_->shell(node).Reconfigure(fpga::FlashSlot::kApplication,
                                         /*graceful=*/false, [](bool) {});
    });
}

void FailureInjector::ScheduleRandomReboots(int count, Time horizon) {
    for (int i = 0; i < count; ++i) {
        const int node =
            static_cast<int>(rng_.NextBounded(
                static_cast<std::uint64_t>(fabric_->node_count())));
        const Time when = simulator_->Now() +
                          static_cast<Time>(rng_.NextDouble() *
                                            static_cast<double>(horizon));
        ScheduleMachineReboot(node, when);
    }
}

}  // namespace catapult::mgmt
