#include "mgmt/failure_injector.h"

#include <cassert>

#include "common/log.h"

namespace catapult::mgmt {

FailureInjector::FailureInjector(sim::Simulator* simulator,
                                 fabric::CatapultFabric* fabric,
                                 std::vector<host::HostServer*> hosts,
                                 Rng rng)
    : simulator_(simulator),
      fabric_(fabric),
      hosts_(std::move(hosts)),
      rng_(rng) {
    assert(simulator_ != nullptr);
    assert(fabric_ != nullptr);
}

void FailureInjector::ScheduleMachineReboot(int node, Time when) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node] {
        hosts_[static_cast<std::size_t>(node)]->CrashAndReboot(
            "injected maintenance reboot");
    });
}

void FailureInjector::SchedulePodBlackout(Time when) {
    ++injected_;
    simulator_->ScheduleAt(when, [this] {
        LOG_WARN("inject") << "pod blackout: " << hosts_.size()
                           << " hosts lost";
        for (std::size_t i = 0; i < hosts_.size(); ++i) {
            // Permanent: soft and hard reboots both fail, so the
            // Health Monitor's ladder flags every node for service.
            hosts_[i]->BreakBoot(/*soft_failures=*/1'000'000,
                                 /*permanent=*/true);
            hosts_[i]->CrashAndReboot("pod blackout");
            // The power domain takes the FPGAs with it: every shell's
            // links go dark the same instant (RX Halt engaged, §3.4),
            // so in-flight documents on the pod's rings are dropped
            // and surface as driver timeouts at their injectors — and
            // with no live host to release the halt, the pod stays
            // dark until manual service.
            fabric_->shell(static_cast<int>(i)).EngageRxHalt();
        }
    });
}

void FailureInjector::ScheduleApplicationHang(int node, Time when) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node] {
        LOG_WARN("inject") << "application hang on node " << node;
        fabric_->shell(node).FlagApplicationError();
    });
}

void FailureInjector::ScheduleCableDefect(int node, shell::Port port,
                                          Time when) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node, port] {
        LOG_WARN("inject") << "cable defect on node " << node << " port "
                           << shell::ToString(port);
        fabric_->InjectCableDefect(node, port);
    });
}

void FailureInjector::ScheduleSeuStorm(int node, Time when,
                                       double upsets_per_second) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node, upsets_per_second] {
        LOG_WARN("inject") << "SEU storm on node " << node << " ("
                           << upsets_per_second << "/s)";
        // Restart the scrubber with the elevated rate.
        auto& scrubber = fabric_->device(node).scrubber();
        scrubber.Stop();
        scrubber.set_upset_rate(upsets_per_second);
        scrubber.Start();
    });
}

void FailureInjector::ScheduleDramCalibrationFailure(int node, int channel,
                                                     Time when) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node, channel] {
        LOG_WARN("inject") << "DRAM calibration failure on node " << node
                           << " channel " << channel;
        fabric_->shell(node).dram(channel).set_calibrated(false);
    });
}

void FailureInjector::ScheduleUngracefulReconfig(int node, Time when) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node] {
        LOG_WARN("inject") << "ungraceful reconfiguration on node " << node;
        fabric_->shell(node).Reconfigure(fpga::FlashSlot::kApplication,
                                         /*graceful=*/false, [](bool) {});
    });
}

void FailureInjector::ScheduleThermalShutdown(int node, Time when,
                                              double inlet_celsius) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node, inlet_celsius] {
        LOG_WARN("inject") << "thermal shutdown on node " << node
                           << " (inlet " << inlet_celsius << " C)";
        auto& device = fabric_->device(node);
        auto& thermal = device.thermal_mutable();
        thermal.set_inlet_celsius(inlet_celsius);
        thermal.SnapToSteadyState(device.CurrentPowerWatts());
        // Re-reading the thermals detects the crossing and publishes
        // the temperature-shutdown event.
        device.UpdateThermals();
    });
}

void FailureInjector::ScheduleLinkFlap(int node, shell::Port port, Time when,
                                       Time duration) {
    ++injected_;
    simulator_->ScheduleAt(when, [this, node, port, duration] {
        shell::Sl3Link& link = fabric_->shell(node).link(port);
        if (link.defective()) {
            // Already down — a permanent cable defect or an overlapping
            // flap. Piling on adds nothing, and the relock below must
            // not heal the pre-existing condition.
            LOG_WARN("inject") << "link flap on node " << node << " port "
                               << shell::ToString(port)
                               << " skipped: link already defective";
            return;
        }
        LOG_WARN("inject") << "link flap on node " << node << " port "
                           << shell::ToString(port) << " for "
                           << FormatTime(duration);
        // Both cable ends drop, as InjectCableDefect models it.
        link.set_defective(true);
        if (link.peer() != nullptr) link.peer()->set_defective(true);
        // Known limit: a permanent defect injected on this same port
        // *inside* the flap window is cleared by this relock (the link
        // carries a single defective bit, not a depth count). Scenarios
        // must not stack contradictory injections on one port.
        simulator_->ScheduleAfter(duration, [this, node, port] {
            shell::Sl3Link& down = fabric_->shell(node).link(port);
            down.set_defective(false);
            if (down.peer() != nullptr) down.peer()->set_defective(false);
        });
    });
}

void FailureInjector::ScheduleDegradationRamp(const std::vector<int>& nodes,
                                              Time when, Time interval,
                                              Time flap_duration) {
    Time at = when;
    for (const int node : nodes) {
        ScheduleThermalShutdown(node, at);
        // The flap rides slightly behind the shutdown so its link-down
        // burst lands while the thermal investigation is in flight —
        // compounding fault pressure, exactly the trend signature the
        // forecaster windows over.
        ScheduleLinkFlap(node, shell::Port::kEast, at + interval / 4,
                         flap_duration);
        at += interval;
    }
}

void FailureInjector::ScheduleRandomReboots(int count, Time horizon) {
    for (int i = 0; i < count; ++i) {
        const int node =
            static_cast<int>(rng_.NextBounded(
                static_cast<std::uint64_t>(fabric_->node_count())));
        const Time when = simulator_->Now() +
                          static_cast<Time>(rng_.NextDouble() *
                                            static_cast<double>(horizon));
        ScheduleMachineReboot(node, when);
    }
}

}  // namespace catapult::mgmt
