#include "fabric/torus_topology.h"

#include <cassert>
#include <cstdlib>

namespace catapult::fabric {

using shell::Port;

TorusTopology::TorusTopology(int rows, int cols) : rows_(rows), cols_(cols) {
    assert(rows_ > 0 && cols_ > 0);
}

TorusCoord TorusTopology::CoordOf(int index) const {
    assert(index >= 0 && index < node_count());
    return TorusCoord{index / cols_, index % cols_};
}

int TorusTopology::IndexOf(TorusCoord coord) const {
    assert(coord.row >= 0 && coord.row < rows_);
    assert(coord.col >= 0 && coord.col < cols_);
    return coord.row * cols_ + coord.col;
}

int TorusTopology::NeighborOf(int index, Port port) const {
    TorusCoord c = CoordOf(index);
    switch (port) {
      case Port::kNorth:
        c.row = (c.row + rows_ - 1) % rows_;
        break;
      case Port::kSouth:
        c.row = (c.row + 1) % rows_;
        break;
      case Port::kEast:
        c.col = (c.col + 1) % cols_;
        break;
      case Port::kWest:
        c.col = (c.col + cols_ - 1) % cols_;
        break;
      default:
        assert(false && "not a torus port");
    }
    return IndexOf(c);
}

namespace {

/**
 * Signed shortest displacement from a to b on a ring of size n:
 * positive means stepping in the increasing direction.
 */
int RingDelta(int a, int b, int n) {
    int forward = (b - a + n) % n;
    const int backward = forward - n;  // negative
    return forward <= -backward ? forward : backward;
}

}  // namespace

Port TorusTopology::NextHop(int from, int to) const {
    assert(from != to);
    const TorusCoord cf = CoordOf(from);
    const TorusCoord ct = CoordOf(to);
    // Dimension order: resolve the column (east/west) dimension first.
    const int dcol = RingDelta(cf.col, ct.col, cols_);
    if (dcol != 0) return dcol > 0 ? Port::kEast : Port::kWest;
    const int drow = RingDelta(cf.row, ct.row, rows_);
    assert(drow != 0);
    return drow > 0 ? Port::kSouth : Port::kNorth;
}

int TorusTopology::HopCount(int from, int to) const {
    if (from == to) return 0;
    const TorusCoord cf = CoordOf(from);
    const TorusCoord ct = CoordOf(to);
    return std::abs(RingDelta(cf.col, ct.col, cols_)) +
           std::abs(RingDelta(cf.row, ct.row, rows_));
}

void TorusTopology::BuildRoutingTable(int node, shell::NodeId node_base,
                                      shell::RoutingTable& table) const {
    for (int dest = 0; dest < node_count(); ++dest) {
        if (dest == node) continue;
        table.SetRoute(node_base + static_cast<shell::NodeId>(dest),
                       NextHop(node, dest));
    }
}

std::vector<int> TorusTopology::RingAlongRow(int start, int length) const {
    assert(length <= cols_);
    std::vector<int> ring;
    ring.reserve(static_cast<std::size_t>(length));
    const TorusCoord c = CoordOf(start);
    for (int i = 0; i < length; ++i) {
        ring.push_back(IndexOf(TorusCoord{c.row, (c.col + i) % cols_}));
    }
    return ring;
}

}  // namespace catapult::fabric
