// Pod-level fabric builder: devices, shells, cabling, defect injection.
//
// A CatapultFabric instantiates one pod (48 FPGAs by default), wires the
// SL3 links into the 6x8 torus through modelled cable assemblies, and
// installs dimension-order routing tables. Deployment statistics from
// §2.3 — 0.4% card hardware failures and 0.03% defective cable links at
// integration — are injectable through the config to reproduce the
// deployment experiment.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fabric/torus_topology.h"
#include "fpga/fpga_device.h"
#include "shell/shell.h"
#include "sim/simulator.h"

namespace catapult::fabric {

/** One cable assembly link between two (node, port) endpoints. */
struct CableLink {
    int node_a = 0;
    shell::Port port_a = shell::Port::kEast;
    int node_b = 0;
    shell::Port port_b = shell::Port::kWest;
    bool defective = false;
};

class CatapultFabric {
  public:
    struct Config {
        TorusTopology topology;           ///< Default 6x8.
        int pod_id = 0;                   ///< Pod index within a federation.
        shell::NodeId node_base = 0;      ///< Global id of pod-local node 0.
        std::string name_prefix = "pod0";
        /** Probability a card fails at manufacture/integration (§2.3). */
        double card_failure_rate = 0.0;
        /** Probability an individual cable link is defective (§2.3). */
        double cable_defect_rate = 0.0;
        fpga::FpgaDevice::Config device;
        shell::Shell::Config shell;
    };

    CatapultFabric(sim::Simulator* simulator, Rng rng, Config config);
    CatapultFabric(sim::Simulator* simulator, Rng rng)
        : CatapultFabric(simulator, rng, Config()) {}

    CatapultFabric(const CatapultFabric&) = delete;
    CatapultFabric& operator=(const CatapultFabric&) = delete;

    const TorusTopology& topology() const { return config_.topology; }
    int node_count() const { return config_.topology.node_count(); }
    int pod_id() const { return config_.pod_id; }
    shell::NodeId node_base() const { return config_.node_base; }

    /** Global node id of pod-local index `i`. */
    shell::NodeId GlobalId(int i) const {
        return config_.node_base + static_cast<shell::NodeId>(i);
    }

    shell::Shell& shell(int i) { return *shells_[static_cast<std::size_t>(i)]; }
    const shell::Shell& shell(int i) const {
        return *shells_[static_cast<std::size_t>(i)];
    }
    fpga::FpgaDevice& device(int i) {
        return *devices_[static_cast<std::size_t>(i)];
    }

    const std::vector<CableLink>& cables() const { return cables_; }

    /** Count of cards that failed at integration. */
    int failed_cards() const { return failed_cards_; }
    /** Count of cable links found defective at integration. */
    int defective_links() const { return defective_links_; }

    /**
     * Install dimension-order routing tables into every shell (the
     * Mapping Manager's default policy).
     */
    void InstallTorusRoutes();

    /** Mark one cable defective at run time (failure injection). */
    void InjectCableDefect(int node, shell::Port port);

    /**
     * Wire every shell and FPGA device into the health plane: fault
     * events publish onto `bus` attributed to pod-local node indices.
     */
    void AttachTelemetry(mgmt::TelemetryBus* bus);

  private:
    void Build(Rng& rng);

    sim::Simulator* simulator_;
    Config config_;
    std::vector<std::unique_ptr<fpga::FpgaDevice>> devices_;
    std::vector<std::unique_ptr<shell::Shell>> shells_;
    std::vector<CableLink> cables_;
    int failed_cards_ = 0;
    int defective_links_ = 0;
};

}  // namespace catapult::fabric
