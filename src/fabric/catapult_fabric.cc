#include "fabric/catapult_fabric.h"

#include <cassert>

#include "common/log.h"

namespace catapult::fabric {

using shell::Port;

CatapultFabric::CatapultFabric(sim::Simulator* simulator, Rng rng,
                               Config config)
    : simulator_(simulator), config_(std::move(config)) {
    assert(simulator_ != nullptr);
    Build(rng);
}

void CatapultFabric::Build(Rng& rng) {
    const int n = config_.topology.node_count();
    devices_.reserve(static_cast<std::size_t>(n));
    shells_.reserve(static_cast<std::size_t>(n));

    for (int i = 0; i < n; ++i) {
        const std::string name =
            config_.name_prefix + ".fpga" + std::to_string(i);
        devices_.push_back(std::make_unique<fpga::FpgaDevice>(
            simulator_, name, rng.Fork(), config_.device));
        shells_.push_back(std::make_unique<shell::Shell>(
            simulator_, GlobalId(i), name, devices_.back().get(), rng.Fork(),
            config_.shell));
        if (rng.Chance(config_.card_failure_rate)) {
            devices_.back()->ForceFail("integration-time card failure");
            ++failed_cards_;
        }
    }

    // Wire the torus. Each node owns the connection to its east and
    // south neighbours, so every physical cable appears exactly once.
    for (int i = 0; i < n; ++i) {
        for (const Port port : {Port::kEast, Port::kSouth}) {
            const int j = config_.topology.NeighborOf(i, port);
            // A 1-wide dimension (ring-slice fabrics are 1x8) folds a
            // node onto itself; routing never takes that dimension, so
            // skip the degenerate self-cable instead of wiring a shell
            // link back into its own node.
            if (j == i) continue;
            const Port far = shell::Opposite(port);
            CableLink cable{i, port, j, far, false};
            if (rng.Chance(config_.cable_defect_rate)) {
                cable.defective = true;
                ++defective_links_;
            }
            shells_[static_cast<std::size_t>(i)]->link(port).ConnectTo(
                &shells_[static_cast<std::size_t>(j)]->link(far));
            if (cable.defective) {
                shells_[static_cast<std::size_t>(i)]->link(port).set_defective(true);
                shells_[static_cast<std::size_t>(j)]->link(far).set_defective(true);
            }
            shells_[static_cast<std::size_t>(i)]->SetNeighborId(port, GlobalId(j));
            shells_[static_cast<std::size_t>(j)]->SetNeighborId(far, GlobalId(i));
            cables_.push_back(cable);
        }
    }
    LOG_INFO("fabric") << config_.name_prefix << ": built " << n
                       << " nodes, " << cables_.size() << " cables ("
                       << failed_cards_ << " failed cards, "
                       << defective_links_ << " defective links)";
}

void CatapultFabric::InstallTorusRoutes() {
    const int n = config_.topology.node_count();
    for (int i = 0; i < n; ++i) {
        auto& table = shells_[static_cast<std::size_t>(i)]->router().routing_table();
        table.Clear();
        config_.topology.BuildRoutingTable(i, config_.node_base, table);
    }
}

void CatapultFabric::InjectCableDefect(int node, Port port) {
    auto& near = shell(node).link(port);
    near.set_defective(true);
    if (near.peer() != nullptr) near.peer()->set_defective(true);
    ++defective_links_;
}

void CatapultFabric::AttachTelemetry(mgmt::TelemetryBus* bus) {
    for (int i = 0; i < node_count(); ++i) {
        shells_[static_cast<std::size_t>(i)]->AttachTelemetry(bus, i);
        devices_[static_cast<std::size_t>(i)]->AttachTelemetry(bus, i);
    }
}

}  // namespace catapult::fabric
