// 6x8 two-dimensional torus topology (§2.2).
//
// Each pod of 48 half-width 1U servers carries one FPGA per server,
// wired into a 6x8 torus over SAS cables. This class maps node indices
// to torus coordinates, enumerates neighbour relations, and generates
// the static dimension-order routing tables the Mapping Manager installs
// into each shell.

#pragma once

#include <cstdint>
#include <vector>

#include "shell/packet.h"
#include "shell/routing_table.h"

namespace catapult::fabric {

/** Coordinates within a pod torus. */
struct TorusCoord {
    int row = 0;  ///< 0 .. rows-1 (north/south dimension).
    int col = 0;  ///< 0 .. cols-1 (east/west dimension).

    bool operator==(const TorusCoord&) const = default;
};

class TorusTopology {
  public:
    /** The Catapult pod arrangement: 6 rows x 8 columns = 48 FPGAs. */
    TorusTopology() : TorusTopology(6, 8) {}
    TorusTopology(int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int node_count() const { return rows_ * cols_; }

    /** Pod-local index <-> coordinates. */
    TorusCoord CoordOf(int index) const;
    int IndexOf(TorusCoord coord) const;

    /** Pod-local index of the neighbour out of `port` (with wraparound). */
    int NeighborOf(int index, shell::Port port) const;

    /**
     * Dimension-order route: next hop port from `from` toward `to`,
     * resolving east/west first, then north/south, taking the shorter
     * wrap direction. `from` must differ from `to`.
     */
    shell::Port NextHop(int from, int to) const;

    /** Hop count of the dimension-order route. */
    int HopCount(int from, int to) const;

    /**
     * Build the full routing table for `node`: one entry per other node
     * in the pod, mapping pod-local destination indices offset by
     * `node_base` to output ports.
     */
    void BuildRoutingTable(int node, shell::NodeId node_base,
                           shell::RoutingTable& table) const;

    /**
     * Neighbour list for a ring embedding: the ranking pipeline maps
     * onto "rings of eight FPGAs on one dimension of the torus" (§4).
     * Returns the pod-local indices of a ring of `length` nodes along
     * the column dimension starting at `start`.
     */
    std::vector<int> RingAlongRow(int start, int length) const;

  private:
    int rows_;
    int cols_;
};

}  // namespace catapult::fabric
