#include "service/ranking_service.h"

#include <cassert>
#include <cstring>

#include "common/log.h"
#include "service/stage_role.h"

namespace catapult::service {

using rank::PipelineStage;

namespace {

/** Table 1: FPGA area usage and clock frequencies per ranking stage. */
struct StageSynthesis {
    fpga::Utilization area;
    double clock_mhz;
};

StageSynthesis Table1(PipelineStage stage) {
    switch (stage) {
      case PipelineStage::kFeatureExtraction: return {{74, 49, 12}, 150};
      case PipelineStage::kFfe0: return {{86, 50, 29}, 125};
      case PipelineStage::kFfe1: return {{86, 50, 29}, 125};
      case PipelineStage::kCompression: return {{20, 64, 0}, 180};
      case PipelineStage::kScoring0: return {{47, 88, 0}, 166};
      case PipelineStage::kScoring1: return {{47, 88, 0}, 166};
      case PipelineStage::kScoring2: return {{48, 90, 1}, 166};
      case PipelineStage::kSpare: return {{10, 15, 0}, 175};
    }
    return {{0, 0, 0}, 0};
}

}  // namespace

fpga::Bitstream StageBitstream(PipelineStage stage) {
    const StageSynthesis synth = Table1(stage);
    return fpga::MakeBitstream(
        0xB175000 + static_cast<std::uint64_t>(stage),
        std::string("rank.") + ToString(stage), synth.area,
        Frequency::MHz(synth.clock_mhz));
}

RankingService::RankingService(sim::Simulator* simulator,
                               fabric::CatapultFabric* fabric,
                               std::vector<host::HostServer*> hosts,
                               mgmt::MappingManager* mapping_manager,
                               mgmt::RingPlacement placement, Config config)
    : simulator_(simulator),
      fabric_(fabric),
      hosts_(std::move(hosts)),
      mapping_manager_(mapping_manager),
      placement_(placement),
      config_(std::move(config)),
      models_(config_.models),
      queue_manager_(config_.queue_manager),
      trace_archive_(config_.trace_archive_capacity),
      next_trace_id_(config_.trace_id_base + 1) {
    assert(simulator_ != nullptr && fabric_ != nullptr);
    assert(mapping_manager_ != nullptr);
    assert(placement_.valid() && placement_.length == kRingLength &&
           "ring placement must be a PodScheduler grant of kRingLength nodes");

    const auto& topology = fabric_->topology();
    const int start = topology.IndexOf(
        fabric::TorusCoord{placement_.row, placement_.head_col});
    const auto ring = topology.RingAlongRow(start, kRingLength);
    for (int i = 0; i < kRingLength; ++i) {
        ring_nodes_[static_cast<std::size_t>(i)] = ring[static_cast<std::size_t>(i)];
        stage_at_[static_cast<std::size_t>(i)] = static_cast<PipelineStage>(i);
    }
    BuildRoles();
}

RankingService::~RankingService() {
    for (const auto& role : roles_) {
        fabric_->shell(ring_nodes_[static_cast<std::size_t>(role->ring_index())])
            .SetRole(nullptr);
    }
}

void RankingService::BuildRoles() {
    for (const auto& role : roles_) {
        fabric_->shell(ring_nodes_[static_cast<std::size_t>(role->ring_index())])
            .SetRole(nullptr);
    }
    roles_.clear();
    // The rebuilt head role starts with empty DRAM queues (its FPGA was
    // just reconfigured), so the shared Queue Manager's policy state
    // must restart too — stale entries would dispatch trace ids whose
    // packets died with the old role. The orphaned documents surface as
    // host timeouts (§3.2), which is the failover signal upstream
    // layers already handle.
    queue_manager_.Reset();
    for (int i = 0; i < kRingLength; ++i) {
        shell::Shell& shell =
            fabric_->shell(ring_nodes_[static_cast<std::size_t>(i)]);
        roles_.push_back(std::make_unique<StageRole>(
            this, simulator_, &shell, stage_at_[static_cast<std::size_t>(i)], i));
        shell.SetRole(roles_.back().get());
    }
}

void RankingService::Deploy(std::function<void(bool)> on_done) {
    mgmt::ServiceSpec spec;
    spec.service_name = config_.service_name;
    for (int i = 0; i < kRingLength; ++i) {
        mgmt::RoleAssignment assignment;
        assignment.role_name =
            config_.service_name + "/rank." +
            ToString(stage_at_[static_cast<std::size_t>(i)]);
        assignment.image = StageBitstream(stage_at_[static_cast<std::size_t>(i)]);
        assignment.node = ring_nodes_[static_cast<std::size_t>(i)];
        spec.roles.push_back(std::move(assignment));
    }
    // Warm the default model so reload times are defined at first use.
    DefaultModel();
    mapping_manager_->Deploy(spec, std::move(on_done));
}

const rank::Model& RankingService::DefaultModel() {
    return models_.GetOrGenerate(0, config_.model_seed);
}

rank::QueueManager& RankingService::queue_manager() { return queue_manager_; }

DocContext* RankingService::FindContext(std::uint64_t trace_id) {
    const auto it = in_flight_.find(trace_id);
    return it == in_flight_.end() ? nullptr : &it->second;
}

void RankingService::SetObservability(obs::ShardObs* obs) {
    obs_ = obs;
    obs_doc_latency_us_ =
        obs == nullptr ? nullptr
                       : obs->registry.histogram("pod.doc_latency_us");
}

rank::RankingFunction& RankingService::FunctionFor(std::uint32_t model_id) {
    auto it = functions_.find(model_id);
    if (it == functions_.end()) {
        const rank::Model& model =
            models_.GetOrGenerate(model_id, config_.model_seed);
        it = functions_
                 .emplace(model_id,
                          std::make_unique<rank::RankingFunction>(&model))
                 .first;
    }
    return *it->second;
}

int RankingService::RingIndexOf(PipelineStage stage) const {
    for (int i = 0; i < kRingLength; ++i) {
        if (stage_at_[static_cast<std::size_t>(i)] == stage) return i;
    }
    return -1;
}

Time RankingService::StageServiceTime(PipelineStage stage,
                                      const rank::CompressedRequest& request,
                                      std::uint32_t model_id) {
    const rank::Model& model =
        models_.GetOrGenerate(model_id, config_.model_seed);
    return StageServiceTimeFor(stage, request, model, FunctionFor(model_id),
                               config_.fe_timing);
}

Bytes RankingService::StageOutputBytes(PipelineStage stage,
                                       std::uint32_t model_id) {
    const rank::Model& model =
        models_.GetOrGenerate(model_id, config_.model_seed);
    switch (stage) {
      case PipelineStage::kFeatureExtraction:
        // Non-zero dynamic features + software features, ~6 B apiece
        // (id + value); a fraction of the 4,484-feature space fires.
        return 6 * 1'024;
      case PipelineStage::kFfe0:
      case PipelineStage::kFfe1:
        // Features plus computed FFE outputs/metafeatures.
        return 8 * 1'024;
      case PipelineStage::kCompression:
      case PipelineStage::kScoring0:
      case PipelineStage::kScoring1:
        // The compressed operand set the scoring engines consume.
        return model.compression().CompressedPayloadBytes();
      default:
        return 64;
    }
}

host::SendStatus RankingService::Inject(
    int ring_index, int thread, const rank::CompressedRequest& request,
    std::function<void(const ScoreResult&)> on_complete) {
    host::HostServer* server = host(ring_index);
    const int slot = server->driver().SlotFor(thread);
    return InjectOnSlot(ring_index, slot, request, std::move(on_complete));
}

host::SendStatus RankingService::InjectOnSlot(
    int ring_index, int slot, const rank::CompressedRequest& request,
    std::function<void(const ScoreResult&)> on_complete) {
    host::HostServer* server = host(ring_index);
    if (!server->responsive()) return host::SendStatus::kTimeout;

    const std::uint64_t trace_id = next_trace_id_++;
    DocContext ctx;
    ctx.request = request;
    ctx.injector = fabric_->GlobalId(RingNode(ring_index));
    ctx.slot = slot;
    ctx.injected_at = simulator_->Now();
    ctx.on_complete = std::move(on_complete);
    if (config_.compute_scores) {
        ctx.store = std::make_unique<rank::FeatureStore>();
    }
    if (obs_ != nullptr && obs_->tracing() &&
        request.query.obs_trace != 0) {
        ctx.obs_trace = request.query.obs_trace;
        ctx.obs_parent = request.query.obs_parent;
        ctx.obs_span = obs_->tracer.NextSpanId();
    }

    auto packet = shell::MakePacket(
        shell::PacketType::kScoringRequest, ctx.injector,
        fabric_->GlobalId(RingNode(RingIndexOf(PipelineStage::kFeatureExtraction))),
        request.wire_bytes > 0 ? request.wire_bytes : request.EncodedSize(),
        trace_id);

    if (server->driver().SlotBusy(slot)) {
        in_flight_.erase(trace_id);
        return host::SendStatus::kSlotBusy;
    }
    in_flight_.emplace(trace_id, std::move(ctx));
    ++counters_.injected;

    // The injecting thread first runs the document-conversion software
    // (§4) before filling its slot.
    simulator_->ScheduleAfter(
        config_.injection_overhead,
        [this, server, slot, trace_id, packet = std::move(packet)]() mutable {
            const auto status = server->driver().Send(
                slot, std::move(packet),
                [this, trace_id](host::SendStatus send_status,
                                 shell::PacketPtr response) {
                    if (send_status == host::SendStatus::kOk) {
                        OnResponse(trace_id, true, 0.0f, std::move(response));
                    } else {
                        CompleteTimeout(trace_id);
                    }
                });
            if (status != host::SendStatus::kOk) CompleteTimeout(trace_id);
        });
    return host::SendStatus::kOk;
}

void RankingService::OnResponse(std::uint64_t trace_id, bool ok, float score,
                                shell::PacketPtr packet) {
    (void)score;
    (void)packet;
    const auto it = in_flight_.find(trace_id);
    if (it == in_flight_.end()) return;
    DocContext& ctx = it->second;
    ScoreResult result;
    result.ok = ok;
    result.trace_id = trace_id;
    result.score = ctx.final_score;
    result.latency = simulator_->Now() - ctx.injected_at;
    ++counters_.completed;
    if (obs_doc_latency_us_ != nullptr) {
        obs_doc_latency_us_->ObserveLatency(result.latency);
    }
    if (ctx.obs_span != 0) {
        // The score's DMA landing, then the whole document journey —
        // keyed by the FDR-visible trace id so recorder records join
        // this span in the stitched timeline.
        obs_->tracer.Instant("dma_response", ctx.obs_trace, ctx.obs_span,
                             trace_id, simulator_->Now(), ctx.slot, ok ? 1 : 0);
        obs_->tracer.Span("doc", ctx.obs_trace, ctx.obs_span, ctx.obs_parent,
                          trace_id, ctx.injected_at, simulator_->Now(),
                          ok ? 1 : 0, ctx.slot);
    }
    if (config_.archive_traces) {
        ArchivedTrace trace;
        trace.request = ctx.request;
        trace.score = ctx.final_score;
        trace.scored = ctx.store != nullptr;
        TraceArchive& archive = config_.shared_archive != nullptr
                                    ? *config_.shared_archive
                                    : trace_archive_;
        archive.Record(trace_id, std::move(trace));
    }
    auto cb = std::move(ctx.on_complete);
    in_flight_.erase(it);
    if (cb) cb(result);
}

void RankingService::CompleteTimeout(std::uint64_t trace_id) {
    const auto it = in_flight_.find(trace_id);
    if (it == in_flight_.end()) return;
    ScoreResult result;
    result.ok = false;
    result.trace_id = trace_id;
    result.latency = simulator_->Now() - it->second.injected_at;
    ++counters_.timeouts;
    if (it->second.obs_span != 0) {
        obs_->tracer.Span("doc", it->second.obs_trace, it->second.obs_span,
                          it->second.obs_parent, trace_id,
                          it->second.injected_at, simulator_->Now(), 0,
                          it->second.slot);
    }
    auto cb = std::move(it->second.on_complete);
    in_flight_.erase(it);
    if (cb) cb(result);
}

void RankingService::RotateRingAround(int failed_ring_index,
                                      std::function<void(bool)> on_done) {
    // §4.2: "The eighth FPGA is a spare which allows the Service Manager
    // to rotate the ring upon a machine failure and keep the ranking
    // pipeline alive." The spare absorbs the failed position's stage;
    // the failed node becomes the (dead) spare.
    const int spare_index = RingIndexOf(PipelineStage::kSpare);
    if (spare_index < 0 || failed_ring_index == spare_index) {
        on_done(false);
        return;
    }
    std::swap(stage_at_[static_cast<std::size_t>(failed_ring_index)],
              stage_at_[static_cast<std::size_t>(spare_index)]);
    LOG_INFO("service_manager")
        << "ring rotated: stage "
        << ToString(stage_at_[static_cast<std::size_t>(spare_index)])
        << " moved from ring position " << failed_ring_index << " to "
        << spare_index;
    BuildRoles();
    Deploy(std::move(on_done));
}

void RankingService::BumpModelReloads() { ++counters_.model_reloads; }

}  // namespace catapult::service
