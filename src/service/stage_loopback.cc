#include "service/stage_loopback.h"

#include <cassert>
#include <deque>

namespace catapult::service {

/**
 * Role hosting the stage under test: serves one document at a time at
 * the stage's service rate and reflects a response to the injector.
 */
class StageLoopback::LoopRole : public shell::Role {
  public:
    LoopRole(StageLoopback* rig, sim::Simulator* simulator,
             shell::Shell* shell)
        : rig_(rig), simulator_(simulator), shell_(shell) {}

    void OnPacket(shell::PacketPtr packet) override {
        if (packet->type != shell::PacketType::kScoringRequest) return;
        queue_.push_back(std::move(packet));
        Pump();
    }

    std::string RoleName() const override {
        return std::string("loopback.") + ToString(rig_->config_.stage);
    }

  private:
    void Pump() {
        if (busy_ || queue_.empty()) return;
        busy_ = true;
        shell::PacketPtr packet = std::move(queue_.front());
        queue_.pop_front();
        // Service time derives from the injected document's tuple count
        // (stashed in the packet payload by the rig).
        rank::CompressedRequest request;
        request.tuple_count = static_cast<std::uint32_t>(packet->payload);
        const Time service = StageServiceTimeFor(
            rig_->config_.stage, request, *rig_->model_, *rig_->function_,
            rig_->config_.fe_timing);
        simulator_->ScheduleAfter(service, [this, packet] {
            auto response = shell::MakePacket(
                shell::PacketType::kScoringResponse, shell_->node(),
                packet->source, 64, packet->trace_id);
            response->slot = packet->slot;
            shell_->SendFromRole(response);
            busy_ = false;
            Pump();
        });
    }

    StageLoopback* rig_;
    sim::Simulator* simulator_;
    shell::Shell* shell_;
    std::deque<shell::PacketPtr> queue_;
    bool busy_ = false;
};

StageLoopback::StageLoopback(Config config)
    : config_(config), generator_(config.corpus_seed, config.corpus) {
    Rng rng(config_.model_seed ^ 0x10093ACCull);

    // Two-node micro-fabric (1x2 "torus"): node 0 hosts the injecting
    // server; the stage role sits at node 0 in PCIe mode, node 1 behind
    // the loopback cable in SL3 mode.
    fabric::CatapultFabric::Config fabric_config;
    fabric_config.topology = fabric::TorusTopology(1, 2);
    fabric_config.name_prefix = "loopback";
    fabric_ = std::make_unique<fabric::CatapultFabric>(&simulator_, rng.Fork(),
                                                       fabric_config);
    fabric_->InstallTorusRoutes();

    host_ = std::make_unique<host::HostServer>(&simulator_, "loopback.host",
                                               &fabric_->shell(0));

    model_ = rank::Model::Generate(0, config_.model_seed, config_.model);
    function_ = std::make_unique<rank::RankingFunction>(model_.get());

    const int role_node = config_.via_sl3 ? 1 : 0;
    role_ = std::make_unique<LoopRole>(this, &simulator_,
                                       &fabric_->shell(role_node));
    fabric_->shell(role_node).SetRole(role_.get());
    fabric_->shell(0).ReleaseRxHalt();
    fabric_->shell(1).ReleaseRxHalt();

    host_->driver().AssignThreads(
        std::max(1, std::min(config_.threads, shell::kDmaSlotCount)));
}

StageLoopback::~StageLoopback() = default;

StageLoopback::Result StageLoopback::Run() {
    result_ = Result{};
    first_send_ = simulator_.Now();
    last_completion_ = first_send_;
    for (int t = 0; t < config_.threads; ++t) {
        SendNext(t, config_.documents_per_thread);
    }
    simulator_.Run();
    const Time elapsed = last_completion_ - first_send_;
    result_.documents_per_second =
        elapsed > 0 ? static_cast<double>(result_.completed) / ToSeconds(elapsed)
                    : 0.0;
    return result_;
}

void StageLoopback::SendNext(int thread, int remaining) {
    if (remaining <= 0) return;
    const rank::CompressedRequest request = generator_.Next();
    const int role_node = config_.via_sl3 ? 1 : 0;
    auto packet = shell::MakePacket(shell::PacketType::kScoringRequest,
                                    fabric_->GlobalId(0),
                                    fabric_->GlobalId(role_node),
                                    request.wire_bytes, request.doc_id + 1);
    packet->payload = request.tuple_count;
    const Time sent = simulator_.Now();
    const int slot = host_->driver().SlotFor(thread);
    host_->driver().Send(
        slot, std::move(packet),
        [this, thread, remaining, sent](host::SendStatus status,
                                        shell::PacketPtr) {
            if (status == host::SendStatus::kOk) {
                ++result_.completed;
                result_.latency_us.Add(
                    ToMicroseconds(simulator_.Now() - sent));
            }
            last_completion_ = simulator_.Now();
            SendNext(thread, remaining - 1);
        });
}

}  // namespace catapult::service
