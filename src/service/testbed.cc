#include "service/testbed.h"

namespace catapult::service {

PodTestbed::PodTestbed(Config config) : config_(std::move(config)) {
    Rng rng(config_.seed);
    telemetry_ = std::make_unique<mgmt::TelemetryBus>(&simulator_);
    fabric_ = std::make_unique<fabric::CatapultFabric>(&simulator_, rng.Fork(),
                                                       config_.fabric);
    for (int i = 0; i < fabric_->node_count(); ++i) {
        hosts_storage_.push_back(std::make_unique<host::HostServer>(
            &simulator_, "srv" + std::to_string(i), &fabric_->shell(i),
            config_.host));
        hosts_.push_back(hosts_storage_.back().get());
        hosts_storage_.back()->driver().AssignThreads(config_.driver_threads);
    }
    mapping_manager_ = std::make_unique<mgmt::MappingManager>(
        &simulator_, fabric_.get(), hosts_);
    health_monitor_ = std::make_unique<mgmt::HealthMonitor>(
        &simulator_, fabric_.get(), hosts_, config_.health);
    failure_injector_ = std::make_unique<mgmt::FailureInjector>(
        &simulator_, fabric_.get(), hosts_, rng.Fork());
    scheduler_ = std::make_unique<mgmt::PodScheduler>(fabric_->topology());
    ServicePool::Config pool_config;
    pool_config.ring_count = config_.ring_count;
    pool_config.policy = config_.policy;
    pool_config.ring = config_.service;
    pool_ = std::make_unique<ServicePool>(&simulator_, fabric_.get(), hosts_,
                                          mapping_manager_.get(),
                                          scheduler_.get(),
                                          std::move(pool_config));

    if (!config_.autonomic) return;
    // The autonomic loop (§3.3, §3.5): components publish faults, the
    // watchdog turns missed heartbeats and event bursts into
    // investigations, and confirmed reports heal the pod — the pool
    // recovers rings whose active stages are hit; anything else with a
    // mapped role (idle spares, stranded reboots) is reconfigured in
    // place by the Mapping Manager.
    fabric_->AttachTelemetry(telemetry_.get());
    health_monitor_->AttachTelemetry(telemetry_.get());
    health_monitor_->AddFailureSubscriber(
        [this](const mgmt::MachineReport& report) {
            if (pool_->HandleMachineReport(report)) return;
            switch (report.fault) {
              case mgmt::FaultType::kUnresponsiveRecovered:
              case mgmt::FaultType::kStrandedRxHalt:
              case mgmt::FaultType::kApplicationError:
                // In-place reconfiguration clears corrupted role state
                // and re-releases RX Halt (§3.5) — only for nodes that
                // actually hold a mapped role; an idle node has no
                // application image to restore.
                if (!mapping_manager_->RoleAtNode(report.node).empty()) {
                    mapping_manager_->ReconfigureInPlace(report.node,
                                                         [](bool) {});
                }
                break;
              default:
                // Fatal (manual service), cable-class and thermal
                // faults are not fixable by reconfiguration.
                break;
            }
        });
    health_monitor_->StartWatchdog();
}

bool PodTestbed::DeployAndSettle() {
    bool deployed = false;
    pool_->Deploy([&](bool ok) { deployed = ok; });
    simulator_.Run();
    return deployed;
}

}  // namespace catapult::service
