#include "service/testbed.h"

namespace catapult::service {

PodTestbed::PodTestbed(Config config) : config_(std::move(config)) {
    Rng rng(config_.seed);
    fabric_ = std::make_unique<fabric::CatapultFabric>(&simulator_, rng.Fork(),
                                                       config_.fabric);
    for (int i = 0; i < fabric_->node_count(); ++i) {
        hosts_storage_.push_back(std::make_unique<host::HostServer>(
            &simulator_, "srv" + std::to_string(i), &fabric_->shell(i),
            config_.host));
        hosts_.push_back(hosts_storage_.back().get());
        hosts_storage_.back()->driver().AssignThreads(config_.driver_threads);
    }
    mapping_manager_ = std::make_unique<mgmt::MappingManager>(
        &simulator_, fabric_.get(), hosts_);
    health_monitor_ = std::make_unique<mgmt::HealthMonitor>(
        &simulator_, fabric_.get(), hosts_);
    failure_injector_ = std::make_unique<mgmt::FailureInjector>(
        &simulator_, fabric_.get(), hosts_, rng.Fork());
    scheduler_ = std::make_unique<mgmt::PodScheduler>(fabric_->topology());
    ServicePool::Config pool_config;
    pool_config.ring_count = config_.ring_count;
    pool_config.policy = config_.policy;
    pool_config.ring = config_.service;
    pool_ = std::make_unique<ServicePool>(&simulator_, fabric_.get(), hosts_,
                                          mapping_manager_.get(),
                                          scheduler_.get(),
                                          std::move(pool_config));
}

bool PodTestbed::DeployAndSettle() {
    bool deployed = false;
    pool_->Deploy([&](bool ok) { deployed = ok; });
    simulator_.Run();
    return deployed;
}

}  // namespace catapult::service
