#include "service/testbed.h"

namespace catapult::service {

namespace {

FederationTestbed::Config SinglePod(mgmt::PodContext::Config pod) {
    FederationTestbed::Config config;
    config.pod_count = 1;
    config.pod = std::move(pod);
    return config;
}

}  // namespace

PodTestbed::PodTestbed(Config config)
    : federation_(SinglePod(std::move(config))) {}

}  // namespace catapult::service
