// Load generation for the ring- and system-level experiments (§5).
//
// Two injection disciplines drive the evaluation figures:
//  * closed-loop: N CPU threads per node, each keeping exactly one
//    document outstanding (Figures 8-13 sweep thread and node counts);
//  * open-loop: Poisson arrivals at a configured rate per server,
//    documents queue host-side for free slots (Figures 14-15 sweep
//    normalized injection rates against the software baseline).

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "rank/document.h"
#include "rank/document_generator.h"
#include "rank/software_ranker.h"
#include "service/federated_dispatcher.h"
#include "service/ranking_service.h"
#include "service/service_pool.h"
#include "sim/simulator.h"
#include "sim/simulator_group.h"

namespace catapult::service {

/** Latency/throughput measurements from one run. */
struct LoadResult {
    SampleStat latency_us;
    std::uint64_t completed = 0;
    std::uint64_t timeouts = 0;
    /** Arrivals refused up front (admission control; open loop only). */
    std::uint64_t rejected = 0;
    Time elapsed = 0;

    double ThroughputPerSecond() const {
        const double s = ToSeconds(elapsed);
        return s > 0 ? static_cast<double>(completed) / s : 0.0;
    }
};

/**
 * Closed-loop injector: `threads` per injecting node, each thread owns
 * one slot and keeps one document outstanding.
 */
class ClosedLoopInjector {
  public:
    struct Config {
        std::vector<int> injecting_ring_indices = {0};
        int threads_per_node = 1;
        int documents_per_thread = 200;
        std::uint64_t corpus_seed = 42;
        rank::DocumentGenerator::Config corpus;
        /** Force every document to one model (no reload churn). */
        bool single_model = true;
    };

    ClosedLoopInjector(RankingService* service, Config config);

    /** Run to completion; returns the measurements. */
    LoadResult Run();

  private:
    void StartThread(int ring_index, int thread);
    void SendNext(int ring_index, int thread, int remaining);

    RankingService* service_;
    Config config_;
    rank::DocumentGenerator generator_;
    LoadResult result_;
    int outstanding_ = 0;
    Time started_ = 0;
    Time last_completion_ = 0;
};

/**
 * Pool-level closed loop: `concurrency` logical clients, each keeping
 * one document outstanding against the pool's dispatcher. The pool
 * shards every send across its rings by policy, so the same offered
 * load measures 1-ring vs N-ring capacity (bench_pool_scaling).
 */
class PoolClosedLoopInjector {
  public:
    struct Config {
        /** Outstanding documents across the whole pool. */
        int concurrency = 32;
        /** Driver threads registered per host (PodTestbed default 32);
         *  clients map onto them modulo this, and slot collisions
         *  between clients sharing a thread id resolve via retry. */
        int driver_threads = 32;
        /** Total documents to complete. */
        int documents = 2'000;
        std::uint64_t corpus_seed = 42;
        rank::DocumentGenerator::Config corpus;
        /** Force every document to one model (no reload churn). */
        bool single_model = true;
        /** Retry delay when the pool rejects (all rings drained). */
        Time retry_delay = Microseconds(100);
        /**
         * Consecutive rejections a client tolerates before giving up
         * (counted as one timeout). Bounds Run() when the pool never
         * recovers — without it a permanently drained pool would retry
         * forever and the simulation would never drain.
         */
        int max_retries = 1'000;
    };

    PoolClosedLoopInjector(ServicePool* pool, Config config);

    /** Run to completion; returns the measurements. */
    LoadResult Run();

  private:
    ServicePool* pool_;
    Config config_;
    rank::DocumentGenerator generator_;
};

/**
 * Federation-level closed loop: `concurrency` logical clients, each
 * keeping one query outstanding against the FederatedDispatcher, which
 * shards every send across its pods by policy. The same offered load
 * measures 1-pod vs N-pod capacity (bench_federation).
 */
class FederatedClosedLoopInjector {
  public:
    struct Config {
        /** Outstanding queries across the whole federation. */
        int concurrency = 32;
        /** Driver threads registered per host; clients map modulo. */
        int driver_threads = 32;
        /** Total queries to complete. */
        int documents = 2'000;
        std::uint64_t corpus_seed = 42;
        rank::DocumentGenerator::Config corpus;
        /** Force every query to one model (no reload churn). */
        bool single_model = true;
        /** Retry delay when the federation rejects outright. */
        Time retry_delay = Microseconds(100);
        /** Consecutive rejections a client tolerates before giving up. */
        int max_retries = 1'000;
    };

    FederatedClosedLoopInjector(FederatedDispatcher* dispatcher,
                                sim::Simulator* simulator, Config config);

    /**
     * Sharded federation: `simulator` must be the group's coordinator
     * shard and Run() drives the whole group (epoch barriers included)
     * instead of the lone simulator.
     */
    void set_group(sim::SimulatorGroup* group) { group_ = group; }

    /** Run to completion; returns the measurements. */
    LoadResult Run();

  private:
    FederatedDispatcher* dispatcher_;
    sim::Simulator* simulator_;
    sim::SimulatorGroup* group_ = nullptr;
    Config config_;
    rank::DocumentGenerator generator_;
};

/**
 * Federation-level open loop: a fixed arrival rate against the
 * FederatedDispatcher — arrivals are independent of completions, the
 * production traffic shape. There is no client-side queue or retry:
 * the dispatcher's per-pod admission cap answers every arrival
 * immediately, and a refused arrival is *rejected*, not parked — the
 * first step of the admission-control story (bounded queues, fast
 * feedback to the traffic source) rather than unbounded host-side
 * buffering.
 */
class FederatedOpenLoopInjector {
  public:
    struct Config {
        /** Mean arrivals per second across the whole federation. */
        double rate_qps = 20'000.0;
        Time duration = Milliseconds(100);
        /** Exponential interarrivals (Poisson) or a fixed beat. */
        bool poisson = true;
        /** Driver threads registered per host; arrivals rotate over them. */
        int driver_threads = 32;
        std::uint64_t corpus_seed = 42;
        rank::DocumentGenerator::Config corpus;
        bool single_model = true;
        /**
         * Arrivals scheduled per generator event. 1 is the classic
         * one-event-per-arrival chain; K > 1 draws K interarrival gaps
         * at once and schedules K arrival events per chain link —
         * identical arrival times and RNG draw order (verified by
         * test), ~1/K the chain-bookkeeping event traffic.
         */
        int arrival_batch = 1;
    };

    FederatedOpenLoopInjector(FederatedDispatcher* dispatcher,
                              sim::Simulator* simulator, Rng rng,
                              Config config);

    /** Sharded federation: Run() drives the whole group. */
    void set_group(sim::SimulatorGroup* group) { group_ = group; }

    LoadResult Run();

  private:
    void ScheduleArrival();
    void InjectArrival();

    FederatedDispatcher* dispatcher_;
    sim::Simulator* simulator_;
    sim::SimulatorGroup* group_ = nullptr;
    Rng rng_;
    Config config_;
    rank::DocumentGenerator generator_;
    LoadResult result_;
    int arrival_seq_ = 0;
    Time deadline_ = 0;
};

/**
 * Degradation-ramp / incident load: a *paced* open loop (fixed
 * interarrival beat, so offered load is identical run to run) against
 * the FederatedDispatcher, with completions attributed to caller-named
 * phases. This is the measurement harness for staged-failure
 * scenarios: phase boundaries at fault injection, shed, re-admission
 * and settle points let a bench compare steady-state QPS across an
 * incident numerically — predictive shed vs reactive-only, pre-fault
 * vs post-readmission — instead of eyeballing a time series.
 */
class FederatedPhasedInjector {
  public:
    struct Config {
        /** Arrivals per second (fixed beat — no Poisson jitter). */
        double rate_qps = 25'000.0;
        Time duration = Milliseconds(100);
        /**
         * Ascending offsets from load start; k boundaries make k+1
         * phases. Arrivals/accepts/rejects are attributed to the phase
         * of the arrival, completions/failures to the phase of the
         * completion (late completions land in the final phase).
         */
        std::vector<Time> phase_offsets;
        /** Driver threads registered per host; arrivals rotate. */
        int driver_threads = 32;
        std::uint64_t corpus_seed = 42;
        rank::DocumentGenerator::Config corpus;
        bool single_model = true;
        /**
         * Latency SLO for goodput accounting (0 = off): a completion
         * slower than this still counts in `completed` but not in
         * `completed_in_slo`. This is §5's "throughput at a latency
         * target" lens — in a lossless retrying federation a query
         * caught on a dying pod is rarely *lost*, it is *late*, and
         * goodput is where that damage shows up numerically.
         */
        Time slo = 0;
        /**
         * Arrivals per generator event. 1 (default) pre-schedules every
         * beat up front — the classic shape, byte-identical to PR 7.
         * K > 1 chains batch-leader events: each leader injects its own
         * arrival and schedules only the next K-1 beats plus the next
         * leader, so the pending-event queue holds ~K arrivals instead
         * of the whole run and far-horizon wheel churn disappears.
         * Arrival times are identical either way.
         */
        int arrival_batch = 1;
    };

    struct Phase {
        Time start = 0;  ///< Offset from load start.
        Time span = 0;
        std::uint64_t arrivals = 0;
        std::uint64_t accepted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t completed = 0;
        std::uint64_t completed_in_slo = 0;
        std::uint64_t failed = 0;
        SampleStat latency_us;

        /** Completions per second of wall-phase time. */
        double Qps() const {
            const double s = ToSeconds(span);
            return s > 0 ? static_cast<double>(completed) / s : 0.0;
        }
        /** Completions inside the SLO per second of wall-phase time. */
        double SloQps() const {
            const double s = ToSeconds(span);
            return s > 0 ? static_cast<double>(completed_in_slo) / s : 0.0;
        }
    };

    struct Result {
        std::vector<Phase> phases;
        std::uint64_t accepted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
    };

    FederatedPhasedInjector(FederatedDispatcher* dispatcher,
                            sim::Simulator* simulator, Config config);

    /** Sharded federation: Run() drives the whole group. */
    void set_group(sim::SimulatorGroup* group) { group_ = group; }

    /** Run to completion (arrivals + drain); returns per-phase stats. */
    Result Run();

  private:
    int PhaseOf(Time now) const;
    void InjectArrival();
    /** Batch-leader chain (arrival_batch > 1): leader at `index`. */
    void ScheduleBatchFrom(std::uint64_t index, std::uint64_t total,
                           Time beat);

    FederatedDispatcher* dispatcher_;
    sim::Simulator* simulator_;
    sim::SimulatorGroup* group_ = nullptr;
    Config config_;
    rank::DocumentGenerator generator_;
    Result result_;
    Time load_start_ = 0;
    int arrival_seq_ = 0;
};

/**
 * Open-loop injector: Poisson arrivals per injecting server. Arrivals
 * beyond the available slots queue host-side (the production software
 * stack in front of the driver).
 */
class OpenLoopInjector {
  public:
    struct Config {
        std::vector<int> injecting_ring_indices = {0, 1, 2, 3, 4, 5, 6, 7};
        /** Mean arrivals per second per injecting server. */
        double rate_per_server = 5'000.0;
        Time duration = Milliseconds(200);
        int threads_per_node = 32;
        std::uint64_t corpus_seed = 42;
        rank::DocumentGenerator::Config corpus;
        bool single_model = true;
        /**
         * Model the software portion that stays on the host CPU (§4:
         * SSD lookup, hit-vector computation, software features).
         */
        bool host_preprocessing = true;
        rank::CpuPool::Config cpu;
        rank::SoftwareCostModel cost;
    };

    OpenLoopInjector(RankingService* service, Rng rng, Config config);

    LoadResult Run();

  private:
    struct PendingDoc {
        rank::CompressedRequest request;
        Time arrived = 0;
    };

    struct NodeState {
        std::deque<PendingDoc> backlog;
        std::vector<bool> slot_busy;
        std::unique_ptr<rank::CpuPool> cpu;
    };

    void ScheduleArrival(int ring_index);
    void TryDispatch(int ring_index);
    void InjectPrepared(int node_index, PendingDoc doc, int thread);

    RankingService* service_;
    Rng rng_;
    Config config_;
    rank::DocumentGenerator generator_;
    std::vector<NodeState> nodes_;
    LoadResult result_;
    Time deadline_ = 0;
};

/**
 * The software-only fleet driven at the same injection rates: one
 * SoftwareRankServer per injecting node (Figures 14-15 baseline).
 */
class SoftwareLoadRunner {
  public:
    struct Config {
        int servers = 8;
        double rate_per_server = 5'000.0;
        Time duration = Milliseconds(200);
        std::uint64_t corpus_seed = 42;
        rank::DocumentGenerator::Config corpus;
        rank::SoftwareRankServer::Config server;
    };

    SoftwareLoadRunner(sim::Simulator* simulator, const rank::Model* model,
                       Rng rng, Config config);

    LoadResult Run();

  private:
    void ScheduleArrival(int server);

    sim::Simulator* simulator_;
    const rank::Model* model_;
    Rng rng_;
    Config config_;
    rank::DocumentGenerator generator_;
    std::vector<std::unique_ptr<rank::SoftwareRankServer>> servers_;
    LoadResult result_;
    Time deadline_ = 0;
};

}  // namespace catapult::service
