// Federation testbed: 1..N pods behind one FederatedDispatcher.
//
// The cross-pod analogue of PodTestbed: one simulator carries every
// pod's fabric, hosts and management plane (mgmt::PodContext per pod),
// and a FederatedDispatcher fronts them with the same Inject surface a
// single pool offers. Pod k's node ids live in [k*48, (k+1)*48), its
// telemetry events and machine reports carry pod id k, and its service
// deploys as "<service_name>/pod<k>" — so logs, traces and reports
// from a 3-pod federation never collide.
//
// PodTestbed is a thin wrapper over a 1-pod instance of this class,
// which is what keeps the entire pre-federation test/bench surface
// compiling unchanged.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mgmt/pod_context.h"
#include "obs/observability.h"
#include "service/federated_dispatcher.h"
#include "service/session_front_end.h"
#include "sim/simulator.h"
#include "sim/simulator_group.h"

namespace catapult::service {

class FederationTestbed {
  public:
    struct Config {
        /** Pods to build (each a full 48-node torus by default). */
        int pod_count = 1;
        /**
         * Template for every pod; pod_id, node base, name prefix and
         * per-pod seed are derived per pod. Pod 0 uses the template
         * verbatim, so a 1-pod federation is bit-for-bit the old
         * single-pod testbed.
         */
        mgmt::PodContext::Config pod;
        FederatedDispatcher::Config dispatcher;
        /**
         * Session front end fronting the dispatcher. `driver_threads`
         * is overwritten from the pod template so session connection
         * pools always index real slot-driver threads.
         */
        SessionFrontEnd::Config front_end;

        /**
         * Sharded federation runtime. Off (default), every pod shares
         * the classic single simulator — the reference mode. On, each
         * pod's whole stack runs on its own SimulatorGroup shard and
         * the dispatcher/front-end/injector tier runs on a coordinator
         * shard; cross-pod traffic crosses explicit hop latencies
         * through deterministic mailboxes. `parallel` additionally
         * runs the shards on worker threads — bit-identical to the
         * lock-step sharded execution by construction.
         */
        struct Sharding {
            bool enabled = false;
            bool parallel = false;
            /**
             * Shard *within* each pod: every ring becomes its own
             * sub-shard — a self-contained single-ring PodContext
             * slice (1 x cols torus) on its own group shard — attached
             * through FederatedDispatcher::AttachPodSlices, so a
             * 1-pod/6-ring workload spreads over 6 shards instead of
             * serializing on one. Requires `enabled`. pod(k) then
             * returns slice 0; use pod_slice(k, r) for the rest and
             * aggregate per-pod metrics across slices.
             */
            bool ring_subshards = false;
            /** Executor cap (0 = hardware concurrency). */
            int max_threads = 0;
            /**
             * Cross-pod hop latencies; 0 derives them from the fabric:
             * the pod-edge DMA interrupt latency plus the front-door
             * network transit below. The epoch (lookahead) is the
             * smaller of the two.
             */
            Time inject_hop = 0;
            Time completion_hop = 0;
            /** Coordinator <-> pod network leg of a derived hop. */
            Time front_door_network = Microseconds(7);
        } sharding;

        /**
         * Observability plane (metrics registry + distributed tracing +
         * executor profiling). Off by default — zero overhead beyond
         * untaken branches. On: one ShardObs per simulator shard (the
         * coordinator's feeds the dispatcher/scatter/session tier, each
         * pod slice's feeds its rings and Health Monitor), merged
         * race-free at epoch barriers (or a cadence daemon when
         * unsharded). The deterministic exports are byte-identical
         * between lock-step and parallel execution.
         */
        obs::ObservabilityPlane::Config observability;
    };

    explicit FederationTestbed(Config config);
    FederationTestbed() : FederationTestbed(Config()) {}

    /** Deploy every pod's pool and run until configuration settles. */
    bool DeployAndSettle();

    /**
     * Live pod re-admission: bring a serviced pod back into a running
     * federation with zero disruption to in-flight queries on the
     * surviving pods. The full sequence, all on simulated time:
     * field-service every host (boot path repaired, hard-reboot-long
     * power cycle), clear the Health Monitor's dead list so watchdog
     * coverage resumes, reset the forecaster's trend (cold-start grace
     * restarts), redeploy the pod's rings, and finally
     * FederatedDispatcher::ReadmitPod — breaker reset plus a warm-up
     * ramp so the rejoining pod earns traffic gradually. `on_done`
     * fires with the redeploy verdict; on failure the pod stays out of
     * rotation. Call while the simulator runs (or Run() after).
     */
    void ReattachPod(int index, std::function<void(bool)> on_done);

    /**
     * The simulator the dispatcher/front-end tier runs on: the classic
     * shared simulator, or the coordinator shard when sharding is on.
     * Injectors and tests drive this one; in sharded mode use Run() /
     * RunUntil() below so pod shards advance too.
     */
    sim::Simulator& simulator() { return *coordinator_; }
    /** Non-null when Config::sharding.enabled. */
    sim::SimulatorGroup* group() { return group_.get(); }
    bool sharded() const { return group_ != nullptr; }

    /** Mode-dispatched drive: group epochs when sharded, else direct. */
    std::uint64_t Run() { return group_ ? group_->Run() : simulator_.Run(); }
    std::uint64_t RunUntil(Time horizon) {
        return group_ ? group_->RunUntil(horizon)
                      : simulator_.RunUntil(horizon);
    }
    Time Now() const { return coordinator_->Now(); }

    int pod_count() const {
        return static_cast<int>(pods_.size()) / slices_per_pod_;
    }
    /** Pod k's context — slice 0 of it under ring_subshards. */
    mgmt::PodContext& pod(int index) {
        return *pods_[static_cast<std::size_t>(index * slices_per_pod_)];
    }
    /** Ring sub-shard slices per pod (1 unless ring_subshards). */
    int slices_per_pod() const { return slices_per_pod_; }
    /** Ring slice r of pod k (ring_subshards mode; r=0 always valid). */
    mgmt::PodContext& pod_slice(int index, int ring) {
        return *pods_[static_cast<std::size_t>(index * slices_per_pod_ +
                                               ring)];
    }
    FederatedDispatcher& dispatcher() { return *dispatcher_; }
    /** The session-oriented scatter-gather door over the dispatcher. */
    SessionFrontEnd& front_end() { return *front_end_; }
    /** Null unless Config::observability.enabled. */
    obs::ObservabilityPlane* observability() { return plane_.get(); }

  private:
    /** Ring-sub-shard construction of pod `pod_index` (R>1 slices). */
    void BuildPodSlices(int pod_index);
    /** Register the layer-counter pull-collectors + cadence driver. */
    void InstallObservability();

    Config config_;
    sim::Simulator simulator_;
    /** Destroyed after pods_/dispatcher_ (declared before them). */
    std::unique_ptr<sim::SimulatorGroup> group_;
    sim::Simulator* coordinator_ = nullptr;
    /** Declared before pods_/dispatcher_: they hold ShardObs*. */
    std::unique_ptr<obs::ObservabilityPlane> plane_;
    Time inject_hop_ = 0;
    Time completion_hop_ = 0;
    int slices_per_pod_ = 1;
    /** Pod-major, slice-minor: pod k's slices at [k*R, (k+1)*R). */
    std::vector<std::unique_ptr<mgmt::PodContext>> pods_;
    std::unique_ptr<FederatedDispatcher> dispatcher_;
    std::unique_ptr<SessionFrontEnd> front_end_;
};

}  // namespace catapult::service
