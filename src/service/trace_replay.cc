#include "service/trace_replay.h"

#include <set>

namespace catapult::service {

void TraceArchive::Record(std::uint64_t trace_id, ArchivedTrace trace) {
    if (entries_.size() >= capacity_ && !order_.empty()) {
        // FIFO eviction of the oldest archived trace.
        entries_.erase(order_[evict_next_ % order_.size()]);
        order_[evict_next_ % order_.size()] = trace_id;
        ++evict_next_;
    } else {
        order_.push_back(trace_id);
    }
    entries_[trace_id] = std::move(trace);
}

const ArchivedTrace* TraceArchive::Find(std::uint64_t trace_id) const {
    const auto it = entries_.find(trace_id);
    return it == entries_.end() ? nullptr : &it->second;
}

TraceReplayer::Report TraceReplayer::Replay(
    const std::vector<shell::FdrRecord>& fdr_window,
    const TraceArchive& archive, rank::RankingFunction& function) {
    return ReplayFederation({fdr_window}, {&archive}, function);
}

TraceReplayer::Report TraceReplayer::ReplayFederation(
    const std::vector<std::vector<shell::FdrRecord>>& fdr_windows,
    const std::vector<const TraceArchive*>& archives,
    rank::RankingFunction& function) {
    Report report;
    std::set<std::uint64_t> seen;  // dedupe across every window
    for (const auto& window : fdr_windows) {
        for (const auto& record : window) {
            if (record.type != shell::PacketType::kScoringRequest) continue;
            if (record.trace_id == 0) continue;
            if (!seen.insert(record.trace_id).second) continue;
            ++report.requests_in_window;
            // Trace ids are pod-strided, so at most one archive holds
            // any given id — first hit wins.
            const ArchivedTrace* trace = nullptr;
            for (const TraceArchive* archive : archives) {
                if (archive == nullptr) continue;
                trace = archive->Find(record.trace_id);
                if (trace != nullptr) break;
            }
            if (trace == nullptr) {
                ++report.missing;
                continue;
            }
            ++report.replayed;
            const float replay_score = function.Score(trace->request);
            if (!trace->scored || replay_score == trace->score) {
                ++report.matched;
            } else {
                ++report.mismatched;
            }
        }
    }
    return report;
}

}  // namespace catapult::service
