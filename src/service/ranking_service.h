// The accelerated ranking service (§4, §4.2).
//
// The ranking engine is partitioned across seven FPGAs plus one spare,
// mapped onto a ring of eight FPGAs along one dimension of the torus
// (Figure 5): Queue Manager + Feature Extraction at the head, two FFE
// stages, a compression stage, and three machine-learned scoring
// stages. Any of the eight servers can inject documents; requests route
// over the inter-FPGA network to the head, pass down the macropipeline
// stage by stage, and the final score (a 4-byte float plus counters)
// routes back to the injecting server (§4.1).

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "fabric/catapult_fabric.h"
#include "host/host_server.h"
#include "mgmt/mapping_manager.h"
#include "mgmt/pod_scheduler.h"
#include "obs/observability.h"
#include "rank/document.h"
#include "rank/model.h"
#include "rank/queue_manager.h"
#include "rank/software_ranker.h"
#include "service/trace_replay.h"
#include "shell/shell.h"
#include "sim/simulator.h"

namespace catapult::service {

class StageRole;

/** Bitstream descriptor for a ranking stage, with Table 1 area/clock. */
fpga::Bitstream StageBitstream(rank::PipelineStage stage);

/** Completion record for one scored document. */
struct ScoreResult {
    bool ok = false;
    float score = 0.0f;
    Time latency = 0;          ///< Injection to response at user level.
    std::uint64_t trace_id = 0;
    /**
     * Pod that served the document — stamped by the FederatedDispatcher
     * with the pod that finally answered (failover included), so the
     * scatter-gather tier can build per-pod result lists. -1 for
     * completions below the federation (direct ring/pool injection).
     */
    int pod = -1;
};

/**
 * Per-document in-flight context shared by the stage roles. The fabric
 * carries packets; heavyweight state (the request, the feature store
 * when functional scoring is on) lives here, keyed by trace id — the
 * same id the Flight Data Recorder logs, so an FDR trace can be
 * replayed against this table in a test environment (§3.6).
 */
struct DocContext {
    rank::CompressedRequest request;
    shell::NodeId injector = shell::kInvalidNode;
    int slot = -1;
    Time injected_at = 0;
    std::unique_ptr<rank::FeatureStore> store;  ///< null when timing-only
    float final_score = 0.0f;
    std::function<void(const ScoreResult&)> on_complete;
    /** Tracing context joined from request.query (0 = untraced). */
    std::uint64_t obs_trace = 0;
    std::uint64_t obs_span = 0;
    std::uint64_t obs_parent = 0;
};

class RankingService {
  public:
    static constexpr int kRingLength = 8;

    struct Config {
        /**
         * Deployment name; also prefixes role names so several rings of
         * the same pool stay distinguishable in the Mapping Manager.
         */
        std::string service_name = "bing.ranking";
        /** Run the full functional pipeline (bit-exact scores). */
        bool compute_scores = false;
        std::uint64_t model_seed = 0xCA7A9017ull;
        rank::ModelStore::Config models;
        rank::QueueManager::Config queue_manager;
        /** FE timing (the pipeline bottleneck, §5). */
        rank::FeatureExtractor::Timing fe_timing;
        /** Host request timeout feeding failure handling (§3.2). */
        Time request_timeout = Milliseconds(8);
        /**
         * Per-document software cost paid by the injecting thread
         * before the slot fills (§4: "performs the software portion of
         * the scoring, converts the document into a format suitable for
         * FPGA evaluation, and then injects the document").
         */
        Time injection_overhead = Microseconds(12);
        /**
         * Archive every (trace id, document, score) for offline FDR
         * trace replay (§3.6). Off by default: production keeps a
         * bounded archive on the serving host.
         */
        bool archive_traces = false;
        std::size_t trace_archive_capacity = 65'536;
        /**
         * First trace id minus one. ServicePool strides this per ring
         * and PodContext per pod, so trace ids are unique across a
         * whole federation — a federation-level FDR replay can resolve
         * any record to the archive holding its document.
         */
        std::uint64_t trace_id_base = 0;
        /**
         * Record archived traces here instead of the ring-local
         * archive (the pod-level archive PodContext owns for
         * cross-pod replay). The pointee must outlive the service.
         */
        TraceArchive* shared_archive = nullptr;
    };

    /**
     * The ring's torus region comes from the PodScheduler: callers no
     * longer hand-pick a `ring_row` — they request a placement (length
     * kRingLength) and pass the grant here. ServicePool does this for
     * every ring it owns.
     */
    RankingService(sim::Simulator* simulator, fabric::CatapultFabric* fabric,
                   std::vector<host::HostServer*> hosts,
                   mgmt::MappingManager* mapping_manager,
                   mgmt::RingPlacement placement, Config config);

    RankingService(const RankingService&) = delete;
    RankingService& operator=(const RankingService&) = delete;

    ~RankingService();

    /** Configure all eight FPGAs and start the service. */
    void Deploy(std::function<void(bool)> on_done);

    /**
     * Inject a document from ring position `ring_index` (0..7) on the
     * driver slot owned by `thread`. Completion (score or timeout)
     * arrives via `on_complete`.
     */
    host::SendStatus Inject(int ring_index, int thread,
                            const rank::CompressedRequest& request,
                            std::function<void(const ScoreResult&)> on_complete);

    /** Same, with an explicit slot (thread -> slots mapping bypassed). */
    host::SendStatus InjectOnSlot(int ring_index, int slot,
                                  const rank::CompressedRequest& request,
                                  std::function<void(const ScoreResult&)> on_complete);

    /** Pod-local node index of ring position `ring_index`. */
    int RingNode(int ring_index) const { return ring_nodes_[ring_index]; }

    /** The scheduler grant this ring occupies. */
    const mgmt::RingPlacement& placement() const { return placement_; }

    /** Torus row hosting the ring. */
    int ring_row() const { return placement_.row; }

    /** Stage hosted at ring position `ring_index` under current mapping. */
    rank::PipelineStage StageAt(int ring_index) const {
        return stage_at_[ring_index];
    }

    /** Ring position currently hosting `stage`. */
    int RingIndexOf(rank::PipelineStage stage) const;

    /**
     * Service Manager: rotate the ring after a machine failure so the
     * spare takes over the lost stage (§4.2) and redeploy.
     */
    void RotateRingAround(int failed_ring_index,
                          std::function<void(bool)> on_done);

    rank::ModelStore& models() { return models_; }
    /** The archive this ring records into (shared when configured). */
    const TraceArchive& trace_archive() const {
        return config_.shared_archive != nullptr ? *config_.shared_archive
                                                 : trace_archive_;
    }
    const rank::Model& DefaultModel();
    rank::QueueManager& queue_manager();
    DocContext* FindContext(std::uint64_t trace_id);

    /** Per-stage service time for a given request (used by benches). */
    Time StageServiceTime(rank::PipelineStage stage,
                          const rank::CompressedRequest& request,
                          std::uint32_t model_id);

    /**
     * Wire payload leaving `stage`: the compressed document only travels
     * to the head; downstream hops carry feature/operand data (§4.1's
     * bandwidth-saving rationale applies inside the ring too).
     */
    Bytes StageOutputBytes(rank::PipelineStage stage, std::uint32_t model_id);

    struct Counters {
        std::uint64_t injected = 0;
        std::uint64_t completed = 0;
        std::uint64_t timeouts = 0;
        std::uint64_t model_reloads = 0;
    };
    const Counters& counters() const { return counters_; }

    sim::Simulator* simulator() { return simulator_; }
    fabric::CatapultFabric* fabric() { return fabric_; }
    host::HostServer* host(int ring_index) {
        return hosts_[static_cast<std::size_t>(RingNode(ring_index))];
    }
    const Config& config() const { return config_; }

    /** Functional pipeline bound to a model (lazily built, cached). */
    rank::RankingFunction& FunctionFor(std::uint32_t model_id);

    /** Stage-role hook: count a pipeline-wide model reload. */
    void BumpModelReloads();

    /** The stage role currently at ring position `ring_index`. */
    StageRole& role(int ring_index) {
        return *roles_[static_cast<std::size_t>(ring_index)];
    }

    /**
     * Attach this ring's observability shard. Traced documents (query
     * carrying trace context) open a "doc" span from injection to
     * score/timeout, keyed by the FDR-visible trace id; StageRole hops
     * nest under it.
     */
    void SetObservability(obs::ShardObs* obs);
    obs::ShardObs* observability() { return obs_; }

  private:
    friend class StageRole;

    void BuildRoles();
    void OnResponse(std::uint64_t trace_id, bool ok, float score,
                    shell::PacketPtr packet);
    void CompleteTimeout(std::uint64_t trace_id);

    sim::Simulator* simulator_;
    fabric::CatapultFabric* fabric_;
    std::vector<host::HostServer*> hosts_;
    mgmt::MappingManager* mapping_manager_;
    mgmt::RingPlacement placement_;
    Config config_;
    rank::ModelStore models_;
    rank::QueueManager queue_manager_;
    TraceArchive trace_archive_;

    std::array<int, kRingLength> ring_nodes_{};
    std::array<rank::PipelineStage, kRingLength> stage_at_{};
    std::vector<std::unique_ptr<StageRole>> roles_;
    std::unordered_map<std::uint64_t, DocContext> in_flight_;
    std::unordered_map<std::uint32_t, std::unique_ptr<rank::RankingFunction>>
        functions_;
    std::uint64_t next_trace_id_;  ///< Starts at trace_id_base + 1.
    Counters counters_;
    obs::ShardObs* obs_ = nullptr;
    obs::Histogram* obs_doc_latency_us_ = nullptr;
};

}  // namespace catapult::service
