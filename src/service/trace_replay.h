// FDR trace replay (§3.6).
//
// "The FDR maintains a circular buffer that records the most recent
// head and tail flits of all packets entering and exiting the FPGA
// through the router. This information includes: (1) a trace ID that
// corresponds to a specific compressed document that can be replayed in
// a test environment ..."
//
// The TraceArchive is the production-side store mapping trace ids to
// the compressed documents (and the scores they produced); the
// TraceReplayer takes a streamed-out FDR window, pulls each scoring
// request's document from the archive, re-runs it through the
// functional pipeline, and verifies the score reproduces exactly —
// which is how the original team debugged at-scale failures offline.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rank/document.h"
#include "rank/software_ranker.h"
#include "shell/flight_data_recorder.h"

namespace catapult::service {

/** Archived request + the score the pipeline produced for it. */
struct ArchivedTrace {
    rank::CompressedRequest request;
    float score = 0.0f;
    bool scored = false;
};

/** Bounded trace id -> document archive (host-side, per service). */
class TraceArchive {
  public:
    explicit TraceArchive(std::size_t capacity = 65'536)
        : capacity_(capacity) {}

    void Record(std::uint64_t trace_id, ArchivedTrace trace);
    const ArchivedTrace* Find(std::uint64_t trace_id) const;
    std::size_t size() const { return entries_.size(); }

  private:
    std::size_t capacity_;
    std::unordered_map<std::uint64_t, ArchivedTrace> entries_;
    std::vector<std::uint64_t> order_;  // FIFO eviction
    std::size_t evict_next_ = 0;
};

class TraceReplayer {
  public:
    struct Report {
        int requests_in_window = 0;  ///< Scoring requests seen in the FDR.
        int replayed = 0;            ///< Found in the archive and re-run.
        int matched = 0;             ///< Replay score == recorded score.
        int mismatched = 0;
        int missing = 0;             ///< Evicted from the archive.
    };

    /**
     * Replay every scoring request in an FDR window against the
     * archive using `function` (the same model the pipeline ran).
     */
    static Report Replay(const std::vector<shell::FdrRecord>& fdr_window,
                         const TraceArchive& archive,
                         rank::RankingFunction& function);

    /**
     * Federation-wide replay (§3.6 at pod scale): FDR windows streamed
     * from several pods, checked against several pod-level archives.
     * Trace ids are federation-unique (pod- and ring-strided), so each
     * record resolves to whichever pod's archive holds its document —
     * in particular, a query that failed on one pod and was retried
     * onto a survivor appears in the failed pod's window as `missing`
     * (it never completed there) and in the survivor's window as a
     * `replayed`/`matched` entry archived by the survivor. A trace id
     * seen in several windows is replayed once.
     */
    static Report ReplayFederation(
        const std::vector<std::vector<shell::FdrRecord>>& fdr_windows,
        const std::vector<const TraceArchive*>& archives,
        rank::RankingFunction& function);
};

}  // namespace catapult::service
