// FDR trace replay (§3.6).
//
// "The FDR maintains a circular buffer that records the most recent
// head and tail flits of all packets entering and exiting the FPGA
// through the router. This information includes: (1) a trace ID that
// corresponds to a specific compressed document that can be replayed in
// a test environment ..."
//
// The TraceArchive is the production-side store mapping trace ids to
// the compressed documents (and the scores they produced); the
// TraceReplayer takes a streamed-out FDR window, pulls each scoring
// request's document from the archive, re-runs it through the
// functional pipeline, and verifies the score reproduces exactly —
// which is how the original team debugged at-scale failures offline.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rank/document.h"
#include "rank/software_ranker.h"
#include "shell/flight_data_recorder.h"

namespace catapult::service {

/** Archived request + the score the pipeline produced for it. */
struct ArchivedTrace {
    rank::CompressedRequest request;
    float score = 0.0f;
    bool scored = false;
};

/** Bounded trace id -> document archive (host-side, per service). */
class TraceArchive {
  public:
    explicit TraceArchive(std::size_t capacity = 65'536)
        : capacity_(capacity) {}

    void Record(std::uint64_t trace_id, ArchivedTrace trace);
    const ArchivedTrace* Find(std::uint64_t trace_id) const;
    std::size_t size() const { return entries_.size(); }

  private:
    std::size_t capacity_;
    std::unordered_map<std::uint64_t, ArchivedTrace> entries_;
    std::vector<std::uint64_t> order_;  // FIFO eviction
    std::size_t evict_next_ = 0;
};

class TraceReplayer {
  public:
    struct Report {
        int requests_in_window = 0;  ///< Scoring requests seen in the FDR.
        int replayed = 0;            ///< Found in the archive and re-run.
        int matched = 0;             ///< Replay score == recorded score.
        int mismatched = 0;
        int missing = 0;             ///< Evicted from the archive.
    };

    /**
     * Replay every scoring request in an FDR window against the
     * archive using `function` (the same model the pipeline ran).
     */
    static Report Replay(const std::vector<shell::FdrRecord>& fdr_window,
                         const TraceArchive& archive,
                         rank::RankingFunction& function);
};

}  // namespace catapult::service
