#include "service/scatter_gather.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "common/log.h"
#include "common/object_pool.h"

namespace catapult::service {

std::vector<RankedDoc> ResultMerger::Merge(
    std::vector<std::vector<RankedDoc>> per_pod, std::size_t k) {
    // Canonical per-source order: score descending, doc id ascending.
    // Sources arrive in completion order (gather callbacks), so the
    // merger owns the canonicalization rather than trusting callers.
    for (auto& list : per_pod) {
        std::sort(list.begin(), list.end(),
                  [](const RankedDoc& a, const RankedDoc& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.doc_id < b.doc_id;
                  });
    }
    std::size_t total = 0;
    for (const auto& list : per_pod) total += list.size();
    std::vector<RankedDoc> out;
    out.reserve(std::min(k, total));
    std::vector<std::size_t> cursor(per_pod.size(), 0);
    std::vector<std::size_t> tied;  // reused per score run
    while (out.size() < k) {
        // The highest score still unmerged across every source.
        bool any = false;
        float best = 0.0f;
        for (std::size_t p = 0; p < per_pod.size(); ++p) {
            if (cursor[p] >= per_pod[p].size()) continue;
            const float s = per_pod[p][cursor[p]].score;
            if (!any || s > best) {
                best = s;
                any = true;
            }
        }
        if (!any) break;
        // Sources tied at `best`, ascending (pod id, source index) —
        // the deterministic starting order of the round-robin.
        tied.clear();
        for (std::size_t p = 0; p < per_pod.size(); ++p) {
            if (cursor[p] < per_pod[p].size() &&
                per_pod[p][cursor[p]].score == best) {
                tied.push_back(p);
            }
        }
        std::sort(tied.begin(), tied.end(),
                  [&](std::size_t a, std::size_t b) {
                      const int pa = per_pod[a][cursor[a]].pod;
                      const int pb = per_pod[b][cursor[b]].pod;
                      if (pa != pb) return pa < pb;
                      return a < b;
                  });
        // Round-robin interleave: one doc per tied source per round; a
        // source leaves the cycle when its next doc scores differently
        // (each source's docs within the run stay doc-id ascending by
        // the canonical sort above).
        while (!tied.empty() && out.size() < k) {
            for (std::size_t j = 0; j < tied.size() && out.size() < k;) {
                const std::size_t p = tied[j];
                out.push_back(per_pod[p][cursor[p]++]);
                if (cursor[p] >= per_pod[p].size() ||
                    per_pod[p][cursor[p]].score != best) {
                    tied.erase(tied.begin() +
                               static_cast<std::ptrdiff_t>(j));
                } else {
                    ++j;
                }
            }
        }
    }
    return out;
}

ScatterGatherDispatcher::ScatterGatherDispatcher(
    sim::Simulator* simulator, FederatedDispatcher* dispatcher, Config config)
    : simulator_(simulator), dispatcher_(dispatcher), config_(config) {
    assert(simulator_ != nullptr);
    assert(dispatcher_ != nullptr);
    assert(config_.max_reject_retries >= 0);
}

void ScatterGatherDispatcher::SetObservability(obs::ShardObs* obs) {
    obs_ = obs;
    obs_gather_latency_us_ =
        obs == nullptr
            ? nullptr
            : obs->registry.histogram("frontend.gather_latency_us");
}

std::uint64_t ScatterGatherDispatcher::Submit(
    const rank::Query& query, std::vector<rank::CompressedRequest> docs,
    std::size_t top_k, Time budget,
    std::function<void(const GatherResult&)> on_complete,
    const std::vector<int>* connection_pool,
    std::function<void()> on_straggler) {
    ++counters_.submitted;
    auto gather = MakePooled<Gather>();
    gather->id = ++next_gather_id_;
    gather->top_k = top_k;
    gather->submitted_at = simulator_->Now();
    gather->docs = std::move(docs);
    gather->on_complete = std::move(on_complete);
    gather->on_straggler = std::move(on_straggler);

    const std::size_t n = gather->docs.size();
    const int pod_count = dispatcher_->pod_count();
    gather->per_pod.resize(static_cast<std::size_t>(pod_count));
    gather->shards.resize(static_cast<std::size_t>(pod_count));
    for (int p = 0; p < pod_count; ++p) {
        gather->shards[static_cast<std::size_t>(p)].pod = p;
    }
    gather->doc_state.assign(n, DocState::kPending);
    gather->doc_assigned.assign(n, -1);
    gather->doc_thread.assign(n, 0);

    if (obs_ != nullptr && obs_->tracing()) {
        // Join the caller's trace when the query already carries one
        // (the session front end roots the timeline); otherwise this
        // gather roots a fresh trace.
        gather->obs_trace = query.obs_trace != 0
                                ? query.obs_trace
                                : obs_->tracer.NextTraceId();
        gather->obs_parent = query.obs_parent;
        gather->obs_span = obs_->tracer.NextSpanId();
    }

    // Partition across the pods eligible *now*: a shed, latched-out or
    // capped pod gets no shard. The assignment is only a preference —
    // the federated dispatcher falls back to its normal policy (and
    // its failover machinery) when the target refuses or dies — but
    // the per-pod `assigned` accounting pins who was supposed to
    // answer, which is what the partial result reports as missing.
    const std::vector<int> eligible = dispatcher_->EligiblePods();
    for (std::size_t i = 0; i < n; ++i) {
        gather->docs[i].query = query;
        gather->docs[i].query.obs_trace = gather->obs_trace;
        gather->docs[i].query.obs_parent = gather->obs_span;
        if (!eligible.empty()) {
            const int target = eligible[i % eligible.size()];
            gather->doc_assigned[i] = target;
            ++gather->shards[static_cast<std::size_t>(target)].assigned;
        }
        gather->doc_thread[i] =
            connection_pool != nullptr && !connection_pool->empty()
                ? (*connection_pool)[i % connection_pool->size()]
                : static_cast<int>(i) %
                      std::max(1, config_.default_threads);
    }

    for (std::size_t i = 0; i < n; ++i) {
        InjectShard(gather, i, config_.max_reject_retries);
    }

    if (gather->delivered) return gather->id;
    if (AllResolved(*gather)) {
        // Everything refused up front (or the set was empty): deliver
        // asynchronously so the caller always sees the gather id before
        // its completion.
        simulator_->ScheduleAfter(0, [this, gather] {
            if (!gather->delivered) DeliverGather(gather);
        });
        return gather->id;
    }
    if (budget > 0) {
        // kTimeout priority: shards completing at exactly the budget
        // instant merge first — a gather whose last pod answers exactly
        // at the deadline is complete, not partial.
        gather->deadline_event = simulator_->ScheduleAt(
            gather->submitted_at + budget,
            [this, gather] {
                if (!gather->delivered) DeliverGather(gather);
            },
            sim::EventPriority::kTimeout);
    }
    return gather->id;
}

void ScatterGatherDispatcher::InjectShard(
    const std::shared_ptr<Gather>& gather, std::size_t index,
    int retries_left) {
    const int target = gather->doc_assigned[index];
    const auto status = dispatcher_->InjectPreferring(
        target, gather->doc_thread[index], gather->docs[index],
        [this, gather, index](const ScoreResult& result) {
            OnShardResult(gather, index, result);
        });
    if (status == host::SendStatus::kOk) {
        gather->doc_state[index] = DocState::kInFlight;
        ++gather->accepted;
        ++counters_.docs_scattered;
        return;
    }
    if (retries_left > 0) {
        // Transient refusals (slot contention, a momentary cap) clear
        // in microseconds; burn a bounded retry instead of reporting a
        // hole in the result. The retry dies quietly if the gather was
        // delivered meanwhile — the deadline already counted this
        // shard missing, and scattering it late would only manufacture
        // a straggler.
        simulator_->ScheduleAfter(
            config_.reject_retry_backoff,
            [this, gather, index, retries_left] {
                if (gather->delivered) return;
                InjectShard(gather, index, retries_left - 1);
            });
        return;
    }
    gather->doc_state[index] = DocState::kRejected;
    ++gather->rejected;
    ++counters_.docs_rejected;
    if (AllResolved(*gather) && !gather->delivered) DeliverGather(gather);
}

void ScatterGatherDispatcher::OnShardResult(
    const std::shared_ptr<Gather>& gather, std::size_t index,
    const ScoreResult& result) {
    if (gather->delivered) {
        // Straggler: the deadline already spoke for this shard. It is
        // accounted — here and to the gather's hook — but its score is
        // dropped, the callback has already fired, and nothing leaks
        // (this completion releases the shard's hold on the gather).
        ++counters_.stragglers;
        if (gather->on_straggler) gather->on_straggler();
        return;
    }
    if (result.ok) {
        gather->doc_state[index] = DocState::kAnswered;
        ++gather->answered;
        ++counters_.docs_answered;
        // Attribution follows the pod that finally answered (failover
        // included); fall back to the assignee if the result predates
        // pod stamping (a pool-level completion path).
        int pod = result.pod;
        if (pod < 0 || pod >= static_cast<int>(gather->per_pod.size())) {
            pod = gather->doc_assigned[index];
        }
        if (pod >= 0 && pod < static_cast<int>(gather->per_pod.size())) {
            gather->per_pod[static_cast<std::size_t>(pod)].push_back(
                RankedDoc{gather->docs[index].doc_id, result.score, pod});
            ++gather->shards[static_cast<std::size_t>(pod)].answered;
        }
    } else {
        gather->doc_state[index] = DocState::kFailed;
        ++gather->failed;
        ++counters_.docs_failed;
    }
    if (AllResolved(*gather)) DeliverGather(gather);
}

void ScatterGatherDispatcher::DeliverGather(
    const std::shared_ptr<Gather>& gather) {
    gather->delivered = true;
    if (gather->deadline_event.valid()) {
        simulator_->Cancel(gather->deadline_event);
    }
    GatherResult result;
    result.gather_id = gather->id;
    result.doc_count = gather->docs.size();
    result.accepted = gather->accepted;
    result.rejected = gather->rejected;
    result.answered = gather->answered;
    result.partial = gather->answered < gather->docs.size();
    // Missing attribution: every assigned shard that produced no merged
    // score — still outstanding at the deadline, failed, or rejected —
    // is charged to the pod it was assigned to. Sum(answered) +
    // Sum(missing) covers every assigned shard exactly once even when
    // failover moved a shard between pods.
    for (std::size_t i = 0; i < gather->docs.size(); ++i) {
        if (gather->doc_state[i] == DocState::kAnswered) continue;
        const int assigned = gather->doc_assigned[i];
        if (assigned >= 0) {
            ++gather->shards[static_cast<std::size_t>(assigned)].missing;
        }
    }
    result.pods = gather->shards;
    // The merge itself is front-door host code, measured in wall time:
    // bench_scatter_gather gates it against the end-to-end p50 the
    // federation spends producing the scores being merged.
    const auto merge_start = std::chrono::steady_clock::now();
    result.top = ResultMerger::Merge(std::move(gather->per_pod), gather->top_k);
    const auto merge_end = std::chrono::steady_clock::now();
    counters_.merge_wall_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(merge_end -
                                                             merge_start)
            .count());
    ++counters_.merges;
    result.latency = simulator_->Now() - gather->submitted_at;
    ++counters_.delivered;
    if (result.partial) ++counters_.partial;
    if (obs_gather_latency_us_ != nullptr) {
        obs_gather_latency_us_->ObserveLatency(result.latency);
    }
    if (gather->obs_span != 0) {
        obs_->tracer.Instant("merge", gather->obs_trace, gather->obs_span, 0,
                             simulator_->Now(),
                             static_cast<std::int64_t>(result.top.size()),
                             static_cast<std::int64_t>(result.answered));
        obs_->tracer.Span("gather", gather->obs_trace, gather->obs_span,
                          gather->obs_parent, 0, gather->submitted_at,
                          simulator_->Now(), result.partial ? 0 : 1,
                          static_cast<std::int64_t>(result.doc_count));
    }
    if (gather->on_complete) gather->on_complete(result);
}

}  // namespace catapult::service
