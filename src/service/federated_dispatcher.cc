#include "service/federated_dispatcher.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>

#include "common/log.h"
#include "common/object_pool.h"

namespace catapult::service {

const char* ToString(FederationPolicy policy) {
    switch (policy) {
      case FederationPolicy::kRoundRobin: return "round_robin";
      case FederationPolicy::kLeastInFlight: return "least_in_flight";
      case FederationPolicy::kModelAffinity: return "model_affinity";
      case FederationPolicy::kScoreWeighted: return "score_weighted";
    }
    return "?";
}

FederatedDispatcher::FederatedDispatcher(sim::Simulator* simulator,
                                         Config config)
    : simulator_(simulator), config_(config) {
    assert(simulator_ != nullptr);
    assert(config_.max_retries >= 0);
}

void FederatedDispatcher::SetObservability(obs::ShardObs* obs) {
    obs_ = obs;
    obs_latency_us_ =
        obs_ ? obs_->registry.histogram("federation.query_latency_us")
             : nullptr;
}

FederatedDispatcher::~FederatedDispatcher() {
    for (auto& slot : pods_) {
        for (auto& slice : slot.slices) {
            if (slice.health_subscription >= 0) {
                slice.context->health_monitor().RemoveFailureSubscriber(
                    slice.health_subscription);
            }
            slice.context->pool().set_on_rings_available_changed(nullptr);
        }
        if (!slot.slices.empty()) continue;
        if (slot.health_subscription >= 0) {
            slot.context->health_monitor().RemoveFailureSubscriber(
                slot.health_subscription);
        }
        if (slot.shard >= 0) {
            slot.context->pool().set_on_rings_available_changed(nullptr);
        }
    }
}

void FederatedDispatcher::BindShardGroup(const ShardBinding& binding) {
    assert(pods_.empty() && "bind before the first pod attach");
    assert(binding.group != nullptr);
    assert(binding.coordinator_shard >= 0 &&
           binding.coordinator_shard < binding.group->shard_count());
    // The per-edge lookahead contract replaces the old hop >= epoch
    // check: each attach declares its actual hop latencies as the
    // group's edge lookaheads (DeclareShardEdges), so hops narrower
    // than the uniform default are legal — the group's bounds simply
    // tighten on those edges instead of the whole federation slowing.
    assert(binding.inject_hop > 0);
    assert(binding.completion_hop > 0);
    binding_ = binding;
}

void FederatedDispatcher::DeclareShardEdges(int shard) {
    sim::SimulatorGroup* group = binding_.group;
    const int coord = binding_.coordinator_shard;
    // The real hop costs, asserted at attach and re-asserted on
    // re-admission: a false return means someone narrowed an edge the
    // group already ran with — a broken lookahead promise.
    bool ok = group->SetEdgeLookahead(coord, shard, binding_.inject_hop);
    assert(ok && "inject hop narrower than the edge already promised");
    ok = group->SetEdgeLookahead(shard, coord, binding_.completion_hop);
    assert(ok && "completion hop narrower than the edge already promised");
    (void)ok;
    // Pods (and slices) never message each other directly — everything
    // crosses the coordinator — so those edges are unreachable, and a
    // shard's advance is bounded only by its real inbound paths.
    for (const int other : attached_shards_) {
        if (other == shard) return;  // re-assertion (ReadmitPod)
        group->SetEdgeLookahead(shard, other,
                                sim::SimulatorGroup::kUnreachable);
        group->SetEdgeLookahead(other, shard,
                                sim::SimulatorGroup::kUnreachable);
    }
    attached_shards_.push_back(shard);
}

int FederatedDispatcher::AttachPod(mgmt::PodContext* pod) {
    return AttachPodInternal(pod, /*shard=*/-1);
}

int FederatedDispatcher::AttachPodShard(mgmt::PodContext* pod, int shard) {
    assert(sharded() && "BindShardGroup first");
    assert(shard >= 0 && shard < binding_.group->shard_count());
    assert(shard != binding_.coordinator_shard &&
           "a pod cannot share the coordinator shard");
    return AttachPodInternal(pod, shard);
}

int FederatedDispatcher::AttachPodSlices(const std::vector<PodSlice>& slices) {
    assert(sharded() && "BindShardGroup first");
    assert(!slices.empty());
    if (pod_count() >= 64) {
        LOG_ERROR("federation")
            << "rotation full: 64 pods per dispatcher; pod "
            << slices.front().context->pod_id() << " refused";
        return -1;
    }
    const int index = pod_count();
    PodSlot slot;
    slot.context = slices.front().context;
    slot.shard = slices.front().shard;
    int total_nodes = 0;
    for (const PodSlice& s : slices) {
        assert(s.context != nullptr);
        assert(s.shard >= 0 && s.shard < binding_.group->shard_count());
        assert(s.shard != binding_.coordinator_shard);
        SliceState state;
        state.context = s.context;
        state.shard = s.shard;
        state.node_offset = s.node_offset;
        state.rings_view = s.context->pool().available_rings();
        slot.rings_view += state.rings_view;
        total_nodes += s.context->fabric().node_count();
        slot.slices.push_back(std::move(state));
        DeclareShardEdges(s.shard);
    }
    slot.node_dead.assign(static_cast<std::size_t>(total_nodes), 0);
    pods_.push_back(std::move(slot));
    for (int si = 0; si < static_cast<int>(slices.size()); ++si) {
        AttachSliceSeams(index, si);
    }
    return index;
}

void FederatedDispatcher::AttachSliceSeams(int pod_index, int slice_index) {
    SliceState& slice =
        pods_[static_cast<std::size_t>(pod_index)]
            .slices[static_cast<std::size_t>(slice_index)];
    mgmt::PodContext* pod = slice.context;
    sim::SimulatorGroup* group = binding_.group;
    const int coord = binding_.coordinator_shard;
    const Time hop = binding_.completion_hop;
    const int shard = slice.shard;
    const int node_offset = slice.node_offset;
    // Same three seams a whole-pod shard gets (health reports, score
    // feed, ring availability), per slice, each shipped one completion
    // hop to the coordinator. Reports remap into the logical pod's
    // node space; scores fold into a pod-level aggregate; availability
    // sums into the pod-level rings_view the admission check reads.
    slice.health_subscription = pod->health_monitor().AddFailureSubscriber(
        [this, group, coord, hop, pod_index, node_offset,
         shard](const mgmt::MachineReport& report) {
            mgmt::MachineReport remapped = report;
            remapped.node += node_offset;
            group->Post(shard, coord, group->shard(shard).Now() + hop,
                        [this, pod_index, remapped] {
                            ApplyMachineReport(pod_index, remapped);
                        });
        });
    slice.score_subscription = pod->health_feed().SubscribeScoped(
        [this, group, coord, hop, pod_index, slice_index,
         shard](const mgmt::HealthScoreSample& sample) {
            group->Post(shard, coord, group->shard(shard).Now() + hop,
                        [this, pod_index, slice_index, sample] {
                            OnSliceHealthSample(pod_index, slice_index,
                                                sample);
                        },
                        sim::EventPriority::kDeliver, /*daemon=*/true);
        });
    pod->pool().set_on_rings_available_changed(
        [this, group, coord, hop, pod_index, slice_index, shard](int rings) {
            group->Post(shard, coord, group->shard(shard).Now() + hop,
                        [this, pod_index, slice_index, rings] {
                            PodSlot& slot =
                                pods_[static_cast<std::size_t>(pod_index)];
                            SliceState& s = slot.slices[
                                static_cast<std::size_t>(slice_index)];
                            slot.rings_view += rings - s.rings_view;
                            s.rings_view = rings;
                        });
        });
}

void FederatedDispatcher::OnSliceHealthSample(
    int pod_index, int slice_index, const mgmt::HealthScoreSample& sample) {
    PodSlot& slot = pods_[static_cast<std::size_t>(pod_index)];
    SliceState& slice =
        slot.slices[static_cast<std::size_t>(slice_index)];
    slice.health_score = sample.score;
    slice.band = sample.band;
    // Pod-level aggregate: the worst slice past warm-up. A pod is only
    // as healthy as its sickest ring — one degrading slice must pull
    // routing weight off the whole pod the same way a degrading
    // whole-pod score does — and while every slice is still warming
    // the pod keeps its cold-start grace.
    mgmt::HealthScoreSample aggregate = sample;
    aggregate.score = 1.0;
    aggregate.band = mgmt::HealthBand::kWarmingUp;
    for (const SliceState& s : slot.slices) {
        if (s.band == mgmt::HealthBand::kWarmingUp) continue;
        if (aggregate.band == mgmt::HealthBand::kWarmingUp ||
            s.health_score < aggregate.score) {
            aggregate.score = s.health_score;
            aggregate.band = s.band;
        }
    }
    OnHealthSample(pod_index, aggregate);
}

int FederatedDispatcher::AttachPodInternal(mgmt::PodContext* pod, int shard) {
    assert(pod != nullptr);
    if (pod_count() >= 64) {
        // The per-query tried-set is a 64-bit mask; a 65th pod would
        // alias bit 0 (shift UB). Enforced in release builds too — the
        // pod is refused, not silently mis-tracked.
        LOG_ERROR("federation")
            << "rotation full: 64 pods per dispatcher; pod "
            << pod->pod_id() << " refused";
        return -1;
    }
    const int index = pod_count();
    PodSlot slot;
    slot.context = pod;
    slot.shard = shard;
    slot.node_dead.assign(
        static_cast<std::size_t>(pod->fabric().node_count()), 0);
    if (shard >= 0) DeclareShardEdges(shard);
    // The health plane is the fast path for whole-pod loss: once every
    // node of a pod is flagged for manual service the pod can never
    // return without operator action, so the breaker latches open and
    // the pod is skipped without probing — no query has to die to
    // rediscover it. Partial failures stay the pool's business (it
    // drains only the hit ring) and only feed the stats here.
    //
    // The predictive plane: every published score updates the slot and
    // drives the shed/unshed hysteresis. Pods without a running
    // forecaster never publish, so they stay default-healthy here.
    if (shard < 0) {
        slot.health_subscription = pod->health_monitor().AddFailureSubscriber(
            [this, index](const mgmt::MachineReport& report) {
                ApplyMachineReport(index, report);
            });
        slot.score_subscription = pod->health_feed().SubscribeScoped(
            [this, index](const mgmt::HealthScoreSample& sample) {
                OnHealthSample(index, sample);
            });
    } else {
        // Sharded federation: these callbacks fire on the pod's shard
        // and must not touch dispatcher state there. Each ships its
        // payload (a plain copy) to the coordinator through the group
        // mailbox, one completion hop away — pod-boundary telemetry
        // rides the same return path completions do.
        sim::SimulatorGroup* group = binding_.group;
        const int coord = binding_.coordinator_shard;
        const Time hop = binding_.completion_hop;
        slot.health_subscription = pod->health_monitor().AddFailureSubscriber(
            [this, group, coord, hop, index,
             shard](const mgmt::MachineReport& report) {
                group->Post(shard, coord, group->shard(shard).Now() + hop,
                            [this, index, report] {
                                ApplyMachineReport(index, report);
                            });
            });
        slot.score_subscription = pod->health_feed().SubscribeScoped(
            [this, group, coord, hop, index,
             shard](const mgmt::HealthScoreSample& sample) {
                // Daemon: periodic score publishing must not keep the
                // group's Run() alive once foreground work drains.
                group->Post(shard, coord, group->shard(shard).Now() + hop,
                            [this, index, sample] {
                                OnHealthSample(index, sample);
                            },
                            sim::EventPriority::kDeliver, /*daemon=*/true);
            });
        // Coordinator-side ring availability: seeded now, then kept
        // fresh by pushed updates on every rotation change. The view is
        // one hop stale by construction — the optimistic-admission
        // window the pod-side reject path covers.
        slot.rings_view = pod->pool().available_rings();
        pod->pool().set_on_rings_available_changed(
            [this, group, coord, hop, index, shard](int rings) {
                group->Post(shard, coord, group->shard(shard).Now() + hop,
                            [this, index, rings] {
                                pods_[static_cast<std::size_t>(index)]
                                    .rings_view = rings;
                            });
            });
    }
    pods_.push_back(std::move(slot));
    return index;
}

void FederatedDispatcher::ApplyMachineReport(
    int pod_index, const mgmt::MachineReport& report) {
    PodSlot& hit = pods_[static_cast<std::size_t>(pod_index)];
    ++hit.fault_reports;
    if (report.fault != mgmt::FaultType::kUnresponsiveFatal) return;
    // Distinct nodes only: a re-investigation of an already-fatal node
    // emits a duplicate report, which must not push a partially-alive
    // pod over the latch threshold.
    if (report.node < 0 ||
        report.node >= static_cast<int>(hit.node_dead.size()) ||
        hit.node_dead[static_cast<std::size_t>(report.node)] != 0) {
        return;
    }
    hit.node_dead[static_cast<std::size_t>(report.node)] = 1;
    ++hit.dead_nodes;
    // The ledger spans the whole logical pod (every slice of a
    // sub-sharded one), so the latch still means "every node gone".
    if (hit.dead_nodes >= static_cast<int>(hit.node_dead.size())) {
        if (simulator_->Now() >= hit.breaker_open_until) {
            ++counters_.breaker_trips;
        }
        hit.breaker_open_until = std::numeric_limits<Time>::max();
        LOG_WARN("federation")
            << "pod " << hit.context->pod_id()
            << " lost (every node fatal); latched out of rotation";
    }
}

void FederatedDispatcher::OnHealthSample(
    int pod_index, const mgmt::HealthScoreSample& sample) {
    PodSlot& slot = pods_[static_cast<std::size_t>(pod_index)];
    slot.health_score = sample.score;
    slot.health_band = sample.band;
    // Cold-start grace: a pod still warming up (fresh attach or fresh
    // re-admission) is never shed on a half-filled trend window.
    if (sample.band == mgmt::HealthBand::kWarmingUp) return;
    if (!slot.shed && sample.score < config_.shed_floor) {
        slot.shed = true;
        ++shed_pod_count_;
        ++slot.stat_shed_transitions;
        ++counters_.sheds;
        LOG_WARN("federation")
            << "pod " << slot.context->pod_id() << " shed (score "
            << sample.score << " < floor " << config_.shed_floor
            << "); probing one query at a time";
    } else if (slot.shed && sample.score >= config_.shed_exit) {
        // Hysteresis: rejoin only once the score clears the exit
        // threshold, so a score hovering at the floor cannot flap the
        // pod in and out of rotation.
        slot.shed = false;
        --shed_pod_count_;
        LOG_INFO("federation")
            << "pod " << slot.context->pod_id()
            << " recovered past shed hysteresis (score " << sample.score
            << " >= " << config_.shed_exit << "); back in rotation";
    }
}

void FederatedDispatcher::ReadmitPod(int index) {
    PodSlot& slot = pods_[static_cast<std::size_t>(index)];
    const Time now = simulator_->Now();
    // Re-assert the pod's edge lookaheads: servicing must not have
    // shortened any hop the group already ran with (the group rejects
    // a narrowed edge; widening or re-stating the same hop is a no-op).
    if (slot.shard >= 0) {
        if (slot.slices.empty()) {
            DeclareShardEdges(slot.shard);
        } else {
            for (const SliceState& s : slot.slices) DeclareShardEdges(s.shard);
        }
    }
    // Breaker reset, fatal latch included: the dead-node ledger
    // restarts from zero, so a fresh fatal fault on the serviced pod
    // re-counts toward a new latch instead of inheriting the old one.
    slot.breaker_open_until = 0;
    slot.breaker_opened_at = now;  // pre-readmission stragglers ignored
    slot.failure_streak = 0;
    slot.probe_in_flight = false;
    std::fill(slot.node_dead.begin(), slot.node_dead.end(), 0);
    slot.dead_nodes = 0;
    if (slot.shed) --shed_pod_count_;
    slot.shed = false;
    slot.health_score = 1.0;
    slot.health_band = mgmt::HealthBand::kWarmingUp;
    // Blackout-era slice scores must not poison the first post-service
    // aggregate; each slice re-earns its band from its reset forecaster.
    for (SliceState& s : slot.slices) {
        s.health_score = 1.0;
        s.band = mgmt::HealthBand::kWarmingUp;
    }
    slot.warmup_start = now;
    slot.warmup_until = now + config_.readmission_warmup;
    ++slot.stat_readmitted;
    ++counters_.readmissions;
    LOG_INFO("federation")
        << "pod " << slot.context->pod_id()
        << " re-admitted; warm-up ramp "
        << ToMicroseconds(config_.readmission_warmup) << " us";
}

FederatedDispatcher::PodStats FederatedDispatcher::pod_stats(
    int index) const {
    const PodSlot& slot = pods_[static_cast<std::size_t>(index)];
    PodStats stats;
    stats.in_flight = slot.in_flight;
    stats.eligible = Eligible(slot);
    stats.shed = slot.shed;
    stats.health_score = slot.health_score;
    stats.band = slot.health_band;
    stats.shed_queries = slot.stat_shed_queries;
    stats.shed_transitions = slot.stat_shed_transitions;
    stats.rejected = slot.stat_rejected;
    stats.readmitted = slot.stat_readmitted;
    stats.fault_reports = slot.fault_reports;
    stats.dead_nodes = slot.dead_nodes;
    return stats;
}

bool FederatedDispatcher::Eligible(const PodSlot& slot) const {
    // Breaker first: the fatal-pod latch must win even over a
    // stale-good health score (a forecaster that stopped publishing —
    // or never ran — leaves score 1.0 behind).
    if (simulator_->Now() < slot.breaker_open_until) return false;
    // Probation expired but the breaker has not closed yet: the pod is
    // half-open and admits exactly one probe query at a time — the
    // full traffic share returns only once a probe succeeds.
    if (slot.breaker_open_until != 0 && slot.probe_in_flight) return false;
    // Proactively shed by the predictive plane: out of the normal
    // rotation (PickShedProbe trickles one query at a time through).
    if (slot.shed) return false;
    int cap = config_.max_in_flight_per_pod;
    if (cap > 0) {
        // Graceful shed-before-failure: a declining pod's admission
        // cap drains with its score — in every band past the grace
        // window, so a Critical-but-unshed pod never gets a *larger*
        // cap than a Degraded one — and a freshly re-admitted pod's
        // cap ramps up with its warm-up, so pressure moves off (or
        // back onto) a pod gradually instead of at the breaker's edge.
        if (slot.health_band != mgmt::HealthBand::kWarmingUp) {
            cap = std::max(
                1, static_cast<int>(static_cast<double>(cap) *
                                    slot.health_score));
        }
        cap = std::max(1, static_cast<int>(static_cast<double>(cap) *
                                           WarmupRamp(slot)));
        if (slot.in_flight >= cap) return false;
    }
    // Sharded mode reads the pushed availability proxy — the pod's pool
    // lives on another shard and must not be touched synchronously.
    if (slot.shard >= 0) return slot.rings_view > 0;
    return slot.context->pool().available_rings() > 0;
}

double FederatedDispatcher::WarmupRamp(const PodSlot& slot) const {
    // Linear re-admission ramp from the configured floor to full over
    // [warmup_start, warmup_until); 1.0 outside the window.
    const Time now = simulator_->Now();
    if (now >= slot.warmup_until || slot.warmup_until <= slot.warmup_start) {
        return 1.0;
    }
    const double ramp =
        static_cast<double>(now - slot.warmup_start) /
        static_cast<double>(slot.warmup_until - slot.warmup_start);
    return config_.warmup_weight_floor +
           (1.0 - config_.warmup_weight_floor) * ramp;
}

double FederatedDispatcher::EffectiveWeight(const PodSlot& slot) const {
    // A warming-up pod has no verdict yet and weighs as healthy; a
    // banded pod weighs by its score, floored so a degraded-but-unshed
    // pod still sees trickle traffic (the signal the breaker and the
    // forecaster both need).
    const double weight = slot.health_band == mgmt::HealthBand::kWarmingUp
                              ? 1.0
                              : std::max(slot.health_score, 0.05);
    return weight * WarmupRamp(slot);
}

bool FederatedDispatcher::pod_eligible(int index) const {
    return Eligible(pods_[static_cast<std::size_t>(index)]);
}

int FederatedDispatcher::PickPod(std::uint32_t model_id,
                                 std::uint64_t tried) {
    last_wrr_debit_ = 0.0;  // only the WRR branch charges credit
    const int n = pod_count();
    if (n == 0) return -1;
    const auto skipped = [tried](int i) {
        return (tried >> static_cast<unsigned>(i)) & 1u;
    };

    if (config_.policy == FederationPolicy::kModelAffinity) {
        // Home pod by model hash: every query for one model lands on
        // one pod, so the federation's pods cache disjoint model
        // working sets and cross-pod reload churn drops. Failover (or
        // an ineligible home) falls back to least-in-flight below.
        const int home = static_cast<int>(model_id % static_cast<std::uint32_t>(n));
        if (!skipped(home) && Eligible(pods_[static_cast<std::size_t>(home)])) {
            ++counters_.affinity_hits;
            return home;
        }
    }

    if (config_.policy == FederationPolicy::kRoundRobin) {
        for (int step = 0; step < n; ++step) {
            const std::size_t at = (rr_cursor_ + static_cast<std::size_t>(step)) %
                                   static_cast<std::size_t>(n);
            if (skipped(static_cast<int>(at))) continue;
            if (Eligible(pods_[at])) {
                rr_cursor_ = at + 1;
                return static_cast<int>(at);
            }
        }
        return PickShedProbe(tried);
    }

    if (config_.policy == FederationPolicy::kScoreWeighted) {
        // Smooth weighted round-robin (deterministic, no RNG): every
        // eligible pod accrues credit equal to its weight, the richest
        // pod wins and pays the round's total back — over time each
        // pod's share converges to weight / sum(weights), without the
        // bursts a quantized scheme would produce. The health score is
        // a *trend* signal and lags a fresh failure by a window, so
        // the instantaneous weight also divides by outstanding load:
        // a pod whose queries have stopped returning (in-flight piling
        // up) loses share immediately, before the forecaster has seen
        // enough to shed it — while an idle warming-up pod still gets
        // its guaranteed ramp share (credit accrual cannot starve).
        int best = -1;
        double total = 0.0;
        for (int i = 0; i < n; ++i) {
            if (skipped(i)) continue;
            PodSlot& slot = pods_[static_cast<std::size_t>(i)];
            if (!Eligible(slot)) continue;
            const double weight = EffectiveWeight(slot) /
                                  (1.0 + static_cast<double>(slot.in_flight));
            slot.wrr_credit += weight;
            total += weight;
            if (best < 0 ||
                slot.wrr_credit >
                    pods_[static_cast<std::size_t>(best)].wrr_credit) {
                best = i;
            }
        }
        if (best >= 0) {
            pods_[static_cast<std::size_t>(best)].wrr_credit -= total;
            last_wrr_debit_ = total;
            return best;
        }
        return PickShedProbe(tried);
    }

    // Least-in-flight (also the affinity fallback).
    int best = -1;
    for (int i = 0; i < n; ++i) {
        if (skipped(i)) continue;
        const PodSlot& slot = pods_[static_cast<std::size_t>(i)];
        if (!Eligible(slot)) continue;
        if (best < 0 ||
            slot.in_flight < pods_[static_cast<std::size_t>(best)].in_flight) {
            best = i;
        }
    }
    if (best >= 0) return best;
    return PickShedProbe(tried);
}

void FederatedDispatcher::RefundFailedPick(int pod_index) {
    if (last_wrr_debit_ == 0.0) return;
    pods_[static_cast<std::size_t>(pod_index)].wrr_credit += last_wrr_debit_;
    last_wrr_debit_ = 0.0;
}

int FederatedDispatcher::PickShedProbe(std::uint64_t tried) {
    // No pod is in normal rotation: a shed pod beats a reject. Shed is
    // precautionary (the predictive plane may be wrong, or the fault
    // may have cleared), so admit one probe query at a time — the
    // half-open pattern — rather than writing the capacity off.
    const int n = pod_count();
    for (int i = 0; i < n; ++i) {
        if ((tried >> static_cast<unsigned>(i)) & 1u) continue;
        const PodSlot& slot = pods_[static_cast<std::size_t>(i)];
        if (!slot.shed || slot.probe_in_flight) continue;
        if (simulator_->Now() < slot.breaker_open_until) continue;
        if (config_.max_in_flight_per_pod > 0 &&
            slot.in_flight >= config_.max_in_flight_per_pod) {
            continue;
        }
        const int rings = slot.shard >= 0
                              ? slot.rings_view
                              : slot.context->pool().available_rings();
        if (rings > 0) return i;
    }
    return -1;
}

host::SendStatus FederatedDispatcher::Inject(
    int thread, const rank::CompressedRequest& request,
    std::function<void(const ScoreResult&)> on_complete) {
    return InjectPreferring(-1, thread, request, std::move(on_complete));
}

host::SendStatus FederatedDispatcher::InjectPreferring(
    int preferred_pod, int thread, const rank::CompressedRequest& request,
    std::function<void(const ScoreResult&)> on_complete) {
    // Walk distinct picks until one pod accepts. An immediate pod-level
    // reject (all rings mid-recovery, slot contention on the chosen
    // host) is not a pod failure — just try the next pod this instant.
    // The query context (request copy + callback) is only materialized
    // once a pod is actually eligible, so the admission-cap reject
    // path — the open-loop hot path under overload — stays
    // allocation-free.
    std::shared_ptr<QueryContext> query;
    std::uint64_t tried = 0;
    const auto materialize = [&] {
        if (query) return;
        query = MakePooled<QueryContext>();
        query->thread = thread;
        query->request = request;
        query->on_complete = std::move(on_complete);
        query->accepted_at = simulator_->Now();
        query->retries_left = config_.max_retries;
        query->obs_trace = 0;
        query->obs_span = 0;
        query->obs_parent = 0;
        if (obs_ != nullptr && obs_->tracing()) {
            // Join the caller's timeline (a scatter gather stamped the
            // request) or open a fresh one; pod-side document spans
            // parent on this query span through the forwarded request.
            query->obs_parent = request.query.obs_parent;
            query->obs_trace = request.query.obs_trace != 0
                                   ? request.query.obs_trace
                                   : obs_->tracer.NextTraceId();
            query->obs_span = obs_->tracer.NextSpanId();
            query->request.query.obs_trace = query->obs_trace;
            query->request.query.obs_parent = query->obs_span;
        }
    };
    const auto note_accepted = [&](int pick) {
        ++counters_.accepted;
        // Attribution for the shed stats: this accepted query was
        // routed around every pod currently shed (the numeric
        // evidence benches assert instead of scraping logs). The
        // scan is skipped outright in the healthy steady state.
        if (shed_pod_count_ > 0) {
            for (int i = 0; i < pod_count(); ++i) {
                PodSlot& slot = pods_[static_cast<std::size_t>(i)];
                if (slot.shed && i != pick) ++slot.stat_shed_queries;
            }
        }
    };
    if (preferred_pod >= 0 && preferred_pod < pod_count() &&
        Eligible(pods_[static_cast<std::size_t>(preferred_pod)])) {
        // The caller's placement preference (a scatter shard's assigned
        // pod) beats the policy pick; a refusal falls through to the
        // normal walk. No WRR credit moves here — the preference never
        // went through PickPod, so there is nothing to refund.
        materialize();
        if (TryInject(preferred_pod, query) == host::SendStatus::kOk) {
            note_accepted(preferred_pod);
            return host::SendStatus::kOk;
        }
        tried |= std::uint64_t{1} << static_cast<unsigned>(preferred_pod);
    }
    for (int attempts = 0; attempts < pod_count(); ++attempts) {
        const int pick = PickPod(request.query.model_id, tried);
        if (pick < 0) break;
        materialize();
        if (TryInject(pick, query) == host::SendStatus::kOk) {
            note_accepted(pick);
            return host::SendStatus::kOk;
        }
        RefundFailedPick(pick);
        tried |= std::uint64_t{1} << static_cast<unsigned>(pick);
    }
    ++counters_.rejected;
    return host::SendStatus::kTimeout;
}

std::vector<int> FederatedDispatcher::EligiblePods() const {
    std::vector<int> eligible;
    eligible.reserve(pods_.size());
    for (int i = 0; i < pod_count(); ++i) {
        if (Eligible(pods_[static_cast<std::size_t>(i)])) {
            eligible.push_back(i);
        }
    }
    return eligible;
}

host::SendStatus FederatedDispatcher::TryInject(
    int pod_index, std::shared_ptr<QueryContext> query) {
    PodSlot& slot = pods_[static_cast<std::size_t>(pod_index)];
    const Time injected_at = simulator_->Now();
    // Admission through a half-open breaker — or into a shed pod — is
    // a probe: exactly one at a time (Eligible / PickShedProbe gate
    // the rest), and its outcome alone decides whether the breaker
    // closes or re-opens.
    const bool is_probe = slot.shed ||
                          (slot.breaker_open_until != 0 &&
                           slot.breaker_open_until !=
                               std::numeric_limits<Time>::max() &&
                           injected_at >= slot.breaker_open_until);
    if (slot.shard >= 0) {
        // Mailbox mode: admit optimistically and ship the inject one
        // hop to the pod's shard. The pool's verdict (completion or
        // refusal) comes back a completion hop later; a refusal is
        // handled as a failover, not re-walked synchronously — the
        // admission decision here was made on a one-hop-stale view and
        // that latency is real.
        //
        // A sub-sharded pod adds a placement step: the query lands on
        // the least-loaded slice whose ring is in rotation (mirror
        // view), ties broken by a rotating cursor so light load still
        // spreads over every ring instead of camping on slice 0 — the
        // coordinator-side analogue of the pool's least-in-flight ring
        // dispatch. Deterministic: cursor state lives on the
        // coordinator shard only.
        int slice_index = -1;
        int target_shard = slot.shard;
        if (!slot.slices.empty()) {
            const int n = static_cast<int>(slot.slices.size());
            for (int i = 0; i < n; ++i) {
                const int si = (slot.slice_rr + i) % n;
                const SliceState& s =
                    slot.slices[static_cast<std::size_t>(si)];
                if (s.rings_view <= 0) continue;
                if (slice_index < 0 ||
                    s.in_flight <
                        slot.slices[static_cast<std::size_t>(slice_index)]
                            .in_flight) {
                    slice_index = si;
                }
            }
            if (slice_index < 0) {
                // Every slice's ring is out of rotation on the mirror:
                // synchronous refusal, like a direct-mode pool reject —
                // the caller walks on without spending a retry.
                ++slot.stat_rejected;
                return host::SendStatus::kTimeout;
            }
            target_shard =
                slot.slices[static_cast<std::size_t>(slice_index)].shard;
            slot.slice_rr = (slice_index + 1) % n;
        }
        const std::uint64_t query_id = next_query_id_++;
        PendingInject pending;
        pending.query = query;
        pending.injected_at = injected_at;
        pending.was_probe = is_probe;
        pending.slice = slice_index;
        pending_.emplace(query_id, std::move(pending));
        const int thread = query->thread;
        const rank::CompressedRequest request = query->request;
        binding_.group->Post(
            binding_.coordinator_shard, target_shard,
            injected_at + binding_.inject_hop,
            [this, pod_index, slice_index, query_id, thread, request] {
                PodInjectOnShard(pod_index, slice_index, query_id, thread,
                                 request);
            });
        ++slot.in_flight;
        if (slice_index >= 0) {
            ++slot.slices[static_cast<std::size_t>(slice_index)].in_flight;
        }
        if (is_probe) slot.probe_in_flight = true;
        if (query->obs_span != 0) {
            obs_->tracer.Instant("inject", query->obs_trace, query->obs_span,
                                 0, injected_at, pod_index, slice_index);
        }
        return host::SendStatus::kOk;
    }
    const auto status = slot.context->pool().Inject(
        query->thread, query->request,
        [this, pod_index, query, injected_at,
         is_probe](const ScoreResult& result) {
            OnPodResult(pod_index, query, injected_at, is_probe, result);
        });
    if (status == host::SendStatus::kOk) {
        ++slot.in_flight;
        if (is_probe) slot.probe_in_flight = true;
        if (query->obs_span != 0) {
            obs_->tracer.Instant("inject", query->obs_trace, query->obs_span,
                                 0, injected_at, pod_index, /*a2=*/-1);
        }
    } else {
        ++slot.stat_rejected;
    }
    return status;
}

void FederatedDispatcher::PodInjectOnShard(
    int pod_index, int slice_index, std::uint64_t query_id, int thread,
    const rank::CompressedRequest& request) {
    // Runs on the pod's (or slice's) shard. Only the slot's immutable
    // identity (context pointer, shard index) may be read here — every
    // mutable dispatcher field belongs to the coordinator thread.
    PodSlot& slot = pods_[static_cast<std::size_t>(pod_index)];
    mgmt::PodContext* target = slot.context;
    int shard = slot.shard;
    if (slice_index >= 0) {
        const SliceState& slice =
            slot.slices[static_cast<std::size_t>(slice_index)];
        target = slice.context;
        shard = slice.shard;
    }
    sim::SimulatorGroup* group = binding_.group;
    const int coord = binding_.coordinator_shard;
    const Time hop = binding_.completion_hop;
    const auto status = target->pool().Inject(
        thread, request,
        [this, group, coord, hop, shard, pod_index,
         query_id](const ScoreResult& result) {
            group->Post(shard, coord, group->shard(shard).Now() + hop,
                        [this, pod_index, query_id, result] {
                            OnShardResult(pod_index, query_id, result);
                        });
        });
    if (status != host::SendStatus::kOk) {
        group->Post(shard, coord, group->shard(shard).Now() + hop,
                    [this, pod_index, query_id] {
                        OnShardReject(pod_index, query_id);
                    });
    }
}

void FederatedDispatcher::OnShardResult(int pod_index, std::uint64_t query_id,
                                        const ScoreResult& result) {
    auto it = pending_.find(query_id);
    if (it == pending_.end()) return;  // torn down mid-flight
    PendingInject pending = std::move(it->second);
    pending_.erase(it);
    if (pending.slice >= 0) {
        --pods_[static_cast<std::size_t>(pod_index)]
              .slices[static_cast<std::size_t>(pending.slice)]
              .in_flight;
    }
    OnPodResult(pod_index, std::move(pending.query), pending.injected_at,
                pending.was_probe, result);
}

void FederatedDispatcher::OnShardReject(int pod_index,
                                        std::uint64_t query_id) {
    auto it = pending_.find(query_id);
    if (it == pending_.end()) return;
    PendingInject pending = std::move(it->second);
    pending_.erase(it);
    PodSlot& slot = pods_[static_cast<std::size_t>(pod_index)];
    --slot.in_flight;
    if (pending.slice >= 0) {
        --slot.slices[static_cast<std::size_t>(pending.slice)].in_flight;
    }
    if (pending.was_probe) slot.probe_in_flight = false;
    ++slot.stat_rejected;
    // A pool-level refusal is not a pod failure (no breaker input, as
    // in direct mode) — but unlike direct mode the query was already
    // accepted on the stale view, so the re-route consumes one of its
    // retries instead of continuing the original synchronous walk.
    std::shared_ptr<QueryContext> query = std::move(pending.query);
    if (query->retries_left > 0) {
        --query->retries_left;
        ++counters_.failovers;
        if (query->obs_span != 0) {
            obs_->tracer.Instant("failover", query->obs_trace,
                                 query->obs_span, 0, simulator_->Now(),
                                 pod_index, query->retries_left);
        }
        const int failed_pod = pod_index;
        simulator_->ScheduleAfter(
            config_.retry_backoff, [this, failed_pod, query]() mutable {
                Failover(std::move(query), failed_pod);
            });
        return;
    }
    ScoreResult result;
    result.ok = false;
    Deliver(std::move(query), result);
}

void FederatedDispatcher::OnPodResult(int pod_index,
                                      std::shared_ptr<QueryContext> query,
                                      Time injected_at, bool was_probe,
                                      const ScoreResult& result) {
    PodSlot& slot = pods_[static_cast<std::size_t>(pod_index)];
    --slot.in_flight;
    if (was_probe) slot.probe_in_flight = false;
    if (result.ok) {
        // A success only vouches for the pod's present health when the
        // query was injected after the breaker last opened; a
        // straggler accepted before the trip says nothing and must not
        // cut the probation short.
        if (slot.breaker_open_until == 0 ||
            (slot.breaker_open_until != std::numeric_limits<Time>::max() &&
             injected_at >= slot.breaker_opened_at)) {
            slot.failure_streak = 0;
            if (slot.breaker_open_until != std::numeric_limits<Time>::max()) {
                slot.breaker_open_until = 0;
            }
        }
        // Stamp the pod that actually served the document (failover
        // included) so the scatter-gather tier can attribute answers.
        ScoreResult stamped = result;
        stamped.pod = pod_index;
        Deliver(std::move(query), stamped);
        return;
    }
    RecordFailure(pod_index);
    if (query->retries_left <= 0) {
        Deliver(std::move(query), result);
        return;
    }
    // Zero dropped in-flight retries: the accepted query outlives its
    // pod. Back off a beat (the failed pod's breaker is counting; the
    // survivors need no warm-up) and re-inject away from the failure.
    --query->retries_left;
    ++counters_.failovers;
    if (query->obs_span != 0) {
        obs_->tracer.Instant("failover", query->obs_trace, query->obs_span, 0,
                             simulator_->Now(), pod_index,
                             query->retries_left);
    }
    simulator_->ScheduleAfter(
        config_.retry_backoff, [this, pod_index, query]() mutable {
            Failover(std::move(query), pod_index);
        });
}

void FederatedDispatcher::Failover(std::shared_ptr<QueryContext> query,
                                   int failed_pod) {
    const std::uint64_t failed_bit =
        failed_pod >= 0 && failed_pod < pod_count()
            ? std::uint64_t{1} << static_cast<unsigned>(failed_pod)
            : 0;
    std::uint64_t tried = failed_bit;
    for (int attempts = 0; attempts < pod_count(); ++attempts) {
        int pick = PickPod(query->request.query.model_id, tried);
        if (pick < 0 && (tried & failed_bit) != 0) {
            // Nothing else is eligible; the failed pod itself (a ring
            // may have rejoined) beats losing the query.
            tried &= ~failed_bit;
            pick = PickPod(query->request.query.model_id, tried);
        }
        if (pick < 0) break;
        if (TryInject(pick, query) == host::SendStatus::kOk) return;
        RefundFailedPick(pick);
        tried |= std::uint64_t{1} << static_cast<unsigned>(pick);
    }
    // No pod accepted right now; spend another retry waiting for one
    // to come back, or give up.
    if (query->retries_left > 0) {
        --query->retries_left;
        simulator_->ScheduleAfter(
            config_.retry_backoff, [this, failed_pod, query]() mutable {
                Failover(std::move(query), failed_pod);
            });
        return;
    }
    ScoreResult result;
    result.ok = false;
    Deliver(std::move(query), result);
}

void FederatedDispatcher::RecordFailure(int pod_index) {
    PodSlot& slot = pods_[static_cast<std::size_t>(pod_index)];
    ++slot.failure_streak;
    if (slot.failure_streak < config_.breaker_threshold) return;
    if (slot.breaker_open_until == std::numeric_limits<Time>::max()) return;
    const Time now = simulator_->Now();
    if (now >= slot.breaker_open_until) ++counters_.breaker_trips;
    slot.breaker_open_until = now + config_.breaker_probation;
    slot.breaker_opened_at = now;
}

void FederatedDispatcher::Deliver(std::shared_ptr<QueryContext> query,
                                  ScoreResult result) {
    // User-level latency spans accept to final completion, failover
    // hops included.
    result.latency = simulator_->Now() - query->accepted_at;
    if (result.ok) {
        ++counters_.completed;
    } else {
        ++counters_.lost;
    }
    if (obs_latency_us_ != nullptr) {
        obs_latency_us_->ObserveLatency(result.latency);
    }
    if (query->obs_span != 0) {
        obs_->tracer.Span("query", query->obs_trace, query->obs_span,
                          query->obs_parent, 0, query->accepted_at,
                          simulator_->Now(), result.ok ? 1 : 0, result.pod);
    }
    if (query->on_complete) query->on_complete(result);
}

}  // namespace catapult::service
