#include "service/federated_dispatcher.h"

#include <cassert>
#include <limits>
#include <memory>

#include "common/log.h"

namespace catapult::service {

const char* ToString(FederationPolicy policy) {
    switch (policy) {
      case FederationPolicy::kRoundRobin: return "round_robin";
      case FederationPolicy::kLeastInFlight: return "least_in_flight";
      case FederationPolicy::kModelAffinity: return "model_affinity";
    }
    return "?";
}

FederatedDispatcher::FederatedDispatcher(sim::Simulator* simulator,
                                         Config config)
    : simulator_(simulator), config_(config) {
    assert(simulator_ != nullptr);
    assert(config_.max_retries >= 0);
}

FederatedDispatcher::~FederatedDispatcher() {
    for (auto& slot : pods_) {
        if (slot.health_subscription >= 0) {
            slot.context->health_monitor().RemoveFailureSubscriber(
                slot.health_subscription);
        }
    }
}

int FederatedDispatcher::AttachPod(mgmt::PodContext* pod) {
    assert(pod != nullptr);
    if (pod_count() >= 64) {
        // The per-query tried-set is a 64-bit mask; a 65th pod would
        // alias bit 0 (shift UB). Enforced in release builds too — the
        // pod is refused, not silently mis-tracked.
        LOG_ERROR("federation")
            << "rotation full: 64 pods per dispatcher; pod "
            << pod->pod_id() << " refused";
        return -1;
    }
    const int index = pod_count();
    PodSlot slot;
    slot.context = pod;
    slot.node_dead.assign(
        static_cast<std::size_t>(pod->fabric().node_count()), 0);
    // The health plane is the fast path for whole-pod loss: once every
    // node of a pod is flagged for manual service the pod can never
    // return without operator action, so the breaker latches open and
    // the pod is skipped without probing — no query has to die to
    // rediscover it. Partial failures stay the pool's business (it
    // drains only the hit ring) and only feed the stats here.
    slot.health_subscription = pod->health_monitor().AddFailureSubscriber(
        [this, index](const mgmt::MachineReport& report) {
            PodSlot& hit = pods_[static_cast<std::size_t>(index)];
            ++hit.fault_reports;
            if (report.fault != mgmt::FaultType::kUnresponsiveFatal) return;
            // Distinct nodes only: a re-investigation of an
            // already-fatal node emits a duplicate report, which must
            // not push a partially-alive pod over the latch threshold.
            if (report.node < 0 ||
                report.node >= static_cast<int>(hit.node_dead.size()) ||
                hit.node_dead[static_cast<std::size_t>(report.node)] != 0) {
                return;
            }
            hit.node_dead[static_cast<std::size_t>(report.node)] = 1;
            ++hit.dead_nodes;
            if (hit.dead_nodes >= hit.context->fabric().node_count()) {
                if (simulator_->Now() >= hit.breaker_open_until) {
                    ++counters_.breaker_trips;
                }
                hit.breaker_open_until = std::numeric_limits<Time>::max();
                LOG_WARN("federation")
                    << "pod " << hit.context->pod_id()
                    << " lost (every node fatal); latched out of rotation";
            }
        });
    pods_.push_back(std::move(slot));
    return index;
}

bool FederatedDispatcher::Eligible(const PodSlot& slot) const {
    if (simulator_->Now() < slot.breaker_open_until) return false;
    // Probation expired but the breaker has not closed yet: the pod is
    // half-open and admits exactly one probe query at a time — the
    // full traffic share returns only once a probe succeeds.
    if (slot.breaker_open_until != 0 && slot.probe_in_flight) return false;
    if (config_.max_in_flight_per_pod > 0 &&
        slot.in_flight >= config_.max_in_flight_per_pod) {
        return false;
    }
    return slot.context->pool().available_rings() > 0;
}

bool FederatedDispatcher::pod_eligible(int index) const {
    return Eligible(pods_[static_cast<std::size_t>(index)]);
}

int FederatedDispatcher::PickPod(std::uint32_t model_id,
                                 std::uint64_t tried) {
    const int n = pod_count();
    if (n == 0) return -1;
    const auto skipped = [tried](int i) {
        return (tried >> static_cast<unsigned>(i)) & 1u;
    };

    if (config_.policy == FederationPolicy::kModelAffinity) {
        // Home pod by model hash: every query for one model lands on
        // one pod, so the federation's pods cache disjoint model
        // working sets and cross-pod reload churn drops. Failover (or
        // an ineligible home) falls back to least-in-flight below.
        const int home = static_cast<int>(model_id % static_cast<std::uint32_t>(n));
        if (!skipped(home) && Eligible(pods_[static_cast<std::size_t>(home)])) {
            ++counters_.affinity_hits;
            return home;
        }
    }

    if (config_.policy == FederationPolicy::kRoundRobin) {
        for (int step = 0; step < n; ++step) {
            const std::size_t at = (rr_cursor_ + static_cast<std::size_t>(step)) %
                                   static_cast<std::size_t>(n);
            if (skipped(static_cast<int>(at))) continue;
            if (Eligible(pods_[at])) {
                rr_cursor_ = at + 1;
                return static_cast<int>(at);
            }
        }
        return -1;
    }

    // Least-in-flight (also the affinity fallback).
    int best = -1;
    for (int i = 0; i < n; ++i) {
        if (skipped(i)) continue;
        const PodSlot& slot = pods_[static_cast<std::size_t>(i)];
        if (!Eligible(slot)) continue;
        if (best < 0 ||
            slot.in_flight < pods_[static_cast<std::size_t>(best)].in_flight) {
            best = i;
        }
    }
    return best;
}

host::SendStatus FederatedDispatcher::Inject(
    int thread, const rank::CompressedRequest& request,
    std::function<void(const ScoreResult&)> on_complete) {
    // Walk distinct picks until one pod accepts. An immediate pod-level
    // reject (all rings mid-recovery, slot contention on the chosen
    // host) is not a pod failure — just try the next pod this instant.
    // The query context (request copy + callback) is only materialized
    // once a pod is actually eligible, so the admission-cap reject
    // path — the open-loop hot path under overload — stays
    // allocation-free.
    std::shared_ptr<QueryContext> query;
    std::uint64_t tried = 0;
    for (int attempts = 0; attempts < pod_count(); ++attempts) {
        const int pick = PickPod(request.query.model_id, tried);
        if (pick < 0) break;
        if (!query) {
            query = std::make_shared<QueryContext>();
            query->thread = thread;
            query->request = request;
            query->on_complete = std::move(on_complete);
            query->accepted_at = simulator_->Now();
            query->retries_left = config_.max_retries;
        }
        if (TryInject(pick, query) == host::SendStatus::kOk) {
            ++counters_.accepted;
            return host::SendStatus::kOk;
        }
        tried |= std::uint64_t{1} << static_cast<unsigned>(pick);
    }
    ++counters_.rejected;
    return host::SendStatus::kTimeout;
}

host::SendStatus FederatedDispatcher::TryInject(
    int pod_index, std::shared_ptr<QueryContext> query) {
    PodSlot& slot = pods_[static_cast<std::size_t>(pod_index)];
    const Time injected_at = simulator_->Now();
    // Admission through a half-open breaker is the probe: exactly one
    // at a time (Eligible gates the rest), and its outcome alone
    // decides whether the breaker closes or re-opens.
    const bool is_probe = slot.breaker_open_until != 0 &&
                          slot.breaker_open_until !=
                              std::numeric_limits<Time>::max() &&
                          injected_at >= slot.breaker_open_until;
    const auto status = slot.context->pool().Inject(
        query->thread, query->request,
        [this, pod_index, query, injected_at,
         is_probe](const ScoreResult& result) {
            OnPodResult(pod_index, query, injected_at, is_probe, result);
        });
    if (status == host::SendStatus::kOk) {
        ++slot.in_flight;
        if (is_probe) slot.probe_in_flight = true;
    }
    return status;
}

void FederatedDispatcher::OnPodResult(int pod_index,
                                      std::shared_ptr<QueryContext> query,
                                      Time injected_at, bool was_probe,
                                      const ScoreResult& result) {
    PodSlot& slot = pods_[static_cast<std::size_t>(pod_index)];
    --slot.in_flight;
    if (was_probe) slot.probe_in_flight = false;
    if (result.ok) {
        // A success only vouches for the pod's present health when the
        // query was injected after the breaker last opened; a
        // straggler accepted before the trip says nothing and must not
        // cut the probation short.
        if (slot.breaker_open_until == 0 ||
            (slot.breaker_open_until != std::numeric_limits<Time>::max() &&
             injected_at >= slot.breaker_opened_at)) {
            slot.failure_streak = 0;
            if (slot.breaker_open_until != std::numeric_limits<Time>::max()) {
                slot.breaker_open_until = 0;
            }
        }
        Deliver(std::move(query), result);
        return;
    }
    RecordFailure(pod_index);
    if (query->retries_left <= 0) {
        Deliver(std::move(query), result);
        return;
    }
    // Zero dropped in-flight retries: the accepted query outlives its
    // pod. Back off a beat (the failed pod's breaker is counting; the
    // survivors need no warm-up) and re-inject away from the failure.
    --query->retries_left;
    ++counters_.failovers;
    simulator_->ScheduleAfter(
        config_.retry_backoff, [this, pod_index, query]() mutable {
            Failover(std::move(query), pod_index);
        });
}

void FederatedDispatcher::Failover(std::shared_ptr<QueryContext> query,
                                   int failed_pod) {
    const std::uint64_t failed_bit =
        failed_pod >= 0 && failed_pod < pod_count()
            ? std::uint64_t{1} << static_cast<unsigned>(failed_pod)
            : 0;
    std::uint64_t tried = failed_bit;
    for (int attempts = 0; attempts < pod_count(); ++attempts) {
        int pick = PickPod(query->request.query.model_id, tried);
        if (pick < 0 && (tried & failed_bit) != 0) {
            // Nothing else is eligible; the failed pod itself (a ring
            // may have rejoined) beats losing the query.
            tried &= ~failed_bit;
            pick = PickPod(query->request.query.model_id, tried);
        }
        if (pick < 0) break;
        if (TryInject(pick, query) == host::SendStatus::kOk) return;
        tried |= std::uint64_t{1} << static_cast<unsigned>(pick);
    }
    // No pod accepted right now; spend another retry waiting for one
    // to come back, or give up.
    if (query->retries_left > 0) {
        --query->retries_left;
        simulator_->ScheduleAfter(
            config_.retry_backoff, [this, failed_pod, query]() mutable {
                Failover(std::move(query), failed_pod);
            });
        return;
    }
    ScoreResult result;
    result.ok = false;
    Deliver(std::move(query), result);
}

void FederatedDispatcher::RecordFailure(int pod_index) {
    PodSlot& slot = pods_[static_cast<std::size_t>(pod_index)];
    ++slot.failure_streak;
    if (slot.failure_streak < config_.breaker_threshold) return;
    if (slot.breaker_open_until == std::numeric_limits<Time>::max()) return;
    const Time now = simulator_->Now();
    if (now >= slot.breaker_open_until) ++counters_.breaker_trips;
    slot.breaker_open_until = now + config_.breaker_probation;
    slot.breaker_opened_at = now;
}

void FederatedDispatcher::Deliver(std::shared_ptr<QueryContext> query,
                                  ScoreResult result) {
    // User-level latency spans accept to final completion, failover
    // hops included.
    result.latency = simulator_->Now() - query->accepted_at;
    if (result.ok) {
        ++counters_.completed;
    } else {
        ++counters_.lost;
    }
    if (query->on_complete) query->on_complete(result);
}

}  // namespace catapult::service
