// Federated dispatcher: the cross-pod sharding front end.
//
// The paper's bed is 1,632 servers — many 48-node pods — behind one
// ranking service (§2, §4.2): "the Service Manager ... makes the
// ranking service available to the rest of the datacenter". At
// datacenter level that means one query API fronting every pod. This
// dispatcher is that seam: it owns no hardware, it holds 1..N
// mgmt::PodContext instances, picks a pod per query with a pod-aware
// policy (round-robin, least-in-flight, model-affinity), enforces a
// per-pod admission cap (reject, never queue unboundedly), and
// subscribes to every pod's health plane.
//
// Failure handling composes with the pod-level plane: a draining or
// recovering ring simply drops out of its own pool's rotation, and the
// pool-level reject redirects the query here to another pod. A whole
// lost pod trips a per-pod circuit breaker — consecutive query
// failures open it, a probation window later one probe query may
// half-open it — and every accepted query that dies on a failing pod
// is re-injected onto a surviving pod rather than surfaced as a loss:
// an accepted query only fails to its caller when every retry is
// exhausted or no pod survives.
//
// The predictive plane acts *before* any of that: the dispatcher
// subscribes to each pod's HealthScoreFeed (mgmt::HealthForecaster's
// trend over fault-event rates, heartbeat misses, recovery churn and
// dead nodes). Under kScoreWeighted, traffic is proportional to each
// pod's score; a pod whose score sinks below the shed floor is
// proactively shed — out of normal rotation, still probed one query at
// a time — so a degrading pod stops eating retries before its first
// hard failure. ReadmitPod reverses a latch-out for a serviced pod
// with a warm-up ramp, so a rejoining pod earns its share gradually.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "host/slot_dma_channel.h"
#include "mgmt/health_forecaster.h"
#include "mgmt/pod_context.h"
#include "obs/observability.h"
#include "service/ranking_service.h"
#include "sim/simulator.h"
#include "sim/simulator_group.h"

namespace catapult::service {

/** How the dispatcher shards queries across pods. */
enum class FederationPolicy {
    kRoundRobin,     ///< Cycle through eligible pods.
    kLeastInFlight,  ///< Pod with the fewest dispatcher-accepted queries.
    kModelAffinity,  ///< model_id hashes to a home pod (disjoint model sets).
    /**
     * Traffic proportional to each pod's published health score
     * (smooth weighted round-robin — deterministic, no RNG): a
     * declining pod's share shrinks as its score does, long before the
     * shed floor or the breaker would act.
     */
    kScoreWeighted,
};

const char* ToString(FederationPolicy policy);

class FederatedDispatcher {
  public:
    struct Config {
        FederationPolicy policy = FederationPolicy::kLeastInFlight;
        /**
         * Admission cap: dispatcher-accepted queries in flight per pod;
         * 0 = unbounded. When every eligible pod is at its cap the
         * query is rejected (open-loop admission control — callers see
         * the reject immediately instead of queueing unboundedly).
         */
        int max_in_flight_per_pod = 0;
        /**
         * Cross-pod failover budget for one accepted query: how many
         * times a query whose pod failed it (timeout, drained rings)
         * is re-injected onto another pod before the caller sees the
         * failure.
         */
        int max_retries = 3;
        /** Back-off before a failed query re-injects elsewhere. */
        Time retry_backoff = Microseconds(50);
        /** Consecutive failures before a pod's breaker opens. */
        int breaker_threshold = 6;
        /** How long an open breaker holds the pod out of rotation. */
        Time breaker_probation = Milliseconds(20);

        // --- Predictive shed (health-score feed) ---------------------

        /**
         * Smoothed health score below which a pod is proactively shed:
         * it leaves the normal rotation (one probe query at a time
         * keeps testing it) before the first hard failure, so traffic
         * moves without burning in-flight retries. Hysteresis: the pod
         * rejoins full rotation only above `shed_exit`. A pod still in
         * its cold-start grace (band WarmingUp) is never shed.
         */
        double shed_floor = 0.30;
        double shed_exit = 0.55;
        /**
         * Re-admission warm-up: a pod hot-attached back into rotation
         * (ReadmitPod) earns traffic gradually — its routing weight
         * (and its admission cap, when configured) ramps from
         * `warmup_weight_floor` to full over this window.
         */
        Time readmission_warmup = Milliseconds(60);
        double warmup_weight_floor = 0.15;
    };

    FederatedDispatcher(sim::Simulator* simulator, Config config);

    FederatedDispatcher(const FederatedDispatcher&) = delete;
    FederatedDispatcher& operator=(const FederatedDispatcher&) = delete;

    /** Detaches every health-plane subscription. */
    ~FederatedDispatcher();

    /**
     * Front `pod`: it joins the dispatch rotation and its health plane
     * (confirmed MachineReports) feeds the per-pod failure stats. The
     * pod must outlive this dispatcher. Returns the pod's index in the
     * rotation, or -1 when the rotation is full (64 pods — the
     * per-query tried-set is a 64-bit mask).
     */
    int AttachPod(mgmt::PodContext* pod);

    /**
     * Sharded-federation binding: the dispatcher lives on a
     * SimulatorGroup coordinator shard and every pod (or ring slice)
     * lives on its own shard. Cross-shard traffic — injects,
     * completions, pod-level rejects, health telemetry — travels
     * through the group's mailboxes with these hop latencies. Each
     * attach declares its hops as the group's per-edge lookaheads
     * (coordinator <-> pod edges carry the real hop; pod <-> pod edges
     * are unreachable, nothing ever crosses them directly), and
     * ReadmitPod re-asserts them — a narrowed edge is rejected by the
     * group and asserts here. Must be called before the first pod
     * attach; the dispatcher's own `simulator` must be the coordinator
     * shard's.
     */
    struct ShardBinding {
        sim::SimulatorGroup* group = nullptr;
        int coordinator_shard = 0;
        /** Coordinator -> pod: front-door network + pod DMA doorbell. */
        Time inject_hop = 0;
        /** Pod -> coordinator: completion interrupt + network. */
        Time completion_hop = 0;
    };
    void BindShardGroup(const ShardBinding& binding);

    /**
     * AttachPod for a sharded federation: `pod`'s whole stack runs on
     * group shard `shard`, and this dispatcher talks to it only
     * through mailbox messages. Admission is optimistic: the
     * coordinator tracks each pod's ring availability through pushed
     * updates (one hop stale by construction), accepts the query
     * immediately, and a pod-side refusal comes back as a failover
     * consuming one retry — the price of the hop, mirroring what a
     * real front door pays.
     */
    int AttachPodShard(mgmt::PodContext* pod, int shard);

    /**
     * One ring sub-shard of a logical pod: a self-contained single-ring
     * PodContext slice on its own group shard. `node_offset` maps the
     * slice's local node ids into the logical pod's node space, so
     * health reports aggregate into one pod-level dead-node ledger.
     */
    struct PodSlice {
        mgmt::PodContext* context = nullptr;
        int shard = -1;
        int node_offset = 0;
    };
    /**
     * Attach one logical pod built as ring sub-shard slices. The pod
     * joins the rotation as a single index — policy picks, admission
     * caps, breaker, shed and warm-up all stay pod-level — and every
     * accepted query is then placed on the least-loaded slice whose
     * ring is in rotation (coordinator-mirrored view; ties take the
     * lowest slice). A 1-pod/6-ring workload thus spreads over 6
     * shards instead of serializing on one. Health scores aggregate as
     * the worst slice past warm-up; ring availability as the sum.
     */
    int AttachPodSlices(const std::vector<PodSlice>& slices);

    /** True when BindShardGroup routed this dispatcher through mailboxes. */
    bool sharded() const { return binding_.group != nullptr; }

    /**
     * Inject one query through the federation. kOk means accepted:
     * `on_complete` will eventually fire, and a failure on the chosen
     * pod transparently retries on surviving pods first (the reported
     * latency spans accept to final completion, retries included).
     * Non-kOk means rejected up front: every eligible pod refused the
     * query (admission caps, no ring in rotation anywhere).
     */
    host::SendStatus Inject(int thread, const rank::CompressedRequest& request,
                            std::function<void(const ScoreResult&)> on_complete);

    /**
     * Inject with a placement preference: try `preferred_pod` first
     * (when it is a valid, eligible rotation index) and fall back to
     * the normal policy walk when it refuses. The scatter-gather tier
     * partitions a document set with this — the preference pins the
     * shard's accounting, while failover and retry semantics stay
     * exactly Inject's. `preferred_pod` < 0 is plain Inject.
     */
    host::SendStatus InjectPreferring(
        int preferred_pod, int thread, const rank::CompressedRequest& request,
        std::function<void(const ScoreResult&)> on_complete);

    /**
     * Rotation indices that would be considered for the next query
     * (breaker closed, not shed, under cap, rings in rotation) — the
     * scatter set a front end partitions a document set across.
     */
    std::vector<int> EligiblePods() const;

    int pod_count() const { return static_cast<int>(pods_.size()); }
    mgmt::PodContext& pod(int index) {
        return *pods_[static_cast<std::size_t>(index)].context;
    }

    /** Dispatcher-accepted queries currently in flight on `index`. */
    int pod_in_flight(int index) const {
        return pods_[static_cast<std::size_t>(index)].in_flight;
    }
    /** True when `index` would be considered for the next query. */
    bool pod_eligible(int index) const;
    /** Confirmed health-plane fault reports attributed to `index`. */
    std::uint64_t pod_fault_reports(int index) const {
        return pods_[static_cast<std::size_t>(index)].fault_reports;
    }
    /** Nodes of `index` flagged for manual service (fatal faults). */
    int pod_dead_nodes(int index) const {
        return pods_[static_cast<std::size_t>(index)].dead_nodes;
    }

    /**
     * Hot-attach a serviced pod back into rotation: breaker reset (the
     * fatal-pod latch included), dead-node ledger cleared, shed state
     * lifted, and a warm-up ramp started so the rejoining pod earns
     * traffic gradually. In-flight queries on surviving pods are
     * untouched. The caller is responsible for the pod actually being
     * healthy again (hosts serviced, pool redeployed) — see
     * FederationTestbed::ReattachPod for the full sequence.
     */
    void ReadmitPod(int index);

    /** Per-pod observability snapshot (benches/tests assert on this). */
    struct PodStats {
        int in_flight = 0;
        bool eligible = false;
        /** Proactively shed by the predictive plane right now. */
        bool shed = false;
        /** Latest published health score / band seen on the feed. */
        double health_score = 1.0;
        mgmt::HealthBand band = mgmt::HealthBand::kWarmingUp;
        /** Accepted queries routed elsewhere while this pod was shed. */
        std::uint64_t shed_queries = 0;
        std::uint64_t shed_transitions = 0;
        /** Pod-level refusals observed by the dispatcher. */
        std::uint64_t rejected = 0;
        /** Times this pod was re-admitted via ReadmitPod. */
        std::uint64_t readmitted = 0;
        std::uint64_t fault_reports = 0;
        int dead_nodes = 0;
    };
    PodStats pod_stats(int index) const;

    FederationPolicy policy() const { return config_.policy; }

    struct Counters {
        /** Queries accepted (kOk returned). */
        std::uint64_t accepted = 0;
        /** Queries rejected up front (caps / no eligible pod). */
        std::uint64_t rejected = 0;
        /** Completions delivered with ok=true. */
        std::uint64_t completed = 0;
        /** Completions delivered with ok=false (every retry exhausted). */
        std::uint64_t lost = 0;
        /** Re-injections of accepted queries onto another pod. */
        std::uint64_t failovers = 0;
        /** Pod picks that honored a model-affinity preference. */
        std::uint64_t affinity_hits = 0;
        /** Breaker state transitions closed -> open. */
        std::uint64_t breaker_trips = 0;
        /** Pods proactively shed by the predictive plane. */
        std::uint64_t sheds = 0;
        /** Pods hot-attached back into rotation (ReadmitPod). */
        std::uint64_t readmissions = 0;
    };
    const Counters& counters() const { return counters_; }

    /**
     * Attach the coordinator shard's observability surface: accepted
     * queries get a "query" span (parenting any incoming gather
     * context, and stamping their own span id into the request so
     * pod-side document spans nest under it), failovers and injects
     * emit instants, and completion latency feeds a histogram. Null
     * detaches. The dispatcher's Counters are mirrored separately by a
     * registry pull-collector (see FederationTestbed).
     */
    void SetObservability(obs::ShardObs* obs);

  private:
    /** Coordinator-side state of one attached ring sub-shard slice. */
    struct SliceState {
        mgmt::PodContext* context = nullptr;
        int shard = -1;
        /** Slice-local node 0 in the logical pod's node space. */
        int node_offset = 0;
        /** Dispatcher-accepted queries in flight on this slice. */
        int in_flight = 0;
        /** Pushed availability mirror of the slice's single ring. */
        int rings_view = 0;
        double health_score = 1.0;
        mgmt::HealthBand band = mgmt::HealthBand::kWarmingUp;
        int health_subscription = -1;
        mgmt::HealthScoreSubscription score_subscription;
    };

    struct PodSlot {
        mgmt::PodContext* context = nullptr;
        int in_flight = 0;
        /** Consecutive dispatcher-observed failures (breaker input). */
        int failure_streak = 0;
        /** Breaker open until this instant (0 = closed). */
        Time breaker_open_until = 0;
        /** When the breaker last opened; successes of queries injected
         *  before this instant are stragglers and must not close it. */
        Time breaker_opened_at = 0;
        /** A half-open probe query is outstanding (one at a time). */
        bool probe_in_flight = false;
        int health_subscription = -1;
        /** Sharded mode: the group shard this pod's stack runs on (-1 =
         *  direct; slice 0's shard for a sub-sharded pod). */
        int shard = -1;
        /**
         * Coordinator-side proxy of the pod's available_rings(),
         * updated by pushed availability messages (summed over slices
         * for a sub-sharded pod). In direct mode the pool is read
         * synchronously instead.
         */
        int rings_view = 0;
        /**
         * Ring sub-shard slices of this logical pod; empty for a
         * direct-mode or whole-pod-shard attach. `context` above is
         * slice 0's, for identity/logging.
         */
        std::vector<SliceState> slices;
        /** Rotating tie-break cursor for the slice placement step. */
        int slice_rr = 0;
        std::uint64_t fault_reports = 0;
        /** Distinct nodes flagged fatal (duplicate reports ignored). */
        std::vector<char> node_dead;
        int dead_nodes = 0;

        // --- Predictive plane (health-score feed) --------------------
        double health_score = 1.0;
        mgmt::HealthBand health_band = mgmt::HealthBand::kWarmingUp;
        /** Below the shed floor: out of normal rotation, probed only. */
        bool shed = false;
        /** Re-admission warm-up window ([start, until), 0 = none). */
        Time warmup_start = 0;
        Time warmup_until = 0;
        /** Smooth-WRR credit for the score-weighted policy. */
        double wrr_credit = 0.0;
        mgmt::HealthScoreSubscription score_subscription;
        // Per-pod stats (see PodStats).
        std::uint64_t stat_shed_queries = 0;
        std::uint64_t stat_shed_transitions = 0;
        std::uint64_t stat_rejected = 0;
        std::uint64_t stat_readmitted = 0;
    };

    /** One accepted query's life across retries. */
    struct QueryContext {
        int thread = 0;
        rank::CompressedRequest request;
        std::function<void(const ScoreResult&)> on_complete;
        Time accepted_at = 0;
        int retries_left = 0;
        /** Tracing: this query's span and its timeline (0 = untraced). */
        std::uint64_t obs_trace = 0;
        std::uint64_t obs_span = 0;
        std::uint64_t obs_parent = 0;
    };

    /**
     * Policy pick among eligible pods, skipping indices whose bit is
     * set in `tried` (pods are capped at 64 per dispatcher so the
     * per-query tried-set stays an allocation-free bitmask). Returns
     * -1 when nothing fits.
     */
    /** One mailbox-mode inject awaiting its pod's verdict. */
    struct PendingInject {
        std::shared_ptr<QueryContext> query;
        Time injected_at = 0;
        bool was_probe = false;
        /** Slice the query was placed on (-1 = whole-pod shard). */
        int slice = -1;
    };

    int PickPod(std::uint32_t model_id, std::uint64_t tried);
    int PickShedProbe(std::uint64_t tried);
    /**
     * Undo the smooth-WRR debit of the most recent PickPod when the
     * picked pod's pool refused the query: a pick that served nothing
     * must not cost credit, or repeated pool-level rejects would
     * drive the pod's credit unboundedly negative and starve it long
     * after it recovers.
     */
    void RefundFailedPick(int pod_index);
    bool Eligible(const PodSlot& slot) const;
    /** Re-admission traffic ramp (floor..1 inside the warm-up window). */
    double WarmupRamp(const PodSlot& slot) const;
    /** Routing weight under kScoreWeighted (score x warm-up ramp). */
    double EffectiveWeight(const PodSlot& slot) const;
    void OnHealthSample(int pod_index, const mgmt::HealthScoreSample& sample);
    /** Shared attach body; `shard` < 0 installs the direct-mode seams. */
    int AttachPodInternal(mgmt::PodContext* pod, int shard);
    /** Mailbox seams for one slice of an already-created slot. */
    void AttachSliceSeams(int pod_index, int slice_index);
    /** Declare (and assert) the hop lookaheads of one pod/slice shard. */
    void DeclareShardEdges(int shard);
    /** Fold one slice's published score into the pod-level aggregate. */
    void OnSliceHealthSample(int pod_index, int slice_index,
                             const mgmt::HealthScoreSample& sample);
    /** Confirmed MachineReport bookkeeping (direct call or mailbox hop). */
    void ApplyMachineReport(int pod_index, const mgmt::MachineReport& report);
    // --- Mailbox mode: the pod-shard half of an inject. ----------------
    /** Runs on the pod's (or slice's) shard: the actual pool Inject. */
    void PodInjectOnShard(int pod_index, int slice_index,
                          std::uint64_t query_id, int thread,
                          const rank::CompressedRequest& request);
    /** Back on the coordinator: completion / pod-level refusal. */
    void OnShardResult(int pod_index, std::uint64_t query_id,
                       const ScoreResult& result);
    void OnShardReject(int pod_index, std::uint64_t query_id);
    host::SendStatus TryInject(int pod_index,
                               std::shared_ptr<QueryContext> query);
    void OnPodResult(int pod_index, std::shared_ptr<QueryContext> query,
                     Time injected_at, bool was_probe,
                     const ScoreResult& result);
    void Failover(std::shared_ptr<QueryContext> query, int failed_pod);
    void RecordFailure(int pod_index);
    void Deliver(std::shared_ptr<QueryContext> query, ScoreResult result);

    sim::Simulator* simulator_;
    Config config_;
    ShardBinding binding_;
    /** Every pod/slice shard attached so far (pod <-> pod edges are
     *  declared unreachable pairwise as each new shard arrives). */
    std::vector<int> attached_shards_;
    /** Mailbox-mode injects awaiting a pod verdict, by query id. */
    std::unordered_map<std::uint64_t, PendingInject> pending_;
    std::uint64_t next_query_id_ = 1;
    std::vector<PodSlot> pods_;
    std::size_t rr_cursor_ = 0;
    /** Smooth-WRR round total debited by the last PickPod (for refunds). */
    double last_wrr_debit_ = 0.0;
    /** Pods currently shed (skips the per-query stats scan when 0). */
    int shed_pod_count_ = 0;
    Counters counters_;

    /** Coordinator-shard observability surface (null = off). */
    obs::ShardObs* obs_ = nullptr;
    /** Cached registry pointer — hot paths never do a name lookup. */
    obs::Histogram* obs_latency_us_ = nullptr;
};

}  // namespace catapult::service
