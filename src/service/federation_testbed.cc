#include "service/federation_testbed.h"

#include <cassert>
#include <string>

namespace catapult::service {

FederationTestbed::FederationTestbed(Config config)
    : config_(std::move(config)) {
    assert(config_.pod_count >= 1);
    dispatcher_ = std::make_unique<FederatedDispatcher>(&simulator_,
                                                        config_.dispatcher);
    for (int k = 0; k < config_.pod_count; ++k) {
        mgmt::PodContext::Config pod_config = config_.pod;
        pod_config.pod_id = k;
        if (k > 0) {
            // De-correlate the pods' fabrics and injectors while pod 0
            // keeps the template seed (single-pod reproducibility).
            pod_config.seed =
                config_.pod.seed + 0x9E3779B97F4A7C15ull *
                                       static_cast<std::uint64_t>(k);
        }
        if (config_.pod_count > 1) {
            pod_config.service.service_name += "/pod" + std::to_string(k);
        }
        pods_.push_back(
            std::make_unique<mgmt::PodContext>(&simulator_,
                                               std::move(pod_config)));
        dispatcher_->AttachPod(pods_.back().get());
    }
}

bool FederationTestbed::DeployAndSettle() {
    // Pods deploy concurrently: each owns its Mapping Manager, so only
    // rings within one pod serialize.
    int pending = pod_count();
    bool all_ok = true;
    for (auto& pod : pods_) {
        pod->Deploy([&](bool ok) {
            all_ok = all_ok && ok;
            --pending;
        });
    }
    simulator_.Run();
    return all_ok && pending == 0;
}

}  // namespace catapult::service
