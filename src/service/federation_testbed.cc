#include "service/federation_testbed.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <string>

namespace catapult::service {

FederationTestbed::FederationTestbed(Config config)
    : config_(std::move(config)) {
    assert(config_.pod_count >= 1);
    assert(!config_.sharding.ring_subshards || config_.sharding.enabled);
    coordinator_ = &simulator_;
    if (config_.sharding.enabled && config_.sharding.ring_subshards) {
        // Each ring slice is a 1 x cols torus strip, so a full ring
        // must fit along the column dimension.
        assert(config_.pod.fabric.topology.cols() >=
               RankingService::kRingLength);
        slices_per_pod_ = std::max(1, config_.pod.ring_count);
    }
    FederatedDispatcher::ShardBinding binding;
    if (config_.sharding.enabled) {
        // Lookahead derivation: a query (or completion) crossing the
        // pod boundary pays the front-door network transit plus the
        // pod-edge DMA doorbell/interrupt — the same constants the
        // in-pod shell models use. The epoch is the smaller hop, so
        // no message can land inside the epoch that produced it.
        const Time leg = config_.sharding.front_door_network +
                         config_.pod.fabric.shell.dma.interrupt_latency;
        inject_hop_ =
            config_.sharding.inject_hop > 0 ? config_.sharding.inject_hop
                                            : leg;
        completion_hop_ = config_.sharding.completion_hop > 0
                              ? config_.sharding.completion_hop
                              : leg;
        sim::SimulatorGroup::Config group_config;
        // Shard 0 = coordinator; pod k's slices (the whole pod when
        // ring_subshards is off) follow pod-major, slice-minor.
        group_config.shards = 1 + config_.pod_count * slices_per_pod_;
        group_config.epoch = std::min(inject_hop_, completion_hop_);
        group_config.parallel = config_.sharding.parallel;
        group_config.max_threads = config_.sharding.max_threads;
        group_ = std::make_unique<sim::SimulatorGroup>(group_config);
        coordinator_ = &group_->shard(0);
    }
    if (config_.observability.enabled) {
        // One ShardObs per simulator shard; the whole plane collapses
        // to a single shard when every layer shares one simulator.
        const int obs_shards =
            group_ ? 1 + config_.pod_count * slices_per_pod_ : 1;
        plane_ = std::make_unique<obs::ObservabilityPlane>(
            obs_shards, config_.observability);
    }
    dispatcher_ = std::make_unique<FederatedDispatcher>(coordinator_,
                                                        config_.dispatcher);
    if (plane_) dispatcher_->SetObservability(plane_->shard(0));
    if (group_) {
        FederatedDispatcher::ShardBinding bind;
        bind.group = group_.get();
        bind.coordinator_shard = 0;
        bind.inject_hop = inject_hop_;
        bind.completion_hop = completion_hop_;
        dispatcher_->BindShardGroup(bind);
    }
    for (int k = 0; k < config_.pod_count; ++k) {
        if (slices_per_pod_ > 1) {
            BuildPodSlices(k);
            continue;
        }
        mgmt::PodContext::Config pod_config = config_.pod;
        pod_config.pod_id = k;
        if (k > 0) {
            // De-correlate the pods' fabrics and injectors while pod 0
            // keeps the template seed (single-pod reproducibility).
            pod_config.seed =
                config_.pod.seed + 0x9E3779B97F4A7C15ull *
                                       static_cast<std::uint64_t>(k);
        }
        if (config_.pod_count > 1) {
            pod_config.service.service_name += "/pod" + std::to_string(k);
        }
        // Shard layout: pod k's entire stack — fabric, hosts, pool,
        // health plane — on shard 1 + k; the per-pod seed stream is
        // untouched, so the pod's internal behavior is mode-invariant.
        sim::Simulator* pod_sim =
            group_ ? &group_->shard(1 + k) : &simulator_;
        pod_config.shard_index = group_ ? 1 + k : -1;
        if (plane_) {
            pod_config.obs = plane_->shard(group_ ? 1 + k : 0);
        }
        pods_.push_back(
            std::make_unique<mgmt::PodContext>(pod_sim,
                                               std::move(pod_config)));
        if (group_) {
            dispatcher_->AttachPodShard(pods_.back().get(), 1 + k);
        } else {
            dispatcher_->AttachPod(pods_.back().get());
        }
    }
    SessionFrontEnd::Config fe_config = config_.front_end;
    fe_config.driver_threads = config_.pod.driver_threads;
    front_end_ = std::make_unique<SessionFrontEnd>(coordinator_,
                                                   dispatcher_.get(),
                                                   fe_config);
    if (plane_) {
        front_end_->SetObservability(plane_->shard(0));
        InstallObservability();
    }
}

void FederationTestbed::InstallObservability() {
    // Cadence driver: the group's epoch barrier is the race-free merge
    // point (workers provably idle on the driving thread); the classic
    // single simulator self-drives with a daemon tick instead.
    if (group_) {
        group_->SetBarrierHook(
            [p = plane_.get()](Time frontier) { p->AdvanceTo(frontier); });
    } else {
        plane_->AttachSimulator(&simulator_);
    }
    // Pull-collector mirroring pre-existing layer counters into the
    // merged registry at every merge. Absolute writes (Set) keep it
    // idempotent; every value here is simulated-time-deterministic
    // except the wall-clock ones, registered volatile so the
    // deterministic export stays mode-identical.
    plane_->AddCollector([this](obs::MetricRegistry& reg) {
        const auto& d = dispatcher_->counters();
        reg.counter("federation.accepted")->Set(d.accepted);
        reg.counter("federation.rejected")->Set(d.rejected);
        reg.counter("federation.completed")->Set(d.completed);
        reg.counter("federation.lost")->Set(d.lost);
        reg.counter("federation.failovers")->Set(d.failovers);
        reg.counter("federation.affinity_hits")->Set(d.affinity_hits);
        reg.counter("federation.breaker_trips")->Set(d.breaker_trips);
        reg.counter("federation.sheds")->Set(d.sheds);
        reg.counter("federation.readmissions")->Set(d.readmissions);
        const auto& s = front_end_->scatter().counters();
        reg.counter("frontend.gathers_submitted")->Set(s.submitted);
        reg.counter("frontend.gathers_delivered")->Set(s.delivered);
        reg.counter("frontend.gathers_partial")->Set(s.partial);
        reg.counter("frontend.docs_scattered")->Set(s.docs_scattered);
        reg.counter("frontend.docs_answered")->Set(s.docs_answered);
        reg.counter("frontend.docs_failed")->Set(s.docs_failed);
        reg.counter("frontend.stragglers")->Set(s.stragglers);
        reg.counter("frontend.merges")->Set(s.merges);
        reg.counter("frontend.merge_wall_ns", true)->Set(s.merge_wall_ns);
        const auto& fe = front_end_->counters();
        reg.counter("frontend.sessions_opened")->Set(fe.sessions_opened);
        reg.counter("frontend.sessions_closed")->Set(fe.sessions_closed);
        reg.counter("frontend.submitted")->Set(fe.submitted);
        reg.counter("frontend.refused")->Set(fe.refused);
        for (int k = 0; k < pod_count(); ++k) {
            // Ring sub-shard slices present as one pod: sum across them.
            std::uint64_t dispatched = 0, recoveries = 0, injected = 0,
                          completed = 0, timeouts = 0, investigations = 0,
                          fdr_postmortem = 0;
            std::int64_t rings_available = 0;
            for (int r = 0; r < slices_per_pod_; ++r) {
                mgmt::PodContext& p = pod_slice(k, r);
                const auto& pc = p.pool().counters();
                dispatched += pc.dispatched;
                recoveries += pc.recoveries;
                rings_available += p.pool().available_rings();
                const auto rc = p.pool().AggregateRingCounters();
                injected += rc.injected;
                completed += rc.completed;
                timeouts += rc.timeouts;
                const auto& hc = p.health_monitor().counters();
                investigations += hc.investigations;
                fdr_postmortem += hc.fdr_postmortem_records;
            }
            std::string prefix = "pod";
            prefix += std::to_string(k);
            prefix += ".";
            reg.counter(prefix + "dispatched")->Set(dispatched);
            reg.counter(prefix + "recoveries")->Set(recoveries);
            reg.counter(prefix + "injected")->Set(injected);
            reg.counter(prefix + "completed")->Set(completed);
            reg.counter(prefix + "timeouts")->Set(timeouts);
            reg.counter(prefix + "investigations")->Set(investigations);
            reg.counter(prefix + "fdr_postmortem_records")
                ->Set(fdr_postmortem);
            reg.gauge(prefix + "rings_available")->Set(rings_available);
        }
        if (group_ != nullptr) {
            // Executor profiling. Round/message/frontier counts and
            // mailbox high-water marks are mode-identical (the rounds
            // are); per-worker item/wall-time split depends on the
            // work-stealing interleave, so those are volatile.
            const auto& prof = group_->profile();
            reg.counter("exec.rounds")->Set(prof.rounds);
            reg.counter("exec.round_items")->Set(prof.round_items);
            reg.counter("exec.messages_drained")->Set(prof.messages_drained);
            reg.gauge("exec.frontier_advance_ps")
                ->Set(prof.frontier_advance);
            const int n = group_->shard_count();
            for (int f = 0; f < n; ++f) {
                for (int t = 0; t < n; ++t) {
                    const std::uint32_t hwm = prof.edge_mailbox_hwm
                        [static_cast<std::size_t>(f * n + t)];
                    if (hwm == 0) continue;
                    std::string name = "exec.mailbox_hwm.";
                    name += std::to_string(f);
                    name += ".";
                    name += std::to_string(t);
                    reg.gauge(name, obs::GaugeMerge::kMax)
                        ->Set(static_cast<std::int64_t>(hwm));
                }
            }
            for (std::size_t e = 0; e < prof.executors.size(); ++e) {
                const auto& ex = prof.executors[e];
                std::string prefix = "exec.worker";
                prefix += std::to_string(e);
                prefix += ".";
                reg.counter(prefix + "items", true)->Set(ex.items);
                reg.counter(prefix + "busy_ns", true)->Set(ex.busy_ns);
                reg.counter(prefix + "wait_ns", true)->Set(ex.wait_ns);
            }
        }
    });
}

void FederationTestbed::BuildPodSlices(int pod_index) {
    // Ring sub-shards: pod `pod_index` splits into R self-contained
    // single-ring slices, each a 1 x cols torus strip on its own group
    // shard. Identity is pinned per slice — node base, name prefix,
    // host names, trace-id stride — so the R slices present as one pod
    // (same pod id on telemetry and reports, slice-local node ids
    // remapped into pod node space by the dispatcher's seams) without
    // any layer's names or ids colliding.
    const int R = slices_per_pod_;
    const int cols = config_.pod.fabric.topology.cols();
    const int pod_nodes = config_.pod.fabric.topology.node_count();
    std::vector<FederatedDispatcher::PodSlice> slices;
    for (int r = 0; r < R; ++r) {
        const int g = pod_index * R + r;  // global slice index
        const int shard = 1 + g;
        mgmt::PodContext::Config sc = config_.pod;
        sc.pod_id = pod_index;
        sc.ring_count = 1;
        sc.fabric.topology = fabric::TorusTopology(1, cols);
        sc.fabric.pod_id = pod_index;
        sc.fabric.node_base = pod_index * pod_nodes + r * cols;
        // += chains for the same -Wrestrict reason as PodContext.
        sc.fabric.name_prefix = "pod";
        sc.fabric.name_prefix += std::to_string(pod_index);
        sc.fabric.name_prefix += ".ring";
        sc.fabric.name_prefix += std::to_string(r);
        sc.host_name_prefix = "p";
        sc.host_name_prefix += std::to_string(pod_index);
        sc.host_name_prefix += ".r";
        sc.host_name_prefix += std::to_string(r);
        sc.host_name_prefix += ".srv";
        // Pod-strided then ring-strided, matching the unsliced pool's
        // per-ring stride — cross-slice FDR trace ids never collide.
        sc.service.trace_id_base =
            (static_cast<std::uint64_t>(pod_index) << 48) |
            (static_cast<std::uint64_t>(r) << 40);
        if (g > 0) {
            // Same golden-ratio stream split as whole-pod mode, keyed
            // by the global slice index; slice 0 of pod 0 keeps the
            // template seed.
            sc.seed = config_.pod.seed +
                      0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(g);
        }
        if (config_.pod_count > 1) {
            sc.service.service_name += "/pod" + std::to_string(pod_index);
        }
        sc.service.service_name += "/ring" + std::to_string(r);
        sc.shard_index = shard;
        if (plane_) sc.obs = plane_->shard(shard);
        pods_.push_back(std::make_unique<mgmt::PodContext>(
            &group_->shard(shard), std::move(sc)));
        FederatedDispatcher::PodSlice slice;
        slice.context = pods_.back().get();
        slice.shard = shard;
        slice.node_offset = r * cols;
        slices.push_back(slice);
    }
    dispatcher_->AttachPodSlices(slices);
}

void FederationTestbed::ReattachPod(int index,
                                    std::function<void(bool)> on_done) {
    if (group_ && slices_per_pod_ > 1) {
        // Each ring slice runs the full service sequence on its own
        // shard; the verdicts hop back to the coordinator, whose
        // canonical drain makes the join state single-writer. Only
        // when every slice redeployed does the pod re-enter rotation.
        struct Join {
            int pending = 0;
            bool all_ok = true;
            std::function<void(bool)> on_done;
        };
        auto join = std::make_shared<Join>();
        join->pending = slices_per_pod_;
        join->on_done = std::move(on_done);
        for (int r = 0; r < slices_per_pod_; ++r) {
            const int shard = 1 + index * slices_per_pod_ + r;
            auto slice_local = [this, index, r, shard, join]() {
                mgmt::PodContext& p = this->pod_slice(index, r);
                auto pending = std::make_shared<int>(
                    static_cast<int>(p.hosts().size()));
                auto resume = [this, index, r, shard, join]() {
                    mgmt::PodContext& ready = this->pod_slice(index, r);
                    for (int node = 0;
                         node < ready.fabric().node_count(); ++node) {
                        ready.health_monitor().MarkNodeServiced(node);
                    }
                    ready.pool().ClearRecoveryBacklog();
                    ready.forecaster().ResetForReadmission();
                    ready.pool().Deploy([this, index, shard,
                                         join](bool ok) {
                        group_->Post(
                            shard, 0,
                            group_->shard(shard).Now() + completion_hop_,
                            [this, index, ok, join]() {
                                if (!ok) join->all_ok = false;
                                if (--join->pending > 0) return;
                                if (join->all_ok) {
                                    dispatcher_->ReadmitPod(index);
                                }
                                if (join->on_done) {
                                    join->on_done(join->all_ok);
                                }
                            });
                    });
                };
                for (host::HostServer* host : p.hosts()) {
                    host->Service([pending, resume]() mutable {
                        if (--*pending == 0) resume();
                    });
                }
            };
            group_->Post(0, shard, coordinator_->Now() + inject_hop_,
                         std::move(slice_local));
        }
        return;
    }
    if (group_) {
        // The service sequence is pod-local and must run on the pod's
        // shard; only the final re-admission belongs to the
        // coordinator. One hop out carries the mgmt-plane command, one
        // hop back carries the redeploy verdict.
        const int shard = 1 + index;
        auto pod_local = [this, index, shard,
                          on_done = std::move(on_done)]() mutable {
            mgmt::PodContext& p = this->pod(index);
            auto pending =
                std::make_shared<int>(static_cast<int>(p.hosts().size()));
            auto resume = [this, index, shard,
                           on_done = std::move(on_done)]() mutable {
                mgmt::PodContext& ready = this->pod(index);
                for (int node = 0; node < ready.fabric().node_count();
                     ++node) {
                    ready.health_monitor().MarkNodeServiced(node);
                }
                ready.pool().ClearRecoveryBacklog();
                ready.forecaster().ResetForReadmission();
                ready.pool().Deploy([this, index, shard,
                                     on_done = std::move(on_done)](
                                        bool ok) mutable {
                    group_->Post(
                        shard, 0,
                        group_->shard(shard).Now() + completion_hop_,
                        [this, index, ok,
                         on_done = std::move(on_done)]() mutable {
                            if (ok) dispatcher_->ReadmitPod(index);
                            if (on_done) on_done(ok);
                        });
                });
            };
            for (host::HostServer* host : p.hosts()) {
                host->Service([pending, resume]() mutable {
                    if (--*pending == 0) resume();
                });
            }
        };
        group_->Post(0, shard, coordinator_->Now() + inject_hop_,
                     std::move(pod_local));
        return;
    }
    mgmt::PodContext& pod = this->pod(index);
    // 1. Field service: every host repaired and power-cycled. The
    //    servicing runs concurrently across the pod's machines; the
    //    rest of the sequence waits for the last one.
    auto pending = std::make_shared<int>(static_cast<int>(pod.hosts().size()));
    auto resume = [this, index, on_done = std::move(on_done)]() mutable {
        mgmt::PodContext& ready = this->pod(index);
        // 2. The health plane forgives: every node was just field-
        //    serviced, so every watchdog grudge goes — dead flags
        //    (heartbeat coverage resumes), but also miss streaks,
        //    cooldowns and parked critical suspicions on nodes that
        //    had not escalated to dead yet; a leftover suspicion would
        //    investigate freshly replaced hardware and re-flag it. The
        //    pool's deferred blackout-era reports are dropped for the
        //    same reason.
        for (int node = 0; node < ready.fabric().node_count(); ++node) {
            ready.health_monitor().MarkNodeServiced(node);
        }
        ready.pool().ClearRecoveryBacklog();
        // 3. The forecaster forgets: blackout-era fault rates must not
        //    poison the serviced pod's fresh score (cold-start grace
        //    restarts, so the pod cannot be re-shed on a stale trend).
        ready.forecaster().ResetForReadmission();
        // 4. Redeploy the rings onto the serviced hardware, then
        //    hot-attach the pod back into the dispatcher's rotation.
        ready.pool().Deploy(
            [this, index, on_done = std::move(on_done)](bool ok) {
                if (ok) dispatcher_->ReadmitPod(index);
                if (on_done) on_done(ok);
            });
    };
    for (host::HostServer* host : pod.hosts()) {
        host->Service([pending, resume]() mutable {
            if (--*pending == 0) resume();
        });
    }
}

bool FederationTestbed::DeployAndSettle() {
    // Pods deploy concurrently: each owns its Mapping Manager, so only
    // rings within one pod serialize. Atomics because in sharded
    // parallel mode each pod's completion fires on its shard's worker
    // thread; the values are only read after Run() returns.
    std::atomic<int> pending{static_cast<int>(pods_.size())};
    std::atomic<bool> all_ok{true};
    for (auto& pod : pods_) {
        pod->Deploy([&](bool ok) {
            if (!ok) all_ok.store(false, std::memory_order_relaxed);
            pending.fetch_sub(1, std::memory_order_relaxed);
        });
    }
    Run();
    return all_ok.load() && pending.load() == 0;
}

}  // namespace catapult::service
